// AuditView — the read-only safety snapshot every consensus implementation
// exposes to the cross-replica safety auditor (src/audit/auditor.h).
//
// The paper's correctness claims (Table 1, Appendix A) are uniform across
// protocol families — one leader per ballot/term/view, decided prefixes never
// diverge, the stop-sign is final — so the view deliberately abstracts the
// four implementations (Omni-Paxos, Raft, Multi-Paxos, VR) into one shape:
// an epoch triple ordered like omni::Ballot, a decided/committed index, and a
// per-entry content hash the auditor chains into a canonical log fingerprint.
//
// Views are cheap to build (plain data plus a raw function pointer into the
// node's log — no allocation) because the simulator builds one per node after
// every delivered event.
#ifndef SRC_AUDIT_AUDIT_VIEW_H_
#define SRC_AUDIT_AUDIT_VIEW_H_

#include <cstdint>
#include <ostream>
#include <tuple>

#include "src/util/types.h"

namespace opx::audit {

// ---------------------------------------------------------------------------
// Hash helpers (splitmix64 finalizer). Shared by entry hashing and the
// simulator's event-sequence fingerprint.
// ---------------------------------------------------------------------------

inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t HashMix(uint64_t seed, uint64_t v) { return Hash64(seed ^ Hash64(v)); }

// ---------------------------------------------------------------------------
// Epochs — a protocol-agnostic ballot/term/view triple, ordered like
// omni::Ballot. Raft terms map to {term, 0, 0}; full ballots keep their
// priority and pid components so cross-node comparisons match the protocol's
// own total order.
// ---------------------------------------------------------------------------

struct AuditEpoch {
  uint64_t n = 0;
  uint32_t priority = 0;
  NodeId pid = kNoNode;

  friend bool operator==(const AuditEpoch& a, const AuditEpoch& b) {
    return a.n == b.n && a.priority == b.priority && a.pid == b.pid;
  }
  friend bool operator<(const AuditEpoch& a, const AuditEpoch& b) {
    return std::tie(a.n, a.priority, a.pid) < std::tie(b.n, b.priority, b.pid);
  }
  friend bool operator>(const AuditEpoch& a, const AuditEpoch& b) { return b < a; }
  friend bool operator<=(const AuditEpoch& a, const AuditEpoch& b) { return !(b < a); }

  friend std::ostream& operator<<(std::ostream& os, const AuditEpoch& e) {
    return os << "(" << e.n << "," << e.priority << ",s" << e.pid << ")";
  }
};

// What the auditor needs to know about one decided log entry: a content hash
// (byte-for-byte identity across replicas) and whether the entry is a
// stop-sign / configuration-final marker.
struct AuditEntryInfo {
  uint64_t hash = 0;
  bool is_stop = false;
};

struct AuditView {
  NodeId pid = kNoNode;
  const char* protocol = "";

  // Leadership claim. `leader_epoch` is the uniqueness class within which at
  // most one leader may ever exist (ballot.n for the Paxos family, term for
  // Raft, view+1 for VR). `leader_owner` is the server the protocol says owns
  // that epoch (ballot pid, VR's round-robin designee); kNoNode when the
  // class is shared (Raft terms) and ownership is decided by election alone.
  bool is_leader = false;
  uint64_t leader_epoch = 0;
  NodeId leader_owner = kNoNode;

  // Promise/acceptance state: `promised` is the highest round this node
  // vowed not to undercut; `accepted` is the round of its latest accepted
  // entry. Accepting above the promise is a protocol violation.
  AuditEpoch promised;
  AuditEpoch accepted;

  LogIndex log_len = 0;
  LogIndex decided_idx = 0;  // decided/committed watermark
  LogIndex first_idx = 0;    // first index still readable (compaction floor)

  // True when a decided stop-sign ends the configuration permanently
  // (Omni-Paxos/VR §6); false where the log continues past membership
  // entries (Raft, Multi-Paxos).
  bool stop_is_final = false;

  // Reads entry `idx` (valid in [first_idx, log_len)); `ctx` points at the
  // node. Raw function pointer so building a view never allocates.
  const void* ctx = nullptr;
  AuditEntryInfo (*entry_at)(const void* ctx, LogIndex idx) = nullptr;
};

}  // namespace opx::audit

#endif  // SRC_AUDIT_AUDIT_VIEW_H_
