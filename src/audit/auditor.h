// SafetyAuditor — cross-replica invariant checker for the deterministic
// simulator. After every delivered event the harness snapshots one AuditView
// per live node and feeds the set to Observe(); the auditor verifies the
// global safety properties the paper proves in Appendix A:
//
//   1. Leader uniqueness  — at most one leader per ballot/term/view class.
//   2. Log matching       — decided prefixes agree byte-for-byte across
//                           replicas (rolling entry-hash chain).
//   3. Monotonicity       — promised epoch and decided index never move
//                           backwards on any node.
//   4. Promise order      — a node never holds an accepted epoch above its
//                           promised epoch.
//   5. Stop-sign finality — nothing is decided past a decided stop-sign in
//                           the same configuration (where the protocol
//                           treats stop-signs as final).
//
// A violation produces a replayable report — seed, virtual time, event id,
// per-node state dump — and (by default) aborts the process so the failing
// seed is never papered over by later progress.
#ifndef SRC_AUDIT_AUDITOR_H_
#define SRC_AUDIT_AUDITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/audit/audit_view.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::audit {

enum class Invariant {
  kLeaderUniqueness,
  kLogDivergence,
  kMonotonicity,
  kPromiseOrder,
  kStopSign,
};

const char* InvariantName(Invariant inv);

// Where in the run a check happened — everything needed to replay it.
struct AuditContext {
  uint64_t seed = 0;
  Time now = 0;
  uint64_t event_id = 0;
  const char* label = "";  // e.g. "deliver", "tick", "reconnect"
};

struct Violation {
  Invariant invariant;
  NodeId pid = kNoNode;  // node the violation was detected on
  std::string detail;
  AuditContext ctx;
};

class SafetyAuditor {
 public:
  struct Options {
    // Abort with a full report on the first violation. Tests that verify the
    // auditor itself set this false and inspect violations() instead.
    bool abort_on_violation = true;
  };

  SafetyAuditor() = default;
  explicit SafetyAuditor(Options opts) : opts_(opts) {}

  // Checks all five invariants against the current cluster snapshot. Crashed
  // nodes are simply omitted from `views`; their historical contributions
  // (leader claims, canonical hashes) remain in force.
  void Observe(const std::vector<AuditView>& views, const AuditContext& ctx);

  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t events_audited() const { return events_audited_; }
  uint64_t entries_matched() const { return entries_matched_; }

  // Full per-node state dump plus violation list; the body of the abort
  // report, also usable from test failures.
  std::string Report() const;

 private:
  // Incremental per-node audit state. The auditor only re-hashes entries a
  // node newly decided since the last Observe, so a run costs O(total
  // decided) not O(events × log length).
  struct NodeState {
    bool seen = false;
    AuditEpoch max_promised;
    LogIndex audited_decided = 0;  // decided prefix already chained
    // Last snapshot, kept for the report.
    AuditView last;
  };

  void Fail(Invariant inv, NodeId pid, std::string detail, const AuditContext& ctx);
  void CheckNode(const AuditView& v, const AuditContext& ctx);
  void CheckLeadership(const AuditView& v, const AuditContext& ctx);
  void MatchDecided(const AuditView& v, const AuditContext& ctx);
  void PruneCanon();

  // Canonical decided-entry hashes, indexed by log position minus
  // canon_base_. The first node to decide an index establishes the canonical
  // hash; every other node must reproduce it exactly. Entries below every
  // node's audited prefix are pruned so multi-million-entry bench runs stay
  // O(window) in memory. `known` covers the (compaction-induced) case where
  // a node decides past indices no live node can still read.
  struct CanonEntry {
    AuditEntryInfo info;
    NodeId author = kNoNode;
    bool known = false;
  };
  std::vector<CanonEntry> canon_;
  LogIndex canon_base_ = 0;

  // Epoch class → leader pid, for every leadership claim ever observed.
  std::map<std::pair<uint64_t, NodeId>, NodeId> leaders_;

  // Index of the first decided stop-sign (final configurations only).
  bool stop_seen_ = false;
  LogIndex stop_idx_ = 0;

  std::map<NodeId, NodeState> nodes_;
  std::vector<Violation> violations_;
  uint64_t events_audited_ = 0;
  uint64_t entries_matched_ = 0;
  Options opts_;
};

}  // namespace opx::audit

#endif  // SRC_AUDIT_AUDITOR_H_
