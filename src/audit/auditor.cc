#include "src/audit/auditor.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace opx::audit {

namespace {

// Prune lazily: erasing from the front of canon_ is O(window), so only pay
// it once the retired prefix is large.
constexpr LogIndex kPruneThreshold = 1u << 16;

}  // namespace

const char* InvariantName(Invariant inv) {
  switch (inv) {
    case Invariant::kLeaderUniqueness: return "leader-uniqueness";
    case Invariant::kLogDivergence: return "log-divergence";
    case Invariant::kMonotonicity: return "monotonicity";
    case Invariant::kPromiseOrder: return "promise-order";
    case Invariant::kStopSign: return "stop-sign-finality";
  }
  return "unknown";
}

void SafetyAuditor::Observe(const std::vector<AuditView>& views, const AuditContext& ctx) {
  ++events_audited_;
  for (const AuditView& v : views) {
    CheckLeadership(v, ctx);
    CheckNode(v, ctx);
    MatchDecided(v, ctx);
    NodeState& st = nodes_[v.pid];
    st.seen = true;
    st.last = v;
  }
  PruneCanon();
}

void SafetyAuditor::CheckLeadership(const AuditView& v, const AuditContext& ctx) {
  if (!v.is_leader) return;
  // A leader must own the epoch it leads under: an Omni-Paxos/Multi-Paxos
  // ballot carries its issuer's pid, VR's view designates a round-robin
  // owner. Raft terms have no owner (leader_owner == kNoNode) — uniqueness
  // within the term is all the protocol promises.
  if (v.leader_owner != kNoNode && v.leader_owner != v.pid) {
    std::ostringstream os;
    os << "s" << v.pid << " claims leadership of epoch " << v.leader_epoch
       << " owned by s" << v.leader_owner;
    Fail(Invariant::kLeaderUniqueness, v.pid, os.str(), ctx);
    return;
  }
  auto key = std::make_pair(v.leader_epoch, v.leader_owner);
  auto [it, inserted] = leaders_.emplace(key, v.pid);
  if (!inserted && it->second != v.pid) {
    std::ostringstream os;
    os << "epoch " << v.leader_epoch << " has two leaders: s" << it->second
       << " and s" << v.pid;
    Fail(Invariant::kLeaderUniqueness, v.pid, os.str(), ctx);
  }
}

void SafetyAuditor::CheckNode(const AuditView& v, const AuditContext& ctx) {
  NodeState& st = nodes_[v.pid];
  if (st.seen) {
    if (v.promised < st.max_promised) {
      std::ostringstream os;
      os << "promised epoch moved backwards: " << st.max_promised << " -> " << v.promised;
      Fail(Invariant::kMonotonicity, v.pid, os.str(), ctx);
    }
    if (v.decided_idx < st.audited_decided) {
      std::ostringstream os;
      os << "decided index moved backwards: " << st.audited_decided << " -> "
         << v.decided_idx;
      Fail(Invariant::kMonotonicity, v.pid, os.str(), ctx);
    }
  }
  if (st.max_promised < v.promised) st.max_promised = v.promised;
  if (v.promised < v.accepted) {
    std::ostringstream os;
    os << "accepted epoch " << v.accepted << " above promised " << v.promised;
    Fail(Invariant::kPromiseOrder, v.pid, os.str(), ctx);
  }
}

void SafetyAuditor::MatchDecided(const AuditView& v, const AuditContext& ctx) {
  NodeState& st = nodes_[v.pid];
  // Compaction may have trimmed entries the auditor never chained (decide
  // and trim inside one event). Those indices stay unaudited for this node;
  // other replicas still cross-check them against the canon.
  if (st.audited_decided < v.first_idx) st.audited_decided = v.first_idx;
  if (v.decided_idx <= st.audited_decided) return;
  if (v.entry_at == nullptr) return;

  for (LogIndex idx = st.audited_decided; idx < v.decided_idx; ++idx) {
    const AuditEntryInfo e = v.entry_at(v.ctx, idx);
    if (stop_seen_ && v.stop_is_final && idx > stop_idx_) {
      std::ostringstream os;
      os << "entry decided at index " << idx << " after stop-sign at index " << stop_idx_;
      Fail(Invariant::kStopSign, v.pid, os.str(), ctx);
    }
    if (e.is_stop && v.stop_is_final && !stop_seen_) {
      stop_seen_ = true;
      stop_idx_ = idx;
    }

    if (idx < canon_base_) continue;  // already pruned: every node agreed
    const LogIndex slot = idx - canon_base_;
    if (slot >= canon_.size()) canon_.resize(slot + 1);
    CanonEntry& canon = canon_[slot];
    if (!canon.known) {
      canon.info = e;
      canon.author = v.pid;
      canon.known = true;
    } else if (canon.info.hash != e.hash || canon.info.is_stop != e.is_stop) {
      std::ostringstream os;
      os << "decided entry " << idx << " diverges: s" << v.pid << " has hash "
         << e.hash << (e.is_stop ? " (stop)" : "") << ", s" << canon.author
         << " decided hash " << canon.info.hash
         << (canon.info.is_stop ? " (stop)" : "");
      Fail(Invariant::kLogDivergence, v.pid, os.str(), ctx);
    } else {
      ++entries_matched_;
    }
  }
  st.audited_decided = v.decided_idx;
}

void SafetyAuditor::PruneCanon() {
  if (nodes_.empty()) return;
  LogIndex min_audited = ~LogIndex{0};
  for (const auto& [pid, st] : nodes_) {
    if (st.audited_decided < min_audited) min_audited = st.audited_decided;
  }
  if (min_audited <= canon_base_ || min_audited - canon_base_ < kPruneThreshold) return;
  const LogIndex drop = min_audited - canon_base_;
  if (drop >= canon_.size()) {
    canon_.clear();
    canon_base_ = min_audited;
  } else {
    canon_.erase(canon_.begin(), canon_.begin() + static_cast<ptrdiff_t>(drop));
    canon_base_ = min_audited;
  }
}

void SafetyAuditor::Fail(Invariant inv, NodeId pid, std::string detail,
                         const AuditContext& ctx) {
  violations_.push_back(Violation{inv, pid, std::move(detail), ctx});
  if (!opts_.abort_on_violation) return;
  std::string report = Report();
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

std::string SafetyAuditor::Report() const {
  std::ostringstream os;
  os << "=== SAFETY AUDIT REPORT ===\n";
  os << "events audited: " << events_audited_
     << ", decided entries cross-checked: " << entries_matched_ << "\n";
  for (const Violation& viol : violations_) {
    os << "VIOLATION [" << InvariantName(viol.invariant) << "] at s" << viol.pid
       << ": " << viol.detail << "\n"
       << "  replay: seed=" << viol.ctx.seed << " t=" << viol.ctx.now << "ns event="
       << viol.ctx.event_id << " (" << viol.ctx.label << ")\n";
  }
  os << "--- per-node state ---\n";
  for (const auto& [pid, st] : nodes_) {
    const AuditView& v = st.last;
    os << "s" << pid << " [" << v.protocol << "]"
       << (v.is_leader ? " LEADER" : "")
       << " epoch=" << v.leader_epoch
       << " promised=" << v.promised << " accepted=" << v.accepted
       << " log_len=" << v.log_len << " decided=" << v.decided_idx
       << " first=" << v.first_idx << " audited=" << st.audited_decided << "\n";
  }
  if (stop_seen_) os << "stop-sign decided at index " << stop_idx_ << "\n";
  os << "===========================\n";
  return os.str();
}

}  // namespace opx::audit
