// Content hashing for replicated-log entries. All four protocols store
// omni::Entry (Raft wraps it in LogEntry), so one hash definition gives the
// auditor byte-for-byte identity across replicas: two entries hash equal iff
// Entry::operator== holds.
#ifndef SRC_AUDIT_ENTRY_HASH_H_
#define SRC_AUDIT_ENTRY_HASH_H_

#include <cstdint>

#include "src/audit/audit_view.h"
#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"

namespace opx::audit {

inline uint64_t EntryContentHash(const omni::Entry& e) {
  uint64_t h = Hash64(e.cmd_id);
  h = HashMix(h, e.payload_bytes);
  if (e.stop_sign != nullptr) {
    h = HashMix(h, 0x570b'516eull);  // distinguishes stop-signs from commands
    h = HashMix(h, e.stop_sign->next_config);
    for (NodeId n : e.stop_sign->next_nodes) {
      h = HashMix(h, static_cast<uint64_t>(static_cast<uint32_t>(n)));
    }
  }
  return h;
}

inline AuditEntryInfo EntryInfo(const omni::Entry& e) {
  return AuditEntryInfo{EntryContentHash(e), e.IsStopSign()};
}

inline AuditEpoch EpochOf(const omni::Ballot& b) {
  return AuditEpoch{b.n, b.priority, b.pid};
}

}  // namespace opx::audit

#endif  // SRC_AUDIT_ENTRY_HASH_H_
