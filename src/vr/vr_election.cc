#include "src/vr/vr_election.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace opx::vr {

VrElection::VrElection(VrConfig config) : config_(std::move(config)), rng_(config_.seed) {
  OPX_CHECK_NE(config_.pid, kNoNode);
  all_nodes_ = config_.peers;
  all_nodes_.push_back(config_.pid);
  std::sort(all_nodes_.begin(), all_nodes_.end());
  ResetBudget();
  // View 0's leader is immediately "elected" — VR starts in normal status
  // with the predetermined primary.
  leader_event_ = Ballot{1, 0, LeaderOf(0)};
  view_ = 0;
  last_normal_view_ = 0;
}

NodeId VrElection::LeaderOf(uint64_t view) const {
  return all_nodes_[view % all_nodes_.size()];
}

void VrElection::ResetBudget() {
  missed_ = 0;
  budget_ = config_.timeout_ticks +
            static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(config_.timeout_ticks)));
}

void VrElection::Tick() {
  if (status_ == VrStatus::kNormal) {
    const NodeId leader = current_leader();
    if (leader == config_.pid) {
      return;  // primaries answer pings, they do not monitor
    }
    if (alive_seen_) {
      missed_ = 0;
    } else {
      ++missed_;
    }
    alive_seen_ = false;
    if (missed_ >= budget_) {
      AdvanceView(view_ + 1);
      return;
    }
    Emit(leader, VrPing{});
    return;
  }
  // View change in progress: if it stalls (designated leader unreachable or
  // not enough quorum-connected voters), try the next view.
  ++missed_;
  if (missed_ >= budget_) {
    AdvanceView(view_ + 1);
  }
}

void VrElection::AdvanceView(uint64_t view) {
  OPX_CHECK_GT(view, view_);
  view_ = view;
  status_ = VrStatus::kViewChange;
  OPX_TRACE(config_.obs, obs::EventKind::kVrViewChangeStart, config_.pid,
            LeaderOf(view_), view_);
  svc_received_.clear();
  svc_received_.insert(config_.pid);
  dvc_received_.clear();
  dvc_sent_ = false;
  ResetBudget();
  ++view_changes_started_;
  for (NodeId peer : config_.peers) {
    Emit(peer, StartViewChange{view_});
  }
  MaybeSendDoViewChange();
}

void VrElection::MaybeSendDoViewChange() {
  // EQC requirement: only a server that has itself heard StartViewChange from
  // a majority (i.e., is quorum-connected) votes for the new leader.
  if (dvc_sent_ || status_ != VrStatus::kViewChange ||
      svc_received_.size() < Majority()) {
    return;
  }
  dvc_sent_ = true;
  const NodeId leader = current_leader();
  OPX_TRACE(config_.obs, obs::EventKind::kVrDoViewChange, config_.pid, leader, view_,
            0, svc_received_.size());
  if (leader == config_.pid) {
    dvc_received_.insert(config_.pid);
    if (dvc_received_.size() >= Majority()) {
      CompleteViewChange();
    }
  } else {
    Emit(leader, DoViewChange{view_});
  }
}

void VrElection::CompleteViewChange() {
  if (status_ != VrStatus::kViewChange) {
    return;  // already completed via an earlier vote
  }
  status_ = VrStatus::kNormal;
  last_normal_view_ = view_;
  ResetBudget();
  leader_event_ = Ballot{view_ + 1, 0, config_.pid};
  OPX_TRACE(config_.obs, obs::EventKind::kVrLeader, config_.pid, config_.pid, view_, 0,
            dvc_received_.size());
  for (NodeId peer : config_.peers) {
    Emit(peer, StartView{view_});
  }
}

void VrElection::Handle(NodeId from, const VrMessage& msg) {
  if (const auto* svc = std::get_if<StartViewChange>(&msg)) {
    if (svc->view > view_) {
      AdvanceView(svc->view);
    }
    if (svc->view == view_ && status_ == VrStatus::kViewChange) {
      svc_received_.insert(from);
      MaybeSendDoViewChange();
    }
    return;
  }
  if (const auto* dvc = std::get_if<DoViewChange>(&msg)) {
    if (dvc->view > view_) {
      AdvanceView(dvc->view);
    }
    if (dvc->view == view_ && current_leader() == config_.pid &&
        status_ == VrStatus::kViewChange) {
      dvc_received_.insert(from);
      // Our own vote still requires our own SVC majority first (EQC).
      MaybeSendDoViewChange();
      if (dvc_sent_ && dvc_received_.size() >= Majority()) {
        CompleteViewChange();
      }
    }
    return;
  }
  if (const auto* sv = std::get_if<StartView>(&msg)) {
    if (sv->view > view_ || (sv->view == view_ && status_ == VrStatus::kViewChange)) {
      view_ = sv->view;
      status_ = VrStatus::kNormal;
      last_normal_view_ = view_;
      ResetBudget();
      alive_seen_ = true;
      leader_event_ = Ballot{view_ + 1, 0, from};
      OPX_TRACE(config_.obs, obs::EventKind::kVrStartView, config_.pid, from, view_);
    }
    return;
  }
  if (std::holds_alternative<VrPing>(msg)) {
    Emit(from, VrPong{});
    return;
  }
  if (std::holds_alternative<VrPong>(msg)) {
    if (status_ == VrStatus::kNormal && from == current_leader()) {
      alive_seen_ = true;
    }
  }
}

std::vector<VrOut> VrElection::TakeOutgoing() { return std::exchange(pending_out_, {}); }

std::optional<Ballot> VrElection::TakeLeaderEvent() {
  return std::exchange(leader_event_, std::nullopt);
}

void VrElection::Emit(NodeId to, VrMessage msg) {
  pending_out_.push_back(VrOut{to, std::move(msg)});
}

}  // namespace opx::vr
