// VR baseline replica: VrElection (view changes) + SequencePaxos (log
// replication), composed exactly as the paper's VR implementation (§7).
#ifndef SRC_VR_VR_REPLICA_H_
#define SRC_VR_VR_REPLICA_H_

#include <optional>
#include <variant>
#include <vector>

#include "src/audit/entry_hash.h"
#include "src/omnipaxos/sequence_paxos.h"
#include "src/omnipaxos/storage.h"
#include "src/vr/vr_election.h"

namespace opx::vr {

using VrWire = std::variant<omni::PaxosMessage, VrMessage>;

struct VrReplicaOut {
  NodeId to = kNoNode;
  VrWire body;
};

inline uint64_t WireBytes(const VrWire& m) {
  return std::visit([](const auto& inner) { return WireBytes(inner); }, m);
}

struct VrReplicaConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;
  int timeout_ticks = 3;
  size_t batch_limit = 0;
  uint64_t seed = 1;
  // Optional trace/metrics sink, forwarded to both components (DESIGN.md §12).
  obs::ObsSink* obs = nullptr;
};

class VrReplica {
 public:
  VrReplica(const VrReplicaConfig& config, omni::Storage* storage)
      : paxos_(MakePaxosConfig(config), storage), election_(MakeVrConfig(config)) {
    DrainLeaderEvents();
  }

  void Tick() {
    election_.Tick();
    DrainLeaderEvents();
  }

  void Handle(NodeId from, VrWire msg) {
    if (auto* paxos_msg = std::get_if<omni::PaxosMessage>(&msg)) {
      paxos_.Handle(from, std::move(*paxos_msg));
    } else {
      election_.Handle(from, std::get<VrMessage>(msg));
      DrainLeaderEvents();
    }
  }

  void Reconnected(NodeId peer) { paxos_.Reconnected(peer); }

  bool Append(omni::Entry entry) { return paxos_.Append(std::move(entry)); }

  std::vector<VrReplicaOut> TakeOutgoing() {
    std::vector<VrReplicaOut> out;
    for (VrOut& v : election_.TakeOutgoing()) {
      out.push_back(VrReplicaOut{v.to, std::move(v.body)});
    }
    for (omni::PaxosOut& p : paxos_.TakeOutgoing()) {
      out.push_back(VrReplicaOut{p.to, std::move(p.body)});
    }
    return out;
  }

  bool IsLeader() const { return paxos_.IsLeader(); }
  NodeId leader_hint() const { return paxos_.leader_hint(); }
  LogIndex decided_idx() const { return paxos_.decided_idx(); }
  const omni::Storage& storage() const { return paxos_.storage(); }
  const VrElection& election() const { return election_; }
  omni::SequencePaxos& paxos() { return paxos_; }

  // Read-only safety snapshot for the cross-replica auditor. Leader events
  // are Ballot{view+1, 0, leader(view)}, so the ballot pid is the view's
  // round-robin designee and doubles as the epoch owner.
  audit::AuditView Audit() const {
    const omni::Storage& st = paxos_.storage();
    audit::AuditView v;
    v.pid = paxos_.pid();
    v.protocol = "vr";
    v.is_leader = IsLeader();
    v.leader_epoch = paxos_.leader_ballot().n;
    v.leader_owner = paxos_.leader_ballot().pid;
    v.promised = audit::EpochOf(st.promised_round());
    v.accepted = audit::EpochOf(st.accepted_round());
    v.log_len = st.log_len();
    v.decided_idx = st.decided_idx();
    v.first_idx = st.compacted_idx();
    v.stop_is_final = true;
    v.ctx = this;
    v.entry_at = [](const void* ctx, LogIndex idx) {
      const auto* self = static_cast<const VrReplica*>(ctx);
      return audit::EntryInfo(self->paxos_.storage().At(idx));
    };
    return v;
  }

 private:
  void DrainLeaderEvents() {
    if (std::optional<Ballot> elected = election_.TakeLeaderEvent()) {
      paxos_.HandleLeader(*elected);
    }
  }

  static omni::SequencePaxosConfig MakePaxosConfig(const VrReplicaConfig& c) {
    omni::SequencePaxosConfig pc;
    pc.pid = c.pid;
    pc.peers = c.peers;
    pc.batch_limit = c.batch_limit;
    pc.obs = c.obs;
    return pc;
  }

  static VrConfig MakeVrConfig(const VrReplicaConfig& c) {
    VrConfig vc;
    vc.pid = c.pid;
    vc.peers = c.peers;
    vc.timeout_ticks = c.timeout_ticks;
    vc.seed = c.seed;
    vc.obs = c.obs;
    return vc;
  }

  omni::SequencePaxos paxos_;
  VrElection election_;
};

}  // namespace opx::vr

#endif  // SRC_VR_VR_REPLICA_H_
