// Viewstamped Replication leader election (Liskov & Cowling, "Viewstamped
// Replication Revisited", 2012) — the paper's VR baseline implements *VR's
// leader election combined with Omni-Paxos' log replication* (§7, Protocols),
// and this module reproduces exactly that: a view-change state machine that
// emits leader events consumed by SequencePaxos.
//
// VR properties exercised by the evaluation (Table 1):
//  * the leader of view v is predetermined round-robin: nodes[v mod N];
//  * a server sends DoViewChange only after receiving StartViewChange from a
//    majority — i.e., voters must themselves be quorum-connected, so a leader
//    must be Elected by Quorum-Connected servers (EQC);
//  * view-change progress requires the designated leader to collect a
//    majority of DoViewChange messages; otherwise the change times out and
//    the next view is attempted.
#ifndef SRC_VR_VR_ELECTION_H_
#define SRC_VR_VR_ELECTION_H_

#include <cstdint>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "src/obs/trace.h"
#include "src/omnipaxos/ballot.h"
#include "src/util/quorum.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace opx::vr {

using Ballot = omni::Ballot;

struct StartViewChange {
  uint64_t view = 0;
};

struct DoViewChange {
  uint64_t view = 0;
};

struct StartView {
  uint64_t view = 0;
};

struct VrPing {};
struct VrPong {};

using VrMessage = std::variant<StartViewChange, DoViewChange, StartView, VrPing, VrPong>;

struct VrOut {
  NodeId to = kNoNode;
  VrMessage body;
};

inline uint64_t WireBytes(const VrMessage&) { return 24; }

struct VrConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;
  // Missed-ping budget before suspecting the leader / retrying a stalled
  // view change (randomized up to 2x).
  int timeout_ticks = 3;
  uint64_t seed = 1;
  // Optional trace/metrics sink (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

enum class VrStatus { kNormal, kViewChange };

class VrElection {
 public:
  explicit VrElection(VrConfig config);

  void Tick();
  void Handle(NodeId from, const VrMessage& msg);

  std::vector<VrOut> TakeOutgoing();
  // Leader event for the replication layer: Ballot{n=view, pid=leader(view)}.
  std::optional<Ballot> TakeLeaderEvent();

  uint64_t view() const { return view_; }
  VrStatus status() const { return status_; }
  NodeId LeaderOf(uint64_t view) const;
  NodeId current_leader() const { return LeaderOf(view_); }
  uint64_t view_changes_started() const { return view_changes_started_; }

 private:
  size_t ClusterSize() const { return all_nodes_.size(); }
  size_t Majority() const { return util::MajorityOf(ClusterSize()); }

  void AdvanceView(uint64_t view);
  void MaybeSendDoViewChange();
  void CompleteViewChange();
  void ResetBudget();
  void Emit(NodeId to, VrMessage msg);

  VrConfig config_;
  Rng rng_;
  std::vector<NodeId> all_nodes_;  // sorted; round-robin view → leader map

  uint64_t view_ = 0;
  VrStatus status_ = VrStatus::kNormal;
  uint64_t last_normal_view_ = 0;
  std::set<NodeId> svc_received_;
  std::set<NodeId> dvc_received_;
  bool dvc_sent_ = false;

  int missed_ = 0;
  int budget_ = 0;
  bool alive_seen_ = false;

  uint64_t view_changes_started_ = 0;
  std::optional<Ballot> leader_event_;
  std::vector<VrOut> pending_out_;
};

}  // namespace opx::vr

#endif  // SRC_VR_VR_ELECTION_H_
