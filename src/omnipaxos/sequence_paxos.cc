#include "src/omnipaxos/sequence_paxos.h"

#include <algorithm>
#include <span>
#include <utility>

#include "src/util/check.h"
#include "src/util/log_index.h"
#include "src/util/logging.h"

namespace opx::omni {

SequencePaxos::SequencePaxos(SequencePaxosConfig config, Storage* storage, bool recovered)
    : config_(std::move(config)), storage_(storage) {
  OPX_CHECK_NE(config_.pid, kNoNode);
  OPX_CHECK(storage_ != nullptr);
  for (NodeId peer : config_.peers) {
    OPX_CHECK_NE(peer, config_.pid);
  }
  if (recovered) {
    phase_ = Phase::kRecover;
    // The current leader (if any) answers with <Prepare>, which re-runs log
    // synchronization for this server (Fig. 3b ⑩–⑪).
    for (NodeId peer : config_.peers) {
      Emit(peer, PrepareReq{});
    }
    OPX_TRACE(config_.obs, obs::EventKind::kSpPrepareReq, config_.pid, kNoNode, 0, 0,
              /*aux=*/1);  // 1 = crash recovery (§4.1.3)
  }
}

// ---------------------------------------------------------------------------
// Leader events (from BLE).
// ---------------------------------------------------------------------------

void SequencePaxos::HandleLeader(const Ballot& b) {
  if (b <= leader_ballot_) {
    return;
  }
  leader_ballot_ = b;
  if (b.pid == config_.pid && b > storage_->promised_round()) {
    BecomeLeader(b);
  } else if (b.pid != config_.pid && role_ == Role::kLeader) {
    // A higher ballot was elected elsewhere; revert to follower (§4.1).
    role_ = Role::kFollower;
    phase_ = Phase::kNone;
  }
}

void SequencePaxos::BecomeLeader(const Ballot& b) {
  role_ = Role::kLeader;
  phase_ = Phase::kPrepare;
  n_ = b;
  storage_->set_promised_round(b);
  promises_.clear();
  las_.clear();
  next_send_.clear();

  // Self-promise with the current local state.
  PromiseMeta self;
  self.acc_rnd = storage_->accepted_round();
  self.log_idx = storage_->log_len();
  self.decided_idx = storage_->decided_idx();
  promises_[config_.pid] = std::move(self);

  const Prepare prep{n_, storage_->accepted_round(), storage_->log_len(),
                     storage_->decided_idx()};
  for (NodeId peer : config_.peers) {
    Emit(peer, prep);
  }
  OPX_TRACE(config_.obs, obs::EventKind::kSpPrepareSent, config_.pid, kNoNode,
            ObsBallotKey(n_), storage_->log_len());
  if (promises_.size() >= Majority()) {  // single-server configuration
    CompletePreparePhase();
  }
}

// ---------------------------------------------------------------------------
// Message dispatch.
// ---------------------------------------------------------------------------

void SequencePaxos::Handle(NodeId from, PaxosMessage msg) {
  // A recovering server only reacts to <Prepare> (and leader events), both of
  // which lead to a log synchronization (§4.1.3).
  if (phase_ == Phase::kRecover && !std::holds_alternative<Prepare>(msg)) {
    return;
  }
  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Prepare>) {
          HandlePrepare(from, m);
        } else if constexpr (std::is_same_v<T, Promise>) {
          HandlePromise(from, std::move(m));
        } else if constexpr (std::is_same_v<T, AcceptSync>) {
          HandleAcceptSync(from, m);
        } else if constexpr (std::is_same_v<T, AcceptDecide>) {
          HandleAcceptDecide(from, m);
        } else if constexpr (std::is_same_v<T, Accepted>) {
          HandleAccepted(from, m);
        } else if constexpr (std::is_same_v<T, Decide>) {
          HandleDecide(from, m);
        } else if constexpr (std::is_same_v<T, PrepareReq>) {
          HandlePrepareReq(from);
        } else if constexpr (std::is_same_v<T, ProposalForward>) {
          HandleForward(std::move(m));
        }
      },
      std::move(msg));
}

// ---------------------------------------------------------------------------
// Prepare phase — log synchronization (§4.1.1).
// ---------------------------------------------------------------------------

void SequencePaxos::HandlePrepare(NodeId from, const Prepare& p) {
  if (p.n < storage_->promised_round()) {
    // Obsolete round. Deliberately no NACK: gossiping newer rounds back is
    // exactly the livelock mechanism §2c identifies in other protocols.
    return;
  }
  storage_->set_promised_round(p.n);
  if (p.n > leader_ballot_) {
    leader_ballot_ = p.n;
  }
  if (role_ == Role::kLeader && p.n > n_) {
    role_ = Role::kFollower;
  }
  if (role_ == Role::kLeader && p.n == n_) {
    return;  // our own round echoed back; nothing to do
  }
  phase_ = Phase::kPrepare;

  // Send the leader the entries it is missing (Fig. 3b ③): our log is more
  // updated iff our accepted round is higher, or equal with a longer log.
  Promise promise;
  promise.n = p.n;
  promise.acc_rnd = storage_->accepted_round();
  promise.log_idx = storage_->log_len();
  promise.decided_idx = storage_->decided_idx();
  if (storage_->accepted_round() > p.acc_rnd) {
    // Everything past the leader's decided prefix (always safe: the decided
    // prefix is chosen, hence contained in our more-updated log). If we
    // compacted below that point, the suffix starts at our compaction
    // boundary and a snapshot covers the rest (only decided entries are ever
    // trimmed, so the summarized prefix is chosen).
    LogIndex suffix_from = p.decided_idx;
    if (suffix_from < storage_->compacted_idx()) {
      suffix_from = storage_->compacted_idx();
      promise.snapshot_up_to = suffix_from;
    }
    promise.suffix = storage_->SharedSuffix(suffix_from);
  } else if (storage_->accepted_round() == p.acc_rnd && storage_->log_len() > p.log_idx) {
    // Same round ⇒ same leader ⇒ our log extends the leader's (FIFO). We may
    // still have compacted past the candidate's log end (snapshot install or
    // backstop trim while it was down): only decided entries are ever
    // summarized, so ship the boundary and the tail behind it.
    LogIndex suffix_from = p.log_idx;
    if (suffix_from < storage_->compacted_idx()) {
      suffix_from = storage_->compacted_idx();
      promise.snapshot_up_to = suffix_from;
    }
    promise.suffix = storage_->SharedSuffix(suffix_from);
  }
  Emit(from, std::move(promise));
  OPX_TRACE(config_.obs, obs::EventKind::kSpPromiseSent, config_.pid, from,
            ObsBallotKey(p.n), storage_->log_len());
}

void SequencePaxos::HandlePromise(NodeId from, Promise pr) {
  if (role_ != Role::kLeader || pr.n != n_) {
    return;
  }
  PromiseMeta meta;
  meta.acc_rnd = pr.acc_rnd;
  meta.log_idx = pr.log_idx;
  meta.decided_idx = pr.decided_idx;
  meta.snapshot_up_to = pr.snapshot_up_to;
  meta.suffix = std::move(pr.suffix);

  if (phase_ == Phase::kPrepare) {
    promises_[from] = std::move(meta);
    if (promises_.size() >= Majority()) {
      CompletePreparePhase();
    }
  } else if (phase_ == Phase::kAccept) {
    // Straggler outside the prepare majority (§4.1.2): synchronize it now.
    promises_[from] = meta;
    SendAcceptSyncTo(from, meta);
  }
}

void SequencePaxos::CompletePreparePhase() {
  OPX_CHECK(role_ == Role::kLeader && phase_ == Phase::kPrepare);
  OPX_TRACE(config_.obs, obs::EventKind::kSpPromiseQuorum, config_.pid, kNoNode,
            ObsBallotKey(n_), storage_->log_len(), promises_.size());

  // Adopt the most updated log among the majority: highest accepted round,
  // ties broken by log length (§4.1.1).
  const NodeId self = config_.pid;
  const PromiseMeta* max_meta = &promises_.at(self);
  NodeId max_pid = self;
  for (const auto& [pid, meta] : promises_) {
    if (std::tie(meta.acc_rnd, meta.log_idx) >
        std::tie(max_meta->acc_rnd, max_meta->log_idx)) {
      max_meta = &meta;
      max_pid = pid;
    }
  }
  adoption_acc_rnd_ = max_meta->acc_rnd;

  if (max_pid != self) {
    if (max_meta->acc_rnd > storage_->accepted_round()) {
      if (max_meta->snapshot_up_to > 0) {
        // The winner compacted below our decided index: install its snapshot
        // boundary and the suffix behind it (the summarized prefix is chosen).
        // The suffix was accepted under the winner's round; the install
        // carries it atomically before we raise to n_ below.
        storage_->ResetToSnapshot(max_meta->acc_rnd, max_meta->snapshot_up_to,
                                  max_meta->suffix);
        RecordSnapshotInstall(max_pid, max_meta->acc_rnd, max_meta->snapshot_up_to,
                              max_meta->suffix.size());
      } else {
        // The winner's suffix was taken from our decided index (Prepare
        // carried it); replace everything beyond our decided prefix.
        storage_->TruncateAndAppend(storage_->decided_idx(), max_meta->suffix);
      }
    } else if (max_meta->acc_rnd == storage_->accepted_round() &&
               max_meta->log_idx > storage_->log_len()) {
      if (max_meta->snapshot_up_to > 0) {
        // Same round, but the winner compacted past our log end: appending
        // its suffix directly would leave a gap, so install the boundary.
        storage_->ResetToSnapshot(max_meta->acc_rnd, max_meta->snapshot_up_to,
                                  max_meta->suffix);
        RecordSnapshotInstall(max_pid, max_meta->acc_rnd, max_meta->snapshot_up_to,
                              max_meta->suffix.size());
      } else {
        // Same round: the winner extends our log; its suffix starts at our
        // Prepare-time log length, which is unchanged (leaders do not accept
        // entries during their own Prepare phase).
        storage_->AppendAll(max_meta->suffix);
      }
    }
  }
  adoption_base_len_ = storage_->log_len();
  storage_->set_accepted_round(n_);

  // Adopt the furthest decided index observed; all of it is chosen and the
  // adopted log contains every chosen entry.
  LogIndex max_decided = storage_->decided_idx();
  for (const auto& [pid, meta] : promises_) {
    max_decided = std::max(max_decided, meta.decided_idx);
  }
  OPX_CHECK_LE(max_decided, storage_->log_len());
  if (max_decided > storage_->decided_idx()) {
    storage_->set_decided_idx(max_decided);
    decided_dirty_ = true;
    OPX_TRACE(config_.obs, obs::EventKind::kSpDecide, config_.pid, kNoNode,
              ObsBallotKey(n_), max_decided);
  }

  phase_ = Phase::kAccept;
  las_[self] = storage_->log_len();

  for (const auto& [pid, meta] : promises_) {
    if (pid != self) {
      SendAcceptSyncTo(pid, meta);
    }
  }
  // Queued client proposals are appended by the next FlushProposals().
}

void SequencePaxos::SendAcceptSyncTo(NodeId follower, const PromiseMeta& meta) {
  OPX_CHECK(role_ == Role::kLeader && phase_ == Phase::kAccept);
  LogIndex sync_idx;
  if (meta.acc_rnd == n_) {
    // Re-promise within the current round (reconnect path): the follower's
    // round-n_ log is a prefix of ours, so only the missing tail is needed.
    sync_idx = meta.log_idx;
  } else if (meta.acc_rnd == adoption_acc_rnd_) {
    // Same round as the adopted log: logs are prefixes of one another. The
    // follower keeps min(its length, adopted length); any unchosen tail it
    // has beyond the adopted log is truncated and overwritten.
    sync_idx = std::min(meta.log_idx, adoption_base_len_);
  } else {
    // Different round: only the follower's decided prefix is guaranteed to
    // agree with the adopted log; overwrite the rest (Fig. 3a, server C).
    sync_idx = meta.decided_idx;
  }
  AcceptSync as;
  as.n = n_;
  if (sync_idx < storage_->compacted_idx()) {
    // We trimmed below the follower's sync point: ship a snapshot boundary at
    // our decided index plus the undecided tail (§ compaction).
    as.snapshot_up_to = storage_->decided_idx();
    sync_idx = as.snapshot_up_to;
  }
  as.sync_idx = sync_idx;
  as.suffix = storage_->SharedSuffix(sync_idx);
  as.decided_idx = storage_->decided_idx();
  next_send_[follower] = storage_->log_len();
  Emit(follower, std::move(as));
}

// ---------------------------------------------------------------------------
// Accept phase — replication (§4.1.2).
// ---------------------------------------------------------------------------

void SequencePaxos::HandleAcceptSync(NodeId from, const AcceptSync& as) {
  if (as.n != storage_->promised_round() || role_ != Role::kFollower ||
      phase_ != Phase::kPrepare) {
    return;
  }
  if (as.snapshot_up_to > 0) {
    // Round + boundary + suffix land as one atomic durable transition; a
    // crash can never expose the new log under the old accepted round.
    storage_->ResetToSnapshot(as.n, as.snapshot_up_to, as.suffix);
    RecordSnapshotInstall(from, as.n, as.snapshot_up_to, as.suffix.size());
  } else {
    storage_->set_accepted_round(as.n);
    storage_->TruncateAndAppend(as.sync_idx, as.suffix);
  }
  phase_ = Phase::kAccept;
  const LogIndex decided = std::min<LogIndex>(as.decided_idx, storage_->log_len());
  if (decided > storage_->decided_idx()) {
    storage_->set_decided_idx(decided);
    OPX_TRACE(config_.obs, obs::EventKind::kSpDecide, config_.pid, from,
              ObsBallotKey(as.n), decided);
  }
  Emit(from, Accepted{as.n, storage_->log_len()});
  OPX_TRACE(config_.obs, obs::EventKind::kSpAcceptSyncApplied, config_.pid, from,
            ObsBallotKey(as.n), storage_->log_len());
}

void SequencePaxos::HandleAcceptDecide(NodeId from, const AcceptDecide& ad) {
  if (ad.n != storage_->promised_round() || role_ != Role::kFollower ||
      phase_ != Phase::kAccept) {
    return;
  }
  const LogIndex len = storage_->log_len();
  if (ad.start_idx > len) {
    // Entries were lost to a link cut that raced the reconnect notification;
    // ask the leader for a fresh synchronization instead of creating a gap.
    Emit(from, PrepareReq{});
    OPX_TRACE(config_.obs, obs::EventKind::kSpPrepareReq, config_.pid, from,
              ObsBallotKey(ad.n), ad.start_idx, /*aux=*/2);  // 2 = log gap
    return;
  }
  if (ad.start_idx + ad.entries.size() <= len) {
    return;  // pure duplicate
  }
  const std::span<const Entry> entries = ad.entries;
  if (ad.start_idx < len) {
    // Overlapping resend: append only the unseen tail (a subspan, no copy).
    storage_->AppendAll(entries.subspan(len - ad.start_idx));
  } else {
    storage_->AppendAll(entries);
  }
  const LogIndex decided = std::min<LogIndex>(ad.decided_idx, storage_->log_len());
  if (decided > storage_->decided_idx()) {
    storage_->set_decided_idx(decided);
    OPX_TRACE(config_.obs, obs::EventKind::kSpDecide, config_.pid, from,
              ObsBallotKey(ad.n), decided);
  }
  if (!ad.entries.empty()) {
    Emit(from, Accepted{ad.n, storage_->log_len()});
  }
}

void SequencePaxos::HandleAccepted(NodeId from, const Accepted& a) {
  if (role_ != Role::kLeader || a.n != n_ || phase_ != Phase::kAccept) {
    return;
  }
  LogIndex& las = las_[from];
  las = std::max(las, a.log_idx);
  UpdateDecidedAsLeader();
}

void SequencePaxos::UpdateDecidedAsLeader() {
  // An index is chosen once a majority has accepted it (Fig. 3b ⑨). All
  // acknowledgements refer to round n_, so P2 is preserved.
  std::vector<LogIndex> acks;
  acks.reserve(las_.size());
  for (const auto& [pid, idx] : las_) {
    acks.push_back(idx);
  }
  if (acks.size() < Majority()) {
    return;
  }
  std::nth_element(acks.begin(), acks.begin() + static_cast<ptrdiff_t>(Majority() - 1),
                   acks.end(), std::greater<LogIndex>());
  const LogIndex chosen = acks[Majority() - 1];
  if (chosen > storage_->decided_idx()) {
    storage_->set_decided_idx(chosen);
    decided_dirty_ = true;
    OPX_TRACE(config_.obs, obs::EventKind::kSpDecide, config_.pid, kNoNode,
              ObsBallotKey(n_), chosen);
  }
}

void SequencePaxos::HandleDecide(NodeId from, const Decide& d) {
  if (d.n != storage_->promised_round() || role_ != Role::kFollower ||
      phase_ != Phase::kAccept) {
    return;
  }
  const LogIndex decided = std::min<LogIndex>(d.decided_idx, storage_->log_len());
  if (decided > storage_->decided_idx()) {
    storage_->set_decided_idx(decided);
    OPX_TRACE(config_.obs, obs::EventKind::kSpDecide, config_.pid, from,
              ObsBallotKey(d.n), decided);
  }
}

// ---------------------------------------------------------------------------
// Recovery, reconnects, proposals.
// ---------------------------------------------------------------------------

void SequencePaxos::HandlePrepareReq(NodeId from) {
  if (role_ == Role::kLeader) {
    // Pause accepts to this follower until it re-promises (AcceptSync re-adds
    // it); otherwise a stale next_send_ could ship entries past a gap.
    next_send_.erase(from);
    Emit(from, Prepare{n_, storage_->accepted_round(), storage_->log_len(),
                       storage_->decided_idx()});
  }
}

void SequencePaxos::HandleForward(ProposalForward pf) {
  for (Entry& e : pf.entries) {
    Append(std::move(e));  // drops if stopped; no re-forwarding loops
  }
}

void SequencePaxos::Reconnected(NodeId peer) {
  if (phase_ == Phase::kRecover) {
    Emit(peer, PrepareReq{});
    OPX_TRACE(config_.obs, obs::EventKind::kSpPrepareReq, config_.pid, peer, 0, 0,
              /*aux=*/3);  // 3 = reconnect while recovering
    return;
  }
  if (role_ == Role::kLeader) {
    // The peer may have missed accepts during the disconnect; re-run its
    // synchronization (§4.1.3 ⑫ mirror-side).
    next_send_.erase(peer);
    Emit(peer, Prepare{n_, storage_->accepted_round(), storage_->log_len(),
                       storage_->decided_idx()});
  } else if (peer == leader_ballot_.pid || leader_ballot_ == kNullBallot) {
    Emit(peer, PrepareReq{});
    OPX_TRACE(config_.obs, obs::EventKind::kSpPrepareReq, config_.pid, peer,
              ObsBallotKey(leader_ballot_), 0, /*aux=*/4);  // 4 = link reconnect
  }
}

bool SequencePaxos::Append(Entry entry) {
  if (IsStopped() || LogIsStopped()) {
    return false;
  }
  proposal_queue_.push_back(std::move(entry));
  return true;
}

std::vector<Entry> SequencePaxos::TakeUnproposed() {
  return std::exchange(proposal_queue_, {});
}

void SequencePaxos::RecordSnapshotInstall(NodeId from, const Ballot& round,
                                          LogIndex up_to, size_t suffix_len) {
  OPX_TRACE(config_.obs, obs::EventKind::kSpSnapshotInstall, config_.pid, from,
            ObsBallotKey(round), up_to, suffix_len);
#if defined(OPX_OBS_ENABLED)
  if (config_.obs != nullptr) {
    config_.obs->metrics().GetCounter("sp/snapshot_installs")->Inc();
  }
#endif
}

void SequencePaxos::Trim(LogIndex idx) {
  OPX_CHECK(!IsStopped()) << "a stopped configuration must not trim its stop-sign";
  const LogIndex before = storage_->compacted_idx();
  storage_->Trim(idx);
  if (storage_->compacted_idx() > before) {
    OPX_TRACE(config_.obs, obs::EventKind::kSpTrim, config_.pid, kNoNode,
              ObsBallotKey(storage_->accepted_round()), storage_->compacted_idx(),
              util::IndexBack(storage_->compacted_idx(), before));
#if defined(OPX_OBS_ENABLED)
    if (config_.obs != nullptr) {
      config_.obs->metrics().GetCounter("sp/trims")->Inc();
      config_.obs->metrics()
          .GetCounter("sp/trimmed_entries")
          ->Inc(util::IndexBack(storage_->compacted_idx(), before));
    }
#endif
  }
}

void SequencePaxos::MaybeAutoTrim() {
  const LogIndex wm = config_.trim_watermark;
  if (wm == 0 || IsStopped()) {
    return;
  }
  const LogIndex decided = storage_->decided_idx();
  const LogIndex compacted = storage_->compacted_idx();
  if (role_ == Role::kLeader && phase_ == Phase::kAccept) {
    // Trim what every tracked server has accepted. A straggler more than
    // three watermarks behind stops holding the floor: it is written off as
    // dead-or-partitioned and will re-sync via snapshot (SendAcceptSyncTo).
    const LogIndex straggler_floor = decided > 3 * wm ? decided - 3 * wm : 0;
    LogIndex floor = decided;
    for (NodeId p : config_.peers) {
      const auto it = las_.find(p);
      const LogIndex la = it == las_.end() ? 0 : it->second;
      floor = std::min(floor, std::max(la, straggler_floor));
    }
    if (floor >= compacted + wm) {
      Trim(floor);
    }
  } else if (decided >= compacted + 3 * wm) {
    // Follower backstop: bound memory independently of the leader, keeping a
    // two-watermark decided tail so most leader changes resync without a
    // snapshot transfer.
    Trim(decided - 2 * wm);
  }
}

// ---------------------------------------------------------------------------
// Flushing.
// ---------------------------------------------------------------------------

void SequencePaxos::FlushProposals() {
  if (proposal_queue_.empty()) {
    return;
  }
  if (role_ != Role::kLeader) {
    // Forward to the (believed) leader; the client retries on silence.
    const NodeId leader = leader_ballot_.pid;
    if (leader != kNoNode && leader != config_.pid) {
      ProposalForward fwd;
      fwd.entries = std::exchange(proposal_queue_, {});
      Emit(leader, std::move(fwd));
    }
    return;
  }
  if (phase_ != Phase::kAccept) {
    return;  // keep buffering until the Prepare phase completes
  }
  size_t budget =
      config_.batch_limit == 0 ? proposal_queue_.size() : config_.batch_limit;
  size_t taken = 0;
  while (taken < proposal_queue_.size() && budget > 0 && !LogIsStopped()) {
    storage_->Append(std::move(proposal_queue_[taken]));
    ++taken;
    --budget;
  }
  proposal_queue_.erase(proposal_queue_.begin(),
                        proposal_queue_.begin() + static_cast<ptrdiff_t>(taken));
  if (taken > 0) {
    las_[config_.pid] = storage_->log_len();
    UpdateDecidedAsLeader();  // single-server configurations decide instantly
  }
}

void SequencePaxos::FlushAccepts() {
  if (role_ != Role::kLeader || phase_ != Phase::kAccept) {
    return;
  }
  const LogIndex len = storage_->log_len();
  const LogIndex decided = storage_->decided_idx();
  // Prewarm the shared-suffix memo at the furthest-behind follower: every
  // per-follower body below is then an offset view into one snapshot (one
  // materialization per flush regardless of cluster size).
  LogIndex min_next = len;
  for (const auto& [pid, next] : next_send_) {
    min_next = std::min(min_next, next);
  }
  if (min_next < len) {
    (void)storage_->SharedSuffix(min_next);
  }
  for (auto& [pid, next] : next_send_) {
    if (next < len) {
      AcceptDecide ad;
      ad.n = n_;
      ad.start_idx = next;
      ad.entries = storage_->SharedSuffix(next);
      ad.decided_idx = decided;
      OPX_TRACE(config_.obs, obs::EventKind::kSpAcceptDecideSent, config_.pid, pid,
                ObsBallotKey(n_), next, len - next);
      next = len;
      Emit(pid, std::move(ad));
    } else if (decided_dirty_) {
      Emit(pid, Decide{n_, decided});
    }
  }
  decided_dirty_ = false;
}

std::vector<PaxosOut> SequencePaxos::TakeOutgoing() {
  FlushProposals();
  FlushAccepts();
  return std::exchange(pending_out_, {});
}

void SequencePaxos::Emit(NodeId to, PaxosMessage msg) {
  pending_out_.push_back(PaxosOut{to, std::move(msg)});
}

// ---------------------------------------------------------------------------
// Stop-sign observers (§6).
// ---------------------------------------------------------------------------

bool SequencePaxos::LogIsStopped() const {
  const LogIndex len = storage_->log_len();
  // Entries below the compaction boundary cannot be stop-signs: Trim()
  // rejects compaction of a stopped configuration.
  return len > storage_->compacted_idx() && storage_->At(len - 1).IsStopSign();
}

bool SequencePaxos::IsStopped() const {
  const LogIndex decided = storage_->decided_idx();
  return decided > storage_->compacted_idx() && storage_->At(decided - 1).IsStopSign();
}

std::optional<StopSign> SequencePaxos::DecidedStopSign() const {
  if (!IsStopped()) {
    return std::nullopt;
  }
  return *storage_->At(util::IndexBack(storage_->decided_idx(), 1)).stop_sign;
}

}  // namespace opx::omni
