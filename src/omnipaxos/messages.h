// Wire messages of Sequence Paxos (§4, Fig. 3) and Ballot Leader Election
// (§5.2, Fig. 4).
#ifndef SRC_OMNIPAXOS_MESSAGES_H_
#define SRC_OMNIPAXOS_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"
#include "src/util/types.h"

namespace opx::omni {

// ---------------------------------------------------------------------------
// Sequence Paxos messages.
// ---------------------------------------------------------------------------

// Leader → follower: opens round n and states the leader's log position so
// the follower can compute which entries the leader is missing (Fig. 3b ②).
struct Prepare {
  Ballot n;
  Ballot acc_rnd;        // round of the leader's last accepted entry
  LogIndex log_idx = 0;  // leader's log length
  LogIndex decided_idx = 0;
};

// Follower → leader: the promise not to accept lower rounds, plus the suffix
// of entries the leader is missing (Fig. 3b ③). The suffix is an immutable
// shared segment: building the message from the follower's log is a
// shared_ptr bump, not a copy.
struct Promise {
  Ballot n;
  Ballot acc_rnd;
  EntrySegment suffix;
  LogIndex log_idx = 0;  // follower's log length
  LogIndex decided_idx = 0;
  // Non-zero when the follower compacted below the leader's sync point: the
  // suffix starts at snapshot_up_to, and everything below is covered by a
  // snapshot (all chosen, §4.2 — compaction only touches the decided prefix).
  LogIndex snapshot_up_to = 0;
};

// Leader → follower: synchronizes the follower's log with the leader's
// adopted log; the follower truncates at sync_idx and appends suffix
// (Fig. 3b ④/⑤).
struct AcceptSync {
  Ballot n;
  EntrySegment suffix;  // shared across all followers synced in one phase
  LogIndex sync_idx = 0;
  LogIndex decided_idx = 0;
  // Non-zero when the leader compacted below the follower's sync point: the
  // follower installs a snapshot covering [0, snapshot_up_to) and appends the
  // suffix behind it.
  LogIndex snapshot_up_to = 0;
};

// Leader → follower: replicates new entries in FIFO order and piggybacks the
// leader's decided index (Fig. 3b ⑦). start_idx is the log position of
// entries.front(); followers use it to detect (and resynchronize after) gaps
// caused by messages lost to a link cut racing the reconnect notification.
struct AcceptDecide {
  Ballot n;
  LogIndex start_idx = 0;
  // One immutable snapshot of the leader's log tail, shared by every
  // follower's message as an offset view (zero-copy fan-out).
  EntrySegment entries;
  LogIndex decided_idx = 0;
};

// Follower → leader: acknowledges every entry up to log_idx (Fig. 3b ⑧).
struct Accepted {
  Ballot n;
  LogIndex log_idx = 0;
};

// Leader → follower: advances the decided index without new entries.
struct Decide {
  Ballot n;
  LogIndex decided_idx = 0;
};

// Recovering / reconnecting server → peers: "if you are the leader, send me
// <Prepare>" (§4.1.3, Fig. 3b ⑩–⑫).
struct PrepareReq {};

// Follower → leader: forwards client proposals so any server can accept them.
struct ProposalForward {
  std::vector<Entry> entries;
};

using PaxosMessage = std::variant<Prepare, Promise, AcceptSync, AcceptDecide, Accepted, Decide,
                                  PrepareReq, ProposalForward>;

// Addressed Sequence Paxos message produced by the protocol state machine.
struct PaxosOut {
  NodeId to = kNoNode;
  PaxosMessage body;
};

// Approximate wire size for I/O accounting (header + ballots + entries).
inline uint64_t WireBytes(const PaxosMessage& m) {
  constexpr uint64_t kHeader = 24;  // type tag + ballot + indices
  return std::visit(
      [&](const auto& msg) -> uint64_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Promise>) {
          return kHeader + 24 + EntriesWireBytes(msg.suffix);
        } else if constexpr (std::is_same_v<T, AcceptSync>) {
          return kHeader + 16 + EntriesWireBytes(msg.suffix);
        } else if constexpr (std::is_same_v<T, AcceptDecide>) {
          return kHeader + 8 + EntriesWireBytes(msg.entries);
        } else if constexpr (std::is_same_v<T, ProposalForward>) {
          return kHeader + EntriesWireBytes(msg.entries);
        } else {
          return kHeader;
        }
      },
      m);
}

// ---------------------------------------------------------------------------
// Ballot Leader Election messages (Fig. 4).
// ---------------------------------------------------------------------------

struct HeartbeatRequest {
  uint64_t round = 0;
};

// The reply carries the sender's ballot and its quorum-connected flag — the
// only two facts BLE ever gossips (deliberately *not* the leader identity).
struct HeartbeatReply {
  uint64_t round = 0;
  Ballot ballot;
  bool quorum_connected = false;
};

using BleMessage = std::variant<HeartbeatRequest, HeartbeatReply>;

struct BleOut {
  NodeId to = kNoNode;
  BleMessage body;
};

inline uint64_t WireBytes(const BleMessage& m) {
  return std::holds_alternative<HeartbeatRequest>(m) ? 16 : 32;
}

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_MESSAGES_H_
