#include "src/omnipaxos/omni_paxos.h"

#include <utility>

#include "src/audit/entry_hash.h"

namespace opx::omni {
namespace {

SequencePaxosConfig MakePaxosConfig(const OmniConfig& c) {
  SequencePaxosConfig pc;
  pc.pid = c.pid;
  pc.peers = c.peers;
  pc.config_id = c.config_id;
  pc.batch_limit = c.batch_limit;
  pc.trim_watermark = c.trim_watermark;
  pc.obs = c.obs;
  return pc;
}

BleConfig MakeBleConfig(const OmniConfig& c, const Storage& storage, bool recovered) {
  BleConfig bc;
  bc.pid = c.pid;
  bc.peers = c.peers;
  bc.priority = c.ble_priority;
  bc.initial_n = storage.promised_round().n;
  bc.recovered = recovered;
  bc.lease_rounds = c.lease_rounds;
  bc.obs = c.obs;
  return bc;
}

}  // namespace

OmniPaxos::OmniPaxos(const OmniConfig& config, Storage* storage, bool recovered)
    : config_(config),
      paxos_(MakePaxosConfig(config), storage, recovered),
      ble_(MakeBleConfig(config, *storage, recovered)) {}

void OmniPaxos::TickElection() {
  ble_.Tick();
  DrainLeaderEvents();
  // The heartbeat period is also the compaction cadence: cheap, amortized,
  // and deterministic in the lockstep harnesses.
  paxos_.MaybeAutoTrim();
}

void OmniPaxos::Handle(NodeId from, OmniMessage msg) {
  if (auto* paxos_msg = std::get_if<PaxosMessage>(&msg)) {
    paxos_.Handle(from, std::move(*paxos_msg));
  } else {
    ble_.Handle(from, std::get<BleMessage>(msg));
    DrainLeaderEvents();
  }
}

void OmniPaxos::DrainLeaderEvents() {
  if (std::optional<Ballot> elected = ble_.TakeLeaderEvent()) {
    paxos_.HandleLeader(*elected);
  }
}

void OmniPaxos::Reconnected(NodeId peer) { paxos_.Reconnected(peer); }

bool OmniPaxos::Append(Entry entry) { return paxos_.Append(std::move(entry)); }

bool OmniPaxos::ProposeReconfiguration(StopSign ss) {
  if (stop_sign_proposed_ || IsStopped()) {
    return false;
  }
  if (!paxos_.Append(Entry::Stop(std::move(ss)))) {
    return false;
  }
  stop_sign_proposed_ = true;
  OPX_TRACE(config_.obs, obs::EventKind::kReconfigStopSign, config_.pid, kNoNode, 0,
            paxos_.log_len(), 0, config_.config_id);
  return true;
}

audit::AuditView OmniPaxos::Audit() const {
  const Storage& st = paxos_.storage();
  audit::AuditView v;
  v.pid = config_.pid;
  v.protocol = "omnipaxos";
  v.is_leader = IsLeader();
  v.leader_epoch = paxos_.leader_ballot().n;
  v.leader_owner = paxos_.leader_ballot().pid;
  v.promised = audit::EpochOf(st.promised_round());
  v.accepted = audit::EpochOf(st.accepted_round());
  v.log_len = st.log_len();
  v.decided_idx = st.decided_idx();
  v.first_idx = st.compacted_idx();
  v.stop_is_final = true;
  v.ctx = this;
  v.entry_at = [](const void* ctx, LogIndex idx) {
    const auto* self = static_cast<const OmniPaxos*>(ctx);
    return audit::EntryInfo(self->paxos_.storage().At(idx));
  };
  return v;
}

std::vector<OmniOut> OmniPaxos::TakeOutgoing() {
  std::vector<OmniOut> out;
  for (BleOut& b : ble_.TakeOutgoing()) {
    out.push_back(OmniOut{b.to, std::move(b.body)});
  }
  for (PaxosOut& p : paxos_.TakeOutgoing()) {
    out.push_back(OmniOut{p.to, std::move(p.body)});
  }
  return out;
}

}  // namespace opx::omni
