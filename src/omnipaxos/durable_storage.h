// Write-ahead-logged Storage backend.
//
// The fail-recovery model (§3) requires the promised round, accepted round,
// log, and decided index to survive crashes. DurableStorage journals every
// mutation to an append-only WAL file; Recover() replays the journal to
// rebuild the exact pre-crash state, tolerating a torn (partially written)
// final record.
//
// Record format (little-endian, no alignment):
//   [u8 type][payload...][u32 payload_crc]
// Types:
//   kPromise / kAccepted : Ballot {u64 n, u32 priority, i32 pid}
//   kAppend              : Entry  {u64 cmd_id, u32 payload, u8 is_ss,
//                                  [u32 next_config, u32 n, i32 pid × n]}
//   kTruncate            : u64 new_len (suffix entries follow as kAppend)
//   kDecide              : u64 decided_idx
//   kTrim                : u64 trim_idx (compaction boundary; prefix dropped)
//   kSnapshot            : Ballot accepted, u64 up_to, u32 n, Entry × n
//                          (atomic ResetToSnapshot: round + boundary + suffix)
#ifndef SRC_OMNIPAXOS_DURABLE_STORAGE_H_
#define SRC_OMNIPAXOS_DURABLE_STORAGE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/omnipaxos/storage.h"

namespace opx::omni {

class DurableStorage final : public Storage {
 public:
  // Creates a fresh storage journaling to `path` (truncates any existing
  // file). Use Recover() to resume from an existing journal.
  static std::unique_ptr<DurableStorage> Create(const std::string& path);

  // Rebuilds storage state from the journal at `path` and reopens it for
  // appending. A torn final record is discarded. Returns nullptr if the file
  // cannot be opened.
  static std::unique_ptr<DurableStorage> Recover(const std::string& path);

  ~DurableStorage() override;

  void set_promised_round(const Ballot& b) override;
  void set_accepted_round(const Ballot& b) override;
  void Append(Entry e) override;
  void AppendAll(std::span<const Entry> entries) override;
  void TruncateAndAppend(LogIndex len, std::span<const Entry> suffix) override;
  void set_decided_idx(LogIndex idx) override;
  void Trim(LogIndex idx) override;
  void ResetToSnapshot(const Ballot& accepted, LogIndex up_to,
                       std::span<const Entry> suffix) override;
  // Re-expose the base initializer_list conveniences hidden by the overrides.
  using Storage::AppendAll;
  using Storage::TruncateAndAppend;
  using Storage::ResetToSnapshot;

  // Flushes buffered journal bytes to the OS (fflush; a production system
  // would fsync here).
  void Sync();

  const std::string& path() const { return path_; }

 private:
  explicit DurableStorage(const std::string& path);

  void WriteRecord(uint8_t type, const std::vector<uint8_t>& payload);

  std::string path_;
  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> in the header
};

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_DURABLE_STORAGE_H_
