// Replicated-log entries.
//
// An entry is either a client command (identified by cmd_id, with an abstract
// payload size used for wire accounting) or a stop-sign (§6): the special
// final entry of a configuration carrying the next configuration's membership.
#ifndef SRC_OMNIPAXOS_ENTRY_H_
#define SRC_OMNIPAXOS_ENTRY_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "src/util/types.h"

namespace opx::omni {

// Next-configuration descriptor decided as the last entry of a configuration.
struct StopSign {
  ConfigId next_config = 0;
  std::vector<NodeId> next_nodes;

  friend bool operator==(const StopSign& a, const StopSign& b) {
    return a.next_config == b.next_config && a.next_nodes == b.next_nodes;
  }
};

struct Entry {
  uint64_t cmd_id = 0;
  uint32_t payload_bytes = 0;
  // Shared, immutable after construction; null for ordinary commands.
  std::shared_ptr<const StopSign> stop_sign;

  static Entry Command(uint64_t cmd_id, uint32_t payload_bytes) {
    Entry e;
    e.cmd_id = cmd_id;
    e.payload_bytes = payload_bytes;
    return e;
  }

  static Entry Stop(StopSign ss) {
    Entry e;
    e.payload_bytes = static_cast<uint32_t>(8 + ss.next_nodes.size() * 4);
    e.stop_sign = std::make_shared<const StopSign>(std::move(ss));
    return e;
  }

  bool IsStopSign() const { return stop_sign != nullptr; }

  friend bool operator==(const Entry& a, const Entry& b) {
    if (a.cmd_id != b.cmd_id || a.payload_bytes != b.payload_bytes) {
      return false;
    }
    if ((a.stop_sign == nullptr) != (b.stop_sign == nullptr)) {
      return false;
    }
    return a.stop_sign == nullptr || *a.stop_sign == *b.stop_sign;
  }

  friend std::ostream& operator<<(std::ostream& os, const Entry& e) {
    if (e.IsStopSign()) {
      return os << "SS(c" << e.stop_sign->next_config << ")";
    }
    return os << "cmd#" << e.cmd_id;
  }
};

// Approximate wire size of one entry (payload plus per-entry metadata).
inline uint64_t EntryWireBytes(const Entry& e) { return e.payload_bytes + 16; }

inline uint64_t EntriesWireBytes(const std::vector<Entry>& entries) {
  uint64_t total = 0;
  for (const Entry& e : entries) {
    total += EntryWireBytes(e);
  }
  return total;
}

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_ENTRY_H_
