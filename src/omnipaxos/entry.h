// Replicated-log entries.
//
// An entry is either a client command (identified by cmd_id, with an abstract
// payload size used for wire accounting) or a stop-sign (§6): the special
// final entry of a configuration carrying the next configuration's membership.
#ifndef SRC_OMNIPAXOS_ENTRY_H_
#define SRC_OMNIPAXOS_ENTRY_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace opx::omni {

// Next-configuration descriptor decided as the last entry of a configuration.
struct StopSign {
  ConfigId next_config = 0;
  std::vector<NodeId> next_nodes;

  friend bool operator==(const StopSign& a, const StopSign& b) {
    return a.next_config == b.next_config && a.next_nodes == b.next_nodes;
  }
};

struct Entry {
  uint64_t cmd_id = 0;
  uint32_t payload_bytes = 0;
  // Shared, immutable after construction; null for ordinary commands.
  std::shared_ptr<const StopSign> stop_sign;

  static Entry Command(uint64_t cmd_id, uint32_t payload_bytes) {
    Entry e;
    e.cmd_id = cmd_id;
    e.payload_bytes = payload_bytes;
    return e;
  }

  static Entry Stop(StopSign ss) {
    Entry e;
    e.payload_bytes = static_cast<uint32_t>(8 + ss.next_nodes.size() * 4);
    e.stop_sign = std::make_shared<const StopSign>(std::move(ss));
    return e;
  }

  bool IsStopSign() const { return stop_sign != nullptr; }

  friend bool operator==(const Entry& a, const Entry& b) {
    if (a.cmd_id != b.cmd_id || a.payload_bytes != b.payload_bytes) {
      return false;
    }
    if ((a.stop_sign == nullptr) != (b.stop_sign == nullptr)) {
      return false;
    }
    return a.stop_sign == nullptr || *a.stop_sign == *b.stop_sign;
  }

  friend std::ostream& operator<<(std::ostream& os, const Entry& e) {
    if (e.IsStopSign()) {
      return os << "SS(c" << e.stop_sign->next_config << ")";
    }
    return os << "cmd#" << e.cmd_id;
  }
};

// A shared, immutable run of log entries — the zero-copy body of replication
// messages. The leader materializes one suffix snapshot and every follower's
// AcceptDecide/AcceptSync shares it (a shared_ptr bump plus offsets) instead
// of receiving its own vector copy. Views over one snapshot may start at
// different offsets, which is how per-follower next_send_ positions share a
// single buffer. Always contiguous, so it converts to std::span.
class EntrySegment {
 public:
  EntrySegment() = default;

  // Owning constructors (implicit: messages are built from plain entry lists
  // in tests and the codec).
  EntrySegment(std::vector<Entry> entries)  // NOLINT(google-explicit-constructor)
      : data_(entries.empty()
                  ? nullptr
                  : std::make_shared<const std::vector<Entry>>(std::move(entries))),
        count_(data_ == nullptr ? 0 : data_->size()) {}
  EntrySegment(std::initializer_list<Entry> entries)  // NOLINT(google-explicit-constructor)
      : EntrySegment(std::vector<Entry>(entries)) {}

  // View over [offset, offset + count) of a shared immutable snapshot.
  EntrySegment(std::shared_ptr<const std::vector<Entry>> data, size_t offset, size_t count)
      : data_(std::move(data)), offset_(offset), count_(count) {
    OPX_DCHECK(data_ != nullptr || count == 0);
    OPX_DCHECK(data_ == nullptr || offset + count <= data_->size());
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const Entry* data() const { return count_ == 0 ? nullptr : data_->data() + offset_; }
  const Entry* begin() const { return data(); }
  const Entry* end() const { return data() + count_; }
  const Entry& operator[](size_t i) const {
    OPX_DCHECK_LT(i, count_);
    return (*data_)[offset_ + i];
  }

  operator std::span<const Entry>() const {  // NOLINT(google-explicit-constructor)
    return {data(), count_};
  }

  friend bool operator==(const EntrySegment& a, const EntrySegment& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::shared_ptr<const std::vector<Entry>> data_;
  size_t offset_ = 0;
  size_t count_ = 0;
};

// Approximate wire size of one entry (payload plus per-entry metadata).
inline uint64_t EntryWireBytes(const Entry& e) { return e.payload_bytes + 16; }

inline uint64_t EntriesWireBytes(std::span<const Entry> entries) {
  uint64_t total = 0;
  for (const Entry& e : entries) {
    total += EntryWireBytes(e);
  }
  return total;
}

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_ENTRY_H_
