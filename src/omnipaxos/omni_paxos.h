// OmniPaxos — the complete replicated-log server of one configuration (§3).
//
// Composes SequencePaxos (log replication) with BallotLeaderElection and wires
// BLE leader events into the replication protocol. Reconfiguration is
// initiated by proposing a stop-sign entry; once the stop-sign is decided the
// configuration is final and the *service layer* (src/rsm/service_layer.h)
// migrates the log and starts the next configuration.
#ifndef SRC_OMNIPAXOS_OMNI_PAXOS_H_
#define SRC_OMNIPAXOS_OMNI_PAXOS_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/audit/audit_view.h"
#include "src/omnipaxos/ble.h"
#include "src/omnipaxos/messages.h"
#include "src/omnipaxos/sequence_paxos.h"
#include "src/omnipaxos/storage.h"
#include "src/util/types.h"

namespace opx::omni {

using OmniMessage = std::variant<PaxosMessage, BleMessage>;

struct OmniOut {
  NodeId to = kNoNode;
  OmniMessage body;
};

inline uint64_t WireBytes(const OmniMessage& m) {
  return std::visit([](const auto& inner) { return WireBytes(inner); }, m);
}

struct OmniConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;
  ConfigId config_id = 0;
  uint32_t ble_priority = 0;
  size_t batch_limit = 0;      // see SequencePaxosConfig::batch_limit
  size_t trim_watermark = 0;   // see SequencePaxosConfig::trim_watermark
  uint64_t lease_rounds = 1;   // see BleConfig::lease_rounds
  // Optional trace/metrics sink, forwarded to BLE and SequencePaxos
  // (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

class OmniPaxos {
 public:
  // `storage` must outlive this instance; pass recovered=true when restarting
  // from persisted state after a crash.
  OmniPaxos(const OmniConfig& config, Storage* storage, bool recovered = false);

  // One election-timeout period elapsed (drives BLE heartbeat rounds).
  void TickElection();

  void Handle(NodeId from, OmniMessage msg);
  void Reconnected(NodeId peer);

  // Client proposal; returns false if this configuration is stopped.
  bool Append(Entry entry);

  // Proposes to end this configuration with the given stop-sign. Returns
  // false if a stop-sign is already in flight or decided.
  bool ProposeReconfiguration(StopSign ss);

  std::vector<OmniOut> TakeOutgoing();

  // --- Observers ----------------------------------------------------------
  NodeId pid() const { return config_.pid; }
  ConfigId config_id() const { return config_.config_id; }
  bool IsLeader() const { return paxos_.IsLeader(); }
  NodeId leader_hint() const { return paxos_.leader_hint(); }
  // True while this server may serve linearizable reads from its local
  // decided prefix: it is the steady-state leader and holds the BLE
  // heartbeat-majority lease (DESIGN.md §15).
  bool CanServeLocalReads() const { return IsLeader() && ble_.HoldsLease(); }
  LogIndex decided_idx() const { return paxos_.decided_idx(); }
  LogIndex log_len() const { return paxos_.log_len(); }
  bool IsStopped() const { return paxos_.IsStopped(); }
  std::optional<StopSign> DecidedStopSign() const { return paxos_.DecidedStopSign(); }
  const Storage& storage() const { return paxos_.storage(); }

  // Read-only safety snapshot for the cross-replica auditor.
  audit::AuditView Audit() const;

  SequencePaxos& paxos() { return paxos_; }
  const SequencePaxos& paxos() const { return paxos_; }
  BallotLeaderElection& ble() { return ble_; }
  const BallotLeaderElection& ble() const { return ble_; }

  std::vector<Entry> TakeUnproposed() { return paxos_.TakeUnproposed(); }

  // Compacts the local log below `idx` (decided prefix only, §4.2 compaction;
  // mirrors the trim API of the reference implementation).
  void Trim(LogIndex idx) { paxos_.Trim(idx); }

 private:
  void DrainLeaderEvents();

  OmniConfig config_;
  SequencePaxos paxos_;
  BallotLeaderElection ble_;
  bool stop_sign_proposed_ = false;
};

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_OMNI_PAXOS_H_
