// Persistent state of a Sequence Paxos server.
//
// In the fail-recovery model (§3) the promised round, accepted round, log, and
// decided index survive crashes. Storage owns exactly that state; a recovering
// server is rebuilt from its Storage (see SequencePaxos::Recover in tests and
// the cluster harness). The interface mirrors the storage trait of the
// reference Rust crate so alternative backends (e.g., a real WAL) can slot in.
//
// Mutators take std::span<const Entry> so callers can hand over views into
// shared immutable segments (EntrySegment) without materializing vectors;
// SharedSuffix() is the zero-copy counterpart of Suffix() used by the leader's
// replication fan-out.
#ifndef SRC_OMNIPAXOS_STORAGE_H_
#define SRC_OMNIPAXOS_STORAGE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"
#include "src/util/check.h"
#include "src/util/log_index.h"
#include "src/util/types.h"

namespace opx::omni {

class Storage {
 public:
  Storage() = default;
  virtual ~Storage() = default;

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  // --- Rounds -----------------------------------------------------------
  const Ballot& promised_round() const { return promised_round_; }
  virtual void set_promised_round(const Ballot& b) {
    OPX_CHECK_GE(b, promised_round_);
    promised_round_ = b;
  }

  const Ballot& accepted_round() const { return accepted_round_; }
  virtual void set_accepted_round(const Ballot& b) {
    OPX_CHECK_GE(b, accepted_round_);
    accepted_round_ = b;
  }

  // --- Log --------------------------------------------------------------
  // Logical log length (including any compacted prefix).
  LogIndex log_len() const { return util::IndexEnd(compacted_idx_, log_.size()); }
  // In-memory tail: entries [compacted_idx(), log_len()).
  const std::vector<Entry>& log() const { return log_; }
  // First logical index still held in memory (everything below was trimmed).
  LogIndex compacted_idx() const { return compacted_idx_; }

  const Entry& At(LogIndex idx) const {
    OPX_CHECK_GE(idx, compacted_idx_) << "entry was compacted away";
    OPX_CHECK_LT(idx, log_len());
    return log_[util::FloorOffset(idx, compacted_idx_)];
  }

  virtual void Append(Entry e) {
    ++log_version_;
    log_.push_back(std::move(e));
  }

  virtual void AppendAll(std::span<const Entry> entries) {
    ++log_version_;
    log_.insert(log_.end(), entries.begin(), entries.end());
  }
  void AppendAll(std::initializer_list<Entry> entries) {
    AppendAll(std::span<const Entry>(entries.begin(), entries.size()));
  }

  // Truncates the log to `len` entries, then appends `suffix`. Used when a
  // follower adopts the leader's log in <AcceptSync>; never cuts below the
  // decided prefix (decided entries are immutable, SC3).
  virtual void TruncateAndAppend(LogIndex len, std::span<const Entry> suffix) {
    OPX_CHECK_GE(len, decided_idx_);
    OPX_CHECK_LE(len, log_len());
    ++log_version_;
    log_.resize(util::FloorOffset(len, compacted_idx_));
    log_.insert(log_.end(), suffix.begin(), suffix.end());
  }
  void TruncateAndAppend(LogIndex len, std::initializer_list<Entry> suffix) {
    TruncateAndAppend(len, std::span<const Entry>(suffix.begin(), suffix.size()));
  }

  // Copy of log[from..), used where the caller needs an independent vector.
  // `from` must not reach into the compacted prefix (check compacted_idx()
  // first). Replication fan-out should use SharedSuffix() instead.
  std::vector<Entry> Suffix(LogIndex from) const {
    if (from >= log_len()) {
      return {};
    }
    OPX_CHECK_GE(from, compacted_idx_) << "suffix reaches into compacted prefix";
    return std::vector<Entry>(
        log_.begin() + static_cast<ptrdiff_t>(util::FloorOffset(from, compacted_idx_)),
        log_.end());
  }

  // Shared immutable view of log[from..): one snapshot is materialized and
  // memoized; repeated calls while the log is unmutated — the leader building
  // the same AcceptDecide/AcceptSync body for N followers at their individual
  // offsets — return offset views into that single buffer instead of N
  // copies. Any log mutation invalidates the memo (log_version_), so a
  // handed-out segment is never aliased by later writes.
  EntrySegment SharedSuffix(LogIndex from) const {
    if (from >= log_len()) {
      return {};
    }
    OPX_CHECK_GE(from, compacted_idx_) << "suffix reaches into compacted prefix";
    if (suffix_cache_ == nullptr || suffix_cache_version_ != log_version_ ||
        suffix_cache_from_ > from) {
      suffix_cache_ = std::make_shared<const std::vector<Entry>>(
          log_.begin() + static_cast<ptrdiff_t>(util::FloorOffset(from, compacted_idx_)),
          log_.end());
      suffix_cache_from_ = from;
      suffix_cache_version_ = log_version_;
    }
    return EntrySegment(suffix_cache_, from - suffix_cache_from_, log_len() - from);
  }

  // --- Compaction ----------------------------------------------------------
  // Drops entries below `idx` from memory. Only the decided prefix may be
  // trimmed (decided entries are immutable and recoverable from peers or an
  // application snapshot).
  virtual void Trim(LogIndex idx) {
    OPX_CHECK_LE(idx, decided_idx_) << "only the decided prefix may be trimmed";
    if (idx <= compacted_idx_) {
      return;
    }
    ++log_version_;
    log_.erase(log_.begin(),
               log_.begin() + static_cast<ptrdiff_t>(util::FloorOffset(idx, compacted_idx_)));
    compacted_idx_ = idx;
  }

  // Replaces the entire log with "snapshot up to `up_to`" + `suffix`:
  // entries below up_to are summarized away (the receiver installs the
  // corresponding application snapshot); the decided index advances to at
  // least up_to. Used when a leader has trimmed below a follower's sync point.
  //
  // The install is one atomic transition: the accepted round the suffix was
  // shipped under lands together with the log so a persistent backend can
  // journal (and recovery can replay) them as a single record — a crash
  // between "new log" and "new round" can never be observed. Invariants:
  // the decided prefix is immutable (up_to >= decided), compaction is
  // monotone (up_to >= compacted), and the accepted round never regresses.
  virtual void ResetToSnapshot(const Ballot& accepted, LogIndex up_to,
                               std::span<const Entry> suffix) {
    OPX_CHECK_GE(up_to, decided_idx_) << "snapshot must cover the decided prefix";
    OPX_CHECK_GE(up_to, compacted_idx_) << "snapshot below the compaction floor";
    OPX_CHECK_GE(accepted, accepted_round_);
    ++log_version_;
    accepted_round_ = accepted;
    compacted_idx_ = up_to;
    log_.assign(suffix.begin(), suffix.end());
    decided_idx_ = up_to;
  }
  void ResetToSnapshot(const Ballot& accepted, LogIndex up_to,
                       std::initializer_list<Entry> suffix) {
    ResetToSnapshot(accepted, up_to,
                    std::span<const Entry>(suffix.begin(), suffix.size()));
  }

  // --- Decided prefix ----------------------------------------------------
  LogIndex decided_idx() const { return decided_idx_; }
  virtual void set_decided_idx(LogIndex idx) {
    OPX_CHECK_GE(idx, decided_idx_);
    OPX_CHECK_LE(idx, log_len());
    decided_idx_ = idx;
  }

 protected:
  // Restores state without consistency checks (recovery paths of derived
  // persistent implementations). `log` holds only the physical suffix
  // [compacted, compacted + log.size()); a trimmed server legally recovers
  // with decided > log.size(), so all bounds are against the logical length.
  void RestoreForRecovery(Ballot promised, Ballot accepted, LogIndex compacted,
                          std::vector<Entry> log, LogIndex decided) {
    promised_round_ = promised;
    accepted_round_ = accepted;
    ++log_version_;
    log_ = std::move(log);
    compacted_idx_ = compacted;
    OPX_CHECK_GE(decided, compacted) << "decided index below the compaction floor";
    OPX_CHECK_LE(decided, compacted + log_.size());
    decided_idx_ = decided;
  }

 private:
  Ballot promised_round_;
  Ballot accepted_round_;
  std::vector<Entry> log_;       // entries [compacted_idx_, log_len())
  LogIndex compacted_idx_ = 0;
  LogIndex decided_idx_ = 0;

  // Bumped on every log mutation; guards the SharedSuffix memo.
  uint64_t log_version_ = 0;
  mutable std::shared_ptr<const std::vector<Entry>> suffix_cache_;
  mutable LogIndex suffix_cache_from_ = 0;
  mutable uint64_t suffix_cache_version_ = 0;
};

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_STORAGE_H_
