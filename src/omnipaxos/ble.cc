#include "src/omnipaxos/ble.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace opx::omni {

BallotLeaderElection::BallotLeaderElection(BleConfig config) : config_(std::move(config)) {
  OPX_CHECK_NE(config_.pid, kNoNode);
  ballot_ = Ballot{config_.initial_n, config_.priority, config_.pid};
  candidacy_ = !config_.recovered;
}

void BallotLeaderElection::Tick() {
  if (round_ > 0) {
    // Round `round_` just ended. Connectivity = did a majority (including
    // ourselves) answer this round? (Fig. 4 ②)
    const bool connected = replies_.size() + 1 >= Majority();
    if (connected != qc_) {
      OPX_TRACE(config_.obs,
                connected ? obs::EventKind::kBleQcGained : obs::EventKind::kBleQcLost,
                config_.pid, kNoNode, ObsBallotKey(ballot_), 0, 0,
                static_cast<uint32_t>(round_));
    }
    qc_ = connected;
    if (connected) {
      lease_until_round_ = round_ + config_.lease_rounds;
    }
    replies_.push_back(Candidate{config_.pid, ballot_, qc_ && candidacy_});  // our own entry
    if (connected) {
      CheckLeader();
    }
  }
  replies_.clear();
  ++round_;
  for (NodeId peer : config_.peers) {
    pending_out_.push_back(BleOut{peer, HeartbeatRequest{round_}});
  }
}

void BallotLeaderElection::CheckLeader() {
  // Only quorum-connected servers qualify as candidates (Fig. 4 ①; LE1).
  const Candidate* top = nullptr;
  uint64_t max_seen_n = 0;
  for (const Candidate& c : replies_) {
    max_seen_n = std::max(max_seen_n, c.ballot.n);
    if (c.quorum_connected && (top == nullptr || c.ballot > top->ballot)) {
      top = &c;
    }
  }
  if (top == nullptr || top->ballot < leader_) {
    // The incumbent (or any candidate at least as high) has disappeared or
    // lost quorum-connectivity: attempt a takeover by overtaking every ballot
    // seen so far. We will elect ourselves next round if still QC — and a
    // higher concurrent bumper simply wins by LE3's total order.
    ballot_.n = std::max(max_seen_n, leader_.n) + 1;
    candidacy_ = true;  // a freshly-minted ballot may be elected
    OPX_TRACE(config_.obs, obs::EventKind::kBleBallotBump, config_.pid, kNoNode,
              ObsBallotKey(ballot_), 0, 0, static_cast<uint32_t>(round_));
    return;
  }
  if (top->ballot > leader_) {
    leader_ = top->ballot;
    leader_event_ = leader_;
    OPX_TRACE(config_.obs, obs::EventKind::kBleLeader, config_.pid, leader_.pid,
              ObsBallotKey(leader_), 0, 0, static_cast<uint32_t>(round_));
#if defined(OPX_OBS_ENABLED)
    if (config_.obs != nullptr) {
      // Heartbeat rounds this election took, from the previous leader change
      // (the paper's elections settle within a handful of rounds).
      config_.obs->metrics()
          .GetHistogram("ble/rounds_per_election", obs::ExponentialBuckets(1, 2, 10))
          ->Observe(static_cast<double>(round_ - leader_round_));
    }
#endif
    leader_round_ = round_;
  }
}

void BallotLeaderElection::Handle(NodeId from, const BleMessage& msg) {
  if (const auto* req = std::get_if<HeartbeatRequest>(&msg)) {
    pending_out_.push_back(
        BleOut{from, HeartbeatReply{req->round, ballot_, qc_ && candidacy_}});
  } else if (const auto* rep = std::get_if<HeartbeatReply>(&msg)) {
    if (rep->round == round_) {
      // A retransmitted/duplicated reply must not count twice: connectivity is
      // |distinct responders| >= majority, so one chatty peer cannot fake
      // quorum-connectivity (LE1 would otherwise break under message
      // duplication, which session re-establishment can produce).
      for (const Candidate& c : replies_) {
        if (c.pid == from) {
          return;
        }
      }
      replies_.push_back(Candidate{from, rep->ballot, rep->quorum_connected});
    }
    // Late replies are simply ignored (§5.2 correctness discussion).
  }
}

std::vector<BleOut> BallotLeaderElection::TakeOutgoing() {
  return std::exchange(pending_out_, {});
}

std::optional<Ballot> BallotLeaderElection::TakeLeaderEvent() {
  return std::exchange(leader_event_, std::nullopt);
}

}  // namespace opx::omni
