#include "src/omnipaxos/codec.h"

namespace opx::omni {
namespace {

// Message type tags on the wire.
enum WireTag : uint8_t {
  kPrepare = 1,
  kPromise = 2,
  kAcceptSync = 3,
  kAcceptDecide = 4,
  kAccepted = 5,
  kDecide = 6,
  kPrepareReq = 7,
  kProposalForward = 8,
  kHeartbeatRequest = 9,
  kHeartbeatReply = 10,
};

constexpr uint32_t kMaxEntries = 16u << 20;  // sanity bound against garbage
constexpr uint32_t kMaxNodes = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------------

void Encoder::EntryField(const Entry& e) {
  U64(e.cmd_id);
  U32(e.payload_bytes);
  U8(e.IsStopSign() ? 1 : 0);
  if (e.IsStopSign()) {
    U32(e.stop_sign->next_config);
    U32(static_cast<uint32_t>(e.stop_sign->next_nodes.size()));
    for (NodeId n : e.stop_sign->next_nodes) {
      U32(static_cast<uint32_t>(n));
    }
  }
}

void Encoder::EntriesField(std::span<const Entry> entries) {
  U32(static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    EntryField(e);
  }
}

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

bool Decoder::U8(uint8_t* v) {
  if (pos_ + 1 > size_) {
    return false;
  }
  *v = data_[pos_++];
  return true;
}

bool Decoder::U32(uint32_t* v) {
  if (pos_ + 4 > size_) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool Decoder::U64(uint64_t* v) {
  if (pos_ + 8 > size_) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool Decoder::BallotField(Ballot* b) {
  uint32_t priority = 0, pid = 0;
  if (!U64(&b->n) || !U32(&priority) || !U32(&pid)) {
    return false;
  }
  b->priority = priority;
  b->pid = static_cast<NodeId>(pid);
  return true;
}

bool Decoder::EntryField(Entry* e) {
  uint64_t cmd = 0;
  uint32_t payload = 0;
  uint8_t is_ss = 0;
  if (!U64(&cmd) || !U32(&payload) || !U8(&is_ss)) {
    return false;
  }
  if (is_ss != 0) {
    StopSign ss;
    uint32_t next_config = 0, count = 0;
    if (!U32(&next_config) || !U32(&count) || count > kMaxNodes) {
      return false;
    }
    ss.next_config = next_config;
    ss.next_nodes.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t node = 0;
      if (!U32(&node)) {
        return false;
      }
      ss.next_nodes.push_back(static_cast<NodeId>(node));
    }
    *e = Entry::Stop(std::move(ss));
    e->cmd_id = cmd;
    e->payload_bytes = payload;
  } else {
    *e = Entry::Command(cmd, payload);
  }
  return true;
}

bool Decoder::EntriesField(std::vector<Entry>* entries) {
  uint32_t count = 0;
  if (!U32(&count) || count > kMaxEntries) {
    return false;
  }
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    if (!EntryField(&e)) {
      return false;
    }
    entries->push_back(std::move(e));
  }
  return true;
}

bool Decoder::EntriesField(EntrySegment* entries) {
  std::vector<Entry> decoded;
  if (!EntriesField(&decoded)) {
    return false;
  }
  *entries = EntrySegment(std::move(decoded));
  return true;
}

// ---------------------------------------------------------------------------
// Message encode/decode.
// ---------------------------------------------------------------------------

void EncodeMessage(const OmniMessage& msg, std::vector<uint8_t>* out) {
  Encoder enc(out);
  if (const auto* ble = std::get_if<BleMessage>(&msg)) {
    if (const auto* req = std::get_if<HeartbeatRequest>(ble)) {
      enc.U8(kHeartbeatRequest);
      enc.U64(req->round);
    } else {
      const auto& rep = std::get<HeartbeatReply>(*ble);
      enc.U8(kHeartbeatReply);
      enc.U64(rep.round);
      enc.BallotField(rep.ballot);
      enc.U8(rep.quorum_connected ? 1 : 0);
    }
    return;
  }
  const auto& paxos = std::get<PaxosMessage>(msg);
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Prepare>) {
          enc.U8(kPrepare);
          enc.BallotField(m.n);
          enc.BallotField(m.acc_rnd);
          enc.U64(m.log_idx);
          enc.U64(m.decided_idx);
        } else if constexpr (std::is_same_v<T, Promise>) {
          enc.U8(kPromise);
          enc.BallotField(m.n);
          enc.BallotField(m.acc_rnd);
          enc.U64(m.log_idx);
          enc.U64(m.decided_idx);
          enc.U64(m.snapshot_up_to);
          enc.EntriesField(m.suffix);
        } else if constexpr (std::is_same_v<T, AcceptSync>) {
          enc.U8(kAcceptSync);
          enc.BallotField(m.n);
          enc.U64(m.sync_idx);
          enc.U64(m.decided_idx);
          enc.U64(m.snapshot_up_to);
          enc.EntriesField(m.suffix);
        } else if constexpr (std::is_same_v<T, AcceptDecide>) {
          enc.U8(kAcceptDecide);
          enc.BallotField(m.n);
          enc.U64(m.start_idx);
          enc.U64(m.decided_idx);
          enc.EntriesField(m.entries);
        } else if constexpr (std::is_same_v<T, Accepted>) {
          enc.U8(kAccepted);
          enc.BallotField(m.n);
          enc.U64(m.log_idx);
        } else if constexpr (std::is_same_v<T, Decide>) {
          enc.U8(kDecide);
          enc.BallotField(m.n);
          enc.U64(m.decided_idx);
        } else if constexpr (std::is_same_v<T, PrepareReq>) {
          enc.U8(kPrepareReq);
        } else if constexpr (std::is_same_v<T, ProposalForward>) {
          enc.U8(kProposalForward);
          enc.EntriesField(m.entries);
        }
      },
      paxos);
}

void EncodeFrame(const OmniMessage& msg, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  out->resize(header_at + 4);  // length placeholder, backpatched below
  EncodeMessage(msg, out);
  const size_t payload = out->size() - header_at - 4;
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint32_t>(payload) >> (8 * i));
  }
}

namespace {

// Identity (not value) equality of entry runs: same shared snapshot buffer,
// same offset view. This is the zero-copy fan-out signature — N followers'
// AcceptDecide bodies built from one Storage::SharedSuffix call.
bool SameSegment(const EntrySegment& a, const EntrySegment& b) {
  return a.data() == b.data() && a.size() == b.size();
}

}  // namespace

bool SameWireBody(const OmniMessage& a, const OmniMessage& b) {
  if (a.index() != b.index()) {
    return false;
  }
  if (const auto* ble_a = std::get_if<BleMessage>(&a)) {
    const auto& ble_b = std::get<BleMessage>(b);
    if (ble_a->index() != ble_b.index()) {
      return false;
    }
    if (const auto* req = std::get_if<HeartbeatRequest>(ble_a)) {
      return req->round == std::get<HeartbeatRequest>(ble_b).round;
    }
    const auto& ra = std::get<HeartbeatReply>(*ble_a);
    const auto& rb = std::get<HeartbeatReply>(ble_b);
    return ra.round == rb.round && ra.ballot == rb.ballot &&
           ra.quorum_connected == rb.quorum_connected;
  }
  const auto& pa = std::get<PaxosMessage>(a);
  const auto& pb = std::get<PaxosMessage>(b);
  if (pa.index() != pb.index()) {
    return false;
  }
  if (const auto* d = std::get_if<Decide>(&pa)) {
    const auto& o = std::get<Decide>(pb);
    return d->n == o.n && d->decided_idx == o.decided_idx;
  }
  if (const auto* p = std::get_if<Prepare>(&pa)) {
    const auto& o = std::get<Prepare>(pb);
    return p->n == o.n && p->acc_rnd == o.acc_rnd && p->log_idx == o.log_idx &&
           p->decided_idx == o.decided_idx;
  }
  if (const auto* ad = std::get_if<AcceptDecide>(&pa)) {
    const auto& o = std::get<AcceptDecide>(pb);
    return ad->n == o.n && ad->start_idx == o.start_idx &&
           ad->decided_idx == o.decided_idx && SameSegment(ad->entries, o.entries);
  }
  if (const auto* as = std::get_if<AcceptSync>(&pa)) {
    const auto& o = std::get<AcceptSync>(pb);
    return as->n == o.n && as->sync_idx == o.sync_idx && as->decided_idx == o.decided_idx &&
           as->snapshot_up_to == o.snapshot_up_to && SameSegment(as->suffix, o.suffix);
  }
  if (std::holds_alternative<PrepareReq>(pa)) {
    return true;
  }
  // Promise / Accepted / ProposalForward are point-to-point replies; they
  // never fan out, so sharing buys nothing. Encode each.
  return false;
}

bool DecodeMessage(const uint8_t* data, size_t size, OmniMessage* msg) {
  Decoder dec(data, size);
  uint8_t tag = 0;
  if (!dec.U8(&tag)) {
    return false;
  }
  switch (tag) {
    case kPrepare: {
      Prepare m;
      if (!dec.BallotField(&m.n) || !dec.BallotField(&m.acc_rnd) || !dec.U64(&m.log_idx) ||
          !dec.U64(&m.decided_idx)) {
        return false;
      }
      *msg = PaxosMessage(m);
      return true;
    }
    case kPromise: {
      Promise m;
      if (!dec.BallotField(&m.n) || !dec.BallotField(&m.acc_rnd) || !dec.U64(&m.log_idx) ||
          !dec.U64(&m.decided_idx) || !dec.U64(&m.snapshot_up_to) ||
          !dec.EntriesField(&m.suffix)) {
        return false;
      }
      *msg = PaxosMessage(std::move(m));
      return true;
    }
    case kAcceptSync: {
      AcceptSync m;
      if (!dec.BallotField(&m.n) || !dec.U64(&m.sync_idx) || !dec.U64(&m.decided_idx) ||
          !dec.U64(&m.snapshot_up_to) || !dec.EntriesField(&m.suffix)) {
        return false;
      }
      *msg = PaxosMessage(std::move(m));
      return true;
    }
    case kAcceptDecide: {
      AcceptDecide m;
      if (!dec.BallotField(&m.n) || !dec.U64(&m.start_idx) || !dec.U64(&m.decided_idx) ||
          !dec.EntriesField(&m.entries)) {
        return false;
      }
      *msg = PaxosMessage(std::move(m));
      return true;
    }
    case kAccepted: {
      Accepted m;
      if (!dec.BallotField(&m.n) || !dec.U64(&m.log_idx)) {
        return false;
      }
      *msg = PaxosMessage(m);
      return true;
    }
    case kDecide: {
      Decide m;
      if (!dec.BallotField(&m.n) || !dec.U64(&m.decided_idx)) {
        return false;
      }
      *msg = PaxosMessage(m);
      return true;
    }
    case kPrepareReq:
      *msg = PaxosMessage(PrepareReq{});
      return true;
    case kProposalForward: {
      ProposalForward m;
      if (!dec.EntriesField(&m.entries)) {
        return false;
      }
      *msg = PaxosMessage(std::move(m));
      return true;
    }
    case kHeartbeatRequest: {
      HeartbeatRequest m;
      if (!dec.U64(&m.round)) {
        return false;
      }
      *msg = BleMessage(m);
      return true;
    }
    case kHeartbeatReply: {
      HeartbeatReply m;
      uint8_t qc = 0;
      if (!dec.U64(&m.round) || !dec.BallotField(&m.ballot) || !dec.U8(&qc)) {
        return false;
      }
      m.quorum_connected = qc != 0;
      *msg = BleMessage(m);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace opx::omni
