// Ballot Leader Election (§5, Fig. 4).
//
// Servers exchange heartbeats every Tick(); a heartbeat reply carries only the
// sender's ballot and its quorum-connected (QC) flag. From one round of
// replies a server learns (1) whether it is itself quorum-connected and
// (2) which peers are alive and QC. A leader is elected purely on
// quorum-connectivity — no log constraints, no leader-identity gossip — which
// is what makes progress possible with a single QC server (LE1–LE3, §5.1).
//
// Like SequencePaxos this is a pull-based state machine: the owner calls
// Tick() once per heartbeat period, feeds messages through Handle(), and
// drains TakeOutgoing() / TakeLeaderEvent().
#ifndef SRC_OMNIPAXOS_BLE_H_
#define SRC_OMNIPAXOS_BLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/obs/trace.h"
#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/messages.h"
#include "src/util/quorum.h"
#include "src/util/types.h"

namespace opx::omni {

struct BleConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;
  // Optional trace/metrics sink (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
  // Custom tie-break field of the ballot (§5.2): higher priority wins among
  // equal rounds. Does not affect liveness — an elected candidate must still
  // be quorum-connected.
  uint32_t priority = 0;
  // Starting ballot round. A recovering server must resume at least at its
  // persisted promised round, or its future elections could never exceed the
  // replication layer's promises (liveness after fail-recovery).
  uint64_t initial_n = 0;
  // True when restarting after a crash: the server renounces leadership
  // claims for its *resumed* ballot (it cannot safely re-run that round), so
  // peers stop seeing the pre-crash leader as a viable candidate and elect a
  // fresh one. Candidacy returns with the first ballot bump.
  bool recovered = false;
  // Leader-lease length in heartbeat rounds: each round that ends with a
  // majority of replies renews the lease for `lease_rounds` further rounds.
  // Electing a replacement leader takes at least lease_rounds + 1 rounds of
  // missing heartbeats, so a lease holder can serve linearizable local reads
  // (DESIGN.md §15 states the bounded-drift clock assumption). 0 disables.
  uint64_t lease_rounds = 1;
};

class BallotLeaderElection {
 public:
  explicit BallotLeaderElection(BleConfig config);

  // Advances one heartbeat period: evaluates the replies of the finished
  // round (connectivity + checkLeader) and broadcasts the next round's
  // heartbeat requests.
  void Tick();

  void Handle(NodeId from, const BleMessage& msg);

  std::vector<BleOut> TakeOutgoing();

  // The leader elected since the last call, if it changed (LE3 guarantees the
  // sequence of returned ballots is strictly increasing).
  std::optional<Ballot> TakeLeaderEvent();

  const Ballot& leader() const { return leader_; }
  const Ballot& current_ballot() const { return ballot_; }
  bool quorum_connected() const { return qc_; }
  uint64_t round() const { return round_; }

  // True while the heartbeat-majority lease is unexpired (renewed by every
  // round that ends quorum-connected). Only meaningful on the current leader;
  // the replication layer combines it with IsLeader() for local reads.
  bool HoldsLease() const {
    return config_.lease_rounds > 0 && round_ <= lease_until_round_;
  }

 private:
  struct Candidate {
    NodeId pid = kNoNode;  // sender, for per-round reply deduplication
    Ballot ballot;
    bool quorum_connected = false;
  };

  size_t ClusterSize() const { return config_.peers.size() + 1; }
  size_t Majority() const { return util::MajorityOf(ClusterSize()); }

  void CheckLeader();

  BleConfig config_;
  Ballot ballot_;                     // this server's own ballot
  bool candidacy_ = true;             // false while holding a resumed ballot
  bool qc_ = true;                    // optimistic until the first round ends
  Ballot leader_;                     // highest ballot ever elected (LE3)
  uint64_t round_ = 0;
  uint64_t leader_round_ = 0;         // round of the last leader change (obs)
  uint64_t lease_until_round_ = 0;    // last round covered by the QC lease
  std::vector<Candidate> replies_;    // heartbeat replies of the current round
  std::optional<Ballot> leader_event_;
  std::vector<BleOut> pending_out_;
};

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_BLE_H_
