// Binary wire codec for Omni-Paxos messages (Sequence Paxos + BLE), used by
// the TCP runtime (src/net/) and anywhere a message must cross a process
// boundary. Little-endian, length-delimited fields; every Decode* returns
// false on malformed or truncated input (no exceptions, no UB on garbage).
#ifndef SRC_OMNIPAXOS_CODEC_H_
#define SRC_OMNIPAXOS_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/omnipaxos/messages.h"
#include "src/omnipaxos/omni_paxos.h"

namespace opx::omni {

// Appends primitives to a byte buffer.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void BallotField(const Ballot& b) {
    U64(b.n);
    U32(b.priority);
    U32(static_cast<uint32_t>(b.pid));
  }
  void EntryField(const Entry& e);
  // Accepts vectors and EntrySegments alike (both convert to a span).
  void EntriesField(std::span<const Entry> entries);

 private:
  std::vector<uint8_t>* out_;
};

// Reads primitives from a byte buffer; all methods return false on underrun.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool BallotField(Ballot* b);
  bool EntryField(Entry* e);
  bool EntriesField(std::vector<Entry>* entries);
  bool EntriesField(EntrySegment* entries);
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Encodes an OmniMessage (either protocol component) into `out`.
void EncodeMessage(const OmniMessage& msg, std::vector<uint8_t>* out);

// Appends one [u32 length][EncodeMessage payload] wire frame to `out`: the
// transport hot path's scratch-encode. The length prefix is reserved first
// and backpatched after the payload lands, so no intermediate payload buffer
// exists — encoding into a recycled buffer (net::FramePool) allocates nothing
// once the buffer's capacity is warm.
void EncodeFrame(const OmniMessage& msg, std::vector<uint8_t>* out);

// Decodes a message produced by EncodeMessage. Returns false on malformed
// input; `msg` is unspecified in that case.
bool DecodeMessage(const uint8_t* data, size_t size, OmniMessage* msg);

// True when `a` and `b` are guaranteed byte-identical on the wire, decided
// WITHOUT encoding either — the transport's encode-once broadcast test.
// Entry runs compare by EntrySegment identity (same shared snapshot, same
// offset view), which is exactly what Storage::SharedSuffix hands to every
// follower of a fan-out; value-equal but separately-owned runs conservatively
// report false (a second encode, never a wrong share).
bool SameWireBody(const OmniMessage& a, const OmniMessage& b);

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_CODEC_H_
