// Ballots (round numbers) for Ballot Leader Election and Sequence Paxos.
//
// LE3 (§5.1) requires elected ballots to be monotonically increasing and
// unique. A ballot is (n, priority, pid): `n` is bumped on takeover attempts,
// `priority` is the optional custom tie-break field described in §5.2 (used
// by the BLE-priority ablation and to pin initial leaders in experiments),
// and `pid` makes every ballot globally unique.
#ifndef SRC_OMNIPAXOS_BALLOT_H_
#define SRC_OMNIPAXOS_BALLOT_H_

#include <cstdint>
#include <ostream>
#include <tuple>

#include "src/util/types.h"

namespace opx::omni {

struct Ballot {
  uint64_t n = 0;
  uint32_t priority = 0;
  NodeId pid = kNoNode;

  friend bool operator==(const Ballot& a, const Ballot& b) {
    return a.n == b.n && a.priority == b.priority && a.pid == b.pid;
  }
  friend bool operator!=(const Ballot& a, const Ballot& b) { return !(a == b); }
  friend bool operator<(const Ballot& a, const Ballot& b) {
    return std::tie(a.n, a.priority, a.pid) < std::tie(b.n, b.priority, b.pid);
  }
  friend bool operator>(const Ballot& a, const Ballot& b) { return b < a; }
  friend bool operator<=(const Ballot& a, const Ballot& b) { return !(b < a); }
  friend bool operator>=(const Ballot& a, const Ballot& b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, const Ballot& b) {
    return os << "(" << b.n << "," << b.priority << ",s" << b.pid << ")";
  }
};

// The "no ballot yet" sentinel; smaller than every real ballot.
inline constexpr Ballot kNullBallot{};

// Packs a ballot into the 64-bit `ballot` field of a trace event. Two ballots
// with equal n but different (priority, pid) map to distinct keys as long as
// priority and pid fit in 8 bits each — always true in the simulated clusters.
inline constexpr uint64_t ObsBallotKey(const Ballot& b) {
  return (b.n << 16) | ((static_cast<uint64_t>(b.priority) & 0xFFu) << 8) |
         (static_cast<uint64_t>(b.pid) & 0xFFu);
}

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_BALLOT_H_
