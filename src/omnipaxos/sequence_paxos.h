// Sequence Paxos — the log replication component of Omni-Paxos (§4).
//
// A pure, pull-based state machine: the owner delivers inputs through
// HandleLeader() / Handle() / Append() / Reconnected() and collects outputs
// with TakeOutgoing(). No timers, threads, or wall-clock reads; leader changes
// come exclusively from Ballot Leader Election through HandleLeader().
//
// The protocol replicates a gap-free log satisfying the Sequence Consensus
// properties SC1–SC3. A round has a Prepare phase (log synchronization: the
// possibly-lagging new leader adopts the most updated log among a majority)
// and an Accept phase (FIFO pipelined replication). Recovery and link-session
// drops re-enter synchronization via <PrepareReq> (§4.1.3).
#ifndef SRC_OMNIPAXOS_SEQUENCE_PAXOS_H_
#define SRC_OMNIPAXOS_SEQUENCE_PAXOS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/obs/trace.h"
#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"
#include "src/omnipaxos/messages.h"
#include "src/omnipaxos/storage.h"
#include "src/util/quorum.h"
#include "src/util/types.h"

namespace opx::omni {

enum class Role { kFollower, kLeader };

enum class Phase {
  kNone,     // follower, not yet promised in any round
  kPrepare,  // leader: collecting promises; follower: promised, awaiting AcceptSync
  kAccept,   // steady-state replication
  kRecover,  // after a crash, until a Prepare or leader event arrives (§4.1.3)
};

struct SequencePaxosConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;  // all other servers of this configuration
  ConfigId config_id = 0;
  // Leader-side cap on entries moved from the proposal queue into the log per
  // TakeOutgoing() flush; models finite leader processing capacity. 0 = none.
  size_t batch_limit = 0;
  // Compaction watermark in entries; 0 disables automatic trimming. When the
  // trimmable prefix (what every tracked server has accepted, on a leader; the
  // decided prefix minus a resync tail, on a follower) grows past the
  // watermark, MaybeAutoTrim() compacts it. Peers that fall more than three
  // watermarks behind stop holding the floor and catch up via snapshot.
  size_t trim_watermark = 0;
  // Optional trace/metrics sink (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

class SequencePaxos {
 public:
  // `storage` must outlive this instance. `recovered` restarts a server from
  // persistent state after a crash: it enters the Recover phase and solicits
  // the current leader with <PrepareReq> (§4.1.3).
  SequencePaxos(SequencePaxosConfig config, Storage* storage, bool recovered = false);

  SequencePaxos(const SequencePaxos&) = delete;
  SequencePaxos& operator=(const SequencePaxos&) = delete;

  // --- Inputs -------------------------------------------------------------

  // Leader event from BLE: ballot `b` is elected. If b.pid is this server and
  // b exceeds the promised round, this server starts the Prepare phase.
  void HandleLeader(const Ballot& b);

  // Delivers one protocol message from `from`.
  void Handle(NodeId from, PaxosMessage msg);

  // The link to `peer` was re-established after a session drop.
  void Reconnected(NodeId peer);

  // Client proposal submitted at this server. Leaders queue it for
  // replication; followers forward it to the leader on the next flush.
  // Returns false (rejecting the proposal) if this configuration is stopped.
  bool Append(Entry entry);

  // --- Outputs ------------------------------------------------------------

  // Flushes queued proposals into the log (leader) and returns all pending
  // outgoing messages. Call after every Handle()/Append() batch.
  std::vector<PaxosOut> TakeOutgoing();

  // --- Observers ----------------------------------------------------------

  NodeId pid() const { return config_.pid; }
  Role role() const { return role_; }
  Phase phase() const { return phase_; }
  bool IsLeader() const { return role_ == Role::kLeader && phase_ == Phase::kAccept; }

  // Highest leader ballot this server has seen (from BLE or Prepare).
  const Ballot& leader_ballot() const { return leader_ballot_; }
  NodeId leader_hint() const { return leader_ballot_.pid; }

  const Storage& storage() const { return *storage_; }
  LogIndex decided_idx() const { return storage_->decided_idx(); }
  LogIndex log_len() const { return storage_->log_len(); }

  // True once a stop-sign has been decided: this configuration is final and
  // rejects further proposals (§6).
  bool IsStopped() const;
  std::optional<StopSign> DecidedStopSign() const;

  // Proposals still queued (not yet in the log); drained by the service layer
  // when a configuration stops so they can be re-proposed in the next one.
  std::vector<Entry> TakeUnproposed();

  // Compacts the local log below `idx` (must be within the decided prefix).
  // Synchronization with peers that still need the trimmed range falls back
  // to snapshot transfer automatically.
  void Trim(LogIndex idx);

  // Applies the trim_watermark policy (no-op when the watermark is 0): the
  // owner calls this on its periodic tick. See SequencePaxosConfig.
  void MaybeAutoTrim();

 private:
  struct PromiseMeta {
    Ballot acc_rnd;
    LogIndex log_idx = 0;
    LogIndex decided_idx = 0;
    LogIndex snapshot_up_to = 0;
    EntrySegment suffix;  // shared with the Promise message, never copied
  };

  size_t ClusterSize() const { return config_.peers.size() + 1; }
  size_t Majority() const { return util::MajorityOf(ClusterSize()); }

  void BecomeLeader(const Ballot& b);
  void HandlePrepare(NodeId from, const Prepare& p);
  void HandlePromise(NodeId from, Promise pr);
  void HandleAcceptSync(NodeId from, const AcceptSync& as);
  void HandleAcceptDecide(NodeId from, const AcceptDecide& ad);
  void HandleAccepted(NodeId from, const Accepted& a);
  void HandleDecide(NodeId from, const Decide& d);
  void HandlePrepareReq(NodeId from);
  void HandleForward(ProposalForward pf);

  void CompletePreparePhase();
  void SendAcceptSyncTo(NodeId follower, const PromiseMeta& meta);
  void RecordSnapshotInstall(NodeId from, const Ballot& round, LogIndex up_to,
                             size_t suffix_len);
  void UpdateDecidedAsLeader();
  void FlushProposals();
  void FlushAccepts();
  void Emit(NodeId to, PaxosMessage msg);

  // True if the log already carries a stop-sign (accepted, not necessarily
  // decided): no further entries may be appended behind it.
  bool LogIsStopped() const;

  SequencePaxosConfig config_;
  Storage* storage_;

  Role role_ = Role::kFollower;
  Phase phase_ = Phase::kNone;
  Ballot leader_ballot_;  // max ballot seen from BLE or <Prepare>

  // --- Leader-only state (valid while role_ == kLeader, round n_) ---------
  Ballot n_;
  std::map<NodeId, PromiseMeta> promises_;  // includes self
  Ballot adoption_acc_rnd_;                 // acc_rnd of the adopted max log
  LogIndex adoption_base_len_ = 0;          // its length at adoption time
  std::map<NodeId, LogIndex> las_;          // last accepted index per server
  std::map<NodeId, LogIndex> next_send_;    // next log index to ship per follower

  std::vector<Entry> proposal_queue_;  // client proposals awaiting the log
  bool decided_dirty_ = false;         // decided advanced since last flush
  std::vector<PaxosOut> pending_out_;
};

}  // namespace opx::omni

#endif  // SRC_OMNIPAXOS_SEQUENCE_PAXOS_H_
