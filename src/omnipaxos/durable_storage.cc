#include "src/omnipaxos/durable_storage.h"

#include <cstdio>
#include <cstring>

#include "src/util/check.h"

namespace opx::omni {
namespace {

enum RecordType : uint8_t {
  kPromise = 1,
  kAccepted = 2,
  kAppend = 3,
  kTruncate = 4,
  kDecide = 5,
  kTrim = 6,
  kSnapshot = 7,
};

// CRC32 (Castagnoli polynomial, bitwise — journaling here is not a hot path).
uint32_t Crc32(const uint8_t* data, size_t len) {
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutBallot(std::vector<uint8_t>* out, const Ballot& b) {
  PutU64(out, b.n);
  PutU32(out, b.priority);
  PutU32(out, static_cast<uint32_t>(b.pid));
}

void PutEntry(std::vector<uint8_t>* out, const Entry& e) {
  PutU64(out, e.cmd_id);
  PutU32(out, e.payload_bytes);
  out->push_back(e.IsStopSign() ? 1 : 0);
  if (e.IsStopSign()) {
    PutU32(out, e.stop_sign->next_config);
    PutU32(out, static_cast<uint32_t>(e.stop_sign->next_nodes.size()));
    for (NodeId n : e.stop_sign->next_nodes) {
      PutU32(out, static_cast<uint32_t>(n));
    }
  }
}

// Cursor over a byte buffer; all Get* return false on underrun.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (pos + 1 > size) {
      return false;
    }
    *v = data[pos++];
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos + 4 > size) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos + 8 > size) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool GetBallot(Ballot* b) {
    uint32_t priority = 0, pid = 0;
    if (!GetU64(&b->n) || !GetU32(&priority) || !GetU32(&pid)) {
      return false;
    }
    b->priority = priority;
    b->pid = static_cast<NodeId>(pid);
    return true;
  }
  bool GetEntry(Entry* e) {
    uint64_t cmd = 0;
    uint32_t payload = 0;
    uint8_t is_ss = 0;
    if (!GetU64(&cmd) || !GetU32(&payload) || !GetU8(&is_ss)) {
      return false;
    }
    if (is_ss) {
      StopSign ss;
      uint32_t next_config = 0, count = 0;
      if (!GetU32(&next_config) || !GetU32(&count) || count > 1024) {
        return false;
      }
      ss.next_config = next_config;
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t node = 0;
        if (!GetU32(&node)) {
          return false;
        }
        ss.next_nodes.push_back(static_cast<NodeId>(node));
      }
      *e = Entry::Stop(std::move(ss));
      e->payload_bytes = payload;
      e->cmd_id = cmd;
    } else {
      *e = Entry::Command(cmd, payload);
    }
    return true;
  }
};

}  // namespace

DurableStorage::DurableStorage(const std::string& path) : path_(path) {}

DurableStorage::~DurableStorage() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
  }
}

std::unique_ptr<DurableStorage> DurableStorage::Create(const std::string& path) {
  auto storage = std::unique_ptr<DurableStorage>(new DurableStorage(path));
  storage->file_ = std::fopen(path.c_str(), "wb");
  OPX_CHECK(storage->file_ != nullptr) << "cannot create WAL at " << path;
  return storage;
}

std::unique_ptr<DurableStorage> DurableStorage::Recover(const std::string& path) {
  FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return nullptr;
  }
  std::fseek(in, 0, SEEK_END);
  const long file_size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (file_size > 0) {
    const size_t read = std::fread(bytes.data(), 1, bytes.size(), in);
    bytes.resize(read);
  }
  std::fclose(in);

  Ballot promised, accepted;
  std::vector<Entry> log;  // physical suffix [compacted, compacted + size)
  LogIndex compacted = 0;
  LogIndex decided = 0;

  Reader r{bytes.data(), bytes.size()};
  size_t valid_end = 0;
  while (r.pos < r.size) {
    const size_t record_start = r.pos;
    uint8_t type = 0;
    if (!r.GetU8(&type)) {
      break;
    }
    // Stage the record first; apply only after the CRC validates, so a torn
    // or corrupt record never half-mutates the recovered state.
    bool parsed = true;
    Ballot staged_ballot;
    Entry staged_entry;
    uint64_t staged_index = 0;
    std::vector<Entry> staged_entries;
    switch (type) {
      case kPromise:
      case kAccepted:
        parsed = r.GetBallot(&staged_ballot);
        break;
      case kAppend:
        parsed = r.GetEntry(&staged_entry);
        break;
      case kTruncate:
      case kDecide:
      case kTrim:
        parsed = r.GetU64(&staged_index);
        break;
      case kSnapshot: {
        uint32_t count = 0;
        parsed = r.GetBallot(&staged_ballot) && r.GetU64(&staged_index) &&
                 r.GetU32(&count);
        for (uint32_t i = 0; parsed && i < count; ++i) {
          Entry e;
          parsed = r.GetEntry(&e);
          if (parsed) {
            staged_entries.push_back(std::move(e));
          }
        }
        break;
      }
      default:
        parsed = false;
        break;
    }
    if (!parsed) {
      break;
    }
    uint32_t stored_crc = 0;
    if (!r.GetU32(&stored_crc)) {
      break;
    }
    const size_t payload_len = r.pos - record_start - 4;
    if (Crc32(bytes.data() + record_start, payload_len) != stored_crc) {
      break;
    }
    // Apply, re-checking the semantic bounds (a valid CRC does not guarantee
    // the record is consistent with a prefix truncated earlier).
    bool applied = true;
    switch (type) {
      case kPromise:
        promised = staged_ballot;
        break;
      case kAccepted:
        accepted = staged_ballot;
        break;
      case kAppend:
        log.push_back(std::move(staged_entry));
        break;
      case kTruncate:
        // staged_index is a logical length; the physical log starts at the
        // compaction boundary.
        applied = staged_index >= compacted &&
                  staged_index <= compacted + log.size() && staged_index >= decided;
        if (applied) {
          log.resize(staged_index - compacted);
        }
        break;
      case kDecide:
        applied = staged_index >= compacted && staged_index <= compacted + log.size();
        if (applied) {
          decided = staged_index;
        }
        break;
      case kTrim:
        applied = staged_index <= decided;
        if (applied && staged_index > compacted) {
          log.erase(log.begin(),
                    log.begin() + static_cast<ptrdiff_t>(staged_index - compacted));
          compacted = staged_index;
        }
        break;
      case kSnapshot:
        applied = staged_index >= decided && staged_index >= compacted &&
                  staged_ballot >= accepted;
        if (applied) {
          accepted = staged_ballot;
          compacted = staged_index;
          decided = staged_index;
          log = std::move(staged_entries);
        }
        break;
      default:
        applied = false;
        break;
    }
    if (!applied) {
      break;
    }
    valid_end = r.pos;
  }

  auto storage = std::unique_ptr<DurableStorage>(new DurableStorage(path));
  storage->RestoreForRecovery(promised, accepted, compacted, std::move(log), decided);
  // Reopen for appending, dropping any torn tail.
  FILE* out = std::fopen(path.c_str(), "rb+");
  OPX_CHECK(out != nullptr) << "cannot reopen WAL at " << path;
  OPX_CHECK_EQ(std::fseek(out, static_cast<long>(valid_end), SEEK_SET), 0);
  storage->file_ = out;
  return storage;
}

void DurableStorage::WriteRecord(uint8_t type, const std::vector<uint8_t>& payload) {
  OPX_CHECK(file_ != nullptr);
  std::vector<uint8_t> record;
  record.reserve(payload.size() + 5);
  record.push_back(type);
  record.insert(record.end(), payload.begin(), payload.end());
  PutU32(&record, Crc32(record.data(), record.size()));
  FILE* f = static_cast<FILE*>(file_);
  const size_t written = std::fwrite(record.data(), 1, record.size(), f);
  OPX_CHECK_EQ(written, record.size()) << "WAL write failed";
}

void DurableStorage::set_promised_round(const Ballot& b) {
  std::vector<uint8_t> payload;
  PutBallot(&payload, b);
  WriteRecord(kPromise, payload);
  Storage::set_promised_round(b);
}

void DurableStorage::set_accepted_round(const Ballot& b) {
  std::vector<uint8_t> payload;
  PutBallot(&payload, b);
  WriteRecord(kAccepted, payload);
  Storage::set_accepted_round(b);
}

void DurableStorage::Append(Entry e) {
  std::vector<uint8_t> payload;
  PutEntry(&payload, e);
  WriteRecord(kAppend, payload);
  Storage::Append(std::move(e));
}

void DurableStorage::AppendAll(std::span<const Entry> entries) {
  for (const Entry& e : entries) {
    std::vector<uint8_t> payload;
    PutEntry(&payload, e);
    WriteRecord(kAppend, payload);
  }
  Storage::AppendAll(entries);
}

void DurableStorage::TruncateAndAppend(LogIndex len, std::span<const Entry> suffix) {
  std::vector<uint8_t> payload;
  PutU64(&payload, len);
  WriteRecord(kTruncate, payload);
  for (const Entry& e : suffix) {
    std::vector<uint8_t> entry_payload;
    PutEntry(&entry_payload, e);
    WriteRecord(kAppend, entry_payload);
  }
  Storage::TruncateAndAppend(len, suffix);
}

void DurableStorage::set_decided_idx(LogIndex idx) {
  std::vector<uint8_t> payload;
  PutU64(&payload, idx);
  WriteRecord(kDecide, payload);
  Storage::set_decided_idx(idx);
}

void DurableStorage::Trim(LogIndex idx) {
  // Journal only effective trims (the base call no-ops at or below the
  // current boundary), so replay matches the in-memory transition exactly.
  if (idx > compacted_idx() && idx <= decided_idx()) {
    std::vector<uint8_t> payload;
    PutU64(&payload, idx);
    WriteRecord(kTrim, payload);
  }
  Storage::Trim(idx);
}

void DurableStorage::ResetToSnapshot(const Ballot& accepted, LogIndex up_to,
                                     std::span<const Entry> suffix) {
  // One record carries the round, the boundary, and the suffix: recovery
  // applies the install atomically or not at all.
  std::vector<uint8_t> payload;
  PutBallot(&payload, accepted);
  PutU64(&payload, up_to);
  PutU32(&payload, static_cast<uint32_t>(suffix.size()));
  for (const Entry& e : suffix) {
    PutEntry(&payload, e);
  }
  WriteRecord(kSnapshot, payload);
  Storage::ResetToSnapshot(accepted, up_to, suffix);
}

void DurableStorage::Sync() {
  if (file_ != nullptr) {
    std::fflush(static_cast<FILE*>(file_));
  }
}

}  // namespace opx::omni
