// Chaos schedules — randomized fault plans for the deterministic simulator.
//
// A ChaosPlan is a set of timed, self-healing faults (link flaps, one-way
// cuts, latency spikes, partition patterns, node crashes) generated from a
// single 64-bit seed. Plans are protocol-agnostic: src/rsm/chaos.h expands
// the active-fault set into concrete Network/cluster operations at each fault
// boundary. Every fault is an independent interval [at, at+duration), so any
// subset of a plan's faults is itself a well-formed plan — the property the
// delta-debugging shrinker relies on.
//
// Plans serialize to a line-oriented text format (one fault per line) so a
// violating schedule can be committed as a replayable regression artifact.
#ifndef SRC_SIM_CHAOS_PLAN_H_
#define SRC_SIM_CHAOS_PLAN_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::sim {

// One fault interval. Which fields matter depends on the kind; unused fields
// serialize as 0 so the text format stays fixed-width and diffable.
struct ChaosFault {
  enum class Kind : uint8_t {
    kLinkCut,       // bidirectional cut of a<->b
    kOneWayCut,     // deaf/mute at link granularity: only a->b cut (§8)
    kLatencySpike,  // a<->b latency set to `latency`, restored at the end
    kCrash,         // node a crashes, restarts from durable storage at the end
    kSplit,         // nodes in `mask` partitioned from the complement
    kDeaf,          // node a hears nothing: every in-link of a cut (Fig. 1)
    kMute,          // node a reaches nobody: every out-link of a cut
    kHub,           // quorum-loss shape: only links incident to hub a survive
    kChain,         // only links i <-> i+1 (id order) survive (Fig. 1c shape)
    kTrim,          // node a compacts its log to its decided index at `at`
                    // (instantaneous; duration 0) — races snapshot catch-up
                    // and crash-recovery against compaction (DESIGN.md §15)
  };

  Kind kind = Kind::kLinkCut;
  Time at = 0;        // fault start (absolute virtual time)
  Time duration = 0;  // fault clears at `at + duration`
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Time latency = 0;     // kLatencySpike only
  uint64_t mask = 0;    // kSplit only: bit i set = server i on side 1

  Time end() const { return at + duration; }
};

inline const char* ChaosKindName(ChaosFault::Kind k) {
  switch (k) {
    case ChaosFault::Kind::kLinkCut:
      return "link-cut";
    case ChaosFault::Kind::kOneWayCut:
      return "oneway-cut";
    case ChaosFault::Kind::kLatencySpike:
      return "latency-spike";
    case ChaosFault::Kind::kCrash:
      return "crash";
    case ChaosFault::Kind::kSplit:
      return "split";
    case ChaosFault::Kind::kDeaf:
      return "deaf";
    case ChaosFault::Kind::kMute:
      return "mute";
    case ChaosFault::Kind::kHub:
      return "hub";
    case ChaosFault::Kind::kChain:
      return "chain";
    case ChaosFault::Kind::kTrim:
      return "trim";
  }
  return "?";
}

inline std::optional<ChaosFault::Kind> ParseChaosKind(const std::string& name) {
  using Kind = ChaosFault::Kind;
  for (Kind k : {Kind::kLinkCut, Kind::kOneWayCut, Kind::kLatencySpike, Kind::kCrash,
                 Kind::kSplit, Kind::kDeaf, Kind::kMute, Kind::kHub, Kind::kChain,
                 Kind::kTrim}) {
    if (name == ChaosKindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

struct ChaosPlan {
  uint64_t seed = 0;  // provenance: the seed the generator was run with
  int num_servers = 0;
  // All generated faults end at or before the horizon; liveness oracles
  // measure convergence in a bounded window after it. (A hand-written or
  // mutant plan may keep faults active past the horizon — that is exactly
  // what the liveness oracles are meant to catch.)
  Time horizon = 0;
  std::vector<ChaosFault> faults;

  bool HasCrash() const {
    for (const ChaosFault& f : faults) {
      if (f.kind == ChaosFault::Kind::kCrash) {
        return true;
      }
    }
    return false;
  }

  bool HasTrim() const {
    for (const ChaosFault& f : faults) {
      if (f.kind == ChaosFault::Kind::kTrim) {
        return true;
      }
    }
    return false;
  }

  Time LastFaultEnd() const {
    Time last = 0;
    for (const ChaosFault& f : faults) {
      last = std::max(last, f.end());
    }
    return last;
  }

  std::string Serialize() const {
    std::ostringstream out;
    out << "opx-chaos-plan v1\n";
    out << "seed " << seed << "\n";
    out << "servers " << num_servers << "\n";
    out << "horizon " << horizon << "\n";
    for (const ChaosFault& f : faults) {
      out << "fault " << ChaosKindName(f.kind) << " " << f.at << " " << f.duration << " "
          << f.a << " " << f.b << " " << f.latency << " " << f.mask << "\n";
    }
    out << "end\n";
    return out.str();
  }

  // Parses a plan from `text` starting at stream position of `in`. Returns
  // nullopt on any malformed line. Consumes through the "end" terminator so
  // a plan can be embedded inside a larger artifact file.
  static std::optional<ChaosPlan> Parse(std::istream& in) {
    std::string line;
    if (!std::getline(in, line) || line != "opx-chaos-plan v1") {
      return std::nullopt;
    }
    ChaosPlan plan;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') {
        continue;
      }
      if (line == "end") {
        return plan;
      }
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == "seed") {
        ls >> plan.seed;
      } else if (key == "servers") {
        ls >> plan.num_servers;
      } else if (key == "horizon") {
        ls >> plan.horizon;
      } else if (key == "fault") {
        std::string kind_name;
        ChaosFault f;
        int64_t a = 0, b = 0;
        ls >> kind_name >> f.at >> f.duration >> a >> b >> f.latency >> f.mask;
        const std::optional<ChaosFault::Kind> kind = ParseChaosKind(kind_name);
        if (!kind || ls.fail()) {
          return std::nullopt;
        }
        f.kind = *kind;
        f.a = static_cast<NodeId>(a);
        f.b = static_cast<NodeId>(b);
        plan.faults.push_back(f);
      } else {
        return std::nullopt;
      }
      if (ls.fail()) {
        return std::nullopt;
      }
    }
    return std::nullopt;  // missing "end"
  }

  static std::optional<ChaosPlan> Parse(const std::string& text) {
    std::istringstream in(text);
    return Parse(in);
  }
};

// Knobs for the seeded generator. Defaults give a dense 10-second fault
// window after a 2-second warmup — enough for several overlapping partitions,
// flaps, and crash/recover cycles at the default 50 ms election timeout.
struct ChaosGenParams {
  int num_servers = 5;
  Time warmup = Seconds(2);        // no faults before this (leader settles)
  Time fault_window = Seconds(10);  // faults *start* within [warmup, warmup+window)
  int min_faults = 4;
  int max_faults = 14;
  // Long-fault duration range (partitions, crashes, spikes).
  Time min_duration = Millis(50);
  Time max_duration = Seconds(2);
  // Probability that a link fault is a rapid flap instead (duration below or
  // near one propagation delay — the regime that exposed the stale-reconnect
  // and FIFO-floor bugs).
  double flap_probability = 0.3;
  Time min_flap = Micros(10);
  Time max_flap = Millis(2);
  Time max_latency_spike = Millis(50);
  // Crash+recover requires the protocol to support restart from durable
  // storage; the driver clears this for protocols that do not.
  bool allow_crash = true;
  // Trim faults (forced log compaction) require a protocol compaction path
  // (Node::kSupportsTrim); off by default so pre-compaction seeds replay
  // byte-identically — the generator draws no randomness for trims unless
  // this is set.
  bool allow_trim = false;
};

// Deterministically generates a plan from (params, seed). Two calls with the
// same arguments yield the identical plan — the replay contract.
inline ChaosPlan GenerateChaosPlan(const ChaosGenParams& params, uint64_t seed) {
  OPX_CHECK_GE(params.num_servers, 2);
  OPX_CHECK_LE(params.num_servers, 63);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosPlan plan;
  plan.seed = seed;
  plan.num_servers = params.num_servers;

  const int n = params.num_servers;
  const int num_faults =
      static_cast<int>(rng.NextInRange(params.min_faults, params.max_faults));
  // Per-node crash busy-until: crash intervals of one node must not overlap
  // (a crashed node cannot crash again), unlike every other fault kind.
  std::vector<Time> crash_free_at(static_cast<size_t>(n) + 1, 0);

  for (int i = 0; i < num_faults; ++i) {
    ChaosFault f;
    f.at = params.warmup + static_cast<Time>(rng.NextBounded(
                               static_cast<uint64_t>(params.fault_window)));
    f.duration = params.min_duration +
                 static_cast<Time>(rng.NextBounded(static_cast<uint64_t>(
                     params.max_duration - params.min_duration + 1)));
    // 9 kinds; weight plain link faults (the most local, least catastrophic
    // shape) double so most schedules are mixes of flaps with one or two
    // pattern faults, like the paper's chained/deaf-mute compositions.
    const uint64_t die = rng.NextBounded(10);
    switch (die) {
      case 0:
      case 1:
        f.kind = ChaosFault::Kind::kLinkCut;
        break;
      case 2:
      case 3:
        f.kind = ChaosFault::Kind::kOneWayCut;
        break;
      case 4:
        f.kind = ChaosFault::Kind::kLatencySpike;
        break;
      case 5:
        f.kind = ChaosFault::Kind::kCrash;
        break;
      case 6:
        f.kind = ChaosFault::Kind::kSplit;
        break;
      case 7:
        f.kind = rng.NextBool(0.5) ? ChaosFault::Kind::kDeaf : ChaosFault::Kind::kMute;
        break;
      case 8:
        f.kind = ChaosFault::Kind::kHub;
        break;
      default:
        f.kind = ChaosFault::Kind::kChain;
        break;
    }
    if (f.kind == ChaosFault::Kind::kCrash && !params.allow_crash) {
      f.kind = ChaosFault::Kind::kLinkCut;
    }

    switch (f.kind) {
      case ChaosFault::Kind::kLinkCut:
      case ChaosFault::Kind::kOneWayCut:
      case ChaosFault::Kind::kLatencySpike: {
        f.a = static_cast<NodeId>(rng.NextInRange(1, n));
        f.b = static_cast<NodeId>(rng.NextInRange(1, n - 1));
        if (f.b >= f.a) {
          ++f.b;  // uniform over peers != a
        }
        if (f.kind == ChaosFault::Kind::kLatencySpike) {
          f.latency = Micros(500) + static_cast<Time>(rng.NextBounded(
                                        static_cast<uint64_t>(params.max_latency_spike)));
        } else if (rng.NextBool(params.flap_probability)) {
          f.duration = params.min_flap +
                       static_cast<Time>(rng.NextBounded(static_cast<uint64_t>(
                           params.max_flap - params.min_flap + 1)));
        }
        break;
      }
      case ChaosFault::Kind::kCrash: {
        f.a = static_cast<NodeId>(rng.NextInRange(1, n));
        if (f.at < crash_free_at[f.a]) {
          f.at = crash_free_at[f.a];
        }
        crash_free_at[f.a] = f.end() + Millis(1);
        break;
      }
      case ChaosFault::Kind::kSplit: {
        // Non-empty proper subset of the servers.
        f.mask = rng.NextInRange(1, (1LL << n) - 2);
        break;
      }
      case ChaosFault::Kind::kDeaf:
      case ChaosFault::Kind::kMute:
      case ChaosFault::Kind::kHub: {
        f.a = static_cast<NodeId>(rng.NextInRange(1, n));
        break;
      }
      case ChaosFault::Kind::kChain:
      case ChaosFault::Kind::kTrim:  // not drawn from `die`; generated below
        break;
    }
    plan.faults.push_back(f);
  }

  if (params.allow_trim) {
    // A few forced compactions at random nodes/times...
    const int num_trims = static_cast<int>(rng.NextInRange(1, 3));
    for (int i = 0; i < num_trims; ++i) {
      ChaosFault f;
      f.kind = ChaosFault::Kind::kTrim;
      f.at = params.warmup + static_cast<Time>(rng.NextBounded(
                                 static_cast<uint64_t>(params.fault_window)));
      f.a = static_cast<NodeId>(rng.NextInRange(1, n));
      plan.faults.push_back(f);
    }
    // ...plus one just before each crash (coin flip), so a server trims
    // while another is down and the restarted node must catch up from a
    // snapshot rather than the (gone) log prefix.
    const size_t existing = plan.faults.size();
    for (size_t i = 0; i < existing; ++i) {
      const ChaosFault crash = plan.faults[i];
      if (crash.kind == ChaosFault::Kind::kCrash && rng.NextBool(0.5)) {
        ChaosFault f;
        f.kind = ChaosFault::Kind::kTrim;
        f.at = crash.at > Millis(5) ? crash.at - Millis(5) : crash.at;
        f.a = static_cast<NodeId>(rng.NextInRange(1, n));
        plan.faults.push_back(f);
      }
    }
  }

  plan.horizon = plan.LastFaultEnd();
  return plan;
}

}  // namespace opx::sim

#endif  // SRC_SIM_CHAOS_PLAN_H_
