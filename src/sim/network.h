// Simulated message network with partial-connectivity control.
//
// Models the paper's assumptions (§3): bidirectional, session-based FIFO
// perfect links (TCP in the paper). Each directed link carries a session
// epoch; cutting a link bumps the epoch so in-flight messages of the old
// session are discarded, and healing it delivers a "reconnected" event to both
// endpoints — the cue Sequence Paxos uses to send <PrepareReq> (§4.1.3).
//
// Bandwidth: every node owns an egress queue draining at a configurable rate.
// A message occupies the sender NIC for size/rate seconds before propagating
// with the per-link one-way latency. This serialization is the mechanism
// behind the reconfiguration leader-bottleneck experiments (Fig. 9) and also
// provides the per-node I/O counters the paper reports.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/time.h"
#include "src/util/types.h"
#include "src/util/unique_function.h"

namespace opx::sim {

struct NetworkParams {
  // One-way propagation delay applied to every link unless overridden.
  Time default_latency = Micros(100);  // LAN: RTT 0.2 ms as in §7.1
  // Egress serialization rate per node, bytes/second. 0 disables the model
  // (messages only incur latency). 1.25e9 B/s ~ a 10 Gbps NIC.
  double egress_bytes_per_sec = 0.0;
  // Fixed per-message framing overhead added to the payload size for both
  // serialization and I/O accounting (rough TCP/IP + header cost).
  uint32_t per_message_overhead_bytes = 64;
  // Optional trace/metrics sink (DESIGN.md §12): link up/down transitions are
  // recorded as events stamped with the simulator clock, and per-directed-link
  // egress bytes as counters. nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

template <typename Msg>
class Network {
 public:
  // Move-only so handlers may own state; small-buffer storage keeps the
  // usual {harness*, id} captures allocation-free.
  using Handler = util::UniqueFunction<void(NodeId from, Msg msg), 48>;
  using ReconnectHandler = util::UniqueFunction<void(NodeId peer), 48>;

  // Nodes are ids 1..num_nodes.
  Network(Simulator* sim, int num_nodes, NetworkParams params)
      : sim_(sim), n_(num_nodes), params_(params) {
    OPX_CHECK_GT(num_nodes, 0);
    links_.resize(static_cast<size_t>(n_ + 1) * static_cast<size_t>(n_ + 1));
    for (auto& link : links_) {
      link.latency = params_.default_latency;
    }
    handlers_.resize(static_cast<size_t>(n_) + 1);
    reconnect_handlers_.resize(static_cast<size_t>(n_) + 1);
    egress_free_at_.resize(static_cast<size_t>(n_) + 1, 0);
    bytes_sent_.resize(static_cast<size_t>(n_) + 1, 0);
    messages_sent_.resize(static_cast<size_t>(n_) + 1, 0);
#if defined(OPX_OBS_ENABLED)
    if (params_.obs != nullptr) {
      // Resolve every per-link byte counter once here, so Send() stays a
      // pointer bump (the metrics hot-path rule; name lookups never happen
      // on the message path).
      link_bytes_.resize(links_.size(), nullptr);
      for (NodeId from = 1; from <= n_; ++from) {
        for (NodeId to = 1; to <= n_; ++to) {
          if (from != to) {
            link_bytes_[LinkIndex(from, to)] = params_.obs->metrics().GetCounter(
                "net/link_bytes/" + std::to_string(from) + "->" + std::to_string(to));
          }
        }
      }
    }
#endif
  }

  int num_nodes() const { return n_; }

  void SetHandler(NodeId node, Handler handler) {
    handlers_[CheckedIndex(node)] = std::move(handler);
  }

  void SetReconnectHandler(NodeId node, ReconnectHandler handler) {
    reconnect_handlers_[CheckedIndex(node)] = std::move(handler);
  }

  // Sends `msg` over the directed link from→to. `payload_bytes` is the logical
  // wire size used for bandwidth/I/O accounting. Silently drops if the link is
  // down (the session-epoch check also drops messages that were in the NIC
  // queue when the link was cut).
  //
  // `control_plane` marks tiny election/failure-detector messages that bypass
  // the egress serialization queue (modelling an out-of-band control channel;
  // they still count toward I/O). Without this, a saturated scaled-down NIC
  // starves heartbeats behind multi-hundred-KB data messages — an artifact
  // real gigabit deployments do not exhibit.
  void Send(NodeId from, NodeId to, Msg msg, uint32_t payload_bytes,
            bool control_plane = false) {
    OPX_DCHECK_NE(from, to);
    Link& link = LinkRef(from, to);
    const uint64_t session = link.epoch;
    if (!link.up) {
      return;
    }
    const uint64_t wire_bytes = payload_bytes + params_.per_message_overhead_bytes;
    bytes_sent_[CheckedIndex(from)] += wire_bytes;
    messages_sent_[CheckedIndex(from)] += 1;
#if defined(OPX_OBS_ENABLED)
    if (!link_bytes_.empty()) {
      link_bytes_[LinkIndex(from, to)]->Inc(wire_bytes);
    }
#endif

    Time start = sim_->Now();
    if (params_.egress_bytes_per_sec > 0.0 && !control_plane) {
      Time& free_at = egress_free_at_[CheckedIndex(from)];
      if (free_at > start) {
        start = free_at;
      }
      const Time tx = static_cast<Time>(static_cast<double>(wire_bytes) /
                                        params_.egress_bytes_per_sec * 1e9);
      free_at = start + tx;
      start = free_at;
    }
    Time deliver_at = start + link.latency;
    // Enforce FIFO per directed link and channel (control-plane messages ride
    // their own session, as BLE does over a dedicated connection in practice;
    // clamping them behind queued data would defeat the bypass).
    Time& last = control_plane ? link.last_control_delivery : link.last_delivery;
    if (deliver_at <= last) {
      deliver_at = last + 1;
    }
    last = deliver_at;

    sim_->ScheduleAt(deliver_at, [this, from, to, session, m = std::move(msg)]() mutable {
      Link& l = LinkRef(from, to);
      if (!l.up || l.epoch != session) {
        return;  // session dropped while the message was in flight
      }
      Handler& h = handlers_[CheckedIndex(to)];
      if (h) {
        h(from, std::move(m));
      }
    });
  }

  // Cuts or heals the bidirectional link a<->b. Healing a previously-down link
  // raises the reconnect event on both endpoints after one propagation delay
  // (models the TCP session re-establishing).
  void SetLink(NodeId a, NodeId b, bool up) {
    SetLinkOneWay(a, b, up);
    SetLinkOneWay(b, a, up);
  }

  // Half-duplex control (§8 discussion): affects only messages a→b.
  void SetLinkOneWay(NodeId a, NodeId b, bool up) {
    Link& link = LinkRef(a, b);
    if (link.up == up) {
      return;
    }
    link.up = up;
    link.epoch += 1;
    OPX_TRACE_NOW(params_.obs, sim_->Now());
    OPX_TRACE(params_.obs, up ? obs::EventKind::kLinkUp : obs::EventKind::kLinkDown, a,
              b, 0, 0, link.epoch);
    // A new session starts with a fresh FIFO floor: the old session's queued
    // deliveries are discarded by the epoch check, so inheriting their
    // delivery-time clamp would delay the first post-heal message by however
    // far the dead session had run ahead (e.g. after a latency spike).
    link.last_delivery = -1;
    link.last_control_delivery = -1;
    if (up) {
      const uint64_t session = link.epoch;
      sim_->ScheduleAfter(link.latency, [this, a, b, session]() {
        // Notify the *receiver* side (b) that its session with a is fresh.
        // The session capture drops stale notifications: a heal→cut→heal flap
        // inside one propagation delay must deliver exactly one reconnect
        // event — for the live session, not the dead one.
        const Link& l = LinkRef(a, b);
        if (!l.up || l.epoch != session) {
          return;
        }
        ReconnectHandler& h = reconnect_handlers_[CheckedIndex(b)];
        if (h) {
          h(a);
        }
      });
    }
  }

  // Tears down every session of `node` (both directions) without changing
  // link up/down state: in-flight messages to and from the node are dropped
  // and FIFO floors reset. Models a process crash killing its TCP sessions;
  // the cluster harness calls this when it crashes a simulated server.
  void ResetNode(NodeId node) {
    for (NodeId other = 1; other <= n_; ++other) {
      if (other == node) {
        continue;
      }
      for (Link* link : {&LinkRef(node, other), &LinkRef(other, node)}) {
        link->epoch += 1;
        link->last_delivery = -1;
        link->last_control_delivery = -1;
      }
    }
  }

  bool LinkUp(NodeId a, NodeId b) const {
    return LinkConstRef(a, b).up && LinkConstRef(b, a).up;
  }

  void SetLatency(NodeId a, NodeId b, Time one_way) {
    LinkRef(a, b).latency = one_way;
    LinkRef(b, a).latency = one_way;
  }

  // Cuts every link of `node` (both directions), isolating it.
  void Isolate(NodeId node) {
    for (NodeId other = 1; other <= n_; ++other) {
      if (other != node) {
        SetLink(node, other, false);
      }
    }
  }

  // Restores full connectivity among all nodes.
  void HealAll() {
    for (NodeId a = 1; a <= n_; ++a) {
      for (NodeId b = a + 1; b <= n_; ++b) {
        SetLink(a, b, true);
      }
    }
  }

  uint64_t BytesSent(NodeId node) const { return bytes_sent_[CheckedIndex(node)]; }
  uint64_t MessagesSent(NodeId node) const { return messages_sent_[CheckedIndex(node)]; }

  uint64_t TotalBytesSent() const {
    uint64_t total = 0;
    for (NodeId node = 1; node <= n_; ++node) {
      total += BytesSent(node);
    }
    return total;
  }

 private:
  struct Link {
    bool up = true;
    uint64_t epoch = 0;
    Time latency = 0;
    Time last_delivery = -1;
    Time last_control_delivery = -1;
  };

  size_t CheckedIndex(NodeId node) const {
    OPX_DCHECK(node >= 1 && node <= n_) << "node=" << node;
    return static_cast<size_t>(node);
  }

  size_t LinkIndex(NodeId from, NodeId to) const {
    return CheckedIndex(from) * static_cast<size_t>(n_ + 1) + CheckedIndex(to);
  }
  Link& LinkRef(NodeId from, NodeId to) { return links_[LinkIndex(from, to)]; }
  const Link& LinkConstRef(NodeId from, NodeId to) const {
    return links_[LinkIndex(from, to)];
  }

  Simulator* sim_;
  int n_;
  NetworkParams params_;
  std::vector<Link> links_;
  std::vector<Handler> handlers_;
  std::vector<ReconnectHandler> reconnect_handlers_;
  std::vector<Time> egress_free_at_;
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> messages_sent_;
#if defined(OPX_OBS_ENABLED)
  std::vector<obs::Counter*> link_bytes_;  // parallel to links_; empty when untraced
#endif
};

}  // namespace opx::sim

#endif  // SRC_SIM_NETWORK_H_
