// Deterministic discrete-event simulator.
//
// Events are closures scheduled at absolute virtual times; ties are broken by
// insertion order so a run is a pure function of its inputs (seed + scenario).
// This is the substrate substituting for the paper's Google Cloud deployment
// (see DESIGN.md §2): protocols never read wall-clock time and never spawn
// threads, so a whole-cluster experiment replays identically from a seed.
//
// Hot-path design (DESIGN.md "Event-loop internals & performance"): events
// live in a slab of move-only slots holding a small-buffer UniqueFunction
// (zero mandatory heap allocations per event); a hand-rolled 4-ary min-heap
// orders slot *indices* by (time, sequence), so sifts move 4-byte ints, never
// closures, and firing moves the closure out of its slot exactly once.
// EventIds carry a per-slot generation tag: Cancel() is an O(1) in-place
// tombstone (no hash set), and cancelling an already-fired, stale, or unknown
// id is a genuine no-op.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/check.h"
#include "src/util/time.h"
#include "src/util/unique_function.h"

namespace opx::sim {

// Identifies a scheduled event for cancellation: slot index in the high
// 32 bits, slot generation (always >= 1) in the low 32 bits. A slot bumps its
// generation every time its event leaves the Armed state, so an id can never
// accidentally cancel a later event reusing the same slot.
using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

// Sized for the Network send closure ({network*, from, to, session, message}
// with a protocol-variant message): the largest routine capture stays inline.
using EventFn = util::UniqueFunction<void(), 128>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay >= 0.
  EventId ScheduleAfter(Time delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `at` (>= Now()).
  EventId ScheduleAt(Time at, EventFn fn) {
    OPX_DCHECK_GE(at, now_);
    uint32_t si;
    if (!free_.empty()) {
      si = free_.back();
      free_.pop_back();
    } else {
      si = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[si];
    OPX_DCHECK(s.state == Slot::kFree);
    s.at = at;
    s.seq = next_seq_++;  // monotonic: doubles as the FIFO tie-breaker
    s.state = Slot::kArmed;
    s.fn = std::move(fn);
    heap_.push_back(si);
    SiftUp(heap_.size() - 1);
    ++live_;
    return (static_cast<uint64_t>(si) << 32) | s.gen;
  }

  // Cancels a pending event in O(1) by tombstoning its slot in place; the
  // heap node is discarded lazily when it surfaces (or at compaction).
  // Cancelling an already-fired, already-cancelled, stale, or unknown id is a
  // genuine no-op — timer owners may cancel unconditionally, and a fired id
  // can never hit an event that reused the slot (generation mismatch).
  void Cancel(EventId id) {
    const uint32_t si = static_cast<uint32_t>(id >> 32);
    const uint32_t gen = static_cast<uint32_t>(id);
    if (si >= slots_.size()) {
      return;
    }
    Slot& s = slots_[si];
    if (s.state != Slot::kArmed || s.gen != gen) {
      return;
    }
    s.state = Slot::kTombstone;
    ++s.gen;
    s.fn = nullptr;  // release captured resources immediately
    --live_;
    ++tombstones_;
    MaybeCompact();
  }

  // Runs the earliest pending event; returns false if none are pending.
  bool Step() { return RunOne(kTimeNever); }

  // Runs every event with time <= deadline, then advances Now() to deadline.
  void RunUntil(Time deadline) {
    while (RunOne(deadline)) {
    }
    OPX_CHECK_GE(deadline, now_);
    now_ = deadline;
  }

  // Drains the queue completely. Only sensible for tests with finite event sets.
  void RunToCompletion() {
    while (Step()) {
    }
  }

  size_t PendingEvents() const { return live_; }

 private:
  struct Slot {
    enum State : uint8_t { kFree, kArmed, kTombstone };
    Time at = 0;
    uint64_t seq = 0;
    uint32_t gen = 1;  // >= 1 so no valid EventId equals kInvalidEvent
    State state = kFree;
    EventFn fn;
  };

  // The single pop path shared by Step() and RunUntil(): discards surfaced
  // tombstones, then fires the earliest live event iff its time <= deadline.
  bool RunOne(Time deadline) {
    while (!heap_.empty()) {
      const uint32_t si = heap_.front();
      Slot& s = slots_[si];
      if (s.state == Slot::kTombstone) {
        PopRoot();
        Release(si);
        --tombstones_;
        continue;
      }
      if (s.at > deadline) {
        return false;
      }
      PopRoot();
      OPX_DCHECK_GE(s.at, now_);
      now_ = s.at;
      EventFn fn = std::move(s.fn);
      ++s.gen;  // fired: stale Cancel()s of this id become no-ops
      Release(si);
      --live_;
      fn();  // may schedule/cancel freely; the slot is already reusable
      return true;
    }
    return false;
  }

  void Release(uint32_t si) {
    Slot& s = slots_[si];
    s.state = Slot::kFree;
    s.fn = nullptr;
    free_.push_back(si);
  }

  // Orders slots by (time, schedule order); seq is unique, so this is a
  // strict total order and heap restructuring can never reorder equal keys.
  bool EarlierThan(uint32_t a, uint32_t b) const {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    return x.at != y.at ? x.at < y.at : x.seq < y.seq;
  }

  // 4-ary min-heap over slot indices: children of i are 4i+1..4i+4. Shallower
  // than a binary heap and sifts touch only 4-byte indices.
  void SiftUp(size_t i) {
    const uint32_t si = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!EarlierThan(si, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = si;
  }

  void SiftDown(size_t i) {
    const uint32_t si = heap_[i];
    const size_t n = heap_.size();
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      size_t best = first;
      const size_t last = std::min(first + 4, n);
      for (size_t c = first + 1; c < last; ++c) {
        if (EarlierThan(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!EarlierThan(heap_[best], si)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = si;
  }

  void PopRoot() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
  }

  // Tombstones parked deep in the heap (cancelled long-distance timers) would
  // otherwise pin their slots until their original deadline surfaces. When
  // they outnumber live events, filter and rebuild in O(n) — the (at, seq)
  // total order makes the rebuilt heap pop in the exact same sequence.
  void MaybeCompact() {
    if (tombstones_ < 64 || tombstones_ * 2 < heap_.size()) {
      return;
    }
    size_t kept = 0;
    for (const uint32_t si : heap_) {
      if (slots_[si].state == Slot::kTombstone) {
        Release(si);
      } else {
        heap_[kept++] = si;
      }
    }
    heap_.resize(kept);
    tombstones_ = 0;
    for (size_t i = (kept + 2) / 4; i-- > 0;) {  // (kept+2)/4 parents exist
      SiftDown(i);
    }
  }

  Time now_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<Slot> slots_;     // slab; index = high half of EventId
  std::vector<uint32_t> heap_;  // 4-ary min-heap of slot indices
  std::vector<uint32_t> free_;  // recycled slot indices (LIFO)
  size_t live_ = 0;             // armed events (excludes tombstones)
  size_t tombstones_ = 0;       // cancelled events still parked in heap_
};

}  // namespace opx::sim

#endif  // SRC_SIM_SIMULATOR_H_
