// Deterministic discrete-event simulator.
//
// Events are closures scheduled at absolute virtual times; ties are broken by
// insertion order so a run is a pure function of its inputs (seed + scenario).
// This is the substrate substituting for the paper's Google Cloud deployment
// (see DESIGN.md §2): protocols never read wall-clock time and never spawn
// threads, so a whole-cluster experiment replays identically from a seed.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/check.h"
#include "src/util/time.h"

namespace opx::sim {

// Identifies a scheduled event for cancellation.
using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay >= 0.
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `at` (>= Now()).
  EventId ScheduleAt(Time at, std::function<void()> fn) {
    OPX_DCHECK_GE(at, now_);
    const EventId id = next_id_++;
    queue_.push(Event{at, id, std::move(fn)});
    return id;
  }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op, which lets timer owners cancel unconditionally.
  void Cancel(EventId id) {
    if (id != kInvalidEvent) {
      cancelled_.insert(id);
    }
  }

  // Runs the earliest pending event; returns false if the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      OPX_DCHECK_GE(ev.at, now_);
      now_ = ev.at;
      ev.fn();
      return true;
    }
    return false;
  }

  // Runs every event with time <= deadline, then advances Now() to deadline.
  void RunUntil(Time deadline) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.count(top.id) > 0) {
        cancelled_.erase(top.id);
        queue_.pop();
        continue;
      }
      if (top.at > deadline) {
        break;
      }
      Step();
    }
    OPX_CHECK_GE(deadline, now_);
    now_ = deadline;
  }

  // Drains the queue completely. Only sensible for tests with finite event sets.
  void RunToCompletion() {
    while (Step()) {
    }
  }

  size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time at;
    EventId id;  // doubles as the FIFO tie-breaker: ids increase monotonically
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.id > b.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace opx::sim

#endif  // SRC_SIM_SIMULATOR_H_
