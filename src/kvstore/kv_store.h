// A small deterministic key-value state machine replicated by the examples
// and used in tests to demonstrate end-to-end RSM semantics: every server
// applies the decided log in order and, because of SC1-SC3, all replicas
// converge to identical state.
#ifndef SRC_KVSTORE_KV_STORE_H_
#define SRC_KVSTORE_KV_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace opx::kv {

enum class OpType : uint8_t {
  kPut = 0,
  kDelete = 1,
  kAdd = 2,       // arithmetic add to a numeric value (bank-style transfer leg)
  kCompareSwap = 3,
};

struct Command {
  OpType type = OpType::kPut;
  std::string key;
  int64_t value = 0;
  int64_t expected = 0;  // kCompareSwap only

  // Encodes into/out of the 64-bit command id space used by the replication
  // layer is not possible in general, so examples keep a side table; see
  // CommandLog below.
};

// Applies commands in log order; exposes a digest for replica comparison.
class KvStore {
 public:
  // Returns true if the command mutated state (CAS may fail).
  bool Apply(const Command& cmd) {
    switch (cmd.type) {
      case OpType::kPut:
        data_[cmd.key] = cmd.value;
        ++version_;
        return true;
      case OpType::kDelete: {
        const bool erased = data_.erase(cmd.key) > 0;
        if (erased) {
          ++version_;
        }
        return erased;
      }
      case OpType::kAdd:
        data_[cmd.key] += cmd.value;
        ++version_;
        return true;
      case OpType::kCompareSwap: {
        auto it = data_.find(cmd.key);
        const int64_t current = it == data_.end() ? 0 : it->second;
        if (current != cmd.expected) {
          return false;
        }
        data_[cmd.key] = cmd.value;
        ++version_;
        return true;
      }
    }
    return false;
  }

  std::optional<int64_t> Get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  size_t size() const { return data_.size(); }
  uint64_t version() const { return version_; }

  // Order-independent-of-insertion digest (map iterates sorted): replicas
  // that applied the same decided prefix produce identical digests.
  uint64_t Digest() const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    for (const auto& [key, value] : data_) {
      for (char c : key) {
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
      }
      mix(static_cast<uint64_t>(value));
    }
    mix(version_);
    return h;
  }

  int64_t SumAll() const {
    int64_t sum = 0;
    for (const auto& [key, value] : data_) {
      sum += value;
    }
    return sum;
  }

  // --- Snapshots (log compaction, DESIGN.md §15) ---------------------------
  // A serialized snapshot is the full materialized state: a server that
  // trimmed its log below a peer's sync point ships this instead of entries.
  // Format (little-endian): u64 version, u32 n, n × (u32 klen, klen bytes,
  // i64 value). Deterministic: the map iterates in key order.
  std::vector<uint8_t> Serialize() const {
    std::vector<uint8_t> out;
    auto put_u32 = [&out](uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    };
    auto put_u64 = [&out](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    };
    put_u64(version_);
    put_u32(static_cast<uint32_t>(data_.size()));
    for (const auto& [key, value] : data_) {
      put_u32(static_cast<uint32_t>(key.size()));
      out.insert(out.end(), key.begin(), key.end());
      put_u64(static_cast<uint64_t>(value));
    }
    return out;
  }

  // Replaces the entire state with a snapshot produced by Serialize().
  // Returns false (leaving state untouched) on a malformed buffer.
  bool InstallSnapshot(const std::vector<uint8_t>& bytes) {
    size_t pos = 0;
    auto get_u32 = [&bytes, &pos](uint32_t* v) {
      if (pos + 4 > bytes.size()) {
        return false;
      }
      *v = 0;
      for (int i = 0; i < 4; ++i) {
        *v |= static_cast<uint32_t>(bytes[pos++]) << (8 * i);
      }
      return true;
    };
    auto get_u64 = [&bytes, &pos](uint64_t* v) {
      if (pos + 8 > bytes.size()) {
        return false;
      }
      *v = 0;
      for (int i = 0; i < 8; ++i) {
        *v |= static_cast<uint64_t>(bytes[pos++]) << (8 * i);
      }
      return true;
    };
    uint64_t version = 0;
    uint32_t count = 0;
    if (!get_u64(&version) || !get_u32(&count)) {
      return false;
    }
    std::map<std::string, int64_t> data;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t klen = 0;
      if (!get_u32(&klen) || pos + klen > bytes.size()) {
        return false;
      }
      std::string key(bytes.begin() + static_cast<ptrdiff_t>(pos),
                      bytes.begin() + static_cast<ptrdiff_t>(pos + klen));
      pos += klen;
      uint64_t value = 0;
      if (!get_u64(&value)) {
        return false;
      }
      data[std::move(key)] = static_cast<int64_t>(value);
    }
    if (pos != bytes.size()) {
      return false;
    }
    data_ = std::move(data);
    version_ = version;
    return true;
  }

 private:
  std::map<std::string, int64_t> data_;
  uint64_t version_ = 0;
};

// Examples replicate 64-bit command ids; CommandLog maps ids to the actual
// commands (the "client library" side table a real system would serialize
// into the entry payload).
class CommandLog {
 public:
  uint64_t Register(Command cmd) {
    commands_.push_back(std::move(cmd));
    return commands_.size();  // ids start at 1; 0 is reserved for no-ops
  }

  const Command& Lookup(uint64_t cmd_id) const {
    OPX_CHECK_GE(cmd_id, 1u);
    OPX_CHECK_LE(cmd_id, commands_.size());
    return commands_[cmd_id - 1];
  }

  size_t size() const { return commands_.size(); }

 private:
  std::vector<Command> commands_;
};

}  // namespace opx::kv

#endif  // SRC_KVSTORE_KV_STORE_H_
