// ClusterSim — drives one protocol cluster plus a closed-loop client on the
// discrete-event simulator. This is the engine behind the Fig. 7 / Fig. 8 /
// Table 1 experiments: servers are nodes 1..N, the client is node N+1, all
// connected through sim::Network (latency, partial partitions, egress
// bandwidth, I/O accounting).
//
// Leader admission: real RSM leaders saturate on CPU/serialization long
// before a 10 Gb NIC does; a token bucket caps admitted proposals per second
// so throughput saturates realistically with growing CP (§7.1 shapes).
#ifndef SRC_RSM_CLUSTER_SIM_H_
#define SRC_RSM_CLUSTER_SIM_H_

#include <deque>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "src/audit/auditor.h"
#include "src/rsm/client.h"
#include "src/rsm/client_messages.h"
#include "src/rsm/node_options.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::rsm {

struct ClusterParams {
  int num_servers = 5;
  // The experiment's election-timeout parameter T (§7.2); adapters derive
  // their tick cadence from it.
  Time election_timeout = Millis(50);
  Time client_tick = Millis(1);
  size_t concurrent_proposals = 500;
  uint32_t payload_bytes = 8;
  Time retry_timeout = 0;  // 0 = auto: max(4T, 200 ms)
  sim::NetworkParams net;
  uint64_t seed = 1;
  // Max proposals admitted into the leader per second (token bucket);
  // 0 disables the model.
  double proposal_rate = 600'000.0;
  // Omni-Paxos: server given BLE priority 1 so it wins the first election.
  NodeId preferred_leader = kNoNode;
  // Fraction of client work issued as leader-lease local reads (DESIGN.md
  // §15). 0 keeps the read path fully off: no extra messages, schedules and
  // EventHash() identical to builds predating the feature.
  double read_fraction = 0.0;
  // Forwarded to NodeOptions: leader-side per-flush proposal cap (request
  // batching; 0 = unlimited) and the Omni-Paxos auto-compaction watermark in
  // entries (0 = never trim).
  uint64_t batch_limit = 0;
  uint64_t trim_watermark = 0;
  Time metrics_window = Seconds(5);
  // Run the cross-replica safety auditor after every delivered event.
  // Default on; benches pass --audit=false to take it off the hot path.
  bool audit = true;
  // Abort the process on the first auditor violation (the default, so a
  // failing seed is never papered over). The chaos fuzzer sets this false and
  // reads auditor().violations() instead, turning violations into shrinkable,
  // replayable artifacts rather than a dead process.
  bool audit_abort = true;
  // Optional trace/metrics sink (DESIGN.md §12). Forwarded to every protocol
  // node and (unless net.obs is already set) to the network; the harness
  // stamps virtual time into it before each dispatch. nullptr records
  // nothing, and tracing never perturbs the event schedule or EventHash().
  obs::ObsSink* obs = nullptr;
};

template <typename Node>
class ClusterSim {
 public:
  using Message = typename Node::Message;
  using Wire = std::variant<Message, ProposeBatch, ResponseBatch, ReadRequest, ReadReply>;

  explicit ClusterSim(ClusterParams params)
      : params_(params),
        net_(&sim_, params.num_servers + 1, NetParamsWithObs(params)),
        client_(MakeClientParams(params)),
        rng_(params.seed),
        auditor_(audit::SafetyAuditor::Options{params.audit_abort}) {
    if (params_.retry_timeout == 0) {
      params_.retry_timeout = std::max<Time>(4 * params_.election_timeout, Millis(200));
    }
    client_.set_window_width(params_.metrics_window);

    const int n = params_.num_servers;
    nodes_.resize(static_cast<size_t>(n) + 1);
    node_opts_.resize(static_cast<size_t>(n) + 1);
    crashed_.resize(static_cast<size_t>(n) + 1, 0);
    was_leader_.resize(static_cast<size_t>(n) + 1, false);
    admission_.resize(static_cast<size_t>(n) + 1);
    election_bytes_.resize(static_cast<size_t>(n) + 1, 0);
    for (NodeId id = 1; id <= n; ++id) {
      std::vector<NodeId> peers;
      for (NodeId other = 1; other <= n; ++other) {
        if (other != id) {
          peers.push_back(other);
        }
      }
      NodeOptions opts;
      opts.seed = rng_.Next();
      opts.ble_priority = (id == params_.preferred_leader) ? 1u : 0u;
      opts.batch_limit = params_.batch_limit;
      opts.trim_watermark = params_.trim_watermark;
      opts.obs = params_.obs;
      node_opts_[static_cast<size_t>(id)] = opts;
      nodes_[static_cast<size_t>(id)] = std::make_unique<Node>(id, std::move(peers), opts);

      net_.SetHandler(id, [this, id](NodeId from, Wire w) { OnServerWire(id, from, std::move(w)); });
      net_.SetReconnectHandler(id, [this, id](NodeId peer) {
        if (peer >= 1 && peer <= params_.num_servers && !IsCrashed(id)) {
          OPX_TRACE_NOW(params_.obs, sim_.Now());
          nodes_[static_cast<size_t>(id)]->Reconnected(peer);
          PumpServer(id);
          AuditNow("reconnect", id);
        }
      });
    }
    net_.SetHandler(ClientId(), [this](NodeId from, Wire w) { OnClientWire(from, std::move(w)); });

    // Staggered protocol tick timers.
    const Time period = Node::TickPeriod(params_.election_timeout);
    for (NodeId id = 1; id <= n; ++id) {
      const Time offset = (period / (2 * n)) * (id - 1);
      sim_.ScheduleAfter(offset, [this, id, period]() { TickServer(id, period); });
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
    sim_.ScheduleAfter(params_.metrics_window, [this]() { SampleIo(); });
    io_samples_.push_back(SnapshotIo());
#if defined(OPX_OBS_ENABLED)
    if (params_.obs != nullptr) {
      // Resolved once here; PumpServer only bumps stable pointers.
      election_bytes_ctr_ = params_.obs->metrics().GetCounter("cluster/election_bytes");
      elevations_ctr_ = params_.obs->metrics().GetCounter("cluster/leader_elevations");
      lease_reads_ctr_ = params_.obs->metrics().GetCounter("cluster/lease_reads");
    }
#endif
  }

  // --- Driving --------------------------------------------------------------

  void RunUntil(Time t) { sim_.RunUntil(t); }

  // --- Access ---------------------------------------------------------------

  sim::Simulator& simulator() { return sim_; }
  sim::Network<Wire>& network() { return net_; }
  Client& client() { return client_; }
  Node& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  int num_servers() const { return params_.num_servers; }
  NodeId ClientId() const { return params_.num_servers + 1; }
  const ClusterParams& params() const { return params_; }
  const audit::SafetyAuditor& auditor() const { return auditor_; }

  // Rolling hash over the audited event sequence (virtual time + node of
  // every event), seeded with params.seed. Two runs of the same seed and
  // scenario must produce identical hashes — the determinism regression
  // check in sim_test.cc.
  uint64_t EventHash() const { return event_hash_; }

  // Leader claimant with the highest epoch (stale claimants lose).
  NodeId CurrentLeader() {
    NodeId best = kNoNode;
    uint64_t best_epoch = 0;
    for (NodeId id = 1; id <= params_.num_servers; ++id) {
      if (!IsCrashed(id) && node(id).IsLeader() && node(id).Epoch() + 1 > best_epoch) {
        best = id;
        best_epoch = node(id).Epoch() + 1;
      }
    }
    return best;
  }

  // --- Fault injection: fail-stop crash + restart from durable state --------
  //
  // Crash() makes the server inert: its timers keep firing but do nothing, it
  // stops receiving messages, and all of its network sessions are torn down
  // (in-flight messages in both directions drop, as with a real process
  // death). Restart() rebuilds the protocol node from whatever the adapter
  // persists (Node::Restart — Omni-Paxos recovers from its storage with the
  // recovered=true PrepareReq path, §4.1.3) and tears sessions down again so
  // the revived server starts on fresh sessions.
  void Crash(NodeId id) {
    OPX_CHECK(!IsCrashed(id));
    crashed_[static_cast<size_t>(id)] = 1;
    was_leader_[static_cast<size_t>(id)] = false;
    admission_[static_cast<size_t>(id)].pending.clear();
    net_.ResetNode(id);
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    OPX_TRACE(params_.obs, obs::EventKind::kCrash, id);
  }

  void Restart(NodeId id) {
    OPX_CHECK(IsCrashed(id));
    crashed_[static_cast<size_t>(id)] = 0;
    net_.ResetNode(id);
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    OPX_TRACE(params_.obs, obs::EventKind::kRestart, id);
    nodes_[static_cast<size_t>(id)]->Restart(node_opts_[static_cast<size_t>(id)]);
    PumpServer(id);  // a recovering server emits <PrepareReq> immediately
    AuditNow("restart", id);
  }

  bool IsCrashed(NodeId id) const { return crashed_[static_cast<size_t>(id)] != 0; }

  // Chaos hook: forces `id` to compact its log up to its decided index,
  // independent of the automatic trim policy — lets fault plans race
  // compaction against crashes, partitions, and snapshot catch-up.
  void TrimNode(NodeId id) {
    if (IsCrashed(id)) {
      return;
    }
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    node(id).Trim(node(id).ReadDecided());
    PumpServer(id);
    AuditNow("trim", id);
  }

  // --- Metrics ----------------------------------------------------------------

  uint64_t leader_elevations() const { return leader_elevations_; }
  uint64_t MaxEpoch() {
    uint64_t max_epoch = 0;
    for (NodeId id = 1; id <= params_.num_servers; ++id) {
      if (!IsCrashed(id)) {
        max_epoch = std::max(max_epoch, node(id).Epoch());
      }
    }
    return max_epoch;
  }
  uint64_t ElectionBytes(NodeId id) const {
    return election_bytes_[static_cast<size_t>(id)];
  }
  uint64_t TotalElectionBytes() const {
    uint64_t total = 0;
    for (NodeId id = 1; id <= params_.num_servers; ++id) {
      total += ElectionBytes(id);
    }
    return total;
  }

  // Per-window egress bytes for `id` (deltas between metric samples).
  std::vector<uint64_t> WindowEgressBytes(NodeId id) const {
    std::vector<uint64_t> deltas;
    for (size_t w = 1; w < io_samples_.size(); ++w) {
      deltas.push_back(io_samples_[w][static_cast<size_t>(id)] -
                       io_samples_[w - 1][static_cast<size_t>(id)]);
    }
    return deltas;
  }

 private:
  struct Admission {
    double tokens = 0.0;
    Time last_refill = 0;
    std::deque<uint64_t> pending;
    bool drain_scheduled = false;
  };

  static sim::NetworkParams NetParamsWithObs(const ClusterParams& p) {
    sim::NetworkParams np = p.net;
    if (np.obs == nullptr) {
      np.obs = p.obs;
    }
    return np;
  }

  static ClientParams MakeClientParams(const ClusterParams& p) {
    ClientParams cp;
    cp.num_servers = p.num_servers;
    cp.concurrent_proposals = p.concurrent_proposals;
    cp.payload_bytes = p.payload_bytes;
    cp.retry_timeout = p.retry_timeout == 0 ? std::max<Time>(4 * p.election_timeout, Millis(200))
                                            : p.retry_timeout;
    cp.read_fraction = p.read_fraction;
    return cp;
  }

  void TickServer(NodeId id, Time period) {
    // A crashed server's timer keeps firing (so the schedule stays identical
    // across crash windows) but drives nothing until restart.
    if (!IsCrashed(id)) {
      OPX_TRACE_NOW(params_.obs, sim_.Now());
      node(id).Tick();
      PumpServer(id);
      AuditNow("tick", id);
    }
    sim_.ScheduleAfter(period, [this, id, period]() { TickServer(id, period); });
  }

  void TickClient() {
    for (Client::Send& send : client_.Tick(sim_.Now())) {
      if (!send.batch.cmd_ids.empty()) {
        const uint64_t bytes = WireBytes(send.batch);
        net_.Send(ClientId(), send.to, Wire(std::move(send.batch)), static_cast<uint32_t>(bytes));
      }
      for (ReadRequest& read : send.reads) {
        const uint64_t bytes = WireBytes(read);
        net_.Send(ClientId(), send.to, Wire(read), static_cast<uint32_t>(bytes));
      }
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
  }

  void OnServerWire(NodeId id, NodeId from, Wire w) {
    if (IsCrashed(id)) {
      return;  // message raced the crash's session teardown
    }
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    if (auto* proposals = std::get_if<ProposeBatch>(&w)) {
      OnProposals(id, std::move(*proposals));
    } else if (auto* read = std::get_if<ReadRequest>(&w)) {
      OnRead(id, *read);
    } else if (auto* msg = std::get_if<Message>(&w)) {
      node(id).Handle(from, std::move(*msg));
    }
    PumpServer(id);
    AuditNow("deliver", id);
  }

  void OnClientWire(NodeId from, Wire w) {
    if (auto* resp = std::get_if<ResponseBatch>(&w)) {
      client_.OnResponse(sim_.Now(), from, *resp);
    } else if (auto* reply = std::get_if<ReadReply>(&w)) {
      client_.OnReadReply(sim_.Now(), from, *reply);
    }
  }

  // Lease read: served locally — no log append, no replication round-trip —
  // iff this server is a leader still holding the BLE lease and its decided
  // index covers the client's read-your-writes watermark (DESIGN.md §15).
  void OnRead(NodeId id, const ReadRequest& read) {
    Node& n = node(id);
    ReadReply reply;
    reply.read_id = read.read_id;
    if (n.CanServeLocalReads() && n.ReadDecided() >= read.watermark) {
      reply.served = true;
      reply.decided_idx = n.ReadDecided();
      OPX_TRACE(params_.obs, obs::EventKind::kLeaseRead, id, ClientId(), 0,
                reply.decided_idx, read.watermark);
#if defined(OPX_OBS_ENABLED)
      if (lease_reads_ctr_ != nullptr) {
        lease_reads_ctr_->Inc();
      }
#endif
    } else {
      reply.leader_hint = n.LeaderHint();
    }
    const uint64_t bytes = WireBytes(reply);
    net_.Send(id, ClientId(), Wire(reply), static_cast<uint32_t>(bytes));
  }

  void OnProposals(NodeId id, ProposeBatch batch) {
    if (!node(id).IsLeader()) {
      ResponseBatch reject;
      reject.leader_hint = node(id).LeaderHint();
      net_.Send(id, ClientId(), Wire(std::move(reject)), 24);
      return;
    }
    Admission& adm = admission_[static_cast<size_t>(id)];
    for (uint64_t cmd : batch.cmd_ids) {
      adm.pending.push_back(cmd);
    }
    DrainAdmission(id);
  }

  void DrainAdmission(NodeId id) {
    Admission& adm = admission_[static_cast<size_t>(id)];
    if (!node(id).IsLeader()) {
      // Deposed with proposals queued: bounce the client to the new leader.
      adm.pending.clear();
      ResponseBatch reject;
      reject.leader_hint = node(id).LeaderHint();
      net_.Send(id, ClientId(), Wire(std::move(reject)), 24);
      return;
    }
    if (params_.proposal_rate > 0.0) {
      const Time now = sim_.Now();
      adm.tokens += ToSeconds(now - adm.last_refill) * params_.proposal_rate;
      const double burst = params_.proposal_rate * 0.01;  // 10 ms of burst
      if (adm.tokens > burst) {
        adm.tokens = burst;
      }
      adm.last_refill = now;
    }
    while (!adm.pending.empty() &&
           (params_.proposal_rate <= 0.0 || adm.tokens >= 1.0)) {
      if (node(id).Propose(adm.pending.front(), params_.payload_bytes)) {
        adm.tokens -= 1.0;
      }
      adm.pending.pop_front();
    }
    if (!adm.pending.empty() && !adm.drain_scheduled) {
      adm.drain_scheduled = true;
      // Wake up with enough tokens for a whole batch (~1 ms worth), not one
      // entry at a time.
      const double batch = std::min(static_cast<double>(adm.pending.size()),
                                    std::max(1.0, params_.proposal_rate / 1000.0));
      const double deficit = batch - adm.tokens;
      const Time wait = std::max<Time>(
          Micros(50), static_cast<Time>(deficit / params_.proposal_rate * 1e9));
      sim_.ScheduleAfter(wait, [this, id]() {
        admission_[static_cast<size_t>(id)].drain_scheduled = false;
        if (IsCrashed(id)) {
          return;
        }
        OPX_TRACE_NOW(params_.obs, sim_.Now());
        DrainAdmission(id);
        PumpServer(id);
        AuditNow("admission", id);
      });
    }
  }

  // Snapshot every server's AuditView and run the cross-replica safety
  // checks. Called after each event that can change protocol state (message
  // delivery, tick, reconnect, admission drain).
  void AuditNow(const char* label, NodeId id) {
    event_hash_ = audit::HashMix(event_hash_, static_cast<uint64_t>(sim_.Now()));
    event_hash_ = audit::HashMix(event_hash_, static_cast<uint64_t>(static_cast<uint32_t>(id)));
    if (!params_.audit) {
      return;
    }
    views_scratch_.clear();
    for (NodeId s = 1; s <= params_.num_servers; ++s) {
      if (!IsCrashed(s)) {  // crashed nodes are omitted; see SafetyAuditor
        views_scratch_.push_back(node(s).Audit());
      }
    }
    audit::AuditContext ctx;
    ctx.seed = params_.seed;
    ctx.now = sim_.Now();
    ctx.event_id = ++audit_events_;
    ctx.label = label;
    auditor_.Observe(views_scratch_, ctx);
  }

  void PumpServer(NodeId id) {
    Node& n = node(id);
    for (auto& [to, msg] : n.TakeOutgoing()) {
      const uint64_t bytes = WireBytes(msg);
      if (Node::IsElectionMessage(msg)) {
        election_bytes_[static_cast<size_t>(id)] += bytes;
#if defined(OPX_OBS_ENABLED)
        if (election_bytes_ctr_ != nullptr) {
          election_bytes_ctr_->Inc(bytes);
        }
#endif
      }
      net_.Send(id, to, Wire(std::move(msg)), static_cast<uint32_t>(bytes));
    }
    decided_scratch_.clear();
    n.PollDecided(&decided_scratch_);
    if (!decided_scratch_.empty() && n.IsLeader()) {
      ResponseBatch resp;
      resp.cmd_ids = std::move(decided_scratch_);
      resp.decided_idx = n.ReadDecided();
      decided_scratch_ = {};
      const uint64_t bytes = WireBytes(resp);
      net_.Send(id, ClientId(), Wire(std::move(resp)), static_cast<uint32_t>(bytes));
    }
    const bool lead = n.IsLeader();
    if (lead && !was_leader_[static_cast<size_t>(id)]) {
      ++leader_elevations_;
      OPX_TRACE_NOW(params_.obs, sim_.Now());
      OPX_TRACE(params_.obs, obs::EventKind::kLeaderElevation, id, id, n.Epoch());
#if defined(OPX_OBS_ENABLED)
      if (elevations_ctr_ != nullptr) {
        elevations_ctr_->Inc();
      }
#endif
    }
    was_leader_[static_cast<size_t>(id)] = lead;
  }

  std::vector<uint64_t> SnapshotIo() const {
    std::vector<uint64_t> snap(static_cast<size_t>(params_.num_servers) + 2, 0);
    for (NodeId id = 1; id <= params_.num_servers + 1; ++id) {
      snap[static_cast<size_t>(id)] = net_.BytesSent(id);
    }
    return snap;
  }

  void SampleIo() {
    io_samples_.push_back(SnapshotIo());
    sim_.ScheduleAfter(params_.metrics_window, [this]() { SampleIo(); });
  }

  ClusterParams params_;
  sim::Simulator sim_;
  sim::Network<Wire> net_;
  Client client_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<NodeOptions> node_opts_;
  std::vector<char> crashed_;

  std::vector<bool> was_leader_;
  uint64_t leader_elevations_ = 0;
  std::vector<Admission> admission_;
  std::vector<uint64_t> election_bytes_;
  std::vector<std::vector<uint64_t>> io_samples_;
  std::vector<uint64_t> decided_scratch_;

  audit::SafetyAuditor auditor_;
  std::vector<audit::AuditView> views_scratch_;
  uint64_t audit_events_ = 0;
  uint64_t event_hash_ = audit::Hash64(params_.seed);
#if defined(OPX_OBS_ENABLED)
  obs::Counter* election_bytes_ctr_ = nullptr;
  obs::Counter* elevations_ctr_ = nullptr;
  obs::Counter* lease_reads_ctr_ = nullptr;
#endif
};

}  // namespace opx::rsm

#endif  // SRC_RSM_CLUSTER_SIM_H_
