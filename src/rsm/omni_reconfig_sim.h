// Omni-Paxos reconfiguration harness (§6, §7.3 — Fig. 9 and the Fig. 6
// migration ablation).
//
// Each server runs a *service layer* with cross-configuration scope above its
// per-configuration OmniPaxos instances. Reconfiguring from c0 to c1:
//
//   1. the client/operator proposes a stop-sign in c0;
//   2. once the SS is decided, continuing servers immediately start their c1
//      instances (they already hold the whole c0 segment) and notify the new
//      servers;
//   3. new servers fetch the decided c0 segment in chunks — in parallel from
//      every continuing server (and from new servers that already finished),
//      or only from the old leader in the leader-only ablation (Fig. 6a) —
//      then start their c1 instances;
//   4. c1 elects a leader among started members and resumes serving.
//
// Segment transfers ride the same simulated network as replication traffic,
// so donor NIC egress is the contended resource — the mechanism behind the
// paper's leader-bottleneck results.
#ifndef SRC_RSM_OMNI_RECONFIG_SIM_H_
#define SRC_RSM_OMNI_RECONFIG_SIM_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "src/omnipaxos/omni_paxos.h"
#include "src/rsm/client.h"
#include "src/rsm/client_messages.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::rsm {

// Fills a storage with `n` identical committed commands (a long-running
// cluster's history, §7.3).
inline void PreloadStorage(omni::Storage* storage, LogIndex n, uint32_t payload_bytes) {
  for (LogIndex i = 0; i < n; ++i) {
    storage->Append(omni::Entry::Command(0, payload_bytes));
  }
  storage->set_decided_idx(n);
}

struct ReconfigParams {
  int initial_servers = 5;
  int replace_count = 1;  // 1 = Fig. 9a/9b; 3 = Fig. 9c (replace a majority)
  LogIndex preload_entries = 1'000'000;
  uint32_t payload_bytes = 8;
  size_t concurrent_proposals = 5'000;
  Time election_timeout = Millis(50);
  Time client_tick = Millis(1);
  double proposal_rate = 50'000.0;
  // Effective application-level egress rate per server; the paper's leader
  // peaked at ~22 MB/s over 5 s windows during migration.
  double egress_bytes_per_sec = 8e6;
  Time warmup = Seconds(20);
  Time run_after = Seconds(100);
  Time metrics_window = Seconds(5);
  LogIndex migration_chunk = 50'000;  // entries per segment request
  Time chunk_timeout = Seconds(10);
  bool leader_only_migration = false;  // ablation: Fig. 6a behaviour
  // Client re-proposal timeout. Must exceed the queueing latency at high CP
  // (CP / service rate), or retries snowball into duplicate storms under the
  // NIC saturation these experiments deliberately create.
  Time client_retry = Seconds(1);
  uint64_t seed = 1;
  // Optional trace/metrics sink (DESIGN.md §12): stop-sign decides, migration
  // segments, and link events; nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

struct ReconfigResult {
  std::vector<uint64_t> window_counts;  // client completions per window
  Time reconfig_proposed_at = 0;
  Time ss_decided_at = 0;
  Time migration_done_at = 0;        // last new server finished fetching
  Time new_config_first_decide = 0;  // c1 serving again
  Time downtime = 0;                 // longest no-decides gap after the proposal
  uint64_t peak_window_egress_old_leader = 0;  // bytes in the busiest window
  uint64_t peak_window_egress_any = 0;
  double steady_throughput = 0.0;  // pre-reconfiguration, per second
};

class OmniReconfigSim {
 public:
  explicit OmniReconfigSim(ReconfigParams params)
      : params_(params),
        pool_(params.initial_servers + params.replace_count),
        net_(&sim_, pool_ + 1, MakeNetParams(params)),
        client_(MakeClientParams(params, pool_)),
        rng_(params.seed) {
    OPX_CHECK_GT(params_.initial_servers, params_.replace_count);
    client_.set_window_width(params_.metrics_window);

    for (NodeId id = 1; id <= params_.initial_servers; ++id) {
      old_members_.push_back(id);
    }
    for (NodeId id = 1; id <= params_.initial_servers - params_.replace_count; ++id) {
      new_members_.push_back(id);  // continuing
    }
    for (int i = 0; i < params_.replace_count; ++i) {
      new_members_.push_back(params_.initial_servers + 1 + i);  // fresh
    }

    actors_.resize(static_cast<size_t>(pool_) + 1);
    for (NodeId id = 1; id <= pool_; ++id) {
      actors_[static_cast<size_t>(id)] = std::make_unique<Actor>();
      net_.SetHandler(id, [this, id](NodeId from, Wire w) { OnServerWire(id, from, std::move(w)); });
      net_.SetReconnectHandler(id, [this, id](NodeId peer) { OnReconnect(id, peer); });
    }
    net_.SetHandler(ClientId(), [this](NodeId from, Wire w) {
      if (auto* resp = std::get_if<ResponseBatch>(&w)) {
        client_.OnResponse(sim_.Now(), from, *resp);
      }
    });

    // Configuration c0 on the initial servers, with preloaded history.
    for (NodeId id : old_members_) {
      StartInstance(id, /*cfg=*/0, old_members_, /*preload=*/params_.preload_entries,
                    /*priority=*/id == 1 ? 1u : 0u);
    }

    for (NodeId id = 1; id <= pool_; ++id) {
      const Time offset = (params_.election_timeout / (2 * pool_)) * (id - 1);
      sim_.ScheduleAfter(offset, [this, id]() { TickServer(id); });
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
  }

  ReconfigResult Run() {
    sim_.RunUntil(params_.warmup);
    const uint64_t completed_at_warmup = client_.completed();
    const NodeId old_leader = CurrentLeaderOf(0);
    OPX_CHECK_NE(old_leader, kNoNode) << "no c0 leader after warmup";
    old_leader_ = old_leader;

    // Propose the reconfiguration at the current leader.
    omni::StopSign ss;
    ss.next_config = 1;
    ss.next_nodes = new_members_;
    const bool ok = ActorOf(old_leader).instances.at(0).node->ProposeReconfiguration(ss);
    OPX_CHECK(ok);
    PumpServer(old_leader);
    result_.reconfig_proposed_at = sim_.Now();
    result_.steady_throughput = static_cast<double>(completed_at_warmup) /
                                ToSeconds(params_.warmup);

    sim_.RunUntil(params_.warmup + params_.run_after);

    result_.window_counts = client_.window_counts();
    result_.downtime =
        client_.LongestGap(result_.reconfig_proposed_at, params_.warmup + params_.run_after);
    // Peak egress over metric windows.
    const auto& samples = io_samples_;
    for (size_t w = 1; w < samples.size(); ++w) {
      for (NodeId id = 1; id <= pool_; ++id) {
        const uint64_t delta =
            samples[w][static_cast<size_t>(id)] - samples[w - 1][static_cast<size_t>(id)];
        result_.peak_window_egress_any = std::max(result_.peak_window_egress_any, delta);
        if (id == old_leader_) {
          result_.peak_window_egress_old_leader =
              std::max(result_.peak_window_egress_old_leader, delta);
        }
      }
    }
    return result_;
  }

  Client& client() { return client_; }
  sim::Simulator& simulator() { return sim_; }
  int pool() const { return pool_; }

  // Link control for resilience tests (e.g., cutting a donor mid-migration).
  void SetLink(NodeId a, NodeId b, bool up) { net_.SetLink(a, b, up); }

  // Schedules an arbitrary action at absolute simulated time `at`.
  void At(Time at, sim::EventFn fn) { sim_.ScheduleAt(at, std::move(fn)); }

  // Proposes a further reconfiguration (rolling upgrades, §6.1): ends `cfg`
  // with a stop-sign whose next configuration is cfg+1 on `members`. Returns
  // false if `cfg` has no leader yet.
  bool ProposeNextReconfiguration(ConfigId cfg, std::vector<NodeId> members) {
    const NodeId leader = LeaderOf(cfg);
    if (leader == kNoNode) {
      return false;
    }
    omni::StopSign ss;
    ss.next_config = cfg + 1;
    ss.next_nodes = std::move(members);
    const bool ok =
        ActorOf(leader).instances.at(cfg).node->ProposeReconfiguration(std::move(ss));
    PumpServer(leader);
    return ok;
  }

  // Leader of configuration `cfg` (highest-ballot claimant), or kNoNode.
  NodeId LeaderOf(ConfigId cfg) { return CurrentLeaderOf(cfg); }

  // Introspection (tests/debugging): the instance of `cfg` on `id`, if any.
  const omni::OmniPaxos* instance(NodeId id, ConfigId cfg) {
    auto it = ActorOf(id).instances.find(cfg);
    return it == ActorOf(id).instances.end() ? nullptr : it->second.node.get();
  }

 private:
  // --- Wire ------------------------------------------------------------------

  struct Tagged {
    ConfigId cfg = 0;
    omni::OmniMessage m;
  };
  struct NewConfigNotice {
    ConfigId cfg = 0;  // the configuration to join
    LogIndex old_len = 0;
    std::vector<NodeId> donors;
    std::vector<NodeId> members;
  };
  struct SegmentRequest {
    ConfigId cfg = 0;  // the configuration whose segment is requested
    LogIndex start = 0;
    LogIndex count = 0;
  };
  struct SegmentData {
    ConfigId cfg = 0;
    LogIndex start = 0;
    std::vector<omni::Entry> entries;
  };
  struct MigrationDone {
    ConfigId cfg = 0;
  };

  using Wire = std::variant<Tagged, NewConfigNotice, SegmentRequest, SegmentData, MigrationDone,
                            ProposeBatch, ResponseBatch>;

  static uint64_t BytesOf(const Wire& w) {
    if (const auto* t = std::get_if<Tagged>(&w)) {
      return 4 + omni::WireBytes(t->m);
    }
    if (const auto* d = std::get_if<SegmentData>(&w)) {
      return 24 + omni::EntriesWireBytes(d->entries);
    }
    if (const auto* p = std::get_if<ProposeBatch>(&w)) {
      return WireBytes(*p);
    }
    if (const auto* r = std::get_if<ResponseBatch>(&w)) {
      return WireBytes(*r);
    }
    return 24;
  }

  // --- Per-server actor --------------------------------------------------------

  struct Instance {
    std::unique_ptr<omni::Storage> storage;
    std::unique_ptr<omni::OmniPaxos> node;
    LogIndex polled = 0;
    bool stop_handled = false;
  };

  struct Migration {
    bool active = false;
    bool complete = false;
    ConfigId target = 0;  // the configuration this server is joining
    ConfigId source = 0;  // the configuration whose segment is fetched
    std::vector<NodeId> members;
    LogIndex old_len = 0;
    LogIndex chunk = 0;
    std::vector<NodeId> donors;
    std::vector<int8_t> chunk_state;      // 0=todo 1=requested 2=done
    std::vector<uint32_t> chunk_attempt;  // guards stale timeout events
    std::map<NodeId, std::vector<size_t>> donor_queue;
    size_t done_count = 0;
    std::vector<omni::Entry> fetched;
  };

  struct Actor {
    std::map<ConfigId, Instance> instances;
    std::map<ConfigId, Migration> migrations;  // keyed by target config
  };

  Actor& ActorOf(NodeId id) { return *actors_[static_cast<size_t>(id)]; }
  NodeId ClientId() const { return pool_ + 1; }

  static sim::NetworkParams MakeNetParams(const ReconfigParams& p) {
    sim::NetworkParams np;
    np.default_latency = Micros(100);
    np.egress_bytes_per_sec = p.egress_bytes_per_sec;
    np.obs = p.obs;
    return np;
  }

  static ClientParams MakeClientParams(const ReconfigParams& p, int pool) {
    ClientParams cp;
    cp.num_servers = pool;
    cp.concurrent_proposals = p.concurrent_proposals;
    cp.payload_bytes = p.payload_bytes;
    cp.retry_timeout = std::max<Time>(4 * p.election_timeout, p.client_retry);
    return cp;
  }

  void StartInstance(NodeId id, ConfigId cfg, const std::vector<NodeId>& members,
                     LogIndex preload, uint32_t priority) {
    omni::OmniConfig config;
    config.pid = id;
    config.config_id = cfg;
    config.ble_priority = priority;
    config.obs = params_.obs;
    for (NodeId m : members) {
      if (m != id) {
        config.peers.push_back(m);
      }
    }
    Instance inst;
    inst.storage = std::make_unique<omni::Storage>();
    if (preload > 0) {
      PreloadStorage(inst.storage.get(), preload, params_.payload_bytes);
      inst.polled = preload;
    }
    inst.node = std::make_unique<omni::OmniPaxos>(config, inst.storage.get());
    ActorOf(id).instances.emplace(cfg, std::move(inst));
    known_members_[cfg] = members;
  }

  // --- Timers -----------------------------------------------------------------

  void TickServer(NodeId id) {
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    for (auto& [cfg, inst] : ActorOf(id).instances) {
      inst.node->TickElection();
    }
    PumpServer(id);
    sim_.ScheduleAfter(params_.election_timeout, [this, id]() { TickServer(id); });
    // Piggyback the I/O sampler on server 1's tick-aligned schedule.
    if (id == 1 && sim_.Now() >= next_io_sample_) {
      SampleIo();
    }
  }

  void TickClient() {
    for (Client::Send& send : client_.Tick(sim_.Now())) {
      const uint64_t bytes = WireBytes(send.batch);
      net_.Send(ClientId(), send.to, Wire(std::move(send.batch)), static_cast<uint32_t>(bytes));
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
  }

  void SampleIo() {
    std::vector<uint64_t> snap(static_cast<size_t>(pool_) + 1, 0);
    for (NodeId id = 1; id <= pool_; ++id) {
      snap[static_cast<size_t>(id)] = net_.BytesSent(id);
    }
    io_samples_.push_back(std::move(snap));
    next_io_sample_ = sim_.Now() + params_.metrics_window;
  }

  // --- Message handling -----------------------------------------------------

  void OnServerWire(NodeId id, NodeId from, Wire w) {
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    Actor& actor = ActorOf(id);
    if (auto* tagged = std::get_if<Tagged>(&w)) {
      auto it = actor.instances.find(tagged->cfg);
      if (it != actor.instances.end()) {
        it->second.node->Handle(from, std::move(tagged->m));
      }
    } else if (auto* proposals = std::get_if<ProposeBatch>(&w)) {
      OnProposals(id, std::move(*proposals));
    } else if (auto* notice = std::get_if<NewConfigNotice>(&w)) {
      OnNewConfigNotice(id, *notice);
    } else if (auto* req = std::get_if<SegmentRequest>(&w)) {
      OnSegmentRequest(id, from, *req);
    } else if (auto* data = std::get_if<SegmentData>(&w)) {
      OnSegmentData(id, from, std::move(*data));
    } else if (const auto* done = std::get_if<MigrationDone>(&w)) {
      OnMigrationDone(id, from, done->cfg);
    }
    PumpServer(id);
  }

  void OnReconnect(NodeId id, NodeId peer) {
    if (peer < 1 || peer > pool_) {
      return;
    }
    OPX_TRACE_NOW(params_.obs, sim_.Now());
    for (auto& [cfg, inst] : ActorOf(id).instances) {
      inst.node->Reconnected(peer);
    }
    PumpServer(id);
  }

  void OnProposals(NodeId id, ProposeBatch batch) {
    Actor& actor = ActorOf(id);
    // Serve from the newest started instance.
    Instance* serving = actor.instances.empty() ? nullptr : &actor.instances.rbegin()->second;
    if (serving == nullptr || !serving->node->IsLeader() || serving->node->IsStopped()) {
      ResponseBatch reject;
      reject.leader_hint = serving == nullptr ? kNoNode : serving->node->leader_hint();
      net_.Send(id, ClientId(), Wire(std::move(reject)), 24);
      return;
    }
    for (uint64_t cmd : batch.cmd_ids) {
      serving->node->Append(omni::Entry::Command(cmd, params_.payload_bytes));
    }
  }

  // --- Service layer (§6) -----------------------------------------------------

  void MaybeHandleStop(NodeId id, ConfigId cfg, Instance& inst) {
    if (inst.stop_handled || !inst.node->IsStopped()) {
      return;
    }
    inst.stop_handled = true;
    if (result_.ss_decided_at == 0) {
      result_.ss_decided_at = sim_.Now();
    }
    const std::optional<omni::StopSign> ss = inst.node->DecidedStopSign();
    OPX_CHECK(ss.has_value());
    const ConfigId next_cfg = ss->next_config;
    OPX_TRACE(params_.obs, obs::EventKind::kReconfigStopSign, id, kNoNode, 0,
              inst.node->decided_idx(), 0, next_cfg);
    const std::vector<NodeId>& next_members = ss->next_nodes;
    const std::vector<NodeId>& current_members = MembersOf(cfg);
    const bool continuing =
        std::find(next_members.begin(), next_members.end(), id) != next_members.end();
    if (continuing && ActorOf(id).instances.count(next_cfg) == 0) {
      // §6: a server in both configurations starts the next one directly.
      StartInstance(id, next_cfg, next_members, /*preload=*/0, /*priority=*/0);
    }
    // Notify the fresh servers; they fetch the decided segment via the
    // service layer, outside log replication.
    NewConfigNotice notice;
    notice.cfg = next_cfg;
    notice.old_len = inst.node->decided_idx();
    notice.members = next_members;
    if (params_.leader_only_migration) {
      notice.donors = {CurrentLeaderOf(cfg) != kNoNode ? CurrentLeaderOf(cfg) : old_leader_};
    } else {
      for (NodeId m : current_members) {
        if (std::find(next_members.begin(), next_members.end(), m) != next_members.end()) {
          notice.donors.push_back(m);
        }
      }
      if (notice.donors.empty()) {
        notice.donors = current_members;  // degenerate: no continuing servers
      }
    }
    for (NodeId m : next_members) {
      if (std::find(current_members.begin(), current_members.end(), m) ==
          current_members.end()) {
        net_.Send(id, m, Wire(notice), 64);
      }
    }
  }

  // Membership of `cfg` as known to the harness; recorded whenever any
  // instance of `cfg` starts (and for c0 at construction).
  const std::vector<NodeId>& MembersOf(ConfigId cfg) const {
    auto it = known_members_.find(cfg);
    OPX_CHECK(it != known_members_.end()) << "unknown configuration " << cfg;
    return it->second;
  }

  void OnNewConfigNotice(NodeId id, const NewConfigNotice& notice) {
    Actor& actor = ActorOf(id);
    if (actor.instances.count(notice.cfg) > 0 || actor.migrations.count(notice.cfg) > 0) {
      return;
    }
    Migration& mig = actor.migrations[notice.cfg];
    mig.active = true;
    mig.target = notice.cfg;
    mig.source = notice.cfg - 1;
    mig.members = notice.members;
    mig.old_len = notice.old_len;
    mig.chunk = params_.migration_chunk;
    mig.donors = notice.donors;
    const size_t chunks =
        static_cast<size_t>((notice.old_len + mig.chunk - 1) / mig.chunk);
    mig.chunk_state.assign(chunks, 0);
    mig.chunk_attempt.assign(chunks, 0);
    mig.fetched.resize(notice.old_len);
    if (chunks == 0) {
      FinishMigration(id, mig.target);
      return;
    }
    for (size_t c = 0; c < chunks; ++c) {
      mig.donor_queue[mig.donors[c % mig.donors.size()]].push_back(c);
    }
    for (NodeId donor : mig.donors) {
      RequestNextChunk(id, mig.target, donor);
    }
  }

  void RequestNextChunk(NodeId id, ConfigId target, NodeId donor) {
    auto mig_it = ActorOf(id).migrations.find(target);
    if (mig_it == ActorOf(id).migrations.end() || !mig_it->second.active) {
      return;
    }
    Migration& mig = mig_it->second;
    auto queue_it = mig.donor_queue.find(donor);
    if (queue_it == mig.donor_queue.end()) {
      return;
    }
    auto& queue = queue_it->second;
    while (!queue.empty() && mig.chunk_state[queue.front()] == 2) {
      queue.erase(queue.begin());
    }
    if (queue.empty()) {
      return;
    }
    const size_t chunk_idx = queue.front();
    mig.chunk_state[chunk_idx] = 1;
    const uint32_t attempt = ++mig.chunk_attempt[chunk_idx];
    SegmentRequest req;
    req.cfg = mig.source;
    req.start = static_cast<LogIndex>(chunk_idx) * mig.chunk;
    req.count = std::min<LogIndex>(mig.chunk, mig.old_len - req.start);
    net_.Send(id, donor, Wire(req), 32);
    // On timeout, treat the donor as failed: redistribute its whole queue to
    // the other donors so nothing stays orphaned behind a dead front chunk.
    sim_.ScheduleAfter(params_.chunk_timeout,
                       [this, id, target, donor, chunk_idx, attempt]() {
      auto it = ActorOf(id).migrations.find(target);
      if (it == ActorOf(id).migrations.end()) {
        return;
      }
      Migration& m = it->second;
      if (!m.active || chunk_idx >= m.chunk_state.size() ||
          m.chunk_state[chunk_idx] != 1 || m.chunk_attempt[chunk_idx] != attempt) {
        return;
      }
      std::vector<size_t> stranded = std::exchange(m.donor_queue[donor], {});
      std::set<NodeId> poked;
      size_t rotation = 0;
      for (size_t c : stranded) {
        if (m.chunk_state[c] == 2) {
          continue;
        }
        m.chunk_state[c] = 0;
        NodeId next_donor = donor;
        for (size_t k = 1; k <= m.donors.size() && next_donor == donor; ++k) {
          next_donor = m.donors[(c + rotation + k) % m.donors.size()];
        }
        ++rotation;
        m.donor_queue[next_donor].push_back(c);
        poked.insert(next_donor);
      }
      for (NodeId d : poked) {
        RequestNextChunk(id, target, d);
      }
    });
  }

  void OnSegmentRequest(NodeId id, NodeId from, const SegmentRequest& req) {
    // Serve decided entries of the requested configuration's segment: any
    // server that has them may donate — members of that configuration, or
    // fresh servers that already completed their own migration (§6.1).
    Actor& actor = ActorOf(id);
    std::vector<omni::Entry> entries;
    auto it = actor.instances.find(req.cfg);
    if (it != actor.instances.end() &&
        it->second.storage->decided_idx() >= req.start + req.count &&
        it->second.storage->compacted_idx() <= req.start) {
      for (LogIndex i = req.start; i < req.start + req.count; ++i) {
        entries.push_back(it->second.storage->At(i));
      }
    } else {
      auto mig_it = actor.migrations.find(req.cfg + 1);
      if (mig_it != actor.migrations.end() && mig_it->second.complete &&
          mig_it->second.fetched.size() >= req.start + req.count) {
        entries.assign(
            mig_it->second.fetched.begin() + static_cast<ptrdiff_t>(req.start),
            mig_it->second.fetched.begin() + static_cast<ptrdiff_t>(req.start + req.count));
      } else {
        return;  // cannot serve; requester's timeout reassigns the chunk
      }
    }
    SegmentData data;
    data.cfg = req.cfg;
    data.start = req.start;
    data.entries = std::move(entries);
    const uint64_t bytes = BytesOf(Wire(data));
    net_.Send(id, from, Wire(std::move(data)), static_cast<uint32_t>(bytes));
  }

  void OnSegmentData(NodeId id, NodeId from, SegmentData data) {
    Actor& actor = ActorOf(id);
    auto mig_it = actor.migrations.find(data.cfg + 1);
    if (mig_it == actor.migrations.end() || !mig_it->second.active) {
      return;
    }
    Migration& mig = mig_it->second;
    const size_t chunk_idx = static_cast<size_t>(data.start / mig.chunk);
    if (chunk_idx >= mig.chunk_state.size() || mig.chunk_state[chunk_idx] == 2) {
      return;
    }
    std::copy(data.entries.begin(), data.entries.end(),
              mig.fetched.begin() + static_cast<ptrdiff_t>(data.start));
    mig.chunk_state[chunk_idx] = 2;
    ++mig.done_count;
    OPX_TRACE(params_.obs, obs::EventKind::kMigSegment, id, from, 0, data.start,
              data.entries.size(), mig.target);
#if defined(OPX_OBS_ENABLED)
    if (params_.obs != nullptr) {
      // Rare (one per migration chunk), so an inline name lookup is fine.
      params_.obs->metrics()
          .GetCounter("migration/segment_entries")
          ->Inc(data.entries.size());
    }
#endif
    if (mig.done_count == mig.chunk_state.size()) {
      FinishMigration(id, mig.target);
      return;
    }
    RequestNextChunk(id, mig.target, from);
  }

  void FinishMigration(NodeId id, ConfigId target) {
    Actor& actor = ActorOf(id);
    Migration& mig = actor.migrations.at(target);
    mig.active = false;
    mig.complete = true;
    result_.migration_done_at = sim_.Now();
    OPX_TRACE(params_.obs, obs::EventKind::kMigDone, id, kNoNode, 0,
              mig.fetched.size(), 0, target);
    // §6: the fresh server starts its components only after holding the
    // complete previous segment.
    if (actor.instances.count(target) == 0) {
      StartInstance(id, target, mig.members, /*preload=*/0, /*priority=*/0);
    }
    const std::vector<NodeId>& previous = MembersOf(target - 1);
    for (NodeId m : mig.members) {
      if (m != id &&
          std::find(previous.begin(), previous.end(), m) == previous.end()) {
        net_.Send(id, m, Wire(MigrationDone{target}), 16);
      }
    }
  }

  void OnMigrationDone(NodeId id, NodeId from, ConfigId target) {
    // A fresh server that finished becomes an additional donor (§6.1).
    auto mig_it = ActorOf(id).migrations.find(target);
    if (mig_it == ActorOf(id).migrations.end()) {
      return;
    }
    Migration& mig = mig_it->second;
    if (mig.active &&
        std::find(mig.donors.begin(), mig.donors.end(), from) == mig.donors.end()) {
      mig.donors.push_back(from);
      RequestNextChunk(id, mig.target, from);
    }
  }

  // --- Pumping ----------------------------------------------------------------

  void PumpServer(NodeId id) {
    Actor& actor = ActorOf(id);
    for (auto& [cfg, inst] : actor.instances) {
      for (omni::OmniOut& out : inst.node->TakeOutgoing()) {
        if (out.to < 1 || out.to > pool_) {
          continue;
        }
        const bool control = std::holds_alternative<omni::BleMessage>(out.body);
        Tagged tagged{cfg, std::move(out.body)};
        const uint64_t bytes = BytesOf(Wire(tagged));
        net_.Send(id, out.to, Wire(std::move(tagged)), static_cast<uint32_t>(bytes), control);
      }
      // Report decided commands to the client (leaders only).
      const LogIndex decided = inst.node->decided_idx();
      if (inst.polled < decided) {
        ResponseBatch resp;
        for (; inst.polled < decided; ++inst.polled) {
          const omni::Entry& e = inst.storage->At(inst.polled);
          if (!e.IsStopSign() && e.cmd_id != 0) {
            resp.cmd_ids.push_back(e.cmd_id);
          }
        }
        if (!resp.cmd_ids.empty() && inst.node->IsLeader()) {
          if (cfg > 0 && result_.new_config_first_decide == 0) {
            result_.new_config_first_decide = sim_.Now();
          }
          const uint64_t bytes = WireBytes(resp);
          net_.Send(id, ClientId(), Wire(std::move(resp)), static_cast<uint32_t>(bytes));
        }
      }
      MaybeHandleStop(id, cfg, inst);
    }
  }

  NodeId CurrentLeaderOf(ConfigId cfg) {
    NodeId best = kNoNode;
    omni::Ballot best_ballot;
    for (NodeId id = 1; id <= pool_; ++id) {
      auto it = ActorOf(id).instances.find(cfg);
      if (it != ActorOf(id).instances.end() && it->second.node->IsLeader() &&
          it->second.node->paxos().leader_ballot() > best_ballot) {
        best = id;
        best_ballot = it->second.node->paxos().leader_ballot();
      }
    }
    return best;
  }

  ReconfigParams params_;
  int pool_;
  sim::Simulator sim_;
  sim::Network<Wire> net_;
  Client client_;
  Rng rng_;

  std::vector<NodeId> old_members_;
  std::vector<NodeId> new_members_;
  std::map<ConfigId, std::vector<NodeId>> known_members_;
  NodeId old_leader_ = kNoNode;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<std::vector<uint64_t>> io_samples_;
  Time next_io_sample_ = 0;
  ReconfigResult result_;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_OMNI_RECONFIG_SIM_H_
