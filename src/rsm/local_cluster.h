// LocalCluster — an in-process Omni-Paxos cluster with immediate message
// delivery. This is the batteries-included entry point for library users and
// the examples: no simulator, no networking — call Step() to exchange
// messages, Tick() to advance election heartbeats, and Append() to replicate.
//
// For latency/bandwidth-faithful experiments use rsm::ClusterSim instead.
#ifndef SRC_RSM_LOCAL_CLUSTER_H_
#define SRC_RSM_LOCAL_CLUSTER_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/omnipaxos/omni_paxos.h"
#include "src/util/check.h"

namespace opx::rsm {

class LocalCluster {
 public:
  // Called for every newly decided entry, on every live server, in log order.
  // Real-TCP harness callback (not under the deterministic simulator), set
  // once at startup; the PR 2 std::function ban targets the sim hot paths.
  using ApplyFn = std::function<void(NodeId server, LogIndex idx,  // NOLINT(opx-determinism)
                                     const omni::Entry& entry)>;

  explicit LocalCluster(int num_servers, uint32_t leader_priority_node = 1)
      : n_(num_servers) {
    OPX_CHECK_GT(num_servers, 0);
    storages_.resize(static_cast<size_t>(n_) + 1);
    nodes_.resize(static_cast<size_t>(n_) + 1);
    applied_.resize(static_cast<size_t>(n_) + 1, 0);
    for (NodeId id = 1; id <= n_; ++id) {
      storages_[static_cast<size_t>(id)] = std::make_unique<omni::Storage>();
      omni::OmniConfig cfg;
      cfg.pid = id;
      for (NodeId peer = 1; peer <= n_; ++peer) {
        if (peer != id) {
          cfg.peers.push_back(peer);
        }
      }
      cfg.ble_priority = (static_cast<uint32_t>(id) == leader_priority_node) ? 1u : 0u;
      nodes_[static_cast<size_t>(id)] =
          std::make_unique<omni::OmniPaxos>(cfg, storages_[static_cast<size_t>(id)].get());
    }
  }

  void set_apply(ApplyFn fn) { apply_ = std::move(fn); }

  int size() const { return n_; }
  omni::OmniPaxos& node(NodeId id) { return *nodes_[Checked(id)]; }
  const omni::Storage& storage(NodeId id) const { return *storages_[Checked(id)]; }

  // One election heartbeat period on every live server, then settle.
  void Tick() {
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        node(id).TickElection();
      }
    }
    Step();
  }

  void TickRounds(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      Tick();
    }
  }

  // Runs enough heartbeat rounds for a stable leader; returns its id.
  NodeId ElectLeader(int max_rounds = 10) {
    for (int round = 0; round < max_rounds; ++round) {
      Tick();
      if (NodeId leader = CurrentLeader(); leader != kNoNode) {
        return leader;
      }
    }
    return kNoNode;
  }

  // Proposes a command at `server` (leaders accept directly; followers
  // forward). Returns false if the configuration is stopped.
  bool Append(NodeId server, uint64_t cmd_id, uint32_t payload_bytes = 8) {
    const bool ok = node(server).Append(omni::Entry::Command(cmd_id, payload_bytes));
    Step();
    return ok;
  }

  // Exchanges all outstanding messages until the cluster is quiescent,
  // applying newly decided entries through the apply callback.
  void Step() {
    Collect();
    size_t guard = 0;
    while (!queue_.empty()) {
      OPX_CHECK_LT(++guard, 10'000'000u);
      Wire w = std::move(queue_.front());
      queue_.pop_front();
      if (IsCrashed(w.to) || IsCrashed(w.from) || !LinkUp(w.from, w.to)) {
        continue;
      }
      node(w.to).Handle(w.from, std::move(w.body));
      Collect();
    }
    Apply();
  }

  // --- Fault injection -------------------------------------------------------

  void SetLink(NodeId a, NodeId b, bool up) {
    const std::pair<NodeId, NodeId> key = std::minmax(a, b);
    if (up) {
      const bool was_down = down_links_.erase(key) > 0;
      if (was_down && !IsCrashed(a) && !IsCrashed(b)) {
        node(a).Reconnected(b);
        node(b).Reconnected(a);
        Step();
      }
    } else {
      down_links_.insert(key);
    }
  }

  bool LinkUp(NodeId a, NodeId b) const { return down_links_.count(std::minmax(a, b)) == 0; }

  void Crash(NodeId id) {
    crashed_.insert(id);
    nodes_[Checked(id)] = nullptr;
    std::deque<Wire> kept;
    for (Wire& w : queue_) {
      if (w.from != id && w.to != id) {
        kept.push_back(std::move(w));
      }
    }
    queue_ = std::move(kept);
  }

  // Restarts a crashed server from its persistent storage (§4.1.3).
  void Restart(NodeId id) {
    OPX_CHECK(IsCrashed(id));
    crashed_.erase(id);
    omni::OmniConfig cfg;
    cfg.pid = id;
    for (NodeId peer = 1; peer <= n_; ++peer) {
      if (peer != id) {
        cfg.peers.push_back(peer);
      }
    }
    nodes_[Checked(id)] = std::make_unique<omni::OmniPaxos>(
        cfg, storages_[Checked(id)].get(), /*recovered=*/true);
    // Replay already-decided entries into the apply callback after recovery.
    applied_[Checked(id)] = 0;
    Step();
  }

  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  // Leader claimant with the highest ballot.
  NodeId CurrentLeader() {
    NodeId best = kNoNode;
    omni::Ballot best_ballot;
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id) && node(id).IsLeader() &&
          node(id).paxos().leader_ballot() > best_ballot) {
        best = id;
        best_ballot = node(id).paxos().leader_ballot();
      }
    }
    return best;
  }

 private:
  struct Wire {
    NodeId from;
    NodeId to;
    omni::OmniMessage body;
  };

  size_t Checked(NodeId id) const {
    OPX_CHECK(id >= 1 && id <= n_);
    return static_cast<size_t>(id);
  }

  void Collect() {
    for (NodeId id = 1; id <= n_; ++id) {
      if (IsCrashed(id)) {
        continue;
      }
      for (omni::OmniOut& out : node(id).TakeOutgoing()) {
        queue_.push_back(Wire{id, out.to, std::move(out.body)});
      }
    }
  }

  void Apply() {
    if (!apply_) {
      return;
    }
    for (NodeId id = 1; id <= n_; ++id) {
      if (IsCrashed(id)) {
        continue;
      }
      LogIndex& applied = applied_[Checked(id)];
      const LogIndex decided = node(id).decided_idx();
      applied = std::max(applied, storage(id).compacted_idx());
      for (; applied < decided; ++applied) {
        apply_(id, applied, storage(id).At(applied));
      }
    }
  }

  int n_;
  std::vector<std::unique_ptr<omni::Storage>> storages_;
  std::vector<std::unique_ptr<omni::OmniPaxos>> nodes_;
  std::vector<LogIndex> applied_;
  std::deque<Wire> queue_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> crashed_;
  ApplyFn apply_;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_LOCAL_CLUSTER_H_
