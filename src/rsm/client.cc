#include "src/rsm/client.h"

#include <algorithm>

#include "src/util/check.h"

namespace opx::rsm {

Client::Client(ClientParams params) : params_(params) {
  OPX_CHECK_GT(params_.num_servers, 0);
  OPX_CHECK_GT(params_.concurrent_proposals, 0u);
  target_ = 1;
}

std::vector<Client::Send> Client::Tick(Time now) {
  ProposeBatch batch;
  batch.payload_bytes = params_.payload_bytes;

  // Rotate the contact server when responses dried up, and re-propose
  // everything outstanding (commands may have been lost with a deposed
  // leader; the log tolerates duplicates, the client counts unique ids).
  if (!outstanding_.empty() && now - std::max(last_write_response_, last_completion_) >
                                   params_.retry_timeout) {
    // Writes have stalled. Rotate only if the target is *fully* silent —
    // served lease reads prove it is alive (and a lease-holding leader), in
    // which case the in-flight batch was simply lost and re-proposing to the
    // same target is the productive move.
    if (now - std::max(last_response_, last_completion_) > params_.retry_timeout) {
      suspect_ = target_;
      target_ = target_ % params_.num_servers + 1;
    }
    last_response_ = now;  // back off one retry period before rotating again
    last_write_response_ = now;
    need_reproposal_ = true;
    need_read_resend_ = true;
  }
  if (need_reproposal_) {
    need_reproposal_ = false;
    for (auto& [cmd, first_sent] : outstanding_) {
      batch.cmd_ids.push_back(cmd);
    }
  }

  // Top up to CP outstanding proposals.
  while (outstanding_.size() < params_.concurrent_proposals) {
    const uint64_t cmd = next_cmd_++;
    outstanding_.emplace(cmd, now);
    batch.cmd_ids.push_back(cmd);
  }

  // Lease reads ride along to the same target. Re-sends reuse the watermark
  // captured at issue time (the constraint the read must satisfy); top-ups
  // carry the current one.
  std::vector<ReadRequest> reads;
  if (params_.read_fraction > 0.0) {
    if (need_read_resend_) {
      need_read_resend_ = false;
      for (const auto& [id, pending] : outstanding_reads_) {
        reads.push_back(ReadRequest{id, pending.watermark});
      }
    }
    const size_t target_reads = static_cast<size_t>(
        static_cast<double>(params_.concurrent_proposals) * params_.read_fraction + 0.999);
    while (outstanding_reads_.size() < target_reads) {
      const uint64_t id = next_read_++;
      outstanding_reads_.emplace(id, PendingRead{read_watermark_, now});
      reads.push_back(ReadRequest{id, read_watermark_});
    }
  }

  if (batch.cmd_ids.empty() && reads.empty()) {
    return {};
  }
  return {Send{target_, std::move(batch), std::move(reads)}};
}

void Client::OnResponse(Time now, NodeId from, const ResponseBatch& batch) {
  if (batch.cmd_ids.empty() && batch.leader_hint == kNoNode) {
    // Uninformative rejection (server knows no leader). Do not refresh the
    // retry timer — otherwise a stream of such rejections would suppress the
    // rotation that eventually finds a serving leader.
    return;
  }
  if (batch.cmd_ids.empty() && batch.leader_hint == suspect_) {
    // Redirect back to the server we just timed out on. Following it would
    // trap the client between two stale minority nodes that hint each other.
    // Keep re-proposing to the current target instead (it may be mid-election
    // and about to serve) without refreshing the retry timer, so rotation
    // still walks past both stale nodes if nothing completes.
    need_reproposal_ = true;
    return;
  }
  last_response_ = now;
  last_write_response_ = now;
  if (batch.leader_hint != kNoNode && batch.leader_hint != target_) {
    // Redirected: move to the hinted leader and re-propose what is in flight.
    target_ = batch.leader_hint;
    need_reproposal_ = true;
  } else if (batch.leader_hint == kNoNode && !batch.cmd_ids.empty()) {
    // Responses prove `from` decides entries; stick with it. Switching
    // targets must re-propose: everything outstanding was sent to the old
    // target (a fresh leader replaying in-flight duplicates would otherwise
    // strand the client idle until the retry timer marks it suspect).
    if (target_ != from) {
      target_ = from;
      need_reproposal_ = true;
    }
  }
  const uint64_t before = completed_;
  for (uint64_t cmd : batch.cmd_ids) {
    RecordCompletion(now, cmd);
  }
  if (completed_ > before) {
    // At least one of our writes completed in this batch; the responder's
    // decided index covers it, so future reads must observe at least that.
    read_watermark_ = std::max(read_watermark_, batch.decided_idx);
  }
}

void Client::OnReadReply(Time now, NodeId from, const ReadReply& reply) {
  auto it = outstanding_reads_.find(reply.read_id);
  if (it == outstanding_reads_.end()) {
    return;  // duplicate reply to a re-sent read; count only the first
  }
  if (!reply.served) {
    // Not a leader / lease lapsed / behind our watermark. Follow a fresh
    // hint (same suspect discipline as writes) and queue a re-send.
    if (reply.leader_hint != kNoNode && reply.leader_hint != suspect_ &&
        reply.leader_hint != target_) {
      target_ = reply.leader_hint;
      need_reproposal_ = true;
    }
    need_read_resend_ = true;
    return;
  }
  last_response_ = now;
  if (reply.decided_idx < it->second.watermark) {
    ++ryw_violations_;  // served below the read's required watermark
  }
  read_latency_sum_seconds_ += ToSeconds(now - it->second.first_sent);
  read_watermark_ = std::max(read_watermark_, reply.decided_idx);
  outstanding_reads_.erase(it);
  ++reads_completed_;
}

void Client::RecordCompletion(Time now, uint64_t cmd_id) {
  auto it = outstanding_.find(cmd_id);
  if (it == outstanding_.end()) {
    return;  // duplicate decision (re-proposal); count only the first
  }
  latency_sum_seconds_ += ToSeconds(now - it->second);
  outstanding_.erase(it);
  suspect_ = kNoNode;  // progress resumed; hints are trustworthy again
  ++completed_;
  if (completed_ > 1 && now - last_completion_ >= kGapThreshold) {
    gaps_.emplace_back(last_completion_, now);
  }
  last_completion_ = now;
  const size_t window = static_cast<size_t>(now / window_width_);
  if (window_counts_.size() <= window) {
    window_counts_.resize(window + 1, 0);
  }
  ++window_counts_[window];
}

Time Client::LongestGap(Time from, Time to) const {
  Time longest = 0;
  for (const auto& [start, end] : gaps_) {
    const Time lo = std::max(start, from);
    const Time hi = std::min(end, to);
    if (hi > lo) {
      longest = std::max(longest, hi - lo);
    }
  }
  // Open gap: no completion between the last one and `to`.
  if (last_completion_ < to) {
    const Time lo = std::max(last_completion_, from);
    if (to > lo) {
      longest = std::max(longest, to - lo);
    }
  }
  return longest;
}

}  // namespace opx::rsm
