// Closed-loop benchmark client.
//
// Reproduces the paper's workload model (§7, Hardware): a single client keeps
// `concurrent_proposals` (CP) commands outstanding against the RSM, proposing
// 8-byte no-op commands and recording when each is first decided. All
// experiment metrics — windowed throughput, down-time (longest period without
// decided replies), completion latency — derive from this component.
//
// Pull-based like the protocols: Tick() returns the batches to transmit;
// OnResponse() consumes decided ids and leader redirects.
#ifndef SRC_RSM_CLIENT_H_
#define SRC_RSM_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/rsm/client_messages.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::rsm {

struct ClientParams {
  int num_servers = 3;
  size_t concurrent_proposals = 500;
  uint32_t payload_bytes = 8;
  // Re-propose outstanding commands (and rotate the target server) when no
  // response has arrived for this long.
  Time retry_timeout = Millis(500);
  // Fraction of work issued as leader-lease local reads (DESIGN.md §15).
  // 0 disables the read path entirely (no wire-format or schedule change);
  // otherwise ceil(CP * read_fraction) reads are kept outstanding alongside
  // the write pipeline.
  double read_fraction = 0.0;
};

class Client {
 public:
  explicit Client(ClientParams params);

  // Advances the client; returns the proposal batch (if any) to send and the
  // server to send it to.
  struct Send {
    NodeId to = kNoNode;
    ProposeBatch batch;           // write proposals; may be empty
    std::vector<ReadRequest> reads;  // lease reads; harnesses without a read
                                     // path simply never see these (reads are
                                     // only issued when read_fraction > 0)
  };
  std::vector<Send> Tick(Time now);

  void OnResponse(Time now, NodeId from, const ResponseBatch& batch);
  void OnReadReply(Time now, NodeId from, const ReadReply& reply);

  // --- Metrics ------------------------------------------------------------
  uint64_t completed() const { return completed_; }
  Time last_completion_time() const { return last_completion_; }

  // Completion counts bucketed into fixed windows from t=0 (for throughput-
  // over-time plots, Fig. 9). Window w covers [w*width, (w+1)*width).
  const std::vector<uint64_t>& window_counts() const { return window_counts_; }
  void set_window_width(Time width) { window_width_ = width; }
  Time window_width() const { return window_width_; }

  // Longest interval inside [from, to] with no completions ("down-time",
  // Fig. 8a/8b). Includes the open gap at `to` if completions stopped.
  Time LongestGap(Time from, Time to) const;

  double MeanLatencySeconds() const {
    return completed_ == 0 ? 0.0 : latency_sum_seconds_ / static_cast<double>(completed_);
  }

  // --- Read metrics (lease reads, DESIGN.md §15) ---------------------------
  uint64_t reads_completed() const { return reads_completed_; }
  // Served reads whose serialization point fell below the read's watermark —
  // a read-your-writes / monotonic-reads violation. Must stay 0.
  uint64_t ryw_violations() const { return ryw_violations_; }
  double MeanReadLatencySeconds() const {
    return reads_completed_ == 0
               ? 0.0
               : read_latency_sum_seconds_ / static_cast<double>(reads_completed_);
  }

 private:
  void RecordCompletion(Time now, uint64_t cmd_id);

  ClientParams params_;
  uint64_t next_cmd_ = 1;
  NodeId target_;
  // Server the client last rotated away from after a silent retry period.
  // Leader hints pointing back at it are ignored until a command completes:
  // under a minority partition the stale nodes hint each other, and blindly
  // following those hints ping-pongs the client inside the partition forever
  // while a healthy majority serves elsewhere.
  NodeId suspect_ = kNoNode;
  bool need_reproposal_ = false;
  Time last_response_ = 0;
  // Last response that carried information about *writes* (completion,
  // redirect, or rejection). Served lease reads refresh last_response_ but
  // not this: a target can serve reads indefinitely while the in-flight
  // write batch is lost (proposed to a not-yet-leader), and only a
  // write-specific timer notices that and triggers re-proposal.
  Time last_write_response_ = 0;
  // Ordered by cmd id: Tick() iterates this to build re-proposal batches, so
  // the container's iteration order reaches the wire — a hash-ordered map
  // would tie message contents to the standard library's bucket layout
  // (flagged by opx_analyze's determinism check).
  std::map<uint64_t, Time> outstanding_;  // cmd -> first propose time

  // --- Lease reads ---------------------------------------------------------
  struct PendingRead {
    uint64_t watermark = 0;
    Time first_sent = 0;
  };
  uint64_t next_read_ = 1;
  bool need_read_resend_ = false;
  std::map<uint64_t, PendingRead> outstanding_reads_;  // read id -> state
  // Highest decided index at which one of this client's operations (write or
  // read) completed; new reads carry it so a server behind it refuses to
  // serve. This is what turns "leader with a lease" into read-your-writes.
  uint64_t read_watermark_ = 0;
  uint64_t reads_completed_ = 0;
  uint64_t ryw_violations_ = 0;
  double read_latency_sum_seconds_ = 0.0;

  uint64_t completed_ = 0;
  Time last_completion_ = 0;
  double latency_sum_seconds_ = 0.0;
  Time window_width_ = Seconds(5);
  std::vector<uint64_t> window_counts_;
  // Gaps between consecutive completions longer than this are recorded for
  // down-time queries.
  static constexpr Time kGapThreshold = Millis(10);
  std::vector<std::pair<Time, Time>> gaps_;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_CLIENT_H_
