// Uniform adapters wrapping each protocol behind one node API so the
// simulation harness (ClusterSim) and the benchmarks drive all protocols
// identically:
//
//   Tick()                 — one protocol timer period (see TickPeriod below)
//   Handle(from, Message)  — deliver a protocol message
//   Reconnected(peer)      — link-session restored (no-op where unused)
//   TakeOutgoing()         — drain {to, Message} sends
//   Propose(cmd, bytes)    — client command; false if this server can't accept
//   PollDecided(out)       — newly decided client command ids, in log order
//   IsLeader()/LeaderHint()/Epoch()
//
// TickPeriod maps the experiment's election-timeout parameter T onto each
// protocol's internal tick: Omni-Paxos heartbeat rounds run once per T; Raft
// ticks are heartbeats with election_ticks=5 (timeout randomized [T, 2T));
// Multi-Paxos and VR ping every T/3 with a missed budget of 3 (randomized to
// 6). All protocols thus suspect a dead leader after ~T..2T, matching §7.2.
#ifndef SRC_RSM_ADAPTERS_H_
#define SRC_RSM_ADAPTERS_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/multipaxos/multipaxos.h"
#include "src/omnipaxos/omni_paxos.h"
#include "src/raft/raft.h"
#include "src/rsm/node_options.h"
#include "src/util/check.h"
#include "src/util/time.h"
#include "src/util/types.h"
#include "src/vr/vr_replica.h"

namespace opx::rsm {

// ---------------------------------------------------------------------------
// Omni-Paxos.
// ---------------------------------------------------------------------------

// In-memory stand-in for a WAL recovery: copies another storage's durable
// fields through the protected RestoreForRecovery hook, exactly as
// DurableStorage::Recover replays a journal into a fresh Storage.
struct RecoveredStorage : omni::Storage {
  void Restore(const omni::Storage& durable) {
    RestoreForRecovery(durable.promised_round(), durable.accepted_round(),
                       durable.compacted_idx(), durable.Suffix(durable.compacted_idx()),
                       durable.decided_idx());
  }
};

class OmniNode {
 public:
  using Message = omni::OmniMessage;

  OmniNode(NodeId id, std::vector<NodeId> peers, const NodeOptions& opts) {
    cfg_.pid = id;
    cfg_.peers = std::move(peers);
    cfg_.ble_priority = opts.ble_priority;
    cfg_.batch_limit = opts.batch_limit;
    cfg_.trim_watermark = opts.trim_watermark;
    cfg_.obs = opts.obs;
    storage_ = std::make_unique<omni::Storage>();
    node_ = std::make_unique<omni::OmniPaxos>(cfg_, storage_.get());
  }

  // Fail-recovery (§4.1.3): the in-memory Storage stands in for the durable
  // log — it survives the protocol instance, and the rebuilt node resumes
  // from its persisted promise/decided state with recovered=true (renounced
  // candidacy + <PrepareReq> to every peer).
  static constexpr bool kSupportsRestart = true;
  void Restart(const NodeOptions&) {
    // Rebuild the storage through the same RestoreForRecovery entry point
    // DurableStorage::Recover uses, rather than silently reusing the live
    // object: every simulated crash then exercises the real recovery-path
    // invariants — in particular recovering a *trimmed* log, where decided
    // exceeds the physical suffix and must be bounded by the logical length.
    auto fresh = std::make_unique<RecoveredStorage>();
    fresh->Restore(*storage_);
    node_.reset();  // the old instance must not outlive its storage
    storage_ = std::move(fresh);
    node_ = std::make_unique<omni::OmniPaxos>(cfg_, storage_.get(), /*recovered=*/true);
    polled_ = std::max(polled_, storage_->compacted_idx());
  }

  // Log compaction: only the decided prefix may go (snapshot catch-up covers
  // lagging peers). The chaos layer injects trim faults only where this is on.
  static constexpr bool kSupportsTrim = true;
  void Trim(LogIndex idx) {
    node_->Trim(std::min(idx, node_->decided_idx()));
    polled_ = std::max(polled_, storage_->compacted_idx());
  }

  // Leader-lease local reads (DESIGN.md §15): true while linearizable reads
  // may be served from the local decided prefix.
  bool CanServeLocalReads() const { return node_->CanServeLocalReads(); }
  LogIndex ReadDecided() const { return node_->decided_idx(); }

  void Tick() { node_->TickElection(); }
  void Handle(NodeId from, Message m) { node_->Handle(from, std::move(m)); }
  void Reconnected(NodeId peer) { node_->Reconnected(peer); }

  std::vector<std::pair<NodeId, Message>> TakeOutgoing() {
    std::vector<std::pair<NodeId, Message>> out;
    for (omni::OmniOut& o : node_->TakeOutgoing()) {
      out.emplace_back(o.to, std::move(o.body));
    }
    return out;
  }

  bool Propose(uint64_t cmd, uint32_t bytes) {
    if (!node_->IsLeader()) {
      return false;
    }
    return node_->Append(omni::Entry::Command(cmd, bytes));
  }

  void PollDecided(std::vector<uint64_t>* out) {
    const LogIndex decided = node_->decided_idx();
    polled_ = std::max(polled_, storage_->compacted_idx());
    for (; polled_ < decided; ++polled_) {
      const omni::Entry& e = storage_->At(polled_);
      if (!e.IsStopSign() && e.cmd_id != 0) {
        out->push_back(e.cmd_id);
      }
    }
  }

  bool IsLeader() const { return node_->IsLeader(); }
  NodeId LeaderHint() const { return node_->leader_hint(); }
  uint64_t Epoch() const { return node_->ble().leader().n; }
  static bool IsElectionMessage(const Message& m) {
    return std::holds_alternative<omni::BleMessage>(m);
  }
  static Time TickPeriod(Time election_timeout) { return election_timeout; }

  audit::AuditView Audit() const { return node_->Audit(); }

  omni::OmniPaxos& impl() { return *node_; }

 private:
  omni::OmniConfig cfg_;
  std::unique_ptr<omni::Storage> storage_;
  std::unique_ptr<omni::OmniPaxos> node_;
  LogIndex polled_ = 0;
};

// ---------------------------------------------------------------------------
// Raft (plain, and PV+CQ via options).
// ---------------------------------------------------------------------------

template <bool kPreVote, bool kCheckQuorum>
class RaftNodeT {
 public:
  using Message = raft::RaftMessage;

  RaftNodeT(NodeId id, std::vector<NodeId> peers, const NodeOptions& opts) {
    raft::RaftConfig cfg;
    cfg.pid = id;
    cfg.voters = std::move(peers);
    cfg.voters.push_back(id);
    cfg.pre_vote = kPreVote;
    cfg.check_quorum = kCheckQuorum;
    cfg.election_ticks = 5;
    cfg.seed = opts.seed;
    cfg.fast_first_election = opts.ble_priority > 0;
    cfg.batch_limit = opts.batch_limit;
    cfg.obs = opts.obs;
    node_ = std::make_unique<raft::Raft>(cfg);
  }

  void Tick() { node_->Tick(); }
  void Handle(NodeId from, Message m) { node_->Handle(from, std::move(m)); }
  void Reconnected(NodeId) {}  // Raft recovers via AppendEntries consistency checks

  // This Raft keeps term/vote/log in memory only; a restart would forget its
  // vote and could double-vote, so the chaos layer never crash-faults it.
  static constexpr bool kSupportsRestart = false;
  void Restart(const NodeOptions&) { OPX_CHECK(false) << "raft adapter has no restart path"; }

  // No snapshot/InstallSnapshot path: followers backfill from the full log,
  // so compaction would strand them. The chaos layer gates trim faults on this.
  static constexpr bool kSupportsTrim = false;
  void Trim(LogIndex) { OPX_CHECK(false) << "raft adapter has no compaction path"; }
  bool CanServeLocalReads() const { return false; }
  LogIndex ReadDecided() const { return node_->commit_idx(); }

  std::vector<std::pair<NodeId, Message>> TakeOutgoing() {
    std::vector<std::pair<NodeId, Message>> out;
    for (raft::RaftOut& o : node_->TakeOutgoing()) {
      out.emplace_back(o.to, std::move(o.body));
    }
    return out;
  }

  bool Propose(uint64_t cmd, uint32_t bytes) {
    return node_->Append(raft::Entry::Command(cmd, bytes));
  }

  void PollDecided(std::vector<uint64_t>* out) {
    const LogIndex commit = node_->commit_idx();
    for (; polled_ < commit; ++polled_) {
      const raft::LogEntry& e = node_->log()[polled_];
      if (!e.data.IsStopSign() && e.data.cmd_id != 0) {
        out->push_back(e.data.cmd_id);
      }
    }
  }

  bool IsLeader() const { return node_->IsLeader(); }
  NodeId LeaderHint() const { return node_->leader_hint(); }
  uint64_t Epoch() const { return node_->term(); }
  static bool IsElectionMessage(const Message& m) {
    return std::holds_alternative<raft::RequestVote>(m) ||
           std::holds_alternative<raft::RequestVoteReply>(m);
  }
  // Raft ticks 5x per election timeout (heartbeat interval).
  static Time TickPeriod(Time election_timeout) { return election_timeout / 5; }

  audit::AuditView Audit() const { return node_->Audit(); }

  raft::Raft& impl() { return *node_; }

 private:
  std::unique_ptr<raft::Raft> node_;
  LogIndex polled_ = 0;
};

using RaftNode = RaftNodeT<false, false>;
using RaftPvCqNode = RaftNodeT<true, true>;

// ---------------------------------------------------------------------------
// Multi-Paxos.
// ---------------------------------------------------------------------------

class MultiPaxosNode {
 public:
  using Message = mpx::MpxMessage;

  MultiPaxosNode(NodeId id, std::vector<NodeId> peers, const NodeOptions& opts) {
    mpx::MpxConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.ping_timeout_ticks = 3;
    cfg.seed = opts.seed;
    cfg.fast_first_takeover = opts.ble_priority > 0;
    cfg.obs = opts.obs;
    node_ = std::make_unique<mpx::MultiPaxos>(cfg);
  }

  void Tick() { node_->Tick(); }
  void Handle(NodeId from, Message m) { node_->Handle(from, std::move(m)); }
  void Reconnected(NodeId peer) { node_->Reconnected(peer); }

  // Promised/accepted rounds live in the MultiPaxos object, not a storage
  // backend, so there is no state to restart from.
  static constexpr bool kSupportsRestart = false;
  void Restart(const NodeOptions&) { OPX_CHECK(false) << "multipaxos adapter has no restart path"; }
  static constexpr bool kSupportsTrim = false;
  void Trim(LogIndex) { OPX_CHECK(false) << "multipaxos adapter has no compaction path"; }
  bool CanServeLocalReads() const { return false; }
  LogIndex ReadDecided() const { return node_->decided_idx(); }

  std::vector<std::pair<NodeId, Message>> TakeOutgoing() {
    std::vector<std::pair<NodeId, Message>> out;
    for (mpx::MpxOut& o : node_->TakeOutgoing()) {
      out.emplace_back(o.to, std::move(o.body));
    }
    return out;
  }

  bool Propose(uint64_t cmd, uint32_t bytes) {
    return node_->Append(mpx::Entry::Command(cmd, bytes));
  }

  void PollDecided(std::vector<uint64_t>* out) {
    const uint64_t decided = node_->decided_idx();
    for (; polled_ < decided; ++polled_) {
      const mpx::Entry& e = node_->log()[polled_];
      if (e.cmd_id != 0) {
        out->push_back(e.cmd_id);
      }
    }
  }

  bool IsLeader() const { return node_->IsLeader(); }
  NodeId LeaderHint() const { return node_->leader_hint(); }
  uint64_t Epoch() const { return node_->promised().n; }
  static bool IsElectionMessage(const Message& m) {
    return std::holds_alternative<mpx::P1a>(m) || std::holds_alternative<mpx::P1b>(m) ||
           std::holds_alternative<mpx::Ping>(m) || std::holds_alternative<mpx::Pong>(m);
  }
  static Time TickPeriod(Time election_timeout) { return election_timeout / 3; }

  audit::AuditView Audit() const { return node_->Audit(); }

  mpx::MultiPaxos& impl() { return *node_; }

 private:
  std::unique_ptr<mpx::MultiPaxos> node_;
  uint64_t polled_ = 0;
};

// ---------------------------------------------------------------------------
// VR (leader election) over Sequence Paxos.
// ---------------------------------------------------------------------------

class VrNode {
 public:
  using Message = vr::VrWire;

  VrNode(NodeId id, std::vector<NodeId> peers, const NodeOptions& opts) {
    vr::VrReplicaConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.timeout_ticks = 3;
    cfg.seed = opts.seed;
    cfg.obs = opts.obs;
    storage_ = std::make_unique<omni::Storage>();
    node_ = std::make_unique<vr::VrReplica>(cfg, storage_.get());
  }

  void Tick() { node_->Tick(); }
  void Handle(NodeId from, Message m) { node_->Handle(from, std::move(m)); }
  void Reconnected(NodeId peer) { node_->Reconnected(peer); }

  // VrReplica persists its log in omni::Storage but keeps view/election state
  // in memory with no recovered-rejoin protocol, so crash faults are omitted.
  static constexpr bool kSupportsRestart = false;
  void Restart(const NodeOptions&) { OPX_CHECK(false) << "vr adapter has no restart path"; }
  static constexpr bool kSupportsTrim = false;
  void Trim(LogIndex) { OPX_CHECK(false) << "vr adapter has no compaction path"; }
  bool CanServeLocalReads() const { return false; }
  LogIndex ReadDecided() const { return node_->decided_idx(); }

  std::vector<std::pair<NodeId, Message>> TakeOutgoing() {
    std::vector<std::pair<NodeId, Message>> out;
    for (vr::VrReplicaOut& o : node_->TakeOutgoing()) {
      out.emplace_back(o.to, std::move(o.body));
    }
    return out;
  }

  bool Propose(uint64_t cmd, uint32_t bytes) {
    if (!node_->IsLeader()) {
      return false;
    }
    return node_->Append(omni::Entry::Command(cmd, bytes));
  }

  void PollDecided(std::vector<uint64_t>* out) {
    const LogIndex decided = node_->decided_idx();
    for (; polled_ < decided; ++polled_) {
      const omni::Entry& e = storage_->At(polled_);
      if (!e.IsStopSign() && e.cmd_id != 0) {
        out->push_back(e.cmd_id);
      }
    }
  }

  bool IsLeader() const { return node_->IsLeader(); }
  NodeId LeaderHint() const { return node_->leader_hint(); }
  uint64_t Epoch() const { return node_->election().view(); }
  static bool IsElectionMessage(const Message& m) {
    return std::holds_alternative<vr::VrMessage>(m);
  }
  static Time TickPeriod(Time election_timeout) { return election_timeout / 3; }

  audit::AuditView Audit() const { return node_->Audit(); }

  vr::VrReplica& impl() { return *node_; }

 private:
  std::unique_ptr<omni::Storage> storage_;
  std::unique_ptr<vr::VrReplica> node_;
  LogIndex polled_ = 0;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_ADAPTERS_H_
