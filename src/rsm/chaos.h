// Chaos harness — runs a sim::ChaosPlan against a protocol cluster under the
// cross-replica safety auditor plus liveness oracles, shrinks violating
// schedules to minimal repros, and (de)serializes replayable artifacts.
//
// Oracles, checked on every run:
//   safety             — any SafetyAuditor violation (Appendix A invariants),
//                        collected instead of aborting so a violating seed
//                        becomes a shrinkable artifact;
//   leader-convergence — some server claims leadership within a bounded
//                        window after the last fault clears (plan horizon);
//   client-progress    — the closed-loop client completes new commands within
//                        that window (the paper's §7.2 liveness claim).
//
// Determinism contract: a (plan, config, protocol) triple fully determines
// the run; ClusterSim::EventHash() is the replay fingerprint artifacts carry.
#ifndef SRC_RSM_CHAOS_H_
#define SRC_RSM_CHAOS_H_

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/rsm/adapters.h"
#include "src/rsm/cluster_sim.h"
#include "src/sim/chaos_plan.h"
#include "src/util/check.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::rsm {

enum class ChaosOracle {
  kNone,
  kSafety,
  kLeaderConvergence,
  kClientProgress,
};

inline const char* ChaosOracleName(ChaosOracle o) {
  switch (o) {
    case ChaosOracle::kNone:
      return "none";
    case ChaosOracle::kSafety:
      return "safety";
    case ChaosOracle::kLeaderConvergence:
      return "leader-convergence";
    case ChaosOracle::kClientProgress:
      return "client-progress";
  }
  return "?";
}

inline std::optional<ChaosOracle> ParseChaosOracle(const std::string& name) {
  for (ChaosOracle o : {ChaosOracle::kNone, ChaosOracle::kSafety,
                        ChaosOracle::kLeaderConvergence, ChaosOracle::kClientProgress}) {
    if (name == ChaosOracleName(o)) {
      return o;
    }
  }
  return std::nullopt;
}

struct ChaosConfig {
  sim::ChaosPlan plan;
  Time election_timeout = Millis(50);
  size_t concurrent_proposals = 100;
  double proposal_rate = 20'000.0;
  // Oracle bound: how long after the plan horizon leader election and client
  // progress must have happened. 0 = auto: max(5 s, 60 * election timeout) —
  // generous against the paper's ~4-timeout recovery so a violation means a
  // real liveness failure, not a tight-constant flake.
  Time liveness_window = 0;
  bool audit = true;
  // Log-pipeline knobs (DESIGN.md §15), forwarded into ClusterParams. Both
  // default off and are serialized into artifacts only when set, so corpus
  // entries predating the feature replay with identical fingerprints.
  uint64_t trim_watermark = 0;
  double read_fraction = 0.0;
  // Optional trace/metrics sink (DESIGN.md §12). Attaching a sink never
  // perturbs the schedule, so the fingerprint contract holds either way.
  // Not serialized into artifacts.
  obs::ObsSink* obs = nullptr;

  Time EffectiveWindow() const {
    return liveness_window != 0 ? liveness_window
                                : std::max<Time>(Seconds(5), 60 * election_timeout);
  }
};

struct ChaosOutcome {
  ChaosOracle violated = ChaosOracle::kNone;
  std::string detail;
  uint64_t fingerprint = 0;  // ClusterSim::EventHash() at run end
  uint64_t completed = 0;    // client completions over the whole run
  NodeId final_leader = kNoNode;

  bool ok() const { return violated == ChaosOracle::kNone; }
};

// ---------------------------------------------------------------------------
// Plan execution.
// ---------------------------------------------------------------------------

// Expands the active-fault set at each fault boundary into concrete network
// and crash operations. Recomputing the whole desired state from the active
// set (instead of applying per-fault deltas) makes overlapping faults
// well-defined, which in turn makes any fault subset a valid plan — the
// shrinker's soundness condition.
template <typename Node>
class ChaosScheduleApplier {
 public:
  ChaosScheduleApplier(ClusterSim<Node>* sim, const sim::ChaosPlan* plan)
      : sim_(sim), plan_(plan), n_(plan->num_servers) {
    const size_t slots = static_cast<size_t>(n_ + 1) * static_cast<size_t>(n_ + 1);
    cur_cut_.assign(slots, 0);
    want_cut_.assign(slots, 0);
    cur_latency_.assign(slots, sim->params().net.default_latency);
    want_latency_.assign(slots, 0);
    trim_fired_.assign(plan->faults.size(), 0);
    for (const sim::ChaosFault& f : plan->faults) {
      boundaries_.push_back(f.at);
      boundaries_.push_back(f.end());
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                      boundaries_.end());
  }

  // Advances the simulation to `deadline`, applying every fault boundary on
  // the way.
  void RunUntil(Time deadline) {
    while (next_boundary_ < boundaries_.size() && boundaries_[next_boundary_] <= deadline) {
      const Time t = boundaries_[next_boundary_++];
      sim_->RunUntil(t);
      ApplyStateAt(t);
    }
    sim_->RunUntil(deadline);
  }

 private:
  size_t Dir(NodeId from, NodeId to) const {
    return static_cast<size_t>(from) * static_cast<size_t>(n_ + 1) +
           static_cast<size_t>(to);
  }

  void ApplyStateAt(Time t) {
    using Kind = sim::ChaosFault::Kind;
    std::fill(want_cut_.begin(), want_cut_.end(), 0);
    std::fill(want_latency_.begin(), want_latency_.end(),
              sim_->params().net.default_latency);
    std::vector<char> want_crashed(static_cast<size_t>(n_) + 1, 0);

    auto cut2 = [&](NodeId a, NodeId b) {
      want_cut_[Dir(a, b)] = 1;
      want_cut_[Dir(b, a)] = 1;
    };
    for (const sim::ChaosFault& f : plan_->faults) {
      if (t < f.at || t >= f.end()) {
        continue;
      }
      switch (f.kind) {
        case Kind::kLinkCut:
          cut2(f.a, f.b);
          break;
        case Kind::kOneWayCut:
          want_cut_[Dir(f.a, f.b)] = 1;
          break;
        case Kind::kLatencySpike: {
          Time& lat = want_latency_[Dir(std::min(f.a, f.b), std::max(f.a, f.b))];
          lat = std::max(lat, f.latency);
          break;
        }
        case Kind::kCrash:
          want_crashed[f.a] = 1;
          break;
        case Kind::kSplit:
          for (NodeId i = 1; i <= n_; ++i) {
            for (NodeId j = static_cast<NodeId>(i + 1); j <= n_; ++j) {
              if (((f.mask >> (i - 1)) & 1) != ((f.mask >> (j - 1)) & 1)) {
                cut2(i, j);
              }
            }
          }
          break;
        case Kind::kDeaf:
          for (NodeId j = 1; j <= n_; ++j) {
            if (j != f.a) {
              want_cut_[Dir(j, f.a)] = 1;
            }
          }
          break;
        case Kind::kMute:
          for (NodeId j = 1; j <= n_; ++j) {
            if (j != f.a) {
              want_cut_[Dir(f.a, j)] = 1;
            }
          }
          break;
        case Kind::kHub:
          for (NodeId i = 1; i <= n_; ++i) {
            for (NodeId j = static_cast<NodeId>(i + 1); j <= n_; ++j) {
              if (i != f.a && j != f.a) {
                cut2(i, j);
              }
            }
          }
          break;
        case Kind::kChain:
          for (NodeId i = 1; i <= n_; ++i) {
            for (NodeId j = static_cast<NodeId>(i + 1); j <= n_; ++j) {
              if (j != i + 1) {
                cut2(i, j);
              }
            }
          }
          break;
        case Kind::kTrim:
          break;  // instantaneous, fired once below — never "active"
      }
    }

    // Links and latencies first so a restarting server's <PrepareReq> burst
    // travels the post-boundary topology.
    auto& net = sim_->network();
    for (NodeId i = 1; i <= n_; ++i) {
      for (NodeId j = 1; j <= n_; ++j) {
        if (i == j) {
          continue;
        }
        if (want_cut_[Dir(i, j)] != cur_cut_[Dir(i, j)]) {
          net.SetLinkOneWay(i, j, want_cut_[Dir(i, j)] == 0);
          cur_cut_[Dir(i, j)] = want_cut_[Dir(i, j)];
        }
        if (i < j && want_latency_[Dir(i, j)] != cur_latency_[Dir(i, j)]) {
          net.SetLatency(i, j, want_latency_[Dir(i, j)]);
          cur_latency_[Dir(i, j)] = want_latency_[Dir(i, j)];
        }
      }
    }
    for (NodeId id = 1; id <= n_; ++id) {
      if (want_crashed[id] && !sim_->IsCrashed(id)) {
        sim_->Crash(id);
      } else if (!want_crashed[id] && sim_->IsCrashed(id)) {
        sim_->Restart(id);
      }
    }
    // Trim faults fire exactly once, at the first boundary at/after their
    // start (after crash state is applied: a trim aimed at a just-crashed
    // node is a no-op, like an admin command racing a process death).
    for (size_t i = 0; i < plan_->faults.size(); ++i) {
      const sim::ChaosFault& f = plan_->faults[i];
      if (f.kind == Kind::kTrim && trim_fired_[i] == 0 && t >= f.at) {
        trim_fired_[i] = 1;
        if constexpr (Node::kSupportsTrim) {
          sim_->TrimNode(f.a);
        }
      }
    }
  }

  ClusterSim<Node>* sim_;
  const sim::ChaosPlan* plan_;
  int n_;
  std::vector<Time> boundaries_;
  size_t next_boundary_ = 0;
  std::vector<char> trim_fired_;
  std::vector<char> cur_cut_, want_cut_;
  std::vector<Time> cur_latency_, want_latency_;
};

template <typename Node>
ChaosOutcome RunChaos(const ChaosConfig& cfg) {
  const sim::ChaosPlan& plan = cfg.plan;
  OPX_CHECK_GE(plan.num_servers, 2);
  OPX_CHECK(Node::kSupportsRestart || !plan.HasCrash())
      << "plan contains crash faults but the protocol has no restart path";
  OPX_CHECK(Node::kSupportsTrim || !plan.HasTrim())
      << "plan contains trim faults but the protocol has no compaction path";

  ClusterParams params;
  params.num_servers = plan.num_servers;
  params.election_timeout = cfg.election_timeout;
  params.concurrent_proposals = cfg.concurrent_proposals;
  params.proposal_rate = cfg.proposal_rate;
  params.seed = plan.seed;
  params.preferred_leader = 1;
  params.audit = cfg.audit;
  params.trim_watermark = cfg.trim_watermark;
  params.read_fraction = cfg.read_fraction;
  params.audit_abort = false;  // collect violations; never kill the fuzzer
  params.obs = cfg.obs;
  ClusterSim<Node> sim(params);
  ChaosScheduleApplier<Node> applier(&sim, &plan);

  const Time end = plan.horizon + cfg.EffectiveWindow();
  applier.RunUntil(plan.horizon);
  const uint64_t completed_at_horizon = sim.client().completed();
  applier.RunUntil(end);

  ChaosOutcome out;
  out.fingerprint = sim.EventHash();
  out.completed = sim.client().completed();
  out.final_leader = sim.CurrentLeader();

  if (!sim.auditor().violations().empty()) {
    const audit::Violation& v = sim.auditor().violations().front();
    std::ostringstream d;
    d << audit::InvariantName(v.invariant) << " on node " << v.pid << " at t="
      << v.ctx.now << " event=" << v.ctx.event_id << " [" << v.ctx.label
      << "]: " << v.detail << " (+" << (sim.auditor().violations().size() - 1)
      << " more)";
    out.violated = ChaosOracle::kSafety;
    out.detail = d.str();
    return out;
  }
  if (out.final_leader == kNoNode) {
    std::ostringstream d;
    d << "no leader " << ToMillis(end - plan.horizon) << " ms after the last heal";
    out.violated = ChaosOracle::kLeaderConvergence;
    out.detail = d.str();
    return out;
  }
  if (sim.client().completed() <= completed_at_horizon) {
    std::ostringstream d;
    d << "client made no progress in " << ToMillis(end - plan.horizon)
      << " ms after the last heal (stuck at " << completed_at_horizon
      << " completions)";
    out.violated = ChaosOracle::kClientProgress;
    out.detail = d.str();
    return out;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Delta-debugging shrink (ddmin over the fault list).
// ---------------------------------------------------------------------------

struct ChaosShrinkResult {
  sim::ChaosPlan plan;     // minimized plan (horizon preserved)
  ChaosOutcome outcome;    // outcome of the minimized plan
  size_t runs = 0;         // simulations spent shrinking
};

// Minimizes cfg.plan to a 1-minimal fault set that still trips `target`
// (removing any single remaining fault loses the violation). The plan horizon
// is pinned so every candidate measures liveness at the same instant as the
// original run.
template <typename Node>
ChaosShrinkResult ShrinkChaos(const ChaosConfig& cfg, ChaosOracle target) {
  OPX_CHECK(target != ChaosOracle::kNone);
  ChaosShrinkResult result;
  result.plan = cfg.plan;

  auto reproduces = [&](const std::vector<sim::ChaosFault>& faults, ChaosOutcome* out) {
    ChaosConfig candidate = cfg;
    candidate.plan.faults = faults;
    ++result.runs;
    *out = RunChaos<Node>(candidate);
    return out->violated == target;
  };

  std::vector<sim::ChaosFault> cur = cfg.plan.faults;
  ChaosOutcome cur_outcome;
  OPX_CHECK(reproduces(cur, &cur_outcome)) << "shrink target does not reproduce";

  size_t chunks = 2;
  while (!cur.empty() && chunks <= cur.size() * 2) {
    bool reduced = false;
    const size_t effective = std::min(chunks, cur.size());
    for (size_t i = 0; i < effective; ++i) {
      const size_t lo = cur.size() * i / effective;
      const size_t hi = cur.size() * (i + 1) / effective;
      if (lo == hi) {
        continue;
      }
      std::vector<sim::ChaosFault> candidate;
      candidate.reserve(cur.size() - (hi - lo));
      for (size_t k = 0; k < cur.size(); ++k) {
        if (k < lo || k >= hi) {
          candidate.push_back(cur[k]);
        }
      }
      ChaosOutcome out;
      if (reproduces(candidate, &out)) {
        cur = std::move(candidate);
        cur_outcome = out;
        chunks = std::max<size_t>(2, effective - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (effective >= cur.size()) {
        break;  // 1-minimal: no single fault can be dropped
      }
      chunks = effective * 2;
    }
  }

  result.plan.faults = std::move(cur);
  result.outcome = cur_outcome;
  return result;
}

// ---------------------------------------------------------------------------
// Replayable artifacts.
// ---------------------------------------------------------------------------

// Everything needed to re-run a schedule bit-for-bit: protocol, harness
// knobs, the plan, the oracle it tripped (or "none" for corpus entries), and
// the expected fingerprint.
struct ChaosArtifact {
  std::string protocol;  // see DispatchChaosProtocol
  ChaosConfig config;
  ChaosOracle violated = ChaosOracle::kNone;
  uint64_t fingerprint = 0;
  std::string note;  // free-form provenance, single line
  // Optional trace slice from the violating run, one JSONL event per entry
  // (DESIGN.md §12). Serialized as "# trace: ..." comment lines, which older
  // parsers (and Parse below) skip — purely advisory provenance.
  std::vector<std::string> trace_lines;

  std::string Serialize() const {
    std::ostringstream out;
    out << "opx-chaos-artifact v1\n";
    if (!note.empty()) {
      out << "# " << note << "\n";
    }
    for (const std::string& t : trace_lines) {
      out << "# trace: " << t << "\n";
    }
    out << "protocol " << protocol << "\n";
    out << "election-timeout " << config.election_timeout << "\n";
    out << "concurrent-proposals " << config.concurrent_proposals << "\n";
    out << "proposal-rate " << config.proposal_rate << "\n";
    out << "liveness-window " << config.liveness_window << "\n";
    if (config.trim_watermark != 0) {
      out << "trim-watermark " << config.trim_watermark << "\n";
    }
    if (config.read_fraction != 0.0) {
      out << "read-fraction " << config.read_fraction << "\n";
    }
    out << "violated " << ChaosOracleName(violated) << "\n";
    out << "fingerprint " << fingerprint << "\n";
    out << "plan\n";
    out << config.plan.Serialize();
    return out.str();
  }

  static std::optional<ChaosArtifact> Parse(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "opx-chaos-artifact v1") {
      return std::nullopt;
    }
    ChaosArtifact art;
    bool have_plan = false;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') {
        continue;
      }
      if (line == "plan") {
        std::optional<sim::ChaosPlan> plan = sim::ChaosPlan::Parse(in);
        if (!plan) {
          return std::nullopt;
        }
        art.config.plan = std::move(*plan);
        have_plan = true;
        continue;
      }
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == "protocol") {
        ls >> art.protocol;
      } else if (key == "election-timeout") {
        ls >> art.config.election_timeout;
      } else if (key == "concurrent-proposals") {
        ls >> art.config.concurrent_proposals;
      } else if (key == "proposal-rate") {
        ls >> art.config.proposal_rate;
      } else if (key == "liveness-window") {
        ls >> art.config.liveness_window;
      } else if (key == "trim-watermark") {
        ls >> art.config.trim_watermark;
      } else if (key == "read-fraction") {
        ls >> art.config.read_fraction;
      } else if (key == "violated") {
        std::string name;
        ls >> name;
        const std::optional<ChaosOracle> o = ParseChaosOracle(name);
        if (!o) {
          return std::nullopt;
        }
        art.violated = *o;
      } else if (key == "fingerprint") {
        ls >> art.fingerprint;
      } else {
        return std::nullopt;
      }
      if (ls.fail()) {
        return std::nullopt;
      }
    }
    if (!have_plan || art.protocol.empty()) {
      return std::nullopt;
    }
    return art;
  }
};

// ---------------------------------------------------------------------------
// Protocol dispatch by name (the tool's --protocol flag and artifact files).
// ---------------------------------------------------------------------------

inline const std::vector<std::string>& ChaosProtocolNames() {
  static const std::vector<std::string> names = {"omni", "raft", "raft-pvcq", "multipaxos",
                                                 "vr"};
  return names;
}

// Invokes fn(std::type_identity<NodeType>{}) for the named protocol; returns
// false for an unknown name.
template <typename Fn>
bool DispatchChaosProtocol(const std::string& name, Fn&& fn) {
  if (name == "omni") {
    fn(std::type_identity<OmniNode>{});
  } else if (name == "raft") {
    fn(std::type_identity<RaftNode>{});
  } else if (name == "raft-pvcq") {
    fn(std::type_identity<RaftPvCqNode>{});
  } else if (name == "multipaxos") {
    fn(std::type_identity<MultiPaxosNode>{});
  } else if (name == "vr") {
    fn(std::type_identity<VrNode>{});
  } else {
    return false;
  }
  return true;
}

inline bool ChaosProtocolSupportsRestart(const std::string& name) {
  bool supports = false;
  const bool known = DispatchChaosProtocol(name, [&](auto tag) {
    using Node = typename decltype(tag)::type;
    supports = Node::kSupportsRestart;
  });
  return known && supports;
}

inline bool ChaosProtocolSupportsTrim(const std::string& name) {
  bool supports = false;
  const bool known = DispatchChaosProtocol(name, [&](auto tag) {
    using Node = typename decltype(tag)::type;
    supports = Node::kSupportsTrim;
  });
  return known && supports;
}

// Replays an artifact with its recorded protocol. Returns the outcome plus a
// determinism verdict: `matches` is false when the artifact carries a
// non-zero fingerprint that the re-run did not reproduce.
struct ChaosReplayResult {
  ChaosOutcome outcome;
  bool matches = true;
};

inline ChaosReplayResult ReplayChaosArtifact(const ChaosArtifact& art) {
  ChaosReplayResult r;
  const bool known = DispatchChaosProtocol(art.protocol, [&](auto tag) {
    using Node = typename decltype(tag)::type;
    r.outcome = RunChaos<Node>(art.config);
  });
  OPX_CHECK(known) << "unknown protocol in artifact: " << art.protocol;
  r.matches = art.fingerprint == 0 || r.outcome.fingerprint == art.fingerprint;
  return r;
}

}  // namespace opx::rsm

#endif  // SRC_RSM_CHAOS_H_
