// Client <-> cluster wire messages used by every protocol harness.
#ifndef SRC_RSM_CLIENT_MESSAGES_H_
#define SRC_RSM_CLIENT_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/util/types.h"

namespace opx::rsm {

// A batch of command ids proposed by the client to one server.
struct ProposeBatch {
  std::vector<uint64_t> cmd_ids;
  uint32_t payload_bytes = 8;
};

// A batch of decided command ids pushed back to the client by the leader.
// leader_hint redirects the client when the contacted server is not leading.
struct ResponseBatch {
  std::vector<uint64_t> cmd_ids;
  NodeId leader_hint = kNoNode;
};

inline uint64_t WireBytes(const ProposeBatch& b) {
  return 16 + b.cmd_ids.size() * (8 + b.payload_bytes);
}

inline uint64_t WireBytes(const ResponseBatch& b) { return 16 + b.cmd_ids.size() * 8; }

}  // namespace opx::rsm

#endif  // SRC_RSM_CLIENT_MESSAGES_H_
