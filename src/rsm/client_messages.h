// Client <-> cluster wire messages used by every protocol harness.
#ifndef SRC_RSM_CLIENT_MESSAGES_H_
#define SRC_RSM_CLIENT_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/util/types.h"

namespace opx::rsm {

// A batch of command ids proposed by the client to one server.
struct ProposeBatch {
  std::vector<uint64_t> cmd_ids;
  uint32_t payload_bytes = 8;
};

// A batch of decided command ids pushed back to the client by the leader.
// leader_hint redirects the client when the contacted server is not leading.
struct ResponseBatch {
  std::vector<uint64_t> cmd_ids;
  NodeId leader_hint = kNoNode;
  // Responder's decided index when the batch was pushed; feeds the client's
  // read-your-writes watermark for lease reads (DESIGN.md §15).
  uint64_t decided_idx = 0;
};

// A linearizable read. Served locally by a leader holding the BLE lease —
// no log round-trip — provided its decided index covers `watermark` (the
// highest decided index at which one of this client's operations completed;
// enforces read-your-writes and monotonic reads).
struct ReadRequest {
  uint64_t read_id = 0;
  uint64_t watermark = 0;
};

struct ReadReply {
  uint64_t read_id = 0;
  uint64_t decided_idx = 0;  // serialization point of the read
  bool served = false;       // false: no lease / not leader / behind watermark
  NodeId leader_hint = kNoNode;
};

inline uint64_t WireBytes(const ProposeBatch& b) {
  return 16 + b.cmd_ids.size() * (8 + b.payload_bytes);
}

inline uint64_t WireBytes(const ResponseBatch& b) { return 16 + b.cmd_ids.size() * 8; }

inline uint64_t WireBytes(const ReadRequest&) { return 24; }

inline uint64_t WireBytes(const ReadReply&) { return 24; }

}  // namespace opx::rsm

#endif  // SRC_RSM_CLIENT_MESSAGES_H_
