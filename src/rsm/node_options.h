// Per-node knobs the cluster harness passes to protocol adapters.
#ifndef SRC_RSM_NODE_OPTIONS_H_
#define SRC_RSM_NODE_OPTIONS_H_

#include <cstdint>

#include "src/obs/trace.h"

namespace opx::rsm {

struct NodeOptions {
  uint64_t seed = 1;
  // Omni-Paxos only: BLE ballot priority (pins the initial leader).
  uint32_t ble_priority = 0;
  // Optional trace/metrics sink forwarded into the protocol configs
  // (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_NODE_OPTIONS_H_
