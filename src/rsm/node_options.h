// Per-node knobs the cluster harness passes to protocol adapters.
#ifndef SRC_RSM_NODE_OPTIONS_H_
#define SRC_RSM_NODE_OPTIONS_H_

#include <cstdint>

#include "src/obs/trace.h"

namespace opx::rsm {

struct NodeOptions {
  uint64_t seed = 1;
  // Omni-Paxos only: BLE ballot priority (pins the initial leader).
  uint32_t ble_priority = 0;
  // Leader-side cap on proposals moved into the log per flush (request
  // batching); forwarded to SequencePaxos/Raft. 0 = unlimited.
  uint64_t batch_limit = 0;
  // Omni-Paxos only: automatic log-compaction watermark in entries
  // (see SequencePaxosConfig::trim_watermark). 0 disables auto-trim.
  uint64_t trim_watermark = 0;
  // Optional trace/metrics sink forwarded into the protocol configs
  // (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_NODE_OPTIONS_H_
