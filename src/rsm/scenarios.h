// The paper's partial-connectivity scenarios (§2, Fig. 1) as link scripts.
//
// Scenarios are expressed relative to the currently elected leader and a
// designated fully-connected "hub" server (called A in the paper), and applied
// to any network through a type-erased link-control handle, so the same
// scripts drive every protocol harness, the Table 1 matrix, and Fig. 8.
#ifndef SRC_RSM_SCENARIOS_H_
#define SRC_RSM_SCENARIOS_H_

#include <functional>
#include <string>

#include "src/util/types.h"

namespace opx::rsm {

enum class Scenario {
  kQuorumLoss,   // Fig. 1a: every server only connected to the hub; the
                 // leader stays alive but loses quorum-connectivity
  kConstrained,  // Fig. 1b: leader fully partitioned; hub is the only QC
                 // server and has an outdated log (disconnected earlier)
  kChained,      // Fig. 1c: 3 servers in a chain, leader at one end
};

std::string ScenarioName(Scenario s);

struct LinkControl {
  int num_servers = 0;
  // Cold scenario-setup path invoked through const&, never per-event; the
  // PR 2 std::function ban targets the sim/message hot paths.
  std::function<void(NodeId a, NodeId b, bool up)> set_link;  // NOLINT(opx-determinism)
};

// Fig. 1a. Cuts every link not incident to `hub`. The leader remains
// connected to the hub (alive but not QC).
void ApplyQuorumLoss(const LinkControl& lc, NodeId hub);

// Fig. 1b, stage 1: disconnect hub from the leader early so the hub's log
// falls behind (§7.2 experiment description).
void ApplyConstrainedEarlyCut(const LinkControl& lc, NodeId hub, NodeId leader);

// Fig. 1b, stage 2: fully partition the leader; all remaining servers keep
// only their link to the hub.
void ApplyConstrainedMainCut(const LinkControl& lc, NodeId hub, NodeId leader);

// Fig. 1c (3 servers): cut leader <-> other so the chain is
// leader — middle — other, with the leader at an endpoint.
void ApplyChained(const LinkControl& lc, NodeId leader, NodeId middle, NodeId other);

void HealAll(const LinkControl& lc);

}  // namespace opx::rsm

#endif  // SRC_RSM_SCENARIOS_H_
