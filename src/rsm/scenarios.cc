#include "src/rsm/scenarios.h"

#include "src/util/check.h"

namespace opx::rsm {

std::string ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kQuorumLoss:
      return "quorum-loss";
    case Scenario::kConstrained:
      return "constrained-election";
    case Scenario::kChained:
      return "chained";
  }
  return "?";
}

void ApplyQuorumLoss(const LinkControl& lc, NodeId hub) {
  OPX_CHECK(lc.set_link != nullptr);
  for (NodeId a = 1; a <= lc.num_servers; ++a) {
    for (NodeId b = a + 1; b <= lc.num_servers; ++b) {
      if (a != hub && b != hub) {
        lc.set_link(a, b, false);
      }
    }
  }
}

void ApplyConstrainedEarlyCut(const LinkControl& lc, NodeId hub, NodeId leader) {
  OPX_CHECK_NE(hub, leader);
  lc.set_link(hub, leader, false);
}

void ApplyConstrainedMainCut(const LinkControl& lc, NodeId hub, NodeId leader) {
  OPX_CHECK_NE(hub, leader);
  for (NodeId a = 1; a <= lc.num_servers; ++a) {
    for (NodeId b = a + 1; b <= lc.num_servers; ++b) {
      const bool incident_leader = (a == leader || b == leader);
      const bool incident_hub = (a == hub || b == hub);
      if (incident_leader || !incident_hub) {
        lc.set_link(a, b, false);
      }
    }
  }
}

void ApplyChained(const LinkControl& lc, NodeId leader, NodeId middle, NodeId other) {
  OPX_CHECK_EQ(lc.num_servers, 3);
  OPX_CHECK(leader != middle && middle != other && leader != other);
  lc.set_link(leader, other, false);
}

void HealAll(const LinkControl& lc) {
  for (NodeId a = 1; a <= lc.num_servers; ++a) {
    for (NodeId b = a + 1; b <= lc.num_servers; ++b) {
      lc.set_link(a, b, true);
    }
  }
}

}  // namespace opx::rsm
