// Experiment runners reproducing the paper's evaluation protocols (§7).
// Header-only templates so each benchmark instantiates them with any protocol
// adapter. Shared by bench/ (Figs. 7-8, Table 1) and integration tests.
#ifndef SRC_RSM_EXPERIMENTS_H_
#define SRC_RSM_EXPERIMENTS_H_

#include <algorithm>

#include "src/rsm/adapters.h"
#include "src/rsm/cluster_sim.h"
#include "src/rsm/scenarios.h"
#include "src/util/time.h"

namespace opx::rsm {

// ---------------------------------------------------------------------------
// Regular execution (§7.1, Fig. 7).
// ---------------------------------------------------------------------------

struct NormalConfig {
  int num_servers = 3;
  size_t concurrent_proposals = 500;
  Time election_timeout = Millis(50);
  Time warmup = Seconds(10);
  Time duration = Seconds(60);
  // One-way latencies. wan_mode deploys the WAN setting of §7.1: the leader's
  // region hosts the client; followers sit 105/145 ms RTT away.
  bool wan = false;
  uint64_t seed = 1;
  double proposal_rate = 600'000.0;
  // Run the safety auditor during the experiment (benches pass --audit=false
  // when measuring raw protocol performance).
  bool audit = true;
  // Optional trace/metrics sink (DESIGN.md §12). When set, the result figures
  // are also published as gauges under "fig7/...".
  obs::ObsSink* obs = nullptr;
};

struct NormalResult {
  double throughput = 0.0;    // decided proposals per second
  double mean_latency_s = 0.0;
  double election_io_share = 0.0;  // BLE/FD bytes over total bytes (§7.1 claim)
  uint64_t leader_elevations = 0;
};

template <typename Node>
NormalResult RunNormal(const NormalConfig& cfg) {
  ClusterParams params;
  params.num_servers = cfg.num_servers;
  params.election_timeout = cfg.election_timeout;
  params.concurrent_proposals = cfg.concurrent_proposals;
  params.seed = cfg.seed;
  params.proposal_rate = cfg.proposal_rate;
  params.preferred_leader = 1;
  params.audit = cfg.audit;
  params.obs = cfg.obs;
  params.net.default_latency = cfg.wan ? Millis(52) : Micros(100);

  ClusterSim<Node> sim(params);
  if (cfg.wan) {
    // §7.1 WAN: leader (server 1) and client colocated in us-central1;
    // half the followers in eu-west1 (RTT 105 ms), half in asia-northeast1
    // (RTT 145 ms). Latencies here are one-way.
    auto& net = sim.network();
    const NodeId client = sim.ClientId();
    net.SetLatency(1, client, Micros(100));
    for (NodeId f = 2; f <= cfg.num_servers; ++f) {
      const Time one_way = (f % 2 == 0) ? Micros(52'500) : Micros(72'500);
      net.SetLatency(1, f, one_way);
      net.SetLatency(f, client, one_way);
      for (NodeId g = 2; g < f; ++g) {
        net.SetLatency(f, g, Micros(60'000));
      }
    }
  }

  sim.RunUntil(cfg.warmup);
  const uint64_t completed_at_warmup = sim.client().completed();
  const uint64_t elevations_at_warmup = sim.leader_elevations();
  sim.RunUntil(cfg.warmup + cfg.duration);

  NormalResult result;
  result.throughput = static_cast<double>(sim.client().completed() - completed_at_warmup) /
                      ToSeconds(cfg.duration);
  result.mean_latency_s = sim.client().MeanLatencySeconds();
  const uint64_t total = sim.network().TotalBytesSent();
  result.election_io_share =
      total == 0 ? 0.0
                 : static_cast<double>(sim.TotalElectionBytes()) / static_cast<double>(total);
  result.leader_elevations = sim.leader_elevations() - elevations_at_warmup;
#if defined(OPX_OBS_ENABLED)
  if (cfg.obs != nullptr) {
    auto& m = cfg.obs->metrics();
    m.GetGauge("fig7/throughput")->Set(result.throughput);
    m.GetGauge("fig7/mean_latency_s")->Set(result.mean_latency_s);
    m.GetGauge("fig7/election_io_share")->Set(result.election_io_share);
    m.GetGauge("fig7/leader_elevations")
        ->Set(static_cast<double>(result.leader_elevations));
  }
#endif
  return result;
}

// ---------------------------------------------------------------------------
// Partial connectivity (§7.2, Fig. 8, Table 1).
// ---------------------------------------------------------------------------

struct PartitionConfig {
  Scenario scenario = Scenario::kQuorumLoss;
  int num_servers = 5;  // 3 for the chained scenario
  Time election_timeout = Millis(50);
  Time partition_duration = Minutes(1);
  Time post_heal = Seconds(30);
  size_t concurrent_proposals = 500;
  uint64_t seed = 1;
  // Down-time metrics are rate-independent; a modest rate keeps runs fast.
  double proposal_rate = 50'000.0;
  Time warmup = 0;  // 0 = auto: max(10 s, 6 * election timeout)
  // Run the safety auditor during the experiment.
  bool audit = true;
  // Optional trace/metrics sink (DESIGN.md §12). When set, downtime is also
  // observed into the "fig8/downtime_ms" histogram.
  obs::ObsSink* obs = nullptr;
};

struct PartitionResult {
  Time downtime = 0;            // longest no-decides gap from partition start
  bool recovered = false;       // made progress before the partition healed
  uint64_t decided_during = 0;  // completions inside the partition window
  uint64_t leader_elevations = 0;
  uint64_t epoch_increments = 0;  // term/ballot/view growth during partition
  NodeId leader_at_cut = kNoNode;
  NodeId leader_after = kNoNode;
};

template <typename Node>
PartitionResult RunPartition(const PartitionConfig& cfg) {
  ClusterParams params;
  params.num_servers = cfg.num_servers;
  params.election_timeout = cfg.election_timeout;
  params.concurrent_proposals = cfg.concurrent_proposals;
  params.seed = cfg.seed;
  params.proposal_rate = cfg.proposal_rate;
  params.preferred_leader = 1;
  params.audit = cfg.audit;
  params.obs = cfg.obs;
  params.net.default_latency = Micros(100);

  ClusterSim<Node> sim(params);
  const Time warmup =
      cfg.warmup != 0 ? cfg.warmup : std::max<Time>(Seconds(10), 6 * cfg.election_timeout);

  LinkControl lc;
  lc.num_servers = cfg.num_servers;
  lc.set_link = [&sim](NodeId a, NodeId b, bool up) { sim.network().SetLink(a, b, up); };

  PartitionResult result;

  // Let the cluster elect a leader and serve the client.
  sim.RunUntil(warmup);
  const NodeId leader = sim.CurrentLeader();
  if (leader == kNoNode) {
    // No leader after warmup (pathological timeout settings): report a full
    // outage.
    result.downtime = cfg.partition_duration;
    return result;
  }
  result.leader_at_cut = leader;
  const NodeId hub = leader % cfg.num_servers + 1;  // the paper's "A"

  // Apply the scenario.
  Time cut_time = sim.simulator().Now();
  switch (cfg.scenario) {
    case Scenario::kQuorumLoss:
      ApplyQuorumLoss(lc, hub);
      break;
    case Scenario::kConstrained:
      // Early cut half a timeout before the main partition so the hub's log
      // is outdated but no election triggers yet (§7.2).
      ApplyConstrainedEarlyCut(lc, hub, leader);
      sim.RunUntil(cut_time + cfg.election_timeout / 2);
      cut_time = sim.simulator().Now();
      ApplyConstrainedMainCut(lc, hub, leader);
      break;
    case Scenario::kChained: {
      const NodeId middle = hub;
      NodeId other = kNoNode;
      for (NodeId id = 1; id <= cfg.num_servers; ++id) {
        if (id != leader && id != middle) {
          other = id;
        }
      }
      ApplyChained(lc, leader, middle, other);
      break;
    }
  }

  const uint64_t completed_at_cut = sim.client().completed();
  const uint64_t elevations_at_cut = sim.leader_elevations();
  const uint64_t epoch_at_cut = sim.MaxEpoch();

  const Time heal_time = cut_time + cfg.partition_duration;
  sim.RunUntil(heal_time);
  result.decided_during = sim.client().completed() - completed_at_cut;
  // "Recovered" = the cluster decided new commands while still partitioned,
  // within the scenario window minus one settling period.
  result.recovered =
      sim.client().last_completion_time() > cut_time + 8 * cfg.election_timeout &&
      result.decided_during > 0;

  HealAll(lc);
  sim.RunUntil(heal_time + cfg.post_heal);

  result.downtime = sim.client().LongestGap(cut_time, heal_time + cfg.post_heal);
  result.leader_elevations = sim.leader_elevations() - elevations_at_cut;
  result.epoch_increments = sim.MaxEpoch() - epoch_at_cut;
  result.leader_after = sim.CurrentLeader();
#if defined(OPX_OBS_ENABLED)
  if (cfg.obs != nullptr) {
    auto& m = cfg.obs->metrics();
    m.GetHistogram("fig8/downtime_ms",
                   obs::ExponentialBuckets(1.0, 2.0, 16))
        ->Observe(static_cast<double>(result.downtime) / 1e6);
    m.GetGauge("fig8/epoch_increments")
        ->Set(static_cast<double>(result.epoch_increments));
  }
#endif
  return result;
}

}  // namespace opx::rsm

#endif  // SRC_RSM_EXPERIMENTS_H_
