// Raft reconfiguration harness (§7.3 baseline).
//
// Raft performs membership change inside the replication protocol: fresh
// servers join as learners with empty logs and the *leader* back-fills the
// entire history through its own NIC while still serving client traffic —
// the leader-bottleneck behaviour Fig. 9 contrasts with Omni-Paxos' parallel
// service-layer migration. Removed servers are retired by the operator once
// the change commits (they would otherwise disrupt the cluster with term
// bumps; the residual disruption before retirement is authentic §7.3 Raft
// behaviour).
#ifndef SRC_RSM_RAFT_RECONFIG_SIM_H_
#define SRC_RSM_RAFT_RECONFIG_SIM_H_

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "src/raft/raft.h"
#include "src/rsm/client.h"
#include "src/rsm/client_messages.h"
#include "src/rsm/omni_reconfig_sim.h"  // ReconfigParams / ReconfigResult
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/time.h"

namespace opx::rsm {

class RaftReconfigSim {
 public:
  explicit RaftReconfigSim(ReconfigParams params)
      : params_(params),
        pool_(params.initial_servers + params.replace_count),
        net_(&sim_, pool_ + 1, MakeNetParams(params)),
        client_(MakeClientParams(params, pool_)) {
    client_.set_window_width(params_.metrics_window);

    std::vector<NodeId> voters;
    for (NodeId id = 1; id <= params_.initial_servers; ++id) {
      voters.push_back(id);
      old_members_.push_back(id);
    }
    for (NodeId id = 1; id <= params_.initial_servers - params_.replace_count; ++id) {
      new_members_.push_back(id);
    }
    for (int i = 0; i < params_.replace_count; ++i) {
      new_members_.push_back(params_.initial_servers + 1 + i);
    }

    nodes_.resize(static_cast<size_t>(pool_) + 1);
    polled_.resize(static_cast<size_t>(pool_) + 1, 0);
    retired_.resize(static_cast<size_t>(pool_) + 1, false);
    for (NodeId id = 1; id <= pool_; ++id) {
      raft::RaftConfig cfg;
      cfg.pid = id;
      cfg.seed = params_.seed + static_cast<uint64_t>(id) * 7919;
      cfg.election_ticks = 5;
      if (id <= params_.initial_servers) {
        cfg.voters = voters;
        cfg.preload_entries = params_.preload_entries;
        cfg.preload_payload_bytes = params_.payload_bytes;
        polled_[static_cast<size_t>(id)] = params_.preload_entries;
      } else {
        // Fresh server: empty log, never self-elects before joining.
        cfg.voters = {id};
        cfg.election_ticks = 1 << 20;
      }
      nodes_[static_cast<size_t>(id)] = std::make_unique<raft::Raft>(cfg);
      net_.SetHandler(id, [this, id](NodeId from, Wire w) { OnServerWire(id, from, std::move(w)); });
    }
    net_.SetHandler(ClientId(), [this](NodeId from, Wire w) {
      if (auto* resp = std::get_if<ResponseBatch>(&w)) {
        client_.OnResponse(sim_.Now(), from, *resp);
      }
    });

    const Time tick = params_.election_timeout / 5;
    for (NodeId id = 1; id <= pool_; ++id) {
      const Time offset = (tick / (2 * pool_)) * (id - 1);
      sim_.ScheduleAfter(offset, [this, id, tick]() { TickServer(id, tick); });
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
  }

  ReconfigResult Run() {
    sim_.RunUntil(params_.warmup);
    const uint64_t completed_at_warmup = client_.completed();
    const NodeId leader = CurrentLeader();
    OPX_CHECK_NE(leader, kNoNode) << "no Raft leader after warmup";
    old_leader_ = leader;

    OPX_CHECK(node(leader).ProposeMembership(new_members_));
    PumpServer(leader);
    result_.reconfig_proposed_at = sim_.Now();
    result_.steady_throughput =
        static_cast<double>(completed_at_warmup) / ToSeconds(params_.warmup);

    sim_.RunUntil(params_.warmup + params_.run_after);

    result_.window_counts = client_.window_counts();
    result_.downtime =
        client_.LongestGap(result_.reconfig_proposed_at, params_.warmup + params_.run_after);
    for (size_t w = 1; w < io_samples_.size(); ++w) {
      for (NodeId id = 1; id <= pool_; ++id) {
        const uint64_t delta = io_samples_[w][static_cast<size_t>(id)] -
                               io_samples_[w - 1][static_cast<size_t>(id)];
        result_.peak_window_egress_any = std::max(result_.peak_window_egress_any, delta);
        if (id == old_leader_) {
          result_.peak_window_egress_old_leader =
              std::max(result_.peak_window_egress_old_leader, delta);
        }
      }
    }
    return result_;
  }

  Client& client() { return client_; }

 private:
  using Wire = std::variant<raft::RaftMessage, ProposeBatch, ResponseBatch>;

  static uint64_t BytesOf(const Wire& w) {
    if (const auto* m = std::get_if<raft::RaftMessage>(&w)) {
      return raft::WireBytes(*m);
    }
    if (const auto* p = std::get_if<ProposeBatch>(&w)) {
      return WireBytes(*p);
    }
    return WireBytes(std::get<ResponseBatch>(w));
  }

  static sim::NetworkParams MakeNetParams(const ReconfigParams& p) {
    sim::NetworkParams np;
    np.default_latency = Micros(100);
    np.egress_bytes_per_sec = p.egress_bytes_per_sec;
    return np;
  }

  static ClientParams MakeClientParams(const ReconfigParams& p, int pool) {
    ClientParams cp;
    cp.num_servers = pool;
    cp.concurrent_proposals = p.concurrent_proposals;
    cp.payload_bytes = p.payload_bytes;
    cp.retry_timeout = std::max<Time>(4 * p.election_timeout, p.client_retry);
    return cp;
  }

  raft::Raft& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  NodeId ClientId() const { return pool_ + 1; }

  void TickServer(NodeId id, Time tick) {
    if (!retired_[static_cast<size_t>(id)]) {
      node(id).Tick();
      PumpServer(id);
    }
    sim_.ScheduleAfter(tick, [this, id, tick]() { TickServer(id, tick); });
    if (id == 1 && sim_.Now() >= next_io_sample_) {
      std::vector<uint64_t> snap(static_cast<size_t>(pool_) + 1, 0);
      for (NodeId n = 1; n <= pool_; ++n) {
        snap[static_cast<size_t>(n)] = net_.BytesSent(n);
      }
      io_samples_.push_back(std::move(snap));
      next_io_sample_ = sim_.Now() + params_.metrics_window;
    }
  }

  void TickClient() {
    for (Client::Send& send : client_.Tick(sim_.Now())) {
      const uint64_t bytes = WireBytes(send.batch);
      net_.Send(ClientId(), send.to, Wire(std::move(send.batch)), static_cast<uint32_t>(bytes));
    }
    sim_.ScheduleAfter(params_.client_tick, [this]() { TickClient(); });
  }

  void OnServerWire(NodeId id, NodeId from, Wire w) {
    if (retired_[static_cast<size_t>(id)]) {
      return;
    }
    if (auto* proposals = std::get_if<ProposeBatch>(&w)) {
      if (!node(id).IsLeader()) {
        ResponseBatch reject;
        reject.leader_hint = node(id).leader_hint();
        net_.Send(id, ClientId(), Wire(std::move(reject)), 24);
      } else {
        for (uint64_t cmd : proposals->cmd_ids) {
          node(id).Append(raft::Entry::Command(cmd, params_.payload_bytes));
        }
      }
    } else if (auto* msg = std::get_if<raft::RaftMessage>(&w)) {
      node(id).Handle(from, std::move(*msg));
    }
    PumpServer(id);
  }

  void PumpServer(NodeId id) {
    raft::Raft& n = node(id);
    for (raft::RaftOut& out : n.TakeOutgoing()) {
      if (out.to < 1 || out.to > pool_ || retired_[static_cast<size_t>(out.to)]) {
        continue;
      }
      const uint64_t bytes = raft::WireBytes(out.body);
      net_.Send(id, out.to, Wire(std::move(out.body)), static_cast<uint32_t>(bytes));
    }
    // Client responses.
    LogIndex& polled = polled_[static_cast<size_t>(id)];
    const LogIndex commit = n.commit_idx();
    if (polled < commit) {
      ResponseBatch resp;
      for (; polled < commit; ++polled) {
        const raft::LogEntry& e = n.log()[polled];
        if (!e.data.IsStopSign() && e.data.cmd_id != 0) {
          resp.cmd_ids.push_back(e.data.cmd_id);
        }
      }
      if (!resp.cmd_ids.empty() && n.IsLeader()) {
        if (result_.new_config_first_decide == 0 && membership_committed_) {
          result_.new_config_first_decide = sim_.Now();
        }
        const uint64_t bytes = WireBytes(resp);
        net_.Send(id, ClientId(), Wire(std::move(resp)), static_cast<uint32_t>(bytes));
      }
    }
    // Operator: once the membership change commits, retire removed servers.
    if (!membership_committed_ && n.CommittedMembership().has_value() &&
        *n.CommittedMembership() == new_members_) {
      membership_committed_ = true;
      result_.ss_decided_at = sim_.Now();
      for (NodeId m : old_members_) {
        if (std::find(new_members_.begin(), new_members_.end(), m) == new_members_.end()) {
          retired_[static_cast<size_t>(m)] = true;
        }
      }
    }
    // Migration completes when every fresh server caught up to the change.
    if (membership_committed_ && result_.migration_done_at == 0) {
      bool all_caught_up = true;
      for (NodeId m : new_members_) {
        if (m > params_.initial_servers &&
            node(m).commit_idx() < params_.preload_entries) {
          all_caught_up = false;
          break;
        }
      }
      if (all_caught_up) {
        result_.migration_done_at = sim_.Now();
      }
    }
  }

  NodeId CurrentLeader() {
    NodeId best = kNoNode;
    uint64_t best_term = 0;
    for (NodeId id = 1; id <= pool_; ++id) {
      if (!retired_[static_cast<size_t>(id)] && node(id).IsLeader() &&
          node(id).term() + 1 > best_term) {
        best = id;
        best_term = node(id).term() + 1;
      }
    }
    return best;
  }

  ReconfigParams params_;
  int pool_;
  sim::Simulator sim_;
  sim::Network<Wire> net_;
  Client client_;

  std::vector<NodeId> old_members_;
  std::vector<NodeId> new_members_;
  NodeId old_leader_ = kNoNode;
  std::vector<std::unique_ptr<raft::Raft>> nodes_;
  std::vector<LogIndex> polled_;
  std::vector<bool> retired_;
  bool membership_committed_ = false;
  std::vector<std::vector<uint64_t>> io_samples_;
  Time next_io_sample_ = 0;
  ReconfigResult result_;
};

}  // namespace opx::rsm

#endif  // SRC_RSM_RAFT_RECONFIG_SIM_H_
