// Summary statistics used by the benchmark harnesses.
//
// The paper reports means with 95% confidence intervals computed with the
// t-distribution over 10 repetitions; Summarize() mirrors that.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace opx {

struct Summary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;     // sample standard deviation
  double ci95_half = 0.0;  // half-width of the 95% CI (t-distribution)
  double min = 0.0;
  double max = 0.0;
};

// Two-sided 97.5% quantile of Student's t with `dof` degrees of freedom.
// Exact table for small dof (the regimes benchmarks use), 1.96 asymptote.
double TCritical95(size_t dof);

Summary Summarize(const std::vector<double>& samples);

// p in [0, 100]; linear interpolation between order statistics.
double Percentile(std::vector<double> samples, double p);

// Renders "mean ± ci" with a sensible precision, e.g. "12345.6 ± 213.4".
std::string FormatMeanCi(const Summary& s);

}  // namespace opx

#endif  // SRC_UTIL_STATS_H_
