// Deterministic random number generation for simulation runs.
//
// Every experiment is reproducible from a single 64-bit seed. SplitMix64 is
// used for seeding; xoshiro256** is the workhorse generator (fast, passes
// BigCrush, trivially copyable so cluster harnesses can fork substreams).
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/check.h"

namespace opx {

// One step of the SplitMix64 sequence; also usable stand-alone for hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    OPX_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    OPX_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Derives an independent child stream; used to give each node its own RNG.
  Rng Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace opx

#endif  // SRC_UTIL_RNG_H_
