// Virtual time used throughout the simulator and protocol state machines.
//
// All protocol code is driven by the discrete-event simulator, so "time" is a
// signed 64-bit count of nanoseconds since the start of a run. Helpers below
// build durations from human units; a full 5-minute experiment is ~3e11 ns,
// leaving ample headroom in 63 bits.
#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>

namespace opx {

// Nanoseconds. Used both as a point on the simulated timeline and as a span.
using Time = int64_t;

constexpr Time kTimeNever = INT64_MAX;

constexpr Time Nanos(int64_t n) { return n; }
constexpr Time Micros(int64_t n) { return n * 1'000; }
constexpr Time Millis(int64_t n) { return n * 1'000'000; }
constexpr Time Seconds(int64_t n) { return n * 1'000'000'000; }
constexpr Time Minutes(int64_t n) { return Seconds(n * 60); }

constexpr double ToSeconds(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double ToMillis(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace opx

#endif  // SRC_UTIL_TIME_H_
