// The one audited implementation of log-index arithmetic against compaction
// floors, shared by Storage, the protocols, and the recovery path. Raw
// `idx - compacted_idx_` / `compacted_idx_ + n` expressions outside this
// header are rejected by opx_analyze's opx-index-arith check: both PR 8 seed
// bugs (the RestoreForRecovery decided-idx bound and the ResetToSnapshot
// boundary validation) were exactly this shape — an unchecked subtraction
// against a floor that wrapped to a huge unsigned value, or an addition that
// silently overflowed the 64-bit index space.
#ifndef SRC_UTIL_LOG_INDEX_H_
#define SRC_UTIL_LOG_INDEX_H_

#include <cstddef>

#include "src/util/check.h"
#include "src/util/types.h"

namespace opx::util {

// Physical container offset of logical index `idx` in a log whose prefix
// [0, floor) has been compacted away. Aborts when `idx` is below the floor —
// the unchecked version wraps to ~2^64 and resize()/iterator arithmetic on
// the result is memory corruption, not an error return.
inline size_t FloorOffset(LogIndex idx, LogIndex floor) {
  OPX_CHECK_GE(idx, floor) << "log index below its compaction floor";
  return static_cast<size_t>(idx - floor);
}

// Logical end index of a log suffix: `floor + count`, with the unsigned
// overflow that a hostile or corrupt count would cause checked.
inline LogIndex IndexEnd(LogIndex floor, size_t count) {
  const LogIndex end = floor + static_cast<LogIndex>(count);
  OPX_CHECK_GE(end, floor) << "log index overflow";
  return end;
}

// `idx - n` as a logical index, aborting on underflow. The checked version
// of "one before decided" / "delta since the last floor" arithmetic.
inline LogIndex IndexBack(LogIndex idx, LogIndex n) {
  OPX_CHECK_GE(idx, n) << "log index underflow";
  return idx - n;
}

// `idx - n` clamped at zero: the auto-trim watermark shape
// (`decided > k*wm ? decided - k*wm : 0`) without the hand-rolled ternary.
constexpr LogIndex SaturatingIndexSub(LogIndex idx, LogIndex n) {
  return idx >= n ? idx - n : 0;
}

}  // namespace opx::util

#endif  // SRC_UTIL_LOG_INDEX_H_
