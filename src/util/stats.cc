#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace opx {

double TCritical95(size_t dof) {
  // Two-sided 95% critical values of Student's t-distribution.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,  // dof 1..9
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,  // dof 10..19
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,  // dof 20..29
      2.042};                                                                  // dof 30
  if (dof == 0) {
    return 0.0;
  }
  if (dof <= 30) {
    return kTable[dof];
  }
  if (dof <= 60) {
    return 2.000;
  }
  if (dof <= 120) {
    return 1.980;
  }
  return 1.960;
}

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0.0;
    for (double v : samples) {
      const double d = v - s.mean;
      sq += d * d;
    }
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    s.ci95_half = TCritical95(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

double Percentile(std::vector<double> samples, double p) {
  OPX_CHECK(!samples.empty());
  OPX_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples[0];
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::string FormatMeanCi(const Summary& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f ± %.1f", s.mean, s.ci95_half);
  return buf;
}

}  // namespace opx
