// The one audited implementation of quorum arithmetic, shared by every
// protocol (Sequence Paxos, BLE, Raft, MultiPaxos, VR) and by the test
// harnesses. Hand-rolled majority math is rejected by opx_analyze's
// opx-quorum-arith check: `(n + 1) / 2` is NOT a majority for even n
// (n = 4 gives 2), and a bare `n / 2` is a minority-vs-majority off-by-one
// waiting to happen.
#ifndef SRC_UTIL_QUORUM_H_
#define SRC_UTIL_QUORUM_H_

#include <cstddef>

namespace opx::util {

// Smallest strict majority of an n-server cluster: floor(n/2) + 1.
// Correct for both parities (n = 4 -> 3, n = 5 -> 3).
constexpr size_t MajorityOf(size_t n) { return n / 2 + 1; }

// Largest set of servers that may fail while a majority survives:
// n - MajorityOf(n), i.e. ceil(n/2) - 1.
constexpr size_t MaxMinorityOf(size_t n) { return n - MajorityOf(n); }

}  // namespace opx::util

#endif  // SRC_UTIL_QUORUM_H_
