#include "src/util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace opx {
namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("OPX_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kOff;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kOff;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

LogLevel GetLogLevel() { return MutableLevel(); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MutableLevel());
}

void LogLine(LogLevel level, const std::string& line) {
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), line.c_str());
}

}  // namespace opx
