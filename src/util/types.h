// Shared primitive identifiers.
#ifndef SRC_UTIL_TYPES_H_
#define SRC_UTIL_TYPES_H_

#include <cstdint>

namespace opx {

// Server / process identifier. Servers are numbered 1..N as in the paper;
// 0 is reserved as "no node". Clients and auxiliary actors use ids > N.
using NodeId = int32_t;
constexpr NodeId kNoNode = 0;

// Index into the replicated log (0-based). An index is "decided" when every
// entry at position < decided_idx is decided.
using LogIndex = uint64_t;

// Configuration number for reconfiguration (c_0, c_1, ... in the paper).
using ConfigId = uint32_t;

}  // namespace opx

#endif  // SRC_UTIL_TYPES_H_
