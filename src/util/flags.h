// Minimal command-line flag parsing for the tools (no external dependencies).
// Supports --name=value and --name value forms plus boolean --name.
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opx {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name, const std::string& def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::stoll(it->second);
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::stod(it->second);
  }

  bool GetBool(const std::string& name, bool def) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return def;
    }
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace opx

#endif  // SRC_UTIL_FLAGS_H_
