// UniqueFunction — a move-only callable wrapper with inline small-buffer
// storage, built for the simulator's hot event path.
//
// std::function is the wrong tool there twice over: it must be copyable (so
// move-only captures are rejected and every queue copy deep-copies the
// closure), and its small-buffer is ~16 bytes (a simulated message closure —
// {network*, from, to, session, msg} — always spills to the heap). This type
// is move-only and takes an InlineBytes parameter sized by the owner, so the
// common closures of Simulator/Network cost zero mandatory heap allocations;
// oversized or alignment-exotic callables transparently fall back to one
// heap cell.
//
// Only callables with a noexcept move constructor are stored inline — that
// makes UniqueFunction itself nothrow-movable, which containers (the
// simulator's event slab) rely on to relocate slots without copies.
#ifndef SRC_UTIL_UNIQUE_FUNCTION_H_
#define SRC_UTIL_UNIQUE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/check.h"

namespace opx::util {

template <typename Signature, size_t InlineBytes = 48>
class UniqueFunction;  // primary template intentionally undefined

template <typename R, typename... Args, size_t InlineBytes>
class UniqueFunction<R(Args...), InlineBytes> {
 public:
  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (StoredInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InvokeInline<D>;
      manage_ = &ManageInline<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &InvokeHeap<D>;
      manage_ = &ManageHeap<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    OPX_DCHECK(invoke_ != nullptr) << "calling an empty UniqueFunction";
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };

  template <typename D>
  static constexpr bool StoredInline() {
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static R InvokeInline(void* buf, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(buf)))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void ManageInline(Op op, void* self, void* dst) noexcept {
    D* fn = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) {
      ::new (dst) D(std::move(*fn));
    }
    fn->~D();
  }

  template <typename D>
  static R InvokeHeap(void* buf, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(buf)))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void ManageHeap(Op op, void* self, void* dst) noexcept {
    using Cell = D*;
    Cell* cell = std::launder(reinterpret_cast<Cell*>(self));
    if (op == Op::kMoveTo) {
      ::new (dst) Cell(*cell);  // steal the heap cell; no deep move
    } else {
      delete *cell;
    }
    cell->~Cell();
  }

  void MoveFrom(UniqueFunction& other) noexcept {
    if (other.invoke_ == nullptr) {
      return;
    }
    other.manage_(Op::kMoveTo, other.buf_, buf_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes < sizeof(void*) ? sizeof(void*)
                                                                           : InlineBytes];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
};

}  // namespace opx::util

#endif  // SRC_UTIL_UNIQUE_FUNCTION_H_
