// Minimal leveled logging. Off by default so tests and benchmarks stay quiet;
// set OPX_LOG_LEVEL=debug|info|warn|error (environment) or call SetLogLevel.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace opx {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& line);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace opx

#define OPX_LOG(level)                        \
  if (!::opx::LogEnabled(::opx::LogLevel::level)) { \
  } else                                      \
    ::opx::internal::LogMessage(::opx::LogLevel::level)

#define OPX_DLOG OPX_LOG(kDebug)
#define OPX_ILOG OPX_LOG(kInfo)
#define OPX_WLOG OPX_LOG(kWarn)
#define OPX_ELOG OPX_LOG(kError)

#endif  // SRC_UTIL_LOGGING_H_
