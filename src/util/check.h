// Lightweight runtime assertion macros in the spirit of absl/glog CHECK.
//
// Protocol code in this repository is exception-free; invariant violations are
// programming errors and abort the process with a source location and message.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace opx {
namespace internal {

// Terminates the process after printing a formatted failure report. Marked
// noreturn so CHECK can be used in value-returning control flow.
[[noreturn]] inline void CheckFail(const char* file, int line, const char* expr,
                                   const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream collector so call sites can write `CHECK(x) << "context " << v;`.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Consumes a CheckMessage when the condition held; compiles to nothing.
struct CheckVoidify {
  // Accepts both a fresh CheckMessage and the lvalue returned by <<-chains.
  void operator&(const CheckMessage&) {}
};

}  // namespace internal
}  // namespace opx

#define OPX_CHECK(cond)                 \
  (cond) ? (void)0                      \
         : ::opx::internal::CheckVoidify() & \
               ::opx::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define OPX_CHECK_EQ(a, b) OPX_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OPX_CHECK_NE(a, b) OPX_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OPX_CHECK_LT(a, b) OPX_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OPX_CHECK_LE(a, b) OPX_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OPX_CHECK_GT(a, b) OPX_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define OPX_CHECK_GE(a, b) OPX_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)

// Debug-only variants for hot paths (simulator event loop, network fan-out):
// full checks in debug and sanitizer builds, compiled out under NDEBUG. The
// dead `while (false)` form keeps the condition and stream operands
// type-checked (and silences unused-variable warnings) at zero runtime cost.
#ifndef NDEBUG
#define OPX_DCHECK(cond) OPX_CHECK(cond)
#define OPX_DCHECK_EQ(a, b) OPX_CHECK_EQ(a, b)
#define OPX_DCHECK_NE(a, b) OPX_CHECK_NE(a, b)
#define OPX_DCHECK_LT(a, b) OPX_CHECK_LT(a, b)
#define OPX_DCHECK_LE(a, b) OPX_CHECK_LE(a, b)
#define OPX_DCHECK_GT(a, b) OPX_CHECK_GT(a, b)
#define OPX_DCHECK_GE(a, b) OPX_CHECK_GE(a, b)
#else
#define OPX_DCHECK(cond) \
  while (false) OPX_CHECK(cond)
#define OPX_DCHECK_EQ(a, b) \
  while (false) OPX_CHECK_EQ(a, b)
#define OPX_DCHECK_NE(a, b) \
  while (false) OPX_CHECK_NE(a, b)
#define OPX_DCHECK_LT(a, b) \
  while (false) OPX_CHECK_LT(a, b)
#define OPX_DCHECK_LE(a, b) \
  while (false) OPX_CHECK_LE(a, b)
#define OPX_DCHECK_GT(a, b) \
  while (false) OPX_CHECK_GT(a, b)
#define OPX_DCHECK_GE(a, b) \
  while (false) OPX_CHECK_GE(a, b)
#endif

#endif  // SRC_UTIL_CHECK_H_
