// Multi-Paxos baseline (Lamport's Paxos generalized to a log; structured after
// "Paxos made moderately complex" [37] and the frankenpaxos implementation the
// paper benchmarks).
//
// Every server colocates proposer, acceptor, and replica roles. Leadership is
// driven by a failure detector: a follower pings the server it believes leads
// (the pid of the highest ballot it promised); when pings go unanswered for
// the election timeout it increments its ballot and runs Phase 1. Lower-ballot
// Phase 1a/2a messages are NACKed with the higher promised ballot — the
// leader-gossip behaviour behind the chained-scenario livelock (§2c) — and in
// the quorum-loss scenario the only QC server keeps hearing from a live (but
// useless) leader and never takes over, deadlocking the cluster (§7.2).
//
// Within one ballot, accepts are issued in slot order over FIFO links, so an
// acceptor's accepted range per ballot is contiguous and Phase 2b acks carry a
// single watermark (see DESIGN.md; §9 of the paper notes parallel-per-slot vs
// pipelined decisions are performance-equivalent).
#ifndef SRC_MULTIPAXOS_MULTIPAXOS_H_
#define SRC_MULTIPAXOS_MULTIPAXOS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/audit/audit_view.h"
#include "src/multipaxos/messages.h"
#include "src/obs/trace.h"
#include "src/util/quorum.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace opx::mpx {

struct MpxConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> peers;
  // Missed-ping budget before suspecting the leader: the failure-detector
  // timeout in ticks. Randomized by up to +ping_timeout_ticks per suspicion.
  int ping_timeout_ticks = 3;
  size_t batch_limit = 0;
  uint64_t seed = 1;
  // Suspect the (non-existent) initial leader after a single tick — pins the
  // first leader to this server in benchmarks.
  bool fast_first_takeover = false;
  // Optional trace/metrics sink (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

enum class MpxRole { kFollower, kPhase1, kLeader };

class MultiPaxos {
 public:
  explicit MultiPaxos(MpxConfig config);

  MultiPaxos(const MultiPaxos&) = delete;
  MultiPaxos& operator=(const MultiPaxos&) = delete;

  void Tick();  // one heartbeat/FD interval
  void Handle(NodeId from, MpxMessage msg);
  void Reconnected(NodeId peer);

  bool Append(Entry entry);  // accepted only while leader
  std::vector<MpxOut> TakeOutgoing();

  NodeId pid() const { return config_.pid; }
  MpxRole role() const { return role_; }
  bool IsLeader() const { return role_ == MpxRole::kLeader; }
  const Ballot& ballot() const { return ballot_; }
  const Ballot& promised() const { return promised_; }
  NodeId leader_hint() const;
  uint64_t decided_idx() const { return decided_; }
  uint64_t log_len() const { return log_.size(); }
  const std::vector<Entry>& log() const { return log_; }
  uint64_t leader_changes() const { return leader_changes_; }

  // Read-only safety snapshot for the cross-replica auditor.
  audit::AuditView Audit() const;

 private:
  size_t ClusterSize() const { return config_.peers.size() + 1; }
  size_t Majority() const { return util::MajorityOf(ClusterSize()); }

  // Largest W such that every slot < W is either chosen (below the decided
  // watermark) or accepted in ballot `b`. This is the only prefix an acceptor
  // may acknowledge: acknowledging stale-ballot values would let the leader
  // commit a divergent log.
  uint64_t AckWatermark(const Ballot& b) const;

  void SuspectAndTakeOver();
  void StartPhase1();
  void CompletePhase1();
  void FlushProposals();
  void AdvanceCommit();
  void Emit(NodeId to, MpxMessage msg);

  void HandleP1a(NodeId from, const P1a& m);
  void HandleP1b(NodeId from, P1b m);
  void HandleP2a(NodeId from, P2a m);
  void HandleP2b(NodeId from, const P2b& m);
  void HandleNack(NodeId from, const Nack& m);
  void HandleCommit(NodeId from, const Commit& m);
  void HandleLearnReq(NodeId from, const LearnReq& m);
  void HandleLearnResp(NodeId from, LearnResp m);

  MpxConfig config_;
  Rng rng_;

  // Every acceptance records the ballot into max_accepted_ so the auditor can
  // check accepted <= promised without rescanning acc_ballots_.
  void NoteAccepted(const Ballot& b) {
    if (max_accepted_ < b) max_accepted_ = b;
  }

  // Acceptor/replica state. log_ holds accepted values; acc_ballots_[i] is
  // the ballot slot i was accepted in; decided_ is the chosen watermark.
  Ballot promised_;
  std::vector<Entry> log_;
  std::vector<Ballot> acc_ballots_;
  Ballot max_accepted_;  // highest ballot ever written into acc_ballots_
  uint64_t decided_ = 0;

  // Proposer state.
  MpxRole role_ = MpxRole::kFollower;
  Ballot ballot_;            // own ballot (used when leading / taking over)
  Ballot max_seen_;          // highest ballot observed anywhere
  // Ballot of the believed leader, with a confidence grade:
  //  * confirmed (evidence: its Phase 2 / Commit traffic, or we completed
  //    Phase 1 ourselves) — monitored by process-aliveness pings; a live but
  //    deposed leader therefore keeps the quorum-loss scenario deadlocked,
  //    exactly as §7.2 reports;
  //  * provisional (evidence: only a NACK gossiping its ballot) — must
  //    demonstrate leadership (Commit/P2a) within the timeout or be
  //    suspected; this both drives the chained-scenario livelock (the gossiped
  //    leader's commits never reach us across the cut link) and lets the QC
  //    server take over in the constrained-election scenario.
  Ballot active_leader_;
  bool leader_confirmed_ = false;
  std::map<NodeId, P1b> p1_promises_;
  std::map<NodeId, uint64_t> acked_;  // per-acceptor contiguous accept watermark
  std::map<NodeId, uint64_t> sent_;   // next slot to send per acceptor
  bool commit_dirty_ = false;

  // Failure detector.
  int missed_pings_ = 0;
  int phase1_elapsed_ = 0;  // stall counter while soliciting promises
  int suspicion_budget_ = 0;
  bool pong_seen_ = false;

  std::vector<Entry> proposal_queue_;
  uint64_t leader_changes_ = 0;
  std::vector<MpxOut> pending_out_;
};

}  // namespace opx::mpx

#endif  // SRC_MULTIPAXOS_MULTIPAXOS_H_
