#include "src/multipaxos/multipaxos.h"

#include <algorithm>
#include <utility>

#include "src/audit/entry_hash.h"
#include "src/util/check.h"

namespace opx::mpx {

MultiPaxos::MultiPaxos(MpxConfig config) : config_(std::move(config)), rng_(config_.seed) {
  OPX_CHECK_NE(config_.pid, kNoNode);
  ballot_ = Ballot{0, 0, config_.pid};
  suspicion_budget_ =
      config_.ping_timeout_ticks +
      static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(config_.ping_timeout_ticks)));
  if (config_.fast_first_takeover) {
    suspicion_budget_ = 1;
  }
}

NodeId MultiPaxos::leader_hint() const {
  if (IsLeader()) {
    return config_.pid;
  }
  return active_leader_.pid;  // kNoNode until a leader has actively led
}

// ---------------------------------------------------------------------------
// Failure detector (drives takeovers; §2's "equivalent of a failure
// detector" leader election).
// ---------------------------------------------------------------------------

void MultiPaxos::Tick() {
  if (role_ == MpxRole::kLeader) {
    // Leader heartbeat: the commit watermark doubles as the liveness signal
    // followers' failure detectors listen for.
    for (NodeId peer : config_.peers) {
      Emit(peer, Commit{ballot_, decided_});
    }
    return;
  }
  if (role_ == MpxRole::kPhase1) {
    // A stalled Phase 1 (competing candidates or dropped messages) retries
    // with a higher ballot after a timeout, as frankenpaxos proposers do.
    ++phase1_elapsed_;
    if (phase1_elapsed_ >= suspicion_budget_) {
      SuspectAndTakeOver();
      return;
    }
    for (NodeId peer : config_.peers) {
      Emit(peer, P1a{ballot_, decided_});
    }
    return;
  }
  const NodeId target = leader_hint();
  if (target == config_.pid) {
    return;
  }
  if (pong_seen_) {
    missed_pings_ = 0;
  } else {
    ++missed_pings_;
  }
  pong_seen_ = false;
  if (missed_pings_ >= suspicion_budget_) {
    // Either the leader went silent, or no leader has emerged for a full
    // budget (startup / total loss): attempt a takeover.
    SuspectAndTakeOver();
    return;
  }
  if (target != kNoNode) {
    Emit(target, Ping{});
  }
}

void MultiPaxos::SuspectAndTakeOver() {
  missed_pings_ = 0;
  phase1_elapsed_ = 0;
  suspicion_budget_ =
      config_.ping_timeout_ticks +
      static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(config_.ping_timeout_ticks)));
  const uint64_t base = std::max({max_seen_.n, promised_.n, ballot_.n});
  ballot_ = Ballot{base + 1, 0, config_.pid};
  StartPhase1();
}

void MultiPaxos::StartPhase1() {
  role_ = MpxRole::kPhase1;
  OPX_TRACE(config_.obs, obs::EventKind::kMpxPhase1Start, config_.pid, kNoNode,
            omni::ObsBallotKey(ballot_), decided_);
  p1_promises_.clear();
  if (ballot_ > promised_) {
    promised_ = ballot_;
  }
  // Self-promise with our own accepted suffix.
  P1b self;
  self.b = ballot_;
  self.decided = decided_;
  for (uint64_t slot = decided_; slot < log_.size(); ++slot) {
    self.accepted.push_back(SlotValue{slot, acc_ballots_[slot], log_[slot]});
  }
  p1_promises_[config_.pid] = std::move(self);
  for (NodeId peer : config_.peers) {
    Emit(peer, P1a{ballot_, decided_});
  }
  if (p1_promises_.size() >= Majority()) {
    CompletePhase1();
  }
}

// ---------------------------------------------------------------------------
// Phase 1.
// ---------------------------------------------------------------------------

void MultiPaxos::HandleP1a(NodeId from, const P1a& m) {
  max_seen_ = std::max(max_seen_, m.b);
  if (m.b < promised_) {
    Emit(from, Nack{promised_});
    return;
  }
  promised_ = m.b;
  if (role_ != MpxRole::kFollower && m.b > ballot_) {
    role_ = MpxRole::kFollower;  // a higher proposer took over
    if (m.b > active_leader_) {
      active_leader_ = m.b;  // provisional: it has not led anything yet
      leader_confirmed_ = false;
      missed_pings_ = 0;
      pong_seen_ = false;
    }
  }
  // A promise alone is NOT leadership evidence for followers; their failure
  // detector keeps monitoring the last *active* leader.
  P1b reply;
  reply.b = m.b;
  reply.decided = decided_;
  const uint64_t from_slot = std::min<uint64_t>(m.decided, log_.size());
  for (uint64_t slot = from_slot; slot < log_.size(); ++slot) {
    reply.accepted.push_back(SlotValue{slot, acc_ballots_[slot], log_[slot]});
  }
  Emit(from, std::move(reply));
}

void MultiPaxos::HandleP1b(NodeId from, P1b m) {
  max_seen_ = std::max(max_seen_, m.b);
  if (role_ != MpxRole::kPhase1 || m.b != ballot_) {
    return;
  }
  p1_promises_[from] = std::move(m);
  if (p1_promises_.size() >= Majority()) {
    CompletePhase1();
  }
}

void MultiPaxos::CompletePhase1() {
  // Per-slot adoption: keep the highest-ballot accepted value for every slot
  // at or above our chosen watermark; fill holes with no-ops.
  uint64_t max_decided = decided_;
  uint64_t max_slot_end = decided_;
  std::map<uint64_t, SlotValue> best;
  for (const auto& [pid, promise] : p1_promises_) {
    max_decided = std::max(max_decided, promise.decided);
    for (const SlotValue& sv : promise.accepted) {
      if (sv.slot < decided_) {
        continue;
      }
      max_slot_end = std::max(max_slot_end, sv.slot + 1);
      auto [it, inserted] = best.emplace(sv.slot, sv);
      if (!inserted && sv.vballot > it->second.vballot) {
        it->second = sv;
      }
    }
  }
  log_.resize(decided_);
  acc_ballots_.resize(decided_);
  for (uint64_t slot = decided_; slot < max_slot_end; ++slot) {
    auto it = best.find(slot);
    log_.push_back(it != best.end() ? it->second.value : Entry::Command(0, 0));
    acc_ballots_.push_back(ballot_);
  }
  if (max_slot_end > decided_) {
    NoteAccepted(ballot_);
  }
  decided_ = std::min<uint64_t>(max_decided, log_.size());

  role_ = MpxRole::kLeader;
  active_leader_ = ballot_;
  leader_confirmed_ = true;
  ++leader_changes_;
  OPX_TRACE(config_.obs, obs::EventKind::kMpxLeader, config_.pid, config_.pid,
            omni::ObsBallotKey(ballot_), decided_, p1_promises_.size());
  acked_.clear();
  sent_.clear();
  for (NodeId peer : config_.peers) {
    acked_[peer] = 0;
    sent_[peer] = decided_;
  }
  // Re-propose every adopted slot in our ballot, then new proposals.
  FlushProposals();
  for (auto& [peer, next] : sent_) {
    if (next < log_.size()) {
      P2a p2a;
      p2a.b = ballot_;
      p2a.first_slot = next;
      p2a.values.assign(log_.begin() + static_cast<ptrdiff_t>(next), log_.end());
      p2a.commit = decided_;
      next = log_.size();
      Emit(peer, std::move(p2a));
    }
  }
  AdvanceCommit();
}

// ---------------------------------------------------------------------------
// Phase 2.
// ---------------------------------------------------------------------------

uint64_t MultiPaxos::AckWatermark(const Ballot& b) const {
  uint64_t w = std::min<uint64_t>(decided_, log_.size());
  while (w < log_.size() && acc_ballots_[w] == b) {
    ++w;
  }
  return w;
}

void MultiPaxos::HandleP2a(NodeId from, P2a m) {
  max_seen_ = std::max(max_seen_, m.b);
  if (m.b < promised_) {
    Emit(from, Nack{promised_});
    return;
  }
  promised_ = m.b;
  if (role_ != MpxRole::kFollower && m.b > ballot_) {
    role_ = MpxRole::kFollower;
  }
  if (m.b >= active_leader_) {
    active_leader_ = m.b;
    leader_confirmed_ = true;  // live Phase 2 traffic
  }
  missed_pings_ = 0;
  pong_seen_ = true;
  if (m.first_slot > log_.size()) {
    // Gap: accepts were lost while a link was down. Re-fetch from the chosen
    // watermark — everything above it is suspect (it may be an unchosen tail
    // from a previous ballot that the new leader never re-sent).
    Emit(from, LearnReq{decided_});
    return;
  }
  if (!m.values.empty()) {
    NoteAccepted(m.b);
  }
  for (size_t i = 0; i < m.values.size(); ++i) {
    const uint64_t slot = m.first_slot + i;
    if (slot < log_.size()) {
      if (slot >= decided_) {
        log_[slot] = m.values[i];
        acc_ballots_[slot] = m.b;
      }
    } else {
      log_.push_back(m.values[i]);
      acc_ballots_.push_back(m.b);
    }
  }
  // Advance the chosen watermark only over slots we verifiably hold in the
  // current ballot (or already chose); ask for a repair if the leader has
  // chosen beyond what we hold.
  const uint64_t ack = AckWatermark(m.b);
  if (m.commit > decided_) {
    decided_ = std::min<uint64_t>(m.commit, ack);
  }
  if (m.commit > ack) {
    Emit(from, LearnReq{decided_});
  }
  Emit(from, P2b{m.b, ack});
}

void MultiPaxos::HandleP2b(NodeId from, const P2b& m) {
  if (role_ != MpxRole::kLeader || m.b != ballot_) {
    return;
  }
  uint64_t& acked = acked_[from];
  acked = std::max(acked, m.up_to);
  AdvanceCommit();
}

void MultiPaxos::AdvanceCommit() {
  if (role_ != MpxRole::kLeader) {
    return;
  }
  std::vector<uint64_t> marks;
  marks.push_back(log_.size());  // self
  for (const auto& [pid, acked] : acked_) {
    marks.push_back(acked);
  }
  if (marks.size() < Majority()) {
    return;
  }
  std::sort(marks.begin(), marks.end(), std::greater<uint64_t>());
  const uint64_t chosen = marks[Majority() - 1];
  if (chosen > decided_) {
    decided_ = chosen;
    commit_dirty_ = true;
    OPX_TRACE(config_.obs, obs::EventKind::kMpxDecide, config_.pid, kNoNode,
              omni::ObsBallotKey(ballot_), decided_);
  }
}

// ---------------------------------------------------------------------------
// NACKs, commits, gap repair, liveness probes.
// ---------------------------------------------------------------------------

void MultiPaxos::HandleNack(NodeId from, const Nack& m) {
  (void)from;
  max_seen_ = std::max(max_seen_, m.promised);
  if (m.promised > promised_) {
    promised_ = m.promised;
  }
  if (role_ == MpxRole::kLeader && m.promised > ballot_) {
    // An active leader deposed by gossip "observes that the leadership has
    // changed" (§2c): it follows the gossiped ballot's owner, and the failure
    // detector re-bumps if that server is unreachable — the chained-scenario
    // livelock loop.
    role_ = MpxRole::kFollower;
    if (m.promised > active_leader_) {
      active_leader_ = m.promised;  // provisional until it actually leads
      leader_confirmed_ = false;
    }
    missed_pings_ = 0;
    pong_seen_ = false;
  }
  // A Phase-1 candidate just remembers the higher ballot; its stall timeout
  // re-bumps above max_seen_.
}

void MultiPaxos::HandleCommit(NodeId from, const Commit& m) {
  max_seen_ = std::max(max_seen_, m.b);
  if (m.b < promised_) {
    // A stale leader heartbeating: gossip the higher ballot back (the §2c
    // livelock mechanism).
    Emit(from, Nack{promised_});
    return;
  }
  promised_ = m.b;
  if (role_ != MpxRole::kFollower && m.b > ballot_) {
    role_ = MpxRole::kFollower;
  }
  if (m.b >= active_leader_) {
    active_leader_ = m.b;
    leader_confirmed_ = true;  // live Commit traffic
  }
  pong_seen_ = true;
  const uint64_t commit_ack = AckWatermark(m.b);
  if (m.commit > decided_) {
    decided_ = std::min<uint64_t>(m.commit, commit_ack);
  }
  if (m.commit > commit_ack) {
    Emit(from, LearnReq{decided_});
  }
}

void MultiPaxos::HandleLearnReq(NodeId from, const LearnReq& m) {
  if (role_ != MpxRole::kLeader) {
    return;
  }
  // Only the chosen prefix may be shipped: chosen values are immutable, so
  // this is safe even if we are secretly deposed. Shipping the unchosen tail
  // would let a stale leader's values masquerade as current-ballot accepts
  // and poison a later Phase-1 adoption.
  LearnResp resp;
  resp.first_slot = std::min<uint64_t>(m.from_slot, decided_);
  resp.values.assign(log_.begin() + static_cast<ptrdiff_t>(resp.first_slot),
                     log_.begin() + static_cast<ptrdiff_t>(decided_));
  resp.commit = decided_;
  Emit(from, std::move(resp));
}

void MultiPaxos::HandleLearnResp(NodeId from, LearnResp m) {
  (void)from;
  if (role_ == MpxRole::kLeader) {
    return;
  }
  if (m.first_slot > log_.size()) {
    return;  // still a gap before the learned range; retry via LearnReq later
  }
  // The learned range is chosen (≤ the donor's commit watermark); it may
  // overwrite any unchosen local tail. The recorded accept ballot is
  // irrelevant for slots below the decided watermark (Phase 1 never reports
  // them), so the current promise is fine.
  if (!m.values.empty()) {
    NoteAccepted(promised_);
  }
  for (size_t i = 0; i < m.values.size(); ++i) {
    const uint64_t slot = m.first_slot + i;
    if (slot < log_.size()) {
      if (slot >= decided_) {
        log_[slot] = m.values[i];
        acc_ballots_[slot] = promised_;
      }
    } else {
      log_.push_back(m.values[i]);
      acc_ballots_.push_back(promised_);
    }
  }
  const uint64_t learned_end = m.first_slot + m.values.size();
  const uint64_t new_decided = std::min<uint64_t>(m.commit, learned_end);
  if (new_decided > decided_) {
    decided_ = std::min<uint64_t>(new_decided, log_.size());
  }
}

void MultiPaxos::Reconnected(NodeId peer) {
  if (role_ == MpxRole::kLeader) {
    // Re-send everything the peer may have missed.
    auto it = sent_.find(peer);
    if (it != sent_.end() && decided_ < it->second) {
      it->second = decided_;
    }
    return;
  }
  if (peer == leader_hint()) {
    Emit(peer, LearnReq{decided_});
  }
}

// ---------------------------------------------------------------------------
// Proposals and output.
// ---------------------------------------------------------------------------

bool MultiPaxos::Append(Entry entry) {
  if (role_ != MpxRole::kLeader) {
    return false;
  }
  proposal_queue_.push_back(std::move(entry));
  return true;
}

void MultiPaxos::FlushProposals() {
  if (role_ != MpxRole::kLeader) {
    proposal_queue_.clear();
    return;
  }
  size_t budget = config_.batch_limit == 0 ? proposal_queue_.size() : config_.batch_limit;
  size_t taken = 0;
  while (taken < proposal_queue_.size() && budget > 0) {
    log_.push_back(std::move(proposal_queue_[taken]));
    acc_ballots_.push_back(ballot_);
    ++taken;
    --budget;
  }
  proposal_queue_.erase(proposal_queue_.begin(),
                        proposal_queue_.begin() + static_cast<ptrdiff_t>(taken));
  if (taken > 0) {
    NoteAccepted(ballot_);
    if (ClusterSize() == 1) {
      AdvanceCommit();
    }
  }
}

audit::AuditView MultiPaxos::Audit() const {
  audit::AuditView v;
  v.pid = config_.pid;
  v.protocol = "multipaxos";
  v.is_leader = IsLeader();
  // Ballots are unique per (n, pid); two servers may transiently lead under
  // the same n with different pids, so the pid is part of the epoch identity.
  v.leader_epoch = ballot_.n;
  v.leader_owner = ballot_.pid;
  v.promised = audit::EpochOf(promised_);
  v.accepted = audit::EpochOf(max_accepted_);
  v.log_len = log_.size();
  v.decided_idx = decided_;
  v.first_idx = 0;
  v.stop_is_final = false;
  v.ctx = this;
  v.entry_at = [](const void* ctx, LogIndex idx) {
    const auto* self = static_cast<const MultiPaxos*>(ctx);
    return audit::EntryInfo(self->log_[idx]);
  };
  return v;
}

std::vector<MpxOut> MultiPaxos::TakeOutgoing() {
  FlushProposals();
  if (role_ == MpxRole::kLeader) {
    for (auto& [peer, next] : sent_) {
      if (next < log_.size()) {
        P2a p2a;
        p2a.b = ballot_;
        p2a.first_slot = next;
        p2a.values.assign(log_.begin() + static_cast<ptrdiff_t>(next), log_.end());
        p2a.commit = decided_;
        next = log_.size();
        Emit(peer, std::move(p2a));
      } else if (commit_dirty_) {
        Emit(peer, Commit{ballot_, decided_});
      }
    }
    commit_dirty_ = false;
  }
  return std::exchange(pending_out_, {});
}

void MultiPaxos::Emit(NodeId to, MpxMessage msg) {
  pending_out_.push_back(MpxOut{to, std::move(msg)});
}

void MultiPaxos::Handle(NodeId from, MpxMessage msg) {
  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, P1a>) {
          HandleP1a(from, m);
        } else if constexpr (std::is_same_v<T, P1b>) {
          HandleP1b(from, std::move(m));
        } else if constexpr (std::is_same_v<T, P2a>) {
          HandleP2a(from, std::move(m));
        } else if constexpr (std::is_same_v<T, P2b>) {
          HandleP2b(from, m);
        } else if constexpr (std::is_same_v<T, Nack>) {
          HandleNack(from, m);
        } else if constexpr (std::is_same_v<T, Commit>) {
          HandleCommit(from, m);
        } else if constexpr (std::is_same_v<T, LearnReq>) {
          HandleLearnReq(from, m);
        } else if constexpr (std::is_same_v<T, LearnResp>) {
          HandleLearnResp(from, std::move(m));
        } else if constexpr (std::is_same_v<T, Ping>) {
          Emit(from, Pong{});
        } else if constexpr (std::is_same_v<T, Pong>) {
          // Process aliveness satisfies the detector only for a confirmed
          // leader; a provisional one must show actual leadership traffic.
          if (from == leader_hint() && leader_confirmed_) {
            pong_seen_ = true;
          }
        }
      },
      std::move(msg));
}

}  // namespace opx::mpx
