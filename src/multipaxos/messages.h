// Multi-Paxos wire messages ("Paxos made moderately complex" / frankenpaxos
// style): explicit Phase 1/2, per-slot acceptance, NACKs that gossip the
// highest promised ballot, and failure-detector pings.
#ifndef SRC_MULTIPAXOS_MESSAGES_H_
#define SRC_MULTIPAXOS_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"
#include "src/util/types.h"

namespace opx::mpx {

using Ballot = omni::Ballot;
using Entry = omni::Entry;

// Value accepted at one slot, with the ballot it was accepted in.
struct SlotValue {
  uint64_t slot = 0;
  Ballot vballot;
  Entry value;
};

// Phase 1a: a proposer with ballot b asks for promises; `decided` is the
// proposer's chosen watermark so acceptors only ship newer slots back.
struct P1a {
  Ballot b;
  uint64_t decided = 0;
};

// Phase 1b: promise plus every accepted value at slots >= the requested
// watermark, so the new leader can adopt the highest-ballot value per slot.
struct P1b {
  Ballot b;
  std::vector<SlotValue> accepted;
  uint64_t decided = 0;
};

// Phase 2a: ballot-b accept requests for consecutive slots starting at
// first_slot, with the leader's chosen watermark piggybacked.
struct P2a {
  Ballot b;
  uint64_t first_slot = 0;
  std::vector<Entry> values;
  uint64_t commit = 0;
};

// Phase 2b: the acceptor has accepted every slot < up_to in ballot b.
struct P2b {
  Ballot b;
  uint64_t up_to = 0;
};

// Rejection of a lower-ballot P1a/P2a, carrying the higher promised ballot.
// This is the leader-ballot gossip that Table 1 flags — and the mechanism of
// the chained-scenario livelock (§2c).
struct Nack {
  Ballot promised;
};

// Leader → replicas: the chosen watermark advanced.
struct Commit {
  Ballot b;
  uint64_t commit = 0;
};

// Replica → leader: re-send chosen values from `from_slot` (gap repair after
// a disconnect).
struct LearnReq {
  uint64_t from_slot = 0;
};

struct LearnResp {
  uint64_t first_slot = 0;
  std::vector<Entry> values;
  uint64_t commit = 0;
};

// Failure-detector probe: follower → believed leader, answered by Pong.
struct Ping {};
struct Pong {};

using MpxMessage =
    std::variant<P1a, P1b, P2a, P2b, Nack, Commit, LearnReq, LearnResp, Ping, Pong>;

struct MpxOut {
  NodeId to = kNoNode;
  MpxMessage body;
};

inline uint64_t WireBytes(const MpxMessage& m) {
  constexpr uint64_t kHeader = 24;
  return std::visit(
      [&](const auto& msg) -> uint64_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, P1b>) {
          uint64_t bytes = kHeader + 8;
          for (const SlotValue& sv : msg.accepted) {
            bytes += 24 + omni::EntryWireBytes(sv.value);
          }
          return bytes;
        } else if constexpr (std::is_same_v<T, P2a>) {
          return kHeader + 16 + omni::EntriesWireBytes(msg.values);
        } else if constexpr (std::is_same_v<T, LearnResp>) {
          return kHeader + 16 + omni::EntriesWireBytes(msg.values);
        } else if constexpr (std::is_same_v<T, Ping> || std::is_same_v<T, Pong>) {
          return 8;
        } else {
          return kHeader;
        }
      },
      m);
}

}  // namespace opx::mpx

#endif  // SRC_MULTIPAXOS_MESSAGES_H_
