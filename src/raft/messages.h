// Raft wire messages (Ongaro & Ousterhout, USENIX ATC '14), including the
// PreVote extension evaluated as "Raft PV+CQ" in the paper (§7, [24]).
#ifndef SRC_RAFT_MESSAGES_H_
#define SRC_RAFT_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/omnipaxos/entry.h"
#include "src/util/types.h"

namespace opx::raft {

// Raft replicates the same abstract commands as the other protocols; each log
// slot additionally records the term it was appended in.
using Entry = omni::Entry;

struct LogEntry {
  uint64_t term = 0;
  Entry data;

  friend bool operator==(const LogEntry& a, const LogEntry& b) {
    return a.term == b.term && a.data == b.data;
  }
};

struct RequestVote {
  uint64_t term = 0;          // for PreVote: the term the candidate *would* use
  LogIndex last_log_idx = 0;  // length of the candidate's log
  uint64_t last_log_term = 0;
  bool pre_vote = false;
};

struct RequestVoteReply {
  uint64_t term = 0;
  bool granted = false;
  bool pre_vote = false;
};

struct AppendEntries {
  uint64_t term = 0;
  LogIndex prev_idx = 0;  // number of entries preceding `entries`
  uint64_t prev_term = 0;
  std::vector<LogEntry> entries;
  LogIndex commit_idx = 0;
};

struct AppendEntriesReply {
  uint64_t term = 0;
  bool success = false;
  // On success: highest index now matched. On failure: a back-off hint — the
  // follower's log length, letting the leader skip ahead.
  LogIndex match_idx = 0;
};

using RaftMessage =
    std::variant<RequestVote, RequestVoteReply, AppendEntries, AppendEntriesReply>;

struct RaftOut {
  NodeId to = kNoNode;
  RaftMessage body;
};

inline uint64_t WireBytes(const std::vector<LogEntry>& entries) {
  uint64_t total = 0;
  for (const LogEntry& e : entries) {
    total += omni::EntryWireBytes(e.data) + 8;  // +term
  }
  return total;
}

inline uint64_t WireBytes(const RaftMessage& m) {
  constexpr uint64_t kHeader = 24;
  if (const auto* ae = std::get_if<AppendEntries>(&m)) {
    return kHeader + 16 + WireBytes(ae->entries);
  }
  return kHeader;
}

}  // namespace opx::raft

#endif  // SRC_RAFT_MESSAGES_H_
