#include "src/raft/raft.h"

#include <algorithm>
#include <utility>

#include "src/audit/entry_hash.h"
#include "src/util/check.h"

namespace opx::raft {

Raft::Raft(RaftConfig config) : config_(std::move(config)), rng_(config_.seed) {
  OPX_CHECK_NE(config_.pid, kNoNode);
  OPX_CHECK(!config_.voters.empty());
  voters_ = config_.voters;
  OPX_CHECK(InVoters(config_.pid)) << "server must start as a voter";
  log_.reserve(config_.preload_entries);
  for (LogIndex i = 0; i < config_.preload_entries; ++i) {
    log_.push_back(LogEntry{0, Entry::Command(0, config_.preload_payload_bytes)});
  }
  commit_ = config_.preload_entries;
  membership_scan_ = commit_;
  ResetElectionTimer();
  if (config_.fast_first_election) {
    election_elapsed_ = randomized_timeout_ - 1;
  }
}

bool Raft::InVoters(NodeId id) const {
  return std::find(voters_.begin(), voters_.end(), id) != voters_.end();
}

std::vector<NodeId> Raft::ReplicationTargets() const {
  std::vector<NodeId> targets;
  for (NodeId v : voters_) {
    if (v != config_.pid) {
      targets.push_back(v);
    }
  }
  for (NodeId l : learners_) {
    if (l != config_.pid && !InVoters(l)) {
      targets.push_back(l);
    }
  }
  return targets;
}

void Raft::ResetElectionTimer() {
  election_elapsed_ = 0;
  randomized_timeout_ =
      config_.election_ticks +
      static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(config_.election_ticks)));
}

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

void Raft::Tick() {
  if (role_ == RaftRole::kLeader) {
    BroadcastAppends(/*heartbeat=*/true);
    if (config_.check_quorum) {
      ++check_quorum_elapsed_;
      if (check_quorum_elapsed_ >= config_.election_ticks) {
        size_t active = 1;  // self
        for (NodeId v : voters_) {
          if (v != config_.pid && recent_active_.count(v) > 0) {
            ++active;
          }
        }
        recent_active_.clear();
        check_quorum_elapsed_ = 0;
        if (active < Majority()) {
          // CheckQuorum: the leader cannot reach a majority; step down so a
          // connected server can take over [24].
          StepDown(term_);
          leader_ = kNoNode;
        }
      }
    }
    return;
  }
  // Followers and (pre-)candidates run the election timer. Learners that are
  // not voters never start elections.
  if (!InVoters(config_.pid)) {
    return;
  }
  ++election_elapsed_;
  if (election_elapsed_ >= randomized_timeout_) {
    ResetElectionTimer();
    StartElection(config_.pre_vote);
  }
}

void Raft::StartElection(bool pre) {
  if (pre) {
    role_ = RaftRole::kPreCandidate;
    // PreVote probes with term+1 without bumping the real term.
  } else {
    role_ = RaftRole::kCandidate;
    ++term_;
    voted_for_ = config_.pid;
    leader_ = kNoNode;
  }
  votes_granted_.clear();
  votes_granted_.insert(config_.pid);
  OPX_TRACE(config_.obs, obs::EventKind::kRaftElectionStart, config_.pid, kNoNode,
            pre ? term_ + 1 : term_, log_.size(), /*aux=*/pre ? 1 : 0);
  if (votes_granted_.size() >= Majority()) {  // single-voter cluster
    if (pre) {
      StartElection(/*pre=*/false);
    } else {
      BecomeLeader();
    }
    return;
  }
  RequestVote rv;
  rv.term = pre ? term_ + 1 : term_;
  rv.last_log_idx = log_.size();
  rv.last_log_term = LastLogTerm();
  rv.pre_vote = pre;
  for (NodeId v : voters_) {
    if (v != config_.pid) {
      Emit(v, rv);
    }
  }
}

void Raft::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_ = config_.pid;
  OPX_TRACE(config_.obs, obs::EventKind::kRaftLeader, config_.pid, config_.pid, term_,
            log_.size());
  next_send_.clear();
  match_.clear();
  inflight_.clear();
  recent_active_.clear();
  check_quorum_elapsed_ = 0;
  for (NodeId t : ReplicationTargets()) {
    next_send_[t] = log_.size();
    match_[t] = 0;
    inflight_[t] = 0;
  }
  // Commit a no-op to establish leadership over prior-term entries (§5.4.2 of
  // the Raft paper).
  log_.push_back(LogEntry{term_, Entry::Command(0, 0)});
  BroadcastAppends(/*heartbeat=*/false);
}

void Raft::StepDown(uint64_t new_term) {
  OPX_CHECK_GE(new_term, term_);
  if (role_ == RaftRole::kLeader) {
    OPX_TRACE(config_.obs, obs::EventKind::kRaftStepDown, config_.pid, kNoNode,
              new_term, log_.size(), /*aux=*/term_);
  }
  if (new_term > term_) {
    term_ = new_term;
    voted_for_ = kNoNode;
  }
  role_ = RaftRole::kFollower;
  votes_granted_.clear();
  ResetElectionTimer();
}

// ---------------------------------------------------------------------------
// Elections.
// ---------------------------------------------------------------------------

void Raft::HandleRequestVote(NodeId from, const RequestVote& m) {
  const bool log_up_to_date =
      m.last_log_term > LastLogTerm() ||
      (m.last_log_term == LastLogTerm() && m.last_log_idx >= log_.size());

  if (m.pre_vote) {
    // Grant without mutating state. Deny if we have a live leader (lease
    // check): that is what stops disruptive rejoining servers.
    const bool leader_alive = leader_ != kNoNode && election_elapsed_ < config_.election_ticks;
    const bool grant = m.term >= term_ && log_up_to_date && !leader_alive;
    Emit(from, RequestVoteReply{m.term, grant, /*pre_vote=*/true});
    return;
  }
  if (config_.check_quorum && leader_ != kNoNode &&
      election_elapsed_ < config_.election_ticks) {
    // Leader-stickiness (Raft thesis §4.2.3, enabled with CheckQuorum as in
    // TiKV): ignore votes while we believe a leader is alive, so removed or
    // partitioned servers cannot depose a healthy leader.
    return;
  }
  if (m.term > term_) {
    StepDown(m.term);
    leader_ = kNoNode;
  }
  bool grant = false;
  if (m.term == term_ && (voted_for_ == kNoNode || voted_for_ == from) && log_up_to_date) {
    grant = true;
    voted_for_ = from;
    ResetElectionTimer();
  }
  Emit(from, RequestVoteReply{term_, grant, /*pre_vote=*/false});
}

void Raft::HandleVoteReply(NodeId from, const RequestVoteReply& m) {
  if (m.pre_vote) {
    if (role_ != RaftRole::kPreCandidate || m.term != term_ + 1) {
      return;
    }
    if (m.granted) {
      votes_granted_.insert(from);
      if (votes_granted_.size() >= Majority()) {
        StartElection(/*pre=*/false);
      }
    }
    return;
  }
  if (m.term > term_) {
    StepDown(m.term);
    leader_ = kNoNode;
    return;
  }
  if (role_ != RaftRole::kCandidate || m.term != term_) {
    return;
  }
  if (m.granted) {
    votes_granted_.insert(from);
    if (votes_granted_.size() >= Majority()) {
      BecomeLeader();
    }
  }
}

// ---------------------------------------------------------------------------
// Log replication.
// ---------------------------------------------------------------------------

void Raft::BroadcastAppends(bool heartbeat) {
  for (NodeId t : ReplicationTargets()) {
    SendAppend(t, heartbeat);
  }
}

void Raft::SendAppend(NodeId peer, bool heartbeat) {
  if (role_ != RaftRole::kLeader) {
    return;  // deposed mid-handling (e.g., replaced by a committed change)
  }
  auto next_it = next_send_.find(peer);
  if (next_it == next_send_.end()) {
    return;  // no longer a replication target
  }
  LogIndex& next = next_it->second;
  const bool has_payload = next < log_.size();
  if (!has_payload && !heartbeat) {
    return;
  }
  if (has_payload && inflight_[peer] >= config_.max_inflight_chunks) {
    if (heartbeat) {
      // Keep the follower's election timer fed even while throttled.
      AppendEntries hb;
      hb.term = term_;
      hb.prev_idx = next;
      hb.prev_term = next == 0 ? 0 : log_[next - 1].term;
      hb.commit_idx = commit_;
      Emit(peer, std::move(hb));
    }
    return;
  }
  AppendEntries ae;
  ae.term = term_;
  ae.prev_idx = next;
  ae.prev_term = next == 0 ? 0 : log_[next - 1].term;
  ae.commit_idx = commit_;
  if (has_payload) {
    const size_t count = std::min(config_.max_batch_entries,
                                  static_cast<size_t>(log_.size() - next));
    ae.entries.assign(log_.begin() + static_cast<ptrdiff_t>(next),
                      log_.begin() + static_cast<ptrdiff_t>(next + count));
    next += count;
    ++inflight_[peer];
  }
  Emit(peer, std::move(ae));
}

void Raft::HandleAppendEntries(NodeId from, AppendEntries m) {
  if (m.term < term_) {
    // Rejecting with our higher term is the "leader vote gossiping" that
    // Table 1 attributes to Raft; it deposes the stale leader.
    Emit(from, AppendEntriesReply{term_, false, log_.size()});
    return;
  }
  if (m.term > term_ || role_ != RaftRole::kFollower) {
    StepDown(m.term);
  }
  leader_ = from;
  election_elapsed_ = 0;

  if (m.prev_idx > log_.size()) {
    // Missing entries before prev_idx; hint our length so the leader skips
    // straight back.
    Emit(from, AppendEntriesReply{term_, false, log_.size()});
    return;
  }
  if (m.prev_idx > 0 && log_[m.prev_idx - 1].term != m.prev_term) {
    OPX_CHECK_GT(m.prev_idx, commit_) << "conflict below commit";
    Emit(from, AppendEntriesReply{term_, false, m.prev_idx - 1});
    return;
  }
  // Append, truncating at the first conflicting entry.
  LogIndex idx = m.prev_idx;
  size_t offset = 0;
  while (offset < m.entries.size() && idx < log_.size()) {
    if (log_[idx].term != m.entries[offset].term) {
      OPX_CHECK_GE(idx, commit_) << "conflict below commit";
      log_.resize(idx);
      break;
    }
    ++idx;
    ++offset;
  }
  for (; offset < m.entries.size(); ++offset) {
    log_.push_back(m.entries[offset]);
  }
  const LogIndex new_commit =
      std::min<LogIndex>(m.commit_idx, m.prev_idx + m.entries.size());
  if (new_commit > commit_) {
    commit_ = std::min<LogIndex>(new_commit, log_.size());
    ApplyMembershipIfCommitted();
  }
  Emit(from, AppendEntriesReply{term_, true, m.prev_idx + m.entries.size()});
}

void Raft::HandleAppendReply(NodeId from, const AppendEntriesReply& m) {
  if (m.term > term_) {
    StepDown(m.term);
    leader_ = kNoNode;
    return;
  }
  if (role_ != RaftRole::kLeader || m.term != term_) {
    return;
  }
  recent_active_.insert(from);
  auto it = next_send_.find(from);
  if (it == next_send_.end()) {
    return;  // no longer a replication target
  }
  if (m.success) {
    if (inflight_[from] > 0) {
      --inflight_[from];
    }
    LogIndex& match = match_[from];
    match = std::max(match, m.match_idx);
    MaybeCommit();
    // Keep the backfill pipeline moving.
    SendAppend(from, /*heartbeat=*/false);
  } else {
    inflight_[from] = 0;
    it->second = std::min(it->second, m.match_idx);
    SendAppend(from, /*heartbeat=*/false);
  }
}

void Raft::MaybeCommit() {
  // Highest index replicated on a majority of voters whose entry is from the
  // current term (Raft's commit restriction, §5.4.2).
  std::vector<LogIndex> matches;
  for (NodeId v : voters_) {
    if (v == config_.pid) {
      matches.push_back(log_.size());
    } else {
      auto it = match_.find(v);
      matches.push_back(it == match_.end() ? 0 : it->second);
    }
  }
  std::sort(matches.begin(), matches.end(), std::greater<LogIndex>());
  const LogIndex candidate = matches[Majority() - 1];
  if (candidate > commit_ && candidate <= log_.size() && log_[candidate - 1].term == term_) {
    commit_ = candidate;
    OPX_TRACE(config_.obs, obs::EventKind::kRaftCommit, config_.pid, kNoNode, term_,
              commit_);
    ApplyMembershipIfCommitted();
  }
}

// ---------------------------------------------------------------------------
// Membership change.
// ---------------------------------------------------------------------------

bool Raft::ProposeMembership(std::vector<NodeId> next_nodes) {
  if (role_ != RaftRole::kLeader || membership_entry_idx_ != 0) {
    return false;
  }
  omni::StopSign change;
  change.next_nodes = next_nodes;
  log_.push_back(LogEntry{term_, Entry::Stop(std::move(change))});
  membership_entry_idx_ = log_.size();
  // Fresh servers start as learners and are caught up by this leader — the
  // leader-based log migration the paper contrasts with (Fig. 6a).
  for (NodeId n : next_nodes) {
    if (n != config_.pid && !InVoters(n)) {
      learners_.insert(n);
      next_send_.emplace(n, 0);
      match_.emplace(n, 0);
      inflight_.emplace(n, 0);
    }
  }
  BroadcastAppends(/*heartbeat=*/false);
  return true;
}

void Raft::ApplyMembershipIfCommitted() {
  // Scan newly committed entries for membership changes (covers followers
  // learning the change via AppendEntries). Log truncation cannot reach below
  // commit_, so the scan cursor never goes backwards.
  LogIndex found = 0;
  for (LogIndex idx = membership_scan_; idx < commit_; ++idx) {
    if (log_[idx].data.IsStopSign()) {
      found = idx + 1;
    }
  }
  membership_scan_ = commit_;
  if (found != 0) {
    const std::vector<NodeId>& next = log_[found - 1].data.stop_sign->next_nodes;
    voters_ = next;
    committed_membership_ = voters_;
    learners_.clear();
    membership_entry_idx_ = 0;
    if (role_ == RaftRole::kLeader) {
      // Drop replication state for servers outside the new configuration.
      for (auto it = next_send_.begin(); it != next_send_.end();) {
        if (!InVoters(it->first)) {
          match_.erase(it->first);
          inflight_.erase(it->first);
          it = next_send_.erase(it);
        } else {
          ++it;
        }
      }
      if (!InVoters(config_.pid)) {
        // Replaced leader: relinquish after committing the change.
        StepDown(term_);
        leader_ = kNoNode;
      }
    }
  }
}

std::optional<std::vector<NodeId>> Raft::CommittedMembership() const {
  return committed_membership_;
}

// ---------------------------------------------------------------------------
// Proposals and output.
// ---------------------------------------------------------------------------

bool Raft::Append(Entry entry) {
  if (role_ != RaftRole::kLeader) {
    return false;
  }
  proposal_queue_.push_back(std::move(entry));
  return true;
}

void Raft::FlushProposals() {
  if (role_ != RaftRole::kLeader || proposal_queue_.empty()) {
    proposal_queue_.clear();  // drop anything queued while deposed
    return;
  }
  size_t budget = config_.batch_limit == 0 ? proposal_queue_.size() : config_.batch_limit;
  size_t taken = 0;
  while (taken < proposal_queue_.size() && budget > 0) {
    log_.push_back(LogEntry{term_, std::move(proposal_queue_[taken])});
    ++taken;
    --budget;
  }
  proposal_queue_.erase(proposal_queue_.begin(),
                        proposal_queue_.begin() + static_cast<ptrdiff_t>(taken));
  if (taken > 0) {
    BroadcastAppends(/*heartbeat=*/false);
    MaybeCommit();  // single-voter clusters commit immediately
  }
}

std::vector<RaftOut> Raft::TakeOutgoing() {
  FlushProposals();
  return std::exchange(pending_out_, {});
}

audit::AuditView Raft::Audit() const {
  audit::AuditView v;
  v.pid = config_.pid;
  v.protocol = "raft";
  v.is_leader = IsLeader();
  // Raft terms have no designated owner; uniqueness within the term is the
  // whole safety property (Election Safety), so leader_owner stays kNoNode.
  v.leader_epoch = term_;
  v.leader_owner = kNoNode;
  v.promised = audit::AuditEpoch{term_, 0, kNoNode};
  // A log entry's term never exceeds the term of the server holding it (the
  // AppendEntries term check), which is the Raft analogue of accepted <=
  // promised.
  v.accepted = audit::AuditEpoch{LastLogTerm(), 0, kNoNode};
  v.log_len = log_.size();
  v.decided_idx = commit_;
  v.first_idx = 0;
  // Raft keeps committing after membership-change entries, so stop-signs are
  // not final here.
  v.stop_is_final = false;
  v.ctx = this;
  v.entry_at = [](const void* ctx, LogIndex idx) {
    const auto* self = static_cast<const Raft*>(ctx);
    const LogEntry& e = self->log_[idx];
    // Committed replicas must agree on term as well as content (Log
    // Matching), so the term folds into the hash.
    audit::AuditEntryInfo info = audit::EntryInfo(e.data);
    info.hash = audit::HashMix(info.hash, e.term);
    return info;
  };
  return v;
}

void Raft::Emit(NodeId to, RaftMessage msg) {
  pending_out_.push_back(RaftOut{to, std::move(msg)});
}

void Raft::Handle(NodeId from, RaftMessage msg) {
  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestVote>) {
          HandleRequestVote(from, m);
        } else if constexpr (std::is_same_v<T, RequestVoteReply>) {
          HandleVoteReply(from, m);
        } else if constexpr (std::is_same_v<T, AppendEntries>) {
          HandleAppendEntries(from, std::move(m));
        } else if constexpr (std::is_same_v<T, AppendEntriesReply>) {
          HandleAppendReply(from, m);
        }
      },
      std::move(msg));
}

}  // namespace opx::raft
