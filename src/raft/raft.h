// Raft consensus (Ongaro & Ousterhout, 2014) — the primary baseline of the
// paper's evaluation (§7), in the style of the TiKV raft library:
//
//  * randomized election timeouts in [T, 2T),
//  * optional PreVote: probe electability without disrupting the term,
//  * optional CheckQuorum: a leader steps down when it has not heard from a
//    majority within an election timeout (together: "Raft PV+CQ" [24]),
//  * single-step membership change with learner catch-up, where the *leader*
//    transfers the full log to fresh servers (the behaviour contrasted with
//    Omni-Paxos' parallel service-layer migration in Fig. 9).
//
// Pull-based, like every protocol here: Tick() advances logical time one
// heartbeat interval; Handle() consumes messages; TakeOutgoing() drains sends.
#ifndef SRC_RAFT_RAFT_H_
#define SRC_RAFT_RAFT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/audit/audit_view.h"
#include "src/obs/trace.h"
#include "src/raft/messages.h"
#include "src/util/quorum.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace opx::raft {

enum class RaftRole { kFollower, kPreCandidate, kCandidate, kLeader };

struct RaftConfig {
  NodeId pid = kNoNode;
  std::vector<NodeId> voters;  // initial voting membership, including pid
  bool pre_vote = false;
  bool check_quorum = false;
  // Election timeout in ticks; the actual timeout is randomized per election
  // in [election_ticks, 2*election_ticks). Heartbeats go out every tick.
  int election_ticks = 5;
  // Max entries per AppendEntries message (backfill chunk size).
  size_t max_batch_entries = 4096;
  // Max un-acknowledged AppendEntries chunks per follower.
  int max_inflight_chunks = 4;
  // Leader-side cap on proposals accepted into the log per flush; 0 = none.
  size_t batch_limit = 0;
  uint64_t seed = 1;
  // Fires this server's first election timeout after a single tick — used by
  // harnesses to pin the initial leader (e.g., colocating it with the client
  // as the paper's WAN deployment does).
  bool fast_first_election = false;
  // Pre-populates the log with `preload_entries` committed term-0 commands;
  // models a long-running cluster for the reconfiguration experiments (§7.3).
  LogIndex preload_entries = 0;
  uint32_t preload_payload_bytes = 8;
  // Optional trace/metrics sink (DESIGN.md §12); nullptr records nothing.
  obs::ObsSink* obs = nullptr;
};

class Raft {
 public:
  explicit Raft(RaftConfig config);

  Raft(const Raft&) = delete;
  Raft& operator=(const Raft&) = delete;

  // --- Inputs -------------------------------------------------------------
  void Tick();  // one heartbeat interval
  void Handle(NodeId from, RaftMessage msg);

  // Client proposal; only leaders accept. Returns false otherwise (the
  // client retries against LeaderHint()).
  bool Append(Entry entry);

  // Proposes a membership change to `next_nodes` (replaces the voter set).
  // New servers immediately become learners and are caught up by the leader;
  // the voter set switches when the change entry commits.
  bool ProposeMembership(std::vector<NodeId> next_nodes);

  // --- Outputs --------------------------------------------------------------
  std::vector<RaftOut> TakeOutgoing();

  // --- Observers ------------------------------------------------------------
  NodeId pid() const { return config_.pid; }
  RaftRole role() const { return role_; }
  bool IsLeader() const { return role_ == RaftRole::kLeader; }
  uint64_t term() const { return term_; }
  NodeId leader_hint() const { return leader_; }
  LogIndex commit_idx() const { return commit_; }
  LogIndex log_len() const { return log_.size(); }
  const std::vector<LogEntry>& log() const { return log_; }
  const std::vector<NodeId>& voters() const { return voters_; }
  const std::set<NodeId>& learners() const { return learners_; }
  bool InVoters(NodeId id) const;
  // Index just past the last committed membership-change entry, if any.
  std::optional<std::vector<NodeId>> CommittedMembership() const;

  // Read-only safety snapshot for the cross-replica auditor.
  audit::AuditView Audit() const;

 private:
  size_t Majority() const { return util::MajorityOf(voters_.size()); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }

  void ResetElectionTimer();
  void StartElection(bool pre);
  void BecomeLeader();
  void StepDown(uint64_t new_term);
  void BroadcastAppends(bool heartbeat);
  void SendAppend(NodeId peer, bool heartbeat);
  void MaybeCommit();
  void ApplyMembershipIfCommitted();
  void FlushProposals();
  void Emit(NodeId to, RaftMessage msg);
  std::vector<NodeId> ReplicationTargets() const;  // voters + learners, minus self

  void HandleRequestVote(NodeId from, const RequestVote& m);
  void HandleVoteReply(NodeId from, const RequestVoteReply& m);
  void HandleAppendEntries(NodeId from, AppendEntries m);
  void HandleAppendReply(NodeId from, const AppendEntriesReply& m);

  RaftConfig config_;
  Rng rng_;

  uint64_t term_ = 0;
  NodeId voted_for_ = kNoNode;
  std::vector<LogEntry> log_;
  LogIndex commit_ = 0;

  RaftRole role_ = RaftRole::kFollower;
  NodeId leader_ = kNoNode;
  std::vector<NodeId> voters_;
  std::set<NodeId> learners_;
  LogIndex membership_entry_idx_ = 0;  // in-flight change entry (1-based; 0 = none)
  LogIndex membership_scan_ = 0;       // commit prefix already scanned for changes
  std::optional<std::vector<NodeId>> committed_membership_;

  int election_elapsed_ = 0;
  int randomized_timeout_ = 0;
  std::set<NodeId> votes_granted_;

  // Leader replication state.
  std::map<NodeId, LogIndex> next_send_;  // next log offset to ship
  std::map<NodeId, LogIndex> match_;      // highest replicated offset
  std::map<NodeId, int> inflight_;        // outstanding non-heartbeat chunks
  std::set<NodeId> recent_active_;        // CheckQuorum window
  int check_quorum_elapsed_ = 0;

  std::vector<Entry> proposal_queue_;
  std::vector<RaftOut> pending_out_;
};

}  // namespace opx::raft

#endif  // SRC_RAFT_RAFT_H_
