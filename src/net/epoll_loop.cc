#include "src/net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace opx::net {
namespace {

// epoll_data packs (fd, generation) so a dispatch can detect that the watch
// it refers to was removed — or removed and the fd number reused — by an
// earlier handler in the same ready batch.
uint64_t PackTag(int fd, uint64_t gen) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) | (gen & 0xFFFFFFFFu);
}
int TagFd(uint64_t tag) { return static_cast<int>(tag >> 32); }
uint64_t TagGen(uint64_t tag) { return tag & 0xFFFFFFFFu; }

}  // namespace

EpollLoop::EpollLoop() { epoll_fd_ = epoll_create1(EPOLL_CLOEXEC); }

EpollLoop::~EpollLoop() {
  for (const auto& [fd, watch] : watches_) {
    if (watch->is_timer) {
      close(fd);  // timerfds are owned by the loop; I/O fds by the caller
    }
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

bool EpollLoop::Add(int fd, IoHandler handler) {
  if (epoll_fd_ < 0 || fd < 0) {
    return false;
  }
  const uint64_t gen = next_gen_++ & 0xFFFFFFFFu;  // matches the 32-bit tag field
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
  ev.data.u64 = PackTag(fd, gen);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return false;
  }
  auto w = std::make_unique<Watch>();
  w->gen = gen;
  w->is_timer = false;
  w->on_io = std::move(handler);
  watches_[fd] = std::move(w);
  return true;
}

void EpollLoop::Remove(int fd) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    return;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (dispatching_) {
    graveyard_.push_back(std::move(it->second));
  }
  watches_.erase(it);
}

int EpollLoop::AddTimer(Time period, TimerHandler handler) {
  if (epoll_fd_ < 0 || period <= 0) {
    return -1;
  }
  const int fd = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (fd < 0) {
    return -1;
  }
  itimerspec spec{};
  spec.it_interval.tv_sec = period / 1'000'000'000;
  spec.it_interval.tv_nsec = period % 1'000'000'000;
  spec.it_value = spec.it_interval;
  if (timerfd_settime(fd, 0, &spec, nullptr) != 0) {
    close(fd);
    return -1;
  }
  const uint64_t gen = next_gen_++ & 0xFFFFFFFFu;  // matches the 32-bit tag field
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = PackTag(fd, gen);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    close(fd);
    return -1;
  }
  auto w = std::make_unique<Watch>();
  w->gen = gen;
  w->is_timer = true;
  w->on_timer = std::move(handler);
  watches_[fd] = std::move(w);
  return fd;
}

void EpollLoop::CancelTimer(int timer_fd) {
  auto it = watches_.find(timer_fd);
  if (it == watches_.end() || !it->second->is_timer) {
    return;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, timer_fd, nullptr);
  close(timer_fd);
  if (dispatching_) {
    graveyard_.push_back(std::move(it->second));
  }
  watches_.erase(it);
}

int EpollLoop::Wait(int timeout_ms) {
  if (epoll_fd_ < 0) {
    return -1;
  }
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  // The one sanctioned wait: this epoll_wait IS the event loop's readiness
  // gate (the successor of the old poll(), DESIGN.md §14).
  const int ready = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);  // NOLINT(opx-blocking-in-loop)
  if (ready <= 0) {
    return ready == 0 || errno == EINTR ? 0 : -1;
  }
  dispatching_ = true;
  int dispatched = 0;
  for (int i = 0; i < ready; ++i) {
    const int fd = TagFd(events[i].data.u64);
    auto it = watches_.find(fd);
    // Stale tag: the watch was removed (or removed and the fd reused, which
    // changes the generation) by an earlier handler in this batch.
    if (it == watches_.end() || it->second->gen != TagGen(events[i].data.u64)) {
      continue;
    }
    Watch& w = *it->second;
    if (w.is_timer) {
      // Drain the expiry count (edge-triggered); missed periods coalesce
      // into one firing. The timerfd is TFD_NONBLOCK, so this read never
      // waits — it returns EAGAIN when the timer already drained.
      uint64_t expirations = 0;
      const ssize_t n = read(fd, &expirations, sizeof(expirations));  // NOLINT(opx-blocking-in-loop)
      if (n == sizeof(expirations) && expirations > 0) {
        ++dispatched;
        w.on_timer();
      }
      continue;
    }
    uint32_t bits = 0;
    if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
      bits |= kError;
    }
    if ((events[i].events & EPOLLIN) != 0) {
      bits |= kReadable;
    }
    if ((events[i].events & EPOLLOUT) != 0) {
      bits |= kWritable;
    }
    if (bits != 0) {
      ++dispatched;
      w.on_io(bits);
    }
  }
  dispatching_ = false;
  graveyard_.clear();
  return dispatched;
}

}  // namespace opx::net
