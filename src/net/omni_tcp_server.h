// A complete Omni-Paxos server over real TCP: protocol state machine +
// durable WAL storage + transport + a small client API, driven by one
// single-threaded event loop. This is what `tools/omni_node` runs, and what
// a downstream user embeds to deploy an actual cluster.
//
// Client API (frames over the same listen port, after a kHelloClient hello):
//   -> [0x01][u64 cmd_id][u32 payload_bytes]     append request
//   <- [0x02][u32 n][u64 cmd_id × n]             decided batch (pushed)
//   -> [0x03]                                    status request
//   <- [0x04][u32 leader][u64 decided][u64 len][u8 is_leader]
//   <- [0x05][u32 leader]                        redirect (not leader)
//   -> [0x06][u64 read_id][u64 watermark]        lease read request
//   <- [0x07][u64 read_id][u64 decided][u8 served][u32 leader]
//
// Append requests are admitted into the proposal queue as they arrive but
// flushed into accepts once per event-loop pass (StepOnce's Pump) — request
// batching: a burst of appends becomes one <AcceptDecide> fan-out. Lease
// reads (0x06) are served locally, with no log append, when this server
// leads AND still holds the BLE quorum-connectivity lease AND its decided
// index covers the client's read-your-writes watermark (DESIGN.md §15).
#ifndef SRC_NET_OMNI_TCP_SERVER_H_
#define SRC_NET_OMNI_TCP_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/net/tcp_transport.h"
#include "src/obs/trace.h"
#include "src/omnipaxos/durable_storage.h"
#include "src/omnipaxos/omni_paxos.h"

namespace opx::net {

struct ServerOptions {
  NodeId id = kNoNode;
  uint16_t listen_port = 0;  // 0 = ephemeral
  std::map<NodeId, Endpoint> peers;
  std::string wal_path;  // empty = volatile in-memory storage
  Time election_timeout = Millis(100);
  uint32_t ble_priority = 0;
  // Leader-side cap on proposals moved into the log per flush; 0 = unlimited
  // (one flush per event-loop pass is already a batch).
  uint64_t batch_limit = 0;
  // Automatic log-compaction watermark in entries (0 = never trim). With a
  // WAL, trims are journaled and survive recovery (DESIGN.md §15).
  uint64_t trim_watermark = 0;
  // BLE lease length in heartbeat rounds for local reads; 0 disables the
  // lease (0x06 requests are then always bounced).
  uint64_t lease_rounds = 1;
  // Optional observability sink: wires the transport's net.* instruments
  // (bytes/frames in+out, writev batch histograms, reconnects). Never
  // affects protocol behavior; must outlive the server.
  obs::ObsSink* obs = nullptr;
};

class OmniTcpServer {
 public:
  explicit OmniTcpServer(ServerOptions options);
  ~OmniTcpServer();

  OmniTcpServer(const OmniTcpServer&) = delete;
  OmniTcpServer& operator=(const OmniTcpServer&) = delete;

  // Opens (or recovers) storage and starts listening. False on bind failure.
  bool Start();

  // Runs the event loop until `stop` becomes true.
  void Run(const std::atomic<bool>& stop);

  // One loop iteration: one epoll pass (≤ timeout_ms; election ticks fire
  // from a timerfd inside the same wait), pump protocol output, push decided
  // entries to clients, flush send queues.
  void StepOnce(int timeout_ms);

  uint16_t listen_port() const { return transport_->listen_port(); }
  bool IsLeader() const { return node_->IsLeader(); }
  NodeId leader_hint() const { return node_->leader_hint(); }
  LogIndex decided_idx() const { return node_->decided_idx(); }

 private:
  void OnPeerMessage(NodeId from, omni::OmniMessage msg);
  void OnClientFrame(uint64_t client, const uint8_t* data, size_t len);
  void Pump();

  ServerOptions options_;
  std::unique_ptr<omni::Storage> storage_;
  std::unique_ptr<omni::OmniPaxos> node_;
  std::unique_ptr<TcpTransport> transport_;
  std::set<uint64_t> clients_;
  LogIndex pushed_ = 0;   // decided entries already pushed to clients
  int tick_timer_ = -1;   // election timerfd inside the transport's loop
#if defined(OPX_OBS_ENABLED)
  obs::Counter* lease_reads_ctr_ = nullptr;
#endif
};

}  // namespace opx::net

#endif  // SRC_NET_OMNI_TCP_SERVER_H_
