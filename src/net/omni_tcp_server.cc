#include "src/net/omni_tcp_server.h"

#include <chrono>
#include <cstdio>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace opx::net {
namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

OmniTcpServer::OmniTcpServer(ServerOptions options) : options_(std::move(options)) {
  OPX_CHECK_NE(options_.id, kNoNode);
}

OmniTcpServer::~OmniTcpServer() = default;

bool OmniTcpServer::Start() {
  bool recovered = false;
  if (options_.wal_path.empty()) {
    storage_ = std::make_unique<omni::Storage>();
  } else {
    auto from_disk = omni::DurableStorage::Recover(options_.wal_path);
    if (from_disk != nullptr) {
      recovered = true;
      storage_ = std::move(from_disk);
      OPX_ILOG << "server " << options_.id << ": recovered WAL, log_len="
               << storage_->log_len() << " decided=" << storage_->decided_idx();
    } else {
      storage_ = omni::DurableStorage::Create(options_.wal_path);
    }
  }

  omni::OmniConfig cfg;
  cfg.pid = options_.id;
  for (const auto& [peer, endpoint] : options_.peers) {
    cfg.peers.push_back(peer);
  }
  cfg.ble_priority = options_.ble_priority;
  cfg.batch_limit = options_.batch_limit;
  cfg.trim_watermark = options_.trim_watermark;
  cfg.lease_rounds = options_.lease_rounds;
  cfg.obs = options_.obs;
  node_ = std::make_unique<omni::OmniPaxos>(cfg, storage_.get(), recovered);
  pushed_ = storage_->decided_idx();

  transport_ = std::make_unique<TcpTransport>(options_.id, options_.listen_port,
                                              options_.peers);
  transport_->set_message_handler(
      [this](NodeId from, omni::OmniMessage msg) { OnPeerMessage(from, std::move(msg)); });
  transport_->set_reconnect_handler([this](NodeId peer) {
    node_->Reconnected(peer);
    Pump();
  });
  transport_->set_client_frame_handler(
      [this](uint64_t client, const uint8_t* data, size_t len) {
        OnClientFrame(client, data, len);
      });
  transport_->set_client_closed_handler([this](uint64_t client) { clients_.erase(client); });
  if (options_.obs != nullptr) {
    transport_->WireObs(&options_.obs->metrics());
#if defined(OPX_OBS_ENABLED)
    lease_reads_ctr_ = options_.obs->metrics().GetCounter("srv/lease_reads");
#endif
  }
  if (!transport_->Start()) {
    return false;
  }
  // Election ticks ride a timerfd in the transport's epoll wait; missed
  // periods coalesce into one firing (the old loop's catch-up reset).
  tick_timer_ = transport_->loop().AddTimer(options_.election_timeout, [this] {
    // Push already-decided entries to clients before the tick: TickElection
    // may auto-trim up to the decided index, and a trimmed entry can no
    // longer be read back for the 0x02 batch.
    Pump();
    node_->TickElection();
    Pump();
  });
  return tick_timer_ >= 0;
}

void OmniTcpServer::StepOnce(int timeout_ms) {
  // The tick timerfd interrupts the wait, so the full timeout is available;
  // Poll() ends with a flush, and the trailing one covers this Pump.
  transport_->Poll(timeout_ms);
  Pump();
  transport_->Flush();
}

void OmniTcpServer::Run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    StepOnce(20);
  }
}

void OmniTcpServer::OnPeerMessage(NodeId from, omni::OmniMessage msg) {
  node_->Handle(from, std::move(msg));
  Pump();
}

void OmniTcpServer::OnClientFrame(uint64_t client, const uint8_t* data, size_t len) {
  clients_.insert(client);
  if (len == 0) {
    return;
  }
  switch (data[0]) {
    case 0x01: {  // append
      if (len < 1 + 8 + 4) {
        return;
      }
      uint64_t cmd_id = 0;
      uint32_t payload = 0;
      for (int i = 0; i < 8; ++i) {
        cmd_id |= static_cast<uint64_t>(data[1 + i]) << (8 * i);
      }
      for (int i = 0; i < 4; ++i) {
        payload |= static_cast<uint32_t>(data[9 + i]) << (8 * i);
      }
      if (node_->IsLeader()) {
        // No Pump here: appends admitted during this epoll pass flush
        // together in StepOnce's post-Poll Pump — request batching turns an
        // append burst into one <AcceptDecide> fan-out.
        node_->Append(omni::Entry::Command(cmd_id, payload));
      } else {
        std::vector<uint8_t> redirect;
        redirect.push_back(0x05);
        PutU32(&redirect, static_cast<uint32_t>(node_->leader_hint()));
        transport_->SendToClient(client, redirect.data(), redirect.size());
      }
      break;
    }
    case 0x06: {  // lease read
      if (len < 1 + 8 + 8) {
        return;
      }
      uint64_t read_id = 0;
      uint64_t watermark = 0;
      for (int i = 0; i < 8; ++i) {
        read_id |= static_cast<uint64_t>(data[1 + i]) << (8 * i);
        watermark |= static_cast<uint64_t>(data[9 + i]) << (8 * i);
      }
      const LogIndex decided = node_->decided_idx();
      const bool served = node_->CanServeLocalReads() && decided >= watermark;
      if (served) {
        OPX_TRACE(options_.obs, obs::EventKind::kLeaseRead, options_.id, kNoNode, 0,
                  decided, watermark);
#if defined(OPX_OBS_ENABLED)
        if (lease_reads_ctr_ != nullptr) {
          lease_reads_ctr_->Inc();
        }
#endif
      }
      std::vector<uint8_t> reply;
      reply.push_back(0x07);
      PutU64(&reply, read_id);
      PutU64(&reply, decided);
      reply.push_back(served ? 1 : 0);
      PutU32(&reply, static_cast<uint32_t>(node_->leader_hint()));
      transport_->SendToClient(client, reply.data(), reply.size());
      break;
    }
    case 0x03: {  // status
      std::vector<uint8_t> status;
      status.push_back(0x04);
      PutU32(&status, static_cast<uint32_t>(node_->leader_hint()));
      PutU64(&status, node_->decided_idx());
      PutU64(&status, node_->log_len());
      status.push_back(node_->IsLeader() ? 1 : 0);
      // Trailing extension (older parsers read the fixed prefix and ignore
      // this): compaction floor, so clients can observe bounded log memory
      // (log_len - compacted = resident suffix entries).
      PutU64(&status, storage_->compacted_idx());
      transport_->SendToClient(client, status.data(), status.size());
      break;
    }
    default:
      break;
  }
}

void OmniTcpServer::Pump() {
  // Broadcast fan-outs (heartbeats, AcceptDecide with a SharedSuffix) arrive
  // from TakeOutgoing as per-peer copies of identical bytes: prove identity
  // with SameWireBody and share the one encoded frame instead of re-encoding.
  const std::vector<omni::OmniOut> outs = node_->TakeOutgoing();
  const omni::OmniMessage* prev = nullptr;
  for (const omni::OmniOut& out : outs) {
    if (prev == nullptr || !omni::SameWireBody(*prev, out.body) ||
        !transport_->SendRepeat(out.to)) {
      transport_->Send(out.to, out.body);
    }
    prev = &out.body;
  }
  const LogIndex decided = node_->decided_idx();
  if (pushed_ < storage_->compacted_idx()) {
    pushed_ = storage_->compacted_idx();
  }
  if (pushed_ < decided && !clients_.empty()) {
    std::vector<uint8_t> batch;
    batch.push_back(0x02);
    std::vector<uint64_t> ids;
    for (LogIndex i = pushed_; i < decided; ++i) {
      const omni::Entry& e = storage_->At(i);
      if (!e.IsStopSign() && e.cmd_id != 0) {
        ids.push_back(e.cmd_id);
      }
    }
    PutU32(&batch, static_cast<uint32_t>(ids.size()));
    for (uint64_t id : ids) {
      PutU64(&batch, id);
    }
    // Snapshot: a failed send closes the connection, which erases the client
    // from clients_ via the closed handler — mid-iteration otherwise. The
    // batch is encoded once and the refcounted frame shared across clients.
    const FrameRef frame = transport_->EncodeClientFrame(batch.data(), batch.size());
    const std::vector<uint64_t> targets(clients_.begin(), clients_.end());
    for (uint64_t client : targets) {
      transport_->SendToClient(client, frame);
    }
  }
  pushed_ = decided;
}

}  // namespace opx::net
