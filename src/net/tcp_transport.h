// Real TCP transport for running Omni-Paxos clusters as actual processes.
//
// Topology: every server listens on one port. For each peer, a server keeps
// ONE outbound connection used exclusively for sending protocol messages to
// that peer; inbound connections are receive-only and identified by a hello
// frame. Outbound connections reconnect with backoff; a successful
// (re-)connect after a drop raises the reconnect callback — the same cue the
// paper derives from TCP session re-establishment (§4.1.3).
//
// Framing: [u32 length][payload]. The first frame on any connection is a
// hello: [u8 kind][u32 id] (kind: peer server or client). Subsequent frames
// are codec-encoded protocol messages (peers) or client API frames (clients;
// interpreted by the server layer, not here).
//
// Hot path (DESIGN.md §14): readiness comes from an EpollLoop (registered
// interest lists, edge-triggered, timerfd-driven reconnect sweep) instead of
// a per-iteration pollfd rebuild. Sends are DEFERRED: Send/SendToClient only
// enqueue an encoded, refcounted frame (encode-once for broadcasts — see
// SendRepeat and the FrameRef overload of SendToClient) onto the
// connection's FrameQueue; Flush() — called once per Poll() pass and by the
// server after each Pump — drains every dirty queue with writev(), so a
// burst of protocol messages leaves in a handful of syscalls.
//
// Single-threaded: the owner drives everything through Poll(); callbacks run
// on the polling thread. No locks, no hidden threads.
#ifndef SRC_NET_TCP_TRANSPORT_H_
#define SRC_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/epoll_loop.h"
#include "src/net/frame_queue.h"
#include "src/obs/net_metrics.h"
#include "src/omnipaxos/codec.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::net {

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

// Hello kinds (first byte of the first frame).
constexpr uint8_t kHelloPeer = 0xFE;
constexpr uint8_t kHelloClient = 0xFD;

class TcpTransport {
 public:
  using MessageHandler = std::function<void(NodeId from, omni::OmniMessage msg)>;
  using ReconnectHandler = std::function<void(NodeId peer)>;
  // Raw frame from a client connection (id = transport-local client handle).
  using ClientFrameHandler = std::function<void(uint64_t client, const uint8_t* data, size_t len)>;
  using ClientClosedHandler = std::function<void(uint64_t client)>;

  TcpTransport(NodeId self, uint16_t listen_port, std::map<NodeId, Endpoint> peers);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void set_message_handler(MessageHandler h) { on_message_ = std::move(h); }
  void set_reconnect_handler(ReconnectHandler h) { on_reconnect_ = std::move(h); }
  void set_client_frame_handler(ClientFrameHandler h) { on_client_frame_ = std::move(h); }
  void set_client_closed_handler(ClientClosedHandler h) { on_client_closed_ = std::move(h); }

  // Binds + listens and initiates the first round of peer connects.
  // Returns false if the listen socket cannot be created.
  bool Start();

  // The port actually bound (useful with listen_port = 0).
  uint16_t listen_port() const { return listen_port_; }

  // Queues a protocol message to a peer (encoded once, scratch buffer from
  // the frame pool). Messages are dropped if the connection is down (the
  // protocols handle loss via resynchronization). Actual I/O happens at the
  // next Flush().
  void Send(NodeId to, const omni::OmniMessage& msg);

  // Queues the most recently Send()-encoded frame to another peer WITHOUT
  // re-encoding — the broadcast fast path. Valid only when the caller proved
  // the bytes are identical (codec::SameWireBody on the two messages).
  // Returns false when there is no such frame (the previous Send was dropped
  // link-down); the caller falls back to Send().
  bool SendRepeat(NodeId to);

  // Queues a raw frame to a connected client.
  void SendToClient(uint64_t client, const uint8_t* data, size_t len);

  // Encode-once client push: wrap a payload as a frame, then queue the SAME
  // refcounted frame to any number of clients.
  FrameRef EncodeClientFrame(const uint8_t* data, size_t len);
  void SendToClient(uint64_t client, const FrameRef& frame);

  // Processes I/O for up to timeout_ms (0 = non-blocking pass): one epoll
  // wait + inline handler dispatch, then a Flush(). Reconnect backoff runs
  // off a timerfd inside the same wait.
  void Poll(int timeout_ms);

  // Drains every connection with pending frames via writev(). Called by
  // Poll(); the server also calls it after out-of-poll Pump() batches.
  void Flush();

  void Stop();

  bool PeerConnected(NodeId peer) const;

  // The readiness core, exposed so the owning server can hang its own
  // timerfds (election tick) on the same wait.
  EpollLoop& loop() { return loop_; }

  // Points the net.* instruments at `m` (obs registry). No-op when the build
  // has OPX_OBS=OFF; unwired, every update site is a single null check.
  void WireObs(obs::Metrics* m);

 private:
  struct Connection;

  void AcceptNew();
  void StartConnect(NodeId peer);
  void OnIo(Connection& conn, uint32_t bits);
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void CloseConnection(Connection& conn);
  void OnFrame(Connection& conn, const uint8_t* data, size_t len);
  void FlushConn(Connection& conn);
  void MarkDirty(Connection& conn);
  void ReconnectSweep();

  NodeId self_;
  uint16_t listen_port_;
  std::map<NodeId, Endpoint> peers_;
  int listen_fd_ = -1;
  int reconnect_timer_ = -1;

  EpollLoop loop_;
  FramePool pool_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<NodeId, Connection*> outbound_;  // per-peer send connection
  std::vector<Connection*> dirty_;          // queues touched since last Flush
  FrameRef last_sent_;                      // SendRepeat's share source
  int64_t next_client_id_ = 1;

  obs::NetMetrics met_;  // null instruments until WireObs

  MessageHandler on_message_;
  ReconnectHandler on_reconnect_;
  ClientFrameHandler on_client_frame_;
  ClientClosedHandler on_client_closed_;
};

}  // namespace opx::net

#endif  // SRC_NET_TCP_TRANSPORT_H_
