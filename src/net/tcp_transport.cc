#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace opx::net {
namespace {

Time MonotonicNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Frames per writev. Far below IOV_MAX; past ~64 the syscall amortization is
// already >98% and the iovec array stays cache-resident on the stack.
constexpr size_t kMaxIov = 64;

}  // namespace

// One TCP connection (inbound or outbound). Outbound frames live in a
// FrameQueue of refcounted encoded buffers (shared across peers for
// broadcasts); inbound bytes stream through a FrameReader.
struct TcpTransport::Connection {
  int fd = -1;
  bool outbound = false;
  bool connecting = false;  // outbound connect() in progress
  bool hello_sent = false;
  bool closed = false;
  bool dirty = false;  // queued frames since the last Flush()

  // Identity learned from the hello frame (inbound) or configuration
  // (outbound). kNoNode until known; client connections use client_id.
  NodeId peer = kNoNode;
  bool is_client = false;
  uint64_t client_id = 0;

  FrameQueue sendq;
  FrameReader reader;

  NodeId outbound_peer = kNoNode;  // which peer this outbound conn serves
  Time retry_at = 0;               // for outbound reconnect backoff
};

TcpTransport::TcpTransport(NodeId self, uint16_t listen_port,
                           std::map<NodeId, Endpoint> peers)
    : self_(self), listen_port_(listen_port), peers_(std::move(peers)) {}

TcpTransport::~TcpTransport() { Stop(); }

void TcpTransport::WireObs(obs::Metrics* m) {
#if defined(OPX_OBS_ENABLED)
  if (m != nullptr) {
    met_ = obs::NetMetrics::Wire(m);
  }
#else
  (void)m;
#endif
}

bool TcpTransport::Start() {
  if (!loop_.ok()) {
    return false;
  }
  // A peer dying mid-send must surface as EPIPE from writev, not kill the
  // process; connection churn is normal operation here.
  signal(SIGPIPE, SIG_IGN);
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen_port_);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0 ||
      !loop_.Add(listen_fd_, [this](uint32_t) { AcceptNew(); })) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    listen_port_ = ntohs(addr.sin_port);
  }
  // Outbound link maintenance lives on a timerfd inside the same epoll wait:
  // dropped links retry with backoff, closed inbound connections get GC'd.
  reconnect_timer_ = loop_.AddTimer(Millis(50), [this] { ReconnectSweep(); });
  for (const auto& [peer, endpoint] : peers_) {
    StartConnect(peer);
  }
  return true;
}

void TcpTransport::Stop() {
  if (reconnect_timer_ >= 0) {
    loop_.CancelTimer(reconnect_timer_);
    reconnect_timer_ = -1;
  }
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& conn : connections_) {
    if (conn->fd >= 0) {
      loop_.Remove(conn->fd);
      close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
  outbound_.clear();
  dirty_.clear();
  last_sent_ = nullptr;
}

void TcpTransport::StartConnect(NodeId peer) {
  const Endpoint& endpoint = peers_.at(peer);
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return;
  }
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return;
  }
  // fd is O_NONBLOCK; EINPROGRESS parks completion on the EPOLLOUT edge.
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));  // NOLINT(opx-blocking-in-loop)
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->outbound = true;
  conn->outbound_peer = peer;
  conn->peer = peer;
  conn->connecting = rc != 0 && errno == EINPROGRESS;
  if (rc != 0 && !conn->connecting) {
    close(fd);
    conn->fd = -1;
    conn->closed = true;
    conn->retry_at = MonotonicNow() + Millis(200);
  }
  Connection* raw = conn.get();
  if (raw->fd >= 0 && !loop_.Add(raw->fd, [this, raw](uint32_t bits) { OnIo(*raw, bits); })) {
    close(raw->fd);
    raw->fd = -1;
    raw->closed = true;
    raw->retry_at = MonotonicNow() + Millis(200);
  }
  connections_.push_back(std::move(conn));
  outbound_[peer] = raw;
  if (raw->fd >= 0 && !raw->connecting) {
    // Connected immediately (localhost): send hello.
    HandleWritable(*raw);
  }
}

void TcpTransport::MarkDirty(Connection& conn) {
  if (!conn.dirty) {
    conn.dirty = true;
    dirty_.push_back(&conn);
  }
}

void TcpTransport::Send(NodeId to, const omni::OmniMessage& msg) {
  auto it = outbound_.find(to);
  if (it == outbound_.end() || it->second->closed || it->second->connecting) {
    // Link down: drop (protocols recover via resync). Clear the share memo —
    // a following SendRepeat must not replay an OLDER message's bytes.
    last_sent_ = nullptr;
    return;
  }
  FrameRef frame = pool_.Acquire();
  omni::EncodeFrame(msg, &frame->bytes);
  last_sent_ = frame;
  it->second->sendq.Push(std::move(frame));
  MarkDirty(*it->second);
}

bool TcpTransport::SendRepeat(NodeId to) {
  if (last_sent_ == nullptr) {
    return false;
  }
  auto it = outbound_.find(to);
  if (it == outbound_.end() || it->second->closed || it->second->connecting) {
    return true;  // link down: drop, same as Send
  }
  it->second->sendq.Push(last_sent_);
  MarkDirty(*it->second);
  if (met_.frames_shared != nullptr) {
    met_.frames_shared->Inc();
  }
  return true;
}

FrameRef TcpTransport::EncodeClientFrame(const uint8_t* data, size_t len) {
  FrameRef frame = pool_.Acquire();
  frame->bytes.reserve(4 + len);
  for (int i = 0; i < 4; ++i) {
    frame->bytes.push_back(static_cast<uint8_t>(static_cast<uint32_t>(len) >> (8 * i)));
  }
  frame->bytes.insert(frame->bytes.end(), data, data + len);
  return frame;
}

void TcpTransport::SendToClient(uint64_t client, const FrameRef& frame) {
  for (auto& conn : connections_) {
    if (conn->is_client && conn->client_id == client && !conn->closed) {
      conn->sendq.Push(frame);
      MarkDirty(*conn);
      return;
    }
  }
}

void TcpTransport::SendToClient(uint64_t client, const uint8_t* data, size_t len) {
  for (auto& conn : connections_) {
    if (conn->is_client && conn->client_id == client && !conn->closed) {
      conn->sendq.Push(EncodeClientFrame(data, len));
      MarkDirty(*conn);
      return;
    }
  }
}

bool TcpTransport::PeerConnected(NodeId peer) const {
  auto it = outbound_.find(peer);
  return it != outbound_.end() && !it->second->closed && !it->second->connecting &&
         it->second->hello_sent;
}

void TcpTransport::Poll(int timeout_ms) {
  loop_.Wait(timeout_ms);
  Flush();
}

void TcpTransport::Flush() {
  // Swap out the dirty list: FlushConn may close a connection, whose reopen
  // marks dirty again — that belongs to the NEXT flush round.
  std::vector<Connection*> batch;
  batch.swap(dirty_);
  for (Connection* conn : batch) {
    conn->dirty = false;
    if (!conn->closed && !conn->connecting) {
      FlushConn(*conn);
    }
  }
}

void TcpTransport::FlushConn(Connection& conn) {
  struct iovec iov[kMaxIov];
  while (!conn.sendq.empty() && !conn.closed) {
    const size_t n = conn.sendq.BuildIovecs(iov, kMaxIov);
    // conn.fd is O_NONBLOCK; EAGAIN resumes on the next EPOLLOUT edge.
    const ssize_t written = writev(conn.fd, iov, static_cast<int>(n));  // NOLINT(opx-blocking-in-loop)
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // kernel buffer full; EPOLLOUT will fire when it drains
      }
      if (errno == EINTR) {
        continue;
      }
      CloseConnection(conn);
      return;
    }
    const size_t frames_before = conn.sendq.frames();
    conn.sendq.Consume(static_cast<size_t>(written), &pool_);
    if (met_.writev_calls != nullptr) {
      met_.writev_calls->Inc();
      met_.bytes_out->Inc(static_cast<uint64_t>(written));
      met_.frames_out->Inc(frames_before - conn.sendq.frames());
      met_.writev_batch_frames->Observe(static_cast<double>(n));
      met_.writev_batch_bytes->Observe(static_cast<double>(written));
    }
  }
}

void TcpTransport::AcceptNew() {
  for (;;) {
    // listen_fd_ is O_NONBLOCK: accept4 returns EAGAIN instead of waiting.
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);  // NOLINT(opx-blocking-in-loop)
    if (fd < 0) {
      return;
    }
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    if (!loop_.Add(fd, [this, raw](uint32_t bits) { OnIo(*raw, bits); })) {
      close(fd);
      continue;
    }
    connections_.push_back(std::move(conn));
    if (met_.conns_accepted != nullptr) {
      met_.conns_accepted->Inc();
    }
  }
}

void TcpTransport::OnIo(Connection& conn, uint32_t bits) {
  if (conn.closed) {
    return;
  }
  if ((bits & EpollLoop::kError) != 0) {
    // Covers failed outbound connects (EPOLLERR before writability) and peer
    // resets; backoff (outbound) or GC (inbound) happens on the sweep.
    CloseConnection(conn);
    return;
  }
  if ((bits & EpollLoop::kWritable) != 0) {
    HandleWritable(conn);
    if (conn.closed) {
      return;
    }
  }
  if ((bits & EpollLoop::kReadable) != 0) {
    HandleReadable(conn);
  }
}

void TcpTransport::HandleWritable(Connection& conn) {
  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseConnection(conn);
      return;
    }
    conn.connecting = false;
  }
  if (conn.outbound && !conn.hello_sent) {
    uint8_t hello[5];
    hello[0] = kHelloPeer;
    for (int i = 0; i < 4; ++i) {
      hello[1 + i] = static_cast<uint8_t>(static_cast<uint32_t>(self_) >> (8 * i));
    }
    conn.sendq.Push(EncodeClientFrame(hello, sizeof(hello)));
    MarkDirty(conn);
    conn.hello_sent = true;
    if (met_.reconnects != nullptr) {
      met_.reconnects->Inc();
    }
    // A fresh outbound session to a peer we previously lost (or first
    // contact): surface the reconnect cue.
    if (on_reconnect_) {
      on_reconnect_(conn.outbound_peer);
    }
  }
  FlushConn(conn);
}

void TcpTransport::HandleReadable(Connection& conn) {
  uint8_t chunk[65536];
  for (;;) {
    // conn.fd is O_NONBLOCK; EPOLLET requires draining to EAGAIN, and EAGAIN
    // is exactly what this returns instead of waiting.
    const ssize_t n = read(conn.fd, chunk, sizeof(chunk));  // NOLINT(opx-blocking-in-loop)
    if (n > 0) {
      if (met_.bytes_in != nullptr) {
        met_.bytes_in->Inc(static_cast<uint64_t>(n));
      }
      const bool ok = conn.reader.Feed(
          chunk, static_cast<size_t>(n), [this, &conn](const uint8_t* d, size_t l) {
            OnFrame(conn, d, l);
            return !conn.closed;
          });
      if (!ok) {  // oversized frame: protocol violation
        CloseConnection(conn);
        return;
      }
      if (conn.closed) {
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(conn);  // EOF or hard error
    return;
  }
}

void TcpTransport::OnFrame(Connection& conn, const uint8_t* data, size_t len) {
  if (met_.frames_in != nullptr) {
    met_.frames_in->Inc();
  }
  if (!conn.outbound && conn.peer == kNoNode && !conn.is_client) {
    // Expect a hello frame.
    if (len == 5 && data[0] == kHelloPeer) {
      uint32_t id = 0;
      for (int i = 0; i < 4; ++i) {
        id |= static_cast<uint32_t>(data[1 + i]) << (8 * i);
      }
      conn.peer = static_cast<NodeId>(id);
      return;
    }
    if (len >= 1 && data[0] == kHelloClient) {
      conn.is_client = true;
      conn.client_id = static_cast<uint64_t>(next_client_id_++);
      return;
    }
    CloseConnection(conn);
    return;
  }
  if (conn.is_client) {
    if (on_client_frame_) {
      on_client_frame_(conn.client_id, data, len);
    }
    return;
  }
  omni::OmniMessage msg;
  if (!omni::DecodeMessage(data, len, &msg)) {
    OPX_WLOG << "dropping malformed frame from peer " << conn.peer;
    return;
  }
  if (on_message_) {
    on_message_(conn.peer, std::move(msg));
  }
}

void TcpTransport::CloseConnection(Connection& conn) {
  if (conn.fd >= 0) {
    loop_.Remove(conn.fd);
    close(conn.fd);
    conn.fd = -1;
  }
  const bool was_client = conn.is_client;
  const uint64_t client_id = conn.client_id;
  conn.closed = true;
  conn.hello_sent = false;
  conn.connecting = false;
  conn.sendq.Clear(&pool_);
  conn.reader.Clear();
  conn.retry_at = MonotonicNow() + Millis(200);
  if (met_.conns_closed != nullptr) {
    met_.conns_closed->Inc();
  }
  if (was_client && on_client_closed_) {
    on_client_closed_(client_id);
  }
}

void TcpTransport::ReconnectSweep() {
  const Time now = MonotonicNow();
  for (const auto& [peer, endpoint] : peers_) {
    auto it = outbound_.find(peer);
    if (it == outbound_.end() || (it->second->closed && now >= it->second->retry_at)) {
      if (it != outbound_.end()) {
        outbound_.erase(it);
      }
      StartConnect(peer);
    }
  }
  // Garbage-collect closed connections. Replaced outbound entries (no longer
  // in outbound_) are dead too; current outbound placeholders stay as
  // backoff state. Purge the dirty list first — it holds raw pointers.
  std::erase_if(dirty_, [](Connection* c) { return c->closed; });
  std::erase_if(connections_, [this](const std::unique_ptr<Connection>& c) {
    if (!c->closed) {
      return false;
    }
    auto it = outbound_.find(c->outbound_peer);
    return !c->outbound || it == outbound_.end() || it->second != c.get();
  });
}

}  // namespace opx::net
