#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace opx::net {
namespace {

Time MonotonicNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

constexpr size_t kMaxFrame = 64u << 20;

}  // namespace

// One TCP connection (inbound or outbound), with framed read/write buffers.
struct TcpTransport::Connection {
  int fd = -1;
  bool outbound = false;
  bool connecting = false;  // outbound connect() in progress
  bool hello_sent = false;
  bool closed = false;

  // Identity learned from the hello frame (inbound) or configuration
  // (outbound). kNoNode until known; client connections use client_id.
  NodeId peer = kNoNode;
  bool is_client = false;
  uint64_t client_id = 0;

  std::vector<uint8_t> read_buf;
  std::deque<uint8_t> write_buf;

  NodeId outbound_peer = kNoNode;  // which peer this outbound conn serves
  Time retry_at = 0;               // for outbound reconnect backoff
};

TcpTransport::TcpTransport(NodeId self, uint16_t listen_port,
                           std::map<NodeId, Endpoint> peers)
    : self_(self), listen_port_(listen_port), peers_(std::move(peers)) {}

TcpTransport::~TcpTransport() { Stop(); }

bool TcpTransport::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen_port_);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    listen_port_ = ntohs(addr.sin_port);
  }
  for (const auto& [peer, endpoint] : peers_) {
    StartConnect(peer);
  }
  return true;
}

void TcpTransport::Stop() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& conn : connections_) {
    if (conn->fd >= 0) {
      close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
  outbound_.clear();
}

void TcpTransport::StartConnect(NodeId peer) {
  const Endpoint& endpoint = peers_.at(peer);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return;
  }
  // fd is O_NONBLOCK; EINPROGRESS is handled below, completion via POLLOUT.
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));  // NOLINT(opx-blocking-in-loop)
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->outbound = true;
  conn->outbound_peer = peer;
  conn->peer = peer;
  conn->connecting = rc != 0 && errno == EINPROGRESS;
  if (rc != 0 && !conn->connecting) {
    close(fd);
    conn->fd = -1;
    conn->closed = true;
    conn->retry_at = MonotonicNow() + Millis(200);
  }
  Connection* raw = conn.get();
  connections_.push_back(std::move(conn));
  outbound_[peer] = raw;
  if (raw->fd >= 0 && !raw->connecting) {
    // Connected immediately (localhost): send hello.
    HandleWritable(*raw);
  }
}

void TcpTransport::QueueFrame(Connection& conn, const uint8_t* data, size_t len) {
  uint8_t header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(static_cast<uint32_t>(len) >> (8 * i));
  }
  conn.write_buf.insert(conn.write_buf.end(), header, header + 4);
  conn.write_buf.insert(conn.write_buf.end(), data, data + len);
}

void TcpTransport::Send(NodeId to, const omni::OmniMessage& msg) {
  auto it = outbound_.find(to);
  if (it == outbound_.end() || it->second->closed || it->second->connecting) {
    return;  // link down; protocols recover via resync
  }
  std::vector<uint8_t> payload;
  omni::EncodeMessage(msg, &payload);
  QueueFrame(*it->second, payload.data(), payload.size());
  FlushWrites(*it->second);
}

void TcpTransport::SendToClient(uint64_t client, const uint8_t* data, size_t len) {
  for (auto& conn : connections_) {
    if (conn->is_client && conn->client_id == client && !conn->closed) {
      QueueFrame(*conn, data, len);
      FlushWrites(*conn);
      return;
    }
  }
}

bool TcpTransport::PeerConnected(NodeId peer) const {
  auto it = outbound_.find(peer);
  return it != outbound_.end() && !it->second->closed && !it->second->connecting &&
         it->second->hello_sent;
}

void TcpTransport::Poll(int timeout_ms) {
  // Reconnect sweep.
  const Time now = MonotonicNow();
  if (now >= next_reconnect_sweep_) {
    next_reconnect_sweep_ = now + Millis(50);
    for (const auto& [peer, endpoint] : peers_) {
      auto it = outbound_.find(peer);
      if (it == outbound_.end() || (it->second->closed && now >= it->second->retry_at)) {
        if (it != outbound_.end()) {
          outbound_.erase(it);
        }
        StartConnect(peer);
      }
    }
  }

  std::vector<pollfd> fds;
  std::vector<Connection*> by_index;
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    by_index.push_back(nullptr);
  }
  for (auto& conn : connections_) {
    if (conn->closed || conn->fd < 0) {
      continue;
    }
    short events = POLLIN;
    if (conn->connecting || !conn->write_buf.empty()) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{conn->fd, events, 0});
    by_index.push_back(conn.get());
  }
  // The one sanctioned wait: this poll() IS the event loop's readiness gate.
  const int ready = poll(fds.data(), fds.size(), timeout_ms);  // NOLINT(opx-blocking-in-loop)
  if (ready <= 0) {
    return;
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) {
      continue;
    }
    if (by_index[i] == nullptr) {
      AcceptNew();
      continue;
    }
    Connection& conn = *by_index[i];
    if (conn.closed) {
      continue;
    }
    if ((fds[i].revents & (POLLERR | POLLHUP)) != 0 && !conn.connecting) {
      CloseConnection(conn);
      continue;
    }
    if ((fds[i].revents & POLLOUT) != 0) {
      HandleWritable(conn);
    }
    if (!conn.closed && (fds[i].revents & POLLIN) != 0) {
      HandleReadable(conn);
    }
  }
  // Garbage-collect closed inbound/client connections (outbound ones are kept
  // as reconnect placeholders).
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->closed && !(*it)->outbound) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpTransport::AcceptNew() {
  for (;;) {
    // listen_fd_ is O_NONBLOCK: accept returns EAGAIN instead of waiting.
    const int fd = accept(listen_fd_, nullptr, nullptr);  // NOLINT(opx-blocking-in-loop)
    if (fd < 0) {
      return;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.push_back(std::move(conn));
  }
}

void TcpTransport::HandleWritable(Connection& conn) {
  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseConnection(conn);
      return;
    }
    conn.connecting = false;
  }
  if (conn.outbound && !conn.hello_sent) {
    uint8_t hello[5];
    hello[0] = kHelloPeer;
    for (int i = 0; i < 4; ++i) {
      hello[1 + i] = static_cast<uint8_t>(static_cast<uint32_t>(self_) >> (8 * i));
    }
    QueueFrame(conn, hello, sizeof(hello));
    conn.hello_sent = true;
    // A fresh outbound session to a peer we previously lost (or first
    // contact): surface the reconnect cue.
    if (on_reconnect_) {
      on_reconnect_(conn.outbound_peer);
    }
  }
  FlushWrites(conn);
}

void TcpTransport::FlushWrites(Connection& conn) {
  while (!conn.write_buf.empty() && !conn.closed) {
    // Coalesce up to 64 KiB per write.
    uint8_t chunk[65536];
    const size_t n = std::min(conn.write_buf.size(), sizeof(chunk));
    std::copy(conn.write_buf.begin(),
              conn.write_buf.begin() + static_cast<ptrdiff_t>(n), chunk);
    // conn.fd is O_NONBLOCK; EAGAIN defers to the next POLLOUT.
    const ssize_t written = ::write(conn.fd, chunk, n);  // NOLINT(opx-blocking-in-loop)
    if (written > 0) {
      conn.write_buf.erase(conn.write_buf.begin(),
                           conn.write_buf.begin() + written);
    } else if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // poll for POLLOUT
    } else {
      CloseConnection(conn);
      return;
    }
  }
}

void TcpTransport::HandleReadable(Connection& conn) {
  uint8_t chunk[65536];
  for (;;) {
    // conn.fd is O_NONBLOCK; EAGAIN defers to the next POLLIN.
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));  // NOLINT(opx-blocking-in-loop)
    if (n > 0) {
      conn.read_buf.insert(conn.read_buf.end(), chunk, chunk + n);
    } else if (n == 0) {
      CloseConnection(conn);
      return;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      CloseConnection(conn);
      return;
    }
  }
  // Extract complete frames.
  size_t offset = 0;
  while (conn.read_buf.size() - offset >= 4) {
    uint32_t frame_len = 0;
    for (int i = 0; i < 4; ++i) {
      frame_len |= static_cast<uint32_t>(conn.read_buf[offset + static_cast<size_t>(i)])
                   << (8 * i);
    }
    if (frame_len > kMaxFrame) {
      CloseConnection(conn);
      return;
    }
    if (conn.read_buf.size() - offset - 4 < frame_len) {
      break;
    }
    OnFrame(conn, conn.read_buf.data() + offset + 4, frame_len);
    if (conn.closed) {
      return;
    }
    offset += 4 + frame_len;
  }
  conn.read_buf.erase(conn.read_buf.begin(),
                      conn.read_buf.begin() + static_cast<ptrdiff_t>(offset));
}

void TcpTransport::OnFrame(Connection& conn, const uint8_t* data, size_t len) {
  if (!conn.outbound && conn.peer == kNoNode && !conn.is_client) {
    // Expect a hello frame.
    if (len == 5 && data[0] == kHelloPeer) {
      uint32_t id = 0;
      for (int i = 0; i < 4; ++i) {
        id |= static_cast<uint32_t>(data[1 + i]) << (8 * i);
      }
      conn.peer = static_cast<NodeId>(id);
      return;
    }
    if (len >= 1 && data[0] == kHelloClient) {
      conn.is_client = true;
      conn.client_id = static_cast<uint64_t>(next_client_id_++);
      return;
    }
    CloseConnection(conn);
    return;
  }
  if (conn.is_client) {
    if (on_client_frame_) {
      on_client_frame_(conn.client_id, data, len);
    }
    return;
  }
  omni::OmniMessage msg;
  if (!omni::DecodeMessage(data, len, &msg)) {
    OPX_WLOG << "dropping malformed frame from peer " << conn.peer;
    return;
  }
  if (on_message_) {
    on_message_(conn.peer, std::move(msg));
  }
}

void TcpTransport::CloseConnection(Connection& conn) {
  if (conn.fd >= 0) {
    close(conn.fd);
    conn.fd = -1;
  }
  const bool was_client = conn.is_client;
  const uint64_t client_id = conn.client_id;
  conn.closed = true;
  conn.hello_sent = false;
  conn.connecting = false;
  conn.write_buf.clear();
  conn.read_buf.clear();
  conn.retry_at = MonotonicNow() + Millis(200);
  if (was_client && on_client_closed_) {
    on_client_closed_(client_id);
  }
}

}  // namespace opx::net
