// Non-blocking epoll event loop — the readiness core of the real-network hot
// path (DESIGN.md §14, ROADMAP item 4).
//
// Replaces the per-iteration pollfd-vector rebuild of the old poll() loop
// with a registered interest list: each fd is added to the kernel set once
// (EPOLL_CTL_ADD) with a handler, and every Wait() is a single epoll_wait
// plus direct dispatch — O(ready), not O(watched).
//
// Readiness is edge-style (EPOLLET): a handler must drain its fd to EAGAIN,
// because the kernel only reports the *transition* to readable/writable.
// Handlers that stop early resume on the next edge — the send-queue resume
// offset in FrameQueue exists exactly for this.
//
// Timers are timerfds in the same interest list (AddTimer), so election
// ticks and reconnect sweeps wake the one sanctioned wait instead of
// requiring the caller to recompute poll timeouts every iteration.
//
// Handlers may Add/Remove fds (including their own) while Wait() dispatches:
// registration handles are generation-tagged, so an event for an fd that was
// removed — or removed and reused — earlier in the same batch is ignored.
//
// Single-threaded: no locks, no hidden threads; the owner drives everything
// through Wait().
#ifndef SRC_NET_EPOLL_LOOP_H_
#define SRC_NET_EPOLL_LOOP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/util/time.h"
#include "src/util/unique_function.h"

namespace opx::net {

class EpollLoop {
 public:
  // Bits passed to handlers (subset of epoll's EPOLLIN/OUT/ERR/HUP).
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;  // EPOLLERR | EPOLLHUP

  using IoHandler = util::UniqueFunction<void(uint32_t events), 48>;
  using TimerHandler = util::UniqueFunction<void(), 48>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  // False when the epoll fd could not be created.
  bool ok() const { return epoll_fd_ >= 0; }

  // Registers `fd` edge-triggered for both read and write readiness. The fd
  // must already be O_NONBLOCK. Returns false if the kernel rejects it.
  bool Add(int fd, IoHandler handler);

  // Unregisters `fd` (the caller still owns and closes it). Safe to call
  // from inside a handler, including the fd's own.
  void Remove(int fd);

  // Periodic timer: `handler` fires once per Wait() in which the period
  // elapsed (missed periods coalesce — an election tick that fell behind
  // fires once, mirroring the old loop's catch-up reset). Returns the
  // timerfd (for CancelTimer), or -1 on failure.
  int AddTimer(Time period, TimerHandler handler);
  void CancelTimer(int timer_fd);

  // One readiness pass: waits up to timeout_ms (0 = non-blocking poll) and
  // dispatches every ready handler inline. Returns the number of events
  // dispatched, or -1 on wait failure.
  int Wait(int timeout_ms);

  size_t watched() const { return watches_.size(); }

 private:
  struct Watch {
    uint64_t gen = 0;
    bool is_timer = false;
    IoHandler on_io;
    TimerHandler on_timer;
  };

  int epoll_fd_ = -1;
  uint64_t next_gen_ = 1;
  bool dispatching_ = false;
  std::map<int, std::unique_ptr<Watch>> watches_;  // fd -> handler (+ generation)
  // Watches removed from inside a handler stay alive here until the current
  // dispatch batch ends — a handler may remove its own fd while its closure
  // is still on the stack.
  std::vector<std::unique_ptr<Watch>> graveyard_;
};

}  // namespace opx::net

#endif  // SRC_NET_EPOLL_LOOP_H_
