#include "src/net/omni_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/net/frame_queue.h"

namespace opx::net {
namespace {

Time MonotonicNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

OmniClient::OmniClient(std::map<NodeId, Endpoint> servers) : servers_(std::move(servers)) {}

OmniClient::~OmniClient() { Disconnect(); }

void OmniClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  connected_to_ = kNoNode;
  read_buf_.clear();
}

bool OmniClient::ConnectTo(NodeId id) {
  Disconnect();
  auto it = servers_.find(id);
  if (it == servers_.end()) {
    return false;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  fd_ = fd;
  connected_to_ = id;
  // Client hello.
  std::vector<uint8_t> hello{kHelloClient};
  return SendFrame(hello);
}

bool OmniClient::Connect(Time deadline) {
  const Time until = MonotonicNow() + deadline;
  while (MonotonicNow() < until) {
    for (const auto& [id, endpoint] : servers_) {
      if (ConnectTo(id)) {
        return true;
      }
    }
    usleep(50'000);
  }
  return false;
}

bool OmniClient::SendFrame(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) {
    return false;
  }
  std::vector<uint8_t> wire;
  PutU32(&wire, static_cast<uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
    if (n <= 0) {
      Disconnect();
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool OmniClient::ReadFrame(std::vector<uint8_t>* frame, Time deadline) {
  const Time until = MonotonicNow() + deadline;
  for (;;) {
    // Complete frame buffered?
    if (read_buf_.size() >= 4) {
      const uint32_t len = GetU32(read_buf_.data());
      // A hostile or corrupt header is fatal for the connection: besides being
      // a protocol violation, `4 + len` wraps in uint32 for len >= 2^32-4,
      // which made the old `size() >= 4 + len` comparison pass and the
      // assign() below read far past the buffer.
      if (len > kMaxFrameBytes) {
        Disconnect();
        return false;
      }
      if (read_buf_.size() - 4 >= len) {
        frame->assign(read_buf_.begin() + 4,
                      read_buf_.begin() + 4 + static_cast<ptrdiff_t>(len));
        read_buf_.erase(read_buf_.begin(),
                        read_buf_.begin() + 4 + static_cast<ptrdiff_t>(len));
        return true;
      }
    }
    const Time remaining = until - MonotonicNow();
    if (remaining <= 0 || fd_ < 0) {
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    // Ceiling division: round partial milliseconds up without overshooting the
    // deadline by a full extra millisecond (`/ 1'000'000 + 1` slept past it).
    const int rc = poll(&pfd, 1, static_cast<int>((remaining + 999'999) / 1'000'000));
    if (rc <= 0) {
      continue;
    }
    uint8_t chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      Disconnect();
      return false;
    }
    read_buf_.insert(read_buf_.end(), chunk, chunk + n);
  }
}

void OmniClient::HandleFrame(const std::vector<uint8_t>& frame, Status* status_out) {
  if (frame.empty()) {
    return;
  }
  switch (frame[0]) {
    case 0x02: {  // decided batch
      if (frame.size() < 5) {
        return;
      }
      const uint32_t count = GetU32(frame.data() + 1);
      for (uint32_t i = 0; i < count && 5 + 8 * (i + 1) <= frame.size(); ++i) {
        decided_.insert(GetU64(frame.data() + 5 + 8 * i));
      }
      break;
    }
    case 0x04: {  // status
      if (frame.size() >= 1 + 4 + 8 + 8 + 1 && status_out != nullptr) {
        status_out->leader = static_cast<NodeId>(GetU32(frame.data() + 1));
        status_out->decided = GetU64(frame.data() + 5);
        status_out->log_len = GetU64(frame.data() + 13);
        status_out->is_leader = frame[21] != 0;
        if (frame.size() >= 22 + 8) {  // trailing compaction-floor extension
          status_out->compacted = GetU64(frame.data() + 22);
        }
      }
      break;
    }
    case 0x05: {  // redirect
      if (frame.size() >= 5) {
        redirect_hint_ = static_cast<NodeId>(GetU32(frame.data() + 1));
      }
      break;
    }
    case 0x07: {  // lease-read reply
      if (frame.size() >= 1 + 8 + 8 + 1 + 4) {
        ReadReplyInfo info;
        const uint64_t read_id = GetU64(frame.data() + 1);
        info.decided = GetU64(frame.data() + 9);
        info.served = frame[17] != 0;
        info.leader = static_cast<NodeId>(GetU32(frame.data() + 18));
        read_replies_[read_id] = info;
      }
      break;
    }
    default:
      break;
  }
}

bool OmniClient::Append(uint64_t cmd_id, uint32_t payload_bytes) {
  if (fd_ < 0 && !Connect()) {
    return false;
  }
  std::vector<uint8_t> req;
  req.push_back(0x01);
  PutU64(&req, cmd_id);
  PutU32(&req, payload_bytes);
  return SendFrame(req);
}

bool OmniClient::WaitDecided(uint64_t cmd_id, Time deadline) {
  const Time until = MonotonicNow() + deadline;
  while (decided_.count(cmd_id) == 0) {
    const Time remaining = until - MonotonicNow();
    if (remaining <= 0) {
      return false;
    }
    std::vector<uint8_t> frame;
    if (!ReadFrame(&frame, std::min<Time>(remaining, Millis(200)))) {
      if (fd_ < 0 && !Connect(remaining)) {
        return false;
      }
      continue;
    }
    HandleFrame(frame, nullptr);
  }
  return true;
}

bool OmniClient::AppendAndWait(uint64_t cmd_id, uint32_t payload_bytes, Time deadline) {
  const Time until = MonotonicNow() + deadline;
  while (MonotonicNow() < until) {
    redirect_hint_ = kNoNode;
    if (!Append(cmd_id, payload_bytes)) {
      continue;
    }
    // Wait a slice for either the decided id or a redirect.
    const Time slice = std::min<Time>(until - MonotonicNow(), Millis(300));
    const Time slice_end = MonotonicNow() + slice;
    while (MonotonicNow() < slice_end && decided_.count(cmd_id) == 0 &&
           redirect_hint_ == kNoNode) {
      std::vector<uint8_t> frame;
      if (ReadFrame(&frame, Millis(50))) {
        HandleFrame(frame, nullptr);
      } else if (fd_ < 0) {
        break;
      }
    }
    if (decided_.count(cmd_id) > 0) {
      return true;
    }
    if (redirect_hint_ != kNoNode && servers_.count(redirect_hint_) > 0) {
      ConnectTo(redirect_hint_);
    } else if (fd_ < 0) {
      Connect(until - MonotonicNow());
    } else {
      // Not decided and no redirect: rotate to the next server.
      auto it = servers_.upper_bound(connected_to_);
      ConnectTo(it == servers_.end() ? servers_.begin()->first : it->first);
    }
  }
  return decided_.count(cmd_id) > 0;
}

bool OmniClient::LeaseRead(uint64_t watermark, uint64_t* decided_out, Time deadline) {
  const Time until = MonotonicNow() + deadline;
  while (MonotonicNow() < until) {
    if (fd_ < 0 && !Connect(until - MonotonicNow())) {
      return false;
    }
    const uint64_t read_id = next_read_id_++;
    std::vector<uint8_t> req;
    req.push_back(0x06);
    PutU64(&req, read_id);
    PutU64(&req, watermark);
    if (!SendFrame(req)) {
      continue;
    }
    while (MonotonicNow() < until && read_replies_.count(read_id) == 0) {
      std::vector<uint8_t> frame;
      if (ReadFrame(&frame, Millis(50))) {
        HandleFrame(frame, nullptr);
      } else if (fd_ < 0) {
        break;
      }
    }
    const auto it = read_replies_.find(read_id);
    if (it == read_replies_.end()) {
      continue;  // disconnected mid-wait; reconnect and retry
    }
    const ReadReplyInfo info = it->second;
    read_replies_.erase(it);
    if (info.served) {
      if (decided_out != nullptr) {
        *decided_out = info.decided;
      }
      return true;
    }
    // Bounced: not the leader, lease lapsed, or behind the watermark.
    if (info.leader != kNoNode && info.leader != connected_to_ &&
        servers_.count(info.leader) > 0) {
      ConnectTo(info.leader);
    } else {
      usleep(10'000);  // mid-election or catching up; retry shortly
    }
  }
  return false;
}

bool OmniClient::GetStatus(Status* out, Time deadline) {
  if (fd_ < 0 && !Connect(deadline)) {
    return false;
  }
  std::vector<uint8_t> req{0x03};
  if (!SendFrame(req)) {
    return false;
  }
  const Time until = MonotonicNow() + deadline;
  while (MonotonicNow() < until) {
    std::vector<uint8_t> frame;
    if (!ReadFrame(&frame, Millis(100))) {
      if (fd_ < 0) {
        return false;
      }
      continue;
    }
    if (!frame.empty() && frame[0] == 0x04) {
      HandleFrame(frame, out);
      return true;
    }
    HandleFrame(frame, nullptr);
  }
  return false;
}

}  // namespace opx::net
