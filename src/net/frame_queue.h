// Wire-frame building blocks of the net hot path (DESIGN.md §14).
//
// A WireFrame holds one encoded frame — [u32 length][payload] — as a single
// contiguous buffer. Frames are refcounted (FrameRef) so a broadcast message
// is encoded once and every peer's send queue shares the same bytes; a
// FramePool recycles retired buffers (capacity preserved) so the steady-state
// send path performs no allocations at all.
//
// FrameQueue is the per-connection send queue: refcounted frames drained with
// writev() so dozens of queued frames leave in one syscall. It tracks a
// resume offset into the front frame, which is how a short writev — the
// kernel accepting part of a frame — picks up exactly where it stopped on the
// next EPOLLOUT.
//
// FrameReader is the inbound mirror: an incremental extractor that survives
// arbitrarily short reads, including reads that split the 4-byte length
// header itself.
//
// Everything here is single-threaded and syscall-free; the owning event loop
// does the I/O.
#ifndef SRC_NET_FRAME_QUEUE_H_
#define SRC_NET_FRAME_QUEUE_H_

#include <sys/uio.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace opx::net {

// Frames above this are protocol violations (matches the transport's bound).
constexpr size_t kMaxFrameBytes = 64u << 20;

// One encoded wire frame: [u32 length][payload], contiguous.
struct WireFrame {
  std::vector<uint8_t> bytes;
};

// Shared ownership: a broadcast frame sits in several connections' queues at
// once; the last queue to finish sending releases it back to the pool.
using FrameRef = std::shared_ptr<WireFrame>;

// Recycles retired frame buffers. Acquire() reuses a pooled buffer (cleared,
// capacity kept) when one is free, so encoding into it is allocation-free
// once the pool is warm. Bounded so a burst can't pin memory forever.
class FramePool {
 public:
  explicit FramePool(size_t max_pooled = 256) : max_pooled_(max_pooled) {}

  FrameRef Acquire() {
    if (free_.empty()) {
      return std::make_shared<WireFrame>();
    }
    FrameRef f = std::move(free_.back());
    free_.pop_back();
    f->bytes.clear();
    return f;
  }

  // Returns a frame to the pool if this queue held the last reference.
  void Release(FrameRef&& f) {
    if (f != nullptr && f.use_count() == 1 && free_.size() < max_pooled_ &&
        f->bytes.capacity() <= kMaxPooledCapacity) {
      free_.push_back(std::move(f));
    }
    f = nullptr;
  }

  size_t pooled() const { return free_.size(); }

 private:
  // Don't pool giant sync-suffix buffers; those are rare.
  static constexpr size_t kMaxPooledCapacity = 1u << 20;

  size_t max_pooled_;
  std::vector<FrameRef> free_;
};

// Encodes the [u32 length] prefix in place over a buffer where the payload
// was appended after a 4-byte placeholder (see Begin/EndFrame below).
inline void PatchFrameLength(std::vector<uint8_t>* bytes, size_t header_at) {
  const size_t payload = bytes->size() - header_at - 4;
  for (int i = 0; i < 4; ++i) {
    (*bytes)[header_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint32_t>(payload) >> (8 * i));
  }
}

// Per-connection send queue of refcounted frames with a writev drain.
class FrameQueue {
 public:
  void Push(FrameRef frame) {
    OPX_DCHECK(frame != nullptr && !frame->bytes.empty());
    bytes_ += frame->bytes.size();
    frames_.push_back(std::move(frame));
  }

  bool empty() const { return frames_.empty(); }
  size_t frames() const { return frames_.size(); }
  size_t bytes() const { return bytes_; }

  // Fills up to `max_iov` iovecs from the queued frames, the front one
  // starting at the resume offset. Returns the number of iovecs filled.
  size_t BuildIovecs(struct iovec* iov, size_t max_iov) const {
    size_t n = 0;
    for (const FrameRef& f : frames_) {
      if (n == max_iov) {
        break;
      }
      const size_t skip = n == 0 ? front_offset_ : 0;
      iov[n].iov_base = const_cast<uint8_t*>(f->bytes.data() + skip);
      iov[n].iov_len = f->bytes.size() - skip;
      ++n;
    }
    return n;
  }

  // Consumes `written` bytes (a writev return value): fully-sent frames are
  // retired into `pool`; a partially-sent front frame records its resume
  // offset for the next drain.
  void Consume(size_t written, FramePool* pool) {
    bytes_ -= written;
    while (written > 0) {
      OPX_DCHECK(!frames_.empty());
      FrameRef& front = frames_.front();
      const size_t left = front->bytes.size() - front_offset_;
      if (written < left) {
        front_offset_ += written;
        return;
      }
      written -= left;
      front_offset_ = 0;
      pool->Release(std::move(front));
      frames_.pop_front();
    }
  }

  void Clear(FramePool* pool) {
    for (FrameRef& f : frames_) {
      pool->Release(std::move(f));
    }
    frames_.clear();
    front_offset_ = 0;
    bytes_ = 0;
  }

 private:
  std::deque<FrameRef> frames_;
  size_t front_offset_ = 0;  // bytes of frames_.front() already written
  size_t bytes_ = 0;         // total unsent bytes across the queue
};

// Incremental [u32 length][payload] extractor. Feed() buffers raw bytes and
// invokes `on_frame(payload, len)` for every complete frame; it returns false
// on an oversized length (the caller should drop the connection). on_frame
// may return false to stop extraction (e.g. the connection closed itself).
//
// The length bound defaults to the transport-wide kMaxFrameBytes but is
// configurable per reader: client-facing listeners can enforce a much
// tighter budget than replica peers without a second reader type.
class FrameReader {
 public:
  FrameReader() = default;
  explicit FrameReader(size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

  template <typename OnFrame>
  bool Feed(const uint8_t* data, size_t n, OnFrame&& on_frame) {
    buf_.insert(buf_.end(), data, data + n);
    size_t offset = 0;
    bool ok = true;
    // Bounds phrased as offset+k <= size: on_frame may Clear() this reader
    // (connection torn down mid-batch), so the loop must survive the buffer
    // shrinking under it.
    while (offset + 4 <= buf_.size()) {
      uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(buf_[offset + static_cast<size_t>(i)]) << (8 * i);
      }
      if (len > max_frame_bytes_) {
        ok = false;
        break;
      }
      if (offset + 4 + len > buf_.size()) {
        break;  // incomplete frame; wait for more bytes
      }
      const bool keep_going = on_frame(buf_.data() + offset + 4, static_cast<size_t>(len));
      offset += 4 + len;
      if (!keep_going) {
        break;
      }
    }
    offset = std::min(offset, buf_.size());
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(offset));
    return ok;
  }

  size_t buffered() const { return buf_.size(); }
  size_t max_frame_bytes() const { return max_frame_bytes_; }
  void Clear() { buf_.clear(); }

 private:
  size_t max_frame_bytes_ = kMaxFrameBytes;
  std::vector<uint8_t> buf_;
};

}  // namespace opx::net

#endif  // SRC_NET_FRAME_QUEUE_H_
