// Blocking client for an Omni-Paxos TCP cluster: connects to a server,
// appends commands, waits for decided notifications, follows leader
// redirects. Used by tools/omni_client and the runtime integration tests.
#ifndef SRC_NET_OMNI_CLIENT_H_
#define SRC_NET_OMNI_CLIENT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/net/tcp_transport.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::net {

class OmniClient {
 public:
  // `servers` maps node id -> endpoint; the client starts with any of them
  // and follows redirects.
  explicit OmniClient(std::map<NodeId, Endpoint> servers);
  ~OmniClient();

  OmniClient(const OmniClient&) = delete;
  OmniClient& operator=(const OmniClient&) = delete;

  // Connects to some server. False if nobody accepts within the deadline.
  bool Connect(Time deadline = Seconds(5));

  // Appends one command and returns once it is decided (or deadline passes).
  bool AppendAndWait(uint64_t cmd_id, uint32_t payload_bytes = 8,
                     Time deadline = Seconds(5));

  // Fire-and-forget append (decided ids arrive via WaitDecided).
  bool Append(uint64_t cmd_id, uint32_t payload_bytes = 8);

  // Blocks until `cmd_id` is decided or the deadline passes.
  bool WaitDecided(uint64_t cmd_id, Time deadline = Seconds(5));

  struct Status {
    NodeId leader = kNoNode;
    uint64_t decided = 0;
    uint64_t log_len = 0;
    bool is_leader = false;
    // Compaction floor (status-frame trailing extension; 0 from old servers).
    // log_len - compacted = log entries actually resident in memory.
    uint64_t compacted = 0;
  };
  bool GetStatus(Status* out, Time deadline = Seconds(5));

  // Linearizable leader-lease read (frame 0x06, DESIGN.md §15). Blocks until
  // a leader holding the lease serves it with a decided index >= `watermark`
  // (pass the decided index of your last completed write for read-your-writes;
  // 0 for a plain snapshot-consistent read). Follows redirects like
  // AppendAndWait. On success stores the read's serialization point in
  // `*decided_out` (if non-null).
  bool LeaseRead(uint64_t watermark, uint64_t* decided_out = nullptr,
                 Time deadline = Seconds(5));

  NodeId connected_to() const { return connected_to_; }
  uint64_t decided_count() const { return decided_.size(); }

 private:
  bool ConnectTo(NodeId id);
  bool SendFrame(const std::vector<uint8_t>& payload);
  // Reads one frame (blocking up to deadline); false on timeout/disconnect.
  bool ReadFrame(std::vector<uint8_t>* frame, Time deadline);
  void HandleFrame(const std::vector<uint8_t>& frame, Status* status_out);
  void Disconnect();

  struct ReadReplyInfo {
    uint64_t decided = 0;
    bool served = false;
    NodeId leader = kNoNode;
  };

  std::map<NodeId, Endpoint> servers_;
  int fd_ = -1;
  NodeId connected_to_ = kNoNode;
  NodeId redirect_hint_ = kNoNode;
  std::set<uint64_t> decided_;
  std::vector<uint8_t> read_buf_;
  uint64_t next_read_id_ = 1;
  std::map<uint64_t, ReadReplyInfo> read_replies_;
};

}  // namespace opx::net

#endif  // SRC_NET_OMNI_CLIENT_H_
