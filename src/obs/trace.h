// Deterministic trace recorder (DESIGN.md §12).
//
// ObsSink is a ring buffer of POD TraceEvents — ballot/round/slot/node/link
// tagged, stamped with virtual time — plus the metrics registry. Protocol
// code records through the OPX_TRACE macro, which
//
//   - compiles to nothing when the tree is built with -DOPX_OBS=OFF
//     (no OPX_OBS_ENABLED definition), and
//   - is a single null check when no sink is attached at runtime.
//
// Recording allocates nothing: the ring is sized at construction and events
// are overwritten oldest-first. Tracing performs no simulator scheduling and
// draws no randomness, so event-hash fingerprints are bit-identical with
// tracing on, off, or compiled out (asserted by Determinism tests).
//
// The sink has no clock of its own. Harnesses stamp virtual time into it
// (set_now) before dispatching protocol code; sim::Network stamps itself from
// the simulator. JSONL export and the trace-query helpers live in
// src/obs/trace_view.h.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::obs {

enum class EventKind : uint8_t {
  kNone = 0,
  // sim::Network link-state transitions (one-way: node -> peer).
  kLinkDown,
  kLinkUp,
  // Harness lifecycle.
  kCrash,
  kRestart,
  kLeaderElevation,  // a server's IsLeader() flipped false -> true
  // Ballot Leader Election (src/omnipaxos/ble.cc).
  kBleQcGained,      // quorum-connected flipped on    (config = round)
  kBleQcLost,        // quorum-connected flipped off   (config = round)
  kBleBallotBump,    // increased own ballot           (ballot = new n)
  kBleLeader,        // elected leader                 (ballot = n, peer = pid)
  // Sequence Paxos (src/omnipaxos/sequence_paxos.cc).
  kSpPrepareSent,        // leader broadcast Prepare          (ballot = n)
  kSpPromiseSent,        // follower promised                 (ballot = n, peer = to)
  kSpPromiseQuorum,      // leader completed the prepare phase (ballot = n)
  kSpAcceptSyncApplied,  // follower adopted the leader log   (ballot = n, slot = sync_idx)
  kSpAcceptDecideSent,   // leader sent AcceptDecide          (ballot = n, peer = to, slot = log_len)
  kSpDecide,             // decided index advanced            (ballot = n, slot = decided)
  kSpPrepareReq,         // follower asked for a Prepare      (peer = to)
  // Raft (src/raft/raft.cc).
  kRaftElectionStart,  // became (pre-)candidate  (ballot = term, aux = 1 if pre-vote)
  kRaftLeader,         // won an election          (ballot = term, peer = pid)
  kRaftStepDown,       // leader/candidate stepped down (ballot = new term)
  kRaftCommit,         // commit index advanced    (ballot = term, slot = commit)
  // Multi-Paxos (src/multipaxos/multipaxos.cc).
  kMpxPhase1Start,  // started phase 1         (ballot = n)
  kMpxLeader,       // completed phase 1       (ballot = n, peer = pid)
  kMpxDecide,       // decided index advanced  (ballot = n, slot = decided)
  // Viewstamped Replication (src/vr/vr_election.cc).
  kVrViewChangeStart,  // entered view change       (ballot = attempted view)
  kVrDoViewChange,     // EQC met, sent DoViewChange (ballot = view, peer = new leader)
  kVrLeader,           // completed a view change    (ballot = view, peer = pid)
  kVrStartView,        // follower installed a view  (ballot = view, peer = leader)
  // Reconfiguration / log migration (src/rsm/omni_reconfig_sim.h).
  kReconfigStopSign,  // stop-sign decided            (config = next config)
  kMigSegment,        // segment chunk landed          (peer = donor, slot = start, aux = entries)
  kMigDone,           // a fresh server finished fetching (config = target)
  // Log pipeline: compaction, snapshot catch-up, lease reads (DESIGN.md §15).
  kSpTrim,             // prefix compacted away        (slot = new boundary)
  kSpSnapshotInstall,  // ResetToSnapshot applied      (ballot = round, slot = up_to, aux = suffix len)
  kLeaseRead,          // linearizable local read served (slot = decided at read)
  kMaxKind,  // sentinel, not recordable
};

inline const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kLinkDown: return "link-down";
    case EventKind::kLinkUp: return "link-up";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kLeaderElevation: return "leader-elevation";
    case EventKind::kBleQcGained: return "ble-qc-gained";
    case EventKind::kBleQcLost: return "ble-qc-lost";
    case EventKind::kBleBallotBump: return "ble-ballot-bump";
    case EventKind::kBleLeader: return "ble-leader";
    case EventKind::kSpPrepareSent: return "sp-prepare-sent";
    case EventKind::kSpPromiseSent: return "sp-promise-sent";
    case EventKind::kSpPromiseQuorum: return "sp-promise-quorum";
    case EventKind::kSpAcceptSyncApplied: return "sp-accept-sync";
    case EventKind::kSpAcceptDecideSent: return "sp-accept-decide";
    case EventKind::kSpDecide: return "sp-decide";
    case EventKind::kSpPrepareReq: return "sp-prepare-req";
    case EventKind::kRaftElectionStart: return "raft-election-start";
    case EventKind::kRaftLeader: return "raft-leader";
    case EventKind::kRaftStepDown: return "raft-step-down";
    case EventKind::kRaftCommit: return "raft-commit";
    case EventKind::kMpxPhase1Start: return "mpx-phase1-start";
    case EventKind::kMpxLeader: return "mpx-leader";
    case EventKind::kMpxDecide: return "mpx-decide";
    case EventKind::kVrViewChangeStart: return "vr-view-change-start";
    case EventKind::kVrDoViewChange: return "vr-do-view-change";
    case EventKind::kVrLeader: return "vr-leader";
    case EventKind::kVrStartView: return "vr-start-view";
    case EventKind::kReconfigStopSign: return "reconfig-stop-sign";
    case EventKind::kMigSegment: return "mig-segment";
    case EventKind::kMigDone: return "mig-done";
    case EventKind::kSpTrim: return "sp-trim";
    case EventKind::kSpSnapshotInstall: return "sp-snapshot-install";
    case EventKind::kLeaseRead: return "lease-read";
    case EventKind::kMaxKind: break;
  }
  return "unknown";
}

// One trace record. POD on purpose: the ring stores them by value, JSONL
// export reads fields directly, and nothing owns heap state.
struct TraceEvent {
  Time at = 0;                       // virtual time of the event
  EventKind kind = EventKind::kNone;
  uint8_t pad0 = 0;
  uint16_t pad1 = 0;
  NodeId node = kNoNode;             // acting node
  NodeId peer = kNoNode;             // counterpart: link peer, leader pid, donor, ...
  uint32_t config = 0;               // configuration id / BLE round
  uint64_t ballot = 0;               // ballot n / term / view
  uint64_t slot = 0;                 // log index
  uint64_t aux = 0;                  // kind-specific extra
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);

// Ring-buffer recorder + metrics registry. Not thread-safe; the simulator is
// single-threaded by construction.
class ObsSink {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 16;

  explicit ObsSink(size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  // Virtual-time stamp applied to subsequent Record calls. Harnesses set
  // this before dispatching into protocol code.
  void set_now(Time now) { now_ = now; }
  Time now() const { return now_; }

  void Record(EventKind kind, NodeId node, NodeId peer = kNoNode,
              uint64_t ballot = 0, uint64_t slot = 0, uint64_t aux = 0,
              uint32_t config = 0) {
    TraceEvent& e = ring_[head_];
    e.at = now_;
    e.kind = kind;
    e.node = node;
    e.peer = peer;
    e.config = config;
    e.ballot = ballot;
    e.slot = slot;
    e.aux = aux;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
    ++total_;
  }

  // Retained events, oldest first (linearized copy; export/test side only).
  std::vector<TraceEvent> Events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const size_t start = size_ < ring_.size() ? 0 : head_;
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t total() const { return total_; }      // recorded, including overwritten
  uint64_t dropped() const { return dropped_; }  // overwritten by ring wrap

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    total_ = 0;
  }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t total_ = 0;
  Time now_ = 0;
  Metrics metrics_;
};

}  // namespace opx::obs

// Trace hooks. `sink` is an obs::ObsSink*; remaining arguments are the
// Record(...) parameters. With OPX_OBS=OFF at configure time the macros
// vanish entirely, which is what makes the "compiled out" fingerprint
// equivalence trivial to audit.
#if defined(OPX_OBS_ENABLED)
#define OPX_TRACE(sink, ...)       \
  do {                             \
    if ((sink) != nullptr) {       \
      (sink)->Record(__VA_ARGS__); \
    }                              \
  } while (0)
#define OPX_TRACE_NOW(sink, t)   \
  do {                           \
    if ((sink) != nullptr) {     \
      (sink)->set_now(t);        \
    }                            \
  } while (0)
#else
#define OPX_TRACE(sink, ...) \
  do {                       \
  } while (0)
#define OPX_TRACE_NOW(sink, t) \
  do {                         \
  } while (0)
#endif

#endif  // SRC_OBS_TRACE_H_
