// Metrics registry for the deterministic observability layer (DESIGN.md §12).
//
// Counters, gauges, and fixed-bucket histograms, owned by an obs::ObsSink and
// looked up once by name at wiring time; every hot-path update is then a
// plain arithmetic operation on a stable pointer — no map lookups, no
// allocation. The registry iterates in name order (std::map) so printed and
// exported snapshots are deterministic.
//
// These are simulation metrics over virtual time: election latency, heartbeat
// rounds per election, decide latency, bytes per link, migration segment
// throughput (the quantities behind Figures 3-9 and Table 1).
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace opx::obs {

class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest. Bounds are fixed at registration,
// so Observe is a short linear scan with no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(double x) {
    ++count_;
    sum_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (x <= bounds_[i]) {
        ++counts_[i];
        return;
      }
    }
    ++counts_.back();
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // Upper-bound estimate of the q-quantile (q in [0,1]) from bucket counts;
  // observations past the last bound report the observed max.
  double Quantile(double q) const {
    if (count_ == 0) {
      return 0.0;
    }
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < bounds_.size(); ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        return bounds_[i];
      }
    }
    return max_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially spaced histogram bounds: start, start*factor, ... (n bounds).
inline std::vector<double> ExponentialBuckets(double start, double factor, int n) {
  std::vector<double> bounds;
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

// Name-keyed registry. GetX registers on first use and always returns the
// same stable pointer; instruments live as long as the registry.
class Metrics {
 public:
  Counter* GetCounter(const std::string& name) {
    std::unique_ptr<Counter>& slot = counters_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Counter>();
    }
    return slot.get();
  }

  Gauge* GetGauge(const std::string& name) {
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Gauge>();
    }
    return slot.get();
  }

  // `bounds` applies only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds) {
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return slot.get();
  }

  // nullptr when `name` was never registered.
  const Counter* FindCounter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
  }
  const Gauge* FindGauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
  }
  const Histogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
  }

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  // Human-readable snapshot, name-sorted (deterministic).
  void Print(std::ostream& out) const {
    for (const auto& [name, c] : counters_) {
      out << name << " " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      out << name << " " << g->value() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
      out << name << " count=" << h->count() << " mean=" << h->mean()
          << " min=" << h->min() << " max=" << h->max()
          << " p99<=" << h->Quantile(0.99) << "\n";
    }
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace opx::obs

#endif  // SRC_OBS_METRICS_H_
