// Real-network hot-path instrumentation (DESIGN.md §14), following the §12
// metrics contract: every instrument is looked up ONCE at wiring time and the
// per-event update is plain arithmetic on a stable pointer — no map lookups,
// no allocation, nothing on the syscall path.
//
// Unlike the simulation metrics these count real wall-clock I/O, so they are
// never part of a determinism fingerprint; they exist to make the transport's
// batching behavior observable (the writev batch-size histogram is the
// headline: it shows how many frames each syscall carried).
//
// All instruments are nullptr until Wire() is called with a live registry, so
// an unwired transport pays exactly one branch per update site; with
// -DOPX_OBS=OFF the wiring call sites compile away and the pointers stay
// null forever.
#ifndef SRC_OBS_NET_METRICS_H_
#define SRC_OBS_NET_METRICS_H_

#include "src/obs/metrics.h"

namespace opx::obs {

struct NetMetrics {
  Counter* bytes_in = nullptr;       // payload+framing bytes read off sockets
  Counter* bytes_out = nullptr;      // bytes the kernel accepted for send
  Counter* frames_in = nullptr;      // complete frames decoded
  Counter* frames_out = nullptr;     // frames fully handed to the kernel
  Counter* frames_shared = nullptr;  // frames enqueued via an encode-once share
  Counter* writev_calls = nullptr;   // writev syscalls issued
  Counter* reconnects = nullptr;     // outbound sessions (re-)established
  Counter* conns_accepted = nullptr; // inbound connections accepted
  Counter* conns_closed = nullptr;   // connections torn down (either side)
  // Frames per writev call — the batching payoff. Bounds 1..512, x2 spaced.
  Histogram* writev_batch_frames = nullptr;
  // Bytes per writev call, 64B..4MB, x4 spaced.
  Histogram* writev_batch_bytes = nullptr;

  static NetMetrics Wire(Metrics* m) {
    NetMetrics n;
    n.bytes_in = m->GetCounter("net.bytes_in");
    n.bytes_out = m->GetCounter("net.bytes_out");
    n.frames_in = m->GetCounter("net.frames_in");
    n.frames_out = m->GetCounter("net.frames_out");
    n.frames_shared = m->GetCounter("net.frames_shared");
    n.writev_calls = m->GetCounter("net.writev_calls");
    n.reconnects = m->GetCounter("net.reconnects");
    n.conns_accepted = m->GetCounter("net.conns_accepted");
    n.conns_closed = m->GetCounter("net.conns_closed");
    n.writev_batch_frames =
        m->GetHistogram("net.writev_batch_frames", ExponentialBuckets(1, 2, 10));
    n.writev_batch_bytes =
        m->GetHistogram("net.writev_batch_bytes", ExponentialBuckets(64, 4, 9));
    return n;
  }
};

}  // namespace opx::obs

#endif  // SRC_OBS_NET_METRICS_H_
