// Trace querying and JSONL export (DESIGN.md §12).
//
// TraceView is a small value-semantics query layer over a linearized trace:
// filter by kind/node, slice by virtual-time span, find the first event after
// a point in time. Views copy the matching events — this is the test/export
// side, never the recording hot path.
#ifndef SRC_OBS_TRACE_VIEW_H_
#define SRC_OBS_TRACE_VIEW_H_

#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::obs {

class TraceView {
 public:
  TraceView() = default;
  explicit TraceView(std::vector<TraceEvent> events) : events_(std::move(events)) {}
  static TraceView FromSink(const ObsSink& sink) { return TraceView(sink.Events()); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const TraceEvent& operator[](size_t i) const { return events_[i]; }

  // Events of `kind`, in order.
  TraceView Filter(EventKind kind) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.kind == kind) {
        out.push_back(e);
      }
    }
    return TraceView(std::move(out));
  }

  // Events of `kind` recorded by `node`.
  TraceView Filter(EventKind kind, NodeId node) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.kind == kind && e.node == node) {
        out.push_back(e);
      }
    }
    return TraceView(std::move(out));
  }

  // Events of any kind in `kinds`.
  TraceView FilterAny(const std::vector<EventKind>& kinds) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      for (EventKind k : kinds) {
        if (e.kind == k) {
          out.push_back(e);
          break;
        }
      }
    }
    return TraceView(std::move(out));
  }

  // Events with begin <= at < end.
  TraceView Span(Time begin, Time end) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.at >= begin && e.at < end) {
        out.push_back(e);
      }
    }
    return TraceView(std::move(out));
  }

  // First event strictly after `t` (any kind), or nullptr.
  const TraceEvent* FirstAfter(Time t) const {
    for (const TraceEvent& e : events_) {
      if (e.at > t) {
        return &e;
      }
    }
    return nullptr;
  }

  // First event of `kind` strictly after `t`, or nullptr.
  const TraceEvent* FirstAfter(Time t, EventKind kind) const {
    for (const TraceEvent& e : events_) {
      if (e.at > t && e.kind == kind) {
        return &e;
      }
    }
    return nullptr;
  }

  const TraceEvent* Last() const { return events_.empty() ? nullptr : &events_.back(); }

  // Last `n` events (or all, when fewer).
  TraceView Tail(size_t n) const {
    const size_t start = events_.size() > n ? events_.size() - n : 0;
    return TraceView(std::vector<TraceEvent>(events_.begin() + static_cast<ptrdiff_t>(start),
                                             events_.end()));
  }

 private:
  std::vector<TraceEvent> events_;
};

// One event as a single JSON line (no trailing newline).
inline std::string ToJson(const TraceEvent& e) {
  std::ostringstream o;
  o << "{\"at\":" << e.at << ",\"kind\":\"" << EventKindName(e.kind) << "\""
    << ",\"node\":" << e.node << ",\"peer\":" << e.peer
    << ",\"config\":" << e.config << ",\"ballot\":" << e.ballot
    << ",\"slot\":" << e.slot << ",\"aux\":" << e.aux << "}";
  return o.str();
}

// JSONL export: one event per line, oldest first.
inline void WriteJsonl(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    out << ToJson(e) << "\n";
  }
}

inline void WriteJsonl(std::ostream& out, const TraceView& view) {
  WriteJsonl(out, view.events());
}

}  // namespace opx::obs

#endif  // SRC_OBS_TRACE_VIEW_H_
