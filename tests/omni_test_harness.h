// In-memory lockstep cluster for unit-testing OmniPaxos protocol logic
// without the discrete-event simulator: messages are delivered from a FIFO
// queue with manual link control, ticks are explicit, and crashes/restarts
// reuse the per-node Storage exactly as the fail-recovery model prescribes.
#ifndef TESTS_OMNI_TEST_HARNESS_H_
#define TESTS_OMNI_TEST_HARNESS_H_

#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/audit/auditor.h"
#include "src/obs/trace.h"
#include "src/omnipaxos/omni_paxos.h"
#include "src/util/check.h"

namespace opx::testing {

class OmniCluster {
 public:
  explicit OmniCluster(int n, size_t batch_limit = 0, obs::ObsSink* obs = nullptr,
                       size_t trim_watermark = 0)
      : n_(n), batch_limit_(batch_limit), obs_(obs), trim_watermark_(trim_watermark) {
    storages_.resize(static_cast<size_t>(n) + 1);
    nodes_.resize(static_cast<size_t>(n) + 1);
    for (NodeId id = 1; id <= n_; ++id) {
      storages_[static_cast<size_t>(id)] = std::make_unique<omni::Storage>();
      nodes_[static_cast<size_t>(id)] =
          std::make_unique<omni::OmniPaxos>(ConfigFor(id), storages_[static_cast<size_t>(id)].get());
    }
  }

  omni::OmniPaxos& node(NodeId id) { return *nodes_[Checked(id)]; }
  omni::Storage& storage(NodeId id) { return *storages_[Checked(id)]; }
  int size() const { return n_; }

  // Gives `id` a BLE priority so it wins the first election deterministically.
  void SetPriority(NodeId id, uint32_t priority) {
    omni::OmniConfig cfg = ConfigFor(id);
    cfg.ble_priority = priority;
    nodes_[Checked(id)] = std::make_unique<omni::OmniPaxos>(cfg, &storage(id));
  }

  void SetLink(NodeId a, NodeId b, bool up) {
    const auto key = std::minmax(a, b);
    if (up) {
      const bool was_down = down_links_.erase(key) > 0;
      if (was_down && !IsCrashed(a) && !IsCrashed(b)) {
        node(a).Reconnected(b);
        node(b).Reconnected(a);
        Collect();
        AuditNow("reconnect");
      }
    } else {
      down_links_.insert(key);
    }
  }

  bool LinkUp(NodeId a, NodeId b) const {
    return down_links_.count(std::minmax(a, b)) == 0;
  }

  // Isolates `id` from everyone.
  void Isolate(NodeId id) {
    for (NodeId other = 1; other <= n_; ++other) {
      if (other != id) {
        SetLink(id, other, false);
      }
    }
  }

  void HealAll() {
    for (NodeId a = 1; a <= n_; ++a) {
      for (NodeId b = a + 1; b <= n_; ++b) {
        SetLink(a, b, true);
      }
    }
  }

  void Crash(NodeId id) {
    crashed_.insert(id);
    nodes_[Checked(id)] = nullptr;
    // In-flight messages to/from a crashed node vanish.
    std::deque<Wire> kept;
    for (Wire& w : queue_) {
      if (w.from != id && w.to != id) {
        kept.push_back(std::move(w));
      }
    }
    queue_ = std::move(kept);
  }

  void Restart(NodeId id) {
    OPX_CHECK(IsCrashed(id));
    crashed_.erase(id);
    nodes_[Checked(id)] =
        std::make_unique<omni::OmniPaxos>(ConfigFor(id), &storage(id), /*recovered=*/true);
    Collect();
  }

  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  // One BLE heartbeat period on all live nodes, then full message settling.
  void Tick() {
    ++ticks_;
    OPX_TRACE_NOW(obs_, ticks_);
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        node(id).TickElection();
      }
    }
    Collect();
    AuditNow("tick");
    DeliverAll();
  }

  // Runs `rounds` heartbeat periods.
  void TickRounds(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      Tick();
    }
  }

  // Delivers queued messages (and any they generate) until quiescent.
  void DeliverAll() {
    size_t guard = 0;
    while (!queue_.empty()) {
      OPX_CHECK_LT(++guard, 1'000'000u) << "message storm: protocol not quiescing";
      Wire w = std::move(queue_.front());
      queue_.pop_front();
      if (IsCrashed(w.to) || IsCrashed(w.from) || !LinkUp(w.from, w.to)) {
        continue;
      }
      node(w.to).Handle(w.from, std::move(w.body));
      Collect();
      AuditNow("deliver");
    }
  }

  const audit::SafetyAuditor& auditor() const { return auditor_; }

  // Runs the cross-replica safety auditor over all live nodes.
  void AuditNow(const char* label) {
    views_.clear();
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        views_.push_back(node(id).Audit());
      }
    }
    audit::AuditContext ctx;
    ctx.now = ticks_;  // lockstep "time" is the tick count
    ctx.event_id = ++audit_events_;
    ctx.label = label;
    auditor_.Observe(views_, ctx);
  }

  // Appends a command at `id` and settles. Returns false if rejected.
  bool Append(NodeId id, uint64_t cmd_id) {
    const bool ok = node(id).Append(omni::Entry::Command(cmd_id, 8));
    Collect();
    DeliverAll();
    return ok;
  }

  // The leader claimant with the highest ballot. A leader that lost
  // quorum-connectivity keeps its role until it observes a higher round, so
  // multiple claimants can coexist transiently (LE2 allows this); the one
  // with the maximum ballot is the live leader of the cluster.
  NodeId CurrentLeader() {
    NodeId best = kNoNode;
    omni::Ballot best_ballot;
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id) && node(id).IsLeader() &&
          node(id).paxos().leader_ballot() > best_ballot) {
        best = id;
        best_ballot = node(id).paxos().leader_ballot();
      }
    }
    return best;
  }

  // Collects outgoing messages from all live nodes into the wire queue.
  void Collect() {
    for (NodeId id = 1; id <= n_; ++id) {
      if (IsCrashed(id)) {
        continue;
      }
      for (omni::OmniOut& out : node(id).TakeOutgoing()) {
        if (LinkUp(id, out.to) && !IsCrashed(out.to)) {
          queue_.push_back(Wire{id, out.to, std::move(out.body)});
        }
      }
    }
  }

 private:
  struct Wire {
    NodeId from;
    NodeId to;
    omni::OmniMessage body;
  };

  size_t Checked(NodeId id) const {
    OPX_CHECK(id >= 1 && id <= n_);
    return static_cast<size_t>(id);
  }

  omni::OmniConfig ConfigFor(NodeId id) const {
    omni::OmniConfig cfg;
    cfg.pid = id;
    for (NodeId peer = 1; peer <= n_; ++peer) {
      if (peer != id) {
        cfg.peers.push_back(peer);
      }
    }
    cfg.batch_limit = batch_limit_;
    cfg.trim_watermark = trim_watermark_;
    cfg.obs = obs_;
    return cfg;
  }

  int n_;
  size_t batch_limit_ = 0;
  obs::ObsSink* obs_ = nullptr;
  size_t trim_watermark_ = 0;
  std::vector<std::unique_ptr<omni::OmniPaxos>> nodes_;
  std::vector<std::unique_ptr<omni::Storage>> storages_;
  std::deque<Wire> queue_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> crashed_;

  audit::SafetyAuditor auditor_;
  std::vector<audit::AuditView> views_;
  uint64_t audit_events_ = 0;
  int64_t ticks_ = 0;
};

}  // namespace opx::testing

#endif  // TESTS_OMNI_TEST_HARNESS_H_
