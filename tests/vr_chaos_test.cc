// Seeded chaos sweep for the VR baseline (view-change election over Sequence
// Paxos): decided prefixes must agree on every round of every seed, and the
// cluster must recover once fully healed.
#include <gtest/gtest.h>

#include <memory>

#include "src/util/rng.h"
#include "src/vr/vr_replica.h"
#include "tests/lockstep_harness.h"

namespace opx {
namespace {

constexpr int kServers = 5;

class VrChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VrChaosTest, DecidedPrefixesAgree) {
  Rng rng(GetParam());
  std::vector<std::unique_ptr<omni::Storage>> storages(kServers + 1);
  for (int i = 1; i <= kServers; ++i) {
    storages[static_cast<size_t>(i)] = std::make_unique<omni::Storage>();
  }
  using Cluster = testing::LockstepCluster<vr::VrReplica>;
  Cluster cluster(kServers, [&](NodeId id, std::vector<NodeId> peers) {
    vr::VrReplicaConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.seed = GetParam() * 10 + static_cast<uint64_t>(id);
    return std::make_unique<vr::VrReplica>(cfg, storages[static_cast<size_t>(id)].get());
  });
  cluster.TickRounds(5);

  uint64_t next_cmd = 1;
  for (int round = 0; round < 100; ++round) {
    switch (rng.NextBounded(8)) {
      case 0: {
        const NodeId a = static_cast<NodeId>(rng.NextInRange(1, kServers));
        const NodeId b = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (a != b) {
          cluster.SetLink(a, b, false);
        }
        break;
      }
      case 1:
        cluster.HealAll();
        break;
      default:
        break;
    }
    for (NodeId id = 1; id <= kServers; ++id) {
      if (cluster.node(id).IsLeader()) {
        cluster.node(id).Append(omni::Entry::Command(next_cmd++, 8));
        break;
      }
    }
    cluster.Tick();
    for (NodeId a = 1; a <= kServers; ++a) {
      for (NodeId b = a + 1; b <= kServers; ++b) {
        const LogIndex common = std::min(cluster.node(a).decided_idx(),
                                         cluster.node(b).decided_idx());
        for (LogIndex i = 0; i < common; ++i) {
          ASSERT_EQ(storages[static_cast<size_t>(a)]->At(i),
                    storages[static_cast<size_t>(b)]->At(i))
              << "divergence at " << i << " (seed " << GetParam() << ", round "
              << round << ")";
        }
      }
    }
  }
  cluster.HealAll();
  cluster.TickRounds(30);
  NodeId leader = kNoNode;
  for (NodeId id = 1; id <= kServers; ++id) {
    if (cluster.node(id).IsLeader()) {
      leader = id;
    }
  }
  ASSERT_NE(leader, kNoNode) << "seed " << GetParam();
  const LogIndex before = cluster.node(leader).decided_idx();
  cluster.node(leader).Append(omni::Entry::Command(next_cmd++, 8));
  cluster.Collect();
  cluster.DeliverAll();
  EXPECT_GT(cluster.node(leader).decided_idx(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VrChaosTest, ::testing::Range<uint64_t>(600, 608));

}  // namespace
}  // namespace opx
