// Unit + integration tests for the net hot path (DESIGN.md §14): framing
// building blocks (FrameQueue/FrameReader partial-I/O resumption), the epoll
// readiness core, and a 64-connection multiplexing run against a real
// three-server loopback cluster. Suite names contain "Tcp" so the TSan smoke
// filter (*Tcp*) picks them up.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/epoll_loop.h"
#include "src/net/frame_queue.h"
#include "src/net/omni_client.h"
#include "src/net/omni_tcp_server.h"

namespace opx {
namespace {

using net::EpollLoop;
using net::Endpoint;
using net::FramePool;
using net::FrameQueue;
using net::FrameReader;
using net::FrameRef;
using net::OmniClient;
using net::OmniTcpServer;
using net::ServerOptions;
using net::WireFrame;

// Builds a [u32 length][payload] frame whose payload is `n` bytes of `fill`.
FrameRef MakeFrame(FramePool* pool, size_t n, uint8_t fill) {
  FrameRef f = pool->Acquire();
  f->bytes.resize(4);
  f->bytes.insert(f->bytes.end(), n, fill);
  net::PatchFrameLength(&f->bytes, 0);
  return f;
}

// --- FrameQueue: writev building + partial-write resumption ---------------

TEST(TcpFrameQueue, BuildIovecsCoversQueuedFramesInOrder) {
  FramePool pool;
  FrameQueue q;
  q.Push(MakeFrame(&pool, 10, 0xAA));
  q.Push(MakeFrame(&pool, 20, 0xBB));
  q.Push(MakeFrame(&pool, 30, 0xCC));
  EXPECT_EQ(q.frames(), 3u);
  EXPECT_EQ(q.bytes(), (4u + 10) + (4 + 20) + (4 + 30));

  struct iovec iov[8];
  const size_t n = q.BuildIovecs(iov, 8);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(iov[0].iov_len, 14u);
  EXPECT_EQ(iov[1].iov_len, 24u);
  EXPECT_EQ(iov[2].iov_len, 34u);
  // max_iov caps the batch without losing frames.
  EXPECT_EQ(q.BuildIovecs(iov, 2), 2u);
}

TEST(TcpFrameQueue, PartialConsumeResumesMidFrame) {
  FramePool pool;
  FrameQueue q;
  q.Push(MakeFrame(&pool, 10, 0xAA));  // 14 bytes on the wire
  q.Push(MakeFrame(&pool, 10, 0xBB));  // 14 bytes

  // Kernel accepted the first frame and 5 bytes of the second.
  q.Consume(14 + 5, &pool);
  EXPECT_EQ(q.frames(), 1u);
  EXPECT_EQ(q.bytes(), 9u);

  struct iovec iov[4];
  ASSERT_EQ(q.BuildIovecs(iov, 4), 1u);
  EXPECT_EQ(iov[0].iov_len, 9u);  // resumes at the offset, not the frame start
  const auto* base = static_cast<const uint8_t*>(iov[0].iov_base);
  EXPECT_EQ(base[0], 0xBB);  // 5 bytes in: past the header, into the payload

  // A second short write inside the SAME frame advances the offset again.
  q.Consume(3, &pool);
  ASSERT_EQ(q.BuildIovecs(iov, 4), 1u);
  EXPECT_EQ(iov[0].iov_len, 6u);

  q.Consume(6, &pool);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(TcpFrameQueue, ConsumeAcrossSeveralFrameBoundaries) {
  FramePool pool;
  FrameQueue q;
  for (int i = 0; i < 4; ++i) {
    q.Push(MakeFrame(&pool, 6, static_cast<uint8_t>(i)));  // 10 bytes each
  }
  // One writev return spanning frames 0, 1, 2 and one byte of frame 3.
  q.Consume(31, &pool);
  EXPECT_EQ(q.frames(), 1u);
  EXPECT_EQ(q.bytes(), 9u);
  // The three fully-sent (sole-reference) frames were recycled.
  EXPECT_EQ(pool.pooled(), 3u);
}

TEST(TcpFrameQueue, SharedBroadcastFrameIsPooledOnlyByLastQueue) {
  FramePool pool;
  FrameQueue a;
  FrameQueue b;
  FrameRef shared = MakeFrame(&pool, 8, 0xEE);
  a.Push(shared);
  b.Push(shared);
  shared = nullptr;  // queues hold the only references now

  a.Consume(12, &pool);
  EXPECT_EQ(pool.pooled(), 0u);  // b still holds a reference
  b.Consume(12, &pool);
  EXPECT_EQ(pool.pooled(), 1u);  // last owner recycles it
}

TEST(TcpFrameQueue, ClearRecyclesEverything) {
  FramePool pool;
  FrameQueue q;
  q.Push(MakeFrame(&pool, 5, 0x01));
  q.Push(MakeFrame(&pool, 5, 0x02));
  q.Clear(&pool);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(pool.pooled(), 2u);
  // A cleared queue rebuilds from a zero offset.
  q.Push(MakeFrame(&pool, 5, 0x03));
  struct iovec iov[1];
  ASSERT_EQ(q.BuildIovecs(iov, 1), 1u);
  EXPECT_EQ(iov[0].iov_len, 9u);
}

// --- FrameReader: short reads, including mid-length-header splits ---------

std::vector<uint8_t> EncodedFrame(const std::string& payload) {
  std::vector<uint8_t> out(4 + payload.size());
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  net::PatchFrameLength(&out, 0);
  return out;
}

TEST(TcpFrameReader, ByteAtATimeSplitsTheLengthHeader) {
  FrameReader reader;
  std::vector<std::string> got;
  const std::vector<uint8_t> wire = EncodedFrame("hello");
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(reader.Feed(&wire[i], 1, [&](const uint8_t* d, size_t n) {
      got.emplace_back(reinterpret_cast<const char*>(d), n);
      return true;
    }));
    // Nothing fires until the very last byte arrives.
    EXPECT_EQ(got.size(), i + 1 == wire.size() ? 1u : 0u);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(TcpFrameReader, ChunkBoundaryInsideSecondLengthHeader) {
  FrameReader reader;
  std::vector<std::string> got;
  std::vector<uint8_t> wire = EncodedFrame("first");
  const std::vector<uint8_t> second = EncodedFrame("second!");
  wire.insert(wire.end(), second.begin(), second.end());

  // Split two bytes into the second frame's length field.
  const size_t cut = 4 + 5 + 2;
  auto sink = [&](const uint8_t* d, size_t n) {
    got.emplace_back(reinterpret_cast<const char*>(d), n);
    return true;
  };
  ASSERT_TRUE(reader.Feed(wire.data(), cut, sink));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(reader.buffered(), 2u);  // half a length header retained

  ASSERT_TRUE(reader.Feed(wire.data() + cut, wire.size() - cut, sink));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "second!");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(TcpFrameReader, ManyFramesInOneFeed) {
  FrameReader reader;
  std::vector<uint8_t> wire;
  for (int i = 0; i < 50; ++i) {
    const std::vector<uint8_t> f = EncodedFrame("msg" + std::to_string(i));
    wire.insert(wire.end(), f.begin(), f.end());
  }
  int count = 0;
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size(), [&](const uint8_t*, size_t) {
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 50);
}

TEST(TcpFrameReader, OversizedLengthIsRejected) {
  FrameReader reader;
  uint8_t bad[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB, over kMaxFrameBytes
  EXPECT_FALSE(reader.Feed(bad, sizeof(bad), [](const uint8_t*, size_t) {
    ADD_FAILURE() << "no frame should fire";
    return true;
  }));
}

TEST(TcpFrameReader, ConfigurableMaxRejectsOverBudgetFrame) {
  // A client-facing listener can run a much tighter budget than peers.
  FrameReader tight(16);
  EXPECT_EQ(tight.max_frame_bytes(), 16u);
  const std::vector<uint8_t> wire = EncodedFrame(std::string(17, 'x'));
  EXPECT_FALSE(tight.Feed(wire.data(), wire.size(), [](const uint8_t*, size_t) {
    ADD_FAILURE() << "over-budget frame must not fire";
    return true;
  }));
}

TEST(TcpFrameReader, ConfigurableMaxAcceptsFrameAtTheBound) {
  FrameReader reader(16);
  const std::vector<uint8_t> wire = EncodedFrame(std::string(16, 'x'));
  int fired = 0;
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size(), [&](const uint8_t*, size_t n) {
    ++fired;
    EXPECT_EQ(n, 16u);
    return true;
  }));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reader.buffered(), 0u);

  // The default-constructed reader still enforces the transport-wide bound.
  FrameReader dflt;
  EXPECT_EQ(dflt.max_frame_bytes(), net::kMaxFrameBytes);
}

TEST(TcpFrameReader, OnFrameMayClearTheReaderMidBatch) {
  // A connection teardown inside on_frame Clear()s the reader while Feed is
  // still iterating; the loop must survive the buffer shrinking under it.
  FrameReader reader;
  std::vector<uint8_t> wire;
  for (int i = 0; i < 3; ++i) {
    const std::vector<uint8_t> f = EncodedFrame("x");
    wire.insert(wire.end(), f.begin(), f.end());
  }
  int fired = 0;
  ASSERT_TRUE(reader.Feed(wire.data(), wire.size(), [&](const uint8_t*, size_t) {
    ++fired;
    reader.Clear();
    return false;  // connection is gone; stop extraction
  }));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reader.buffered(), 0u);
}

// --- EpollLoop: edge-triggered readiness over real fds --------------------

class TcpEpollLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv_), 0);
  }
  void TearDown() override {
    if (sv_[0] >= 0) close(sv_[0]);
    if (sv_[1] >= 0) close(sv_[1]);
  }

  // Drains `fd` to EAGAIN, returning the bytes read.
  static size_t DrainFd(int fd) {
    size_t total = 0;
    char buf[4096];
    while (true) {
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n <= 0) {
        break;
      }
      total += static_cast<size_t>(n);
    }
    return total;
  }

  int sv_[2] = {-1, -1};
};

TEST_F(TcpEpollLoopTest, EdgeTriggeredReadFiresPerBurst) {
  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  size_t received = 0;
  ASSERT_TRUE(loop.Add(sv_[0], [&](uint32_t bits) {
    if (bits & EpollLoop::kReadable) {
      received += DrainFd(sv_[0]);
    }
  }));
  ASSERT_EQ(write(sv_[1], "abcde", 5), 5);
  ASSERT_GE(loop.Wait(1000), 1);
  EXPECT_EQ(received, 5u);

  // Drained to EAGAIN, so a fresh write produces a fresh edge.
  ASSERT_EQ(write(sv_[1], "xyz", 3), 3);
  ASSERT_GE(loop.Wait(1000), 1);
  EXPECT_EQ(received, 8u);
  loop.Remove(sv_[0]);
  EXPECT_EQ(loop.watched(), 0u);
}

TEST_F(TcpEpollLoopTest, WritableEdgeAfterSendBufferDrains) {
  // Shrink the send buffer, fill it to EAGAIN, then free space on the peer
  // side: the loop must deliver a kWritable edge — the EAGAIN-resume contract
  // the transport's FlushConn relies on.
  const int small = 4096;
  setsockopt(sv_[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  std::vector<char> chunk(4096, 'z');
  size_t filled = 0;
  while (true) {
    const ssize_t n = write(sv_[0], chunk.data(), chunk.size());
    if (n < 0) {
      ASSERT_EQ(errno, EAGAIN);
      break;
    }
    filled += static_cast<size_t>(n);
  }
  ASSERT_GT(filled, 0u);

  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  int writable_edges = 0;
  ASSERT_TRUE(loop.Add(sv_[0], [&](uint32_t bits) {
    if (bits & EpollLoop::kWritable) {
      ++writable_edges;
    }
  }));
  // Buffer is full: no writable edge yet.
  loop.Wait(0);
  EXPECT_EQ(writable_edges, 0);

  // The reader consumes everything; writability transitions.
  EXPECT_EQ(DrainFd(sv_[1]), filled);
  ASSERT_GE(loop.Wait(1000), 1);
  EXPECT_EQ(writable_edges, 1);
}

TEST_F(TcpEpollLoopTest, HandlerMayRemoveItsOwnFd) {
  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  int fires = 0;
  ASSERT_TRUE(loop.Add(sv_[0], [&](uint32_t bits) {
    if (bits & EpollLoop::kReadable) {
      ++fires;
      DrainFd(sv_[0]);
      loop.Remove(sv_[0]);  // closure must stay alive through this
    }
  }));
  ASSERT_EQ(write(sv_[1], "q", 1), 1);
  ASSERT_GE(loop.Wait(1000), 1);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(loop.watched(), 0u);
  // Further traffic reaches nobody.
  ASSERT_EQ(write(sv_[1], "q", 1), 1);
  loop.Wait(50);
  EXPECT_EQ(fires, 1);
}

TEST_F(TcpEpollLoopTest, TimerFiresAndCoalescesMissedPeriods) {
  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  int ticks = 0;
  const int timer = loop.AddTimer(Millis(10), [&] { ++ticks; });
  ASSERT_GE(timer, 0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ticks < 2 && std::chrono::steady_clock::now() < deadline) {
    loop.Wait(100);
  }
  EXPECT_GE(ticks, 2);

  // Sleep through several periods without waiting: they coalesce into one
  // dispatch on the next Wait, not a burst of catch-up ticks.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const int before = ticks;
  loop.Wait(100);
  EXPECT_EQ(ticks, before + 1);

  loop.CancelTimer(timer);
  EXPECT_EQ(loop.watched(), 0u);
}

// --- 64-connection multiplexing against a real loopback cluster -----------

TEST(TcpManyClients, SixtyFourConcurrentConnectionsReplicate) {
  // Three servers on loopback, each on its own thread; ports derived from the
  // pid to dodge parallel test invocations (same scheme as tcp_runtime_test).
  const uint16_t base = static_cast<uint16_t>(20000 + ((getpid() + 9173) % 20000));
  std::map<NodeId, Endpoint> endpoints;
  for (NodeId id = 1; id <= 3; ++id) {
    endpoints[id] = Endpoint{"127.0.0.1", static_cast<uint16_t>(base + id)};
  }
  struct Slot {
    std::unique_ptr<OmniTcpServer> server;
    std::thread thread;
    std::atomic<bool> stop{false};
  };
  Slot slots[4];
  for (NodeId id = 1; id <= 3; ++id) {
    ServerOptions options;
    options.id = id;
    options.listen_port = endpoints[id].port;
    options.election_timeout = Millis(30);
    options.ble_priority = id == 1 ? 1 : 0;
    for (NodeId peer = 1; peer <= 3; ++peer) {
      if (peer != id) {
        options.peers[peer] = endpoints[peer];
      }
    }
    auto& slot = slots[static_cast<size_t>(id)];
    slot.server = std::make_unique<OmniTcpServer>(options);
    ASSERT_TRUE(slot.server->Start());
    slot.thread = std::thread([&slot] { slot.server->Run(slot.stop); });
  }

  constexpr int kClients = 64;
  {
    // All 64 clients connect and STAY connected — the servers' transports
    // multiplex every socket in one epoll set — then each appends twice.
    std::vector<std::unique_ptr<OmniClient>> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<OmniClient>(endpoints));
      ASSERT_TRUE(clients.back()->Connect(Seconds(10))) << "client " << i;
    }
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < kClients; ++i) {
        const uint64_t cmd = static_cast<uint64_t>(round * kClients + i + 1);
        ASSERT_TRUE(clients[i]->AppendAndWait(cmd, 8, Seconds(10)))
            << "client " << i << " round " << round;
      }
    }
    OmniClient::Status status;
    ASSERT_TRUE(clients[0]->GetStatus(&status, Seconds(5)));
    EXPECT_GE(status.decided, static_cast<uint64_t>(2 * kClients));
  }

  for (NodeId id = 1; id <= 3; ++id) {
    auto& slot = slots[static_cast<size_t>(id)];
    slot.stop.store(true);
    slot.thread.join();
  }
}

// --- Client hardening against a hostile frame header ----------------------

// Regression for the ReadFrame length-wrap bug: a server advertising
// len = 0xFFFFFFFF made the old `read_buf_.size() >= 4 + len` comparison
// wrap to `>= 3` in uint32, so assign() read ~4 GiB past the buffer. The
// fixed client treats any length above kMaxFrameBytes as a protocol
// violation and disconnects. (No "Tcp" in the suite name: this test is not
// part of the TSan smoke filter.)
TEST(ClientWire, PoisonedLengthHeaderDisconnectsInsteadOfWrapping) {
  const uint16_t port = static_cast<uint16_t>(20000 + ((getpid() + 4211) % 20000));
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(listen_fd, 1), 0);

  std::thread evil([listen_fd] {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      return;
    }
    uint8_t drain[256];
    (void)!read(fd, drain, sizeof(drain));  // client hello
    const uint8_t poison[8] = {0xFF, 0xFF, 0xFF, 0xFF, 'b', 'o', 'o', 'm'};
    (void)!write(fd, poison, sizeof(poison));
    uint8_t b = 0;
    while (read(fd, &b, 1) > 0) {  // hold the socket until the client drops it
    }
    close(fd);
  });

  std::map<NodeId, Endpoint> endpoints{{1, Endpoint{"127.0.0.1", port}}};
  OmniClient client(endpoints);
  ASSERT_TRUE(client.Connect(Seconds(5)));
  OmniClient::Status status;
  EXPECT_FALSE(client.GetStatus(&status, Seconds(5)));

  close(listen_fd);
  evil.join();
}

}  // namespace
}  // namespace opx
