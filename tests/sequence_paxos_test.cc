// Unit and scenario tests for Sequence Paxos + BLE through the OmniPaxos
// composition, using the lockstep in-memory cluster.
#include <gtest/gtest.h>

#include "src/omnipaxos/omni_paxos.h"
#include "tests/omni_test_harness.h"

namespace opx {
namespace {

using omni::Entry;
using omni::kNullBallot;
using testing::OmniCluster;

// Checks SC2 pairwise for all live servers: one decided log must be a prefix
// of the other.
void ExpectDecidedPrefixConsistency(OmniCluster& cluster) {
  for (NodeId a = 1; a <= cluster.size(); ++a) {
    for (NodeId b = a + 1; b <= cluster.size(); ++b) {
      if (cluster.IsCrashed(a) || cluster.IsCrashed(b)) {
        continue;
      }
      const auto& sa = cluster.storage(a);
      const auto& sb = cluster.storage(b);
      const LogIndex common = std::min(sa.decided_idx(), sb.decided_idx());
      for (LogIndex i = 0; i < common; ++i) {
        ASSERT_EQ(sa.At(i), sb.At(i)) << "SC2 violated at index " << i << " between servers "
                                      << a << " and " << b;
      }
    }
  }
}

TEST(Election, ThreeServersElectOneLeader) {
  OmniCluster cluster(3);
  cluster.TickRounds(3);
  EXPECT_NE(cluster.CurrentLeader(), kNoNode);
  int leaders = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    leaders += cluster.node(id).IsLeader() ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Election, HighestPriorityWinsFirstElection) {
  OmniCluster cluster(3);
  cluster.SetPriority(2, 10);
  cluster.TickRounds(3);
  EXPECT_EQ(cluster.CurrentLeader(), 2);
}

TEST(Election, FiveServersElectOneLeader) {
  OmniCluster cluster(5);
  cluster.TickRounds(3);
  EXPECT_NE(cluster.CurrentLeader(), kNoNode);
}

TEST(Election, SingleServerElectsItself) {
  OmniCluster cluster(1);
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.CurrentLeader(), 1);
  EXPECT_TRUE(cluster.Append(1, 1));
  EXPECT_EQ(cluster.node(1).decided_idx(), 1u);
}

TEST(Election, LeaderCrashTriggersReelection) {
  OmniCluster cluster(3);
  cluster.TickRounds(3);
  const NodeId old_leader = cluster.CurrentLeader();
  ASSERT_NE(old_leader, kNoNode);
  cluster.Crash(old_leader);
  cluster.TickRounds(4);
  const NodeId new_leader = cluster.CurrentLeader();
  EXPECT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, old_leader);
}

TEST(Election, BallotsMonotonicallyIncrease) {
  OmniCluster cluster(3);
  cluster.TickRounds(3);
  const NodeId first = cluster.CurrentLeader();
  const auto b1 = cluster.node(1).ble().leader();
  cluster.Crash(first);
  cluster.TickRounds(4);
  const NodeId second = cluster.CurrentLeader();
  ASSERT_NE(second, kNoNode);
  const auto b2 = cluster.node(second).ble().leader();
  EXPECT_GT(b2, b1);  // LE3
}

TEST(Replication, AppendDecidesOnAllServers) {
  OmniCluster cluster(3);
  cluster.TickRounds(3);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    EXPECT_TRUE(cluster.Append(leader, cmd));
  }
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(cluster.node(id).decided_idx(), 10u) << "server " << id;
  }
  ExpectDecidedPrefixConsistency(cluster);
}

TEST(Replication, FollowerForwardsProposalsToLeader) {
  OmniCluster cluster(3);
  cluster.TickRounds(3);
  const NodeId leader = cluster.CurrentLeader();
  NodeId follower = kNoNode;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  EXPECT_TRUE(cluster.Append(follower, 42));
  // The forwarded proposal needs an extra settle round after the leader
  // appends it.
  cluster.Collect();
  cluster.DeliverAll();
  EXPECT_EQ(cluster.node(leader).decided_idx(), 1u);
  EXPECT_EQ(cluster.storage(leader).At(0).cmd_id, 42u);
}

TEST(Replication, MinorityPartitionDoesNotDecide) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  // Cut the leader off from both followers: it keeps its role until BLE
  // reacts, but nothing new can be decided.
  cluster.Isolate(1);
  cluster.Append(1, 7);
  EXPECT_EQ(cluster.node(1).decided_idx(), 0u);
}

TEST(Replication, MajorityDecidesDespiteOneDisconnectedFollower) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  cluster.SetLink(1, 3, false);
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    EXPECT_TRUE(cluster.Append(1, cmd));
  }
  EXPECT_EQ(cluster.node(1).decided_idx(), 5u);
  EXPECT_EQ(cluster.node(2).decided_idx(), 5u);
  EXPECT_EQ(cluster.node(3).decided_idx(), 0u);
  // Heal: the straggler catches up via the reconnect → PrepareReq path.
  cluster.SetLink(1, 3, true);
  cluster.DeliverAll();
  EXPECT_EQ(cluster.node(3).decided_idx(), 5u);
  ExpectDecidedPrefixConsistency(cluster);
}

TEST(Replication, NewLeaderAdoptsDecidedEntries) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  for (uint64_t cmd = 1; cmd <= 3; ++cmd) {
    cluster.Append(1, cmd);
  }
  cluster.Crash(1);
  cluster.TickRounds(4);
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_GE(cluster.node(new_leader).decided_idx(), 3u);
  cluster.Append(new_leader, 4);
  EXPECT_EQ(cluster.node(new_leader).decided_idx(), 4u);
  ExpectDecidedPrefixConsistency(cluster);
}

TEST(Replication, UnchosenEntriesAreOverwritten) {
  // Fig. 3a: entries accepted only by a minority in an old round are
  // overwritten by the new leader's log.
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  cluster.Append(1, 1);
  // Leader 1 gets cut off from everyone, then accepts entries alone.
  cluster.Isolate(1);
  cluster.Append(1, 100);
  cluster.Append(1, 101);
  EXPECT_EQ(cluster.storage(1).log_len(), 3u);
  EXPECT_EQ(cluster.node(1).decided_idx(), 1u);
  // The rest elect a new leader and decide different entries.
  cluster.TickRounds(4);
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  ASSERT_NE(new_leader, 1);
  cluster.Append(new_leader, 200);
  EXPECT_EQ(cluster.node(new_leader).decided_idx(), 2u);
  // Heal: server 1 must drop its unchosen tail and adopt the new log.
  cluster.HealAll();
  cluster.DeliverAll();
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.storage(1).At(1).cmd_id, 200u);
  ExpectDecidedPrefixConsistency(cluster);
}

TEST(Recovery, RestartedServerCatchesUp) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  cluster.Append(1, 1);
  cluster.Crash(3);
  cluster.Append(1, 2);
  cluster.Append(1, 3);
  cluster.Restart(3);
  cluster.DeliverAll();
  EXPECT_EQ(cluster.node(3).decided_idx(), 3u);
  ExpectDecidedPrefixConsistency(cluster);
}

TEST(Recovery, RecoveringServerIgnoresNonPrepareMessages) {
  omni::Storage storage;
  omni::SequencePaxosConfig cfg;
  cfg.pid = 1;
  cfg.peers = {2, 3};
  omni::SequencePaxos sp(cfg, &storage, /*recovered=*/true);
  EXPECT_EQ(sp.phase(), omni::Phase::kRecover);
  // An AcceptDecide in recover state must be dropped.
  omni::AcceptDecide ad;
  ad.n = omni::Ballot{1, 0, 2};
  ad.start_idx = 0;
  ad.entries = {Entry::Command(9, 8)};
  sp.Handle(2, ad);
  EXPECT_EQ(storage.log_len(), 0u);
}

TEST(StopSign, DecidedStopSignStopsConfiguration) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  cluster.Append(1, 1);
  omni::StopSign ss;
  ss.next_config = 1;
  ss.next_nodes = {3, 4, 5};
  EXPECT_TRUE(cluster.node(1).ProposeReconfiguration(ss));
  cluster.Collect();
  cluster.DeliverAll();
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_TRUE(cluster.node(id).IsStopped()) << "server " << id;
    ASSERT_TRUE(cluster.node(id).DecidedStopSign().has_value());
    EXPECT_EQ(cluster.node(id).DecidedStopSign()->next_config, 1u);
  }
  // No entries can be appended after the stop-sign (§6).
  EXPECT_FALSE(cluster.Append(1, 99));
  EXPECT_FALSE(cluster.node(1).ProposeReconfiguration(ss));
}

TEST(StopSign, SecondReconfigurationProposalRejected) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  omni::StopSign ss;
  ss.next_config = 1;
  ss.next_nodes = {1, 2, 3};
  EXPECT_TRUE(cluster.node(1).ProposeReconfiguration(ss));
  EXPECT_FALSE(cluster.node(1).ProposeReconfiguration(ss));
}

}  // namespace
}  // namespace opx
