// Integration tests: full simulated clusters (client + network + protocol)
// for every protocol adapter, including the §7.2 partial-connectivity
// behaviours that Table 1 summarizes.
#include <gtest/gtest.h>

#include "src/rsm/experiments.h"

namespace opx {
namespace {

using rsm::MultiPaxosNode;
using rsm::NormalConfig;
using rsm::OmniNode;
using rsm::PartitionConfig;
using rsm::RaftNode;
using rsm::RaftPvCqNode;
using rsm::Scenario;
using rsm::VrNode;

NormalConfig QuickNormal() {
  NormalConfig cfg;
  cfg.warmup = Seconds(2);
  cfg.duration = Seconds(5);
  return cfg;
}

PartitionConfig QuickPartition(Scenario s) {
  PartitionConfig cfg;
  cfg.scenario = s;
  cfg.num_servers = s == Scenario::kChained ? 3 : 5;
  cfg.partition_duration = Seconds(10);
  cfg.post_heal = Seconds(5);
  cfg.warmup = Seconds(2);
  return cfg;
}

// --- Normal execution: every protocol serves the closed-loop client. -------

TEST(ClusterNormal, OmniServesClient) {
  const auto r = rsm::RunNormal<OmniNode>(QuickNormal());
  EXPECT_GT(r.throughput, 10'000.0);
  EXPECT_LT(r.election_io_share, 0.01);  // §7.1: BLE overhead is negligible
}

TEST(ClusterNormal, RaftServesClient) {
  const auto r = rsm::RunNormal<RaftNode>(QuickNormal());
  EXPECT_GT(r.throughput, 10'000.0);
}

TEST(ClusterNormal, RaftPvCqServesClient) {
  const auto r = rsm::RunNormal<RaftPvCqNode>(QuickNormal());
  EXPECT_GT(r.throughput, 10'000.0);
}

TEST(ClusterNormal, MultiPaxosServesClient) {
  const auto r = rsm::RunNormal<MultiPaxosNode>(QuickNormal());
  EXPECT_GT(r.throughput, 10'000.0);
}

TEST(ClusterNormal, VrServesClient) {
  const auto r = rsm::RunNormal<VrNode>(QuickNormal());
  EXPECT_GT(r.throughput, 10'000.0);
}

TEST(ClusterNormal, WanLatencyBoundsThroughput) {
  NormalConfig lan = QuickNormal();
  NormalConfig wan = QuickNormal();
  wan.wan = true;
  // Election timeouts must exceed the WAN RTT (heartbeat replies would
  // otherwise always arrive late and no leader could be elected).
  wan.election_timeout = Millis(500);
  const auto lan_result = rsm::RunNormal<OmniNode>(lan);
  const auto wan_result = rsm::RunNormal<OmniNode>(wan);
  // CP=500 over a >100 ms RTT is latency-bound: far below the LAN number.
  EXPECT_LT(wan_result.throughput, lan_result.throughput / 10);
  EXPECT_GT(wan_result.throughput, 1'000.0);
}

// --- Quorum-loss (Fig. 8a). -------------------------------------------------

TEST(ClusterQuorumLoss, OmniRecoversInConstantTime) {
  const auto r = rsm::RunPartition<OmniNode>(QuickPartition(Scenario::kQuorumLoss));
  EXPECT_TRUE(r.recovered);
  // Constant-time recovery: about four election timeouts (§7.2), generously
  // bounded here.
  EXPECT_LT(r.downtime, 8 * Millis(50));
}

TEST(ClusterQuorumLoss, RaftEventuallyRecovers) {
  const auto r = rsm::RunPartition<RaftNode>(QuickPartition(Scenario::kQuorumLoss));
  EXPECT_TRUE(r.recovered);  // the hub learns higher terms and gets elected
}

TEST(ClusterQuorumLoss, MultiPaxosDeadlocks) {
  const auto r = rsm::RunPartition<MultiPaxosNode>(QuickPartition(Scenario::kQuorumLoss));
  EXPECT_FALSE(r.recovered);
  EXPECT_GE(r.downtime, Seconds(9));  // down for the partition duration
}

TEST(ClusterQuorumLoss, VrDeadlocks) {
  const auto r = rsm::RunPartition<VrNode>(QuickPartition(Scenario::kQuorumLoss));
  EXPECT_FALSE(r.recovered);
}

// --- Constrained election (Fig. 8b). ----------------------------------------

TEST(ClusterConstrained, OmniRecovers) {
  const auto r = rsm::RunPartition<OmniNode>(QuickPartition(Scenario::kConstrained));
  EXPECT_TRUE(r.recovered);
  EXPECT_LT(r.downtime, 8 * Millis(50));
}

TEST(ClusterConstrained, MultiPaxosRecovers) {
  const auto r = rsm::RunPartition<MultiPaxosNode>(QuickPartition(Scenario::kConstrained));
  EXPECT_TRUE(r.recovered);
}

TEST(ClusterConstrained, RaftDeadlocks) {
  const auto r = rsm::RunPartition<RaftNode>(QuickPartition(Scenario::kConstrained));
  EXPECT_FALSE(r.recovered);  // the only QC server has an outdated log
}

TEST(ClusterConstrained, RaftPvCqDeadlocks) {
  const auto r = rsm::RunPartition<RaftPvCqNode>(QuickPartition(Scenario::kConstrained));
  EXPECT_FALSE(r.recovered);
}

TEST(ClusterConstrained, VrDeadlocks) {
  const auto r = rsm::RunPartition<VrNode>(QuickPartition(Scenario::kConstrained));
  EXPECT_FALSE(r.recovered);
}

// --- Chained scenario (Fig. 8c). ---------------------------------------------

TEST(ClusterChained, OmniSingleLeaderChangeAndProgress) {
  const auto r = rsm::RunPartition<OmniNode>(QuickPartition(Scenario::kChained));
  EXPECT_TRUE(r.recovered);
  EXPECT_LE(r.leader_elevations, 1u);  // §7.2: a single leader change
}

TEST(ClusterChained, MultiPaxosLivelocksWithRepeatedElections) {
  const auto r = rsm::RunPartition<MultiPaxosNode>(QuickPartition(Scenario::kChained));
  // Progress happens between leader changes but elections keep repeating.
  EXPECT_GE(r.leader_elevations, 4u);
}

TEST(ClusterChained, RaftPvCqNoLeaderChanges) {
  const auto r = rsm::RunPartition<RaftPvCqNode>(QuickPartition(Scenario::kChained));
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.leader_elevations, 0u);  // §7.2: PreVote keeps the leader
}

TEST(ClusterChained, VrRecovers) {
  const auto r = rsm::RunPartition<VrNode>(QuickPartition(Scenario::kChained));
  EXPECT_TRUE(r.recovered);
}

// --- Minority split: client must escape stale leader hints. ----------------
//
// Found by the chaos fuzzer: cut {1,2} (the leader and one follower) away
// from {3,4,5}. Nodes 1 and 2 keep hinting each other as leader, so a client
// that blindly follows redirects ping-pongs inside the minority partition
// forever and never reaches the healthy majority.
TEST(ClusterMinoritySplit, ClientEscapesStaleHintLoop) {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.preferred_leader = 1;
  params.seed = 7;
  rsm::ClusterSim<OmniNode> sim(params);
  sim.RunUntil(Seconds(2));
  for (NodeId a : {1, 2}) {
    for (NodeId b : {3, 4, 5}) {
      sim.network().SetLink(static_cast<NodeId>(a), static_cast<NodeId>(b), false);
    }
  }
  const uint64_t before = sim.client().completed();
  sim.RunUntil(Seconds(6));
  // The majority {3,4,5} elects a leader and the client finds it well within
  // the window (one retry period to leave node 1, one more to skip node 2).
  EXPECT_EQ(sim.CurrentLeader(), 5);
  EXPECT_GT(sim.client().completed(), before + 1000);
}

}  // namespace
}  // namespace opx
