// Message-level unit tests for SequencePaxos: drive a single instance with
// hand-crafted messages and assert exact protocol reactions (promise rules,
// adoption, stale-round filtering, duplicate/gap handling, recovery gating).
#include <gtest/gtest.h>

#include "src/omnipaxos/sequence_paxos.h"

namespace opx {
namespace {

using omni::AcceptDecide;
using omni::Accepted;
using omni::AcceptSync;
using omni::Ballot;
using omni::Decide;
using omni::Entry;
using omni::PaxosMessage;
using omni::PaxosOut;
using omni::Prepare;
using omni::PrepareReq;
using omni::Promise;
using omni::SequencePaxos;
using omni::SequencePaxosConfig;
using omni::Storage;

SequencePaxosConfig Config3(NodeId pid) {
  SequencePaxosConfig cfg;
  cfg.pid = pid;
  for (NodeId p = 1; p <= 3; ++p) {
    if (p != pid) {
      cfg.peers.push_back(p);
    }
  }
  return cfg;
}

template <typename T>
std::vector<T> TakeOfType(SequencePaxos& sp, NodeId* to = nullptr) {
  std::vector<T> found;
  for (PaxosOut& out : sp.TakeOutgoing()) {
    if (auto* m = std::get_if<T>(&out.body)) {
      if (to != nullptr) {
        *to = out.to;
      }
      found.push_back(std::move(*m));
    }
  }
  return found;
}

// Elects `sp` (pid 1) as leader of round n with a promise from server 2.
Ballot MakeLeader(SequencePaxos& sp, uint64_t n = 1) {
  const Ballot b{n, 0, 1};
  sp.HandleLeader(b);
  (void)sp.TakeOutgoing();
  Promise pr;
  pr.n = b;
  sp.Handle(2, pr);
  (void)sp.TakeOutgoing();
  EXPECT_TRUE(sp.IsLeader());
  return b;
}

TEST(SpUnit, BecomeLeaderBroadcastsPrepare) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  sp.HandleLeader(Ballot{1, 0, 1});
  const auto prepares = TakeOfType<Prepare>(sp);
  EXPECT_EQ(prepares.size(), 2u);  // one per peer
}

TEST(SpUnit, LeaderEventForPeerDoesNotPrepare) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  sp.HandleLeader(Ballot{1, 0, 2});  // someone else elected
  EXPECT_TRUE(sp.TakeOutgoing().empty());
  EXPECT_FALSE(sp.IsLeader());
  EXPECT_EQ(sp.leader_hint(), 2);
}

TEST(SpUnit, StaleLeaderEventIgnored) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  MakeLeader(sp, 5);
  sp.HandleLeader(Ballot{3, 0, 1});  // lower than current
  EXPECT_TRUE(sp.IsLeader());
  EXPECT_TRUE(sp.TakeOutgoing().empty());
}

TEST(SpUnit, FollowerPromisesOnlyHigherRounds) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{5, 0, 1}, Ballot{}, 0, 0});
  EXPECT_EQ(TakeOfType<Promise>(sp).size(), 1u);
  // A lower-round Prepare is silently ignored — no NACK gossip (§2c).
  sp.Handle(3, Prepare{Ballot{2, 0, 3}, Ballot{}, 0, 0});
  EXPECT_TRUE(sp.TakeOutgoing().empty());
}

TEST(SpUnit, PromiseCarriesSuffixWhenFollowerMoreUpdated) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.Append(Entry::Command(2, 8));
  storage.set_accepted_round(Ballot{3, 0, 3});
  storage.set_promised_round(Ballot{3, 0, 3});
  storage.set_decided_idx(1);
  SequencePaxos sp(Config3(2), &storage);
  // New leader with lower accepted round and decided_idx 0.
  sp.Handle(1, Prepare{Ballot{5, 0, 1}, Ballot{1, 0, 1}, 0, 0});
  const auto promises = TakeOfType<Promise>(sp);
  ASSERT_EQ(promises.size(), 1u);
  // Suffix from the leader's decided index (0): the full log.
  EXPECT_EQ(promises[0].suffix.size(), 2u);
  EXPECT_EQ(promises[0].acc_rnd, (Ballot{3, 0, 3}));
}

TEST(SpUnit, PromiseEmptyWhenLeaderMoreUpdated) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{5, 0, 1}, Ballot{4, 0, 1}, 10, 8});
  const auto promises = TakeOfType<Promise>(sp);
  ASSERT_EQ(promises.size(), 1u);
  EXPECT_TRUE(promises[0].suffix.empty());
}

TEST(SpUnit, LeaderAdoptsMostUpdatedPromise) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  sp.HandleLeader(Ballot{5, 0, 1});
  (void)sp.TakeOutgoing();
  // Server 2 promises with a more updated log (higher acc_rnd + suffix).
  Promise pr;
  pr.n = Ballot{5, 0, 1};
  pr.acc_rnd = Ballot{4, 0, 2};
  pr.log_idx = 3;
  pr.decided_idx = 2;
  pr.suffix = {Entry::Command(10, 8), Entry::Command(11, 8), Entry::Command(12, 8)};
  sp.Handle(2, pr);
  EXPECT_TRUE(sp.IsLeader());
  EXPECT_EQ(sp.log_len(), 3u);
  EXPECT_EQ(sp.storage().At(0).cmd_id, 10u);
  // Max decided among promises is adopted.
  EXPECT_EQ(sp.decided_idx(), 2u);
  // The promised follower receives an AcceptSync.
  NodeId to = kNoNode;
  const auto syncs = TakeOfType<AcceptSync>(sp, &to);
  ASSERT_EQ(syncs.size(), 1u);
  EXPECT_EQ(to, 2);
}

TEST(SpUnit, LatePromiseGetsAcceptSync) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  const Ballot b = MakeLeader(sp);
  sp.Append(Entry::Command(1, 8));
  (void)sp.TakeOutgoing();
  // Server 3 promises late (straggler, §4.1.2).
  Promise late;
  late.n = b;
  sp.Handle(3, late);
  NodeId to = kNoNode;
  const auto syncs = TakeOfType<AcceptSync>(sp, &to);
  ASSERT_EQ(syncs.size(), 1u);
  EXPECT_EQ(to, 3);
  EXPECT_EQ(syncs[0].suffix.size(), 1u);
}

TEST(SpUnit, AcceptDecideDuplicateIsIdempotent) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{1, 0, 1}, Ballot{}, 0, 0});
  (void)sp.TakeOutgoing();
  AcceptSync sync;
  sync.n = Ballot{1, 0, 1};
  sp.Handle(1, sync);
  (void)sp.TakeOutgoing();
  AcceptDecide ad;
  ad.n = Ballot{1, 0, 1};
  ad.start_idx = 0;
  ad.entries = {Entry::Command(1, 8), Entry::Command(2, 8)};
  sp.Handle(1, ad);
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 2u);
  sp.Handle(1, ad);  // duplicate resend
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 2u);
  // Overlapping resend: only the unseen tail is appended.
  ad.entries = {Entry::Command(1, 8), Entry::Command(2, 8), Entry::Command(3, 8)};
  sp.Handle(1, ad);
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 3u);
  EXPECT_EQ(sp.storage().At(2).cmd_id, 3u);
}

TEST(SpUnit, AcceptDecideWithGapTriggersResync) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{1, 0, 1}, Ballot{}, 0, 0});
  (void)sp.TakeOutgoing();
  AcceptSync sync;
  sync.n = Ballot{1, 0, 1};
  sp.Handle(1, sync);
  (void)sp.TakeOutgoing();
  AcceptDecide gap;
  gap.n = Ballot{1, 0, 1};
  gap.start_idx = 5;  // entries 0..4 were lost to a link cut
  gap.entries = {Entry::Command(6, 8)};
  sp.Handle(1, gap);
  EXPECT_EQ(sp.log_len(), 0u);  // nothing appended past a gap
  const auto reqs = TakeOfType<PrepareReq>(sp);
  EXPECT_EQ(reqs.size(), 1u);  // asks the leader to resynchronize
}

TEST(SpUnit, StaleRoundMessagesIgnored) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{5, 0, 1}, Ballot{}, 0, 0});
  (void)sp.TakeOutgoing();
  AcceptSync sync;
  sync.n = Ballot{5, 0, 1};
  sp.Handle(1, sync);
  (void)sp.TakeOutgoing();
  // Old leader's traffic at a lower round: all dropped.
  AcceptDecide stale;
  stale.n = Ballot{3, 0, 3};
  stale.start_idx = 0;
  stale.entries = {Entry::Command(99, 8)};
  sp.Handle(3, stale);
  sp.Handle(3, Decide{Ballot{3, 0, 3}, 1});
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 0u);
  EXPECT_EQ(sp.decided_idx(), 0u);
}

TEST(SpUnit, DecideClampedToLogLength) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.Handle(1, Prepare{Ballot{1, 0, 1}, Ballot{}, 0, 0});
  (void)sp.TakeOutgoing();
  AcceptSync sync;
  sync.n = Ballot{1, 0, 1};
  sync.suffix = {Entry::Command(1, 8)};
  sp.Handle(1, sync);
  (void)sp.TakeOutgoing();
  sp.Handle(1, Decide{Ballot{1, 0, 1}, 100});  // beyond our log
  EXPECT_EQ(sp.decided_idx(), 1u);
}

TEST(SpUnit, PrepareReqOnlyAnsweredByLeader) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  sp.Handle(3, PrepareReq{});
  EXPECT_TRUE(sp.TakeOutgoing().empty());  // not leader: silent
  MakeLeader(sp);
  sp.Handle(3, PrepareReq{});
  EXPECT_EQ(TakeOfType<Prepare>(sp).size(), 1u);
}

TEST(SpUnit, BatchLimitThrottlesProposals) {
  Storage storage;
  SequencePaxosConfig cfg = Config3(1);
  cfg.batch_limit = 2;
  SequencePaxos sp(cfg, &storage);
  MakeLeader(sp);
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    sp.Append(Entry::Command(cmd, 8));
  }
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 2u);  // one flush, batch_limit entries
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 4u);
  (void)sp.TakeOutgoing();
  EXPECT_EQ(sp.log_len(), 5u);
}

TEST(SpUnit, TakeUnproposedDrainsQueue) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);  // follower with unknown leader
  sp.Append(Entry::Command(1, 8));
  sp.Append(Entry::Command(2, 8));
  (void)sp.TakeOutgoing();  // no leader known: stays queued
  const auto unproposed = sp.TakeUnproposed();
  EXPECT_EQ(unproposed.size(), 2u);
  EXPECT_TRUE(sp.TakeUnproposed().empty());
}

TEST(SpUnit, FollowerForwardsProposalsOnceLeaderKnown) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.HandleLeader(Ballot{1, 0, 1});  // learn the leader from BLE
  sp.Append(Entry::Command(7, 8));
  NodeId to = kNoNode;
  const auto forwards = TakeOfType<omni::ProposalForward>(sp, &to);
  ASSERT_EQ(forwards.size(), 1u);
  EXPECT_EQ(to, 1);
  EXPECT_EQ(forwards[0].entries[0].cmd_id, 7u);
}

TEST(SpUnit, RecoverIgnoresEverythingButPrepare) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.set_decided_idx(1);
  SequencePaxos sp(Config3(2), &storage, /*recovered=*/true);
  const auto reqs = TakeOfType<PrepareReq>(sp);
  EXPECT_EQ(reqs.size(), 2u);  // PrepareReq to all peers
  AcceptDecide ad;
  ad.n = Ballot{1, 0, 1};
  ad.start_idx = 1;
  ad.entries = {Entry::Command(2, 8)};
  sp.Handle(1, ad);
  EXPECT_EQ(sp.log_len(), 1u);  // dropped while recovering
  // A Prepare re-enters the protocol.
  sp.Handle(1, Prepare{Ballot{2, 0, 1}, Ballot{}, 0, 0});
  EXPECT_EQ(TakeOfType<Promise>(sp).size(), 1u);
  EXPECT_EQ(sp.phase(), omni::Phase::kPrepare);
}

TEST(SpUnit, ReconnectedFollowerAsksLeaderToResync) {
  Storage storage;
  SequencePaxos sp(Config3(2), &storage);
  sp.HandleLeader(Ballot{1, 0, 1});
  (void)sp.TakeOutgoing();
  sp.Reconnected(1);  // session to the leader came back
  EXPECT_EQ(TakeOfType<PrepareReq>(sp).size(), 1u);
  sp.Reconnected(3);  // another follower: nothing to do
  EXPECT_TRUE(sp.TakeOutgoing().empty());
}

TEST(SpUnit, ReconnectedLeaderReSyncsThePeer) {
  Storage storage;
  SequencePaxos sp(Config3(1), &storage);
  MakeLeader(sp);
  sp.Reconnected(3);
  EXPECT_EQ(TakeOfType<Prepare>(sp).size(), 1u);
}

}  // namespace
}  // namespace opx
