// Unit tests for the discrete-event simulator and the simulated network.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/rsm/adapters.h"
#include "src/rsm/cluster_sim.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace opx {
namespace {

using sim::Network;
using sim::NetworkParams;
using sim::Simulator;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAfter(Millis(30), [&order]() { order.push_back(3); });
  simulator.ScheduleAfter(Millis(10), [&order]() { order.push_back(1); });
  simulator.ScheduleAfter(Millis(20), [&order]() { order.push_back(2); });
  simulator.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAfter(Millis(5), [&order, i]() { order.push_back(i); });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator simulator;
  Time seen = -1;
  simulator.ScheduleAfter(Millis(7), [&]() { seen = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_EQ(seen, Millis(7));
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  simulator.RunUntil(Seconds(3));
  EXPECT_EQ(simulator.Now(), Seconds(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAfter(Millis(10), [&fired]() { ++fired; });
  simulator.ScheduleAfter(Millis(30), [&fired]() { ++fired; });
  simulator.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now(), Millis(20));
  simulator.RunUntil(Millis(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  int fired = 0;
  const sim::EventId id = simulator.ScheduleAfter(Millis(10), [&fired]() { ++fired; });
  simulator.Cancel(id);
  simulator.RunToCompletion();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator simulator;
  simulator.Cancel(123456);
  simulator.Cancel(sim::kInvalidEvent);
  EXPECT_FALSE(simulator.Step());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      simulator.ScheduleAfter(Millis(1), recurse);
    }
  };
  simulator.ScheduleAfter(Millis(1), recurse);
  simulator.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.Now(), Millis(5));
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  // Regression: the old implementation recorded such ids in its cancelled
  // set, which silently corrupted the pending-event count.
  Simulator simulator;
  int fired = 0;
  const sim::EventId id = simulator.ScheduleAfter(Millis(1), [&fired]() { ++fired; });
  simulator.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
  simulator.Cancel(id);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
  int later = 0;
  simulator.ScheduleAfter(Millis(1), [&later]() { ++later; });
  EXPECT_EQ(simulator.PendingEvents(), 1u);
  simulator.RunToCompletion();
  EXPECT_EQ(later, 1);
}

TEST(Simulator, StaleIdCannotCancelSlotReusingEvent) {
  Simulator simulator;
  int first = 0;
  int second = 0;
  const sim::EventId id = simulator.ScheduleAfter(Millis(1), [&first]() { ++first; });
  simulator.RunToCompletion();
  // With a one-slot slab this reuses the fired event's slot; the stale id's
  // generation no longer matches, so the cancel must not touch it.
  simulator.ScheduleAfter(Millis(1), [&second]() { ++second; });
  simulator.Cancel(id);
  simulator.RunToCompletion();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, DoubleCancelIsNoOp) {
  Simulator simulator;
  int fired = 0;
  const sim::EventId id = simulator.ScheduleAfter(Millis(1), [&fired]() { ++fired; });
  simulator.ScheduleAfter(Millis(2), [&fired]() { ++fired; });
  simulator.Cancel(id);
  simulator.Cancel(id);
  EXPECT_EQ(simulator.PendingEvents(), 1u);
  simulator.RunToCompletion();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelRescheduleCycles) {
  // A timer owner repeatedly cancelling and re-arming (failure detectors do
  // exactly this) must keep PendingEvents() exact and fire only the last
  // timer. 1000 cycles also exercises tombstone compaction.
  Simulator simulator;
  int fired = 0;
  sim::EventId id = sim::kInvalidEvent;
  for (int i = 0; i < 1000; ++i) {
    simulator.Cancel(id);
    id = simulator.ScheduleAfter(Millis(10 + i % 7), [&fired]() { ++fired; });
    ASSERT_EQ(simulator.PendingEvents(), 1u);
  }
  simulator.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
}

TEST(Simulator, OrderingStressAgainstReferenceModel) {
  // Pseudo-random schedule/cancel mix checked against a stable-sort oracle:
  // events fire in (time, schedule order), cancelled ones never fire.
  Simulator simulator;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<std::pair<Time, int>> scheduled;
  std::vector<std::pair<Time, int>> actual;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const Time at = Millis(static_cast<Time>(next() % 50));
    ids.push_back(simulator.ScheduleAt(at, [&actual, at, i]() { actual.emplace_back(at, i); }));
    scheduled.emplace_back(at, i);
  }
  std::vector<std::pair<Time, int>> expected;
  for (int i = 0; i < 500; ++i) {
    if (next() % 3 == 0) {
      simulator.Cancel(ids[static_cast<size_t>(i)]);
    } else {
      expected.push_back(scheduled[static_cast<size_t>(i)]);
    }
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  simulator.RunToCompletion();
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Network.
// ---------------------------------------------------------------------------

struct NetFixture {
  Simulator simulator;
  NetworkParams params;
  std::unique_ptr<Network<std::string>> net;
  std::vector<std::pair<NodeId, std::string>> received;  // (from, msg) at node 2

  explicit NetFixture(double egress = 0.0, Time latency = Micros(100)) {
    params.default_latency = latency;
    params.egress_bytes_per_sec = egress;
    net = std::make_unique<Network<std::string>>(&simulator, 3, params);
    net->SetHandler(2, [this](NodeId from, std::string msg) {
      received.emplace_back(from, std::move(msg));
    });
  }
};

TEST(Network, DeliversAfterLatency) {
  NetFixture fx(0.0, Millis(5));
  fx.net->Send(1, 2, "hello", 16);
  fx.simulator.RunUntil(Millis(4));
  EXPECT_TRUE(fx.received.empty());
  fx.simulator.RunUntil(Millis(6));
  ASSERT_EQ(fx.received.size(), 1u);
  EXPECT_EQ(fx.received[0].second, "hello");
}

TEST(Network, FifoPerLink) {
  NetFixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.net->Send(1, 2, std::to_string(i), 8);
  }
  fx.simulator.RunToCompletion();
  ASSERT_EQ(fx.received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fx.received[static_cast<size_t>(i)].second, std::to_string(i));
  }
}

TEST(Network, DownLinkDropsMessages) {
  NetFixture fx;
  fx.net->SetLink(1, 2, false);
  fx.net->Send(1, 2, "lost", 8);
  fx.simulator.RunToCompletion();
  EXPECT_TRUE(fx.received.empty());
  // The other direction of an unrelated pair still works.
  fx.net->Send(3, 2, "ok", 8);
  fx.simulator.RunToCompletion();
  ASSERT_EQ(fx.received.size(), 1u);
}

TEST(Network, CutDropsInFlightMessages) {
  NetFixture fx(0.0, Millis(10));
  fx.net->Send(1, 2, "in-flight", 8);
  fx.simulator.RunUntil(Millis(5));
  fx.net->SetLink(1, 2, false);  // session epoch bump while the message flies
  fx.simulator.RunToCompletion();
  EXPECT_TRUE(fx.received.empty());
}

TEST(Network, ReconnectNotifiesBothEnds) {
  NetFixture fx;
  std::vector<NodeId> reconnects_at_1, reconnects_at_2;
  fx.net->SetReconnectHandler(1, [&](NodeId peer) { reconnects_at_1.push_back(peer); });
  fx.net->SetReconnectHandler(2, [&](NodeId peer) { reconnects_at_2.push_back(peer); });
  fx.net->SetLink(1, 2, false);
  fx.simulator.RunUntil(Millis(1));
  fx.net->SetLink(1, 2, true);
  fx.simulator.RunToCompletion();
  EXPECT_EQ(reconnects_at_1, (std::vector<NodeId>{2}));
  EXPECT_EQ(reconnects_at_2, (std::vector<NodeId>{1}));
}

TEST(Network, RapidFlapDeliversOneReconnectForLiveSession) {
  // heal -> cut -> heal inside one propagation delay: the first heal's
  // notification belongs to a dead session and must be dropped; exactly one
  // reconnect event fires, for the surviving session.
  NetFixture fx(0.0, Millis(1));
  std::vector<NodeId> reconnects_at_2;
  fx.net->SetReconnectHandler(2, [&](NodeId peer) { reconnects_at_2.push_back(peer); });
  fx.net->SetLink(1, 2, false);
  fx.simulator.RunUntil(Millis(10));
  fx.net->SetLink(1, 2, true);   // schedules notify at t=11ms (session A)
  fx.simulator.RunUntil(Millis(10) + Micros(200));
  fx.net->SetLink(1, 2, false);  // session A dead before its notify fires
  fx.net->SetLink(1, 2, true);   // session B, notify at ~11.2ms
  fx.simulator.RunToCompletion();
  EXPECT_EQ(reconnects_at_2, (std::vector<NodeId>{1}));
}

TEST(Network, FlapWhileDownLeavesNoReconnect) {
  // cut -> heal -> cut before the heal's notification propagates: the link
  // ends down, so no reconnect event may fire at all.
  NetFixture fx(0.0, Millis(1));
  std::vector<NodeId> reconnects_at_2;
  fx.net->SetReconnectHandler(2, [&](NodeId peer) { reconnects_at_2.push_back(peer); });
  fx.net->SetLink(1, 2, false);
  fx.simulator.RunUntil(Millis(10));
  fx.net->SetLink(1, 2, true);
  fx.net->SetLink(1, 2, false);
  fx.simulator.RunToCompletion();
  EXPECT_TRUE(reconnects_at_2.empty());
}

TEST(Network, HealedLinkDoesNotInheritOldFifoFloor) {
  // A message sent during a 50 ms latency spike pins last_delivery far in the
  // future; after the spike ends and the link flaps, the fresh session must
  // deliver at the new latency, not behind the dead session's FIFO floor.
  NetFixture fx(0.0, Millis(50));
  fx.net->Send(1, 2, "spike", 8);  // would deliver at t=50ms
  fx.net->SetLatency(1, 2, Micros(100));
  fx.net->SetLink(1, 2, false);  // drops the in-flight message
  fx.net->SetLink(1, 2, true);
  fx.net->Send(1, 2, "fresh", 8);
  fx.simulator.RunUntil(Millis(1));
  ASSERT_EQ(fx.received.size(), 1u);
  EXPECT_EQ(fx.received[0].second, "fresh");
}

TEST(Network, ResetNodeDropsInFlightBothDirections) {
  NetFixture fx(0.0, Millis(10));
  std::vector<std::string> at_1;
  fx.net->SetHandler(1, [&](NodeId, std::string m) { at_1.push_back(std::move(m)); });
  fx.net->Send(1, 2, "to-crashed", 8);
  fx.net->Send(2, 1, "from-crashed", 8);
  fx.simulator.RunUntil(Millis(5));
  fx.net->ResetNode(2);  // crash: both sessions torn down mid-flight
  fx.simulator.RunToCompletion();
  EXPECT_TRUE(fx.received.empty());
  EXPECT_TRUE(at_1.empty());
  // Links are still up; post-crash traffic flows normally.
  fx.net->Send(1, 2, "after", 8);
  fx.simulator.RunToCompletion();
  ASSERT_EQ(fx.received.size(), 1u);
}

TEST(Network, HalfDuplexCutOnlyAffectsOneDirection) {
  NetFixture fx;
  std::vector<std::string> at_1;
  fx.net->SetHandler(1, [&](NodeId, std::string m) { at_1.push_back(std::move(m)); });
  fx.net->SetLinkOneWay(1, 2, false);  // 1 -> 2 cut; 2 -> 1 alive
  fx.net->Send(1, 2, "dropped", 8);
  fx.net->Send(2, 1, "delivered", 8);
  fx.simulator.RunToCompletion();
  EXPECT_TRUE(fx.received.empty());
  EXPECT_EQ(at_1, (std::vector<std::string>{"delivered"}));
}

TEST(Network, EgressBandwidthSerializesLargeMessages) {
  // 1 MB at 1 MB/s occupies the sender NIC for 1 s; the next message queues.
  NetFixture fx(1e6, Micros(0));
  fx.net->Send(1, 2, "big", 1'000'000 - 64);  // +64 overhead = 1 MB wire
  fx.net->Send(1, 2, "after", 936);           // 1 KB wire
  fx.simulator.RunUntil(Millis(999));
  EXPECT_TRUE(fx.received.empty());
  fx.simulator.RunUntil(Millis(1000));  // big finishes at exactly 1 s
  ASSERT_EQ(fx.received.size(), 1u);
  fx.simulator.RunUntil(Millis(1001));  // then 1 KB takes 1 ms more
  ASSERT_EQ(fx.received.size(), 2u);
}

TEST(Network, ControlPlaneBypassesEgressQueue) {
  // A control-plane message sent behind a large queued data message arrives
  // first (separate channel), yet still counts toward I/O.
  NetFixture fx(1e6, Micros(0));  // 1 MB/s NIC
  fx.net->Send(1, 2, "big-data", 1'000'000 - 64);              // 1 s of NIC time
  fx.net->Send(1, 2, "heartbeat", 16, /*control_plane=*/true);  // bypasses
  fx.simulator.RunUntil(Millis(10));
  ASSERT_EQ(fx.received.size(), 1u);
  EXPECT_EQ(fx.received[0].second, "heartbeat");
  fx.simulator.RunUntil(Millis(1001));
  ASSERT_EQ(fx.received.size(), 2u);
  EXPECT_EQ(fx.received[1].second, "big-data");
  EXPECT_EQ(fx.net->BytesSent(1), 1'000'000u + 80u);
}

TEST(Network, ControlPlaneKeepsItsOwnFifo) {
  NetFixture fx(1e6, Micros(100));
  for (int i = 0; i < 5; ++i) {
    fx.net->Send(1, 2, "c" + std::to_string(i), 8, /*control_plane=*/true);
  }
  fx.simulator.RunToCompletion();
  ASSERT_EQ(fx.received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fx.received[static_cast<size_t>(i)].second, "c" + std::to_string(i));
  }
}

TEST(Network, CountsBytesPerSender) {
  NetFixture fx;
  fx.net->Send(1, 2, "x", 100);  // +64 overhead
  fx.net->Send(1, 2, "y", 36);
  fx.net->Send(3, 2, "z", 0);
  fx.simulator.RunToCompletion();
  EXPECT_EQ(fx.net->BytesSent(1), 264u);
  EXPECT_EQ(fx.net->BytesSent(3), 64u);
  EXPECT_EQ(fx.net->MessagesSent(1), 2u);
  EXPECT_EQ(fx.net->TotalBytesSent(), 328u);
}

TEST(Network, BytesCountedEvenWhenDroppedAtReceiver) {
  // A message sent before the cut and dropped mid-flight was still egressed.
  NetFixture fx(0.0, Millis(10));
  fx.net->Send(1, 2, "x", 36);
  fx.net->SetLink(1, 2, false);
  fx.simulator.RunToCompletion();
  EXPECT_EQ(fx.net->BytesSent(1), 100u);
  EXPECT_TRUE(fx.received.empty());
}

TEST(Network, IsolateAndHealAll) {
  NetFixture fx;
  fx.net->Isolate(1);
  EXPECT_FALSE(fx.net->LinkUp(1, 2));
  EXPECT_FALSE(fx.net->LinkUp(1, 3));
  EXPECT_TRUE(fx.net->LinkUp(2, 3));
  fx.net->HealAll();
  EXPECT_TRUE(fx.net->LinkUp(1, 2));
  EXPECT_TRUE(fx.net->LinkUp(1, 3));
}

// --- Determinism: the whole stack replays byte-identically per seed. -------
//
// ClusterSim folds every audited event (delivery, tick, reconnect, admission)
// into a rolling fingerprint. Two runs with the same seed and scenario must
// produce the same fingerprint — the property the auditor's replayable
// violation reports rely on.

template <typename Node>
uint64_t RunFingerprint(uint64_t seed, bool partition, obs::ObsSink* obs = nullptr) {
  rsm::ClusterParams params;
  params.num_servers = 3;
  params.election_timeout = Millis(50);
  params.seed = seed;
  params.obs = obs;
  rsm::ClusterSim<Node> sim(params);
  sim.RunUntil(Seconds(1));
  if (partition) {
    sim.network().Isolate(1);
    sim.RunUntil(Seconds(2));
    sim.network().HealAll();
  }
  sim.RunUntil(Seconds(3));
  return sim.EventHash();
}

TEST(Determinism, SameSeedSameEventSequence) {
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(11, false),
            RunFingerprint<rsm::OmniNode>(11, false));
  EXPECT_EQ(RunFingerprint<rsm::RaftNode>(11, false),
            RunFingerprint<rsm::RaftNode>(11, false));
}

TEST(Determinism, SameSeedSameEventSequenceUnderPartition) {
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(23, true),
            RunFingerprint<rsm::OmniNode>(23, true));
  EXPECT_EQ(RunFingerprint<rsm::VrNode>(23, true),
            RunFingerprint<rsm::VrNode>(23, true));
}

// Golden fingerprints captured immediately before the event-loop rewrite
// (slab heap, UniqueFunction, shared log segments): the hot paths may change
// freely, but these scenarios must replay byte-for-byte. If a change
// legitimately alters scheduling semantics, regenerate the constants with
// tools/fingerprint and call the change out explicitly in review.
TEST(Determinism, FingerprintLock) {
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(11, false), 0x4365c1d0bc75e0feull);
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(23, true), 0xe7928fb76e241b15ull);
  EXPECT_EQ(RunFingerprint<rsm::RaftNode>(11, false), 0x1b0f4f3d6320fe4eull);
  EXPECT_EQ(RunFingerprint<rsm::VrNode>(23, true), 0xebcddf75a1ca1a59ull);
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(RunFingerprint<rsm::OmniNode>(11, false),
            RunFingerprint<rsm::OmniNode>(12, false));
}

// Attaching a trace/metrics sink must not perturb the schedule: the recorder
// adds no simulator events and draws no randomness, so the FingerprintLock
// constants hold bit-identically with tracing on. This is the contract that
// lets chaos replays and bench runs be traced without invalidating their
// fingerprints (and that keeps OPX_OBS=OFF builds equivalent).
TEST(Determinism, TracingDoesNotPerturbFingerprint) {
  obs::ObsSink sinks[4];
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(11, false, &sinks[0]), 0x4365c1d0bc75e0feull);
  EXPECT_EQ(RunFingerprint<rsm::OmniNode>(23, true, &sinks[1]), 0xe7928fb76e241b15ull);
  EXPECT_EQ(RunFingerprint<rsm::RaftNode>(11, false, &sinks[2]), 0x1b0f4f3d6320fe4eull);
  EXPECT_EQ(RunFingerprint<rsm::VrNode>(23, true, &sinks[3]), 0xebcddf75a1ca1a59ull);
#if defined(OPX_OBS_ENABLED)
  // And the sinks really were recording while those fingerprints held.
  for (const obs::ObsSink& sink : sinks) {
    EXPECT_GT(sink.size(), 0u);
  }
#endif
}

}  // namespace
}  // namespace opx
