// Self-tests for tools/opx_analyze: fixture trees under
// tools/analyze/fixtures/ with known-good and known-bad sources, golden
// finding sets per check, the three NOLINT spellings, baseline filtering,
// and a final run of the repo's own configuration over the live tree.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyzer.h"
#include "tools/analyze/callgraph.h"
#include "tools/analyze/cfg.h"

namespace opx::analyze {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(OPX_SOURCE_DIR) + "/tools/analyze/fixtures/" + name;
}

// The shared shape of the fixture trees: one wire header, one handler file.
// HandleAcceptSync lives in handler.cc in the good tree and (mis-ordered) in
// persist.cc in the bad tree, so each tree adds its own rule for it.
AnalyzerConfig FixtureConfig(const std::string& name) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot(name);
  cfg.determinism.dirs = {"src/proto"};
  cfg.determinism.function_dirs = {"src/proto"};
  cfg.variants = {{"FixMessage", "src/proto/messages.h", {"src/proto/handler.cc"}}};
  cfg.handlers = {{"src/proto/handler.cc",
                   "HandlePrepare",
                   {"set_promised_round"},
                   {"Promise"}}};
  cfg.wire_headers = {"src/proto/messages.h"};
  cfg.audit = {{"src/proto/handler.cc", {"Audit", "AuditView"}, true}};
  cfg.obs = {{"src/proto/handler.cc", {"OPX_TRACE", "ObsSink"}}};
  // v2 checks (CFG/dataflow engine): guards.cc carries the ballot-guard
  // shapes, quorum.cc the majority arithmetic, span.cc the escaping views,
  // and src/loop/eventloop.cc the event-loop reachability fixture.
  cfg.ballot_guards = {{"src/proto/guards.cc",
                        /*round_fields=*/{"n"},
                        /*state_rounds=*/{"promised_round_", "round_", "leader_ballot_"},
                        /*mutators=*/{"set_promised_round"},
                        /*state_members=*/{"round_", "leader_ballot_"},
                        /*exempt=*/{}}};
  cfg.quorum.dirs = {"src/proto"};
  cfg.quorum.helper_file = "src/proto/quorum_util.h";
  cfg.quorum.size_idents = {"kServers", "cluster_size"};
  cfg.blocking.det_dirs = {"src/proto"};
  cfg.blocking.event_dirs = {"src/loop"};
  cfg.blocking.entries = {{"src/loop/eventloop.cc", "Run"}};
  cfg.span_escape.dirs = {"src/proto"};
  // v3 checks (interprocedural engine): src/wire carries the wire-taint,
  // index-arithmetic, and ref-lifetime fixtures; index_util.h is the
  // sanctioned helper header of the good tree.
  cfg.wire_taint.dirs = {"src/wire"};
  cfg.index_arith.dirs = {"src/wire"};
  cfg.index_arith.helper_file = "src/wire/index_util.h";
  cfg.ref_lifetime.dirs = {"src/wire"};
  return cfg;
}

std::set<std::string> Keys(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) {
    keys.insert(f.BaselineKey());
  }
  return keys;
}

TEST(OpxAnalyze, GoodTreeIsClean) {
  AnalyzerConfig cfg = FixtureConfig("good");
  cfg.handlers.push_back({"src/proto/handler.cc",
                          "HandleAcceptSync",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {"Accepted"}});
  // Empty ack_types: the SendAcceptSyncTo helper builds and emits the ack.
  cfg.handlers.push_back({"src/proto/handler.cc",
                          "CompletePrepare",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {},
                          {"SendAcceptSyncTo"}});
  const AnalysisResult result = RunAnalysis(cfg);
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_TRUE(result.findings.empty())
      << "first finding: "
      << (result.findings.empty() ? "" : result.findings[0].BaselineKey());
  ASSERT_EQ(result.stats.size(), 13u);
  for (const CheckStats& s : result.stats) {
    EXPECT_GT(s.files, 0) << s.check << " examined no files";
    EXPECT_EQ(s.findings, 0) << s.check;
  }
}

TEST(OpxAnalyze, BadTreeGoldenFindings) {
  AnalyzerConfig cfg = FixtureConfig("bad");
  cfg.handlers.push_back({"src/proto/persist.cc",
                          "HandleAcceptSync",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {"Accepted"}});
  cfg.handlers.push_back({"src/proto/persist.cc",
                          "CompletePrepare",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {},
                          {"SendAcceptSyncTo"}});
  const AnalysisResult result = RunAnalysis(cfg);
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);

  const std::set<std::string> expected = {
      // opx-determinism: each seeded nondeterminism source in handler.cc.
      "opx-determinism src/proto/handler.cc rand",
      "opx-determinism src/proto/handler.cc random_device",
      "opx-determinism src/proto/handler.cc std-function",
      "opx-determinism src/proto/handler.cc unordered_map",
      // opx-persist-order: both handlers reply before their durable write,
      // and the send-helper shape (empty ack_types) ships before the write.
      "opx-persist-order src/proto/handler.cc HandlePrepare",
      "opx-persist-order src/proto/persist.cc CompletePrepare",
      "opx-persist-order src/proto/persist.cc HandleAcceptSync",
      // opx-dispatch: Accepted is never dispatched.
      "opx-dispatch src/proto/messages.h FixMessage::Accepted",
      // opx-msg-init: uninitialized scalar, pointer, and nested field.
      "opx-msg-init src/proto/messages.h Prepare::log_idx",
      "opx-msg-init src/proto/messages.h Promise::from",
      "opx-msg-init src/proto/messages.h Promise::Inner::flag",
      // opx-audit-hook: no auditor surface, no assertions.
      "opx-audit-hook src/proto/handler.cc Audit",
      "opx-audit-hook src/proto/handler.cc AuditView",
      "opx-audit-hook src/proto/handler.cc OPX_CHECK",
      // opx-obs-hook: no trace-recorder hook, no sink.
      "opx-obs-hook src/proto/handler.cc OPX_TRACE",
      "opx-obs-hook src/proto/handler.cc ObsSink",
      // opx-ballot-guard: inverted guard, missing guard, unguarded callee.
      "opx-ballot-guard src/proto/guards.cc HandlePrepare/set_promised_round",
      "opx-ballot-guard src/proto/guards.cc HandleCommit/round_",
      "opx-ballot-guard src/proto/guards.cc HandleSync/Adopt",
      // opx-quorum-arith: (n+1)/2, n/2+1, and bare n/2, in source order.
      "opx-quorum-arith src/proto/quorum.cc div2",
      "opx-quorum-arith src/proto/quorum.cc div2#1",
      "opx-quorum-arith src/proto/quorum.cc div2#2",
      // opx-blocking-in-loop: blanket ban in deterministic code plus the two
      // calls reachable from the Run entry point (Idle() blocks too but is
      // unreachable, so it must stay unflagged).
      "opx-blocking-in-loop src/proto/handler.cc usleep",
      "opx-blocking-in-loop src/loop/eventloop.cc Flush/write",
      "opx-blocking-in-loop src/loop/eventloop.cc Wait/sleep_for",
      // opx-span-escape: span stored into a member, view pushed into a
      // member container.
      "opx-span-escape src/proto/span.cc Keep/entries",
      "opx-span-escape src/proto/span.cc Name/name",
      // opx-wire-taint: one finding per sink class — allocation, memcpy
      // length, pointer subscript, sole loop bound, the interprocedural
      // call into an unguarded callee (flagged at the call site), and the
      // wrap-prone guard-on-the-arithmetic idiom.
      "opx-wire-taint src/wire/taint.cc GrowDirect/n",
      "opx-wire-taint src/wire/taint.cc CopyLen/len",
      "opx-wire-taint src/wire/taint.cc ReadAt/idx",
      "opx-wire-taint src/wire/taint.cc LoopBound/count",
      "opx-wire-taint src/wire/taint.cc CallsSink/n",
      "opx-wire-taint src/wire/taint.cc GuardedArith/len",
      // opx-index-arith: offset, length, and last-index arithmetic against
      // the compaction floors (file-level ordinals per floor identifier).
      "opx-index-arith src/wire/index.cc compacted_idx_",
      "opx-index-arith src/wire/index.cc compacted_idx_#1",
      "opx-index-arith src/wire/index.cc decided_idx_",
      // opx-ref-lifetime: member store, member-container insert, use after
      // pool Clear, and the interprocedural pointer-storing callee.
      "opx-ref-lifetime src/wire/lifetime.cc Stash/f",
      "opx-ref-lifetime src/wire/lifetime.cc Hold/f",
      "opx-ref-lifetime src/wire/lifetime.cc UseAfterClear/p",
      "opx-ref-lifetime src/wire/lifetime.cc Escape/f",
  };
  EXPECT_EQ(Keys(result.findings), expected);

  // Findings come back sorted by (file, line, check, key).
  EXPECT_TRUE(std::is_sorted(result.findings.begin(), result.findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.check, a.key) <
                                      std::tie(b.file, b.line, b.check, b.key);
                             }));
}

// The acceptance-criterion demonstration: persist.cc clones the
// sequence_paxos.cc HandleAcceptSync shape with Emit(Accepted{...}) hoisted
// above set_accepted_round/TruncateAndAppend, and the persistence-ordering
// check flags exactly that function.
TEST(OpxAnalyze, PersistOrderCatchesSendHoistedAboveStorageWrite) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("bad");
  cfg.handlers = {{"src/proto/persist.cc",
                   "HandleAcceptSync",
                   {"set_accepted_round", "TruncateAndAppend"},
                   {"Accepted"}}};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  std::vector<std::string> errors;
  CheckPersistOrder(cfg, files, &findings, &nfiles, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "opx-persist-order");
  EXPECT_EQ(findings[0].file, "src/proto/persist.cc");
  EXPECT_EQ(findings[0].key, "HandleAcceptSync");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("before the durable write"), std::string::npos);
}

TEST(OpxAnalyze, NolintSuppressesAllThreeSpellings) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("nolint");
  cfg.determinism.dirs = {"src/proto"};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  CheckDeterminism(cfg, files, &findings, &nfiles);
  EXPECT_EQ(nfiles, 1);
  // Four unordered_map uses; NOLINT(opx-determinism), bare NOLINT, and
  // NOLINT(opx-*) silence the first three. Ordinals count suppressed
  // occurrences too, so the visible one is #3.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].BaselineKey(),
            "opx-determinism src/proto/nolint.cc unordered_map#3");
}

TEST(OpxAnalyze, BaselineFiltersAndReportsStaleEntries) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("nolint");
  cfg.determinism.dirs = {"src/proto"};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  CheckDeterminism(cfg, files, &findings, &nfiles);
  ASSERT_EQ(findings.size(), 1u);

  std::set<std::string> baseline;
  ASSERT_TRUE(LoadBaselineFile(FixtureRoot("nolint") + "/baseline.txt", &baseline));
  EXPECT_EQ(baseline.size(), 2u);

  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(findings, baseline, &baselined, &stale);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(baselined, 1);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "opx-determinism src/proto/nolint.cc stale-entry");
}

TEST(OpxAnalyze, TokenizerAndSuppressionUnits) {
  SourceFile sf;
  sf.path = "t.cc";
  Tokenize("#include <unordered_map>\n"
           "int x = rand();  // NOLINT(opx-foo, opx-determinism)\n"
           "auto p = a->b::c;  /* block */\n",
           &sf);
  // The preprocessor line contributes no tokens; `->` and `::` are single
  // puncts.
  ASSERT_FALSE(sf.toks.empty());
  EXPECT_EQ(sf.toks[0].text, "int");
  EXPECT_EQ(sf.toks[0].line, 2);
  int arrows = 0;
  int scopes = 0;
  for (const Tok& t : sf.toks) {
    arrows += t.Is("->") ? 1 : 0;
    scopes += t.Is("::") ? 1 : 0;
  }
  EXPECT_EQ(arrows, 1);
  EXPECT_EQ(scopes, 1);
  EXPECT_TRUE(sf.Suppressed(2, "opx-determinism"));
  EXPECT_TRUE(sf.Suppressed(2, "opx-foo"));
  EXPECT_FALSE(sf.Suppressed(2, "opx-msg-init"));
  EXPECT_FALSE(sf.Suppressed(3, "opx-determinism"));
}

// Golden token streams for the tokenizer edge cases the v2 engine depends
// on: prefixed raw strings, digit separators, nested template closers, and
// backslash-newline splicing (fixtures under tools/analyze/fixtures/tokenizer).
TEST(OpxAnalyze, TokenizerRawStringPrefixes) {
  FileSet files(FixtureRoot("tokenizer"));
  const SourceFile* sf = files.Get("raw_string.cc");
  ASSERT_NE(sf, nullptr);
  int strings = 0;
  bool saw_prefixed = false;
  for (const Tok& t : sf->toks) {
    if (t.kind == TokKind::kString) {
      ++strings;
      saw_prefixed = saw_prefixed || t.text.rfind("u8R\"x(", 0) == 0;
    }
  }
  EXPECT_EQ(strings, 3);  // the embedded `)"` must not terminate the u8R form
  EXPECT_TRUE(saw_prefixed);
  const Tok& last = sf->toks[sf->toks.size() - 4];
  EXPECT_EQ(last.text, "after_raw");
  EXPECT_EQ(last.line, 6);
}

TEST(OpxAnalyze, TokenizerDigitSeparators) {
  FileSet files(FixtureRoot("tokenizer"));
  const SourceFile* sf = files.Get("digit_sep.cc");
  ASSERT_NE(sf, nullptr);
  int numbers = 0;
  bool big_whole = false;
  bool hex_whole = false;
  for (const Tok& t : sf->toks) {
    if (t.kind == TokKind::kNumber) {
      ++numbers;
      big_whole = big_whole || t.text == "1'000'000";
      hex_whole = hex_whole || t.text == "0xFF'FF";
    }
  }
  EXPECT_EQ(numbers, 3) << "digit separators must not split number tokens";
  EXPECT_TRUE(big_whole);
  EXPECT_TRUE(hex_whole);
}

TEST(OpxAnalyze, TokenizerTemplateClosersAndMergedOperators) {
  FileSet files(FixtureRoot("tokenizer"));
  const SourceFile* sf = files.Get("nested_template.cc");
  ASSERT_NE(sf, nullptr);
  std::map<std::string, int> count;
  for (const Tok& t : sf->toks) {
    if (t.kind == TokKind::kPunct) {
      ++count[t.text];
    }
  }
  EXPECT_EQ(count[">"], 3) << "`>>>` must stay three closers for angle matching";
  EXPECT_EQ(count[">>"], 0);
  EXPECT_EQ(count["<="], 1);
  EXPECT_EQ(count[">="], 1);
  EXPECT_EQ(count["=="], 1);
  EXPECT_EQ(count["&&"], 1);
  EXPECT_EQ(count["||"], 1);
}

TEST(OpxAnalyze, TokenizerLineContinuation) {
  FileSet files(FixtureRoot("tokenizer"));
  const SourceFile* sf = files.Get("line_cont.cc");
  ASSERT_NE(sf, nullptr);
  int spliced_line = 0;
  int two_line = 0;
  int after_line = 0;
  for (const Tok& t : sf->toks) {
    if (t.IsIdent("spliced")) {
      spliced_line = t.line;
    } else if (t.kind == TokKind::kNumber && t.text == "2") {
      two_line = t.line;
    } else if (t.IsIdent("after_splice")) {
      after_line = t.line;
    }
  }
  EXPECT_EQ(spliced_line, 3);
  EXPECT_EQ(two_line, 4) << "splice joins the statement but keeps line numbers";
  EXPECT_EQ(after_line, 5);
}

// The dataflow engine in one place: function discovery, CFG lowering with
// dedicated edge blocks, dominator-based guard facts, and early-return
// negation (DESIGN.md §13).
TEST(OpxAnalyze, CfgEarlyReturnYieldsNegatedGuardFact) {
  SourceFile sf;
  sf.path = "cfg.cc";
  Tokenize(
      "void F(int n) {\n"
      "  if (n < limit_) {\n"
      "    return;\n"
      "  }\n"
      "  apply();\n"
      "}\n",
      &sf);
  const std::vector<FunctionDef> fns = ParseFunctions(sf);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "F");
  ASSERT_EQ(fns[0].params.size(), 1u);
  EXPECT_EQ(fns[0].params[0].name, "n");

  const Cfg cfg = Cfg::Build(sf, fns[0]);
  GuardIndex guards(cfg);
  size_t apply_tok = 0;
  for (size_t i = 0; i < sf.toks.size(); ++i) {
    if (sf.toks[i].IsIdent("apply")) {
      apply_tok = i;
    }
  }
  ASSERT_GT(apply_tok, 0u);
  std::vector<GuardFact> facts;
  for (const GuardFact& raw : guards.FactsAtToken(apply_tok)) {
    for (const GuardFact& f : NormalizeFact(sf.toks, raw)) {
      facts.push_back(f);
    }
  }
  // The only fact on the fall-through path is the negated early-return
  // condition: !(n < limit_).
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_FALSE(facts[0].polarity);
  EXPECT_EQ(sf.toks[facts[0].cond.begin].text, "n");
}

// The call-graph builder on its dedicated fixture: qualified-name merging
// across a header and two .cc files, the three shadowing rules, and the
// bottom-up SCC order the interprocedural checks rely on.
TEST(OpxAnalyze, CallGraphResolvesAcrossFilesAndShadows) {
  FileSet files(FixtureRoot("callgraph"));
  const CallGraph cg = CallGraph::Build(files, {"ring.h", "ring.cc", "other.cc"});

  auto id_of = [&](const std::string& qualified) {
    for (size_t i = 0; i < cg.functions().size(); ++i) {
      if (cg.functions()[i].Qualified() == qualified) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  const int step = id_of("Ring::Step");
  const int helper = id_of("Ring::Helper");
  const int ring_weigh = id_of("Ring::Weigh");
  const int free_weigh = id_of("Weigh");
  const int ping = id_of("Ping");
  const int pong = id_of("Pong");
  const int drive = id_of("Drive");
  ASSERT_NE(step, -1);
  ASSERT_NE(helper, -1);
  ASSERT_NE(ring_weigh, -1);
  ASSERT_NE(free_weigh, -1);
  ASSERT_NE(ping, -1);
  ASSERT_NE(pong, -1);
  ASSERT_NE(drive, -1);
  // In-class definitions carry no FunctionDef qualifier; the builder must
  // recover the enclosing class from the brace nesting.
  EXPECT_EQ(cg.functions()[helper].cls, "Ring");
  EXPECT_EQ(cg.functions()[free_weigh].cls, "");

  auto callees_of = [&](int fn, const std::string& name) {
    std::set<int> out;
    for (const CallSite& s : cg.calls()[static_cast<size_t>(fn)]) {
      if (s.name == name) {
        out.insert(s.callees.begin(), s.callees.end());
      }
    }
    return out;
  };
  // Out-of-line Ring::Step calls the free Ping and its own Helper — the
  // latter defined back in the header (cross-file method resolution).
  EXPECT_EQ(callees_of(step, "Ping"), std::set<int>{ping});
  EXPECT_EQ(callees_of(step, "Helper"), std::set<int>{helper});
  // Inside Ring, unqualified Weigh is the method, shadowing the free Weigh.
  EXPECT_EQ(callees_of(helper, "Weigh"), std::set<int>{ring_weigh});
  // In a free function, unqualified Weigh is the free function; the member
  // call r->Step resolves to the (only) method of that name.
  EXPECT_EQ(callees_of(drive, "Weigh"), std::set<int>{free_weigh});
  EXPECT_EQ(callees_of(drive, "Step"), std::set<int>{step});

  // Ping/Pong are one mutually-recursive SCC; everything else is acyclic.
  EXPECT_EQ(cg.scc_of()[static_cast<size_t>(ping)], cg.scc_of()[static_cast<size_t>(pong)]);
  EXPECT_TRUE(cg.OnCycle(ping));
  EXPECT_TRUE(cg.OnCycle(pong));
  EXPECT_FALSE(cg.OnCycle(step));
  EXPECT_FALSE(cg.OnCycle(drive));
  // Bottom-up emission: every call edge u -> v has scc_of[v] <= scc_of[u],
  // so callees' summaries exist before their callers run.
  EXPECT_LT(cg.scc_of()[static_cast<size_t>(ping)], cg.scc_of()[static_cast<size_t>(step)]);
  EXPECT_LT(cg.scc_of()[static_cast<size_t>(helper)], cg.scc_of()[static_cast<size_t>(step)]);
  EXPECT_LT(cg.scc_of()[static_cast<size_t>(ring_weigh)],
            cg.scc_of()[static_cast<size_t>(helper)]);
  EXPECT_LT(cg.scc_of()[static_cast<size_t>(step)], cg.scc_of()[static_cast<size_t>(drive)]);
}

// --jobs parallelizes only the tokenize/preload stage, so the finding set
// must be byte-identical across worker counts.
TEST(OpxAnalyze, ParallelPreloadIsDeterministic) {
  AnalyzerConfig cfg = FixtureConfig("bad");
  cfg.jobs = 1;
  const AnalysisResult serial = RunAnalysis(cfg);
  cfg.jobs = 4;
  const AnalysisResult parallel = RunAnalysis(cfg);
  EXPECT_EQ(parallel.jobs, 4);
  EXPECT_GT(parallel.preloaded_files, 0);
  ASSERT_EQ(serial.findings.size(), parallel.findings.size());
  for (size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(serial.findings[i].BaselineKey(), parallel.findings[i].BaselineKey());
    EXPECT_EQ(serial.findings[i].line, parallel.findings[i].line);
  }
}

// The repo's own configuration over the live tree: zero findings, zero
// config errors. Keeping this in the unit suite (besides the ctest-level
// opx_analyze_src run) means a red analyzer shows up in any gtest filter.
TEST(OpxAnalyze, RealTreeIsClean) {
  const AnalysisResult result = RunAnalysis(DefaultConfig(OPX_SOURCE_DIR));
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);
  std::set<std::string> baseline;
  LoadBaselineFile(std::string(OPX_SOURCE_DIR) + "/tools/analyze/baseline.txt",
                   &baseline);
  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(result.findings, baseline, &baselined, &stale);
  EXPECT_TRUE(fresh.empty()) << "first finding: "
                             << (fresh.empty() ? "" : fresh[0].BaselineKey());
}

}  // namespace
}  // namespace opx::analyze
