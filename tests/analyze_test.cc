// Self-tests for tools/opx_analyze: fixture trees under
// tools/analyze/fixtures/ with known-good and known-bad sources, golden
// finding sets per check, the three NOLINT spellings, baseline filtering,
// and a final run of the repo's own configuration over the live tree.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyzer.h"

namespace opx::analyze {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(OPX_SOURCE_DIR) + "/tools/analyze/fixtures/" + name;
}

// The shared shape of the fixture trees: one wire header, one handler file.
// HandleAcceptSync lives in handler.cc in the good tree and (mis-ordered) in
// persist.cc in the bad tree, so each tree adds its own rule for it.
AnalyzerConfig FixtureConfig(const std::string& name) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot(name);
  cfg.determinism.dirs = {"src/proto"};
  cfg.determinism.function_dirs = {"src/proto"};
  cfg.variants = {{"FixMessage", "src/proto/messages.h", {"src/proto/handler.cc"}}};
  cfg.handlers = {{"src/proto/handler.cc",
                   "HandlePrepare",
                   {"set_promised_round"},
                   {"Promise"}}};
  cfg.wire_headers = {"src/proto/messages.h"};
  cfg.audit = {{"src/proto/handler.cc", {"Audit", "AuditView"}, true}};
  cfg.obs = {{"src/proto/handler.cc", {"OPX_TRACE", "ObsSink"}}};
  return cfg;
}

std::set<std::string> Keys(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) {
    keys.insert(f.BaselineKey());
  }
  return keys;
}

TEST(OpxAnalyze, GoodTreeIsClean) {
  AnalyzerConfig cfg = FixtureConfig("good");
  cfg.handlers.push_back({"src/proto/handler.cc",
                          "HandleAcceptSync",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {"Accepted"}});
  const AnalysisResult result = RunAnalysis(cfg);
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_TRUE(result.findings.empty())
      << "first finding: "
      << (result.findings.empty() ? "" : result.findings[0].BaselineKey());
  ASSERT_EQ(result.stats.size(), 6u);
  for (const CheckStats& s : result.stats) {
    EXPECT_GT(s.files, 0) << s.check << " examined no files";
    EXPECT_EQ(s.findings, 0) << s.check;
  }
}

TEST(OpxAnalyze, BadTreeGoldenFindings) {
  AnalyzerConfig cfg = FixtureConfig("bad");
  cfg.handlers.push_back({"src/proto/persist.cc",
                          "HandleAcceptSync",
                          {"set_accepted_round", "TruncateAndAppend"},
                          {"Accepted"}});
  const AnalysisResult result = RunAnalysis(cfg);
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);

  const std::set<std::string> expected = {
      // opx-determinism: each seeded nondeterminism source in handler.cc.
      "opx-determinism src/proto/handler.cc rand",
      "opx-determinism src/proto/handler.cc random_device",
      "opx-determinism src/proto/handler.cc std-function",
      "opx-determinism src/proto/handler.cc unordered_map",
      // opx-persist-order: both handlers reply before their durable write.
      "opx-persist-order src/proto/handler.cc HandlePrepare",
      "opx-persist-order src/proto/persist.cc HandleAcceptSync",
      // opx-dispatch: Accepted is never dispatched.
      "opx-dispatch src/proto/messages.h FixMessage::Accepted",
      // opx-msg-init: uninitialized scalar, pointer, and nested field.
      "opx-msg-init src/proto/messages.h Prepare::log_idx",
      "opx-msg-init src/proto/messages.h Promise::from",
      "opx-msg-init src/proto/messages.h Promise::Inner::flag",
      // opx-audit-hook: no auditor surface, no assertions.
      "opx-audit-hook src/proto/handler.cc Audit",
      "opx-audit-hook src/proto/handler.cc AuditView",
      "opx-audit-hook src/proto/handler.cc OPX_CHECK",
      // opx-obs-hook: no trace-recorder hook, no sink.
      "opx-obs-hook src/proto/handler.cc OPX_TRACE",
      "opx-obs-hook src/proto/handler.cc ObsSink",
  };
  EXPECT_EQ(Keys(result.findings), expected);

  // Findings come back sorted by (file, line, check, key).
  EXPECT_TRUE(std::is_sorted(result.findings.begin(), result.findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.check, a.key) <
                                      std::tie(b.file, b.line, b.check, b.key);
                             }));
}

// The acceptance-criterion demonstration: persist.cc clones the
// sequence_paxos.cc HandleAcceptSync shape with Emit(Accepted{...}) hoisted
// above set_accepted_round/TruncateAndAppend, and the persistence-ordering
// check flags exactly that function.
TEST(OpxAnalyze, PersistOrderCatchesSendHoistedAboveStorageWrite) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("bad");
  cfg.handlers = {{"src/proto/persist.cc",
                   "HandleAcceptSync",
                   {"set_accepted_round", "TruncateAndAppend"},
                   {"Accepted"}}};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  std::vector<std::string> errors;
  CheckPersistOrder(cfg, files, &findings, &nfiles, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "opx-persist-order");
  EXPECT_EQ(findings[0].file, "src/proto/persist.cc");
  EXPECT_EQ(findings[0].key, "HandleAcceptSync");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("before the durable write"), std::string::npos);
}

TEST(OpxAnalyze, NolintSuppressesAllThreeSpellings) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("nolint");
  cfg.determinism.dirs = {"src/proto"};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  CheckDeterminism(cfg, files, &findings, &nfiles);
  EXPECT_EQ(nfiles, 1);
  // Four unordered_map uses; NOLINT(opx-determinism), bare NOLINT, and
  // NOLINT(opx-*) silence the first three. Ordinals count suppressed
  // occurrences too, so the visible one is #3.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].BaselineKey(),
            "opx-determinism src/proto/nolint.cc unordered_map#3");
}

TEST(OpxAnalyze, BaselineFiltersAndReportsStaleEntries) {
  AnalyzerConfig cfg;
  cfg.root = FixtureRoot("nolint");
  cfg.determinism.dirs = {"src/proto"};
  FileSet files(cfg.root);
  std::vector<Finding> findings;
  int nfiles = 0;
  CheckDeterminism(cfg, files, &findings, &nfiles);
  ASSERT_EQ(findings.size(), 1u);

  std::set<std::string> baseline;
  ASSERT_TRUE(LoadBaselineFile(FixtureRoot("nolint") + "/baseline.txt", &baseline));
  EXPECT_EQ(baseline.size(), 2u);

  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(findings, baseline, &baselined, &stale);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(baselined, 1);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "opx-determinism src/proto/nolint.cc stale-entry");
}

TEST(OpxAnalyze, TokenizerAndSuppressionUnits) {
  SourceFile sf;
  sf.path = "t.cc";
  Tokenize("#include <unordered_map>\n"
           "int x = rand();  // NOLINT(opx-foo, opx-determinism)\n"
           "auto p = a->b::c;  /* block */\n",
           &sf);
  // The preprocessor line contributes no tokens; `->` and `::` are single
  // puncts.
  ASSERT_FALSE(sf.toks.empty());
  EXPECT_EQ(sf.toks[0].text, "int");
  EXPECT_EQ(sf.toks[0].line, 2);
  int arrows = 0;
  int scopes = 0;
  for (const Tok& t : sf.toks) {
    arrows += t.Is("->") ? 1 : 0;
    scopes += t.Is("::") ? 1 : 0;
  }
  EXPECT_EQ(arrows, 1);
  EXPECT_EQ(scopes, 1);
  EXPECT_TRUE(sf.Suppressed(2, "opx-determinism"));
  EXPECT_TRUE(sf.Suppressed(2, "opx-foo"));
  EXPECT_FALSE(sf.Suppressed(2, "opx-msg-init"));
  EXPECT_FALSE(sf.Suppressed(3, "opx-determinism"));
}

// The repo's own configuration over the live tree: zero findings, zero
// config errors. Keeping this in the unit suite (besides the ctest-level
// opx_analyze_src run) means a red analyzer shows up in any gtest filter.
TEST(OpxAnalyze, RealTreeIsClean) {
  const AnalysisResult result = RunAnalysis(DefaultConfig(OPX_SOURCE_DIR));
  EXPECT_TRUE(result.errors.empty())
      << "first error: " << (result.errors.empty() ? "" : result.errors[0]);
  std::set<std::string> baseline;
  LoadBaselineFile(std::string(OPX_SOURCE_DIR) + "/tools/analyze/baseline.txt",
                   &baseline);
  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(result.findings, baseline, &baselined, &stale);
  EXPECT_TRUE(fresh.empty()) << "first finding: "
                             << (fresh.empty() ? "" : fresh[0].BaselineKey());
}

}  // namespace
}  // namespace opx::analyze
