// VR baseline tests: round-robin view changes, the EQC requirement, and the
// Table 1 partial-connectivity behaviours (deadlocks in quorum-loss and
// constrained-election, recovery in the chained scenario).
#include <gtest/gtest.h>

#include <memory>

#include "src/vr/vr_replica.h"
#include "tests/lockstep_harness.h"

namespace opx {
namespace {

using vr::VrReplica;
using Cluster = testing::LockstepCluster<VrReplica>;

struct VrFixture {
  std::vector<std::unique_ptr<omni::Storage>> storages;
  std::unique_ptr<Cluster> cluster;
};

VrFixture MakeCluster(int n, int timeout_ticks = 3) {
  VrFixture fx;
  fx.storages.resize(static_cast<size_t>(n) + 1);
  for (int i = 1; i <= n; ++i) {
    fx.storages[static_cast<size_t>(i)] = std::make_unique<omni::Storage>();
  }
  auto* storages = &fx.storages;
  fx.cluster = std::make_unique<Cluster>(
      n, [storages, timeout_ticks](NodeId id, std::vector<NodeId> peers) {
        vr::VrReplicaConfig cfg;
        cfg.pid = id;
        cfg.peers = std::move(peers);
        cfg.timeout_ticks = timeout_ticks;
        cfg.seed = 300 + static_cast<uint64_t>(id);
        return std::make_unique<VrReplica>(cfg, (*storages)[static_cast<size_t>(id)].get());
      });
  return fx;
}

NodeId CurrentLeader(Cluster& cluster) {
  NodeId best = kNoNode;
  uint64_t best_view = 0;
  for (NodeId id = 1; id <= cluster.size(); ++id) {
    if (!cluster.IsCrashed(id) && cluster.node(id).IsLeader() &&
        cluster.node(id).election().view() + 1 > best_view) {
      best = id;
      best_view = cluster.node(id).election().view() + 1;
    }
  }
  return best;
}

bool Append(Cluster& cluster, NodeId id, uint64_t cmd) {
  const bool ok = cluster.node(id).Append(omni::Entry::Command(cmd, 8));
  cluster.Collect();
  cluster.DeliverAll();
  return ok;
}

TEST(VrElection, InitialViewZeroPrimaryLeads) {
  VrFixture fx = MakeCluster(3);
  fx.cluster->TickRounds(3);
  // View 0's primary is the lowest node id (round-robin over sorted ids).
  EXPECT_EQ(CurrentLeader(*fx.cluster), 1);
}

TEST(VrElection, PrimaryCrashAdvancesToNextView) {
  VrFixture fx = MakeCluster(3);
  fx.cluster->TickRounds(3);
  ASSERT_EQ(CurrentLeader(*fx.cluster), 1);
  fx.cluster->Crash(1);
  fx.cluster->TickRounds(30);
  const NodeId new_leader = CurrentLeader(*fx.cluster);
  EXPECT_EQ(new_leader, 2);  // next in round-robin order
}

TEST(VrElection, SkipsUnreachablePrimaries) {
  VrFixture fx = MakeCluster(5);
  fx.cluster->TickRounds(3);
  ASSERT_EQ(CurrentLeader(*fx.cluster), 1);
  fx.cluster->Crash(1);
  fx.cluster->Crash(2);
  fx.cluster->Crash(3);
  // Views 1 and 2 target crashed servers; their view changes stall and time
  // out until view 3 reaches server 4. Majority is still alive? No — only 2
  // of 5 alive, so no view change can complete. Restore one server's worth of
  // quorum by only crashing two.
  fx.cluster = nullptr;  // rebuild below
  fx = MakeCluster(5);
  fx.cluster->TickRounds(3);
  ASSERT_EQ(CurrentLeader(*fx.cluster), 1);
  fx.cluster->Crash(1);
  fx.cluster->Crash(2);
  fx.cluster->TickRounds(80);
  const NodeId new_leader = CurrentLeader(*fx.cluster);
  EXPECT_TRUE(new_leader == 3 || new_leader == 4 || new_leader == 5);
  EXPECT_NE(new_leader, kNoNode);
}

TEST(VrReplication, AppendDecidesEverywhere) {
  VrFixture fx = MakeCluster(3);
  fx.cluster->TickRounds(3);
  const NodeId leader = CurrentLeader(*fx.cluster);
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    EXPECT_TRUE(Append(*fx.cluster, leader, cmd));
  }
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(fx.cluster->node(id).decided_idx(), 10u) << "server " << id;
  }
}

TEST(VrPartialConnectivity, QuorumLossDeadlocks) {
  // Only one QC server exists; no server can be EQC, so no view change ever
  // completes (Fig. 8a: VR deadlock).
  VrFixture fx = MakeCluster(5);
  fx.cluster->TickRounds(3);
  const NodeId leader = CurrentLeader(*fx.cluster);
  ASSERT_EQ(leader, 1);
  const NodeId hub = 2;
  for (NodeId a = 1; a <= 5; ++a) {
    for (NodeId b = a + 1; b <= 5; ++b) {
      if (a != hub && b != hub) {
        fx.cluster->SetLink(a, b, false);
      }
    }
  }
  fx.cluster->TickRounds(100);
  // The old leader keeps its role but cannot commit; nobody else completes a
  // view change.
  EXPECT_TRUE(Append(*fx.cluster, 1, 777));
  fx.cluster->TickRounds(5);
  EXPECT_EQ(fx.cluster->node(1).decided_idx(), 0u);
  for (NodeId id = 2; id <= 5; ++id) {
    EXPECT_FALSE(fx.cluster->node(id).IsLeader()) << "server " << id;
  }
}

TEST(VrPartialConnectivity, ConstrainedElectionDeadlocks) {
  // The only QC server (hub) cannot gather DoViewChange votes because no
  // other server is quorum-connected (EQC fails) — VR deadlocks (Fig. 8b).
  VrFixture fx = MakeCluster(5);
  fx.cluster->TickRounds(3);
  ASSERT_EQ(CurrentLeader(*fx.cluster), 1);
  const NodeId hub = 2;
  fx.cluster->Isolate(1);  // old leader fully partitioned
  for (NodeId a = 2; a <= 5; ++a) {
    for (NodeId b = a + 1; b <= 5; ++b) {
      if (a != hub && b != hub) {
        fx.cluster->SetLink(a, b, false);
      }
    }
  }
  fx.cluster->TickRounds(100);
  for (NodeId id = 2; id <= 5; ++id) {
    EXPECT_FALSE(fx.cluster->node(id).IsLeader()) << "server " << id;
  }
}

TEST(VrPartialConnectivity, ChainedScenarioRecovers) {
  // 3 servers in a chain recover: round-robin eventually reaches a reachable
  // primary (possibly changing leader twice — §7.2).
  VrFixture fx = MakeCluster(3);
  fx.cluster->TickRounds(3);
  ASSERT_EQ(CurrentLeader(*fx.cluster), 1);
  // Chain: 2 — 1 — 3 is wrong; leader must be an endpoint. Cut 1<->3 so the
  // chain is 1 — 2 — 3 with leader 1 an endpoint.
  fx.cluster->SetLink(1, 3, false);
  fx.cluster->TickRounds(60);
  const NodeId new_leader = CurrentLeader(*fx.cluster);
  ASSERT_NE(new_leader, kNoNode);
  // The cluster must make progress again.
  EXPECT_TRUE(Append(*fx.cluster, new_leader, 42));
  fx.cluster->TickRounds(5);
  EXPECT_GT(fx.cluster->node(new_leader).decided_idx(), 0u);
}

}  // namespace
}  // namespace opx
