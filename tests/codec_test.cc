// Wire-codec tests: exact round-trips for every message type, and robustness
// against truncated/corrupted input (parameterized fuzz sweep).
#include <gtest/gtest.h>

#include "src/omnipaxos/codec.h"
#include "src/util/rng.h"

namespace opx {
namespace {

using omni::Ballot;
using omni::DecodeMessage;
using omni::EncodeMessage;
using omni::Entry;
using omni::OmniMessage;

OmniMessage RoundTrip(const OmniMessage& in) {
  std::vector<uint8_t> wire;
  EncodeMessage(in, &wire);
  OmniMessage out;
  EXPECT_TRUE(DecodeMessage(wire.data(), wire.size(), &out));
  return out;
}

template <typename T>
T PaxosAs(const OmniMessage& m) {  // by value: callers pass temporaries
  return std::get<T>(std::get<omni::PaxosMessage>(m));
}

TEST(Codec, Prepare) {
  omni::Prepare in;
  in.n = Ballot{7, 2, 3};
  in.acc_rnd = Ballot{5, 0, 1};
  in.log_idx = 1234;
  in.decided_idx = 1200;
  const auto out = PaxosAs<omni::Prepare>(RoundTrip(omni::PaxosMessage(in)));
  EXPECT_EQ(out.n, in.n);
  EXPECT_EQ(out.acc_rnd, in.acc_rnd);
  EXPECT_EQ(out.log_idx, in.log_idx);
  EXPECT_EQ(out.decided_idx, in.decided_idx);
}

TEST(Codec, PromiseWithSuffixAndStopSign) {
  omni::Promise in;
  in.n = Ballot{9, 0, 2};
  in.acc_rnd = Ballot{8, 1, 4};
  in.log_idx = 42;
  in.decided_idx = 40;
  in.snapshot_up_to = 30;
  omni::StopSign ss;
  ss.next_config = 2;
  ss.next_nodes = {1, 2, 6};
  in.suffix = {Entry::Command(100, 8), Entry::Stop(ss)};
  const auto out = PaxosAs<omni::Promise>(RoundTrip(omni::PaxosMessage(in)));
  EXPECT_EQ(out.snapshot_up_to, 30u);
  ASSERT_EQ(out.suffix.size(), 2u);
  EXPECT_EQ(out.suffix[0], in.suffix[0]);
  EXPECT_EQ(out.suffix[1], in.suffix[1]);
  ASSERT_TRUE(out.suffix[1].IsStopSign());
  EXPECT_EQ(out.suffix[1].stop_sign->next_nodes, (std::vector<NodeId>{1, 2, 6}));
}

TEST(Codec, AcceptSync) {
  omni::AcceptSync in;
  in.n = Ballot{3, 0, 1};
  in.sync_idx = 17;
  in.decided_idx = 15;
  in.snapshot_up_to = 10;
  in.suffix = {Entry::Command(1, 8), Entry::Command(2, 16)};
  const auto out = PaxosAs<omni::AcceptSync>(RoundTrip(omni::PaxosMessage(in)));
  EXPECT_EQ(out.sync_idx, in.sync_idx);
  EXPECT_EQ(out.suffix, in.suffix);
}

TEST(Codec, AcceptDecide) {
  omni::AcceptDecide in;
  in.n = Ballot{3, 0, 1};
  in.start_idx = 100;
  in.decided_idx = 99;
  in.entries = {Entry::Command(5, 8)};
  const auto out = PaxosAs<omni::AcceptDecide>(RoundTrip(omni::PaxosMessage(in)));
  EXPECT_EQ(out.start_idx, 100u);
  EXPECT_EQ(out.entries, in.entries);
}

TEST(Codec, SmallMessages) {
  const auto accepted =
      PaxosAs<omni::Accepted>(RoundTrip(omni::PaxosMessage(omni::Accepted{Ballot{1, 0, 2}, 55})));
  EXPECT_EQ(accepted.log_idx, 55u);
  const auto decide =
      PaxosAs<omni::Decide>(RoundTrip(omni::PaxosMessage(omni::Decide{Ballot{1, 0, 2}, 50})));
  EXPECT_EQ(decide.decided_idx, 50u);
  const OmniMessage req = RoundTrip(omni::PaxosMessage(omni::PrepareReq{}));
  EXPECT_TRUE(std::holds_alternative<omni::PrepareReq>(std::get<omni::PaxosMessage>(req)));
}

TEST(Codec, ProposalForward) {
  omni::ProposalForward in;
  in.entries = {Entry::Command(9, 8), Entry::Command(10, 8)};
  const auto out = PaxosAs<omni::ProposalForward>(RoundTrip(omni::PaxosMessage(in)));
  EXPECT_EQ(out.entries, in.entries);
}

TEST(Codec, BleMessages) {
  const OmniMessage req = RoundTrip(omni::BleMessage(omni::HeartbeatRequest{77}));
  EXPECT_EQ(std::get<omni::HeartbeatRequest>(std::get<omni::BleMessage>(req)).round, 77u);
  omni::HeartbeatReply reply;
  reply.round = 78;
  reply.ballot = Ballot{4, 1, 5};
  reply.quorum_connected = true;
  const OmniMessage out = RoundTrip(omni::BleMessage(reply));
  const auto& decoded = std::get<omni::HeartbeatReply>(std::get<omni::BleMessage>(out));
  EXPECT_EQ(decoded.round, 78u);
  EXPECT_EQ(decoded.ballot, reply.ballot);
  EXPECT_TRUE(decoded.quorum_connected);
}

TEST(Codec, RejectsEmptyAndUnknownTag) {
  OmniMessage out;
  EXPECT_FALSE(DecodeMessage(nullptr, 0, &out));
  const uint8_t bogus[] = {0x7f, 1, 2, 3};
  EXPECT_FALSE(DecodeMessage(bogus, sizeof(bogus), &out));
}

TEST(Codec, RejectsAllTruncations) {
  // Every strict prefix of a valid encoding must be rejected (no partial
  // state, no crash).
  omni::Promise promise;
  promise.n = Ballot{9, 0, 2};
  promise.acc_rnd = Ballot{8, 1, 4};
  promise.suffix = {Entry::Command(100, 8)};
  std::vector<uint8_t> wire;
  EncodeMessage(omni::PaxosMessage(promise), &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    OmniMessage out;
    EXPECT_FALSE(DecodeMessage(wire.data(), len, &out)) << "prefix len " << len;
  }
}

class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.NextBounded(128);
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.Next());
    }
    OmniMessage out;
    (void)DecodeMessage(bytes.data(), bytes.size(), &out);  // must not crash/UB
  }
}

TEST_P(CodecFuzzTest, BitFlippedEncodingsNeverCrash) {
  Rng rng(GetParam());
  omni::AcceptDecide ad;
  ad.n = Ballot{3, 0, 1};
  ad.entries = {Entry::Command(5, 8), Entry::Command(6, 8)};
  std::vector<uint8_t> wire;
  EncodeMessage(omni::PaxosMessage(ad), &wire);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> mutated = wire;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBounded(8));
    OmniMessage out;
    (void)DecodeMessage(mutated.data(), mutated.size(), &out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace opx
