// Integration tests for the real TCP runtime: three OmniTcpServer instances
// on localhost sockets (each on its own thread), driven by OmniClient —
// replication, leader redirect, crash + WAL recovery, all over actual TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/omni_client.h"
#include "src/net/omni_tcp_server.h"

namespace opx {
namespace {

using net::Endpoint;
using net::OmniClient;
using net::OmniTcpServer;
using net::ServerOptions;

// A 3-server localhost cluster on ephemeral ports. Ports must be known before
// peers can connect, so servers bind first (port 0), then learn each other.
class TcpCluster {
 public:
  explicit TcpCluster(const std::string& wal_prefix = "") {
    // Phase 1: bind all listeners to learn the ports.
    std::map<NodeId, uint16_t> ports;
    std::vector<std::unique_ptr<OmniTcpServer>> bound;
    for (NodeId id = 1; id <= 3; ++id) {
      ServerOptions options;
      options.id = id;
      options.listen_port = 0;
      options.election_timeout = Millis(30);
      options.ble_priority = id == 1 ? 1 : 0;
      if (!wal_prefix.empty()) {
        options.wal_path = wal_prefix + std::to_string(id) + ".wal";
      }
      options_[static_cast<size_t>(id)] = options;
      // Peers are filled in phase 2; Start() with empty peers just binds.
      auto server = std::make_unique<OmniTcpServer>(options);
      // Can't Start yet without peers — instead bind via a throwaway
      // transport? Simpler: pre-allocate fixed ports by binding sockets.
      (void)server;
      bound.push_back(nullptr);
    }
    // Use a base derived from the PID to avoid collisions between parallel
    // test invocations.
    const uint16_t base = static_cast<uint16_t>(20000 + (getpid() % 20000));
    for (NodeId id = 1; id <= 3; ++id) {
      ports[id] = static_cast<uint16_t>(base + id);
    }
    for (NodeId id = 1; id <= 3; ++id) {
      ServerOptions& options = options_[static_cast<size_t>(id)];
      options.listen_port = ports[id];
      for (NodeId peer = 1; peer <= 3; ++peer) {
        if (peer != id) {
          options.peers[peer] = Endpoint{"127.0.0.1", ports[peer]};
        }
      }
      endpoints_[id] = Endpoint{"127.0.0.1", ports[id]};
    }
    for (NodeId id = 1; id <= 3; ++id) {
      StartServer(id);
    }
  }

  ~TcpCluster() {
    for (NodeId id = 1; id <= 3; ++id) {
      StopServer(id);
    }
    for (NodeId id = 1; id <= 3; ++id) {
      if (!options_[static_cast<size_t>(id)].wal_path.empty()) {
        std::remove(options_[static_cast<size_t>(id)].wal_path.c_str());
      }
    }
  }

  void StartServer(NodeId id) {
    auto& slot = servers_[static_cast<size_t>(id)];
    ASSERT_EQ(slot.server, nullptr);
    slot.stop.store(false);
    slot.server = std::make_unique<OmniTcpServer>(options_[static_cast<size_t>(id)]);
    ASSERT_TRUE(slot.server->Start());
    slot.thread = std::thread([&slot]() { slot.server->Run(slot.stop); });
  }

  void StopServer(NodeId id) {
    auto& slot = servers_[static_cast<size_t>(id)];
    if (slot.server == nullptr) {
      return;
    }
    slot.stop.store(true);
    if (slot.thread.joinable()) {
      slot.thread.join();
    }
    slot.server = nullptr;
  }

  const std::map<NodeId, Endpoint>& endpoints() const { return endpoints_; }

 private:
  struct Slot {
    std::unique_ptr<OmniTcpServer> server;
    std::thread thread;
    std::atomic<bool> stop{false};
  };

  ServerOptions options_[4];
  Slot servers_[4];
  std::map<NodeId, Endpoint> endpoints_;
};

TEST(TcpRuntime, ReplicatesCommandsEndToEnd) {
  TcpCluster cluster;
  OmniClient client(cluster.endpoints());
  ASSERT_TRUE(client.Connect(Seconds(10)));
  for (uint64_t cmd = 1; cmd <= 20; ++cmd) {
    ASSERT_TRUE(client.AppendAndWait(cmd, 8, Seconds(10))) << "cmd " << cmd;
  }
  OmniClient::Status status;
  ASSERT_TRUE(client.GetStatus(&status, Seconds(5)));
  EXPECT_GE(status.decided, 20u);
  EXPECT_NE(status.leader, kNoNode);
}

TEST(TcpRuntime, FollowerRedirectsToLeader) {
  TcpCluster cluster;
  OmniClient probe(cluster.endpoints());
  ASSERT_TRUE(probe.Connect(Seconds(10)));
  OmniClient::Status status;
  ASSERT_TRUE(probe.GetStatus(&status, Seconds(10)));
  // Wait for a leader to emerge.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (status.leader == kNoNode && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(probe.GetStatus(&status, Seconds(5)));
  }
  ASSERT_NE(status.leader, kNoNode);
  // Connect specifically to a follower and append: the redirect + retry path
  // must still decide the command.
  NodeId follower = kNoNode;
  for (const auto& [id, endpoint] : cluster.endpoints()) {
    if (id != status.leader) {
      follower = id;
      break;
    }
  }
  std::map<NodeId, Endpoint> all = cluster.endpoints();
  OmniClient client(all);
  ASSERT_TRUE(client.Connect(Seconds(5)));
  EXPECT_TRUE(client.AppendAndWait(777, 8, Seconds(10)));
}

TEST(TcpRuntime, SurvivesServerCrashAndWalRecovery) {
  const std::string wal_prefix = ::testing::TempDir() + "/tcp_e2e_";
  TcpCluster cluster(wal_prefix);
  OmniClient client(cluster.endpoints());
  ASSERT_TRUE(client.Connect(Seconds(10)));
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    ASSERT_TRUE(client.AppendAndWait(cmd, 8, Seconds(10)));
  }
  // Crash server 3 (thread stopped, state dropped; WAL remains).
  cluster.StopServer(3);
  for (uint64_t cmd = 11; cmd <= 20; ++cmd) {
    ASSERT_TRUE(client.AppendAndWait(cmd, 8, Seconds(10))) << "cmd " << cmd;
  }
  // Restart from the WAL; it must catch up with entries decided while down.
  cluster.StartServer(3);
  OmniClient direct(std::map<NodeId, Endpoint>{{3, cluster.endpoints().at(3)}});
  ASSERT_TRUE(direct.Connect(Seconds(10)));
  OmniClient::Status status;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < deadline) {
    if (direct.GetStatus(&status, Seconds(5)) && status.decided >= 20u) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(status.decided, 20u) << "recovered server did not catch up";
}

}  // namespace
}  // namespace opx
