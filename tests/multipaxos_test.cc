// Multi-Paxos baseline tests: phase 1/2, failure-detector takeover, NACK
// gossip, gap repair, and the partial-connectivity behaviours Table 1 lists.
#include <gtest/gtest.h>

#include "src/multipaxos/multipaxos.h"
#include "tests/lockstep_harness.h"

namespace opx {
namespace {

using mpx::MultiPaxos;
using Cluster = testing::LockstepCluster<MultiPaxos>;

Cluster MakeCluster(int n, int timeout_ticks = 3) {
  return Cluster(n, [timeout_ticks](NodeId id, std::vector<NodeId> peers) {
    mpx::MpxConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.ping_timeout_ticks = timeout_ticks;
    cfg.seed = 100 + static_cast<uint64_t>(id);
    return std::make_unique<MultiPaxos>(cfg);
  });
}

NodeId CurrentLeader(Cluster& cluster) {
  NodeId best = kNoNode;
  mpx::Ballot best_ballot;
  for (NodeId id = 1; id <= cluster.size(); ++id) {
    if (!cluster.IsCrashed(id) && cluster.node(id).IsLeader() &&
        cluster.node(id).ballot() > best_ballot) {
      best = id;
      best_ballot = cluster.node(id).ballot();
    }
  }
  return best;
}

bool Append(Cluster& cluster, NodeId id, uint64_t cmd) {
  const bool ok = cluster.node(id).Append(mpx::Entry::Command(cmd, 8));
  cluster.Collect();
  cluster.DeliverAll();
  return ok;
}

TEST(MpxElection, ThreeServersElectOneLeader) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  EXPECT_NE(CurrentLeader(cluster), kNoNode);
}

TEST(MpxElection, LeaderCrashTriggersTakeover) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId old_leader = CurrentLeader(cluster);
  ASSERT_NE(old_leader, kNoNode);
  cluster.Crash(old_leader);
  cluster.TickRounds(40);
  const NodeId new_leader = CurrentLeader(cluster);
  EXPECT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, old_leader);
}

TEST(MpxReplication, AppendDecidesEverywhere) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    EXPECT_TRUE(Append(cluster, leader, cmd));
  }
  cluster.TickRounds(2);  // commit watermark propagates
  const uint64_t leader_decided = cluster.node(leader).decided_idx();
  EXPECT_GE(leader_decided, 10u);
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(cluster.node(id).decided_idx(), leader_decided) << "server " << id;
  }
}

TEST(MpxReplication, FollowerRejectsAppend) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  const NodeId follower = leader == 1 ? 2 : 1;
  EXPECT_FALSE(cluster.node(follower).Append(mpx::Entry::Command(1, 8)));
}

TEST(MpxReplication, NewLeaderAdoptsAcceptedValues) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    Append(cluster, leader, cmd);
  }
  cluster.TickRounds(2);
  const uint64_t decided_before = cluster.node(leader).decided_idx();
  cluster.Crash(leader);
  cluster.TickRounds(40);
  const NodeId new_leader = CurrentLeader(cluster);
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_GE(cluster.node(new_leader).decided_idx(), decided_before);
  // Decided prefixes agree (SC2-equivalent for Multi-Paxos).
  for (uint64_t i = 0; i < decided_before; ++i) {
    bool is_noop_or_equal = true;
    for (NodeId id = 1; id <= 3; ++id) {
      if (cluster.IsCrashed(id) || cluster.node(id).decided_idx() <= i) {
        continue;
      }
      is_noop_or_equal =
          is_noop_or_equal && cluster.node(id).log()[i] == cluster.node(new_leader).log()[i];
    }
    EXPECT_TRUE(is_noop_or_equal) << "slot " << i;
  }
}

TEST(MpxReplication, DisconnectedFollowerRepairsGapOnHeal) {
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  NodeId follower = kNoNode;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  cluster.SetLink(leader, follower, false);
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    Append(cluster, leader, cmd);
  }
  cluster.TickRounds(1);
  EXPECT_LT(cluster.node(follower).decided_idx(), cluster.node(leader).decided_idx());
  cluster.SetLink(leader, follower, true);
  cluster.TickRounds(3);
  EXPECT_EQ(cluster.node(follower).decided_idx(), cluster.node(leader).decided_idx());
}

TEST(MpxPartialConnectivity, QuorumLossDeadlocks) {
  // Fig. 1a with 5 servers: everyone is connected to A only; the leader C is
  // alive but not QC. Multi-Paxos never recovers (Fig. 8a).
  Cluster cluster = MakeCluster(5);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  NodeId hub = leader == 1 ? 2 : 1;  // "A": the only QC server
  // Cut every link except those incident to the hub.
  for (NodeId a = 1; a <= 5; ++a) {
    for (NodeId b = a + 1; b <= 5; ++b) {
      if (a != hub && b != hub) {
        cluster.SetLink(a, b, false);
      }
    }
  }
  cluster.TickRounds(60);
  // No server can decide new commands: the hub never suspects anyone (it is
  // connected to everyone), and nobody else can reach a majority.
  const uint64_t decided_before = cluster.node(hub).decided_idx();
  for (NodeId id = 1; id <= 5; ++id) {
    if (cluster.node(id).IsLeader()) {
      cluster.node(id).Append(mpx::Entry::Command(999, 8));
    }
  }
  cluster.Collect();
  cluster.DeliverAll();
  cluster.TickRounds(10);
  EXPECT_EQ(cluster.node(hub).decided_idx(), decided_before);
}

TEST(MpxPartialConnectivity, ConstrainedElectionRecovers) {
  // Fig. 1b: old leader fully isolated; the hub (only QC server) takes over
  // even with an outdated log (Fig. 8b: Multi-Paxos recovers here).
  Cluster cluster = MakeCluster(5);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  const NodeId hub = leader == 1 ? 2 : 1;
  cluster.Isolate(leader);
  for (NodeId a = 1; a <= 5; ++a) {
    for (NodeId b = a + 1; b <= 5; ++b) {
      if (a != hub && b != hub && a != leader && b != leader) {
        cluster.SetLink(a, b, false);
      }
    }
  }
  cluster.TickRounds(40);
  const NodeId new_leader = CurrentLeader(cluster);
  EXPECT_EQ(new_leader, hub);
  EXPECT_TRUE(Append(cluster, hub, 1234));
  cluster.TickRounds(2);
  EXPECT_GT(cluster.node(hub).decided_idx(), 0u);
}

TEST(MpxPartialConnectivity, ChainedScenarioLivelocks) {
  // Fig. 1c: 3 servers in a chain; the ballot gossip causes repeated leader
  // changes (Fig. 8c: Multi-Paxos has the lowest throughput).
  Cluster cluster = MakeCluster(3);
  cluster.TickRounds(30);
  const NodeId leader = CurrentLeader(cluster);
  ASSERT_NE(leader, kNoNode);
  // Make `leader` an endpoint of the chain: cut leader <-> other_end.
  NodeId middle = kNoNode, other_end = kNoNode;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader) {
      if (middle == kNoNode) {
        middle = id;
      } else {
        other_end = id;
      }
    }
  }
  const uint64_t changes_before = cluster.node(leader).leader_changes() +
                                  cluster.node(middle).leader_changes() +
                                  cluster.node(other_end).leader_changes();
  cluster.SetLink(leader, other_end, false);
  cluster.TickRounds(100);
  const uint64_t changes_after = cluster.node(leader).leader_changes() +
                                 cluster.node(middle).leader_changes() +
                                 cluster.node(other_end).leader_changes();
  // Repeated elections while chained: substantially more than a single
  // takeover.
  EXPECT_GT(changes_after - changes_before, 4u);
}

}  // namespace
}  // namespace opx
