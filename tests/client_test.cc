// Unit tests for the closed-loop benchmark client: CP maintenance, leader
// redirection, retry/rotation, duplicate suppression, and the down-time /
// windowed-throughput metrics every figure depends on.
#include <gtest/gtest.h>

#include "src/rsm/client.h"

namespace opx {
namespace {

using rsm::Client;
using rsm::ClientParams;
using rsm::ResponseBatch;

ClientParams Params(size_t cp = 10) {
  ClientParams p;
  p.num_servers = 3;
  p.concurrent_proposals = cp;
  p.retry_timeout = Millis(100);
  return p;
}

TEST(Client, TopsUpToConcurrentProposals) {
  Client client(Params(10));
  const auto sends = client.Tick(0);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].batch.cmd_ids.size(), 10u);
}

TEST(Client, NoSendWhenSaturated) {
  Client client(Params(10));
  (void)client.Tick(0);
  EXPECT_TRUE(client.Tick(Millis(1)).empty());
}

TEST(Client, RefillsAfterCompletions) {
  Client client(Params(10));
  const auto first = client.Tick(0);
  ResponseBatch resp;
  resp.cmd_ids = {first[0].batch.cmd_ids[0], first[0].batch.cmd_ids[1]};
  client.OnResponse(Millis(5), 1, resp);
  EXPECT_EQ(client.completed(), 2u);
  const auto refill = client.Tick(Millis(6));
  ASSERT_EQ(refill.size(), 1u);
  EXPECT_EQ(refill[0].batch.cmd_ids.size(), 2u);
}

TEST(Client, DuplicateResponsesCountedOnce) {
  Client client(Params(5));
  const auto first = client.Tick(0);
  ResponseBatch resp;
  resp.cmd_ids = {first[0].batch.cmd_ids[0]};
  client.OnResponse(Millis(1), 1, resp);
  client.OnResponse(Millis(2), 1, resp);
  client.OnResponse(Millis(3), 2, resp);
  EXPECT_EQ(client.completed(), 1u);
}

TEST(Client, RedirectsToHintedLeaderAndReproposes) {
  Client client(Params(5));
  (void)client.Tick(0);
  ResponseBatch reject;
  reject.leader_hint = 3;
  client.OnResponse(Millis(1), 1, reject);
  const auto resend = client.Tick(Millis(2));
  ASSERT_EQ(resend.size(), 1u);
  EXPECT_EQ(resend[0].to, 3);
  EXPECT_EQ(resend[0].batch.cmd_ids.size(), 5u);  // outstanding re-proposed
}

TEST(Client, RotatesTargetAfterSilence) {
  Client client(Params(5));
  const auto first = client.Tick(0);
  const NodeId first_target = first[0].to;
  // No responses for > retry_timeout: rotate and re-propose.
  const auto retry = client.Tick(Millis(150));
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_NE(retry[0].to, first_target);
  EXPECT_EQ(retry[0].batch.cmd_ids.size(), 5u);
}

TEST(Client, SticksWithRespondingServer) {
  Client client(Params(5));
  const auto first = client.Tick(0);
  ResponseBatch resp;
  resp.cmd_ids = {first[0].batch.cmd_ids[0]};
  client.OnResponse(Millis(1), 2, resp);  // server 2 decided something
  const auto next = client.Tick(Millis(2));
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].to, 2);
}

TEST(Client, WindowCountsBucketCompletions) {
  Client client(Params(4));
  client.set_window_width(Seconds(1));
  const auto first = client.Tick(0);
  ResponseBatch resp;
  resp.cmd_ids = {first[0].batch.cmd_ids[0]};
  client.OnResponse(Millis(500), 1, resp);     // window 0
  ResponseBatch resp2;
  resp2.cmd_ids = {first[0].batch.cmd_ids[1], first[0].batch.cmd_ids[2]};
  client.OnResponse(Millis(2'500), 1, resp2);  // window 2
  const auto& windows = client.window_counts();
  ASSERT_GE(windows.size(), 3u);
  EXPECT_EQ(windows[0], 1u);
  EXPECT_EQ(windows[1], 0u);
  EXPECT_EQ(windows[2], 2u);
}

TEST(Client, LongestGapTracksDowntime) {
  Client client(Params(4));
  const auto first = client.Tick(0);
  auto respond_one = [&](size_t i, Time at) {
    ResponseBatch resp;
    resp.cmd_ids = {first[0].batch.cmd_ids[i]};
    client.OnResponse(at, 1, resp);
  };
  respond_one(0, Millis(10));
  respond_one(1, Millis(20));
  // 980 ms outage.
  respond_one(2, Millis(1000));
  respond_one(3, Millis(1010));
  EXPECT_EQ(client.LongestGap(0, Millis(1010)), Millis(980));
  // Clipped to a window inside the outage.
  EXPECT_EQ(client.LongestGap(Millis(100), Millis(600)), Millis(500));
  // Open-ended gap at the query horizon.
  EXPECT_EQ(client.LongestGap(0, Seconds(5)), Seconds(5) - Millis(1010));
}

TEST(Client, MeanLatencyAveragesProposeToDecide) {
  Client client(Params(2));
  const auto first = client.Tick(0);
  ResponseBatch resp;
  resp.cmd_ids = first[0].batch.cmd_ids;
  client.OnResponse(Millis(100), 1, resp);
  EXPECT_NEAR(client.MeanLatencySeconds(), 0.1, 1e-9);
}

}  // namespace
}  // namespace opx
