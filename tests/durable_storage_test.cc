// Tests for the WAL-backed storage: round-trip recovery of every mutation
// type, torn-tail tolerance, and end-to-end crash-recovery of a SequencePaxos
// server running on durable storage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/omnipaxos/durable_storage.h"
#include "src/omnipaxos/omni_paxos.h"
#include "tests/omni_test_harness.h"

namespace opx {
namespace {

using omni::Ballot;
using omni::DurableStorage;
using omni::Entry;
using omni::StopSign;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(reinterpret_cast<uintptr_t>(&name)) + ".wal";
}

TEST(DurableStorage, RecoversEmptyJournal) {
  const std::string path = TempPath("empty");
  { auto storage = DurableStorage::Create(path); }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->log_len(), 0u);
  EXPECT_EQ(recovered->decided_idx(), 0u);
  EXPECT_EQ(recovered->promised_round(), omni::kNullBallot);
  std::remove(path.c_str());
}

TEST(DurableStorage, RecoverMissingFileReturnsNull) {
  EXPECT_EQ(DurableStorage::Recover("/nonexistent/dir/x.wal"), nullptr);
}

TEST(DurableStorage, RoundTripsAllMutations) {
  const std::string path = TempPath("roundtrip");
  {
    auto storage = DurableStorage::Create(path);
    storage->set_promised_round(Ballot{3, 1, 2});
    storage->set_accepted_round(Ballot{3, 1, 2});
    storage->Append(Entry::Command(1, 8));
    storage->AppendAll({Entry::Command(2, 8), Entry::Command(3, 16)});
    StopSign ss;
    ss.next_config = 7;
    ss.next_nodes = {1, 2, 9};
    storage->Append(Entry::Stop(ss));
    storage->set_decided_idx(2);
    storage->TruncateAndAppend(3, {Entry::Command(99, 8)});
    storage->Sync();
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->promised_round(), (Ballot{3, 1, 2}));
  EXPECT_EQ(recovered->accepted_round(), (Ballot{3, 1, 2}));
  ASSERT_EQ(recovered->log_len(), 4u);
  EXPECT_EQ(recovered->At(0).cmd_id, 1u);
  EXPECT_EQ(recovered->At(1).cmd_id, 2u);
  EXPECT_EQ(recovered->At(2).cmd_id, 3u);
  EXPECT_EQ(recovered->At(2).payload_bytes, 16u);
  EXPECT_EQ(recovered->At(3).cmd_id, 99u);
  EXPECT_EQ(recovered->decided_idx(), 2u);
  std::remove(path.c_str());
}

TEST(DurableStorage, StopSignSurvivesRecovery) {
  const std::string path = TempPath("ss");
  {
    auto storage = DurableStorage::Create(path);
    StopSign ss;
    ss.next_config = 3;
    ss.next_nodes = {4, 5, 6, 7};
    storage->Append(Entry::Stop(ss));
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  ASSERT_EQ(recovered->log_len(), 1u);
  ASSERT_TRUE(recovered->At(0).IsStopSign());
  EXPECT_EQ(recovered->At(0).stop_sign->next_config, 3u);
  EXPECT_EQ(recovered->At(0).stop_sign->next_nodes,
            (std::vector<NodeId>{4, 5, 6, 7}));
  std::remove(path.c_str());
}

TEST(DurableStorage, TornTailIsDiscarded) {
  const std::string path = TempPath("torn");
  {
    auto storage = DurableStorage::Create(path);
    storage->Append(Entry::Command(1, 8));
    storage->Append(Entry::Command(2, 8));
    storage->Sync();
  }
  // Chop a few bytes off the end: the last record becomes torn.
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(0, ftruncate(fileno(f), size - 3));
    std::fclose(f);
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->log_len(), 1u);
  EXPECT_EQ(recovered->At(0).cmd_id, 1u);
  // The journal remains usable: new appends land after the valid prefix.
  recovered->Append(Entry::Command(3, 8));
  recovered->Sync();
  auto again = DurableStorage::Recover(path);
  ASSERT_NE(again, nullptr);
  ASSERT_EQ(again->log_len(), 2u);
  EXPECT_EQ(again->At(1).cmd_id, 3u);
  std::remove(path.c_str());
}

TEST(DurableStorage, CorruptMiddleByteTruncatesFromThere) {
  const std::string path = TempPath("corrupt");
  {
    auto storage = DurableStorage::Create(path);
    for (uint64_t i = 1; i <= 5; ++i) {
      storage->Append(Entry::Command(i, 8));
    }
  }
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    const uint8_t garbage = 0xff;
    std::fwrite(&garbage, 1, 1, f);
    std::fclose(f);
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  // Some prefix survives; nothing bogus appears.
  EXPECT_LT(recovered->log_len(), 5u);
  for (LogIndex i = 0; i < recovered->log_len(); ++i) {
    EXPECT_EQ(recovered->At(i).cmd_id, i + 1);
  }
  std::remove(path.c_str());
}

// Regression (the compaction/recovery bug this PR fixes): after a Trim the
// journal's physical suffix is shorter than the decided index, so recovery
// must bound decided against the logical length compacted + suffix — the old
// suffix-only bound aborted every post-trim recovery.
TEST(DurableStorage, TrimSurvivesCrashAndRecovery) {
  const std::string path = TempPath("trim");
  {
    auto storage = DurableStorage::Create(path);
    storage->set_promised_round(Ballot{2, 0, 3});
    storage->set_accepted_round(Ballot{2, 0, 3});
    for (uint64_t i = 1; i <= 8; ++i) {
      storage->Append(Entry::Command(i, 8));
    }
    storage->set_decided_idx(6);
    storage->Trim(5);  // decided (6) > physical suffix length (3)
    storage->Sync();
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->compacted_idx(), 5u);
  EXPECT_EQ(recovered->log_len(), 8u);
  EXPECT_EQ(recovered->decided_idx(), 6u);
  EXPECT_EQ(recovered->At(5).cmd_id, 6u);
  EXPECT_EQ(recovered->At(7).cmd_id, 8u);
  // The journal stays usable after a post-trim recovery.
  recovered->Append(Entry::Command(9, 8));
  recovered->Trim(6);
  recovered->Sync();
  auto again = DurableStorage::Recover(path);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->compacted_idx(), 6u);
  EXPECT_EQ(again->log_len(), 9u);
  EXPECT_EQ(again->At(8).cmd_id, 9u);
  std::remove(path.c_str());
}

// ResetToSnapshot journals round + boundary + suffix as ONE record: recovery
// replays the install atomically (a crash can never observe the new log
// without the round it was shipped under).
TEST(DurableStorage, SnapshotInstallSurvivesCrashAndRecovery) {
  const std::string path = TempPath("snap");
  const Ballot shipped{7, 0, 2};
  {
    auto storage = DurableStorage::Create(path);
    storage->Append(Entry::Command(1, 8));
    storage->set_decided_idx(1);
    storage->ResetToSnapshot(shipped, 20,
                             {Entry::Command(21, 8), Entry::Command(22, 8)});
    storage->set_decided_idx(22);
    storage->Sync();
  }
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->accepted_round(), shipped);
  EXPECT_EQ(recovered->compacted_idx(), 20u);
  EXPECT_EQ(recovered->decided_idx(), 22u);
  ASSERT_EQ(recovered->log_len(), 22u);
  EXPECT_EQ(recovered->At(20).cmd_id, 21u);
  EXPECT_EQ(recovered->At(21).cmd_id, 22u);
  std::remove(path.c_str());
}

TEST(DurableStorage, SequencePaxosSurvivesCrashViaWal) {
  // End-to-end: a 3-server cluster where server 3 journals to disk; crash it
  // (drop all volatile state), recover from the WAL, and catch up.
  const std::string path = TempPath("e2e");
  omni::Storage mem1, mem2;
  auto wal3 = DurableStorage::Create(path);

  auto make = [](NodeId id, omni::Storage* storage, bool recovered = false) {
    omni::OmniConfig cfg;
    cfg.pid = id;
    for (NodeId p = 1; p <= 3; ++p) {
      if (p != id) {
        cfg.peers.push_back(p);
      }
    }
    cfg.ble_priority = id == 1 ? 1 : 0;
    return std::make_unique<omni::OmniPaxos>(cfg, storage, recovered);
  };
  std::vector<std::unique_ptr<omni::OmniPaxos>> nodes;
  nodes.push_back(nullptr);
  nodes.push_back(make(1, &mem1));
  nodes.push_back(make(2, &mem2));
  nodes.push_back(make(3, wal3.get()));

  auto settle = [&]() {
    for (int iter = 0; iter < 20; ++iter) {
      bool any = false;
      for (NodeId id = 1; id <= 3; ++id) {
        if (!nodes[static_cast<size_t>(id)]) {
          continue;
        }
        for (omni::OmniOut& out : nodes[static_cast<size_t>(id)]->TakeOutgoing()) {
          if (nodes[static_cast<size_t>(out.to)]) {
            nodes[static_cast<size_t>(out.to)]->Handle(id, std::move(out.body));
            any = true;
          }
        }
      }
      if (!any) {
        break;
      }
    }
  };
  auto tick = [&]() {
    for (NodeId id = 1; id <= 3; ++id) {
      if (nodes[static_cast<size_t>(id)]) {
        nodes[static_cast<size_t>(id)]->TickElection();
      }
    }
    settle();
  };

  tick();
  tick();
  ASSERT_TRUE(nodes[1]->IsLeader());
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    nodes[1]->Append(Entry::Command(cmd, 8));
    settle();
  }
  EXPECT_EQ(wal3->decided_idx(), 5u);

  // Crash server 3: volatile protocol state gone, WAL handle closed.
  nodes[3] = nullptr;
  wal3.reset();
  for (uint64_t cmd = 6; cmd <= 8; ++cmd) {
    nodes[1]->Append(Entry::Command(cmd, 8));
    settle();
  }

  // Recover from disk and rejoin.
  auto recovered = DurableStorage::Recover(path);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->decided_idx(), 5u);
  nodes[3] = make(3, recovered.get(), /*recovered=*/true);
  settle();  // PrepareReq → Prepare → re-sync
  tick();
  EXPECT_EQ(recovered->decided_idx(), 8u);
  for (LogIndex i = 0; i < 8; ++i) {
    EXPECT_EQ(recovered->At(i).cmd_id, i + 1);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opx
