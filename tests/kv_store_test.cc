// Unit tests for the KV state machine used by examples and integration tests.
#include <gtest/gtest.h>

#include "src/kvstore/kv_store.h"

namespace opx {
namespace {

using kv::Command;
using kv::CommandLog;
using kv::KvStore;
using kv::OpType;

Command Put(const std::string& key, int64_t value) {
  Command c;
  c.type = OpType::kPut;
  c.key = key;
  c.value = value;
  return c;
}

TEST(KvStore, PutAndGet) {
  KvStore store;
  EXPECT_TRUE(store.Apply(Put("a", 1)));
  EXPECT_EQ(store.Get("a"), 1);
  EXPECT_EQ(store.Get("missing"), std::nullopt);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, PutOverwrites) {
  KvStore store;
  store.Apply(Put("a", 1));
  store.Apply(Put("a", 2));
  EXPECT_EQ(store.Get("a"), 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.version(), 2u);
}

TEST(KvStore, DeleteRemoves) {
  KvStore store;
  store.Apply(Put("a", 1));
  Command del;
  del.type = OpType::kDelete;
  del.key = "a";
  EXPECT_TRUE(store.Apply(del));
  EXPECT_EQ(store.Get("a"), std::nullopt);
  EXPECT_FALSE(store.Apply(del));  // second delete is a no-op
}

TEST(KvStore, AddAccumulates) {
  KvStore store;
  Command add;
  add.type = OpType::kAdd;
  add.key = "ctr";
  add.value = 5;
  store.Apply(add);
  store.Apply(add);
  add.value = -3;
  store.Apply(add);
  EXPECT_EQ(store.Get("ctr"), 7);
}

TEST(KvStore, CompareSwapSucceedsOnMatch) {
  KvStore store;
  store.Apply(Put("a", 10));
  Command cas;
  cas.type = OpType::kCompareSwap;
  cas.key = "a";
  cas.expected = 10;
  cas.value = 20;
  EXPECT_TRUE(store.Apply(cas));
  EXPECT_EQ(store.Get("a"), 20);
}

TEST(KvStore, CompareSwapFailsOnMismatch) {
  KvStore store;
  store.Apply(Put("a", 10));
  Command cas;
  cas.type = OpType::kCompareSwap;
  cas.key = "a";
  cas.expected = 99;
  cas.value = 20;
  EXPECT_FALSE(store.Apply(cas));
  EXPECT_EQ(store.Get("a"), 10);
}

TEST(KvStore, CompareSwapTreatsMissingAsZero) {
  KvStore store;
  Command cas;
  cas.type = OpType::kCompareSwap;
  cas.key = "new";
  cas.expected = 0;
  cas.value = 7;
  EXPECT_TRUE(store.Apply(cas));
  EXPECT_EQ(store.Get("new"), 7);
}

TEST(KvStore, DigestEqualForSameState) {
  KvStore a, b;
  // Different application orders of commuting ops converge to the same state
  // but different version counters — apply identical sequences instead.
  for (int i = 0; i < 10; ++i) {
    a.Apply(Put("k" + std::to_string(i), i));
    b.Apply(Put("k" + std::to_string(i), i));
  }
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(KvStore, DigestDiffersForDifferentState) {
  KvStore a, b;
  a.Apply(Put("k", 1));
  b.Apply(Put("k", 2));
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(KvStore, SumAllTotalsValues) {
  KvStore store;
  store.Apply(Put("a", 10));
  store.Apply(Put("b", -4));
  EXPECT_EQ(store.SumAll(), 6);
}

TEST(KvStore, SnapshotRoundTripsState) {
  KvStore store;
  for (int i = 0; i < 10; ++i) {
    store.Apply(Put("k" + std::to_string(i), i * 7));
  }
  Command del;
  del.type = OpType::kDelete;
  del.key = "k3";
  store.Apply(del);

  KvStore restored;
  restored.Apply(Put("stale", 99));  // must be wiped by the install
  ASSERT_TRUE(restored.InstallSnapshot(store.Serialize()));
  EXPECT_EQ(restored.Digest(), store.Digest());
  EXPECT_EQ(restored.Get("k5"), 35);
  EXPECT_EQ(restored.Get("k3"), std::nullopt);
  EXPECT_EQ(restored.Get("stale"), std::nullopt);
  EXPECT_EQ(restored.version(), store.version());
}

TEST(KvStore, SnapshotOfEmptyStore) {
  KvStore empty;
  KvStore restored;
  restored.Apply(Put("x", 1));
  ASSERT_TRUE(restored.InstallSnapshot(empty.Serialize()));
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.Digest(), empty.Digest());
}

TEST(KvStore, InstallSnapshotRejectsMalformedBuffers) {
  KvStore store;
  store.Apply(Put("keep", 42));
  const uint64_t digest = store.Digest();

  // Truncations at every boundary, plus trailing garbage and a key length
  // pointing past the end: all rejected, state untouched.
  std::vector<uint8_t> good = KvStore().Serialize();
  EXPECT_FALSE(store.InstallSnapshot(std::vector<uint8_t>{}));
  EXPECT_FALSE(store.InstallSnapshot(
      std::vector<uint8_t>(good.begin(), good.begin() + 5)));

  KvStore donor;
  donor.Apply(Put("abc", 7));
  std::vector<uint8_t> bytes = donor.Serialize();
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(store.InstallSnapshot(truncated));
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(store.InstallSnapshot(trailing));
  std::vector<uint8_t> bad_klen = bytes;
  bad_klen[12] = 0xff;  // key length now reaches far past the buffer
  EXPECT_FALSE(store.InstallSnapshot(bad_klen));

  EXPECT_EQ(store.Digest(), digest);
  EXPECT_EQ(store.Get("keep"), 42);
}

TEST(CommandLog, RegistersAndLooksUp) {
  CommandLog log;
  const uint64_t id1 = log.Register(Put("x", 1));
  const uint64_t id2 = log.Register(Put("y", 2));
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(log.Lookup(id1).key, "x");
  EXPECT_EQ(log.Lookup(id2).key, "y");
  EXPECT_EQ(log.size(), 2u);
}

TEST(CommandLog, LookupOutOfRangeDies) {
  CommandLog log;
  log.Register(Put("x", 1));
  EXPECT_DEATH(log.Lookup(0), "CHECK failed");
  EXPECT_DEATH(log.Lookup(2), "CHECK failed");
}

}  // namespace
}  // namespace opx
