// Chaos regression corpus + fuzzer pipeline tests (DESIGN.md §10).
//
// Every artifact committed under tests/chaos_corpus/ replays bit-for-bit:
// same oracle verdict and same event-hash fingerprint as when it was dumped.
// A drift in either means a behavioral change in the protocol, the harness,
// or the scheduler — deliberate changes must regenerate the corpus with
// tools/chaos_fuzz --dump and call it out in review.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/rsm/chaos.h"
#include "src/sim/chaos_plan.h"

namespace opx {
namespace {

using rsm::ChaosArtifact;
using rsm::ChaosConfig;
using rsm::ChaosOracle;
using rsm::ChaosOutcome;
using rsm::OmniNode;

std::string CorpusDir() { return std::string(OPX_SOURCE_DIR) + "/tests/chaos_corpus"; }

ChaosArtifact LoadArtifact(const std::string& name) {
  const std::string path = CorpusDir() + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus artifact " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<ChaosArtifact> art = ChaosArtifact::Parse(buf.str());
  EXPECT_TRUE(art.has_value()) << "malformed corpus artifact " << path;
  return *art;
}

void ReplayBitForBit(const std::string& name) {
  const ChaosArtifact art = LoadArtifact(name);
  const rsm::ChaosReplayResult r = rsm::ReplayChaosArtifact(art);
  EXPECT_EQ(r.outcome.violated, art.violated) << r.outcome.detail;
  EXPECT_TRUE(r.matches) << "fingerprint drift on " << name << ": recorded "
                         << art.fingerprint << ", replayed " << r.outcome.fingerprint;
}

// --- Corpus replay, one test per artifact so failures name the schedule. ---

TEST(ChaosCorpus, OmniCrashRecoverSchedule) {
  // Contains kCrash faults: a server restarts from durable storage with
  // recovered=true and re-syncs via <PrepareReq> (§4.1.3) mid-schedule.
  const ChaosArtifact art = LoadArtifact("chaos-omni-seed104.chaos");
  EXPECT_TRUE(art.config.plan.HasCrash());
  ReplayBitForBit("chaos-omni-seed104.chaos");
}

TEST(ChaosCorpus, OmniMutantStuckLink) {
  // Shrunk output of the --mutant=stuck-link sanity check: a minimal set of
  // never-healing cuts that denies every node a quorum after the horizon.
  // Must still be caught by the client-progress oracle, deterministically.
  const ChaosArtifact art = LoadArtifact("chaos-omni-mutant-stuck-link.chaos");
  EXPECT_NE(art.violated, ChaosOracle::kNone);
  ReplayBitForBit("chaos-omni-mutant-stuck-link.chaos");
}

TEST(ChaosCorpus, OmniTrimCrashRecoverSchedule) {
  // Crashes land after explicit trim faults with auto-trim (watermark 8) and
  // lease reads active: every restart replays RestoreForRecovery over a
  // *trimmed* log (decided beyond the physical suffix) — the recovery-bound
  // regression this PR fixes — and re-syncs via snapshot AcceptSync.
  const ChaosArtifact art = LoadArtifact("chaos-omni-trim-crash-seed4247.chaos");
  EXPECT_TRUE(art.config.plan.HasCrash());
  EXPECT_GT(art.config.trim_watermark, 0u);
  EXPECT_GT(art.config.read_fraction, 0.0);
  ReplayBitForBit("chaos-omni-trim-crash-seed4247.chaos");
}

TEST(ChaosCorpus, RaftSchedule) { ReplayBitForBit("chaos-raft-seed300.chaos"); }

TEST(ChaosCorpus, MultiPaxosSchedule) { ReplayBitForBit("chaos-multipaxos-seed800.chaos"); }

TEST(ChaosCorpus, VrSchedule) { ReplayBitForBit("chaos-vr-seed500.chaos"); }

// --- Plan layer --------------------------------------------------------------

TEST(ChaosPlan, SerializeParseRoundTrip) {
  sim::ChaosGenParams gen;
  const sim::ChaosPlan plan = sim::GenerateChaosPlan(gen, 42);
  const std::optional<sim::ChaosPlan> back = sim::ChaosPlan::Parse(plan.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Serialize(), plan.Serialize());
  EXPECT_EQ(back->faults.size(), plan.faults.size());
  EXPECT_EQ(back->horizon, plan.horizon);
}

TEST(ChaosPlan, GeneratorIsDeterministic) {
  sim::ChaosGenParams gen;
  EXPECT_EQ(sim::GenerateChaosPlan(gen, 9).Serialize(),
            sim::GenerateChaosPlan(gen, 9).Serialize());
  EXPECT_NE(sim::GenerateChaosPlan(gen, 9).Serialize(),
            sim::GenerateChaosPlan(gen, 10).Serialize());
}

TEST(ChaosPlan, ParseRejectsMalformedInput) {
  EXPECT_FALSE(sim::ChaosPlan::Parse("not a plan").has_value());
  EXPECT_FALSE(sim::ChaosPlan::Parse("opx-chaos-plan v1\nseed 1\n").has_value());
  EXPECT_FALSE(
      sim::ChaosPlan::Parse("opx-chaos-plan v1\nfault bogus 0 0 0 0 0 0\nend\n")
          .has_value());
}

// --- Shrink pipeline: inject a violation, catch it, shrink it, replay it. --

TEST(ChaosShrink, MutantIsCaughtShrunkAndReplays) {
  sim::ChaosGenParams gen;
  gen.allow_crash = false;  // keep the pipeline test fast
  sim::ChaosPlan plan = sim::GenerateChaosPlan(gen, 3);
  // Inject the bug: every server pair cut from the horizon onwards, far past
  // the liveness window, so no quorum can form after the "last heal".
  for (NodeId a = 1; a <= plan.num_servers; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b <= plan.num_servers; ++b) {
      sim::ChaosFault f;
      f.kind = sim::ChaosFault::Kind::kLinkCut;
      f.at = plan.horizon;
      f.duration = Minutes(30);
      f.a = a;
      f.b = b;
      plan.faults.push_back(f);
    }
  }

  ChaosConfig cfg;
  cfg.plan = plan;
  const ChaosOutcome outcome = rsm::RunChaos<OmniNode>(cfg);
  ASSERT_NE(outcome.violated, ChaosOracle::kNone);

  const rsm::ChaosShrinkResult shrunk = rsm::ShrinkChaos<OmniNode>(cfg, outcome.violated);
  EXPECT_LT(shrunk.plan.faults.size(), plan.faults.size());
  EXPECT_EQ(shrunk.outcome.violated, outcome.violated);

  // The shrunk schedule round-trips through the artifact format and replays
  // with the identical verdict and fingerprint.
  ChaosArtifact art;
  art.protocol = "omni";
  art.config = cfg;
  art.config.plan = shrunk.plan;
  art.violated = shrunk.outcome.violated;
  art.fingerprint = shrunk.outcome.fingerprint;
  const std::optional<ChaosArtifact> back = ChaosArtifact::Parse(art.Serialize());
  ASSERT_TRUE(back.has_value());
  const rsm::ChaosReplayResult r = rsm::ReplayChaosArtifact(*back);
  EXPECT_EQ(r.outcome.violated, shrunk.outcome.violated);
  EXPECT_TRUE(r.matches);
}

}  // namespace
}  // namespace opx
