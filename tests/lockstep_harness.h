// Generic lockstep in-memory cluster for protocol unit tests.
//
// Works with any pull-based protocol node exposing Tick() / Handle(from, Msg)
// / TakeOutgoing() -> vector<{to, body}>. Reconnected(peer) is invoked on
// link heals when the node type provides it (Sequence-Paxos-based protocols).
#ifndef TESTS_LOCKSTEP_HARNESS_H_
#define TESTS_LOCKSTEP_HARNESS_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/audit/auditor.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/types.h"

namespace opx::testing {

template <typename Node>
class LockstepCluster {
 public:
  using OutVector = decltype(std::declval<Node&>().TakeOutgoing());
  using Out = typename OutVector::value_type;
  using Message = decltype(Out::body);
  using Factory = std::function<std::unique_ptr<Node>(NodeId id, std::vector<NodeId> peers)>;

  LockstepCluster(int n, Factory factory) : n_(n), factory_(std::move(factory)) {
    nodes_.resize(static_cast<size_t>(n_) + 1);
    for (NodeId id = 1; id <= n_; ++id) {
      nodes_[static_cast<size_t>(id)] = factory_(id, PeersOf(id));
    }
  }

  Node& node(NodeId id) { return *nodes_[Checked(id)]; }
  int size() const { return n_; }

  // Stamps the lockstep tick count as the sink's virtual time before every
  // dispatch, so trace-oracle tests can order events by tick. The sink itself
  // is typically already wired into each node by the test's factory; this just
  // keeps the clock honest.
  void AttachObs(obs::ObsSink* sink) {
    obs_ = sink;
    OPX_TRACE_NOW(obs_, ticks_);
  }

  void SetLink(NodeId a, NodeId b, bool up) {
    const std::pair<NodeId, NodeId> key = std::minmax(a, b);
    if (up) {
      const bool was_down = down_links_.erase(key) > 0;
      if (was_down && !IsCrashed(a) && !IsCrashed(b)) {
        NotifyReconnect(a, b);
        NotifyReconnect(b, a);
        Collect();
        AuditNow("reconnect");
      }
    } else {
      down_links_.insert(key);
    }
  }

  bool LinkUp(NodeId a, NodeId b) const {
    return down_links_.count(std::minmax(a, b)) == 0;
  }

  void Isolate(NodeId id) {
    for (NodeId other = 1; other <= n_; ++other) {
      if (other != id) {
        SetLink(id, other, false);
      }
    }
  }

  void HealAll() {
    for (NodeId a = 1; a <= n_; ++a) {
      for (NodeId b = a + 1; b <= n_; ++b) {
        SetLink(a, b, true);
      }
    }
  }

  void Crash(NodeId id) { crashed_.insert(id); }
  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  void Tick() {
    ++ticks_;
    OPX_TRACE_NOW(obs_, ticks_);
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        node(id).Tick();
      }
    }
    Collect();
    AuditNow("tick");
    DeliverAll();
  }

  void TickRounds(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      Tick();
    }
  }

  void DeliverAll() {
    size_t guard = 0;
    while (!queue_.empty()) {
      OPX_CHECK_LT(++guard, 1'000'000u) << "message storm";
      Wire w = std::move(queue_.front());
      queue_.pop_front();
      if (IsCrashed(w.to) || IsCrashed(w.from) || !LinkUp(w.from, w.to)) {
        continue;
      }
      node(w.to).Handle(w.from, std::move(w.body));
      Collect();
      AuditNow("deliver");
    }
  }

  const audit::SafetyAuditor& auditor() const { return auditor_; }

  void Collect() {
    for (NodeId id = 1; id <= n_; ++id) {
      if (IsCrashed(id)) {
        continue;
      }
      for (Out& out : node(id).TakeOutgoing()) {
        if (out.to >= 1 && out.to <= n_ && LinkUp(id, out.to) && !IsCrashed(out.to)) {
          queue_.push_back(Wire{id, out.to, std::move(out.body)});
        }
      }
    }
  }

 private:
  struct Wire {
    NodeId from;
    NodeId to;
    Message body;
  };

  std::vector<NodeId> PeersOf(NodeId id) const {
    std::vector<NodeId> peers;
    for (NodeId other = 1; other <= n_; ++other) {
      if (other != id) {
        peers.push_back(other);
      }
    }
    return peers;
  }

  void NotifyReconnect(NodeId node_id, NodeId peer) {
    if constexpr (requires(Node& n, NodeId p) { n.Reconnected(p); }) {
      node(node_id).Reconnected(peer);
    }
  }

  // Runs the cross-replica safety auditor over all live nodes. Compiles away
  // for node types that don't expose an AuditView.
  void AuditNow(const char* label) {
    if constexpr (requires(const Node& n) { n.Audit(); }) {
      views_.clear();
      for (NodeId id = 1; id <= n_; ++id) {
        if (!IsCrashed(id)) {
          views_.push_back(node(id).Audit());
        }
      }
      audit::AuditContext ctx;
      ctx.now = ticks_;  // lockstep "time" is the tick count
      ctx.event_id = ++audit_events_;
      ctx.label = label;
      auditor_.Observe(views_, ctx);
    }
  }

  size_t Checked(NodeId id) const {
    OPX_CHECK(id >= 1 && id <= n_);
    return static_cast<size_t>(id);
  }

  int n_;
  Factory factory_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::deque<Wire> queue_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> crashed_;

  audit::SafetyAuditor auditor_;
  std::vector<audit::AuditView> views_;
  uint64_t audit_events_ = 0;
  int64_t ticks_ = 0;
  obs::ObsSink* obs_ = nullptr;
};

}  // namespace opx::testing

#endif  // TESTS_LOCKSTEP_HARNESS_H_
