// Property-based tests (parameterized seed sweeps): a randomized adversary
// injects partial partitions, crashes, and recoveries while clients propose;
// afterwards the cluster heals and the Sequence Consensus properties SC1–SC3
// (and their Raft/Multi-Paxos analogues) must hold on every server.
#include <gtest/gtest.h>

#include <set>

#include "src/multipaxos/multipaxos.h"
#include "src/raft/raft.h"
#include "src/util/quorum.h"
#include "src/util/rng.h"
#include "tests/lockstep_harness.h"
#include "tests/omni_test_harness.h"
#include "tests/raft_test_harness.h"

namespace opx {
namespace {

constexpr int kServers = 5;
constexpr int kRounds = 120;

// ---------------------------------------------------------------------------
// Omni-Paxos: SC1–SC3 under a randomized adversary.
// ---------------------------------------------------------------------------

class OmniChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OmniChaosTest, SequenceConsensusHolds) {
  Rng rng(GetParam());
  testing::OmniCluster cluster(kServers);
  cluster.TickRounds(3);

  std::set<uint64_t> proposed;
  uint64_t next_cmd = 1;
  int crashed_count = 0;

  for (int round = 0; round < kRounds; ++round) {
    // Random adversary action.
    switch (rng.NextBounded(10)) {
      case 0: {  // cut a random link
        const NodeId a = static_cast<NodeId>(rng.NextInRange(1, kServers));
        const NodeId b = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (a != b) {
          cluster.SetLink(a, b, false);
        }
        break;
      }
      case 1: {  // heal a random link
        const NodeId a = static_cast<NodeId>(rng.NextInRange(1, kServers));
        const NodeId b = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (a != b) {
          cluster.SetLink(a, b, true);
        }
        break;
      }
      case 2: {  // crash one server (at most a minority at a time)
        const NodeId victim = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (!cluster.IsCrashed(victim) && crashed_count < static_cast<int>(util::MaxMinorityOf(kServers))) {
          cluster.Crash(victim);
          ++crashed_count;
        }
        break;
      }
      case 3: {  // restart a crashed server
        for (NodeId id = 1; id <= kServers; ++id) {
          if (cluster.IsCrashed(id)) {
            cluster.Restart(id);
            --crashed_count;
            break;
          }
        }
        break;
      }
      default:
        break;
    }
    // Propose a few commands at random live servers (dropped proposals are
    // fine; SC1 only requires decided ⊆ proposed).
    for (int p = 0; p < 3; ++p) {
      const NodeId at = static_cast<NodeId>(rng.NextInRange(1, kServers));
      if (!cluster.IsCrashed(at)) {
        const uint64_t cmd = next_cmd++;
        proposed.insert(cmd);
        cluster.node(at).Append(omni::Entry::Command(cmd, 8));
      }
    }
    cluster.Tick();

    // SC2 continuously: decided prefixes agree across all live servers.
    for (NodeId a = 1; a <= kServers; ++a) {
      for (NodeId b = a + 1; b <= kServers; ++b) {
        if (cluster.IsCrashed(a) || cluster.IsCrashed(b)) {
          continue;
        }
        const auto& sa = cluster.storage(a);
        const auto& sb = cluster.storage(b);
        const LogIndex common = std::min(sa.decided_idx(), sb.decided_idx());
        for (LogIndex i = 0; i < common; ++i) {
          ASSERT_EQ(sa.At(i), sb.At(i))
              << "SC2 violated at idx " << i << " (servers " << a << "," << b
              << ", seed " << GetParam() << ", round " << round << ")";
        }
      }
    }
  }

  // Heal and converge.
  for (NodeId id = 1; id <= kServers; ++id) {
    if (cluster.IsCrashed(id)) {
      cluster.Restart(id);
    }
  }
  cluster.HealAll();
  cluster.TickRounds(8);

  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode) << "seed " << GetParam();
  // Progress after chaos: a fresh command decides everywhere.
  const uint64_t probe = next_cmd++;
  proposed.insert(probe);
  ASSERT_TRUE(cluster.Append(leader, probe));
  cluster.TickRounds(2);

  const LogIndex decided = cluster.node(leader).decided_idx();
  ASSERT_GT(decided, 0u);
  for (NodeId id = 1; id <= kServers; ++id) {
    // All servers fully converge after healing.
    ASSERT_EQ(cluster.node(id).decided_idx(), decided) << "server " << id;
    for (LogIndex i = 0; i < decided; ++i) {
      const omni::Entry& e = cluster.storage(id).At(i);
      // SC1: only proposed commands are decided.
      ASSERT_TRUE(proposed.count(e.cmd_id) > 0)
          << "SC1 violated: unknown cmd " << e.cmd_id << " (seed " << GetParam() << ")";
      // And identical logs (SC2 at full length).
      ASSERT_EQ(e, cluster.storage(leader).At(i));
    }
  }
  // The probe decided exactly once at the tail region; count duplicates of it.
  int probe_count = 0;
  for (LogIndex i = 0; i < decided; ++i) {
    probe_count += cluster.storage(leader).At(i).cmd_id == probe ? 1 : 0;
  }
  EXPECT_EQ(probe_count, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmniChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// ---------------------------------------------------------------------------
// Omni-Paxos: decided entries are never lost (SC3 across leader changes).
// ---------------------------------------------------------------------------

class OmniDurabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OmniDurabilityTest, DecidedEntriesSurviveLeaderChurn) {
  Rng rng(GetParam());
  testing::OmniCluster cluster(kServers);
  cluster.TickRounds(3);

  std::vector<uint64_t> decided_snapshot;
  uint64_t next_cmd = 1;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const NodeId leader = cluster.CurrentLeader();
    ASSERT_NE(leader, kNoNode);
    for (int i = 0; i < 5; ++i) {
      cluster.Append(leader, next_cmd++);
    }
    // Snapshot the decided log at the leader.
    decided_snapshot.clear();
    for (LogIndex i = 0; i < cluster.node(leader).decided_idx(); ++i) {
      decided_snapshot.push_back(cluster.storage(leader).At(i).cmd_id);
    }
    // Depose the leader: crash or isolate, randomly.
    if (rng.NextBool(0.5)) {
      cluster.Crash(leader);
      cluster.TickRounds(4);
      cluster.Restart(leader);
    } else {
      cluster.Isolate(leader);
      cluster.TickRounds(4);
      cluster.HealAll();
    }
    cluster.TickRounds(4);
    // SC3: everything decided before is still there, in order.
    const NodeId new_leader = cluster.CurrentLeader();
    ASSERT_NE(new_leader, kNoNode);
    ASSERT_GE(cluster.node(new_leader).decided_idx(), decided_snapshot.size());
    for (size_t i = 0; i < decided_snapshot.size(); ++i) {
      ASSERT_EQ(cluster.storage(new_leader).At(i).cmd_id, decided_snapshot[i])
          << "decided entry lost after churn (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmniDurabilityTest, ::testing::Range<uint64_t>(100, 108));

// ---------------------------------------------------------------------------
// Raft: Log Matching + State Machine Safety under the same adversary.
// ---------------------------------------------------------------------------

class RaftChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaftChaosTest, CommittedLogsAgree) {
  Rng rng(GetParam());
  raft::RaftConfig base;
  base.seed = GetParam();
  testing::RaftCluster cluster(kServers, base);
  cluster.TickRounds(30);

  uint64_t next_cmd = 1;
  for (int round = 0; round < kRounds; ++round) {
    switch (rng.NextBounded(8)) {
      case 0: {
        const NodeId a = static_cast<NodeId>(rng.NextInRange(1, kServers));
        const NodeId b = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (a != b) {
          cluster.SetLink(a, b, false);
        }
        break;
      }
      case 1:
        cluster.HealAll();
        break;
      default:
        break;
    }
    const NodeId leader = cluster.CurrentLeader();
    if (leader != kNoNode) {
      cluster.node(leader).Append(raft::Entry::Command(next_cmd++, 8));
    }
    cluster.Tick();

    for (NodeId a = 1; a <= kServers; ++a) {
      for (NodeId b = a + 1; b <= kServers; ++b) {
        const auto& la = cluster.node(a).log();
        const auto& lb = cluster.node(b).log();
        const LogIndex common =
            std::min(cluster.node(a).commit_idx(), cluster.node(b).commit_idx());
        for (LogIndex i = 0; i < common; ++i) {
          ASSERT_EQ(la[i], lb[i]) << "committed divergence at " << i << " (seed "
                                  << GetParam() << ", round " << round << ")";
        }
      }
    }
  }
  cluster.HealAll();
  cluster.TickRounds(40);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  cluster.Append(leader, next_cmd++);
  cluster.TickRounds(3);
  EXPECT_GT(cluster.node(leader).commit_idx(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaosTest, ::testing::Range<uint64_t>(300, 310));

// ---------------------------------------------------------------------------
// Multi-Paxos: chosen-slot agreement under link chaos.
// ---------------------------------------------------------------------------

class MpxChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MpxChaosTest, ChosenSlotsAgree) {
  Rng rng(GetParam());
  using Cluster = testing::LockstepCluster<mpx::MultiPaxos>;
  Cluster cluster(kServers, [&](NodeId id, std::vector<NodeId> peers) {
    mpx::MpxConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.seed = GetParam() * 100 + static_cast<uint64_t>(id);
    return std::make_unique<mpx::MultiPaxos>(cfg);
  });
  cluster.TickRounds(30);

  uint64_t next_cmd = 1;
  for (int round = 0; round < kRounds; ++round) {
    switch (rng.NextBounded(8)) {
      case 0: {
        const NodeId a = static_cast<NodeId>(rng.NextInRange(1, kServers));
        const NodeId b = static_cast<NodeId>(rng.NextInRange(1, kServers));
        if (a != b) {
          cluster.SetLink(a, b, false);
        }
        break;
      }
      case 1:
        cluster.HealAll();
        break;
      default:
        break;
    }
    for (NodeId id = 1; id <= kServers; ++id) {
      if (cluster.node(id).IsLeader()) {
        cluster.node(id).Append(mpx::Entry::Command(next_cmd++, 8));
        break;
      }
    }
    cluster.Tick();

    for (NodeId a = 1; a <= kServers; ++a) {
      for (NodeId b = a + 1; b <= kServers; ++b) {
        const uint64_t common =
            std::min(cluster.node(a).decided_idx(), cluster.node(b).decided_idx());
        for (uint64_t i = 0; i < common; ++i) {
          ASSERT_EQ(cluster.node(a).log()[i], cluster.node(b).log()[i])
              << "chosen divergence at slot " << i << " (seed " << GetParam() << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpxChaosTest, ::testing::Range<uint64_t>(400, 408));

}  // namespace
}  // namespace opx
