// Tests for log compaction (Trim) and snapshot-based synchronization: storage
// semantics, leader-side snapshot AcceptSync, follower-side snapshot Promise,
// and end-to-end convergence with trims mixed into normal operation.
#include <gtest/gtest.h>

#include "src/omnipaxos/omni_paxos.h"
#include "tests/omni_test_harness.h"

namespace opx {
namespace {

using omni::Entry;
using omni::Storage;
using testing::OmniCluster;

TEST(Trim, StorageDropsPrefixAndKeepsIndexing) {
  Storage storage;
  for (uint64_t i = 1; i <= 10; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(7);
  storage.Trim(5);
  EXPECT_EQ(storage.compacted_idx(), 5u);
  EXPECT_EQ(storage.log_len(), 10u);  // logical length unchanged
  EXPECT_EQ(storage.At(5).cmd_id, 6u);
  EXPECT_EQ(storage.At(9).cmd_id, 10u);
  EXPECT_DEATH(storage.At(4), "compacted");
}

TEST(Trim, OnlyDecidedPrefixMayBeTrimmed) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.Append(Entry::Command(2, 8));
  storage.set_decided_idx(1);
  EXPECT_DEATH(storage.Trim(2), "decided");
  storage.Trim(1);
  EXPECT_EQ(storage.compacted_idx(), 1u);
}

TEST(Trim, TrimIsIdempotentAndMonotonic) {
  Storage storage;
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(5);
  storage.Trim(3);
  storage.Trim(2);  // below the boundary: no-op
  EXPECT_EQ(storage.compacted_idx(), 3u);
  storage.Trim(5);
  EXPECT_EQ(storage.compacted_idx(), 5u);
  EXPECT_TRUE(storage.log().empty());
  EXPECT_EQ(storage.log_len(), 5u);
}

TEST(Trim, SuffixAndTruncateRespectCompaction) {
  Storage storage;
  for (uint64_t i = 1; i <= 6; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(4);
  storage.Trim(4);
  const auto suffix = storage.Suffix(5);
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0].cmd_id, 6u);
  storage.TruncateAndAppend(5, {Entry::Command(100, 8)});
  EXPECT_EQ(storage.At(5).cmd_id, 100u);
  EXPECT_EQ(storage.log_len(), 6u);
}

TEST(Trim, ResetToSnapshotInstallsBoundary) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.set_decided_idx(1);
  storage.ResetToSnapshot(omni::Ballot{1, 0, 1}, 10,
                          {Entry::Command(11, 8), Entry::Command(12, 8)});
  EXPECT_EQ(storage.compacted_idx(), 10u);
  EXPECT_EQ(storage.decided_idx(), 10u);
  EXPECT_EQ(storage.log_len(), 12u);
  EXPECT_EQ(storage.At(10).cmd_id, 11u);
}

// --- Protocol-level snapshot synchronization. -------------------------------

TEST(TrimSync, TrimmedLeaderSnapshotsLaggingFollower) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  // Follower 3 misses entries 1..10.
  cluster.SetLink(1, 3, false);
  cluster.SetLink(2, 3, false);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    cluster.Append(1, cmd);
  }
  ASSERT_EQ(cluster.node(1).decided_idx(), 10u);
  // Everyone still connected trims away the replicated prefix.
  cluster.node(1).Trim(10);
  cluster.node(2).Trim(10);
  // Follower 3 reconnects: the leader cannot ship entries below its
  // compaction boundary, so it sends a snapshot AcceptSync.
  cluster.SetLink(1, 3, true);
  cluster.SetLink(2, 3, true);
  cluster.DeliverAll();
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.storage(3).compacted_idx(), 10u);
  EXPECT_EQ(cluster.node(3).decided_idx(), 10u);
  // Replication continues normally past the snapshot.
  cluster.Append(1, 11);
  EXPECT_EQ(cluster.node(3).decided_idx(), 11u);
  EXPECT_EQ(cluster.storage(3).At(10).cmd_id, 11u);
}

TEST(TrimSync, TrimmedFollowerPromisesWithSnapshot) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    cluster.Append(1, cmd);
  }
  // Followers trim; then the leader crashes and a trimmed follower must bring
  // the next leader up to date via a snapshot-bearing Promise.
  cluster.node(2).Trim(10);
  cluster.node(3).Trim(10);
  cluster.Crash(1);
  cluster.TickRounds(4);
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_EQ(cluster.node(new_leader).decided_idx(), 10u);
  cluster.Append(new_leader, 11);
  EXPECT_EQ(cluster.node(new_leader).decided_idx(), 11u);
  // The restarted old leader re-syncs (via snapshot, since peers trimmed).
  cluster.Restart(1);
  cluster.DeliverAll();
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.node(1).decided_idx(), 11u);
}

TEST(TrimSync, MixedTrimsDoNotBreakConvergence) {
  OmniCluster cluster(5);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  uint64_t next_cmd = 1;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) {
      cluster.Append(1, next_cmd++);
    }
    // Different servers trim to different boundaries.
    for (NodeId id = 1; id <= 5; ++id) {
      const LogIndex decided = cluster.node(id).decided_idx();
      if (decided > static_cast<LogIndex>(id)) {
        cluster.node(id).Trim(decided - static_cast<LogIndex>(id));
      }
    }
  }
  const LogIndex decided = cluster.node(1).decided_idx();
  EXPECT_EQ(decided, 50u);
  for (NodeId id = 2; id <= 5; ++id) {
    EXPECT_EQ(cluster.node(id).decided_idx(), decided) << "server " << id;
  }
  // Tail entries (above every compaction point) agree.
  for (LogIndex i = decided - 1; i >= decided - 1; --i) {
    for (NodeId id = 2; id <= 5; ++id) {
      EXPECT_EQ(cluster.storage(id).At(i), cluster.storage(1).At(i));
    }
    break;
  }
}

TEST(TrimSync, DurableTrimSurvivesThroughSnapshotResync) {
  // Trim + crash + recover: a recovering trimmed server rejoins via the
  // standard PrepareReq path and serves from its compaction boundary.
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  for (uint64_t cmd = 1; cmd <= 6; ++cmd) {
    cluster.Append(1, cmd);
  }
  cluster.node(3).Trim(6);
  cluster.Crash(3);
  cluster.Append(1, 7);
  cluster.Restart(3);
  cluster.DeliverAll();
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.node(3).decided_idx(), 7u);
  EXPECT_EQ(cluster.storage(3).At(6).cmd_id, 7u);
}

// --- Leader-driven auto-trim (trim_watermark > 0) ------------------------

TEST(AutoTrim, DisabledByDefault) {
  OmniCluster cluster(3);  // trim_watermark = 0
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  for (uint64_t cmd = 1; cmd <= 50; ++cmd) {
    cluster.Append(1, cmd);
  }
  cluster.TickRounds(3);
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(cluster.storage(id).compacted_idx(), 0u);
  }
}

TEST(AutoTrim, LeaderTrimsReplicatedPrefixOnTick) {
  OmniCluster cluster(3, /*batch_limit=*/0, /*obs=*/nullptr,
                      /*trim_watermark=*/4);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    cluster.Append(1, cmd);
  }
  ASSERT_EQ(cluster.node(1).decided_idx(), 10u);
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 0u);  // trims only on ticks
  cluster.Tick();
  // All peers accepted 10, so the leader trims the whole decided prefix; the
  // followers are below the 3x-watermark backstop and keep theirs.
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 10u);
  EXPECT_EQ(cluster.storage(1).log_len(), 10u);  // logical length unchanged
  EXPECT_EQ(cluster.storage(2).compacted_idx(), 0u);
  // Replication continues normally past the local compaction boundary.
  cluster.Append(1, 11);
  EXPECT_EQ(cluster.node(2).decided_idx(), 11u);
  EXPECT_EQ(cluster.storage(1).At(10).cmd_id, 11u);
  // Hysteresis: less than a watermark of new progress does not re-trim.
  cluster.Tick();
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 10u);
}

TEST(AutoTrim, StragglerFloorBoundsRetainedSuffixAndResyncsViaSnapshot) {
  OmniCluster cluster(3, /*batch_limit=*/0, /*obs=*/nullptr,
                      /*trim_watermark=*/4);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  // Node 3 goes dark with accepted index 0.
  cluster.SetLink(1, 3, false);
  cluster.SetLink(2, 3, false);
  for (uint64_t cmd = 1; cmd <= 20; ++cmd) {
    cluster.Append(1, cmd);
  }
  ASSERT_EQ(cluster.node(1).decided_idx(), 20u);
  cluster.Tick();
  // The straggler floor (decided - 3*wm = 8) keeps the leader from retaining
  // an unbounded suffix for node 3; follower 2 applies the 3*wm backstop.
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 8u);
  EXPECT_EQ(cluster.storage(2).compacted_idx(), 12u);
  EXPECT_EQ(cluster.storage(3).compacted_idx(), 0u);
  // Node 3 reconnects below the leader's boundary: snapshot resync. The
  // snapshot AcceptSync boundary is the leader's *decided* index, so the
  // straggler comes back fully compacted.
  cluster.SetLink(1, 3, true);
  cluster.SetLink(2, 3, true);
  cluster.DeliverAll();
  EXPECT_EQ(cluster.node(3).decided_idx(), 20u);
  EXPECT_EQ(cluster.storage(3).compacted_idx(), 20u);
  // With the straggler caught up the floor advances to the full prefix.
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 20u);
  EXPECT_EQ(cluster.storage(3).compacted_idx(), 20u);
  // Safety: everything still decided and addressable above the boundaries.
  cluster.Append(1, 21);
  EXPECT_EQ(cluster.node(3).decided_idx(), 21u);
  EXPECT_EQ(cluster.storage(3).At(20).cmd_id, 21u);
}

// --- Leader-lease local reads --------------------------------------------

TEST(LeaseRead, LeaderServesUntilIsolationExpiresLease) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  EXPECT_TRUE(cluster.node(1).CanServeLocalReads());
  EXPECT_FALSE(cluster.node(2).CanServeLocalReads());  // followers never serve
  EXPECT_FALSE(cluster.node(3).CanServeLocalReads());
  cluster.Isolate(1);
  // The lease covers lease_rounds (= 1) heartbeat rounds past the last
  // majority round; two silent ticks are guaranteed to exhaust it. The old
  // leader still *claims* leadership — it just must refuse local reads.
  cluster.TickRounds(2);
  EXPECT_TRUE(cluster.node(1).IsLeader());
  EXPECT_FALSE(cluster.node(1).CanServeLocalReads());
  // The connected majority elects a replacement that can serve.
  cluster.TickRounds(4);
  const NodeId replacement = cluster.CurrentLeader();
  ASSERT_NE(replacement, kNoNode);
  EXPECT_NE(replacement, 1);
  EXPECT_TRUE(cluster.node(replacement).CanServeLocalReads());
  EXPECT_FALSE(cluster.node(1).CanServeLocalReads());
  // After healing, exactly one node serves local reads.
  cluster.HealAll();
  cluster.TickRounds(3);
  int serving = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    if (cluster.node(id).CanServeLocalReads()) {
      ++serving;
    }
  }
  EXPECT_EQ(serving, 1);
}

}  // namespace
}  // namespace opx
