// Tests for the OmniPaxos composition layer (BLE → SequencePaxos wiring,
// reconfiguration proposal rules, trim pass-through) and for determinism of
// the whole simulation stack.
#include <gtest/gtest.h>

#include "src/omnipaxos/omni_paxos.h"
#include "src/rsm/experiments.h"
#include "tests/omni_test_harness.h"

namespace opx {
namespace {

using omni::Ballot;
using omni::Entry;
using omni::OmniConfig;
using omni::OmniPaxos;
using omni::Storage;
using testing::OmniCluster;

OmniConfig Config3(NodeId pid, uint32_t priority = 0) {
  OmniConfig cfg;
  cfg.pid = pid;
  for (NodeId p = 1; p <= 3; ++p) {
    if (p != pid) {
      cfg.peers.push_back(p);
    }
  }
  cfg.ble_priority = priority;
  return cfg;
}

TEST(OmniPaxosUnit, LeaderEventFlowsFromBleToPaxos) {
  Storage storage;
  OmniPaxos node(Config3(1, 1), &storage);
  // Drive BLE to elect ourselves: two ticks with majority replies.
  node.TickElection();
  (void)node.TakeOutgoing();
  node.Handle(2, omni::BleMessage(omni::HeartbeatReply{1, Ballot{0, 0, 2}, true}));
  node.TickElection();
  // SequencePaxos must now be preparing (Prepare messages to peers).
  int prepares = 0;
  for (const omni::OmniOut& out : node.TakeOutgoing()) {
    if (const auto* paxos = std::get_if<omni::PaxosMessage>(&out.body)) {
      prepares += std::holds_alternative<omni::Prepare>(*paxos) ? 1 : 0;
    }
  }
  EXPECT_EQ(prepares, 2);
}

TEST(OmniPaxosUnit, ReconfigurationRejectedBeforeAndAfterStop) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  omni::StopSign ss;
  ss.next_config = 1;
  ss.next_nodes = {1, 2, 4};
  EXPECT_TRUE(cluster.node(1).ProposeReconfiguration(ss));
  // Second proposal while one is in flight: rejected.
  EXPECT_FALSE(cluster.node(1).ProposeReconfiguration(ss));
  cluster.Collect();
  cluster.DeliverAll();
  ASSERT_TRUE(cluster.node(1).IsStopped());
  // And after the stop-sign decided: still rejected, also at followers.
  EXPECT_FALSE(cluster.node(1).ProposeReconfiguration(ss));
  EXPECT_FALSE(cluster.node(2).Append(Entry::Command(5, 8)));
}

TEST(OmniPaxosUnit, UnproposedEntriesRecoverableAfterStop) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  // Queue proposals at a follower that cannot flush them (leader unknown to
  // it yet? it knows — use a follower whose forward will be rejected because
  // the config stops first).
  omni::StopSign ss;
  ss.next_config = 1;
  ss.next_nodes = {1, 2, 3};
  ASSERT_TRUE(cluster.node(1).ProposeReconfiguration(ss));
  cluster.Collect();
  cluster.DeliverAll();
  ASSERT_TRUE(cluster.node(2).IsStopped());
  // Appends at the stopped configuration are rejected; anything still queued
  // can be drained for re-proposal in the next configuration.
  EXPECT_FALSE(cluster.node(2).Append(Entry::Command(77, 8)));
  const auto unproposed = cluster.node(2).TakeUnproposed();
  EXPECT_TRUE(unproposed.empty());  // nothing was silently dropped
}

TEST(OmniPaxosUnit, TrimForwardsToStorage) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    cluster.Append(1, cmd);
  }
  cluster.node(1).Trim(5);
  EXPECT_EQ(cluster.storage(1).compacted_idx(), 5u);
  EXPECT_EQ(cluster.node(1).log_len(), 5u);
}

TEST(OmniPaxosUnit, DecidedStopSignExposesNextConfig) {
  OmniCluster cluster(3);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  omni::StopSign ss;
  ss.next_config = 7;
  ss.next_nodes = {2, 3, 9};
  ASSERT_TRUE(cluster.node(1).ProposeReconfiguration(ss));
  cluster.Collect();
  cluster.DeliverAll();
  for (NodeId id = 1; id <= 3; ++id) {
    const auto decided = cluster.node(id).DecidedStopSign();
    ASSERT_TRUE(decided.has_value()) << "server " << id;
    EXPECT_EQ(decided->next_config, 7u);
    EXPECT_EQ(decided->next_nodes, (std::vector<NodeId>{2, 3, 9}));
  }
}

// ---------------------------------------------------------------------------
// Determinism: the whole simulation stack replays identically from a seed.
// ---------------------------------------------------------------------------

TEST(Determinism, SameSeedSameResult) {
  rsm::NormalConfig cfg;
  cfg.warmup = Seconds(1);
  cfg.duration = Seconds(3);
  cfg.seed = 1234;
  const auto a = rsm::RunNormal<rsm::OmniNode>(cfg);
  const auto b = rsm::RunNormal<rsm::OmniNode>(cfg);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.election_io_share, b.election_io_share);
}

TEST(Determinism, SameSeedSamePartitionOutcome) {
  rsm::PartitionConfig cfg;
  cfg.scenario = rsm::Scenario::kQuorumLoss;
  cfg.partition_duration = Seconds(5);
  cfg.post_heal = Seconds(2);
  cfg.warmup = Seconds(1);
  cfg.seed = 77;
  const auto a = rsm::RunPartition<rsm::RaftNode>(cfg);
  const auto b = rsm::RunPartition<rsm::RaftNode>(cfg);
  EXPECT_EQ(a.downtime, b.downtime);
  EXPECT_EQ(a.decided_during, b.decided_during);
  EXPECT_EQ(a.epoch_increments, b.epoch_increments);
}

TEST(Determinism, DifferentSeedsDifferentTimings) {
  rsm::PartitionConfig cfg;
  cfg.scenario = rsm::Scenario::kQuorumLoss;
  cfg.partition_duration = Seconds(5);
  cfg.post_heal = Seconds(2);
  cfg.warmup = Seconds(1);
  cfg.seed = 1;
  const auto a = rsm::RunPartition<rsm::RaftNode>(cfg);
  cfg.seed = 2;
  const auto b = rsm::RunPartition<rsm::RaftNode>(cfg);
  // Raft's randomized timers make exact equality across seeds vanishingly
  // unlikely; both still recover.
  EXPECT_TRUE(a.recovered);
  EXPECT_TRUE(b.recovered);
  EXPECT_NE(a.downtime, b.downtime);
}

}  // namespace
}  // namespace opx
