// Message-level Raft unit tests: vote rules, commit-term restriction,
// learner behaviour, and backfill flow control.
#include <gtest/gtest.h>

#include "src/raft/raft.h"

namespace opx {
namespace {

using raft::AppendEntries;
using raft::AppendEntriesReply;
using raft::Entry;
using raft::LogEntry;
using raft::Raft;
using raft::RaftConfig;
using raft::RaftMessage;
using raft::RaftRole;
using raft::RequestVote;
using raft::RequestVoteReply;

RaftConfig Config(NodeId pid, std::vector<NodeId> voters) {
  RaftConfig cfg;
  cfg.pid = pid;
  cfg.voters = std::move(voters);
  cfg.seed = 42 + static_cast<uint64_t>(pid);
  return cfg;
}

template <typename T>
std::vector<T> TakeOfType(Raft& node) {
  std::vector<T> found;
  for (raft::RaftOut& out : node.TakeOutgoing()) {
    if (auto* m = std::get_if<T>(&out.body)) {
      found.push_back(std::move(*m));
    }
  }
  return found;
}

// Makes `node` (a single-voter config is cheating; use vote replies) leader.
void MakeLeader(Raft& node, NodeId voter) {
  while (!node.IsLeader()) {
    node.Tick();
    (void)node.TakeOutgoing();
    if (node.role() == RaftRole::kCandidate) {
      node.Handle(voter, RaftMessage(RequestVoteReply{node.term(), true, false}));
    }
  }
  (void)node.TakeOutgoing();
}

TEST(RaftUnit, VoteDeniedForShorterLog) {
  Raft node(Config(2, {1, 2, 3}));
  // Give ourselves a log entry at term 1.
  AppendEntries ae;
  ae.term = 1;
  ae.entries = {LogEntry{1, Entry::Command(1, 8)}};
  node.Handle(1, RaftMessage(ae));
  (void)node.TakeOutgoing();
  // Candidate with an empty log at a higher term: vote denied.
  RequestVote rv;
  rv.term = 5;
  rv.last_log_idx = 0;
  rv.last_log_term = 0;
  node.Handle(3, RaftMessage(rv));
  const auto replies = TakeOfType<RequestVoteReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].granted);
  EXPECT_EQ(node.term(), 5u);  // term adopted even when vote denied
}

TEST(RaftUnit, SingleVotePerTerm) {
  Raft node(Config(2, {1, 2, 3}));
  RequestVote rv;
  rv.term = 3;
  node.Handle(1, RaftMessage(rv));
  auto replies = TakeOfType<RequestVoteReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].granted);
  // Same term, different candidate: denied. Same candidate: re-granted.
  node.Handle(3, RaftMessage(rv));
  replies = TakeOfType<RequestVoteReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].granted);
  node.Handle(1, RaftMessage(rv));
  replies = TakeOfType<RequestVoteReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].granted);
}

TEST(RaftUnit, PreVoteDoesNotMutateState) {
  Raft node(Config(2, {1, 2, 3}));
  RequestVote pre;
  pre.term = 9;
  pre.pre_vote = true;
  node.Handle(1, RaftMessage(pre));
  const auto replies = TakeOfType<RequestVoteReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].granted);
  EXPECT_TRUE(replies[0].pre_vote);
  EXPECT_EQ(node.term(), 0u);  // term untouched
}

TEST(RaftUnit, CommitRestrictedToCurrentTermEntries) {
  // A leader must not directly commit entries from previous terms (§5.4.2);
  // they commit transitively via a current-term entry (the no-op).
  Raft node(Config(1, {1, 2, 3}));
  // Receive an old-term entry as follower first.
  AppendEntries ae;
  ae.term = 1;
  ae.entries = {LogEntry{1, Entry::Command(10, 8)}};
  node.Handle(2, RaftMessage(ae));
  (void)node.TakeOutgoing();
  EXPECT_EQ(node.commit_idx(), 0u);
  // Become leader of term 2: a no-op is appended (index 2).
  MakeLeader(node, 2);
  ASSERT_EQ(node.log_len(), 2u);
  // Follower 2 acknowledges only the OLD entry (index 1): no commit yet.
  node.Handle(2, RaftMessage(AppendEntriesReply{node.term(), true, 1}));
  (void)node.TakeOutgoing();
  EXPECT_EQ(node.commit_idx(), 0u);
  // Acknowledging the current-term no-op commits everything.
  node.Handle(2, RaftMessage(AppendEntriesReply{node.term(), true, 2}));
  (void)node.TakeOutgoing();
  EXPECT_EQ(node.commit_idx(), 2u);
}

TEST(RaftUnit, LearnerNeverStartsElections) {
  RaftConfig cfg = Config(5, {5});
  cfg.election_ticks = 1 << 20;  // the fresh-server pattern
  Raft node(cfg);
  for (int i = 0; i < 100; ++i) {
    node.Tick();
  }
  EXPECT_FALSE(node.IsLeader());
  EXPECT_TRUE(node.TakeOutgoing().empty());
}

TEST(RaftUnit, BackfillRespectsInflightLimit) {
  RaftConfig cfg = Config(1, {1, 2, 3});
  cfg.max_batch_entries = 10;
  cfg.max_inflight_chunks = 2;
  Raft node(cfg);
  MakeLeader(node, 2);
  for (uint64_t cmd = 1; cmd <= 100; ++cmd) {
    node.Append(Entry::Command(cmd, 8));
  }
  // Count payload-bearing AppendEntries to peer 3 in the first flush: at most
  // max_inflight_chunks chunks of max_batch_entries each.
  int chunks_to_3 = 0;
  for (raft::RaftOut& out : node.TakeOutgoing()) {
    if (out.to == 3) {
      if (auto* ae = std::get_if<AppendEntries>(&out.body); ae && !ae->entries.empty()) {
        ++chunks_to_3;
        EXPECT_LE(ae->entries.size(), 10u);
      }
    }
  }
  EXPECT_GT(chunks_to_3, 0);
  EXPECT_LE(chunks_to_3, 2);
  // Acks open the window for more chunks.
  node.Handle(3, RaftMessage(AppendEntriesReply{node.term(), true, 10}));
  int more = 0;
  for (raft::RaftOut& out : node.TakeOutgoing()) {
    if (out.to == 3) {
      if (auto* ae = std::get_if<AppendEntries>(&out.body); ae && !ae->entries.empty()) {
        ++more;
      }
    }
  }
  EXPECT_GE(more, 1);
}

TEST(RaftUnit, PreloadStartsCommitted) {
  RaftConfig cfg = Config(1, {1, 2, 3});
  cfg.preload_entries = 1000;
  Raft node(cfg);
  EXPECT_EQ(node.log_len(), 1000u);
  EXPECT_EQ(node.commit_idx(), 1000u);
}

TEST(RaftUnit, StaleTermAppendRejectedWithHigherTerm) {
  Raft node(Config(2, {1, 2, 3}));
  RequestVote rv;
  rv.term = 7;
  node.Handle(1, RaftMessage(rv));
  (void)node.TakeOutgoing();
  AppendEntries stale;
  stale.term = 3;
  node.Handle(3, RaftMessage(stale));
  const auto replies = TakeOfType<AppendEntriesReply>(node);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].success);
  EXPECT_EQ(replies[0].term, 7u);  // the term gossip of Table 1
}

}  // namespace
}  // namespace opx
