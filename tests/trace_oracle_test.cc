// Trace-oracle conformance tests (DESIGN.md §12): temporal properties checked
// against obs traces for all four protocols, under the lockstep harnesses,
// the discrete-event ClusterSim, and replayed chaos-corpus artifacts.
//
// The oracles live in tests/trace_oracle_harness.h; this file drives them:
//   - Sequence Paxos never sends <AcceptDecide> before its Promise quorum;
//   - at most one node claims leadership per epoch key, per protocol;
//   - Raft PreVote+CheckQuorum never disturbs a live leader under the
//     partial partition of scenario 3.1 (leader<->follower link cut);
//   - a leader re-emerges within the paper's ~4-timeout bound after a fault,
//     and the stuck-link corpus mutant *fails* that bound loudly;
//   - attaching a sink to a chaos replay reproduces the recorded fingerprint
//     bit-for-bit (tracing never perturbs the schedule).
//
// Every test skips when the tree is built with OPX_OBS=OFF: the recording
// macros compile to nothing, so there is no trace to check.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "src/multipaxos/multipaxos.h"
#include "src/obs/trace.h"
#include "src/obs/trace_view.h"
#include "src/rsm/chaos.h"
#include "src/rsm/cluster_sim.h"
#include "src/rsm/omni_reconfig_sim.h"
#include "src/vr/vr_replica.h"
#include "tests/lockstep_harness.h"
#include "tests/omni_test_harness.h"
#include "tests/raft_test_harness.h"
#include "tests/trace_oracle_harness.h"

namespace opx {
namespace {

using obs::EventKind;
using obs::ObsSink;
using obs::TraceView;
using testing::ElectionWithin;
using testing::LeaderUndisturbedAfter;
using testing::NoAcceptBeforePromiseQuorum;
using testing::OmniCluster;
using testing::PropertyResult;
using testing::RaftCluster;
using testing::SingleLeaderPerEpoch;

#if defined(OPX_OBS_ENABLED)
#define OPX_REQUIRE_OBS() \
  do {                    \
  } while (false)
#else
#define OPX_REQUIRE_OBS() GTEST_SKIP() << "built with OPX_OBS=OFF; no trace to check"
#endif

// --- Omni-Paxos under the lockstep harness ----------------------------------

TEST(TraceOracleOmni, AcceptDecideRequiresPromiseQuorum) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  OmniCluster cluster(3, /*batch_limit=*/0, &sink);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(10);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 20; ++cmd) {
    ASSERT_TRUE(cluster.Append(leader, cmd));
  }
  ASSERT_GT(sink.size(), 0u);
  ASSERT_EQ(sink.dropped(), 0u);  // complete trace: the oracle is fully sensitive

  const TraceView trace = TraceView::FromSink(sink);
  EXPECT_GT(trace.Filter(EventKind::kSpAcceptDecideSent).size(), 0u);
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::OmniLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

TEST(TraceOracleOmni, ReElectionAfterLeaderIsolationWithinBound) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  OmniCluster cluster(5, /*batch_limit=*/0, &sink);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(10);
  ASSERT_EQ(cluster.CurrentLeader(), 1);

  const Time cut = 10;  // lockstep time = tick count
  cluster.Isolate(1);
  cluster.TickRounds(30);
  EXPECT_NE(cluster.CurrentLeader(), kNoNode);
  EXPECT_NE(cluster.CurrentLeader(), 1);

  const TraceView trace = TraceView::FromSink(sink);
  // BLE detects the silent leader within one timeout (a few ticks) and the
  // ballot-bump/elect round completes within the paper's ~4-timeout bound.
  // The lockstep election timeout is ~3 heartbeat ticks.
  const PropertyResult within =
      ElectionWithin(trace, cut, /*bound=*/4 * 3, testing::OmniLeaderKinds());
  EXPECT_TRUE(within.ok) << within.detail;
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::OmniLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
}

// --- Raft (plain, and PreVote+CheckQuorum) ----------------------------------

TEST(TraceOracleRaft, TermHasAtMostOneLeaderAcrossCrashTakeover) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  raft::RaftConfig base;
  base.obs = &sink;
  RaftCluster cluster(3, base);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    ASSERT_TRUE(cluster.Append(leader, cmd));
  }

  const Time crash = 30;
  cluster.Crash(leader);
  cluster.TickRounds(40);
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  ASSERT_NE(new_leader, leader);

  const TraceView trace = TraceView::FromSink(sink);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::RaftLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
  // Takeover within randomized [election_ticks, 2*election_ticks) plus the
  // vote round — well inside 4 nominal timeouts (4 * 5 ticks).
  const PropertyResult within =
      ElectionWithin(trace, crash, /*bound=*/4 * base.election_ticks,
                     testing::RaftLeaderKinds());
  EXPECT_TRUE(within.ok) << within.detail;
  EXPECT_GT(trace.Filter(EventKind::kRaftCommit).size(), 0u);
}

// Scenario 3.1: the leader loses its link to ONE follower while keeping a
// quorum. Plain Raft lets the deaf follower bump terms and depose the leader;
// with PreVote+CheckQuorum the pre-vote is denied (live-leader lease) and the
// leader is never disturbed. The trace must show zero step-downs and zero
// rival leader claims after the cut.
TEST(TraceOracleRaftPvCq, LiveLeaderUndisturbedByPartialPartition) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  raft::RaftConfig base;
  base.pre_vote = true;
  base.check_quorum = true;
  base.obs = &sink;
  RaftCluster cluster(3, base);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);

  const NodeId follower = leader == 1 ? 2 : 1;
  const Time cut = 30;
  cluster.SetLink(leader, follower, false);
  cluster.TickRounds(100);
  EXPECT_EQ(cluster.CurrentLeader(), leader);

  const TraceView trace = TraceView::FromSink(sink);
  const PropertyResult undisturbed = LeaderUndisturbedAfter(
      trace, cut, leader, testing::RaftLeaderKinds(), {EventKind::kRaftStepDown});
  EXPECT_TRUE(undisturbed.ok) << undisturbed.detail;
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::RaftLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

// Contrast: plain Raft in the same topology IS disturbed (the deaf follower's
// term bump deposes the leader) — the oracle must catch the step-down. This
// pins the property's sensitivity: if LeaderUndisturbedAfter ever goes blind,
// this test fails first.
TEST(TraceOracleRaftPlain, PartialPartitionDisturbsLeaderWithoutPvCq) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  raft::RaftConfig base;
  base.obs = &sink;
  RaftCluster cluster(3, base);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);

  const NodeId follower = leader == 1 ? 2 : 1;
  const Time cut = 30;
  cluster.SetLink(leader, follower, false);
  cluster.TickRounds(100);

  const TraceView trace = TraceView::FromSink(sink);
  const PropertyResult undisturbed = LeaderUndisturbedAfter(
      trace, cut, leader, testing::RaftLeaderKinds(), {EventKind::kRaftStepDown});
  EXPECT_FALSE(undisturbed.ok)
      << "plain Raft should have been disturbed by the deaf follower";
}

// --- Multi-Paxos ------------------------------------------------------------

TEST(TraceOracleMpx, BallotHasAtMostOneLeaderAcrossTakeover) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  using Cluster = testing::LockstepCluster<mpx::MultiPaxos>;
  Cluster cluster(3, [&sink](NodeId id, std::vector<NodeId> peers) {
    mpx::MpxConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.seed = 100 + static_cast<uint64_t>(id);
    cfg.obs = &sink;
    return std::make_unique<mpx::MultiPaxos>(cfg);
  });
  cluster.AttachObs(&sink);
  cluster.TickRounds(30);

  NodeId leader = kNoNode;
  for (NodeId id = 1; id <= 3; ++id) {
    if (cluster.node(id).IsLeader()) {
      leader = id;
    }
  }
  ASSERT_NE(leader, kNoNode);
  const Time crash = 30;
  cluster.Crash(leader);
  cluster.TickRounds(40);

  const TraceView trace = TraceView::FromSink(sink);
  EXPECT_GT(trace.Filter(EventKind::kMpxLeader).size(), 1u);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::MpxLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
  const PropertyResult within = ElectionWithin(
      trace, crash, /*bound=*/40, testing::MpxLeaderKinds());
  EXPECT_TRUE(within.ok) << within.detail;
}

// --- VR ---------------------------------------------------------------------

TEST(TraceOracleVr, ViewHasAtMostOneLeaderAcrossViewChange) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  using Cluster = testing::LockstepCluster<vr::VrReplica>;
  std::vector<std::unique_ptr<omni::Storage>> storages;
  storages.resize(4);
  for (int i = 1; i <= 3; ++i) {
    storages[static_cast<size_t>(i)] = std::make_unique<omni::Storage>();
  }
  Cluster cluster(3, [&sink, &storages](NodeId id, std::vector<NodeId> peers) {
    vr::VrReplicaConfig cfg;
    cfg.pid = id;
    cfg.peers = std::move(peers);
    cfg.seed = 300 + static_cast<uint64_t>(id);
    cfg.obs = &sink;
    return std::make_unique<vr::VrReplica>(cfg, storages[static_cast<size_t>(id)].get());
  });
  cluster.AttachObs(&sink);
  cluster.TickRounds(3);
  ASSERT_TRUE(cluster.node(1).IsLeader());

  cluster.Crash(1);  // view 1's primary is node 2 (round-robin)
  cluster.TickRounds(30);
  ASSERT_TRUE(cluster.node(2).IsLeader());

  const TraceView trace = TraceView::FromSink(sink);
  EXPECT_GT(trace.Filter(EventKind::kVrViewChangeStart).size(), 0u);
  EXPECT_GT(trace.Filter(EventKind::kVrLeader, 2).size(), 0u);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::VrLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

// --- ClusterSim: the ns-resolution 4-timeout recovery bound -----------------

TEST(TraceOracleCluster, OmniElectsWithinFourTimeoutsOfLeaderIsolation) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 100;
  params.proposal_rate = 20'000;
  params.preferred_leader = 1;
  params.obs = &sink;
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  sim.RunUntil(Seconds(2));
  ASSERT_EQ(sim.CurrentLeader(), 1);

  const Time cut = sim.simulator().Now();
  sim.network().Isolate(1);
  sim.RunUntil(cut + Seconds(2));
  EXPECT_NE(sim.CurrentLeader(), kNoNode);
  EXPECT_NE(sim.CurrentLeader(), 1);

  const TraceView trace = TraceView::FromSink(sink);
  // Fault detection plus one ballot round: the paper's ~4-timeout bound.
  const PropertyResult within = ElectionWithin(trace, cut, 4 * params.election_timeout,
                                               testing::OmniLeaderKinds());
  EXPECT_TRUE(within.ok) << within.detail;
  // Link events from the isolation must be in the trace, stamped with sim time.
  EXPECT_GE(trace.Filter(EventKind::kLinkDown).size(), 4u);
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
}

// --- Compaction + lease reads: snapshot-safety and read-your-writes ---------

TEST(TraceOracleOmni, AutoTrimAndSnapshotResyncUpholdSnapshotSafety) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  OmniCluster cluster(3, /*batch_limit=*/0, &sink, /*trim_watermark=*/4);
  cluster.SetPriority(1, 10);
  cluster.TickRounds(3);
  ASSERT_EQ(cluster.CurrentLeader(), 1);
  // A straggler that reconnects below the leader's compaction boundary
  // exercises every event the oracle constrains: decides, auto-trims on both
  // leader and followers, and a snapshot install.
  cluster.SetLink(1, 3, false);
  cluster.SetLink(2, 3, false);
  for (uint64_t cmd = 1; cmd <= 20; ++cmd) {
    cluster.Append(1, cmd);
    if (cmd % 5 == 0) {
      cluster.Tick();
    }
  }
  cluster.SetLink(1, 3, true);
  cluster.SetLink(2, 3, true);
  cluster.DeliverAll();
  cluster.TickRounds(3);
  ASSERT_EQ(sink.dropped(), 0u);

  const TraceView trace = TraceView::FromSink(sink);
  EXPECT_GT(trace.Filter(EventKind::kSpTrim).size(), 0u);
  EXPECT_GT(trace.Filter(EventKind::kSpSnapshotInstall).size(), 0u);
  const PropertyResult snap = testing::SnapshotSafety(trace);
  EXPECT_TRUE(snap.ok) << snap.detail;
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
}

TEST(TraceOracleCluster, LeaseReadsUnderCompactionUpholdReadYourWrites) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  rsm::ClusterParams params;
  params.num_servers = 3;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 50;
  params.proposal_rate = 20'000;
  params.preferred_leader = 1;
  params.read_fraction = 0.3;
  params.trim_watermark = 64;
  params.obs = &sink;
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  sim.RunUntil(Seconds(3));

  // The client mixed lease reads into the write stream and every served read
  // observed its own writes.
  EXPECT_GT(sim.client().reads_completed(), 0u);
  EXPECT_EQ(sim.client().ryw_violations(), 0u);
  const obs::Counter* served = sink.metrics().FindCounter("cluster/lease_reads");
  ASSERT_NE(served, nullptr);
  EXPECT_GT(served->value(), 0u);

  const TraceView trace = TraceView::FromSink(sink);
  EXPECT_GT(trace.Filter(EventKind::kSpTrim).size(), 0u);
  EXPECT_GT(trace.Filter(EventKind::kLeaseRead).size(), 0u);
  const PropertyResult snap = testing::SnapshotSafety(trace);
  EXPECT_TRUE(snap.ok) << snap.detail;
  const PropertyResult ryw = testing::ReadYourWrites(trace);
  EXPECT_TRUE(ryw.ok) << ryw.detail;
}

// --- Reconfiguration: stop-sign before migration, migration completes -------

TEST(TraceOracleReconfig, StopSignPrecedesMigrationSegments) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  rsm::ReconfigParams p;
  p.replace_count = 1;
  p.preload_entries = 50'000;
  p.concurrent_proposals = 500;
  p.warmup = Seconds(5);
  p.run_after = Seconds(25);
  p.egress_bytes_per_sec = 4e6;
  p.migration_chunk = 10'000;
  p.obs = &sink;
  rsm::OmniReconfigSim sim(p);
  const rsm::ReconfigResult r = sim.Run();
  ASSERT_GT(r.migration_done_at, 0);

  const TraceView trace = TraceView::FromSink(sink);
  const TraceView stop = trace.Filter(EventKind::kReconfigStopSign);
  const TraceView segments = trace.Filter(EventKind::kMigSegment);
  const TraceView done = trace.Filter(EventKind::kMigDone);
  ASSERT_GT(stop.size(), 0u);
  ASSERT_GT(segments.size(), 0u);
  ASSERT_GT(done.size(), 0u);
  // No segment lands before the first stop-sign decide, and the migration
  // completes after its last segment.
  EXPECT_LE(stop[0].at, segments[0].at);
  EXPECT_LE(segments[segments.size() - 1].at, done[done.size() - 1].at);
  // The per-segment metric agrees with the trace.
  const obs::Counter* seg_entries =
      sink.metrics().FindCounter("migration/segment_entries");
  ASSERT_NE(seg_entries, nullptr);
  EXPECT_GT(seg_entries->value(), 0u);
}

// --- Chaos-corpus replays, one per protocol family --------------------------

std::string CorpusDir() { return std::string(OPX_SOURCE_DIR) + "/tests/chaos_corpus"; }

rsm::ChaosArtifact LoadArtifact(const std::string& name) {
  const std::string path = CorpusDir() + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus artifact " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<rsm::ChaosArtifact> art = rsm::ChaosArtifact::Parse(buf.str());
  EXPECT_TRUE(art.has_value()) << "malformed corpus artifact " << path;
  return *art;
}

// Replays `name` with a sink attached; asserts the fingerprint still matches
// (tracing never perturbs the schedule) and returns the trace.
TraceView ReplayTraced(const std::string& name, ObsSink* sink) {
  rsm::ChaosArtifact art = LoadArtifact(name);
  art.config.obs = sink;
  const rsm::ChaosReplayResult r = rsm::ReplayChaosArtifact(art);
  EXPECT_EQ(r.outcome.violated, art.violated) << r.outcome.detail;
  EXPECT_TRUE(r.matches) << "tracing perturbed the replay of " << name
                         << ": recorded " << art.fingerprint << ", got "
                         << r.outcome.fingerprint;
  EXPECT_GT(sink->size(), 0u);
  return TraceView::FromSink(*sink);
}

TEST(TraceOracleCorpus, OmniReplayUpholdsOracles) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  const TraceView trace = ReplayTraced("chaos-omni-seed104.chaos", &sink);
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::OmniLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
  // Vacuously true on a trim-free artifact, but keeps the oracle running
  // over every corpus replay.
  const PropertyResult snap = testing::SnapshotSafety(trace);
  EXPECT_TRUE(snap.ok) << snap.detail;
  const PropertyResult ryw = testing::ReadYourWrites(trace);
  EXPECT_TRUE(ryw.ok) << ryw.detail;
}

TEST(TraceOracleCorpus, OmniTrimCrashReplayUpholdsSnapshotAndReadOracles) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  const TraceView trace =
      ReplayTraced("chaos-omni-trim-crash-seed4247.chaos", &sink);
  // The schedule trims (explicit faults + watermark-8 auto-trim), crashes
  // servers into trimmed-log recoveries, and serves lease reads throughout —
  // both new oracles must hold over the whole interleaving.
  EXPECT_GT(trace.Filter(EventKind::kSpTrim).size(), 0u);
  EXPECT_GT(trace.Filter(EventKind::kLeaseRead).size(), 0u);
  const PropertyResult snap = testing::SnapshotSafety(trace);
  EXPECT_TRUE(snap.ok) << snap.detail;
  const PropertyResult ryw = testing::ReadYourWrites(trace);
  EXPECT_TRUE(ryw.ok) << ryw.detail;
  const PropertyResult order = NoAcceptBeforePromiseQuorum(trace);
  EXPECT_TRUE(order.ok) << order.detail;
}

TEST(TraceOracleCorpus, RaftReplayUpholdsOracles) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  const TraceView trace = ReplayTraced("chaos-raft-seed300.chaos", &sink);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::RaftLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

TEST(TraceOracleCorpus, MultiPaxosReplayUpholdsOracles) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  const TraceView trace = ReplayTraced("chaos-multipaxos-seed800.chaos", &sink);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::MpxLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

TEST(TraceOracleCorpus, VrReplayUpholdsOracles) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  const TraceView trace = ReplayTraced("chaos-vr-seed500.chaos", &sink);
  const PropertyResult single = SingleLeaderPerEpoch(trace, testing::VrLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
}

// The stuck-link mutant denies every node a quorum after the horizon forever,
// so the 4-timeout recovery oracle must FAIL — loudly, with a counterexample
// naming the window. (The initial election before the horizon still passes.)
TEST(TraceOracleCorpus, StuckLinkMutantFlunksElectionBound) {
  OPX_REQUIRE_OBS();
  ObsSink sink;
  rsm::ChaosArtifact art = LoadArtifact("chaos-omni-mutant-stuck-link.chaos");
  art.config.obs = &sink;
  const rsm::ChaosReplayResult r = rsm::ReplayChaosArtifact(art);
  EXPECT_EQ(r.outcome.violated, art.violated) << r.outcome.detail;
  EXPECT_TRUE(r.matches);

  const TraceView trace = TraceView::FromSink(sink);
  const Time horizon = art.config.plan.horizon;
  // Positive control: the cluster was deciding right up to the horizon (the
  // ring retains the tail of the run, so early leader events are gone but
  // pre-cut decides are not).
  const TraceView decides = trace.Filter(EventKind::kSpDecide);
  ASSERT_FALSE(decides.empty());
  EXPECT_LE(decides[0].at, horizon);
  // The bound after the (never-happening) heal must be violated.
  const PropertyResult after = ElectionWithin(
      trace, horizon, 4 * art.config.election_timeout, testing::OmniLeaderKinds());
  EXPECT_FALSE(after.ok)
      << "stuck-link mutant unexpectedly satisfied the recovery bound";
  EXPECT_FALSE(after.detail.empty());
}

}  // namespace
}  // namespace opx
