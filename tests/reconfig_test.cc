// Reconfiguration integration tests (§6, §7.3): stop-sign flow, parallel vs
// leader-only log migration, donor-failure resilience, and the Raft baseline.
#include <gtest/gtest.h>

#include "src/rsm/omni_reconfig_sim.h"
#include "src/rsm/raft_reconfig_sim.h"

namespace opx {
namespace {

using rsm::OmniReconfigSim;
using rsm::RaftReconfigSim;
using rsm::ReconfigParams;
using rsm::ReconfigResult;

ReconfigParams QuickParams(int replace) {
  ReconfigParams p;
  p.replace_count = replace;
  p.preload_entries = 100'000;
  p.concurrent_proposals = 1'000;
  p.warmup = Seconds(5);
  p.run_after = Seconds(25);
  p.egress_bytes_per_sec = 4e6;
  p.migration_chunk = 10'000;
  return p;
}

TEST(OmniReconfig, ReplaceOneCompletesAndServes) {
  OmniReconfigSim sim(QuickParams(1));
  const ReconfigResult r = sim.Run();
  EXPECT_GT(r.ss_decided_at, 0);
  EXPECT_GT(r.migration_done_at, r.ss_decided_at);
  EXPECT_GT(r.new_config_first_decide, 0);
  // The paper's headline: a short dip, not an outage.
  EXPECT_LT(r.downtime, Seconds(5));
}

TEST(OmniReconfig, ReplaceMajorityWaitsForFirstMigratedServer) {
  OmniReconfigSim sim(QuickParams(3));
  const ReconfigResult r = sim.Run();
  EXPECT_GT(r.ss_decided_at, 0);
  EXPECT_GT(r.new_config_first_decide, r.ss_decided_at);
  EXPECT_GT(r.migration_done_at, 0);
  // With only 2 of 5 continuing, c1 cannot serve until a fresh server holds
  // the full log — downtime is real but bounded.
  EXPECT_GT(r.downtime, Millis(100));
  EXPECT_LT(r.downtime, Seconds(20));
}

TEST(OmniReconfig, ParallelMigrationFasterThanLeaderOnly) {
  ReconfigParams parallel = QuickParams(3);
  ReconfigParams leader_only = QuickParams(3);
  leader_only.leader_only_migration = true;
  const ReconfigResult rp = OmniReconfigSim(parallel).Run();
  const ReconfigResult rl = OmniReconfigSim(leader_only).Run();
  ASSERT_GT(rp.migration_done_at, 0);
  ASSERT_GT(rl.migration_done_at, 0);
  const Time parallel_span = rp.migration_done_at - rp.ss_decided_at;
  const Time leader_span = rl.migration_done_at - rl.ss_decided_at;
  EXPECT_LT(parallel_span, leader_span);
  // The leader's NIC is the bottleneck in leader-only mode.
  EXPECT_GT(rl.peak_window_egress_old_leader, rp.peak_window_egress_old_leader);
}

TEST(OmniReconfig, MigrationSurvivesDonorDisconnect) {
  ReconfigParams p = QuickParams(1);
  p.chunk_timeout = Seconds(2);
  OmniReconfigSim sim(p);
  // Cut the fresh server (id 6) off from two donors right when migration is
  // about to start; timeouts must reassign their chunks.
  sim.At(p.warmup + Millis(200), [&sim]() {
    sim.SetLink(6, 2, false);
    sim.SetLink(6, 3, false);
  });
  const ReconfigResult r = sim.Run();
  EXPECT_GT(r.migration_done_at, 0);
  EXPECT_GT(r.new_config_first_decide, 0);
}

TEST(OmniReconfig, ChainedReconfigurationsRollThroughThePool) {
  // Rolling replacement (§6.1 "software upgrade"): c0={1..5} -> c1 replaces
  // s5 with s6, then c2 replaces s4 with s7. Each step uses the service
  // layer's parallel migration of the previous segment.
  ReconfigParams p = QuickParams(2);  // pool has servers 6 and 7 available
  p.run_after = Seconds(40);
  OmniReconfigSim sim(p);

  // Step 1 happens via Run()'s built-in proposal? No — drive both manually.
  sim.simulator().RunUntil(p.warmup);
  ASSERT_NE(sim.LeaderOf(0), kNoNode);
  ASSERT_TRUE(sim.ProposeNextReconfiguration(0, {1, 2, 3, 4, 6}));
  // Let c1 establish itself, then roll the next server.
  Time deadline = p.warmup + Seconds(20);
  sim.simulator().RunUntil(deadline);
  ASSERT_NE(sim.LeaderOf(1), kNoNode) << "c1 did not come up";
  ASSERT_TRUE(sim.ProposeNextReconfiguration(1, {1, 2, 3, 6, 7}));
  sim.simulator().RunUntil(deadline + Seconds(20));

  // c2 is serving: it has a leader, and the freshly migrated server 7 runs
  // an instance of c2.
  EXPECT_NE(sim.LeaderOf(2), kNoNode);
  EXPECT_NE(sim.instance(7, 2), nullptr);
  ASSERT_NE(sim.instance(7, 2), nullptr);
  EXPECT_GT(sim.instance(7, 2)->decided_idx(), 0u);
  // And the client kept completing commands through both transitions.
  EXPECT_GT(sim.client().completed(), 0u);
}

TEST(RaftReconfig, ReplaceOneCompletes) {
  RaftReconfigSim sim(QuickParams(1));
  const ReconfigResult r = sim.Run();
  EXPECT_GT(r.ss_decided_at, 0);       // membership change committed
  EXPECT_GT(r.migration_done_at, 0);   // learner caught up via the leader
}

TEST(RaftReconfig, LeaderCarriesTheMigrationLoad) {
  const ReconfigResult omni = OmniReconfigSim(QuickParams(1)).Run();
  const ReconfigResult raft = RaftReconfigSim(QuickParams(1)).Run();
  ASSERT_GT(raft.migration_done_at, 0);
  // Raft's leader ships the entire history itself; its peak egress exceeds
  // the Omni-Paxos leader's, which shares the work with the followers.
  EXPECT_GT(raft.peak_window_egress_old_leader, omni.peak_window_egress_old_leader);
}

}  // namespace
}  // namespace opx
