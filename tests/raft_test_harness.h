// Lockstep in-memory cluster for Raft unit tests (mirror of
// omni_test_harness.h; Raft has no session-reconnect hook, so link heals do
// not notify nodes — exactly like the real protocol over its own retries).
#ifndef TESTS_RAFT_TEST_HARNESS_H_
#define TESTS_RAFT_TEST_HARNESS_H_

#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/audit/auditor.h"
#include "src/raft/raft.h"
#include "src/util/check.h"

namespace opx::testing {

class RaftCluster {
 public:
  explicit RaftCluster(int n, raft::RaftConfig base = {}) : n_(n), base_(base) {
    std::vector<NodeId> voters;
    for (NodeId id = 1; id <= n_; ++id) {
      voters.push_back(id);
    }
    nodes_.resize(static_cast<size_t>(n_) + 1);
    for (NodeId id = 1; id <= n_; ++id) {
      raft::RaftConfig cfg = base_;
      cfg.pid = id;
      cfg.voters = voters;
      cfg.seed = base_.seed + static_cast<uint64_t>(id) * 7919;
      nodes_[static_cast<size_t>(id)] = std::make_unique<raft::Raft>(cfg);
    }
  }

  // Adds a fresh (empty-log) server, e.g. the target of a membership change.
  NodeId AddFreshServer() {
    const NodeId id = ++n_;
    raft::RaftConfig cfg = base_;
    cfg.pid = id;
    cfg.voters = {id};  // placeholder; it never self-elects as a learner once
                        // contacted, and tests drive membership via the leader
    cfg.seed = base_.seed + static_cast<uint64_t>(id) * 7919;
    // Fresh servers must not start elections before joining; give them a huge
    // election timeout.
    cfg.election_ticks = 1 << 20;
    nodes_.push_back(std::make_unique<raft::Raft>(cfg));
    return id;
  }

  raft::Raft& node(NodeId id) { return *nodes_[Checked(id)]; }
  int size() const { return n_; }

  void SetLink(NodeId a, NodeId b, bool up) {
    const std::pair<NodeId, NodeId> key = std::minmax(a, b);
    if (up) {
      down_links_.erase(key);
    } else {
      down_links_.insert(key);
    }
  }

  bool LinkUp(NodeId a, NodeId b) const {
    return down_links_.count(std::minmax(a, b)) == 0;
  }

  void Isolate(NodeId id) {
    for (NodeId other = 1; other <= n_; ++other) {
      if (other != id) {
        SetLink(id, other, false);
      }
    }
  }

  void HealAll() {
    for (NodeId a = 1; a <= n_; ++a) {
      for (NodeId b = a + 1; b <= n_; ++b) {
        SetLink(a, b, true);
      }
    }
  }

  void Crash(NodeId id) { crashed_.insert(id); }
  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  void Tick() {
    ++ticks_;
    OPX_TRACE_NOW(base_.obs, ticks_);
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        node(id).Tick();
      }
    }
    Collect();
    AuditNow("tick");
    DeliverAll();
  }

  void TickRounds(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      Tick();
    }
  }

  void DeliverAll() {
    size_t guard = 0;
    while (!queue_.empty()) {
      OPX_CHECK_LT(++guard, 1'000'000u) << "message storm";
      Wire w = std::move(queue_.front());
      queue_.pop_front();
      if (IsCrashed(w.to) || IsCrashed(w.from) || !LinkUp(w.from, w.to)) {
        continue;
      }
      node(w.to).Handle(w.from, std::move(w.body));
      Collect();
      AuditNow("deliver");
    }
  }

  const audit::SafetyAuditor& auditor() const { return auditor_; }

  // Runs the cross-replica safety auditor over all live nodes.
  void AuditNow(const char* label) {
    views_.clear();
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id)) {
        views_.push_back(node(id).Audit());
      }
    }
    audit::AuditContext ctx;
    ctx.now = ticks_;  // lockstep "time" is the tick count
    ctx.event_id = ++audit_events_;
    ctx.label = label;
    auditor_.Observe(views_, ctx);
  }

  bool Append(NodeId id, uint64_t cmd_id) {
    const bool ok = node(id).Append(omni::Entry::Command(cmd_id, 8));
    Collect();
    DeliverAll();
    return ok;
  }

  // Leader claimant with the highest term.
  NodeId CurrentLeader() {
    NodeId best = kNoNode;
    uint64_t best_term = 0;
    for (NodeId id = 1; id <= n_; ++id) {
      if (!IsCrashed(id) && node(id).IsLeader() && node(id).term() > best_term) {
        best = id;
        best_term = node(id).term();
      }
    }
    return best;
  }

  void Collect() {
    for (NodeId id = 1; id <= n_; ++id) {
      if (IsCrashed(id)) {
        continue;
      }
      for (raft::RaftOut& out : node(id).TakeOutgoing()) {
        if (out.to >= 1 && out.to <= n_ && LinkUp(id, out.to) && !IsCrashed(out.to)) {
          queue_.push_back(Wire{id, out.to, std::move(out.body)});
        }
      }
    }
  }

 private:
  struct Wire {
    NodeId from;
    NodeId to;
    raft::RaftMessage body;
  };

  size_t Checked(NodeId id) const {
    OPX_CHECK(id >= 1 && id <= n_);
    return static_cast<size_t>(id);
  }

  int n_;
  raft::RaftConfig base_;
  std::vector<std::unique_ptr<raft::Raft>> nodes_;
  std::deque<Wire> queue_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> crashed_;

  audit::SafetyAuditor auditor_;
  std::vector<audit::AuditView> views_;
  uint64_t audit_events_ = 0;
  int64_t ticks_ = 0;
};

}  // namespace opx::testing

#endif  // TESTS_RAFT_TEST_HARNESS_H_
