// Parameterized sweep of the partial-connectivity claims over cluster sizes:
// the paper's Table 1 verdicts must hold for any N, not just 5 — Omni-Paxos
// needs only ONE quorum-connected server regardless of cluster size (§5.1).
#include <gtest/gtest.h>

#include <tuple>

#include "src/obs/trace.h"
#include "src/obs/trace_view.h"
#include "src/rsm/experiments.h"
#include "tests/trace_oracle_harness.h"

namespace opx {
namespace {

using rsm::PartitionConfig;
using rsm::PartitionResult;
using rsm::Scenario;

PartitionConfig SweepConfig(Scenario s, int servers, uint64_t seed) {
  PartitionConfig cfg;
  cfg.scenario = s;
  cfg.num_servers = servers;
  cfg.partition_duration = Seconds(10);
  cfg.post_heal = Seconds(5);
  cfg.warmup = Seconds(2);
  cfg.seed = seed;
  return cfg;
}

// --- Omni-Paxos recovers quorum-loss and constrained at every size. ---------

class OmniSizeSweep : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(OmniSizeSweep, QuorumLossRecoversInConstantTime) {
  const auto [servers, seed] = GetParam();
  const PartitionResult r =
      rsm::RunPartition<rsm::OmniNode>(SweepConfig(Scenario::kQuorumLoss, servers, seed));
  EXPECT_TRUE(r.recovered) << servers << " servers, seed " << seed;
  EXPECT_LT(r.downtime, 10 * Millis(50));
  EXPECT_LE(r.leader_elevations, 1u);
}

TEST_P(OmniSizeSweep, ConstrainedElectionRecoversInConstantTime) {
  const auto [servers, seed] = GetParam();
  const PartitionResult r =
      rsm::RunPartition<rsm::OmniNode>(SweepConfig(Scenario::kConstrained, servers, seed));
  EXPECT_TRUE(r.recovered) << servers << " servers, seed " << seed;
  EXPECT_LT(r.downtime, 10 * Millis(50));
}

INSTANTIATE_TEST_SUITE_P(Sizes, OmniSizeSweep,
                         ::testing::Combine(::testing::Values(3, 5, 7),
                                            ::testing::Values(11u, 23u)));

// --- The baselines' failure modes also hold at 7 servers. -------------------

class BaselineSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaselineSizeSweep, VrStillDeadlocksInQuorumLoss) {
  const PartitionResult r =
      rsm::RunPartition<rsm::VrNode>(SweepConfig(Scenario::kQuorumLoss, GetParam(), 31));
  EXPECT_FALSE(r.recovered);
}

TEST_P(BaselineSizeSweep, MultiPaxosStillDeadlocksInQuorumLoss) {
  const PartitionResult r = rsm::RunPartition<rsm::MultiPaxosNode>(
      SweepConfig(Scenario::kQuorumLoss, GetParam(), 31));
  EXPECT_FALSE(r.recovered);
}

TEST_P(BaselineSizeSweep, RaftStillDeadlocksInConstrainedElection) {
  const PartitionResult r =
      rsm::RunPartition<rsm::RaftNode>(SweepConfig(Scenario::kConstrained, GetParam(), 31));
  EXPECT_FALSE(r.recovered);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineSizeSweep, ::testing::Values(5, 7));

// --- Chained with 5 servers (no fully-connected server exists, §2c). --------
//
// The paper notes that with a 5-server chain even protocols that escape the
// 3-server chain (via the fully-connected middle server) can livelock. Here
// we assert the Omni-Paxos side: stable progress with a single leader change
// even when NO server is fully connected.

TEST(OmniChain5, ProgressWithNoFullyConnectedServer) {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 200;
  params.proposal_rate = 20'000;
  params.preferred_leader = 1;
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  sim.RunUntil(Seconds(2));
  ASSERT_EQ(sim.CurrentLeader(), 1);
  // Chain 1-2-3-4-5: only adjacent links stay up. Every server sees at most
  // 2 peers + itself = 3 = majority, so servers 2,3,4 are QC; nobody is
  // fully connected.
  auto& net = sim.network();
  for (NodeId a = 1; a <= 5; ++a) {
    for (NodeId b = a + 1; b <= 5; ++b) {
      if (b != a + 1) {
        net.SetLink(a, b, false);
      }
    }
  }
  const uint64_t decided_at_cut = sim.client().completed();
  sim.RunUntil(Seconds(12));
  const NodeId leader = sim.CurrentLeader();
  // A quorum-connected server leads (an interior node of the chain) and the
  // cluster keeps deciding.
  EXPECT_TRUE(leader == 2 || leader == 3 || leader == 4) << "leader " << leader;
  EXPECT_GT(sim.client().completed(), decided_at_cut + 1000);
  // Down-time bounded by a handful of timeouts, not the partition length.
  EXPECT_LT(sim.client().LongestGap(Seconds(2), Seconds(12)), Seconds(1));
}

// --- VR under deaf/mute servers (§8 discussion, Table 1 one-way columns). ---
//
// A deaf server receives nothing but still transmits; a mute server is the
// reverse. VR's view-change protocol was not designed for one-way faults, so
// liveness degrades — but view integrity (at most one primary per view, the
// trace-level single-leader oracle) must hold regardless. These pin both
// sides: the fault-specific liveness outcome AND the safety property.

rsm::ClusterParams VrSweepParams(obs::ObsSink* sink) {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 200;
  params.proposal_rate = 20'000;
  params.preferred_leader = 1;
  params.obs = sink;
  return params;
}

TEST(VrPartialSweep, DeafFollowerNeverForksViews) {
  obs::ObsSink sink;
  rsm::ClusterSim<rsm::VrNode> sim(VrSweepParams(&sink));
  sim.RunUntil(Seconds(2));
  ASSERT_NE(sim.CurrentLeader(), kNoNode);

  // Server 3 goes deaf: every inbound direction cut, outbound intact. It
  // stops hearing the primary, times out, and spams view changes that the
  // rest of the cluster can hear.
  auto& net = sim.network();
  for (NodeId j = 1; j <= 5; ++j) {
    if (j != 3) {
      net.SetLinkOneWay(j, 3, false);
    }
  }
  sim.RunUntil(Seconds(10));
  net.HealAll();
  sim.RunUntil(Seconds(14));

  // Safety: however many view changes the deaf server provoked, no view ever
  // has two primaries.
  const obs::TraceView trace = obs::TraceView::FromSink(sink);
  const testing::PropertyResult single =
      testing::SingleLeaderPerEpoch(trace, testing::VrLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
#if defined(OPX_OBS_ENABLED)
  // The deaf server's timeouts really did reach the cluster as view-change
  // traffic — the oracle above is not vacuous.
  EXPECT_GT(trace.Filter(obs::EventKind::kVrViewChangeStart).size(), 0u);
#endif
  // After the heal the cluster converges on one primary and serves again.
  EXPECT_NE(sim.CurrentLeader(), kNoNode);
  const uint64_t healed = sim.client().completed();
  sim.RunUntil(Seconds(16));
  EXPECT_GT(sim.client().completed(), healed);
}

TEST(VrPartialSweep, MutePrimaryFailsOverWithoutForkingViews) {
  obs::ObsSink sink;
  rsm::ClusterSim<rsm::VrNode> sim(VrSweepParams(&sink));
  sim.RunUntil(Seconds(2));
  const NodeId primary = sim.CurrentLeader();
  ASSERT_NE(primary, kNoNode);

  // The primary goes mute toward the other servers: its Prepares and
  // heartbeats vanish, so the followers view-change away from it, while it
  // still hears everything (and must yield, not fork).
  auto& net = sim.network();
  for (NodeId j = 1; j <= 5; ++j) {
    if (j != primary) {
      net.SetLinkOneWay(primary, j, false);
    }
  }
  sim.RunUntil(Seconds(10));

  const NodeId new_primary = sim.CurrentLeader();
  EXPECT_NE(new_primary, kNoNode);
  EXPECT_NE(new_primary, primary);

  const obs::TraceView trace = obs::TraceView::FromSink(sink);
  const testing::PropertyResult single =
      testing::SingleLeaderPerEpoch(trace, testing::VrLeaderKinds());
  EXPECT_TRUE(single.ok) << single.detail;
#if defined(OPX_OBS_ENABLED)
  // The failover is in the trace: some view completed with a new primary.
  EXPECT_GT(trace.Filter(obs::EventKind::kVrLeader).size(), 0u);
#endif

  net.HealAll();
  const uint64_t healed = sim.client().completed();
  sim.RunUntil(Seconds(14));
  EXPECT_GT(sim.client().completed(), healed);
  const testing::PropertyResult still_single = testing::SingleLeaderPerEpoch(
      obs::TraceView::FromSink(sink), testing::VrLeaderKinds());
  EXPECT_TRUE(still_single.ok) << still_single.detail;
}

}  // namespace
}  // namespace opx
