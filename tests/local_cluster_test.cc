// Tests for LocalCluster, the public in-process entry point used by library
// consumers and the examples — including the apply callback that drives user
// state machines, and the half-duplex behaviour discussed in §8.
#include <gtest/gtest.h>

#include <vector>

#include "src/kvstore/kv_store.h"
#include "src/rsm/adapters.h"
#include "src/rsm/cluster_sim.h"
#include "src/rsm/local_cluster.h"

namespace opx {
namespace {

using rsm::LocalCluster;

TEST(LocalCluster, ElectLeaderReturnsLeader) {
  LocalCluster cluster(3);
  const NodeId leader = cluster.ElectLeader();
  ASSERT_NE(leader, kNoNode);
  EXPECT_TRUE(cluster.node(leader).IsLeader());
}

TEST(LocalCluster, PriorityNodeWinsFirstElection) {
  LocalCluster cluster(5, /*leader_priority_node=*/4);
  EXPECT_EQ(cluster.ElectLeader(), 4);
}

TEST(LocalCluster, ApplyCallbackSeesDecidedEntriesInOrder) {
  LocalCluster cluster(3);
  std::vector<std::vector<uint64_t>> applied(4);
  cluster.set_apply([&](NodeId server, LogIndex, const omni::Entry& e) {
    applied[static_cast<size_t>(server)].push_back(e.cmd_id);
  });
  const NodeId leader = cluster.ElectLeader();
  for (uint64_t cmd = 1; cmd <= 5; ++cmd) {
    cluster.Append(leader, cmd);
  }
  const std::vector<uint64_t> expected{1, 2, 3, 4, 5};
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_EQ(applied[static_cast<size_t>(id)], expected) << "server " << id;
  }
}

TEST(LocalCluster, FollowerAppendForwardsToLeader) {
  LocalCluster cluster(3, 1);
  ASSERT_EQ(cluster.ElectLeader(), 1);
  EXPECT_TRUE(cluster.Append(2, 77));
  cluster.Step();
  cluster.Step();
  EXPECT_EQ(cluster.node(1).decided_idx(), 1u);
}

TEST(LocalCluster, RestartReplaysDecidedEntries) {
  LocalCluster cluster(3, 1);
  std::vector<uint64_t> replayed;
  cluster.set_apply([&](NodeId server, LogIndex, const omni::Entry& e) {
    if (server == 3) {
      replayed.push_back(e.cmd_id);
    }
  });
  ASSERT_EQ(cluster.ElectLeader(), 1);
  cluster.Append(1, 1);
  cluster.Append(1, 2);
  cluster.Crash(3);
  cluster.Append(1, 3);
  cluster.Restart(3);
  cluster.Tick();
  // Server 3 re-applies from scratch after recovery: 1,2 (before crash),
  // then 1,2,3 again on replay.
  const std::vector<uint64_t> expected{1, 2, 1, 2, 3};
  EXPECT_EQ(replayed, expected);
}

TEST(LocalCluster, KvStateMachineConvergesAcrossFaults) {
  LocalCluster cluster(5, 1);
  kv::CommandLog commands;
  std::vector<kv::KvStore> stores(6);
  cluster.set_apply([&](NodeId server, LogIndex, const omni::Entry& e) {
    if (e.cmd_id != 0 && !e.IsStopSign()) {
      stores[static_cast<size_t>(server)].Apply(commands.Lookup(e.cmd_id));
    }
  });
  NodeId leader = cluster.ElectLeader();
  auto put = [&](const std::string& key, int64_t value) {
    kv::Command c;
    c.type = kv::OpType::kPut;
    c.key = key;
    c.value = value;
    cluster.Append(leader, commands.Register(c));
  };
  put("a", 1);
  put("b", 2);
  cluster.Crash(leader);
  leader = cluster.ElectLeader();
  ASSERT_NE(leader, kNoNode);
  put("c", 3);
  put("a", 10);
  cluster.TickRounds(2);
  uint64_t digest = 0;
  for (NodeId id = 1; id <= 5; ++id) {
    if (cluster.IsCrashed(id)) {
      continue;
    }
    if (digest == 0) {
      digest = stores[static_cast<size_t>(id)].Digest();
    } else {
      EXPECT_EQ(stores[static_cast<size_t>(id)].Digest(), digest) << "server " << id;
    }
  }
}

// --- Half-duplex partial connectivity (§8). --------------------------------
//
// The leader must be quorum-connected over FULL-duplex links: BLE's heartbeat
// request/response pattern requires both directions, so a leader whose
// outbound links fail is detected (its replies never arrive) and replaced,
// even though it can still hear everyone.

TEST(HalfDuplex, LeaderWithOutboundOnlyFailureIsReplaced) {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 100;
  params.proposal_rate = 10'000;
  params.preferred_leader = 1;
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  sim.RunUntil(Seconds(2));
  ASSERT_EQ(sim.CurrentLeader(), 1);
  const uint64_t before = sim.client().completed();
  // Half-duplex fault: server 1 can still receive, but nothing it sends gets
  // out (e.g., an asymmetric firewall rule).
  for (NodeId other = 2; other <= 5; ++other) {
    sim.network().SetLinkOneWay(1, other, false);
  }
  sim.RunUntil(Seconds(6));
  const NodeId new_leader = sim.CurrentLeader();
  EXPECT_NE(new_leader, 1);
  EXPECT_NE(new_leader, kNoNode);
  EXPECT_GT(sim.client().completed(), before);  // progress resumed
}

TEST(HalfDuplex, FollowerWithInboundOnlyFailureDoesNotDisrupt) {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.concurrent_proposals = 100;
  params.proposal_rate = 10'000;
  params.preferred_leader = 1;
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  sim.RunUntil(Seconds(2));
  ASSERT_EQ(sim.CurrentLeader(), 1);
  // Server 5 stops hearing anyone (inbound cut), but its sends still arrive.
  // It is no longer QC (no heartbeat replies reach it), cannot elect or be a
  // candidate problemmaker, and the rest keep a stable leader.
  for (NodeId other = 1; other <= 4; ++other) {
    sim.network().SetLinkOneWay(other, 5, false);
  }
  const uint64_t before = sim.client().completed();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.CurrentLeader(), 1);
  EXPECT_GT(sim.client().completed(), before);
}

}  // namespace
}  // namespace opx
