// Tests for the minimal flag parser used by the CLI tools.
#include <gtest/gtest.h>

#include "src/util/flags.h"

namespace opx {
namespace {

Flags Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = Parse({"--id=3", "--wal=/tmp/x.wal"});
  EXPECT_EQ(flags.GetInt("id", 0), 3);
  EXPECT_EQ(flags.GetString("wal", ""), "/tmp/x.wal");
}

TEST(Flags, SpaceForm) {
  const Flags flags = Parse({"--port", "7001", "--host", "localhost"});
  EXPECT_EQ(flags.GetInt("port", 0), 7001);
  EXPECT_EQ(flags.GetString("host", ""), "localhost");
}

TEST(Flags, BareBooleans) {
  const Flags flags = Parse({"--status", "--verbose=false"});
  EXPECT_TRUE(flags.GetBool("status", false));
  EXPECT_FALSE(flags.GetBool("verbose", true));
  EXPECT_TRUE(flags.GetBool("missing", true));  // default respected
}

TEST(Flags, Positional) {
  const Flags flags = Parse({"file.wal", "--tail=5", "other"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file.wal");
  EXPECT_EQ(flags.positional()[1], "other");
  EXPECT_EQ(flags.GetInt("tail", 0), 5);
}

TEST(Flags, DoublesAndDefaults) {
  const Flags flags = Parse({"--rate=2.5e6"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5e6);
  EXPECT_DOUBLE_EQ(flags.GetDouble("other", 1.25), 1.25);
  EXPECT_FALSE(flags.Has("other"));
  EXPECT_TRUE(flags.Has("rate"));
}

TEST(Flags, BooleanFollowedByFlagNotConsumed) {
  const Flags flags = Parse({"--quick", "--count=3"});
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_EQ(flags.GetInt("count", 0), 3);
}

}  // namespace
}  // namespace opx
