// Unit tests for Ballot Leader Election in isolation (no SequencePaxos):
// quorum-connectivity evaluation, checkLeader rules, takeover bumps, priority
// tie-breaks, and the LE1–LE3 properties of §5.1.
#include <gtest/gtest.h>

#include "src/omnipaxos/ble.h"

namespace opx {
namespace {

using omni::Ballot;
using omni::BallotLeaderElection;
using omni::BleConfig;
using omni::BleMessage;
using omni::BleOut;
using omni::HeartbeatReply;
using omni::HeartbeatRequest;

BleConfig Config(NodeId pid, std::vector<NodeId> peers, uint32_t priority = 0) {
  BleConfig cfg;
  cfg.pid = pid;
  cfg.peers = std::move(peers);
  cfg.priority = priority;
  return cfg;
}

// Feeds one full round: Tick (starts round), replies, Tick (evaluates).
void Round(BallotLeaderElection& ble, const std::vector<HeartbeatReply>& replies,
           const std::vector<NodeId>& froms) {
  ble.Tick();
  (void)ble.TakeOutgoing();
  for (size_t i = 0; i < replies.size(); ++i) {
    HeartbeatReply r = replies[i];
    r.round = ble.round();
    ble.Handle(froms[i], r);
  }
}

TEST(Ble, FirstTickBroadcastsRequests) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  ble.Tick();
  const std::vector<BleOut> out = ble.TakeOutgoing();
  ASSERT_EQ(out.size(), 2u);
  for (const BleOut& o : out) {
    EXPECT_TRUE(std::holds_alternative<HeartbeatRequest>(o.body));
  }
}

TEST(Ble, RepliesCarryBallotAndQcFlag) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  ble.Tick();
  (void)ble.TakeOutgoing();
  ble.Handle(2, HeartbeatRequest{1});
  const std::vector<BleOut> out = ble.TakeOutgoing();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<HeartbeatReply>(out[0].body);
  EXPECT_EQ(reply.ballot.pid, 1);
  EXPECT_TRUE(reply.quorum_connected);  // optimistic before the first round ends
}

TEST(Ble, ElectsHighestBallotAmongQcCandidates) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();  // evaluate
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->pid, 3);  // (0,0,3) is the max ballot
}

TEST(Ble, PriorityBreaksTies) {
  BallotLeaderElection ble(Config(1, {2, 3}, /*priority=*/5));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->pid, 1);  // own ballot (0,5,1) beats (0,0,3)
}

TEST(Ble, NonQcPeersAreNotCandidates) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{9, 0, 2}, false}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_NE(elected->pid, 2);  // the higher ballot is not QC
}

TEST(Ble, NoMajorityNoElectionAndNotQc) {
  BallotLeaderElection ble(Config(1, {2, 3, 4, 5}));  // majority = 3
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});      // only 1 reply + self = 2
  ble.Tick();
  EXPECT_FALSE(ble.TakeLeaderEvent().has_value());
  EXPECT_FALSE(ble.quorum_connected());
}

TEST(Ble, DuplicateRepliesFromOnePeerCannotFakeQuorum) {
  // 5 servers, majority = 3. One peer retransmitting its reply must count
  // once: two distinct responders + self = 2 < 3, so no QC and no election.
  BallotLeaderElection ble(Config(1, {2, 3, 4, 5}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 2}, true},
              {0, Ballot{0, 0, 2}, true}},
        {2, 2, 2});
  ble.Tick();
  EXPECT_FALSE(ble.quorum_connected());
  EXPECT_FALSE(ble.TakeLeaderEvent().has_value());
}

TEST(Ble, DuplicateRepliesDoNotMaskDistinctResponders) {
  // Duplicates are dropped but genuinely distinct responders still count:
  // peers 2 and 3 (one duplicated) + self = 3 = majority.
  BallotLeaderElection ble(Config(1, {2, 3, 4, 5}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 2}, true},
              {0, Ballot{0, 0, 3}, true}},
        {2, 2, 3});
  ble.Tick();
  EXPECT_TRUE(ble.quorum_connected());
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->pid, 3);
}

TEST(Ble, LateRepliesAreIgnored) {
  BallotLeaderElection ble(Config(1, {2, 3, 4, 5}));
  ble.Tick();
  (void)ble.TakeOutgoing();
  const uint64_t old_round = ble.round();
  ble.Tick();  // round advances; replies to old_round are late now
  ble.Handle(2, HeartbeatReply{old_round, Ballot{0, 0, 2}, true});
  ble.Handle(3, HeartbeatReply{old_round, Ballot{0, 0, 3}, true});
  ble.Tick();
  EXPECT_FALSE(ble.TakeLeaderEvent().has_value());
}

TEST(Ble, LeaderLossTriggersBallotBump) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  // Elect server 3.
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  ASSERT_EQ(ble.TakeLeaderEvent()->pid, 3);
  const uint64_t n_before = ble.current_ballot().n;
  // Next round: 3's heartbeat missing (dead or disconnected).
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
  ble.Tick();
  EXPECT_GT(ble.current_ballot().n, n_before);  // takeover attempt
  // And one round later we elect ourselves with the bumped ballot.
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
  ble.Tick();
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->pid, 1);
}

TEST(Ble, LeaderLosingQcFlagTriggersTakeover) {
  // Quorum-loss essence (Fig. 5a): the leader is alive but reports qc=false.
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  ASSERT_EQ(ble.TakeLeaderEvent()->pid, 3);
  const uint64_t n_before = ble.current_ballot().n;
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, false}}, {2, 3});
  ble.Tick();
  EXPECT_GT(ble.current_ballot().n, n_before);
}

TEST(Ble, ElectedBallotsStrictlyIncrease) {
  // LE3 over a sequence of takeovers and failures.
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  Ballot last = *ble.TakeLeaderEvent();
  for (int k = 0; k < 3; ++k) {
    // Server 2 takes over with a higher ballot.
    const Ballot takeover{last.n + 5, 0, 2};
    Round(ble, {{0, takeover, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
    ble.Tick();
    auto elected = ble.TakeLeaderEvent();
    ASSERT_TRUE(elected.has_value());
    EXPECT_GT(*elected, last);
    last = *elected;
    // Server 2 vanishes: we bump past its ballot and elect ourselves.
    Round(ble, {{0, Ballot{0, 0, 3}, true}}, {3});
    ble.Tick();
    Round(ble, {{0, Ballot{0, 0, 3}, true}}, {3});
    ble.Tick();
    elected = ble.TakeLeaderEvent();
    ASSERT_TRUE(elected.has_value());
    EXPECT_GT(*elected, last);
    EXPECT_EQ(elected->pid, 1);
    last = *elected;
    // Server 2 returns with its now-stale ballot: never re-elected (LE3).
    Round(ble, {{0, takeover, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
    ble.Tick();
    EXPECT_FALSE(ble.TakeLeaderEvent().has_value());
  }
}

TEST(Ble, StableLeaderNoSpuriousEvents) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
  ble.Tick();
  ASSERT_TRUE(ble.TakeLeaderEvent().has_value());
  for (int round = 0; round < 10; ++round) {
    Round(ble, {{0, Ballot{0, 0, 2}, true}, {0, Ballot{0, 0, 3}, true}}, {2, 3});
    ble.Tick();
    EXPECT_FALSE(ble.TakeLeaderEvent().has_value()) << "round " << round;
  }
}

TEST(Ble, RecoveredServerResumesBallotCounter) {
  // A recovering server must resume at least at its persisted promised round
  // (liveness: its future elections must be able to exceed replication-layer
  // promises).
  BleConfig cfg = Config(1, {2, 3});
  cfg.initial_n = 42;
  cfg.recovered = true;
  BallotLeaderElection ble(cfg);
  EXPECT_EQ(ble.current_ballot().n, 42u);
  // Elect the higher peer, then lose it (only the lower peer remains): the
  // takeover bump must exceed the resumed counter (42), not restart at zero.
  Round(ble, {{0, Ballot{0, 0, 3}, true}}, {3});
  ble.Tick();
  ASSERT_TRUE(ble.TakeLeaderEvent().has_value());
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});  // leader 3 vanished
  ble.Tick();
  EXPECT_GT(ble.current_ballot().n, 42u);
}

TEST(Ble, RecoveredServerRenouncesCandidacyUntilBump) {
  // The resumed ballot must not be electable: the server may have used that
  // round before the crash and cannot safely re-run it. Its heartbeat
  // replies carry qc=false until the first fresh ballot.
  BleConfig cfg = Config(1, {2, 3});
  cfg.initial_n = 10;
  cfg.recovered = true;
  BallotLeaderElection ble(cfg);
  ble.Tick();
  (void)ble.TakeOutgoing();
  ble.Handle(2, HeartbeatRequest{1});
  const auto out = ble.TakeOutgoing();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<HeartbeatReply>(out[0].body).quorum_connected);
  // It also never elects itself with the resumed ballot: peers with lower
  // ballots are the only candidates.
  Round(ble, {{0, Ballot{3, 0, 2}, true}, {0, Ballot{2, 0, 3}, true}}, {2, 3});
  ble.Tick();
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_NE(elected->pid, 1);
  // After bumping (leader loss), candidacy returns with a fresh ballot.
  Round(ble, {{0, Ballot{2, 0, 3}, true}}, {3});
  ble.Tick();  // bump
  Round(ble, {{0, Ballot{2, 0, 3}, true}}, {3});
  ble.Tick();
  ble.Handle(2, HeartbeatRequest{ble.round()});
  bool qc_seen = false;
  for (const BleOut& o : ble.TakeOutgoing()) {
    if (const auto* reply = std::get_if<HeartbeatReply>(&o.body)) {
      qc_seen = reply->quorum_connected;
    }
  }
  EXPECT_TRUE(qc_seen);
}

TEST(Ble, LeaseRenewedByMajorityRounds) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  ble.Tick();
  (void)ble.TakeOutgoing();
  ble.Tick();  // a full round passes with no replies: no lease
  EXPECT_FALSE(ble.HoldsLease());
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});  // 1 reply + self = majority
  ble.Tick();  // evaluate: majority round renews the lease
  EXPECT_TRUE(ble.HoldsLease());
  // Every further majority round keeps the lease alive.
  for (int i = 0; i < 5; ++i) {
    Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
    ble.Tick();
    EXPECT_TRUE(ble.HoldsLease());
  }
}

TEST(Ble, LeaseLapsesWithoutMajority) {
  BallotLeaderElection ble(Config(1, {2, 3}));
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
  ble.Tick();
  ASSERT_TRUE(ble.HoldsLease());
  // Cut off: the next round ends with no replies. The default lease
  // (lease_rounds = 1) covered exactly one round past the last majority, so
  // evaluating the silent round advances past it.
  ble.Tick();
  EXPECT_FALSE(ble.HoldsLease());
}

TEST(Ble, ZeroLeaseRoundsDisablesLease) {
  BleConfig cfg = Config(1, {2, 3});
  cfg.lease_rounds = 0;
  BallotLeaderElection ble(cfg);
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
  ble.Tick();
  EXPECT_TRUE(ble.quorum_connected());  // connectivity unaffected
  EXPECT_FALSE(ble.HoldsLease());       // but local reads stay off
}

TEST(Ble, LongerLeaseCoversConfiguredSilentRounds) {
  BleConfig cfg = Config(1, {2, 3});
  cfg.lease_rounds = 3;
  BallotLeaderElection ble(cfg);
  Round(ble, {{0, Ballot{0, 0, 2}, true}}, {2});
  ble.Tick();  // renews: the lease covers the next 3 rounds
  EXPECT_TRUE(ble.HoldsLease());
  ble.Tick();  // silent round 1
  EXPECT_TRUE(ble.HoldsLease());
  ble.Tick();  // silent round 2
  EXPECT_TRUE(ble.HoldsLease());
  ble.Tick();  // silent round 3: lease exhausted
  EXPECT_FALSE(ble.HoldsLease());
}

TEST(Ble, SingleServerElectsItself) {
  BallotLeaderElection ble(Config(1, {}));
  ble.Tick();
  ble.Tick();
  const auto elected = ble.TakeLeaderEvent();
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->pid, 1);
}

}  // namespace
}  // namespace opx
