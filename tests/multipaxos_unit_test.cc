// Message-level Multi-Paxos unit tests: promise/NACK rules, the
// ack-watermark safety invariant, Phase-1 adoption, and gap repair.
#include <gtest/gtest.h>

#include "src/multipaxos/multipaxos.h"

namespace opx {
namespace {

using mpx::Ballot;
using mpx::Commit;
using mpx::Entry;
using mpx::LearnReq;
using mpx::LearnResp;
using mpx::MpxConfig;
using mpx::MpxMessage;
using mpx::MultiPaxos;
using mpx::Nack;
using mpx::P1a;
using mpx::P1b;
using mpx::P2a;
using mpx::P2b;
using mpx::SlotValue;

MpxConfig Config3(NodeId pid) {
  MpxConfig cfg;
  cfg.pid = pid;
  for (NodeId p = 1; p <= 3; ++p) {
    if (p != pid) {
      cfg.peers.push_back(p);
    }
  }
  cfg.seed = 7 + static_cast<uint64_t>(pid);
  return cfg;
}

template <typename T>
std::vector<T> TakeOfType(MultiPaxos& node) {
  std::vector<T> found;
  for (mpx::MpxOut& out : node.TakeOutgoing()) {
    if (auto* m = std::get_if<T>(&out.body)) {
      found.push_back(std::move(*m));
    }
  }
  return found;
}

TEST(MpxUnit, LowerBallotP1aNacked) {
  MultiPaxos node(Config3(2));
  node.Handle(1, MpxMessage(P1a{Ballot{5, 0, 1}, 0}));
  EXPECT_EQ(TakeOfType<P1b>(node).size(), 1u);
  node.Handle(3, MpxMessage(P1a{Ballot{2, 0, 3}, 0}));
  const auto nacks = TakeOfType<Nack>(node);
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0].promised, (Ballot{5, 0, 1}));
}

TEST(MpxUnit, P1bCarriesAcceptedSuffixAboveRequestedWatermark) {
  MultiPaxos node(Config3(2));
  // Accept three slots in ballot (1,0,1).
  P2a p2a;
  p2a.b = Ballot{1, 0, 1};
  p2a.first_slot = 0;
  p2a.values = {Entry::Command(1, 8), Entry::Command(2, 8), Entry::Command(3, 8)};
  p2a.commit = 2;
  node.Handle(1, MpxMessage(p2a));
  (void)node.TakeOutgoing();
  // New candidate asks with watermark 1: slots 1 and 2 are reported.
  node.Handle(3, MpxMessage(P1a{Ballot{2, 0, 3}, 1}));
  const auto promises = TakeOfType<P1b>(node);
  ASSERT_EQ(promises.size(), 1u);
  ASSERT_EQ(promises[0].accepted.size(), 2u);
  EXPECT_EQ(promises[0].accepted[0].slot, 1u);
  EXPECT_EQ(promises[0].accepted[0].value.cmd_id, 2u);
  EXPECT_EQ(promises[0].decided, 2u);
}

TEST(MpxUnit, AckWatermarkStopsAtStaleBallotSlots) {
  // The acceptor must not acknowledge slots whose values are from an older
  // ballot (the divergence bug the chaos tests caught).
  MultiPaxos node(Config3(2));
  // Slots 0..2 accepted at ballot (1,0,1), nothing decided.
  P2a old;
  old.b = Ballot{1, 0, 1};
  old.first_slot = 0;
  old.values = {Entry::Command(1, 8), Entry::Command(2, 8), Entry::Command(3, 8)};
  node.Handle(1, MpxMessage(old));
  (void)node.TakeOutgoing();
  // A new leader (3,0,3) sends only slot 3 — slots 0..2 still hold old-ballot
  // values the new leader never re-sent.
  P2a fresh;
  fresh.b = Ballot{3, 0, 3};
  fresh.first_slot = 3;
  fresh.values = {Entry::Command(99, 8)};
  fresh.commit = 0;
  node.Handle(3, MpxMessage(fresh));
  const auto acks = TakeOfType<P2b>(node);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].up_to, 0u);  // nothing certifiable in ballot (3,0,3)
}

TEST(MpxUnit, CommitBeyondHoldingsTriggersLearnReqFromDecided) {
  MultiPaxos node(Config3(2));
  P2a p2a;
  p2a.b = Ballot{1, 0, 1};
  p2a.first_slot = 0;
  p2a.values = {Entry::Command(1, 8)};
  node.Handle(1, MpxMessage(p2a));
  (void)node.TakeOutgoing();
  // Leader claims 5 chosen slots; we hold 1.
  node.Handle(1, MpxMessage(Commit{Ballot{1, 0, 1}, 5}));
  const auto reqs = TakeOfType<LearnReq>(node);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].from_slot, 1u);  // from our decided watermark
  EXPECT_EQ(node.decided_idx(), 1u);
}

TEST(MpxUnit, LearnRespInstallsChosenPrefix) {
  MultiPaxos node(Config3(2));
  node.Handle(1, MpxMessage(P1a{Ballot{1, 0, 1}, 0}));  // promise the ballot
  (void)node.TakeOutgoing();
  LearnResp resp;
  resp.first_slot = 0;
  resp.values = {Entry::Command(1, 8), Entry::Command(2, 8)};
  resp.commit = 2;
  node.Handle(1, MpxMessage(resp));
  EXPECT_EQ(node.decided_idx(), 2u);
  EXPECT_EQ(node.log()[1].cmd_id, 2u);
}

TEST(MpxUnit, TakeoverAdoptsHighestBallotValuePerSlot) {
  // 5 servers: the Phase-1 majority (3) needs both remote promises, so the
  // adoption must compare their per-slot ballots.
  MpxConfig cfg;
  cfg.pid = 1;
  cfg.peers = {2, 3, 4, 5};
  cfg.seed = 9;
  MultiPaxos node(cfg);
  // Force a takeover: tick until Phase 1 starts.
  for (int i = 0; i < 20 && node.role() == mpx::MpxRole::kFollower; ++i) {
    node.Tick();
  }
  (void)node.TakeOutgoing();
  ASSERT_EQ(node.role(), mpx::MpxRole::kPhase1);
  const Ballot b = node.ballot();
  // Two promises report conflicting values for slot 0 at different ballots.
  P1b low;
  low.b = b;
  low.accepted = {SlotValue{0, Ballot{1, 0, 2}, Entry::Command(100, 8)}};
  node.Handle(2, MpxMessage(low));
  P1b high;
  high.b = b;
  high.accepted = {SlotValue{0, Ballot{2, 0, 3}, Entry::Command(200, 8)}};
  node.Handle(3, MpxMessage(high));
  (void)node.TakeOutgoing();
  ASSERT_TRUE(node.IsLeader());
  ASSERT_GE(node.log_len(), 1u);
  EXPECT_EQ(node.log()[0].cmd_id, 200u);  // the higher-ballot value wins
}

TEST(MpxUnit, GapInP2aRequestsRepairInsteadOfAppending) {
  MultiPaxos node(Config3(2));
  P2a gap;
  gap.b = Ballot{1, 0, 1};
  gap.first_slot = 10;  // we have nothing
  gap.values = {Entry::Command(11, 8)};
  node.Handle(1, MpxMessage(gap));
  EXPECT_EQ(node.log_len(), 0u);
  const auto reqs = TakeOfType<LearnReq>(node);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].from_slot, 0u);
}

}  // namespace
}  // namespace opx
