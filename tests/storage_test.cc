// Unit tests for Storage (the persistent state of a Sequence Paxos server)
// and the Entry/Ballot primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "src/omnipaxos/ballot.h"
#include "src/omnipaxos/entry.h"
#include "src/omnipaxos/storage.h"

namespace opx {
namespace {

using omni::Ballot;
using omni::Entry;
using omni::StopSign;
using omni::Storage;

TEST(Ballot, TotalOrderLexicographic) {
  EXPECT_LT((Ballot{1, 0, 5}), (Ballot{2, 0, 1}));   // n dominates
  EXPECT_LT((Ballot{1, 1, 5}), (Ballot{1, 2, 1}));   // then priority
  EXPECT_LT((Ballot{1, 1, 2}), (Ballot{1, 1, 3}));   // then pid
  EXPECT_EQ((Ballot{1, 1, 2}), (Ballot{1, 1, 2}));
  EXPECT_GE((Ballot{2, 0, 0}), (Ballot{1, 9, 9}));
}

TEST(Ballot, NullBallotSmallerThanAll) {
  EXPECT_LT(omni::kNullBallot, (Ballot{0, 0, 1}));
  EXPECT_LT(omni::kNullBallot, (Ballot{1, 0, 0}));
}

TEST(Entry, CommandAndStopSign) {
  const Entry cmd = Entry::Command(42, 8);
  EXPECT_FALSE(cmd.IsStopSign());
  EXPECT_EQ(cmd.cmd_id, 42u);

  StopSign ss;
  ss.next_config = 2;
  ss.next_nodes = {1, 2, 6};
  const Entry stop = Entry::Stop(ss);
  EXPECT_TRUE(stop.IsStopSign());
  EXPECT_EQ(stop.stop_sign->next_nodes.size(), 3u);
}

TEST(Entry, EqualityComparesPayloadAndKind) {
  EXPECT_EQ(Entry::Command(1, 8), Entry::Command(1, 8));
  EXPECT_NE(Entry::Command(1, 8), Entry::Command(2, 8));
  StopSign ss;
  ss.next_config = 1;
  EXPECT_NE(Entry::Command(0, 8), Entry::Stop(ss));
  EXPECT_EQ(Entry::Stop(ss), Entry::Stop(ss));
}

TEST(Entry, WireBytesScaleWithPayload) {
  EXPECT_GT(omni::EntryWireBytes(Entry::Command(1, 100)),
            omni::EntryWireBytes(Entry::Command(1, 8)));
  std::vector<Entry> batch{Entry::Command(1, 8), Entry::Command(2, 8)};
  EXPECT_EQ(omni::EntriesWireBytes(batch), 2 * omni::EntryWireBytes(batch[0]));
}

TEST(Storage, AppendAndRead) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.Append(Entry::Command(2, 8));
  EXPECT_EQ(storage.log_len(), 2u);
  EXPECT_EQ(storage.At(0).cmd_id, 1u);
  EXPECT_EQ(storage.At(1).cmd_id, 2u);
}

TEST(Storage, SuffixCopies) {
  Storage storage;
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  const auto suffix = storage.Suffix(3);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0].cmd_id, 4u);
  EXPECT_EQ(suffix[1].cmd_id, 5u);
  EXPECT_TRUE(storage.Suffix(5).empty());
  EXPECT_TRUE(storage.Suffix(99).empty());
}

TEST(Storage, TruncateAndAppendReplacesTail) {
  Storage storage;
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.TruncateAndAppend(2, {Entry::Command(100, 8), Entry::Command(101, 8)});
  ASSERT_EQ(storage.log_len(), 4u);
  EXPECT_EQ(storage.At(1).cmd_id, 2u);
  EXPECT_EQ(storage.At(2).cmd_id, 100u);
  EXPECT_EQ(storage.At(3).cmd_id, 101u);
}

TEST(Storage, DecidedIndexMonotonicAndBounded) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  storage.Append(Entry::Command(2, 8));
  storage.set_decided_idx(1);
  EXPECT_EQ(storage.decided_idx(), 1u);
  storage.set_decided_idx(2);
  EXPECT_EQ(storage.decided_idx(), 2u);
  EXPECT_DEATH(storage.set_decided_idx(1), "CHECK failed");   // regression
  EXPECT_DEATH(storage.set_decided_idx(3), "CHECK failed");   // beyond log
}

TEST(Storage, TruncateBelowDecidedForbidden) {
  Storage storage;
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(3);
  EXPECT_DEATH(storage.TruncateAndAppend(2, {}), "CHECK failed");  // SC3 guard
}

TEST(Storage, SharedSuffixMatchesSuffix) {
  Storage storage;
  for (uint64_t i = 1; i <= 5; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  for (LogIndex from = 0; from <= 6; ++from) {
    const auto copy = storage.Suffix(from);
    const omni::EntrySegment shared = storage.SharedSuffix(from);
    ASSERT_EQ(shared.size(), copy.size()) << "from=" << from;
    EXPECT_TRUE(std::equal(shared.begin(), shared.end(), copy.begin())) << "from=" << from;
  }
  EXPECT_TRUE(storage.SharedSuffix(5).empty());
  EXPECT_TRUE(storage.SharedSuffix(99).empty());
}

TEST(Storage, SharedSuffixSharesOneBufferAcrossOffsets) {
  Storage storage;
  for (uint64_t i = 1; i <= 8; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  // The fan-out pattern: prewarm at the furthest-behind offset, then take
  // per-follower views. All views must alias one buffer, not copy.
  const omni::EntrySegment base = storage.SharedSuffix(2);
  const omni::EntrySegment ahead = storage.SharedSuffix(5);
  ASSERT_EQ(base.size(), 6u);
  ASSERT_EQ(ahead.size(), 3u);
  EXPECT_EQ(ahead.data(), base.data() + 3);  // same underlying snapshot
  EXPECT_EQ(ahead[0].cmd_id, 6u);
}

TEST(Storage, SharedSuffixInvalidatedByMutation) {
  Storage storage;
  storage.Append(Entry::Command(1, 8));
  const omni::EntrySegment before = storage.SharedSuffix(0);
  ASSERT_EQ(before.size(), 1u);
  storage.Append(Entry::Command(2, 8));
  const omni::EntrySegment after = storage.SharedSuffix(0);
  // The old segment is an immutable snapshot: unchanged by the append.
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].cmd_id, 1u);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].cmd_id, 2u);
  EXPECT_NE(after.data(), before.data());
}

TEST(Storage, SharedSuffixAfterTrimRespectsCompaction) {
  Storage storage;
  for (uint64_t i = 1; i <= 6; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(4);
  storage.Trim(3);
  const omni::EntrySegment seg = storage.SharedSuffix(3);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_EQ(seg[0].cmd_id, 4u);
  EXPECT_DEATH((void)storage.SharedSuffix(2), "compacted");
}

TEST(EntrySegment, OwningAndViewSemantics) {
  const omni::EntrySegment empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);

  const omni::EntrySegment owned = {Entry::Command(1, 8), Entry::Command(2, 8)};
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[1].cmd_id, 2u);
  EXPECT_EQ(owned, (omni::EntrySegment{Entry::Command(1, 8), Entry::Command(2, 8)}));
  EXPECT_NE(owned, empty);

  const std::span<const Entry> span = owned;  // implicit, zero-copy
  EXPECT_EQ(span.data(), owned.data());
  EXPECT_EQ(span.size(), 2u);
}

// Opens the protected recovery entry point (normally reserved for persistent
// derived backends) so the tests can drive it directly.
struct RecoveryProbe : Storage {
  using Storage::RestoreForRecovery;
};

// Regression: a trimmed server legally recovers with decided_idx greater than
// the physical suffix length (the trimmed prefix is all decided). The decided
// bound must be against the logical length `compacted + log.size()`; checking
// against log.size() alone rejected every recovery after a trim.
TEST(Storage, RestoreForRecoveryAcceptsTrimmedLog) {
  RecoveryProbe storage;
  std::vector<Entry> suffix{Entry::Command(11, 8), Entry::Command(12, 8),
                            Entry::Command(13, 8)};
  storage.RestoreForRecovery(Ballot{3, 0, 1}, Ballot{3, 0, 1},
                             /*compacted=*/10, suffix, /*decided=*/12);
  EXPECT_EQ(storage.compacted_idx(), 10u);
  EXPECT_EQ(storage.log_len(), 13u);
  EXPECT_EQ(storage.decided_idx(), 12u);
  EXPECT_EQ(storage.At(10).cmd_id, 11u);
  EXPECT_EQ(storage.At(12).cmd_id, 13u);
}

TEST(Storage, RestoreForRecoveryBoundsDecidedByLogicalLength) {
  RecoveryProbe below;
  EXPECT_DEATH(below.RestoreForRecovery(Ballot{}, Ballot{}, /*compacted=*/10,
                                        {Entry::Command(11, 8)}, /*decided=*/9),
               "compaction floor");
  RecoveryProbe beyond;
  EXPECT_DEATH(beyond.RestoreForRecovery(Ballot{}, Ballot{}, /*compacted=*/10,
                                         {Entry::Command(11, 8)}, /*decided=*/12),
               "CHECK failed");
}

TEST(Storage, ResetToSnapshotInstallsAtomically) {
  Storage storage;
  for (uint64_t i = 1; i <= 4; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_promised_round(Ballot{2, 0, 2});
  storage.set_accepted_round(Ballot{2, 0, 2});
  storage.set_decided_idx(2);
  const Ballot shipped{3, 0, 1};
  storage.ResetToSnapshot(shipped, 10, {Entry::Command(11, 8), Entry::Command(12, 8)});
  EXPECT_EQ(storage.compacted_idx(), 10u);
  EXPECT_EQ(storage.decided_idx(), 10u);
  EXPECT_EQ(storage.log_len(), 12u);
  EXPECT_EQ(storage.At(10).cmd_id, 11u);
  // Regression: the accepted round the suffix was shipped under must land
  // with the log — leaving it behind let a later Prepare treat the installed
  // suffix as accepted in the stale round.
  EXPECT_EQ(storage.accepted_round(), shipped);
}

TEST(Storage, ResetToSnapshotValidatesInvariants) {
  // Regression: installing "up to" below the compaction floor would rewind
  // compacted_idx_ and resurrect trimmed slots. compacted <= decided always
  // holds, so the decided-prefix guard is the one that fires.
  Storage trimmed;
  for (uint64_t i = 1; i <= 6; ++i) {
    trimmed.Append(Entry::Command(i, 8));
  }
  trimmed.set_decided_idx(6);
  trimmed.Trim(5);
  EXPECT_DEATH(trimmed.ResetToSnapshot(Ballot{9, 0, 1}, 4, {}), "decided prefix");

  Storage decided;
  decided.Append(Entry::Command(1, 8));
  decided.Append(Entry::Command(2, 8));
  decided.set_decided_idx(2);
  EXPECT_DEATH(decided.ResetToSnapshot(Ballot{9, 0, 1}, 1, {}), "decided prefix");

  Storage rounds;
  rounds.set_accepted_round(Ballot{5, 0, 1});
  EXPECT_DEATH(rounds.ResetToSnapshot(Ballot{4, 0, 1}, 0, {}), "CHECK failed");
}

TEST(Storage, TrimOnlyDecidedPrefixAndIdempotent) {
  Storage storage;
  for (uint64_t i = 1; i <= 6; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  storage.set_decided_idx(4);
  EXPECT_DEATH(storage.Trim(5), "decided prefix");
  storage.Trim(3);
  EXPECT_EQ(storage.compacted_idx(), 3u);
  storage.Trim(3);  // no-op, not an error
  storage.Trim(1);  // below the floor: no-op, not a regression
  EXPECT_EQ(storage.compacted_idx(), 3u);
  EXPECT_EQ(storage.log_len(), 6u);
  EXPECT_EQ(storage.At(3).cmd_id, 4u);
}

// A SharedSuffix segment handed out before a Trim must stay a valid immutable
// snapshot (in-flight fan-out bodies reference it), and the memo must not
// serve that pre-trim buffer for post-trim requests.
TEST(Storage, SharedSuffixSurvivesTrimAndMemoRefreshes) {
  Storage storage;
  for (uint64_t i = 1; i <= 8; ++i) {
    storage.Append(Entry::Command(i, 8));
  }
  const omni::EntrySegment before = storage.SharedSuffix(2);
  ASSERT_EQ(before.size(), 6u);
  storage.set_decided_idx(6);
  storage.Trim(5);
  // The pre-trim segment still reads the old snapshot.
  EXPECT_EQ(before[0].cmd_id, 3u);
  EXPECT_EQ(before[5].cmd_id, 8u);
  // A fresh request re-materializes from the trimmed log (log_version_ bump),
  // with correct logical offsets.
  const omni::EntrySegment after = storage.SharedSuffix(6);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].cmd_id, 7u);
  EXPECT_NE(after.data(), before.data() + 4);
}

TEST(Storage, RoundsMonotonic) {
  Storage storage;
  storage.set_promised_round(Ballot{1, 0, 1});
  storage.set_promised_round(Ballot{1, 0, 1});  // idempotent re-promise
  storage.set_promised_round(Ballot{2, 0, 2});
  EXPECT_DEATH(storage.set_promised_round((Ballot{1, 0, 3})), "CHECK failed");
  storage.set_accepted_round(Ballot{2, 0, 2});
  EXPECT_DEATH(storage.set_accepted_round((Ballot{1, 0, 1})), "CHECK failed");
}

}  // namespace
}  // namespace opx
