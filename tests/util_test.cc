// Unit tests for utilities: deterministic RNG, statistics, time helpers.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace opx {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.Next() == child.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix, AdvancesState) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  // t(4 dof, 95%) = 2.776 → CI half-width = 2.776 * 1.5811 / sqrt(5)
  EXPECT_NEAR(s.ci95_half, 1.9630, 1e-3);
}

TEST(Stats, SummarizeSingleSample) {
  const Summary s = Summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, TCriticalMatchesTable) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(9), 2.262, 1e-3);   // the paper's 10 repetitions
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.960, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 4, 2, 3}, 50), 3.0);  // unsorted input
}

// ---------------------------------------------------------------------------

TEST(TimeHelpers, UnitConversions) {
  EXPECT_EQ(Millis(1), Micros(1000));
  EXPECT_EQ(Seconds(1), Millis(1000));
  EXPECT_EQ(Minutes(2), Seconds(120));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
}

}  // namespace
}  // namespace opx
