// Unit tests for utilities: deterministic RNG, statistics, time helpers, and
// the move-only callable wrapper.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/time.h"
#include "src/util/unique_function.h"

namespace opx {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.Next() == child.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix, AdvancesState) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  // t(4 dof, 95%) = 2.776 → CI half-width = 2.776 * 1.5811 / sqrt(5)
  EXPECT_NEAR(s.ci95_half, 1.9630, 1e-3);
}

TEST(Stats, SummarizeSingleSample) {
  const Summary s = Summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, TCriticalMatchesTable) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(9), 2.262, 1e-3);   // the paper's 10 repetitions
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.960, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 4, 2, 3}, 50), 3.0);  // unsorted input
}

// ---------------------------------------------------------------------------

TEST(TimeHelpers, UnitConversions) {
  EXPECT_EQ(Millis(1), Micros(1000));
  EXPECT_EQ(Seconds(1), Millis(1000));
  EXPECT_EQ(Minutes(2), Seconds(120));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
}

// ---------------------------------------------------------------------------

TEST(UniqueFunction, EmptyByDefaultAndAfterNullAssign) {
  util::UniqueFunction<int()> fn;
  EXPECT_FALSE(fn);
  fn = []() { return 7; };
  EXPECT_TRUE(fn);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(UniqueFunction, InvokesAndForwardsArguments) {
  util::UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  // Rvalue arguments are forwarded, not copied.
  util::UniqueFunction<size_t(std::vector<int>)> takes =
      [](std::vector<int> v) { return v.size(); };
  EXPECT_EQ(takes(std::vector<int>{1, 2, 3}), 3u);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(41);
  util::UniqueFunction<int()> fn = [p = std::move(owned)]() { return *p + 1; };
  EXPECT_EQ(fn(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnershipAndEmptiesSource) {
  int calls = 0;
  util::UniqueFunction<void()> a = [&calls]() { ++calls; };
  util::UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): emptiness is specified
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, DestroysCaptureExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    util::UniqueFunction<void()> fn = [tracker]() {};
    EXPECT_EQ(tracker.use_count(), 2);
    util::UniqueFunction<void()> moved = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);  // moved, not copied
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(UniqueFunction, OversizedCaptureFallsBackToHeapCell) {
  // 256 bytes of capture cannot fit the default 48-byte inline buffer; the
  // callable must still work (one heap cell) and moves must steal the cell.
  struct Big {
    unsigned char bytes[256];
  };
  Big big{};
  big.bytes[255] = 9;
  util::UniqueFunction<int()> fn = [big]() { return int{big.bytes[255]}; };
  util::UniqueFunction<int()> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved(), 9);
}

TEST(UniqueFunction, TinyInlineBufferStillWorks) {
  // InlineBytes below pointer size is clamped to hold the heap-cell pointer.
  util::UniqueFunction<int(), 1> fn = []() { return 3; };
  EXPECT_EQ(fn(), 3);
}

}  // namespace
}  // namespace opx
