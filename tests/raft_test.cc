// Raft baseline tests: elections, log matching, commit safety, PreVote,
// CheckQuorum, and leader-based membership change.
#include <gtest/gtest.h>

#include "src/raft/raft.h"
#include "tests/raft_test_harness.h"

namespace opx {
namespace {

using testing::RaftCluster;

raft::RaftConfig WithOptions(bool pre_vote, bool check_quorum) {
  raft::RaftConfig cfg;
  cfg.pre_vote = pre_vote;
  cfg.check_quorum = check_quorum;
  return cfg;
}

TEST(RaftElection, ThreeServersElectOneLeader) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  EXPECT_NE(cluster.CurrentLeader(), kNoNode);
}

TEST(RaftElection, FiveServersElectOneLeader) {
  RaftCluster cluster(5);
  cluster.TickRounds(30);
  EXPECT_NE(cluster.CurrentLeader(), kNoNode);
}

TEST(RaftElection, LeaderCrashTriggersReelection) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId old_leader = cluster.CurrentLeader();
  ASSERT_NE(old_leader, kNoNode);
  cluster.Crash(old_leader);
  cluster.TickRounds(40);
  const NodeId new_leader = cluster.CurrentLeader();
  EXPECT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, old_leader);
}

TEST(RaftElection, PreVoteDoesNotDisturbTermsWhenPartitioned) {
  RaftCluster cluster(3, WithOptions(/*pre_vote=*/true, /*check_quorum=*/false));
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  const uint64_t term_before = cluster.node(leader).term();
  // Isolate a follower; with PreVote its term must not grow while cut off.
  NodeId follower = leader == 1 ? 2 : 1;
  cluster.Isolate(follower);
  cluster.TickRounds(50);
  EXPECT_EQ(cluster.node(follower).term(), term_before);
  // Rejoin: no leadership disruption.
  cluster.HealAll();
  cluster.TickRounds(10);
  EXPECT_EQ(cluster.CurrentLeader(), leader);
  EXPECT_EQ(cluster.node(leader).term(), term_before);
}

TEST(RaftElection, WithoutPreVoteRejoiningServerDisruptsLeader) {
  RaftCluster cluster(3, WithOptions(/*pre_vote=*/false, /*check_quorum=*/false));
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  const uint64_t term_before = cluster.node(leader).term();
  NodeId follower = leader == 1 ? 2 : 1;
  cluster.Isolate(follower);
  cluster.TickRounds(50);
  EXPECT_GT(cluster.node(follower).term(), term_before);  // kept incrementing
  cluster.HealAll();
  cluster.TickRounds(20);
  // The cluster recovers, but at a higher term (the disruption PreVote
  // prevents).
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_GT(cluster.node(new_leader).term(), term_before);
}

TEST(RaftElection, CheckQuorumLeaderStepsDownWhenIsolated) {
  RaftCluster cluster(3, WithOptions(/*pre_vote=*/false, /*check_quorum=*/true));
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  cluster.Isolate(leader);
  cluster.TickRounds(30);
  EXPECT_FALSE(cluster.node(leader).IsLeader());
}

TEST(RaftElection, WithoutCheckQuorumIsolatedLeaderKeepsRole) {
  RaftCluster cluster(3, WithOptions(/*pre_vote=*/false, /*check_quorum=*/false));
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  cluster.Isolate(leader);
  cluster.TickRounds(30);
  EXPECT_TRUE(cluster.node(leader).IsLeader());
}

TEST(RaftReplication, AppendCommitsOnAllServers) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 10; ++cmd) {
    EXPECT_TRUE(cluster.Append(leader, cmd));
  }
  cluster.TickRounds(2);  // commit index propagates with heartbeats
  for (NodeId id = 1; id <= 3; ++id) {
    // +1 for the leader's no-op entry.
    EXPECT_EQ(cluster.node(id).commit_idx(), 11u) << "server " << id;
  }
}

TEST(RaftReplication, FollowerRejectsAppend) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  NodeId follower = leader == 1 ? 2 : 1;
  EXPECT_FALSE(cluster.node(follower).Append(raft::Entry::Command(1, 8)));
}

TEST(RaftReplication, DivergentFollowerLogIsRepaired) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  cluster.Append(leader, 1);
  // Partition the leader alone with uncommitted appends.
  cluster.Isolate(leader);
  cluster.node(leader).Append(raft::Entry::Command(100, 8));
  cluster.node(leader).Append(raft::Entry::Command(101, 8));
  cluster.Collect();
  cluster.DeliverAll();
  // Other two elect a fresh leader and commit different entries.
  cluster.TickRounds(40);
  const NodeId new_leader = cluster.CurrentLeader();
  ASSERT_NE(new_leader, kNoNode);
  ASSERT_NE(new_leader, leader);
  cluster.Append(new_leader, 200);
  // Heal; the old leader's conflicting suffix is overwritten.
  cluster.HealAll();
  cluster.TickRounds(10);
  const auto& old_log = cluster.node(leader).log();
  const auto& new_log = cluster.node(new_leader).log();
  ASSERT_EQ(old_log.size(), new_log.size());
  for (size_t i = 0; i < new_log.size(); ++i) {
    EXPECT_EQ(old_log[i], new_log[i]) << "index " << i;
  }
}

TEST(RaftReplication, CommitRequiresMajority) {
  RaftCluster cluster(5);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  const LogIndex committed_before = cluster.node(leader).commit_idx();
  // Cut the leader off from all but one follower: 2 < majority(5)=3.
  NodeId kept = kNoNode;
  for (NodeId id = 1; id <= 5 && kept == kNoNode; ++id) {
    if (id != leader) {
      kept = id;
    }
  }
  for (NodeId id = 1; id <= 5; ++id) {
    if (id != leader && id != kept) {
      cluster.SetLink(leader, id, false);
    }
  }
  cluster.Append(leader, 77);
  EXPECT_EQ(cluster.node(leader).commit_idx(), committed_before);
}

TEST(RaftMembership, ReplaceOneServer) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  for (uint64_t cmd = 1; cmd <= 20; ++cmd) {
    cluster.Append(leader, cmd);
  }
  const NodeId fresh = cluster.AddFreshServer();
  // Replace a follower (not the leader) with the fresh server.
  NodeId removed = kNoNode;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader) {
      removed = id;
      break;
    }
  }
  std::vector<NodeId> next;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != removed) {
      next.push_back(id);
    }
  }
  next.push_back(fresh);
  ASSERT_TRUE(cluster.node(leader).ProposeMembership(next));
  cluster.Collect();
  cluster.DeliverAll();
  cluster.TickRounds(3);
  // Change committed at the leader; the removed server is retired by the
  // operator (it no longer receives heartbeats and would otherwise disrupt
  // the cluster with term bumps — authentic Raft behaviour, cf. §7.3).
  ASSERT_TRUE(cluster.node(leader).CommittedMembership().has_value());
  EXPECT_EQ(*cluster.node(leader).CommittedMembership(), next);
  cluster.Crash(removed);
  cluster.TickRounds(40);
  const NodeId steady_leader = cluster.CurrentLeader();
  ASSERT_NE(steady_leader, kNoNode);
  // The fresh server caught up with the full log and learned the membership.
  EXPECT_EQ(cluster.node(fresh).log_len(), cluster.node(steady_leader).log_len());
  EXPECT_EQ(cluster.node(fresh).voters(), next);
  // The new configuration still replicates.
  cluster.Append(steady_leader, 99);
  cluster.TickRounds(2);
  EXPECT_EQ(cluster.node(fresh).commit_idx(), cluster.node(steady_leader).commit_idx());
}

TEST(RaftMembership, LeaderStepsDownWhenReplaced) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  const NodeId fresh = cluster.AddFreshServer();
  std::vector<NodeId> next;
  for (NodeId id = 1; id <= 3; ++id) {
    if (id != leader) {
      next.push_back(id);
    }
  }
  next.push_back(fresh);
  ASSERT_TRUE(cluster.node(leader).ProposeMembership(next));
  cluster.Collect();
  cluster.DeliverAll();
  cluster.TickRounds(5);
  EXPECT_FALSE(cluster.node(leader).IsLeader());
  // The remaining voters elect a leader among themselves.
  cluster.TickRounds(40);
  const NodeId new_leader = cluster.CurrentLeader();
  EXPECT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, leader);
}

TEST(RaftMembership, OnlyOneChangeInFlight) {
  RaftCluster cluster(3);
  cluster.TickRounds(30);
  const NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, kNoNode);
  EXPECT_TRUE(cluster.node(leader).ProposeMembership({1, 2, 3}));
  EXPECT_FALSE(cluster.node(leader).ProposeMembership({1, 2, 3}));
}

}  // namespace
}  // namespace opx
