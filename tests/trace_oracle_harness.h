// Trace-oracle harness: temporal properties checked against obs::TraceView
// captures (DESIGN.md §12).
//
// Each property takes a linearized trace and returns PropertyResult — ok plus
// a human-readable counterexample when violated. Properties are phrased over
// the trace alone, so the same oracle runs against lockstep harness captures,
// ClusterSim runs, and replayed chaos artifacts.
//
// Oracle catalogue:
//   NoAcceptBeforePromiseQuorum — a leader never sends <AcceptDecide> in a
//       ballot it has not first backed with a Promise quorum (SP §4.1 phase
//       order; the trace-level shadow of Appendix A's safety argument).
//   SingleLeaderPerEpoch        — at most one node claims leadership per
//       epoch key (QC single-leader guarantee for BLE; term/view uniqueness
//       for Raft/VR; ballot uniqueness for Multi-Paxos).
//   LeaderUndisturbedAfter      — an established leader is never deposed nor
//       rivalled after a given instant (the §3.1 "PreVote+CheckQuorum does
//       not disturb a live leader" claim).
//   ElectionWithin              — some leader claim lands within a bounded
//       window after an instant (the paper's ~4-timeout recovery bound).
//   SnapshotSafety              — log compaction never loses or reorders
//       decided entries: per node, decided indices are monotone, a Trim never
//       passes the decided index, and the compaction floor (Trim /
//       ResetToSnapshot boundary) never regresses (DESIGN.md §15).
//   ReadYourWrites              — every served lease read's serialization
//       point covers the client watermark it carried, and serve points are
//       globally monotone (a stale-lease leader serving old state would
//       break monotonicity).
#ifndef TESTS_TRACE_ORACLE_HARNESS_H_
#define TESTS_TRACE_ORACLE_HARNESS_H_

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/obs/trace_view.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx::testing {

struct PropertyResult {
  bool ok = true;
  std::string detail;

  explicit operator bool() const { return ok; }
};

inline PropertyResult PropertyPass() { return PropertyResult{}; }

inline PropertyResult PropertyFail(std::string detail) {
  return PropertyResult{false, std::move(detail)};
}

// Leader-claim event kinds per protocol family, for the epoch/window oracles.
inline const std::vector<obs::EventKind>& OmniLeaderKinds() {
  static const std::vector<obs::EventKind> kinds = {obs::EventKind::kBleLeader};
  return kinds;
}
inline const std::vector<obs::EventKind>& RaftLeaderKinds() {
  static const std::vector<obs::EventKind> kinds = {obs::EventKind::kRaftLeader};
  return kinds;
}
inline const std::vector<obs::EventKind>& MpxLeaderKinds() {
  static const std::vector<obs::EventKind> kinds = {obs::EventKind::kMpxLeader};
  return kinds;
}
inline const std::vector<obs::EventKind>& VrLeaderKinds() {
  static const std::vector<obs::EventKind> kinds = {obs::EventKind::kVrLeader};
  return kinds;
}

// Every <AcceptDecide> a node sends must be preceded (in trace order) by that
// same node reaching a Promise quorum in the same ballot (kSpPrepareSent
// marks the ballot's birth, kSpPromiseQuorum licenses sends).
//
// Ring-wrap soundness: traces from long runs may have lost their prefix
// (sink.dropped() > 0). A ballot whose birth predates the retained window
// cannot be judged — its quorum event may simply have been overwritten — so
// the oracle only flags an AcceptDecide when the same ballot's kSpPrepareSent
// IS in the trace and no quorum came between. Complete traces (assert
// sink.dropped() == 0 in the test) keep full sensitivity.
inline PropertyResult NoAcceptBeforePromiseQuorum(const obs::TraceView& trace) {
  std::set<std::pair<NodeId, uint64_t>> born;      // (node, ballot key)
  std::set<std::pair<NodeId, uint64_t>> licensed;  // (node, ballot key)
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.kind == obs::EventKind::kSpPrepareSent) {
      born.insert({e.node, e.ballot});
    } else if (e.kind == obs::EventKind::kSpPromiseQuorum) {
      licensed.insert({e.node, e.ballot});
    } else if (e.kind == obs::EventKind::kSpAcceptDecideSent) {
      if (born.count({e.node, e.ballot}) != 0 &&
          licensed.count({e.node, e.ballot}) == 0) {
        std::ostringstream d;
        d << "node " << e.node << " sent AcceptDecide in ballot key " << e.ballot
          << " at t=" << e.at << " after Prepare but without a Promise quorum";
        return PropertyFail(d.str());
      }
    }
  }
  return PropertyPass();
}

// At most one distinct leader per epoch key (the event's ballot field:
// ObsBallotKey for Omni/Multi-Paxos, term for Raft, view for VR). Leader
// events carry the elected leader in `peer` — BLE's Leader indication fires
// at every observer (node = observer), while Raft/MPX/VR self-claims set
// peer = node — so agreement is checked on `peer`. Re-claims of the same
// leader (e.g. after a restart, or by late observers) are permitted.
inline PropertyResult SingleLeaderPerEpoch(const obs::TraceView& trace,
                                           const std::vector<obs::EventKind>& leader_kinds) {
  std::map<uint64_t, NodeId> claimed;  // epoch key -> elected leader
  const obs::TraceView claims = trace.FilterAny(leader_kinds);
  for (const obs::TraceEvent& e : claims.events()) {
    const auto [it, inserted] = claimed.insert({e.ballot, e.peer});
    if (!inserted && it->second != e.peer) {
      std::ostringstream d;
      d << "epoch key " << e.ballot << " has leader " << it->second
        << " and leader " << e.peer << " (second claim by node " << e.node
        << " at t=" << e.at << ")";
      return PropertyFail(d.str());
    }
  }
  return PropertyPass();
}

// After instant `t`, the established `leader` is never deposed (no event of
// `stepdown_kinds` by it) and no *other* node claims leadership (no event of
// `leader_kinds` by anyone else). Scenario 3.1's non-disturbance claim.
inline PropertyResult LeaderUndisturbedAfter(
    const obs::TraceView& trace, Time t, NodeId leader,
    const std::vector<obs::EventKind>& leader_kinds,
    const std::vector<obs::EventKind>& stepdown_kinds) {
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.at <= t) {
      continue;
    }
    for (obs::EventKind k : stepdown_kinds) {
      if (e.kind == k && e.node == leader) {
        std::ostringstream d;
        d << "leader " << leader << " stepped down (" << obs::EventKindName(k)
          << ") at t=" << e.at;
        return PropertyFail(d.str());
      }
    }
    for (obs::EventKind k : leader_kinds) {
      if (e.kind == k && e.peer != leader) {
        std::ostringstream d;
        d << "node " << e.node << " saw rival leader " << e.peer << " ("
          << obs::EventKindName(k) << ", epoch key " << e.ballot << ") at t="
          << e.at;
        return PropertyFail(d.str());
      }
    }
  }
  return PropertyPass();
}

// Some event of `leader_kinds` lands in (after, after + bound]. The paper's
// recovery bound: a leader re-emerges within ~4 election timeouts of the
// final heal.
inline PropertyResult ElectionWithin(const obs::TraceView& trace, Time after,
                                     Time bound,
                                     const std::vector<obs::EventKind>& leader_kinds) {
  const obs::TraceView claims = trace.FilterAny(leader_kinds);
  for (const obs::TraceEvent& e : claims.events()) {
    if (e.at > after && e.at <= after + bound) {
      return PropertyPass();
    }
  }
  std::ostringstream d;
  d << "no leader claim in (" << after << ", " << (after + bound) << "]";
  const obs::TraceEvent* next = claims.FirstAfter(after);
  if (next != nullptr) {
    d << "; next claim at t=" << next->at;
  } else {
    d << "; none ever";
  }
  return PropertyFail(d.str());
}

// Snapshot safety (DESIGN.md §15). Per node, over the retained trace window:
//   - kSpDecide slots never regress (decided entries are never un-decided or
//     reordered by compaction);
//   - kSpTrim never compacts past the node's decided index;
//   - the compaction floor (kSpTrim slot / kSpSnapshotInstall up_to) is
//     monotone, and a snapshot install never lands below the decided index.
//
// Ring-wrap soundness: a Trim justified by decides that predate the retained
// window cannot be judged, so the trim-vs-decided check only fires once a
// decide for that node IS in the trace (complete traces — assert
// sink.dropped() == 0 — keep full sensitivity; decided monotonicity and
// floor monotonicity are sound under wrap unconditionally).
inline PropertyResult SnapshotSafety(const obs::TraceView& trace) {
  std::map<NodeId, uint64_t> decided;  // highest decided slot seen per node
  std::map<NodeId, uint64_t> floor;    // compaction floor per node
  for (const obs::TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case obs::EventKind::kSpDecide: {
        auto [it, inserted] = decided.insert({e.node, e.slot});
        if (!inserted) {
          if (e.slot < it->second) {
            std::ostringstream d;
            d << "node " << e.node << " decided index regressed " << it->second
              << " -> " << e.slot << " at t=" << e.at;
            return PropertyFail(d.str());
          }
          it->second = e.slot;
        }
        break;
      }
      case obs::EventKind::kSpTrim: {
        const auto dit = decided.find(e.node);
        if (dit != decided.end() && e.slot > dit->second) {
          std::ostringstream d;
          d << "node " << e.node << " trimmed to " << e.slot
            << " past its decided index " << dit->second << " at t=" << e.at;
          return PropertyFail(d.str());
        }
        uint64_t& f = floor[e.node];
        if (e.slot < f) {
          std::ostringstream d;
          d << "node " << e.node << " compaction floor regressed " << f << " -> "
            << e.slot << " (trim) at t=" << e.at;
          return PropertyFail(d.str());
        }
        f = e.slot;
        break;
      }
      case obs::EventKind::kSpSnapshotInstall: {
        const auto dit = decided.find(e.node);
        if (dit != decided.end() && e.slot < dit->second) {
          std::ostringstream d;
          d << "node " << e.node << " installed a snapshot at " << e.slot
            << " below its decided index " << dit->second << " at t=" << e.at;
          return PropertyFail(d.str());
        }
        uint64_t& f = floor[e.node];
        if (e.slot < f) {
          std::ostringstream d;
          d << "node " << e.node << " compaction floor regressed " << f << " -> "
            << e.slot << " (snapshot install) at t=" << e.at;
          return PropertyFail(d.str());
        }
        f = e.slot;
        decided[e.node] = std::max(decided[e.node], e.slot);
        break;
      }
      default:
        break;
    }
  }
  return PropertyPass();
}

// Lease-read correctness (DESIGN.md §15). Each kLeaseRead carries the serving
// node's decided index in `slot` and the client's read-your-writes watermark
// in `aux`. A served read must cover its watermark, and — because decided
// prefixes only grow and the lease admits one serving leader at a time —
// serve points must be non-decreasing across the whole trace; a stale-lease
// leader answering from old state is exactly what breaks that order.
inline PropertyResult ReadYourWrites(const obs::TraceView& trace) {
  uint64_t last_served = 0;
  NodeId last_server = kNoNode;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.kind != obs::EventKind::kLeaseRead) {
      continue;
    }
    if (e.slot < e.aux) {
      std::ostringstream d;
      d << "node " << e.node << " served a lease read at decided " << e.slot
        << " below the client watermark " << e.aux << " at t=" << e.at;
      return PropertyFail(d.str());
    }
    if (e.slot < last_served) {
      std::ostringstream d;
      d << "lease-read serve points regressed " << last_served << " (node "
        << last_server << ") -> " << e.slot << " (node " << e.node
        << ") at t=" << e.at;
      return PropertyFail(d.str());
    }
    last_served = e.slot;
    last_server = e.node;
  }
  return PropertyPass();
}

}  // namespace opx::testing

#endif  // TESTS_TRACE_ORACLE_HARNESS_H_
