// Self-test for the cross-replica safety auditor: injected corruption in
// hand-built AuditViews must trip each invariant class, and clean histories
// must not. The auditor runs with abort_on_violation=false so the test can
// inspect violations() instead of dying.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/auditor.h"

namespace opx {
namespace {

using audit::AuditContext;
using audit::AuditEntryInfo;
using audit::AuditEpoch;
using audit::AuditView;
using audit::Invariant;
using audit::SafetyAuditor;

// A replica reduced to exactly what the auditor sees: a decided log of entry
// hashes plus the leadership/promise scalars.
struct FakeNode {
  NodeId pid = kNoNode;
  std::vector<AuditEntryInfo> log;
  LogIndex decided = 0;
  LogIndex first = 0;
  bool is_leader = false;
  uint64_t leader_epoch = 0;
  NodeId leader_owner = kNoNode;
  AuditEpoch promised;
  AuditEpoch accepted;
  bool stop_is_final = true;

  AuditView View() const {
    AuditView v;
    v.pid = pid;
    v.protocol = "fake";
    v.is_leader = is_leader;
    v.leader_epoch = leader_epoch;
    v.leader_owner = leader_owner;
    v.promised = promised;
    v.accepted = accepted;
    v.log_len = static_cast<LogIndex>(log.size());
    v.decided_idx = decided;
    v.first_idx = first;
    v.stop_is_final = stop_is_final;
    v.ctx = this;
    v.entry_at = [](const void* ctx, LogIndex idx) {
      return static_cast<const FakeNode*>(ctx)->log[idx];
    };
    return v;
  }
};

AuditContext Ctx(uint64_t event_id = 1) {
  AuditContext ctx;
  ctx.seed = 42;
  ctx.now = Millis(5);
  ctx.event_id = event_id;
  ctx.label = "test";
  return ctx;
}

SafetyAuditor MakeAuditor() {
  SafetyAuditor::Options opts;
  opts.abort_on_violation = false;
  return SafetyAuditor(opts);
}

std::vector<AuditView> Views(const std::vector<FakeNode*>& nodes) {
  std::vector<AuditView> out;
  for (const FakeNode* n : nodes) out.push_back(n->View());
  return out;
}

FakeNode Node(NodeId pid) {
  FakeNode n;
  n.pid = pid;
  n.promised = {1, 0, 1};
  n.accepted = {1, 0, 1};
  return n;
}

AuditEntryInfo Entry(uint64_t hash, bool is_stop = false) { return {hash, is_stop}; }

// --- Clean histories produce no violations. --------------------------------

TEST(Auditor, CleanClusterPasses) {
  FakeNode a = Node(1), b = Node(2);
  a.is_leader = true;
  a.leader_epoch = 1;
  a.leader_owner = 1;
  a.log = {Entry(10), Entry(20), Entry(30)};
  a.decided = 3;
  b.log = {Entry(10), Entry(20)};
  b.decided = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx(1));
  b.log.push_back(Entry(30));
  b.decided = 3;
  auditor.Observe(Views({&a, &b}), Ctx(2));

  EXPECT_TRUE(auditor.violations().empty()) << auditor.Report();
  EXPECT_EQ(auditor.events_audited(), 2u);
  // b reproduced a's canonical entries: 2 at the first event, 1 at the second.
  EXPECT_EQ(auditor.entries_matched(), 3u);
}

TEST(Auditor, CompactedPrefixIsSkippedNotFlagged) {
  // A node whose log starts past genesis (trim/snapshot) fast-forwards its
  // audit position instead of reading unreadable indices.
  FakeNode a = Node(1);
  a.log = {Entry(0), Entry(0), Entry(50), Entry(60)};  // 0,1 trimmed
  a.first = 2;
  a.decided = 4;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx());
  EXPECT_TRUE(auditor.violations().empty()) << auditor.Report();
}

// --- Invariant 1: leader uniqueness. ---------------------------------------

TEST(Auditor, TwoLeadersInOneEpochTrips) {
  FakeNode a = Node(1), b = Node(2);
  // Raft-style shared epoch (no owner): both claim term 7.
  a.is_leader = true;
  a.leader_epoch = 7;
  b.is_leader = true;
  b.leader_epoch = 7;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kLeaderUniqueness);
}

TEST(Auditor, LeadingAnotherServersBallotTrips) {
  FakeNode a = Node(1);
  a.is_leader = true;
  a.leader_epoch = 3;
  a.leader_owner = 2;  // ballot (3, s2) but s1 claims to lead under it

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kLeaderUniqueness);
}

TEST(Auditor, SameEpochDifferentOwnersIsLegal) {
  // Multi-Paxos ballots (n, pid): two servers may both hold n=3 under their
  // own pid — these are distinct ballots, not a split brain.
  FakeNode a = Node(1), b = Node(2);
  a.is_leader = true;
  a.leader_epoch = 3;
  a.leader_owner = 1;
  b.is_leader = true;
  b.leader_epoch = 3;
  b.leader_owner = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx());
  EXPECT_TRUE(auditor.violations().empty()) << auditor.Report();
}

// --- Invariant 2: decided prefixes agree byte-for-byte. --------------------

TEST(Auditor, DivergingDecidedEntryTrips) {
  FakeNode a = Node(1), b = Node(2);
  a.log = {Entry(10), Entry(20)};
  a.decided = 2;
  b.log = {Entry(10), Entry(99)};  // corrupted second entry
  b.decided = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kLogDivergence);
  EXPECT_EQ(auditor.violations()[0].pid, 2);
}

TEST(Auditor, StopFlagMismatchIsDivergence) {
  FakeNode a = Node(1), b = Node(2);
  b.stop_is_final = a.stop_is_final = false;  // keep invariant 5 out of the way
  a.log = {Entry(10, /*is_stop=*/true)};
  a.decided = 1;
  b.log = {Entry(10, /*is_stop=*/false)};
  b.decided = 1;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kLogDivergence);
}

// --- Invariant 3: per-node monotonicity. -----------------------------------

TEST(Auditor, PromisedEpochRegressionTrips) {
  FakeNode a = Node(1);
  a.promised = {5, 0, 2};
  a.accepted = {1, 0, 1};

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx(1));
  a.promised = {4, 0, 2};
  auditor.Observe(Views({&a}), Ctx(2));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kMonotonicity);
}

TEST(Auditor, DecidedIndexRegressionTrips) {
  FakeNode a = Node(1);
  a.log = {Entry(10), Entry(20)};
  a.decided = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx(1));
  a.decided = 1;
  auditor.Observe(Views({&a}), Ctx(2));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kMonotonicity);
}

// --- Invariant 4: acceptance never exceeds the promise. --------------------

TEST(Auditor, AcceptedAbovePromisedTrips) {
  FakeNode a = Node(1);
  a.promised = {3, 0, 1};
  a.accepted = {4, 0, 2};

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kPromiseOrder);
}

// --- Invariant 5: nothing decided past a final stop-sign. ------------------

TEST(Auditor, EntryDecidedAfterStopSignTrips) {
  FakeNode a = Node(1);
  a.log = {Entry(10), Entry(20, /*is_stop=*/true)};
  a.decided = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx(1));
  EXPECT_TRUE(auditor.violations().empty());

  a.log.push_back(Entry(30));  // decided past the stop-sign
  a.decided = 3;
  auditor.Observe(Views({&a}), Ctx(2));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, Invariant::kStopSign);
}

TEST(Auditor, NonFinalStopSignsAllowLogToContinue) {
  // Raft/Multi-Paxos membership entries are not final: decides past them are
  // normal operation.
  FakeNode a = Node(1);
  a.stop_is_final = false;
  a.log = {Entry(10, /*is_stop=*/true), Entry(20)};
  a.decided = 2;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a}), Ctx());
  EXPECT_TRUE(auditor.violations().empty()) << auditor.Report();
}

// --- Reports carry everything needed to replay. ----------------------------

TEST(Auditor, ReportIsReplayable) {
  FakeNode a = Node(1), b = Node(2);
  a.is_leader = true;
  a.leader_epoch = 7;
  b.is_leader = true;
  b.leader_epoch = 7;

  SafetyAuditor auditor = MakeAuditor();
  auditor.Observe(Views({&a, &b}), Ctx(9));
  const std::string report = auditor.Report();
  EXPECT_NE(report.find("leader-uniqueness"), std::string::npos);
  EXPECT_NE(report.find("seed=42"), std::string::npos);
  EXPECT_NE(report.find("event=9"), std::string::npos);
  EXPECT_NE(report.find("(test)"), std::string::npos);
}

}  // namespace
}  // namespace opx
