// Core simulator throughput bench — the perf trajectory of the deterministic
// event loop itself (not a paper figure).
//
// Measures three layers:
//  1. churn        — raw Simulator events/sec on a schedule/cancel/fire mix
//                    (the timer pattern protocol adapters generate);
//  2. net          — simulated messages/sec through Network (per-message
//                    closure scheduling, FIFO clamping, I/O accounting);
//  3. fig7-quick   — wall-clock seconds of a shortened Fig. 7-style
//                    ClusterSim<OmniNode> run, audited and raw (--audit=false
//                    equivalent), plus decided proposals/sec.
//
// Emits BENCH_core.json (see --out) holding both the frozen pre-rewrite
// baseline (kBaseline below, measured at the commit noted there) and the
// numbers of the binary being run, so successive PRs track the trajectory.
//
// Every measurement is best-of-kReps (max rate / min wall): shared CI
// machines jitter ±20%, and the minimum wall clock is the standard
// noise-robust estimator of a workload's true cost.
//
// Usage: sim_throughput [--out=PATH] [--scale=N] [--chaos] [--trace=PATH]
//   --scale multiplies work sizes (default 1; CI smoke uses the default).
//   --chaos runs seeded chaos schedules (DESIGN.md §10) instead of the perf
//   layers and reports schedules/sec — the harness-overhead smoke; exits
//   nonzero if any schedule trips an oracle.
//   --trace runs one fig7-quick with an obs::ObsSink attached and dumps the
//   retained trace tail as JSONL plus the metrics snapshot (DESIGN.md §12),
//   instead of the perf layers. The perf layers themselves always run
//   untraced, so the tracked numbers never include recording overhead.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"
#include "src/obs/trace_view.h"
#include "src/rsm/chaos.h"
#include "src/rsm/experiments.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/flags.h"

namespace opx {
namespace {

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

constexpr int kReps = 3;

// --- 1. Simulator churn: schedule waves of timers, cancel half, fire the rest.
// Mirrors the protocol-adapter pattern (every tick re-arms timers; reconnects
// and retries cancel them).
double ChurnEventsPerSec(int64_t waves) {
  sim::Simulator simulator;
  constexpr int kWave = 64;
  // Each closure carries a message-sized payload: real simulated sends capture
  // {network*, from, to, session, msg} — tens to ~130 bytes, not a bare ref.
  struct Payload {
    uint64_t words[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  };
  uint64_t fired = 0;
  sim::EventId ids[kWave];
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t w = 0; w < waves; ++w) {
    for (int i = 0; i < kWave; ++i) {
      ids[i] = simulator.ScheduleAfter(Micros((i * 37) % 997),
                                       [&fired, p = Payload{}]() { fired += p.words[0]; });
    }
    for (int i = 0; i < kWave; i += 2) {
      simulator.Cancel(ids[i]);
    }
    simulator.RunUntil(simulator.Now() + Millis(1));
  }
  const double wall = WallSeconds(t0);
  return static_cast<double>(waves * kWave) / wall;
}

// --- 2. Network message path: full Send -> schedule -> deliver cycle.
double NetMessagesPerSec(int64_t rounds) {
  sim::Simulator simulator;
  sim::NetworkParams params;
  sim::Network<uint64_t> net(&simulator, 5, params);
  uint64_t received = 0;
  for (NodeId id = 1; id <= 5; ++id) {
    net.SetHandler(id, [&received](NodeId, uint64_t) { ++received; });
  }
  constexpr int kBatch = 100;
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < kBatch; ++i) {
      const NodeId from = static_cast<NodeId>(i % 5 + 1);
      const NodeId to = static_cast<NodeId>((i + 1) % 5 + 1);
      net.Send(from, to, static_cast<uint64_t>(i), 64);
    }
    simulator.RunToCompletion();
  }
  const double wall = WallSeconds(t0);
  return static_cast<double>(rounds * kBatch) / wall;
}

// --- 3. Shortened Fig. 7 run: 3 servers, LAN, CP=500.
struct Fig7Numbers {
  double wall_s = 0.0;
  double throughput = 0.0;  // decided proposals per simulated second
};

Fig7Numbers RunFig7Quick(bool audit, int64_t scale) {
  rsm::NormalConfig cfg;
  cfg.num_servers = 3;
  cfg.concurrent_proposals = 500;
  cfg.warmup = Seconds(1);
  cfg.duration = Seconds(4 * scale);
  cfg.seed = 42;
  cfg.audit = audit;
  const auto t0 = std::chrono::steady_clock::now();
  const rsm::NormalResult r = rsm::RunNormal<rsm::OmniNode>(cfg);
  Fig7Numbers out;
  out.wall_s = WallSeconds(t0);
  out.throughput = r.throughput;
  return out;
}

struct Numbers {
  double churn_events_per_sec = 0.0;
  double net_messages_per_sec = 0.0;
  double fig7_wall_s_audited = 0.0;
  double fig7_wall_s_raw = 0.0;  // --audit=false
  double fig7_throughput = 0.0;
};

// Pre-rewrite baseline, measured at commit 79a91a3 (priority_queue<Event> +
// unordered_set cancellation, std::function closures, per-follower vector
// copies) with --scale=1, best of 3 runs on the CI container. Frozen so every
// later run of this bench reports the trajectory against the same origin.
constexpr Numbers kBaseline = {
    /*churn_events_per_sec=*/11.2e6,
    /*net_messages_per_sec=*/10.9e6,
    /*fig7_wall_s_audited=*/0.78,
    /*fig7_wall_s_raw=*/0.65,
    /*fig7_throughput=*/500'000.0,
};

void PrintJsonNumbers(std::FILE* f, const char* key, const Numbers& n, bool last) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"churn_events_per_sec\": %.0f,\n"
               "    \"net_messages_per_sec\": %.0f,\n"
               "    \"fig7_quick_wall_s_audited\": %.3f,\n"
               "    \"fig7_quick_wall_s_raw\": %.3f,\n"
               "    \"fig7_quick_throughput_per_sim_s\": %.0f\n"
               "  }%s\n",
               key, n.churn_events_per_sec, n.net_messages_per_sec, n.fig7_wall_s_audited,
               n.fig7_wall_s_raw, n.fig7_throughput, last ? "" : ",");
}

// --- Chaos smoke: seeded fault schedules through the full oracle stack. ----
// Not a baseline-tracked number (schedules differ per seed); the value is the
// wall-clock footprint of the chaos harness plus a zero-violation check.
int RunChaosSmoke(int64_t scale, uint64_t seed) {
  const int schedules = static_cast<int>(4 * scale);
  sim::ChaosGenParams gen;
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t faults = 0;
  for (int k = 0; k < schedules; ++k) {
    sim::ChaosPlan plan = sim::GenerateChaosPlan(gen, seed + static_cast<uint64_t>(k));
    faults += plan.faults.size();
    rsm::ChaosConfig cfg;
    cfg.plan = plan;
    const rsm::ChaosOutcome outcome = rsm::RunChaos<rsm::OmniNode>(cfg);
    if (!outcome.ok()) {
      std::printf("chaos smoke: seed %" PRIu64 " VIOLATION (%s): %s\n",
                  plan.seed, rsm::ChaosOracleName(outcome.violated),
                  outcome.detail.c_str());
      return 1;
    }
  }
  const double wall = WallSeconds(t0);
  std::printf("chaos smoke: %d schedules (%" PRIu64 " faults) clean in %.2fs (%.2f sched/s)\n",
              schedules, faults, wall, static_cast<double>(schedules) / wall);
  return 0;
}

// --- Trace dump: one traced fig7-quick run, JSONL out. ---------------------
int RunTraceDump(const std::string& path, int64_t scale) {
#if defined(OPX_OBS_ENABLED)
  obs::ObsSink sink;
  rsm::NormalConfig cfg;
  cfg.num_servers = 3;
  cfg.concurrent_proposals = 500;
  cfg.warmup = Seconds(1);
  cfg.duration = Seconds(4 * scale);
  cfg.seed = 42;
  cfg.obs = &sink;
  const rsm::NormalResult r = rsm::RunNormal<rsm::OmniNode>(cfg);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  obs::WriteJsonl(out, obs::TraceView::FromSink(sink));
  std::printf("wrote %zu events to %s (%" PRIu64 " recorded, %" PRIu64
              " overwritten by ring wrap); throughput %s\n",
              sink.size(), path.c_str(), sink.total(), sink.dropped(),
              bench::HumanRate(r.throughput).c_str());
  std::ostringstream snapshot;
  sink.metrics().Print(snapshot);
  std::printf("metrics snapshot:\n%s", snapshot.str().c_str());
  return 0;
#else
  (void)path;
  (void)scale;
  std::fprintf(stderr, "--trace requires an OPX_OBS=ON build\n");
  return 1;
#endif
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  const Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 1);
  const std::string out_path = flags.GetString("out", "");

  if (flags.Has("chaos")) {
    bench::PrintHeader("Chaos schedule smoke", "fault-schedule harness footprint");
    return RunChaosSmoke(scale, static_cast<uint64_t>(flags.GetInt("seed", 1)));
  }

  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    bench::PrintHeader("Traced fig7-quick run", "JSONL trace + metrics dump");
    return RunTraceDump(trace_path, scale);
  }

  bench::PrintHeader("Core simulator throughput", "event-loop perf trajectory");

  Numbers cur;
  for (int rep = 0; rep < kReps; ++rep) {
    cur.churn_events_per_sec =
        std::max(cur.churn_events_per_sec, ChurnEventsPerSec(20'000 * scale));
  }
  std::printf("churn (schedule/cancel/fire):  %s events\n",
              bench::HumanRate(cur.churn_events_per_sec).c_str());
  for (int rep = 0; rep < kReps; ++rep) {
    cur.net_messages_per_sec =
        std::max(cur.net_messages_per_sec, NetMessagesPerSec(20'000 * scale));
  }
  std::printf("network send->deliver:         %s messages\n",
              bench::HumanRate(cur.net_messages_per_sec).c_str());

  cur.fig7_wall_s_audited = 1e100;
  cur.fig7_wall_s_raw = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const Fig7Numbers audited = RunFig7Quick(/*audit=*/true, scale);
    const Fig7Numbers raw = RunFig7Quick(/*audit=*/false, scale);
    cur.fig7_wall_s_audited = std::min(cur.fig7_wall_s_audited, audited.wall_s);
    cur.fig7_wall_s_raw = std::min(cur.fig7_wall_s_raw, raw.wall_s);
    cur.fig7_throughput = raw.throughput;
  }
  std::printf("fig7-quick wall clock:         %.2fs audited / %.2fs raw (tput %s)\n",
              cur.fig7_wall_s_audited, cur.fig7_wall_s_raw,
              bench::HumanRate(cur.fig7_throughput).c_str());

  std::printf("\nvs baseline (commit 79a91a3): churn %.2fx, net %.2fx, fig7 raw wall %.2fx\n",
              cur.churn_events_per_sec / kBaseline.churn_events_per_sec,
              cur.net_messages_per_sec / kBaseline.net_messages_per_sec,
              kBaseline.fig7_wall_s_raw / cur.fig7_wall_s_raw);

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"sim_throughput\",\n  \"scale\": %" PRId64 ",\n", scale);
    std::fprintf(f, "  \"baseline_commit\": \"79a91a3\",\n");
    PrintJsonNumbers(f, "baseline", kBaseline, /*last=*/false);
    PrintJsonNumbers(f, "current", cur, /*last=*/true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
