// Ablation — the custom ballot priority field of BLE (§5.2): priorities break
// ties so a designated server wins elections, without affecting liveness (the
// elected candidate must still be quorum-connected).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/rsm/experiments.h"

namespace opx {
namespace {

// Fraction of seeded runs in which the designated server wins the first
// election, with and without the priority field.
double DesignatedWinRate(bool use_priority, int runs) {
  int wins = 0;
  for (int rep = 0; rep < runs; ++rep) {
    rsm::ClusterParams params;
    params.num_servers = 5;
    params.election_timeout = Millis(50);
    params.seed = 500 + static_cast<uint64_t>(rep);
    params.preferred_leader = use_priority ? 2 : kNoNode;
    params.audit = bench::AuditEnabled();
    rsm::ClusterSim<rsm::OmniNode> sim(params);
    sim.RunUntil(Seconds(2));
    if (sim.CurrentLeader() == 2) {
      ++wins;
    }
  }
  return static_cast<double>(wins) / runs;
}

// Liveness: even when the prioritized server is NOT quorum-connected, a QC
// server still gets elected (priority is only a tie-break, §5.2).
bool LivenessWithIsolatedPriority() {
  rsm::ClusterParams params;
  params.num_servers = 5;
  params.election_timeout = Millis(50);
  params.seed = 99;
  params.preferred_leader = 2;
  params.audit = bench::AuditEnabled();
  rsm::ClusterSim<rsm::OmniNode> sim(params);
  // Isolate the prioritized server from everyone before any election.
  for (NodeId other = 1; other <= 5; ++other) {
    if (other != 2) {
      sim.network().SetLink(2, other, false);
    }
  }
  sim.RunUntil(Seconds(3));
  const NodeId leader = sim.CurrentLeader();
  return leader != kNoNode && leader != 2;
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation: BLE ballot priority (custom tie-break field)", "§5.2");
  const int runs = bench::FullMode() ? 20 : 8;
  std::printf("designated server wins first election: with priority %.0f%%, without %.0f%%\n",
              100.0 * DesignatedWinRate(true, runs), 100.0 * DesignatedWinRate(false, runs));
  std::printf("liveness with prioritized-but-isolated server: %s\n",
              LivenessWithIsolatedPriority() ? "PASS (another QC server elected)"
                                             : "FAIL");
  std::printf(
      "\nExpected: priority deterministically steers elections (100%% vs chance),\n"
      "and never blocks electing a quorum-connected server.\n");
  return 0;
}
