// Closed-loop load generator for the real TCP runtime (ROADMAP item 4,
// DESIGN.md §14): N client connections, each keeping a fixed pipeline of
// appends outstanding against a 3-node loopback cluster, measuring decided
// ops/s and append→decided latency (p50/p99).
//
// The client engine is built on the same hot-path pieces as the transport —
// EpollLoop for readiness, FrameQueue/FrameReader for framing — so the
// generator itself never becomes the bottleneck being measured.
//
// By default the cluster is spawned in-process (three OmniTcpServer threads
// on loopback, pid-salted ports); --servers=1=h:p,2=h:p,... targets an
// external cluster instead.
//
// --out writes BENCH_net.json: a frozen baseline (the poll()+write() transport
// at kBaselineCommit, measured with this same generator and config) next to
// the numbers just measured, mirroring BENCH_core.json.
//
// With --read-fraction=F each connection dedicates that share of its pipeline
// slots to leader-lease reads (frame 0x06, DESIGN.md §15): served locally by
// the leader with no log append, stamped with a monotonic read watermark (the
// highest serialization point this connection has observed). Reads count
// toward ops and latency alongside writes, and the JSON row is then keyed
// "batched_lease_read". --trim-watermark=N turns on automatic log compaction
// in the in-process cluster, and the report includes the leader's resident
// log-suffix size — the bounded-memory evidence for EXPERIMENTS.md.
//
// Flags:
//   --connections=16     concurrent client connections
//   --pipeline=64        outstanding ops per connection
//   --value-bytes=64     declared payload size per command
//   --duration-s=5       measurement window (after warmup)
//   --warmup-s=1         untimed ramp-up
//   --read-fraction=0.0  share of pipeline slots doing lease reads
//   --trim-watermark=0   in-process cluster auto-trim watermark (0 = off)
//   --batch-limit=0      in-process cluster per-flush accept cap (0 = off)
//   --out=PATH           write BENCH_net.json-style report
//   --check-fds          verify no fd leaked across cluster start/teardown
//   --servers=...        external cluster (skips the in-process one)

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/epoll_loop.h"
#include "src/net/frame_queue.h"
#include "src/net/omni_client.h"
#include "src/net/omni_tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/time.h"
#include "src/util/types.h"

namespace opx {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  while (readdir(dir) != nullptr) {
    ++count;
  }
  closedir(dir);  // the dirfd itself cancels out across two counts
  return count;
}

struct LoadConfig {
  int connections = 16;
  int pipeline = 64;
  uint32_t value_bytes = 64;
  double duration_s = 5.0;
  double warmup_s = 1.0;
  double read_fraction = 0.0;  // share of pipeline slots doing lease reads
};

struct LoadResult {
  double ops_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ops = 0;
  uint64_t read_ops = 0;        // lease reads served (subset of ops)
  uint64_t read_bounces = 0;    // 0x06 requests bounced (lease/watermark miss)
  uint64_t ryw_violations = 0;  // served below the carried watermark (must be 0)
  uint64_t reconnects = 0;
};

// Closed-loop engine: every decided command immediately refills its owning
// connection back to the configured pipeline depth, so total outstanding work
// is constant and throughput is limited by the cluster, not the generator.
class LoadGen {
 public:
  LoadGen(std::map<NodeId, net::Endpoint> servers, NodeId leader, LoadConfig cfg)
      : servers_(std::move(servers)), leader_(leader), cfg_(cfg) {
    conns_.resize(static_cast<size_t>(cfg_.connections));
  }

  ~LoadGen() {
    for (Conn& c : conns_) {
      CloseConn(c);
    }
  }

  bool DriveLoad(LoadResult* out);

 private:
  struct Conn {
    int fd = -1;
    uint32_t id = 0;        // index; cmd/read ids are (id+1)<<32 | seq
    uint32_t next_seq = 0;
    int outstanding = 0;    // appends + lease reads in flight
    bool connecting = false;  // connect() in flight (EINPROGRESS)
    bool hello_sent = false;
    uint64_t session = 0;  // bumped on every close; detects reconnect mid-parse
    uint64_t issued_total = 0;
    uint64_t issued_reads = 0;
    // Highest serialization point observed by this connection's served reads:
    // the monotonic-read watermark stamped on every 0x06 request.
    uint64_t read_watermark = 0;
    net::FrameQueue sendq;
    net::FrameReader reader;
  };

  bool StartConn(Conn& c, const net::Endpoint& ep);
  void CloseConn(Conn& c);
  void OnIo(Conn& c, uint32_t bits);
  void FinishConnect(Conn& c);
  void Refill(Conn& c);
  void SendAppend(Conn& c);
  void SendRead(Conn& c);
  void FlushConn(Conn& c);
  void HandleFrame(Conn& c, const uint8_t* data, size_t len);
  void OnDecided(uint64_t cmd_id);
  void OnReadReply(Conn& c, const uint8_t* data, size_t len);
  void ReconnectToLeader(Conn& c);

  std::map<NodeId, net::Endpoint> servers_;
  NodeId leader_ = kNoNode;
  LoadConfig cfg_;
  net::EpollLoop loop_;
  net::FramePool pool_;
  std::vector<Conn> conns_;
  std::unordered_map<uint64_t, int64_t> inflight_;        // cmd id -> send ns
  std::unordered_map<uint64_t, int64_t> inflight_reads_;  // read id -> send ns
  std::vector<double> latencies_ms_;
  uint64_t ops_ = 0;
  uint64_t read_ops_ = 0;
  uint64_t read_bounces_ = 0;
  uint64_t ryw_violations_ = 0;
  uint64_t reconnects_ = 0;
  bool measuring_ = false;
  bool fatal_ = false;
};

bool LoadGen::StartConn(Conn& c, const net::Endpoint& ep) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return false;
  }
  // The socket is O_NONBLOCK: this either completes on loopback or parks as
  // EINPROGRESS until the loop reports writability.
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));  // NOLINT(opx-blocking-in-loop)
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return false;
  }
  c.fd = fd;
  c.connecting = rc != 0;
  c.hello_sent = false;
  Conn* self = &c;
  if (!loop_.Add(fd, [this, self](uint32_t bits) { OnIo(*self, bits); })) {
    close(fd);
    c.fd = -1;
    return false;
  }
  if (!c.connecting) {
    FinishConnect(c);
  }
  return true;
}

void LoadGen::CloseConn(Conn& c) {
  if (c.fd < 0) {
    return;
  }
  loop_.Remove(c.fd);
  close(c.fd);
  c.fd = -1;
  ++c.session;
  c.connecting = false;
  c.hello_sent = false;
  c.sendq.Clear(&pool_);
  c.reader.Clear();
}

void LoadGen::FinishConnect(Conn& c) {
  c.connecting = false;
  // Hello frame: single byte kHelloClient.
  net::FrameRef hello = pool_.Acquire();
  PutU32(&hello->bytes, 1);
  hello->bytes.push_back(net::kHelloClient);
  c.sendq.Push(std::move(hello));
  c.hello_sent = true;
  Refill(c);
  FlushConn(c);
}

void LoadGen::SendAppend(Conn& c) {
  const uint64_t cmd =
      (static_cast<uint64_t>(c.id + 1) << 32) | static_cast<uint64_t>(c.next_seq++);
  net::FrameRef f = pool_.Acquire();
  PutU32(&f->bytes, 1 + 8 + 4);
  f->bytes.push_back(0x01);  // client append
  PutU64(&f->bytes, cmd);
  PutU32(&f->bytes, cfg_.value_bytes);
  c.sendq.Push(std::move(f));
  inflight_[cmd] = NowNs();
  ++c.outstanding;
}

void LoadGen::SendRead(Conn& c) {
  const uint64_t read_id =
      (static_cast<uint64_t>(c.id + 1) << 32) | static_cast<uint64_t>(c.next_seq++);
  net::FrameRef f = pool_.Acquire();
  PutU32(&f->bytes, 1 + 8 + 8);
  f->bytes.push_back(0x06);  // lease read
  PutU64(&f->bytes, read_id);
  PutU64(&f->bytes, c.read_watermark);
  c.sendq.Push(std::move(f));
  inflight_reads_[read_id] = NowNs();
  ++c.outstanding;
}

void LoadGen::Refill(Conn& c) {
  // Interleave reads into the pipeline so issued_reads/issued_total tracks
  // the configured fraction (appends and reads share one id space; the two
  // inflight maps keep the reply paths apart).
  while (c.outstanding < cfg_.pipeline) {
    if (cfg_.read_fraction > 0.0 &&
        static_cast<double>(c.issued_reads) <
            cfg_.read_fraction * static_cast<double>(c.issued_total + 1)) {
      SendRead(c);
      ++c.issued_reads;
    } else {
      SendAppend(c);
    }
    ++c.issued_total;
  }
}

void LoadGen::FlushConn(Conn& c) {
  if (c.fd < 0) {
    return;
  }
  constexpr size_t kMaxIov = 64;
  struct iovec iov[kMaxIov];
  while (!c.sendq.empty()) {
    const size_t n = c.sendq.BuildIovecs(iov, kMaxIov);
    // O_NONBLOCK socket: returns EAGAIN instead of waiting for buffer space.
    const ssize_t written = writev(c.fd, iov, static_cast<int>(n));  // NOLINT(opx-blocking-in-loop)
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;  // resume on the next EPOLLOUT edge
      }
      ReconnectToLeader(c);
      return;
    }
    c.sendq.Consume(static_cast<size_t>(written), &pool_);
  }
}

void LoadGen::OnDecided(uint64_t cmd_id) {
  auto it = inflight_.find(cmd_id);
  if (it == inflight_.end()) {
    return;  // duplicate sighting (every connection sees every decided batch)
  }
  const int64_t sent = it->second;
  inflight_.erase(it);
  if (measuring_) {
    ++ops_;
    latencies_ms_.push_back(static_cast<double>(NowNs() - sent) / 1e6);
  }
  const uint32_t owner = static_cast<uint32_t>(cmd_id >> 32) - 1;
  if (owner < conns_.size()) {
    Conn& c = conns_[owner];
    --c.outstanding;
    if (c.fd >= 0 && !c.connecting) {
      Refill(c);
    }
  }
}

void LoadGen::HandleFrame(Conn& c, const uint8_t* data, size_t len) {
  if (len == 0) {
    return;
  }
  switch (data[0]) {
    case 0x02: {  // decided batch
      if (len < 5) {
        return;
      }
      const uint32_t count = GetU32(data + 1);
      for (uint32_t i = 0; i < count && 5 + 8 * (i + 1) <= len; ++i) {
        OnDecided(GetU64(data + 5 + 8 * i));
      }
      break;
    }
    case 0x05: {  // redirect: this server is not the leader
      if (len >= 5) {
        const NodeId hint = static_cast<NodeId>(GetU32(data + 1));
        if (hint != kNoNode && servers_.count(hint) > 0) {
          leader_ = hint;
        }
      }
      ReconnectToLeader(c);
      break;
    }
    case 0x07: {  // lease-read reply
      OnReadReply(c, data, len);
      break;
    }
    default:
      break;
  }
}

void LoadGen::OnReadReply(Conn& c, const uint8_t* data, size_t len) {
  if (len < 1 + 8 + 8 + 1 + 4) {
    return;
  }
  const uint64_t read_id = GetU64(data + 1);
  const uint64_t decided = GetU64(data + 9);
  const bool served = data[17] != 0;
  auto it = inflight_reads_.find(read_id);
  if (it == inflight_reads_.end()) {
    return;  // reply outlived a reconnect
  }
  const int64_t sent = it->second;
  inflight_reads_.erase(it);
  --c.outstanding;
  if (served) {
    if (decided < c.read_watermark) {
      ++ryw_violations_;  // server bug: below the watermark we stamped
    }
    if (decided > c.read_watermark) {
      c.read_watermark = decided;
    }
    if (measuring_) {
      ++ops_;
      ++read_ops_;
      latencies_ms_.push_back(static_cast<double>(NowNs() - sent) / 1e6);
    }
  } else {
    ++read_bounces_;
    const NodeId hint = static_cast<NodeId>(GetU32(data + 18));
    if (hint != kNoNode && hint != leader_ && servers_.count(hint) > 0) {
      leader_ = hint;
      ReconnectToLeader(c);
      return;
    }
    // Mid-election or lease lapse on the node we already target: the refill
    // below re-issues the read on the same connection.
  }
  if (c.fd >= 0 && !c.connecting) {
    Refill(c);
  }
}

void LoadGen::ReconnectToLeader(Conn& c) {
  CloseConn(c);
  // Inflight commands this connection owned died with the socket; forget them
  // so the closed loop refills instead of waiting forever.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if ((it->first >> 32) == c.id + 1) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = inflight_reads_.begin(); it != inflight_reads_.end();) {
    if ((it->first >> 32) == c.id + 1) {
      it = inflight_reads_.erase(it);
    } else {
      ++it;
    }
  }
  c.outstanding = 0;
  ++reconnects_;
  auto ep = servers_.find(leader_);
  if (ep == servers_.end() || !StartConn(c, ep->second)) {
    fatal_ = true;
  }
}

void LoadGen::OnIo(Conn& c, uint32_t bits) {
  if (c.fd < 0) {
    return;
  }
  if ((bits & net::EpollLoop::kError) != 0) {
    ReconnectToLeader(c);
    return;
  }
  if (c.connecting && (bits & net::EpollLoop::kWritable) != 0) {
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      ReconnectToLeader(c);
      return;
    }
    FinishConnect(c);
  }
  if ((bits & net::EpollLoop::kReadable) != 0) {
    for (;;) {
      uint8_t chunk[65536];
      // O_NONBLOCK read: drains to EAGAIN, never waits (EPOLLET contract).
      const ssize_t n = read(c.fd, chunk, sizeof(chunk));  // NOLINT(opx-blocking-in-loop)
      if (n > 0) {
        const uint64_t session = c.session;
        const bool ok = c.reader.Feed(
            chunk, static_cast<size_t>(n),
            [this, &c, session](const uint8_t* d, size_t l) {
              HandleFrame(c, d, l);
              return c.session == session;  // stop if the handler reconnected us
            });
        if (c.session != session) {
          return;  // old socket is gone; the new one gets fresh edges
        }
        if (!ok) {
          ReconnectToLeader(c);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ReconnectToLeader(c);  // EOF or hard error
      return;
    }
  }
  if ((bits & net::EpollLoop::kWritable) != 0 && !c.connecting) {
    FlushConn(c);
  }
}

bool LoadGen::DriveLoad(LoadResult* out) {
  auto leader_ep = servers_.find(leader_);
  if (leader_ep == servers_.end()) {
    return false;
  }
  for (size_t i = 0; i < conns_.size(); ++i) {
    conns_[i].id = static_cast<uint32_t>(i);
    if (!StartConn(conns_[i], leader_ep->second)) {
      return false;
    }
  }
  const int64_t start = NowNs();
  const int64_t measure_at = start + static_cast<int64_t>(cfg_.warmup_s * 1e9);
  const int64_t end_at = measure_at + static_cast<int64_t>(cfg_.duration_s * 1e9);
  int64_t window_start = 0;
  latencies_ms_.reserve(1u << 20);
  while (!fatal_) {
    const int64_t now = NowNs();
    if (now >= end_at) {
      break;
    }
    if (!measuring_ && now >= measure_at) {
      measuring_ = true;
      window_start = now;
      ops_ = 0;
      latencies_ms_.clear();
    }
    const int64_t horizon = measuring_ ? end_at : measure_at;
    const int timeout_ms = static_cast<int>((horizon - now + 999'999) / 1'000'000);
    if (loop_.Wait(std::min(timeout_ms, 100)) < 0) {
      return false;
    }
    // EPOLLET: frames enqueued by this batch's refills never produce a new
    // writable edge on an already-writable socket, so drain queues here.
    for (Conn& c : conns_) {
      if (!c.connecting) {
        FlushConn(c);
      }
    }
  }
  const double window_s = static_cast<double>(NowNs() - window_start) / 1e9;
  out->ops = ops_;
  out->ops_per_sec = window_s > 0 ? static_cast<double>(ops_) / window_s : 0;
  out->p50_ms = Percentile(latencies_ms_, 50.0);
  out->p99_ms = Percentile(latencies_ms_, 99.0);
  out->read_ops = read_ops_;
  out->read_bounces = read_bounces_;
  out->ryw_violations = ryw_violations_;
  out->reconnects = reconnects_;
  return !fatal_;
}

// ---------------------------------------------------------------------------
// In-process cluster + leader discovery
// ---------------------------------------------------------------------------

struct ClusterSlot {
  std::unique_ptr<net::OmniTcpServer> server;
  std::thread thread;
};

struct Cluster {
  std::map<NodeId, net::Endpoint> endpoints;
  std::vector<ClusterSlot> slots;
  std::atomic<bool> stop{false};

  ~Cluster() { Shutdown(); }

  void Shutdown() {
    stop.store(true);
    for (ClusterSlot& s : slots) {
      if (s.thread.joinable()) {
        s.thread.join();
      }
      s.server.reset();
    }
    slots.clear();
  }
};

// Binds three servers on loopback with pid-salted ports, retrying on
// collision with another test run on the same host.
bool SpawnCluster(Cluster* cluster, uint64_t trim_watermark, uint64_t batch_limit) {
  const uint16_t salt = static_cast<uint16_t>(getpid() % 17000);
  for (int attempt = 0; attempt < 20; ++attempt) {
    const uint16_t base =
        static_cast<uint16_t>(21000 + (salt + attempt * 131) % 17000);
    std::map<NodeId, net::Endpoint> eps;
    for (NodeId id = 1; id <= 3; ++id) {
      eps[id] = {"127.0.0.1", static_cast<uint16_t>(base + id)};
    }
    std::vector<ClusterSlot> slots(3);
    bool ok = true;
    for (NodeId id = 1; id <= 3; ++id) {
      net::ServerOptions opt;
      opt.id = id;
      opt.listen_port = eps[id].port;
      opt.peers = eps;
      opt.peers.erase(id);
      opt.trim_watermark = trim_watermark;
      opt.batch_limit = batch_limit;
      slots[static_cast<size_t>(id - 1)].server =
          std::make_unique<net::OmniTcpServer>(opt);
      if (!slots[static_cast<size_t>(id - 1)].server->Start()) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;  // port collision; re-salt and retry
    }
    cluster->endpoints = eps;
    cluster->slots = std::move(slots);
    for (ClusterSlot& s : cluster->slots) {
      net::OmniTcpServer* srv = s.server.get();
      const std::atomic<bool>* stop = &cluster->stop;
      s.thread = std::thread([srv, stop]() { srv->Run(*stop); });
    }
    return true;
  }
  return false;
}

// Waits until the cluster elects a leader and confirms it decides appends.
NodeId AwaitLeader(const std::map<NodeId, net::Endpoint>& endpoints) {
  net::OmniClient probe(endpoints);
  if (!probe.Connect(Seconds(10))) {
    return kNoNode;
  }
  const int64_t deadline = NowNs() + Seconds(15);
  while (NowNs() < deadline) {
    net::OmniClient::Status status;
    if (probe.GetStatus(&status, Seconds(1)) && status.leader != kNoNode) {
      // Priming append proves the leader path end to end.
      if (probe.AppendAndWait((0xB00FULL << 48) | static_cast<uint64_t>(status.leader),
                              8, Seconds(2))) {
        return status.leader;
      }
    }
    usleep(20'000);
  }
  return kNoNode;
}

bool ParseServersFlag(const std::string& spec, std::map<NodeId, net::Endpoint>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const size_t eq = item.find('=');
    const size_t colon = item.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      return false;
    }
    const NodeId id = static_cast<NodeId>(std::stoul(item.substr(0, eq)));
    net::Endpoint ep;
    ep.host = item.substr(eq + 1, colon - eq - 1);
    ep.port = static_cast<uint16_t>(std::stoul(item.substr(colon + 1)));
    (*out)[id] = ep;
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

// ---------------------------------------------------------------------------
// BENCH_net.json
// ---------------------------------------------------------------------------

// Frozen poll()+write() transport numbers, measured at kBaselineCommit with
// this generator's default config on the CI container. Regenerate by checking
// out that commit and running: loadgen --out=/dev/stdout
constexpr char kBaselineCommit[] = "d64def4";
constexpr double kBaselineOpsPerSec = 13141;  // best of 3, 16x64 pipeline
constexpr double kBaselineP50Ms = 69.808;
constexpr double kBaselineP99Ms = 170.699;

void PrintJsonRow(std::FILE* f, const char* key, double ops, double p50, double p99,
                  bool last) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"ops_per_sec\": %.0f,\n", ops);
  std::fprintf(f, "    \"p50_ms\": %.3f,\n", p50);
  std::fprintf(f, "    \"p99_ms\": %.3f\n", p99);
  std::fprintf(f, "  }%s\n", last ? "" : ",");
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  // A peer closing mid-send must surface as EPIPE from the syscall, not kill
  // the process (connection churn is routine here).
  signal(SIGPIPE, SIG_IGN);
  Flags flags(argc, argv);
  LoadConfig cfg;
  cfg.connections = static_cast<int>(flags.GetInt("connections", 16));
  cfg.pipeline = static_cast<int>(flags.GetInt("pipeline", 64));
  cfg.value_bytes = static_cast<uint32_t>(flags.GetInt("value-bytes", 64));
  cfg.duration_s = static_cast<double>(flags.GetInt("duration-s", 5));
  cfg.warmup_s = static_cast<double>(flags.GetInt("warmup-s", 1));
  cfg.read_fraction = flags.GetDouble("read-fraction", 0.0);
  const uint64_t trim_watermark =
      static_cast<uint64_t>(flags.GetInt("trim-watermark", 0));
  const uint64_t batch_limit = static_cast<uint64_t>(flags.GetInt("batch-limit", 0));
  const std::string out_path = flags.GetString("out", "");
  const bool check_fds = flags.GetBool("check-fds", false);
  const std::string servers_spec = flags.GetString("servers", "");

  const int fds_before = check_fds ? CountOpenFds() : -1;

  auto cluster = std::make_unique<Cluster>();
  std::map<NodeId, net::Endpoint> endpoints;
  if (!servers_spec.empty()) {
    if (!ParseServersFlag(servers_spec, &endpoints)) {
      std::fprintf(stderr, "bad --servers spec\n");
      return 1;
    }
    cluster.reset();
  } else {
    if (!SpawnCluster(cluster.get(), trim_watermark, batch_limit)) {
      std::fprintf(stderr, "could not bind a 3-node loopback cluster\n");
      return 1;
    }
    endpoints = cluster->endpoints;
  }

  const NodeId leader = AwaitLeader(endpoints);
  if (leader == kNoNode) {
    std::fprintf(stderr, "no leader elected within deadline\n");
    return 1;
  }
  std::printf("leader: node %d; %d conns x %d pipeline, %u-byte values, %.0fs window\n",
              leader, cfg.connections, cfg.pipeline, cfg.value_bytes, cfg.duration_s);

  LoadResult result;
  {
    LoadGen gen(endpoints, leader, cfg);
    if (!gen.DriveLoad(&result)) {
      std::fprintf(stderr, "load loop failed (lost the cluster?)\n");
      return 1;
    }
  }

  if (result.ops == 0) {
    std::fprintf(stderr, "no commands decided during the measurement window\n");
    return 1;
  }
  std::printf("completed ops: %" PRIu64 "  (%.0f ops/s)\n", result.ops,
              result.ops_per_sec);
  std::printf("latency:       p50 %.3f ms   p99 %.3f ms\n", result.p50_ms,
              result.p99_ms);
  if (cfg.read_fraction > 0.0) {
    std::printf("lease reads:   %" PRIu64 " served, %" PRIu64 " bounced, %" PRIu64
                " ryw violations\n",
                result.read_ops, result.read_bounces, result.ryw_violations);
    if (result.ryw_violations > 0) {
      std::fprintf(stderr, "FAIL: lease reads served below their watermark\n");
      return 1;
    }
  }
  std::printf("reconnects:    %" PRIu64 "\n", result.reconnects);

  // Bounded-memory evidence: after the run, the leader's resident log suffix
  // (log_len - compacted) must sit near the trim watermark, not near the total
  // number of appends (EXPERIMENTS.md compaction recipe).
  net::OmniClient::Status post{};
  {
    net::OmniClient probe(endpoints);
    // AppendAndWait follows redirects, landing the probe on the leader so the
    // status below is the leader's.
    probe.AppendAndWait((0xF00DULL << 48) | static_cast<uint64_t>(getpid()), 8,
                        Seconds(5));
    if (!probe.GetStatus(&post, Seconds(5))) {
      std::fprintf(stderr, "post-run status probe failed\n");
      return 1;
    }
  }
  const uint64_t suffix_entries = post.log_len - post.compacted;
  std::printf("leader log:    len %" PRIu64 "  compacted %" PRIu64
              "  resident suffix %" PRIu64 " entries\n",
              post.log_len, post.compacted, suffix_entries);
  if (trim_watermark > 0 && post.compacted == 0) {
    std::fprintf(stderr, "FAIL: --trim-watermark set but nothing was compacted\n");
    return 1;
  }

  if (cluster != nullptr) {
    cluster->Shutdown();
    cluster.reset();
  }

  if (!out_path.empty()) {
    std::FILE* f =
        out_path == "/dev/stdout" ? stdout : std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"loadgen\",\n");
    std::fprintf(f, "  \"config\": {\"connections\": %d, \"pipeline\": %d, "
                    "\"value_bytes\": %u, \"duration_s\": %.0f, "
                    "\"read_fraction\": %.2f, \"trim_watermark\": %" PRIu64
                    ", \"batch_limit\": %" PRIu64 "},\n",
                 cfg.connections, cfg.pipeline, cfg.value_bytes, cfg.duration_s,
                 cfg.read_fraction, trim_watermark, batch_limit);
    std::fprintf(f, "  \"baseline_commit\": \"%s\",\n", kBaselineCommit);
    std::fprintf(f, "  \"leader_log\": {\"len\": %" PRIu64 ", \"compacted\": %" PRIu64
                    ", \"resident_suffix\": %" PRIu64 "},\n",
                 post.log_len, post.compacted, suffix_entries);
    if (cfg.read_fraction > 0.0) {
      std::fprintf(f, "  \"lease_reads\": {\"served\": %" PRIu64
                      ", \"bounced\": %" PRIu64 ", \"ryw_violations\": %" PRIu64
                      "},\n",
                   result.read_ops, result.read_bounces, result.ryw_violations);
    }
    PrintJsonRow(f, "baseline", kBaselineOpsPerSec, kBaselineP50Ms, kBaselineP99Ms,
                 /*last=*/false);
    // Mixed read/write runs land in their own row so the pure-append "current"
    // row stays comparable to the frozen baseline.
    PrintJsonRow(f, cfg.read_fraction > 0.0 ? "batched_lease_read" : "current",
                 result.ops_per_sec, result.p50_ms, result.p99_ms,
                 /*last=*/true);
    std::fprintf(f, "}\n");
    if (f != stdout) {
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    }
  }

  if (check_fds) {
    usleep(50'000);  // let closed sockets finish tearing down
    const int fds_after = CountOpenFds();
    if (fds_before >= 0 && fds_after > fds_before) {
      std::fprintf(stderr, "fd leak: %d open before, %d after\n", fds_before,
                   fds_after);
      return 1;
    }
    std::printf("fds: %d before, %d after (no leak)\n", fds_before, fds_after);
  }
  return 0;
}
