// Figure 8 — resilience to partial connectivity:
//   8a  quorum-loss down-time per protocol and election timeout,
//   8b  constrained-election down-time,
//   8c  decided requests under the chained scenario per partition duration,
// plus the §7.2 recovery accounting (leader changes, epoch increments).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/rsm/experiments.h"
#include "src/util/stats.h"

namespace opx {
namespace {

using bench::FullMode;
using rsm::PartitionConfig;
using rsm::PartitionResult;
using rsm::Scenario;

std::vector<Time> Timeouts() {
  if (FullMode()) {
    return {Millis(50), Millis(500), Seconds(50)};
  }
  return {Millis(50), Millis(500), Seconds(5)};
}

std::vector<Time> ChainedDurations() {
  if (FullMode()) {
    return {Minutes(1), Minutes(2), Minutes(4)};
  }
  return {Seconds(20), Seconds(40)};
}

struct DowntimeRow {
  std::string protocol;
  std::vector<Summary> downtime_s;  // one per timeout
  double mean_elevations = 0.0;
  double mean_epoch_increments = 0.0;
};

template <typename Node>
DowntimeRow RunDowntime(const std::string& name, Scenario scenario) {
  DowntimeRow row;
  row.protocol = name;
  double elevations = 0.0;
  double epochs = 0.0;
  int total_runs = 0;
  for (Time timeout : Timeouts()) {
    std::vector<double> samples;
    for (int rep = 0; rep < bench::Repetitions(); ++rep) {
      PartitionConfig cfg;
      cfg.scenario = scenario;
      cfg.num_servers = 5;
      cfg.election_timeout = timeout;
      cfg.partition_duration = FullMode() ? Minutes(1) : Seconds(20);
      // Keep the partition meaningful relative to huge timeouts.
      if (cfg.partition_duration < 6 * timeout) {
        cfg.partition_duration = 6 * timeout;
      }
      cfg.post_heal = std::max<Time>(Seconds(10), 4 * timeout);
      cfg.seed = 7 + static_cast<uint64_t>(rep);
      cfg.audit = bench::AuditEnabled();
      const PartitionResult r = rsm::RunPartition<Node>(cfg);
      samples.push_back(ToSeconds(r.downtime));
      elevations += static_cast<double>(r.leader_elevations);
      epochs += static_cast<double>(r.epoch_increments);
      ++total_runs;
    }
    row.downtime_s.push_back(Summarize(samples));
  }
  row.mean_elevations = elevations / total_runs;
  row.mean_epoch_increments = epochs / total_runs;
  return row;
}

void PrintDowntimeTable(const std::string& title, const std::vector<DowntimeRow>& rows) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::printf("%-12s", "Protocol");
  for (Time t : Timeouts()) {
    std::printf(" | downtime @T=%-8s", bench::HumanTime(t).c_str());
  }
  std::printf(" | elections | epoch+\n");
  for (const DowntimeRow& row : rows) {
    std::printf("%-12s", row.protocol.c_str());
    for (const Summary& s : row.downtime_s) {
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.2fs ±%.2f", s.mean, s.ci95_half);
      std::printf(" | %-19s", cell);
    }
    std::printf(" | %-9.1f | %.1f\n", row.mean_elevations, row.mean_epoch_increments);
  }
}

template <typename Node>
void RunChained(const std::string& name) {
  std::printf("%-12s", name.c_str());
  for (Time duration : ChainedDurations()) {
    std::vector<double> decided;
    for (int rep = 0; rep < bench::Repetitions(); ++rep) {
      PartitionConfig cfg;
      cfg.scenario = Scenario::kChained;
      cfg.num_servers = 3;
      cfg.election_timeout = Millis(50);
      cfg.partition_duration = duration;
      cfg.post_heal = Seconds(5);
      cfg.seed = 13 + static_cast<uint64_t>(rep);
      cfg.audit = bench::AuditEnabled();
      const PartitionResult r = rsm::RunPartition<Node>(cfg);
      decided.push_back(static_cast<double>(r.decided_during));
    }
    const Summary s = Summarize(decided);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%s ±%s", bench::HumanRate(s.mean / ToSeconds(duration)).c_str(),
                  bench::HumanRate(s.ci95_half / ToSeconds(duration)).c_str());
    std::printf(" | %-22s", cell);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8: partial-connectivity experiments", "Fig. 8a/8b/8c + §7.2");

  {
    std::vector<DowntimeRow> rows;
    rows.push_back(RunDowntime<rsm::OmniNode>("Omni-Paxos", Scenario::kQuorumLoss));
    rows.push_back(RunDowntime<rsm::RaftNode>("Raft", Scenario::kQuorumLoss));
    rows.push_back(RunDowntime<rsm::RaftPvCqNode>("Raft PV+CQ", Scenario::kQuorumLoss));
    rows.push_back(RunDowntime<rsm::VrNode>("VR", Scenario::kQuorumLoss));
    rows.push_back(RunDowntime<rsm::MultiPaxosNode>("Multi-Paxos", Scenario::kQuorumLoss));
    PrintDowntimeTable("Fig. 8a: quorum-loss scenario (down-time; deadlock = partition length)",
                       rows);
  }
  {
    std::vector<DowntimeRow> rows;
    rows.push_back(RunDowntime<rsm::OmniNode>("Omni-Paxos", Scenario::kConstrained));
    rows.push_back(RunDowntime<rsm::RaftNode>("Raft", Scenario::kConstrained));
    rows.push_back(RunDowntime<rsm::RaftPvCqNode>("Raft PV+CQ", Scenario::kConstrained));
    rows.push_back(RunDowntime<rsm::VrNode>("VR", Scenario::kConstrained));
    rows.push_back(RunDowntime<rsm::MultiPaxosNode>("Multi-Paxos", Scenario::kConstrained));
    PrintDowntimeTable("Fig. 8b: constrained-election scenario (down-time)", rows);
  }
  {
    std::printf("\n--- Fig. 8c: chained scenario (decided proposals per second during partition) ---\n");
    std::printf("%-12s", "Protocol");
    for (Time d : ChainedDurations()) {
      std::printf(" | partition=%-11s", bench::HumanTime(d).c_str());
    }
    std::printf("\n");
    RunChained<rsm::OmniNode>("Omni-Paxos");
    RunChained<rsm::RaftNode>("Raft");
    RunChained<rsm::RaftPvCqNode>("Raft PV+CQ");
    RunChained<rsm::VrNode>("VR");
    RunChained<rsm::MultiPaxosNode>("Multi-Paxos");
  }
  std::printf(
      "\nExpected (paper): 8a) Omni-Paxos recovers in ~4 timeouts, Raft recovers with\n"
      "high variance, Raft PV+CQ slightly faster than Omni-Paxos, VR and Multi-Paxos\n"
      "deadlock. 8b) only Omni-Paxos (constant ~3 timeouts) and Multi-Paxos recover.\n"
      "8c) Multi-Paxos lowest throughput (livelock); Omni-Paxos stable with a single\n"
      "leader change; Raft PV+CQ no leader changes.\n");
  return 0;
}
