// Figure 7 — regular execution with 3 and 5 servers, LAN and WAN, workload
// levels CP ∈ {500, 5k, 50k}: throughput of Omni-Paxos vs Raft vs Multi-Paxos
// (mean ± 95% CI over repeated seeded runs), plus the §7.1 BLE-overhead claim.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"
#include "src/rsm/experiments.h"
#include "src/util/stats.h"

namespace opx {
namespace {

using bench::FullMode;
using rsm::NormalConfig;
using rsm::NormalResult;

struct Cell {
  Summary throughput;
  double election_io_share = 0.0;
  // From the fig7/* gauges RunNormal publishes into the attached ObsSink on
  // the final repetition (DESIGN.md §12); zero when OPX_OBS=OFF.
  double mean_latency_s = 0.0;
  double leader_elevations = 0.0;
};

template <typename Node>
Cell RunCell(int servers, bool wan, size_t cp) {
  std::vector<double> tputs;
  Cell cell;
  for (int rep = 0; rep < bench::Repetitions(); ++rep) {
    NormalConfig cfg;
    cfg.num_servers = servers;
    cfg.concurrent_proposals = cp;
    cfg.wan = wan;
    cfg.election_timeout = wan ? Millis(500) : Millis(50);
    cfg.warmup = FullMode() ? Seconds(60) : Seconds(3);
    cfg.duration = FullMode() ? Minutes(5) : Seconds(15);
    cfg.seed = 42 + static_cast<uint64_t>(rep);
    cfg.audit = bench::AuditEnabled();
#if defined(OPX_OBS_ENABLED)
    obs::ObsSink sink(1u << 10);
    if (rep == bench::Repetitions() - 1) {
      cfg.obs = &sink;
    }
#endif
    const NormalResult r = rsm::RunNormal<Node>(cfg);
    tputs.push_back(r.throughput);
    cell.election_io_share = std::max(cell.election_io_share, r.election_io_share);
#if defined(OPX_OBS_ENABLED)
    if (cfg.obs != nullptr) {
      if (const obs::Gauge* g = sink.metrics().FindGauge("fig7/mean_latency_s")) {
        cell.mean_latency_s = g->value();
      }
      if (const obs::Gauge* g = sink.metrics().FindGauge("fig7/leader_elevations")) {
        cell.leader_elevations = g->value();
      }
    }
#endif
  }
  cell.throughput = Summarize(tputs);
  return cell;
}

void RunSetting(int servers, bool wan) {
  std::printf("\n--- %d servers, %s ---\n", servers, wan ? "WAN (RTT 105/145 ms)" : "LAN (RTT 0.2 ms)");
  std::printf("%-8s  %-22s %-22s %-22s\n", "CP", "Omni-Paxos", "Raft", "Multi-Paxos");
  for (size_t cp : {size_t{500}, size_t{5'000}, size_t{50'000}}) {
    const Cell omni = RunCell<rsm::OmniNode>(servers, wan, cp);
    const Cell raft = RunCell<rsm::RaftNode>(servers, wan, cp);
    const Cell mpx = RunCell<rsm::MultiPaxosNode>(servers, wan, cp);
    std::printf("%-8zu  %-22s %-22s %-22s\n", cp,
                (bench::HumanRate(omni.throughput.mean) + " ±" +
                 bench::HumanRate(omni.throughput.ci95_half))
                    .c_str(),
                (bench::HumanRate(raft.throughput.mean) + " ±" +
                 bench::HumanRate(raft.throughput.ci95_half))
                    .c_str(),
                (bench::HumanRate(mpx.throughput.mean) + " ±" +
                 bench::HumanRate(mpx.throughput.ci95_half))
                    .c_str());
#if defined(OPX_OBS_ENABLED)
    std::printf("          (metrics: mean latency %.1f / %.1f / %.1f ms; "
                "leader elevations %.0f / %.0f / %.0f)\n",
                omni.mean_latency_s * 1e3, raft.mean_latency_s * 1e3,
                mpx.mean_latency_s * 1e3, omni.leader_elevations,
                raft.leader_elevations, mpx.leader_elevations);
#endif
    if (cp == 50'000) {
      std::printf("          (Omni-Paxos BLE share of total I/O at CP=50k: %.4f%%)\n",
                  omni.election_io_share * 100.0);
    }
  }
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 7: regular execution throughput",
                     "Fig. 7 + §7.1 BLE-overhead claim");
  RunSetting(3, /*wan=*/false);
  RunSetting(5, /*wan=*/false);
  RunSetting(3, /*wan=*/true);
  RunSetting(5, /*wan=*/true);
  std::printf(
      "\nExpected (paper): similar throughput for all three protocols in every\n"
      "setting (overlapping CIs); WAN throughput latency-bound at low CP; BLE\n"
      "heartbeats contribute at most 0.02%% of total I/O.\n");
  return 0;
}
