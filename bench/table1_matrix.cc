// Table 1 — protocol properties and partial-connectivity progress matrix.
//
// Runs every protocol through the three §2 scenarios and classifies the
// measured outcome:
//   "yes"       stable progress (recovers quickly, then no further elections)
//   "eventual"  makes progress but with repeated/disruptive elections
//   "NO"        unavailable until the partition heals
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/rsm/experiments.h"

namespace opx {
namespace {

using bench::FullMode;
using rsm::PartitionConfig;
using rsm::PartitionResult;
using rsm::Scenario;

struct Row {
  std::string name;
  std::string sync_phase;
  std::string candidate_req;
  std::string vote_gossip;
  std::string qc_heartbeats;
  std::string progress_req;
  std::vector<std::string> verdicts;
};

PartitionConfig Config(Scenario s, uint64_t seed) {
  PartitionConfig cfg;
  cfg.scenario = s;
  cfg.num_servers = s == Scenario::kChained ? 3 : 5;
  cfg.partition_duration = FullMode() ? Minutes(1) : Seconds(20);
  cfg.post_heal = Seconds(10);
  cfg.seed = seed;
  cfg.audit = bench::AuditEnabled();
  return cfg;
}

template <typename Node>
std::string Classify(Scenario s) {
  // Majority vote over seeds to absorb randomized-timer variance.
  int stable = 0, eventual = 0, dead = 0;
  const int reps = bench::Repetitions();
  for (int rep = 0; rep < reps; ++rep) {
    const PartitionConfig cfg = Config(s, 1000 + static_cast<uint64_t>(rep));
    const PartitionResult r = rsm::RunPartition<Node>(cfg);
    if (!r.recovered) {
      ++dead;
    } else if (r.leader_elevations <= 2 &&
               r.downtime <= 12 * cfg.election_timeout) {
      ++stable;
    } else {
      ++eventual;
    }
  }
  if (dead * 2 > reps) {
    return "NO";
  }
  if (stable >= eventual) {
    return "yes";
  }
  return "eventual";
}

template <typename Node>
std::vector<std::string> RunAll() {
  return {Classify<Node>(Scenario::kQuorumLoss), Classify<Node>(Scenario::kConstrained),
          Classify<Node>(Scenario::kChained)};
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 1: protocols vs. partial-connectivity scenarios",
                     "Table 1 (measured verdicts; properties are by design)");

  std::vector<Row> rows;
  rows.push_back({"Multi-Paxos", "yes", "QC", "yes", "-", ">= N/2", RunAll<rsm::MultiPaxosNode>()});
  rows.push_back({"Raft", "-", "QC+maxlog", "yes", "-", ">= N/2", RunAll<rsm::RaftNode>()});
  rows.push_back({"Raft PV+CQ", "-", "QC+maxlog", "yes", "-", ">= N/2", RunAll<rsm::RaftPvCqNode>()});
  rows.push_back({"VR", "yes", "QC+EQC", "yes", "-", ">= N/2", RunAll<rsm::VrNode>()});
  rows.push_back({"Omni-Paxos", "yes", "QC", "-", "yes", ">= 1", RunAll<rsm::OmniNode>()});

  std::printf("%-12s %-5s %-10s %-7s %-6s %-8s | %-12s %-12s %-10s\n", "Protocol", "Sync",
              "Candidate", "Gossip", "QC-HB", "Progress", "Quorum-Loss", "Constrained",
              "Chained");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-12s %-5s %-10s %-7s %-6s %-8s | %-12s %-12s %-10s\n", r.name.c_str(),
                r.sync_phase.c_str(), r.candidate_req.c_str(), r.vote_gossip.c_str(),
                r.qc_heartbeats.c_str(), r.progress_req.c_str(), r.verdicts[0].c_str(),
                r.verdicts[1].c_str(), r.verdicts[2].c_str());
  }
  std::printf(
      "\nExpected (paper): Omni-Paxos is the only protocol with stable progress in\n"
      "all three scenarios; Raft recovers from quorum-loss (with variance), Raft\n"
      "PV+CQ additionally handles chained; Multi-Paxos recovers only from the\n"
      "constrained scenario and livelocks in chained; VR recovers only from chained.\n");
  return 0;
}
