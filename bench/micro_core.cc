// Micro-benchmarks of core data structures and protocol hot paths
// (google-benchmark). Not a paper figure; used to keep the simulator and the
// protocol inner loops fast enough for the minute-scale experiments.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/omnipaxos/ble.h"
#include "src/omnipaxos/sequence_paxos.h"
#include "src/omnipaxos/storage.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace opx {
namespace {

void BM_BallotCompare(benchmark::State& state) {
  omni::Ballot a{123, 1, 4};
  omni::Ballot b{123, 1, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_BallotCompare);

void BM_StorageAppend(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    omni::Storage storage;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      storage.Append(omni::Entry::Command(static_cast<uint64_t>(i), 8));
    }
    benchmark::DoNotOptimize(storage.log_len());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StorageAppend)->Arg(1024)->Arg(65536);

void BM_StorageSuffix(benchmark::State& state) {
  omni::Storage storage;
  for (int i = 0; i < 100'000; ++i) {
    storage.Append(omni::Entry::Command(static_cast<uint64_t>(i), 8));
  }
  for (auto _ : state) {
    auto suffix = storage.Suffix(90'000);
    benchmark::DoNotOptimize(suffix);
  }
}
BENCHMARK(BM_StorageSuffix);

// One full leader-side replication round: append a batch, flush, absorb acks.
void BM_SequencePaxosPipeline(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  omni::Storage leader_storage;
  omni::SequencePaxosConfig cfg;
  cfg.pid = 1;
  cfg.peers = {2, 3};
  omni::SequencePaxos leader(cfg, &leader_storage);
  leader.HandleLeader(omni::Ballot{1, 0, 1});
  // Promise from one follower completes the prepare phase.
  omni::Promise promise;
  promise.n = omni::Ballot{1, 0, 1};
  leader.Handle(2, promise);
  (void)leader.TakeOutgoing();

  uint64_t cmd = 1;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      leader.Append(omni::Entry::Command(cmd++, 8));
    }
    auto out = leader.TakeOutgoing();
    benchmark::DoNotOptimize(out);
    leader.Handle(2, omni::Accepted{omni::Ballot{1, 0, 1}, leader.log_len()});
    (void)leader.TakeOutgoing();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_SequencePaxosPipeline)->Arg(64)->Arg(1024);

void BM_BleRound(benchmark::State& state) {
  omni::BleConfig cfg;
  cfg.pid = 1;
  cfg.peers = {2, 3, 4, 5};
  omni::BallotLeaderElection ble(cfg);
  for (auto _ : state) {
    ble.Tick();
    for (NodeId peer = 2; peer <= 5; ++peer) {
      ble.Handle(peer, omni::HeartbeatReply{ble.round(), omni::Ballot{0, 0, peer}, true});
    }
    auto out = ble.TakeOutgoing();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BleRound);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.ScheduleAfter(Micros(i), [&fired]() { ++fired; });
    }
    simulator.RunToCompletion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

// Schedule/cancel/fire mix with message-sized closures — the pattern of
// failure-detector timers being re-armed under load, and the case the slab
// queue's O(1) tombstone cancellation targets.
void BM_SimulatorChurn(benchmark::State& state) {
  struct Payload {
    uint64_t words[8];  // mirrors a realistic {net*, from, to, session, msg} capture
  };
  for (auto _ : state) {
    sim::Simulator simulator;
    uint64_t fired = 0;
    std::vector<sim::EventId> ids(64, sim::kInvalidEvent);
    for (int wave = 0; wave < 32; ++wave) {
      for (size_t t = 0; t < ids.size(); ++t) {
        simulator.Cancel(ids[t]);  // half are still pending: tombstone path
        Payload p{};
        p.words[0] = static_cast<uint64_t>(wave);
        ids[t] = simulator.ScheduleAfter(Micros((wave * 37 + static_cast<int>(t)) % 997),
                                         [&fired, p]() { fired += p.words[0]; });
      }
      simulator.RunUntil(simulator.Now() + Micros(500));
    }
    simulator.RunToCompletion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 32 * 64);
}
BENCHMARK(BM_SimulatorChurn);

void BM_NetworkSend(benchmark::State& state) {
  sim::Simulator simulator;
  sim::NetworkParams params;
  sim::Network<int> net(&simulator, 2, params);
  int received = 0;
  net.SetHandler(2, [&received](NodeId, int) { ++received; });
  for (auto _ : state) {
    net.Send(1, 2, 42, 64);
    simulator.RunToCompletion();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

}  // namespace
}  // namespace opx

BENCHMARK_MAIN();
