// Shared helpers for the figure/table reproduction benches.
//
// Every bench supports two modes:
//  * quick (default): shortened warmups/durations/log sizes so the whole
//    bench suite completes in minutes while preserving every qualitative
//    result (who recovers, who wins, bottleneck ratios);
//  * full  (OPX_FULL=1): paper-faithful durations (5-minute runs, 1/2/4-minute
//    partitions, 10 repetitions).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace opx::bench {

inline bool FullMode() {
  const char* env = std::getenv("OPX_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

inline int Repetitions() { return FullMode() ? 10 : 3; }

// Process-wide safety-audit switch. Benches run audited by default (the
// auditor rides along at a few percent overhead); pass --audit=false for
// raw-performance measurement runs.
inline bool& AuditFlag() {
  static bool enabled = true;
  return enabled;
}

inline bool AuditEnabled() { return AuditFlag(); }

// Parses shared bench flags (currently just --audit). Call first in main().
inline void ParseArgs(int argc, char** argv) {
  const Flags flags(argc, argv);
  AuditFlag() = flags.GetBool("audit", true);
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s   [%s mode]\n", paper_ref.c_str(),
              FullMode() ? "full" : "quick");
  std::printf("================================================================\n");
}

inline std::string HumanBytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fGB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

inline std::string HumanRate(double per_second) {
  char buf[32];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/s", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk/s", per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f/s", per_second);
  }
  return buf;
}

inline std::string HumanTime(Time t) {
  char buf[32];
  if (t >= Seconds(10)) {
    std::snprintf(buf, sizeof(buf), "%.1fs", ToSeconds(t));
  } else if (t >= Millis(1)) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ToMillis(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", static_cast<double>(t) / 1e3);
  }
  return buf;
}

}  // namespace opx::bench

#endif  // BENCH_BENCH_UTIL_H_
