// Ablation — parallel (Fig. 6b) vs leader-only (Fig. 6a) log migration in the
// Omni-Paxos service layer: reconfiguration period and donor I/O distribution.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/rsm/omni_reconfig_sim.h"

namespace opx {
namespace {

using rsm::ReconfigParams;
using rsm::ReconfigResult;

ReconfigParams Config(int replace, bool leader_only) {
  ReconfigParams p;
  p.replace_count = replace;
  p.concurrent_proposals = 5'000;
  p.preload_entries = bench::FullMode() ? 5'000'000 : 1'000'000;
  p.warmup = bench::FullMode() ? Seconds(30) : Seconds(10);
  p.run_after = bench::FullMode() ? Seconds(150) : Seconds(60);
  p.egress_bytes_per_sec = 8e6;
  p.leader_only_migration = leader_only;
  return p;
}

void RunPair(const char* title, int replace) {
  std::printf("\n--- %s ---\n", title);
  const ReconfigResult par = rsm::OmniReconfigSim(Config(replace, false)).Run();
  const ReconfigResult solo = rsm::OmniReconfigSim(Config(replace, true)).Run();
  std::printf("  %-36s %-14s %-14s\n", "", "parallel", "leader-only");
  std::printf("  %-36s %-14s %-14s\n", "migration period",
              bench::HumanTime(par.migration_done_at - par.ss_decided_at).c_str(),
              bench::HumanTime(solo.migration_done_at - solo.ss_decided_at).c_str());
  std::printf("  %-36s %-14s %-14s\n", "down-time",
              bench::HumanTime(par.downtime).c_str(), bench::HumanTime(solo.downtime).c_str());
  std::printf("  %-36s %-14s %-14s\n", "peak leader egress / 5s window",
              bench::HumanBytes(static_cast<double>(par.peak_window_egress_old_leader)).c_str(),
              bench::HumanBytes(static_cast<double>(solo.peak_window_egress_old_leader)).c_str());
  if (solo.migration_done_at > solo.ss_decided_at &&
      par.migration_done_at > par.ss_decided_at) {
    std::printf("  parallel speedup: %.1fx\n",
                ToSeconds(solo.migration_done_at - solo.ss_decided_at) /
                    ToSeconds(par.migration_done_at - par.ss_decided_at));
  }
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation: parallel vs leader-only log migration", "Fig. 6 / §6.1");
  RunPair("replace one server", 1);
  RunPair("replace a majority (3 of 5)", 3);
  std::printf(
      "\nExpected: with K donors the migration period shrinks by ~Kx and the old\n"
      "leader's egress peak drops to ~1/K of the leader-only scheme (§6.1).\n");
  return 0;
}
