// Figure 9 — reconfiguration speed, Omni-Paxos vs Raft:
//   9a  replace one server, CP = 5k   (throughput over time windows)
//   9b  replace one server, CP = 50k
//   9c  replace a majority (3 of 5), CP = 5k
// plus the peak leader egress I/O over a window (§7.3's 109 MB vs 30 MB).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/rsm/omni_reconfig_sim.h"
#include "src/rsm/raft_reconfig_sim.h"

namespace opx {
namespace {

using bench::FullMode;
using rsm::ReconfigParams;
using rsm::ReconfigResult;

ReconfigParams Config(int replace, size_t cp) {
  ReconfigParams p;
  p.replace_count = replace;
  p.concurrent_proposals = cp;
  if (FullMode()) {
    p.preload_entries = 5'000'000;
    p.warmup = Seconds(40);
    p.run_after = Seconds(160);
  } else {
    p.preload_entries = 1'000'000;
    p.warmup = Seconds(15);
    p.run_after = Seconds(60);
  }
  p.metrics_window = Seconds(5);
  p.egress_bytes_per_sec = 8e6;  // effective app-level egress (DESIGN.md)
  return p;
}

void PrintSeries(const std::string& name, const ReconfigResult& r, Time window, Time start) {
  std::printf("  %-12s tput/window:", name.c_str());
  const size_t first = static_cast<size_t>(start / window);
  for (size_t w = first; w < r.window_counts.size(); ++w) {
    std::printf(" %6.0f", static_cast<double>(r.window_counts[w]) / ToSeconds(window) / 1000.0);
  }
  std::printf("  (k ops/s)\n");
}

void RunExperiment(const std::string& title, int replace, size_t cp) {
  std::printf("\n--- %s ---\n", title.c_str());
  const ReconfigParams params = Config(replace, cp);

  rsm::OmniReconfigSim omni_sim(params);
  const ReconfigResult omni = omni_sim.Run();
  rsm::RaftReconfigSim raft_sim(params);
  const ReconfigResult raft = raft_sim.Run();

  PrintSeries("Omni-Paxos", omni, params.metrics_window, 0);
  PrintSeries("Raft", raft, params.metrics_window, 0);

  const double migrate_bytes = static_cast<double>(params.preload_entries) * 24.0;
  std::printf("  full-log size to migrate per fresh server: ~%s\n",
              bench::HumanBytes(migrate_bytes).c_str());
  std::printf("  %-34s %-14s %-14s\n", "", "Omni-Paxos", "Raft");
  std::printf("  %-34s %-14s %-14s\n", "down-time (no decided replies)",
              bench::HumanTime(omni.downtime).c_str(), bench::HumanTime(raft.downtime).c_str());
  std::printf("  %-34s %-14s %-14s\n", "reconfig committed after",
              bench::HumanTime(omni.ss_decided_at - omni.reconfig_proposed_at).c_str(),
              bench::HumanTime(raft.ss_decided_at - raft.reconfig_proposed_at).c_str());
  std::printf("  %-34s %-14s %-14s\n", "migration completed after",
              bench::HumanTime(omni.migration_done_at - omni.reconfig_proposed_at).c_str(),
              bench::HumanTime(raft.migration_done_at - raft.reconfig_proposed_at).c_str());
  std::printf("  %-34s %-14s %-14s\n", "peak old-leader egress / window",
              bench::HumanBytes(static_cast<double>(omni.peak_window_egress_old_leader)).c_str(),
              bench::HumanBytes(static_cast<double>(raft.peak_window_egress_old_leader)).c_str());
  std::printf("  %-34s %-14s %-14s\n", "peak any-server egress / window",
              bench::HumanBytes(static_cast<double>(omni.peak_window_egress_any)).c_str(),
              bench::HumanBytes(static_cast<double>(raft.peak_window_egress_any)).c_str());
  if (raft.peak_window_egress_old_leader > 0) {
    std::printf("  leader-I/O reduction (Omni vs Raft): %.0f%%\n",
                100.0 * (1.0 - static_cast<double>(omni.peak_window_egress_old_leader) /
                                   static_cast<double>(raft.peak_window_egress_old_leader)));
  }
  if (omni.migration_done_at > omni.reconfig_proposed_at &&
      raft.migration_done_at > raft.reconfig_proposed_at) {
    std::printf("  reconfiguration-period speedup: %.1fx\n",
                ToSeconds(raft.migration_done_at - raft.reconfig_proposed_at) /
                    ToSeconds(omni.migration_done_at - omni.reconfig_proposed_at));
  }
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 9: reconfiguration experiments", "Fig. 9a/9b/9c + §7.3");
  RunExperiment("Fig. 9a: replace one server, CP=5k", 1, 5'000);
  RunExperiment("Fig. 9b: replace one server, CP=50k", 1, 50'000);
  RunExperiment("Fig. 9c: replace a majority (3 of 5), CP=5k", 3, 5'000);
  std::printf(
      "\nExpected (paper): replace-one — Raft up to 90%% throughput drop for ~55 s vs\n"
      "20%%/15 s for Omni-Paxos; with CP=50k Omni-Paxos shows no clear drop. Peak\n"
      "leader I/O 109 MB (Raft) vs 30 MB (Omni-Paxos) per window (46%% less at the\n"
      "leader, up to 8x shorter reconfiguration). Replace-majority hits both (c1\n"
      "needs one migrated server), but Raft records tens of seconds of complete\n"
      "down-time and a larger leader peak.\n");
  return 0;
}
