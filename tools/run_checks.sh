#!/usr/bin/env bash
# Full static+dynamic check pipeline, as run before merging:
#   1. sanitized build (ASan+UBSan, assertions live) of everything;
#   2. opx_analyze (DESIGN.md §11, §13): the thirteen protocol-aware checks —
#      the six token-level ones plus the CFG/dataflow tier (ballot-guard,
#      quorum-arith, blocking-in-loop, span-escape) and the interprocedural tier
#      (wire-taint, index-arith, ref-lifetime, DESIGN.md §16) — over src/, tests/,
#      and bench/; fails on any finding not in tools/analyze/baseline.txt,
#      and on any stale baseline entry;
#   3. the complete CTest suite under sanitizers — every scenario/chaos test
#      runs with the cross-replica safety auditor enabled (the default);
#   4. a TSan build (-DOPX_SANITIZE=thread) with the real-I/O net tests as
#      the data-race smoke;
#   5. clang-tidy over files changed relative to origin/main (skipped with a
#      note when clang-tidy is not installed).
#
# Usage: tools/run_checks.sh [build-dir]      (default: build-asan)
#        tools/run_checks.sh --static [build-dir]
#        tools/run_checks.sh --tsan [build-dir]
#        tools/run_checks.sh --bench-smoke [build-dir]
#        tools/run_checks.sh --net-bench-smoke [build-dir]
#        tools/run_checks.sh --compaction-smoke [build-dir]
#        tools/run_checks.sh --chaos-smoke [schedules-per-protocol]
#        tools/run_checks.sh --coverage [build-dir]
#
# --static is the fast pre-commit path: build only the opx_analyze target
# (plain build, default dir: build-static) and run the ten static checks
# over src/, tests/, and bench/ — a few seconds warm, well under ten cold.
#
# --tsan builds the test suite with ThreadSanitizer (default dir: build-tsan)
# and runs the real-I/O net tests — the only tier that spawns threads — as a
# data-race smoke. Also part of the default full run (step 4).
#
# --bench-smoke instead does a Release build (default dir: build-bench), runs
# the sim_throughput quick benchmark, and refreshes BENCH_core.json at the
# repo root — the tracked perf baseline DESIGN.md's before/after table cites.
#
# --net-bench-smoke does a Release build of bench/loadgen and fires a 2-second
# closed-loop burst at a freshly spawned 3-node loopback cluster; exit 0
# requires a leader, decided ops > 0, and no leaked fds. It does not refresh
# BENCH_net.json (see EXPERIMENTS.md for the measurement recipe).
#
# --compaction-smoke exercises the full production log pipeline (DESIGN.md
# §15) end to end on a loopback cluster: request batching, leader-lease reads
# at --read-fraction=0.5, and auto-trim at --trim-watermark=512. loadgen's own
# exit code enforces the contract — served reads never dip below their
# read-your-writes watermark and the leader's log actually compacted.
#
# --chaos-smoke runs the chaos fuzzer (DESIGN.md §10) end to end: N seeded
# schedules per protocol with replay-determinism checking, in both a plain
# Release build and the ASan+UBSan build; then verifies the oracle pipeline
# actually fires by expecting the --mutant=stuck-link sanity schedule to be
# caught, shrunk, and replayed from its dumped artifact.
#
# --coverage builds with gcc's --coverage instrumentation (default dir:
# build-cov), runs the full CTest suite, and aggregates raw `gcov -n` output
# into per-directory line-coverage percentages with awk — no lcov/gcovr
# needed. DESIGN.md §12 cites the resulting numbers.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

step() { printf '\n== %s ==\n' "$*"; }

if [ "${1:-}" = "--static" ]; then
  # No cmake here: the analyzer is dependency-free, so a direct parallel
  # compile keeps the cold path under ten seconds and warm reruns instant
  # (the binary is reused until an analyzer source changes).
  OUT="${2:-$ROOT/build-static}"
  BIN="$OUT/opx_analyze"
  mkdir -p "$OUT"
  STALE=0
  if [ ! -x "$BIN" ]; then
    STALE=1
  else
    for f in "$ROOT"/tools/analyze/*.cc "$ROOT"/tools/analyze/*.h; do
      if [ "$f" -nt "$BIN" ]; then STALE=1; fi
    done
  fi
  if [ "$STALE" -eq 1 ]; then
    step "compile opx_analyze (direct, no cmake) -> $BIN"
    PIDS=""
    for f in tokenizer cfg dataflow callgraph checks taint_checks default_config \
             baseline main; do
      "${CXX:-c++}" -O0 -std=c++20 -I"$ROOT" -c "$ROOT/tools/analyze/$f.cc" \
        -o "$OUT/$f.o" &
      PIDS="$PIDS $!"
    done
    CFAIL=0
    for p in $PIDS; do wait "$p" || CFAIL=1; done
    [ "$CFAIL" -eq 0 ] || { echo "compile FAILED"; exit 1; }
    "${CXX:-c++}" "$OUT/tokenizer.o" "$OUT/cfg.o" "$OUT/dataflow.o" \
      "$OUT/callgraph.o" "$OUT/checks.o" "$OUT/taint_checks.o" \
      "$OUT/default_config.o" "$OUT/baseline.o" "$OUT/main.o" \
      -pthread -o "$BIN" ||
      { echo "link FAILED"; exit 1; }
    echo "ok"
  fi
  step "opx_analyze over src/, tests/, bench/ (thirteen checks, baseline-filtered)"
  exec "$BIN" --root="$ROOT"
fi

if [ "${1:-}" = "--tsan" ]; then
  BUILD="${2:-$ROOT/build-tsan}"
  step "TSan build (-DOPX_SANITIZE=thread) -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DOPX_SANITIZE=thread >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" --target opx_tests >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"
  step "net tests under TSan (threaded real-I/O tier)"
  if "$BUILD/tests/opx_tests" --gtest_filter='*Tcp*'; then
    echo "ok"
  else
    echo "TSan net smoke FAILED"
    exit 1
  fi
  exit 0
fi

if [ "${1:-}" = "--coverage" ]; then
  BUILD="${2:-$ROOT/build-cov}"
  command -v gcov >/dev/null 2>&1 || { echo "gcov not installed"; exit 1; }

  step "coverage build (gcc --coverage) -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage \
    >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"

  step "ctest (collecting .gcda)"
  find "$BUILD" -name '*.gcda' -delete
  if (cd "$BUILD" && ctest -j "$JOBS" --output-on-failure >"$BUILD.ctest.log" 2>&1); then
    echo "ok"
  else
    echo "ctest FAILED (see $BUILD.ctest.log)"
    exit 1
  fi

  step "per-directory line coverage (gcov -n, awk aggregate)"
  # gcov prints, per source file:  File '<path>' / Lines executed:P% of N.
  # Split on single quotes to recover the path, keep only repo sources, and
  # dedupe headers covered from several TUs by keeping the largest N seen.
  find "$BUILD" -name '*.gcda' -print0 |
    xargs -0 gcov -n 2>/dev/null |
    awk -F"'" -v root="$ROOT/" '
      /^File / { file = $2; sub("^" root, "", file); next }
      /^Lines executed:/ {
        if (file == "" || file ~ /^\//) { file = ""; next }
        split($0, a, ":"); split(a[2], b, "% of ")
        total = b[2] + 0
        if (total > ftotal[file]) {
          ftotal[file] = total
          fexec[file] = (b[1] + 0) * total / 100.0
        }
        file = ""
      }
      END {
        for (f in ftotal) {
          n = split(f, parts, "/")
          dir = parts[1]
          if (n > 2) dir = parts[1] "/" parts[2]
          dt[dir] += ftotal[f]; de[dir] += fexec[f]
          gt += ftotal[f]; ge += fexec[f]
        }
        cmd = "sort"
        for (d in dt)
          printf "  %-22s %6.1f%%  (%d of %d lines)\n",
                 d, 100 * de[d] / dt[d], de[d] + 0.5, dt[d] | cmd
        close(cmd)
        if (gt > 0)
          printf "  %-22s %6.1f%%  (%d of %d lines)\n",
                 "TOTAL", 100 * ge / gt, ge + 0.5, gt
      }'
  exit 0
fi

if [ "${1:-}" = "--bench-smoke" ]; then
  BUILD="${2:-$ROOT/build-bench}"
  step "release build -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" --target sim_throughput >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"
  step "sim_throughput quick -> BENCH_core.json"
  "$BUILD/bench/sim_throughput" --out="$ROOT/BENCH_core.json" || exit 1
  echo "ok"
  exit 0
fi

if [ "${1:-}" = "--net-bench-smoke" ]; then
  BUILD="${2:-$ROOT/build-bench}"
  step "release build -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" --target loadgen >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"
  step "loadgen smoke: 3-node loopback cluster, 2s burst, fd-leak check"
  # Exit code covers the whole contract: cluster up + leader elected +
  # decided ops > 0 + no fd leaked across start/teardown. The tracked
  # BENCH_net.json is NOT refreshed here — a 2s burst on a busy CI box is
  # not a measurement; see EXPERIMENTS.md for the real recipe.
  if "$BUILD/bench/loadgen" --duration-s=2 --warmup-s=1 --check-fds; then
    echo "ok"
  else
    echo "net bench smoke FAILED"
    exit 1
  fi
  exit 0
fi

if [ "${1:-}" = "--compaction-smoke" ]; then
  BUILD="${2:-$ROOT/build-bench}"
  step "release build -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" --target loadgen >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"
  step "compaction smoke: lease reads + auto-trim, 3s mixed burst"
  # loadgen exits non-zero if any served read lands below its watermark or if
  # --trim-watermark produced no compaction. The tracked BENCH_net.json is
  # refreshed from the 30s recipe in EXPERIMENTS.md, not from this smoke.
  if "$BUILD/bench/loadgen" --duration-s=3 --warmup-s=1 --read-fraction=0.5 \
      --trim-watermark=512 --check-fds; then
    echo "ok"
  else
    echo "compaction smoke FAILED"
    exit 1
  fi
  exit 0
fi

if [ "${1:-}" = "--chaos-smoke" ]; then
  SCHEDULES="${2:-10}"
  PLAIN="$ROOT/build-bench"
  ASAN="$ROOT/build-asan"

  step "release build -> $PLAIN"
  cmake -B "$PLAIN" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    >"$PLAIN.configure.log" 2>&1 ||
    { echo "configure FAILED (see $PLAIN.configure.log)"; exit 1; }
  cmake --build "$PLAIN" -j "$JOBS" --target chaos_fuzz >"$PLAIN.build.log" 2>&1 ||
    { echo "build FAILED (see $PLAIN.build.log)"; exit 1; }
  echo "ok"

  step "sanitized build (ASan+UBSan) -> $ASAN"
  cmake -B "$ASAN" -S "$ROOT" -DOPX_SANITIZE=ON >"$ASAN.configure.log" 2>&1 ||
    { echo "configure FAILED (see $ASAN.configure.log)"; exit 1; }
  cmake --build "$ASAN" -j "$JOBS" --target chaos_fuzz >"$ASAN.build.log" 2>&1 ||
    { echo "build FAILED (see $ASAN.build.log)"; exit 1; }
  echo "ok"

  ARTDIR="$(mktemp -d)"
  trap 'rm -rf "$ARTDIR"' EXIT

  step "chaos fuzz: $SCHEDULES schedules/protocol, deterministic replay (release)"
  if "$PLAIN/tools/chaos_fuzz" --protocol=all --schedules="$SCHEDULES" --seed=1 \
      --check-determinism --out-dir="$ARTDIR"; then
    echo "ok"
  else
    echo "chaos fuzz FAILED (artifact in $ARTDIR; repro command above)"
    FAILED=1
  fi

  step "chaos fuzz: $SCHEDULES schedules/protocol (ASan+UBSan)"
  if "$ASAN/tools/chaos_fuzz" --protocol=all --schedules="$SCHEDULES" --seed=1 \
      --out-dir="$ARTDIR"; then
    echo "ok"
  else
    echo "chaos fuzz under sanitizers FAILED"
    FAILED=1
  fi

  step "oracle sanity: --mutant=stuck-link must be caught, shrunk, and replay"
  if "$PLAIN/tools/chaos_fuzz" --protocol=omni --schedules=1 --seed=7 \
      --mutant=stuck-link --out-dir="$ARTDIR"; then
    echo "mutant NOT caught — oracle pipeline is broken"
    FAILED=1
  elif "$PLAIN/tools/chaos_fuzz" --replay="$ARTDIR/chaos-omni-seed7.chaos"; then
    echo "ok"
  else
    echo "mutant artifact did not replay deterministically"
    FAILED=1
  fi

  step "summary"
  if [ "$FAILED" -eq 0 ]; then
    echo "chaos smoke passed"
  else
    echo "CHAOS SMOKE FAILED"
  fi
  exit "$FAILED"
fi

BUILD="${1:-$ROOT/build-asan}"

step "sanitized build (ASan+UBSan) -> $BUILD"
cmake -B "$BUILD" -S "$ROOT" -DOPX_SANITIZE=ON >"$BUILD.configure.log" 2>&1 ||
  { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
cmake --build "$BUILD" -j "$JOBS" >"$BUILD.build.log" 2>&1 ||
  { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
echo "ok"

step "opx_analyze: protocol-aware static checks (DESIGN.md §11)"
if "$BUILD/tools/analyze/opx_analyze" --root="$ROOT"; then
  echo "ok"
else
  echo "opx_analyze FAILED"
  FAILED=1
fi

step "ctest under sanitizers (auditor on)"
if (cd "$BUILD" && ctest --output-on-failure -j "$JOBS"); then
  echo "ok"
else
  echo "ctest FAILED"
  FAILED=1
fi

step "TSan net smoke (-DOPX_SANITIZE=thread)"
if "$ROOT/tools/run_checks.sh" --tsan "$ROOT/build-tsan"; then
  echo "ok"
else
  echo "TSan smoke FAILED"
  FAILED=1
fi

step "clang-tidy (changed files vs origin/main)"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping"
else
  # compile_commands.json comes from the sanitized build dir.
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null 2>&1
  BASE="$(git -C "$ROOT" merge-base HEAD origin/main 2>/dev/null || echo HEAD)"
  CHANGED="$(git -C "$ROOT" diff --name-only "$BASE" -- '*.cc' '*.h' |
             while read -r f; do [ -f "$ROOT/$f" ] && echo "$ROOT/$f"; done)"
  if [ -z "$CHANGED" ]; then
    echo "no changed C++ files"
  elif echo "$CHANGED" | xargs clang-tidy -p "$BUILD" --quiet; then
    echo "ok"
  else
    echo "clang-tidy FAILED"
    FAILED=1
  fi
fi

step "summary"
if [ "$FAILED" -eq 0 ]; then
  echo "all checks passed"
else
  echo "CHECKS FAILED"
fi
exit "$FAILED"
