#!/usr/bin/env bash
# Full static+dynamic check pipeline, as run before merging:
#   1. sanitized build (ASan+UBSan, assertions live) of everything;
#   2. the complete CTest suite under sanitizers — every scenario/chaos test
#      runs with the cross-replica safety auditor enabled (the default);
#   3. dispatch-exhaustiveness lint over the message variants;
#   4. clang-tidy over files changed relative to origin/main (skipped with a
#      note when clang-tidy is not installed).
#
# Usage: tools/run_checks.sh [build-dir]      (default: build-asan)
#        tools/run_checks.sh --bench-smoke [build-dir]
#
# --bench-smoke instead does a Release build (default dir: build-bench), runs
# the sim_throughput quick benchmark, and refreshes BENCH_core.json at the
# repo root — the tracked perf baseline DESIGN.md's before/after table cites.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

step() { printf '\n== %s ==\n' "$*"; }

if [ "${1:-}" = "--bench-smoke" ]; then
  BUILD="${2:-$ROOT/build-bench}"
  step "release build -> $BUILD"
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    >"$BUILD.configure.log" 2>&1 ||
    { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
  cmake --build "$BUILD" -j "$JOBS" --target sim_throughput >"$BUILD.build.log" 2>&1 ||
    { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
  echo "ok"
  step "sim_throughput quick -> BENCH_core.json"
  "$BUILD/bench/sim_throughput" --out="$ROOT/BENCH_core.json" || exit 1
  echo "ok"
  exit 0
fi

BUILD="${1:-$ROOT/build-asan}"

step "sanitized build (ASan+UBSan) -> $BUILD"
cmake -B "$BUILD" -S "$ROOT" -DOPX_SANITIZE=ON >"$BUILD.configure.log" 2>&1 ||
  { echo "configure FAILED (see $BUILD.configure.log)"; exit 1; }
cmake --build "$BUILD" -j "$JOBS" >"$BUILD.build.log" 2>&1 ||
  { echo "build FAILED (see $BUILD.build.log)"; exit 1; }
echo "ok"

step "ctest under sanitizers (auditor on)"
if (cd "$BUILD" && ctest --output-on-failure -j "$JOBS"); then
  echo "ok"
else
  echo "ctest FAILED"
  FAILED=1
fi

step "message-variant dispatch lint"
if python3 "$ROOT/tools/lint_handlers.py"; then
  echo "ok"
else
  echo "lint_handlers FAILED"
  FAILED=1
fi

step "clang-tidy (changed files vs origin/main)"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping"
else
  # compile_commands.json comes from the sanitized build dir.
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null 2>&1
  BASE="$(git -C "$ROOT" merge-base HEAD origin/main 2>/dev/null || echo HEAD)"
  CHANGED="$(git -C "$ROOT" diff --name-only "$BASE" -- '*.cc' '*.h' |
             while read -r f; do [ -f "$ROOT/$f" ] && echo "$ROOT/$f"; done)"
  if [ -z "$CHANGED" ]; then
    echo "no changed C++ files"
  elif echo "$CHANGED" | xargs clang-tidy -p "$BUILD" --quiet; then
    echo "ok"
  else
    echo "clang-tidy FAILED"
    FAILED=1
  fi
fi

step "summary"
if [ "$FAILED" -eq 0 ]; then
  echo "all checks passed"
else
  echo "CHECKS FAILED"
fi
exit "$FAILED"
