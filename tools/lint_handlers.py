#!/usr/bin/env python3
"""Dispatch-exhaustiveness lint for the message variants.

Every protocol's wire format is a std::variant, and every handler dispatches
on it with std::visit/is_same_v chains or get_if ladders. C++ makes it easy to
add a variant alternative and silently never handle it (a get_if ladder just
falls through). This lint parses each `using X = std::variant<...>;` and
verifies every alternative is named in at least one dispatch expression
(is_same_v<T, A>, get_if<A>, holds_alternative<A>, std::get<A>) in the files
that handle that variant.

Run from the repo root (tools/run_checks.sh does):  python3 tools/lint_handlers.py
Exit status 0 = every alternative handled, 1 = missing cases, 2 = parse error.
"""

import os
import re
import sys

# (variant name, header that defines it, files that must dispatch on it)
VARIANTS = [
    ("PaxosMessage", "src/omnipaxos/messages.h", ["src/omnipaxos/sequence_paxos.cc"]),
    ("BleMessage", "src/omnipaxos/messages.h", ["src/omnipaxos/ble.cc"]),
    ("OmniMessage", "src/omnipaxos/omni_paxos.h", ["src/omnipaxos/omni_paxos.cc"]),
    ("RaftMessage", "src/raft/messages.h", ["src/raft/raft.cc"]),
    ("MpxMessage", "src/multipaxos/messages.h", ["src/multipaxos/multipaxos.cc"]),
    ("VrMessage", "src/vr/vr_election.h", ["src/vr/vr_election.cc"]),
    ("VrWire", "src/vr/vr_replica.h", ["src/vr/vr_replica.h"]),
]


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def split_alternatives(body):
    """Split the variant's template-argument list on top-level commas."""
    alts, depth, cur = [], 0, []
    for ch in body:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            alts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        alts.append("".join(cur).strip())
    return [a for a in alts if a]


def parse_variant(header_text, name):
    m = re.search(
        r"using\s+" + re.escape(name) + r"\s*=\s*std::variant<(.*?)>\s*;",
        header_text,
        flags=re.S,
    )
    if m is None:
        return None
    return split_alternatives(re.sub(r"\s+", " ", m.group(1)))


def dispatch_pattern(alt):
    """Match any dispatch expression naming `alt`, namespace-qualified or not."""
    unqualified = alt.split("::")[-1]
    name = r"(?:\w+::)*" + re.escape(unqualified)
    return re.compile(
        r"(?:is_same_v\s*<\s*T\s*,\s*|get_if\s*<\s*|holds_alternative\s*<\s*|std::get\s*<\s*)"
        + name
        + r"\s*>"
    )


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    missing = []
    checked = 0
    for name, header, dispatch_files in VARIANTS:
        header_path = os.path.join(root, header)
        try:
            header_text = strip_comments(open(header_path).read())
        except OSError as e:
            print(f"error: cannot read {header}: {e}", file=sys.stderr)
            return 2
        alts = parse_variant(header_text, name)
        if alts is None:
            print(f"error: no `using {name} = std::variant<...>;` in {header}",
                  file=sys.stderr)
            return 2
        dispatch_text = ""
        for f in dispatch_files:
            try:
                dispatch_text += strip_comments(open(os.path.join(root, f)).read())
            except OSError as e:
                print(f"error: cannot read {f}: {e}", file=sys.stderr)
                return 2
        for alt in alts:
            checked += 1
            if not dispatch_pattern(alt).search(dispatch_text):
                missing.append((name, alt, dispatch_files))

    if missing:
        for name, alt, files in missing:
            print(f"MISSING: {name} alternative `{alt}` has no dispatch case "
                  f"in {', '.join(files)}")
        print(f"\nlint_handlers: {len(missing)} missing of {checked} alternatives")
        return 1
    print(f"lint_handlers: all {checked} variant alternatives across "
          f"{len(VARIANTS)} message variants have dispatch cases")
    return 0


if __name__ == "__main__":
    sys.exit(main())
