// scenario_runner — run any protocol through any partial-connectivity
// scenario (or fault-free) with custom parameters, from the command line.
//
//   scenario_runner --protocol=omnipaxos --scenario=quorum-loss \
//                   --timeout-ms=50 --partition-s=30 --servers=5 --seed=7
//
//   --protocol     omnipaxos | raft | raft-pvcq | vr | multipaxos   [omnipaxos]
//   --scenario     none | quorum-loss | constrained | chained       [none]
//   --servers      cluster size (chained forces 3)                  [5]
//   --timeout-ms   election timeout T                               [50]
//   --cp           concurrent proposals                             [500]
//   --duration-s   fault-free run duration (scenario=none)          [30]
//   --partition-s  partition duration (scenario!=none)              [30]
//   --rate         leader admission rate, proposals/s               [50000]
//   --audit        run the cross-replica safety auditor             [true]
//   --seed         RNG seed                                         [1]
//   --wan          WAN latencies (scenario=none only)               [false]
#include <cstdio>
#include <string>

#include "src/rsm/experiments.h"
#include "src/util/flags.h"

namespace opx {
namespace {

template <typename Node>
int RunNone(const Flags& flags) {
  rsm::NormalConfig cfg;
  cfg.num_servers = static_cast<int>(flags.GetInt("servers", 5));
  cfg.concurrent_proposals = static_cast<size_t>(flags.GetInt("cp", 500));
  cfg.election_timeout = Millis(flags.GetInt("timeout-ms", 50));
  cfg.duration = Seconds(flags.GetInt("duration-s", 30));
  cfg.warmup = Seconds(5);
  cfg.wan = flags.GetBool("wan", false);
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.proposal_rate = flags.GetDouble("rate", 50'000.0);
  cfg.audit = flags.GetBool("audit", true);
  if (cfg.wan && cfg.election_timeout < Millis(300)) {
    std::fprintf(stderr, "note: raising election timeout to 500 ms (> WAN RTT)\n");
    cfg.election_timeout = Millis(500);
  }
  const rsm::NormalResult r = rsm::RunNormal<Node>(cfg);
  std::printf("throughput:        %.0f ops/s\n", r.throughput);
  std::printf("mean latency:      %.2f ms\n", r.mean_latency_s * 1e3);
  std::printf("election I/O:      %.4f%% of total\n", r.election_io_share * 100.0);
  std::printf("leader elevations: %lu\n", r.leader_elevations);
  return 0;
}

template <typename Node>
int RunScenario(const Flags& flags, rsm::Scenario scenario) {
  rsm::PartitionConfig cfg;
  cfg.scenario = scenario;
  cfg.num_servers =
      scenario == rsm::Scenario::kChained ? 3 : static_cast<int>(flags.GetInt("servers", 5));
  cfg.election_timeout = Millis(flags.GetInt("timeout-ms", 50));
  cfg.partition_duration = Seconds(flags.GetInt("partition-s", 30));
  cfg.concurrent_proposals = static_cast<size_t>(flags.GetInt("cp", 500));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.proposal_rate = flags.GetDouble("rate", 50'000.0);
  cfg.audit = flags.GetBool("audit", true);
  const rsm::PartitionResult r = rsm::RunPartition<Node>(cfg);
  std::printf("scenario:          %s\n", rsm::ScenarioName(scenario).c_str());
  std::printf("recovered:         %s\n", r.recovered ? "yes (progress during partition)"
                                                     : "NO (down until heal)");
  std::printf("down-time:         %.3f s\n", ToSeconds(r.downtime));
  std::printf("decided during:    %lu\n", r.decided_during);
  std::printf("leader elevations: %lu\n", r.leader_elevations);
  std::printf("epoch increments:  %lu\n", r.epoch_increments);
  std::printf("leader at cut:     s%d -> after: s%d\n", r.leader_at_cut, r.leader_after);
  return 0;
}

template <typename Node>
int Dispatch(const Flags& flags, const std::string& scenario) {
  if (scenario == "none") {
    return RunNone<Node>(flags);
  }
  if (scenario == "quorum-loss") {
    return RunScenario<Node>(flags, rsm::Scenario::kQuorumLoss);
  }
  if (scenario == "constrained") {
    return RunScenario<Node>(flags, rsm::Scenario::kConstrained);
  }
  if (scenario == "chained") {
    return RunScenario<Node>(flags, rsm::Scenario::kChained);
  }
  std::fprintf(stderr, "unknown --scenario=%s\n", scenario.c_str());
  return 2;
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "usage: scenario_runner --protocol=P --scenario=S [options]\n"
        "  P: omnipaxos | raft | raft-pvcq | vr | multipaxos\n"
        "  S: none | quorum-loss | constrained | chained\n"
        "  options: --servers --timeout-ms --cp --duration-s --partition-s --rate --seed --wan --audit\n");
    return 0;
  }
  const std::string protocol = flags.GetString("protocol", "omnipaxos");
  const std::string scenario = flags.GetString("scenario", "none");
  std::printf("protocol: %s\n", protocol.c_str());
  if (protocol == "omnipaxos") {
    return Dispatch<rsm::OmniNode>(flags, scenario);
  }
  if (protocol == "raft") {
    return Dispatch<rsm::RaftNode>(flags, scenario);
  }
  if (protocol == "raft-pvcq") {
    return Dispatch<rsm::RaftPvCqNode>(flags, scenario);
  }
  if (protocol == "vr") {
    return Dispatch<rsm::VrNode>(flags, scenario);
  }
  if (protocol == "multipaxos") {
    return Dispatch<rsm::MultiPaxosNode>(flags, scenario);
  }
  std::fprintf(stderr, "unknown --protocol=%s\n", protocol.c_str());
  return 2;
}
