// Dumps ClusterSim determinism fingerprints for fixed seeds/scenarios.
//
// The fingerprint is the rolling hash ClusterSim folds over every audited
// event (virtual time + node id), so it pins the exact event sequence of a
// run. Use this tool to (re)generate the golden values asserted by the
// DeterminismLock tests in tests/sim_test.cc whenever a change is *supposed*
// to alter event ordering; a core rewrite that claims to preserve semantics
// must reproduce these values bit-for-bit.
//
// Usage: fingerprint [--json]
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/rsm/adapters.h"
#include "src/rsm/cluster_sim.h"

namespace opx {
namespace {

// Mirrors RunFingerprint in tests/sim_test.cc: 3 servers, 3 virtual seconds,
// optionally isolating server 1 for second 1..2.
template <typename Node>
uint64_t RunFingerprint(uint64_t seed, bool partition) {
  rsm::ClusterParams params;
  params.num_servers = 3;
  params.election_timeout = Millis(50);
  params.seed = seed;
  rsm::ClusterSim<Node> sim(params);
  sim.RunUntil(Seconds(1));
  if (partition) {
    sim.network().Isolate(1);
    sim.RunUntil(Seconds(2));
    sim.network().HealAll();
  }
  sim.RunUntil(Seconds(3));
  return sim.EventHash();
}

struct Row {
  const char* protocol;
  uint64_t seed;
  bool partition;
  uint64_t hash;
};

}  // namespace
}  // namespace opx

int main(int argc, char** argv) {
  using namespace opx;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  const Row rows[] = {
      {"omni", 11, false, RunFingerprint<rsm::OmniNode>(11, false)},
      {"omni", 23, true, RunFingerprint<rsm::OmniNode>(23, true)},
      {"raft", 11, false, RunFingerprint<rsm::RaftNode>(11, false)},
      {"vr", 23, true, RunFingerprint<rsm::VrNode>(23, true)},
  };

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
      std::printf("  {\"protocol\": \"%s\", \"seed\": %" PRIu64
                  ", \"partition\": %s, \"fingerprint\": \"0x%016" PRIx64 "\"}%s\n",
                  rows[i].protocol, rows[i].seed, rows[i].partition ? "true" : "false",
                  rows[i].hash, i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
    }
    std::printf("]\n");
  } else {
    for (const Row& r : rows) {
      std::printf("%-6s seed=%-3" PRIu64 " partition=%d  0x%016" PRIx64 "\n", r.protocol,
                  r.seed, r.partition, r.hash);
    }
  }
  return 0;
}
