// wal_inspect — print the recovered state of an omni_node write-ahead log.
//
//   wal_inspect /var/lib/omnipaxos/node1.wal [--entries] [--tail=N]
#include <cstdio>
#include <string>

#include "src/omnipaxos/durable_storage.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace opx;
  Flags flags(argc, argv);
  if (flags.positional().empty() || flags.GetBool("help", false)) {
    std::printf("usage: wal_inspect PATH [--entries] [--tail=N]\n");
    return flags.GetBool("help", false) ? 0 : 2;
  }
  const std::string path = flags.positional()[0];
  auto storage = omni::DurableStorage::Recover(path);
  if (storage == nullptr) {
    std::fprintf(stderr, "wal_inspect: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto& promised = storage->promised_round();
  const auto& accepted = storage->accepted_round();
  std::printf("wal:            %s\n", path.c_str());
  std::printf("promised round: (n=%lu, prio=%u, pid=%d)\n", promised.n, promised.priority,
              promised.pid);
  std::printf("accepted round: (n=%lu, prio=%u, pid=%d)\n", accepted.n, accepted.priority,
              accepted.pid);
  std::printf("log length:     %lu (compacted below %lu)\n", storage->log_len(),
              storage->compacted_idx());
  std::printf("decided index:  %lu\n", storage->decided_idx());

  uint64_t commands = 0, stop_signs = 0, payload_bytes = 0;
  for (LogIndex i = storage->compacted_idx(); i < storage->log_len(); ++i) {
    const omni::Entry& e = storage->At(i);
    if (e.IsStopSign()) {
      ++stop_signs;
    } else {
      ++commands;
      payload_bytes += e.payload_bytes;
    }
  }
  std::printf("in memory:      %lu commands (%lu payload bytes), %lu stop-signs\n",
              commands, payload_bytes, stop_signs);

  if (flags.Has("entries") || flags.Has("tail")) {
    const uint64_t tail = static_cast<uint64_t>(flags.GetInt("tail", 0));
    LogIndex from = storage->compacted_idx();
    if (tail > 0 && storage->log_len() - from > tail) {
      from = storage->log_len() - tail;
    }
    for (LogIndex i = from; i < storage->log_len(); ++i) {
      const omni::Entry& e = storage->At(i);
      const char* mark = i < storage->decided_idx() ? "decided " : "accepted";
      if (e.IsStopSign()) {
        std::printf("  [%8lu] %s stop-sign -> config %u (", i, mark,
                    e.stop_sign->next_config);
        for (size_t k = 0; k < e.stop_sign->next_nodes.size(); ++k) {
          std::printf("%s%d", k == 0 ? "" : ",", e.stop_sign->next_nodes[k]);
        }
        std::printf(")\n");
      } else {
        std::printf("  [%8lu] %s cmd#%lu (%u bytes)\n", i, mark, e.cmd_id,
                    e.payload_bytes);
      }
    }
  }
  return 0;
}
