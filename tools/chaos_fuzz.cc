// chaos_fuzz — seeded chaos-schedule fuzzer with the safety auditor and
// liveness oracles as test oracle (DESIGN.md §10).
//
// Fuzz mode (default): generates `--schedules` randomized fault schedules per
// protocol from `--seed`, runs each against the protocol adapter, and on the
// first oracle violation shrinks the schedule with delta debugging, writes a
// replayable artifact, prints a one-command repro, and exits 1.
//
//   tools/chaos_fuzz --protocol=all --schedules=100 --seed=1
//   tools/chaos_fuzz --protocol=omni --schedules=1000 --check-determinism
//
// Replay mode: re-runs a dumped artifact bit-for-bit and verifies both the
// recorded oracle verdict and the determinism fingerprint.
//
//   tools/chaos_fuzz --replay=chaos-omni-seed42.chaos
//
// Corpus mode: dumps every schedule (plan + fingerprint + verdict) as an
// artifact into a directory — how tests/chaos_corpus/ entries are minted.
//
//   tools/chaos_fuzz --protocol=omni --schedules=8 --dump=corpus-dir
//
// Sanity-check mode: --mutant=stuck-link appends a full-mesh server cut that
// never heals. The liveness oracles must catch it, the shrinker must reduce
// it, and the artifact must replay — verifying the whole pipeline end-to-end.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/obs/trace_view.h"
#include "src/rsm/chaos.h"
#include "src/sim/chaos_plan.h"
#include "src/util/flags.h"

namespace opx {
namespace {

using rsm::ChaosArtifact;
using rsm::ChaosConfig;
using rsm::ChaosOracle;
using rsm::ChaosOutcome;
using rsm::ChaosShrinkResult;

struct FuzzOptions {
  std::vector<std::string> protocols;
  int schedules = 100;
  uint64_t seed = 1;
  int num_servers = 5;
  Time election_timeout = Millis(50);
  bool shrink = true;
  bool check_determinism = false;
  std::string dump_dir;
  std::string out_dir = ".";
  std::string mutant;  // "", "stuck-link"
  // Log-pipeline fuzzing (DESIGN.md §15). Trim faults are generated only for
  // protocols with a compaction path; the watermark/read knobs additionally
  // exercise the automatic trim policy and the lease-read path under faults.
  bool allow_trim = true;
  uint64_t trim_watermark = 0;
  double read_fraction = 0.0;
};

ChaosConfig MakeConfig(const FuzzOptions& opt, const sim::ChaosPlan& plan) {
  ChaosConfig cfg;
  cfg.plan = plan;
  cfg.election_timeout = opt.election_timeout;
  cfg.trim_watermark = opt.trim_watermark;
  cfg.read_fraction = opt.read_fraction;
  return cfg;
}

// Appends the sanity-check mutant: a full-mesh cut of all server links that
// starts at the horizon and never clears. Every protocol must flunk a
// liveness oracle on such a plan; if the pipeline stays green the oracles are
// broken.
void ApplyStuckLinkMutant(sim::ChaosPlan* plan) {
  const Time window_guard = Minutes(30);  // far past any liveness window
  for (NodeId a = 1; a <= plan->num_servers; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b <= plan->num_servers; ++b) {
      sim::ChaosFault f;
      f.kind = sim::ChaosFault::Kind::kLinkCut;
      f.at = plan->horizon;
      f.duration = window_guard;
      f.a = a;
      f.b = b;
      plan->faults.push_back(f);
    }
  }
  // The horizon stays put: oracles measure from the last *intended* heal, so
  // the stuck links are exactly the kind of bug they exist to catch.
}

std::string ArtifactPath(const std::string& dir, const std::string& protocol,
                         uint64_t seed) {
  std::ostringstream p;
  p << dir << "/chaos-" << protocol << "-seed" << seed << ".chaos";
  return p.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

// Re-runs the (already shrunk) violating config with a trace sink attached and
// returns the final ~64 events as JSONL lines for embedding in the artifact.
// The sink never perturbs the schedule, so the replayed fingerprint still
// matches; a compiled-out obs build just yields an empty slice.
template <typename Node>
std::vector<std::string> CaptureTraceSlice(const ChaosConfig& cfg) {
  std::vector<std::string> lines;
#if defined(OPX_OBS_ENABLED)
  obs::ObsSink sink;
  ChaosConfig traced = cfg;
  traced.obs = &sink;
  (void)rsm::RunChaos<Node>(traced);
  const obs::TraceView tail = obs::TraceView::FromSink(sink).Tail(64);
  lines.reserve(tail.size());
  for (const obs::TraceEvent& e : tail.events()) {
    lines.push_back(obs::ToJson(e));
  }
#else
  (void)cfg;
#endif
  return lines;
}

template <typename Node>
int FuzzProtocol(const FuzzOptions& opt, const std::string& protocol) {
  sim::ChaosGenParams gen;
  gen.num_servers = opt.num_servers;
  gen.allow_crash = Node::kSupportsRestart;
  gen.allow_trim = opt.allow_trim && Node::kSupportsTrim;

  uint64_t total_faults = 0;
  for (int k = 0; k < opt.schedules; ++k) {
    const uint64_t seed = opt.seed + static_cast<uint64_t>(k);
    sim::ChaosPlan plan = sim::GenerateChaosPlan(gen, seed);
    if (opt.mutant == "stuck-link") {
      ApplyStuckLinkMutant(&plan);
    }
    total_faults += plan.faults.size();
    ChaosConfig cfg = MakeConfig(opt, plan);
    const ChaosOutcome outcome = rsm::RunChaos<Node>(cfg);

    if (opt.check_determinism && outcome.ok()) {
      const ChaosOutcome rerun = rsm::RunChaos<Node>(cfg);
      if (rerun.fingerprint != outcome.fingerprint) {
        std::printf("[%s seed=%" PRIu64 "] NON-DETERMINISTIC REPLAY: %" PRIx64
                    " vs %" PRIx64 "\n",
                    protocol.c_str(), seed, outcome.fingerprint, rerun.fingerprint);
        return 1;
      }
    }

    if (!opt.dump_dir.empty()) {
      ChaosArtifact art;
      art.protocol = protocol;
      art.config = cfg;
      art.violated = outcome.violated;
      art.fingerprint = outcome.fingerprint;
      std::ostringstream note;
      note << "generated by chaos_fuzz --protocol=" << protocol << " --seed=" << seed
           << " --servers=" << opt.num_servers;
      art.note = note.str();
      const std::string path = ArtifactPath(opt.dump_dir, protocol, seed);
      if (!WriteFile(path, art.Serialize())) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
    }

    if (!outcome.ok()) {
      std::printf("[%s seed=%" PRIu64 "] VIOLATION (%s): %s\n", protocol.c_str(), seed,
                  rsm::ChaosOracleName(outcome.violated), outcome.detail.c_str());
      sim::ChaosPlan minimal = plan;
      ChaosOutcome final_outcome = outcome;
      if (opt.shrink) {
        const ChaosShrinkResult shrunk = rsm::ShrinkChaos<Node>(cfg, outcome.violated);
        std::printf("  shrink: %zu -> %zu faults (%zu runs)\n", plan.faults.size(),
                    shrunk.plan.faults.size(), shrunk.runs);
        minimal = shrunk.plan;
        final_outcome = shrunk.outcome;
      }
      ChaosArtifact art;
      art.protocol = protocol;
      art.config = MakeConfig(opt, minimal);
      art.violated = final_outcome.violated;
      art.fingerprint = final_outcome.fingerprint;
      art.trace_lines = CaptureTraceSlice<Node>(art.config);
      std::ostringstream note;
      note << "shrunk from seed " << seed << " (" << plan.faults.size() << " faults)"
           << (opt.mutant.empty() ? "" : " with mutant ") << opt.mutant;
      art.note = note.str();
      const std::string path = ArtifactPath(opt.out_dir, protocol, seed);
      if (!WriteFile(path, art.Serialize())) {
        std::fprintf(stderr, "cannot write artifact %s\n", path.c_str());
        return 2;
      }
      std::printf("  artifact: %s\n  repro:    tools/chaos_fuzz --replay=%s\n",
                  path.c_str(), path.c_str());
      return 1;
    }
  }
  std::printf("[%s] %d schedules ok (%" PRIu64 " faults%s)\n", protocol.c_str(),
              opt.schedules, total_faults,
              opt.check_determinism ? ", deterministic replays" : "");
  return 0;
}

int Replay(const std::string& path, const std::string& trace_path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<ChaosArtifact> art = ChaosArtifact::Parse(buf.str());
  if (!art) {
    std::fprintf(stderr, "malformed artifact %s\n", path.c_str());
    return 2;
  }
#if defined(OPX_OBS_ENABLED)
  obs::ObsSink sink;
  if (!trace_path.empty()) {
    art->config.obs = &sink;
  }
#else
  if (!trace_path.empty()) {
    std::fprintf(stderr, "--trace requires an OPX_OBS=ON build\n");
    return 2;
  }
#endif
  const rsm::ChaosReplayResult r = rsm::ReplayChaosArtifact(*art);
#if defined(OPX_OBS_ENABLED)
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    if (!tf) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
    obs::WriteJsonl(tf, sink.Events());
    std::printf("trace: %zu events -> %s (%" PRIu64 " dropped)\n", sink.size(),
                trace_path.c_str(), sink.dropped());
  }
#endif
  std::printf("replay %s [%s, %zu faults]\n  recorded: %s  observed: %s\n"
              "  fingerprint %s (%" PRIx64 ")\n",
              path.c_str(), art->protocol.c_str(), art->config.plan.faults.size(),
              rsm::ChaosOracleName(art->violated),
              rsm::ChaosOracleName(r.outcome.violated),
              r.matches ? "match" : "MISMATCH", r.outcome.fingerprint);
  if (!r.outcome.detail.empty()) {
    std::printf("  detail: %s\n", r.outcome.detail.c_str());
  }
  const bool ok = r.matches && r.outcome.violated == art->violated;
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: chaos_fuzz [--protocol=omni|raft|raft-pvcq|multipaxos|vr|all]\n"
        "                  [--schedules=N] [--seed=S] [--servers=N] [--timeout-ms=T]\n"
        "                  [--shrink=bool] [--check-determinism] [--dump=DIR]\n"
        "                  [--out-dir=DIR] [--mutant=stuck-link] [--replay=FILE]\n"
        "                  [--trace=FILE.jsonl (with --replay: dump the full trace)]\n"
        "                  [--trim=bool] [--trim-watermark=N] [--read-fraction=F]\n");
    return 0;
  }
  if (flags.Has("replay")) {
    return Replay(flags.GetString("replay", ""), flags.GetString("trace", ""));
  }

  FuzzOptions opt;
  const std::string protocol = flags.GetString("protocol", "all");
  if (protocol == "all") {
    opt.protocols = rsm::ChaosProtocolNames();
  } else {
    opt.protocols = {protocol};
  }
  opt.schedules = static_cast<int>(flags.GetInt("schedules", 100));
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opt.num_servers = static_cast<int>(flags.GetInt("servers", 5));
  opt.election_timeout = Millis(flags.GetInt("timeout-ms", 50));
  opt.shrink = flags.GetBool("shrink", true);
  opt.check_determinism = flags.GetBool("check-determinism", false);
  opt.dump_dir = flags.GetString("dump", "");
  opt.out_dir = flags.GetString("out-dir", ".");
  opt.mutant = flags.GetString("mutant", "");
  opt.allow_trim = flags.GetBool("trim", true);
  opt.trim_watermark = static_cast<uint64_t>(flags.GetInt("trim-watermark", 0));
  opt.read_fraction = flags.GetDouble("read-fraction", 0.0);
  if (!opt.mutant.empty() && opt.mutant != "stuck-link") {
    std::fprintf(stderr, "unknown --mutant=%s\n", opt.mutant.c_str());
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  int rc = 0;
  for (const std::string& name : opt.protocols) {
    int proto_rc = -1;
    const bool known = rsm::DispatchChaosProtocol(name, [&](auto tag) {
      using Node = typename decltype(tag)::type;
      proto_rc = FuzzProtocol<Node>(opt, name);
    });
    if (!known) {
      std::fprintf(stderr, "unknown protocol %s\n", name.c_str());
      return 2;
    }
    if (proto_rc != 0) {
      return proto_rc;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("all %zu protocol(s) clean in %.1fs\n", opt.protocols.size(), wall);
  return rc;
}

}  // namespace
}  // namespace opx

int main(int argc, char** argv) { return opx::Main(argc, argv); }
