// omni_node — a real Omni-Paxos server process.
//
//   omni_node --id=1 --port=7001 --peers=2=127.0.0.1:7002,3=127.0.0.1:7003 \
//             --wal=/var/lib/omnipaxos/node1.wal --timeout-ms=100
//
// Run one per machine (or per port on localhost) to form a cluster; connect
// with omni_client to replicate commands. Ctrl-C to stop; restart with the
// same --wal to recover (§4.1.3).
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/net/omni_tcp_server.h"
#include "src/obs/trace.h"
#include "src/util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

// Parses "2=127.0.0.1:7002,3=127.0.0.1:7003".
bool ParsePeers(const std::string& spec, std::map<opx::NodeId, opx::net::Endpoint>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    const size_t eq = item.find('=');
    const size_t colon = item.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      return false;
    }
    const opx::NodeId id = static_cast<opx::NodeId>(std::stoi(item.substr(0, eq)));
    opx::net::Endpoint endpoint;
    endpoint.host = item.substr(eq + 1, colon - eq - 1);
    endpoint.port = static_cast<uint16_t>(std::stoi(item.substr(colon + 1)));
    (*out)[id] = endpoint;
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opx;
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "usage: omni_node --id=N --port=P --peers=ID=HOST:PORT,... "
        "[--wal=PATH] [--timeout-ms=100] [--priority=0] [--metrics]\n"
        "  [--trim-watermark=0]  auto log compaction watermark (entries; 0=off)\n"
        "  [--batch-limit=0]     per-flush accept cap (0 = one batch per pass)\n"
        "  [--lease-rounds=1]    BLE lease length for local reads (0 = off)\n");
    return 0;
  }

  net::ServerOptions options;
  options.id = static_cast<NodeId>(flags.GetInt("id", 0));
  options.listen_port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.wal_path = flags.GetString("wal", "");
  options.election_timeout = Millis(flags.GetInt("timeout-ms", 100));
  options.ble_priority = static_cast<uint32_t>(flags.GetInt("priority", 0));
  options.trim_watermark = static_cast<uint64_t>(flags.GetInt("trim-watermark", 0));
  options.batch_limit = static_cast<uint64_t>(flags.GetInt("batch-limit", 0));
  options.lease_rounds = static_cast<uint64_t>(flags.GetInt("lease-rounds", 1));
  if (options.id == kNoNode || !ParsePeers(flags.GetString("peers", ""), &options.peers)) {
    std::fprintf(stderr, "omni_node: --id and --peers are required (see --help)\n");
    return 2;
  }

  // --metrics wires the transport's net.* instruments and dumps a
  // name-sorted snapshot at shutdown (no-op data in OPX_OBS=OFF builds).
  obs::ObsSink obs_sink;
  const bool want_metrics = flags.GetBool("metrics", false);
  if (want_metrics) {
    options.obs = &obs_sink;
  }

  net::OmniTcpServer server(options);
  if (!server.Start()) {
    std::fprintf(stderr, "omni_node: cannot bind port %u\n", options.listen_port);
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("omni_node %d listening on %u (%zu peers, wal=%s)\n", options.id,
              server.listen_port(), options.peers.size(),
              options.wal_path.empty() ? "<memory>" : options.wal_path.c_str());
  std::fflush(stdout);
  server.Run(g_stop);
  std::printf("omni_node %d: shutting down (decided=%lu)\n", options.id,
              server.decided_idx());
  if (want_metrics) {
    std::printf("-- metrics --\n");
    obs_sink.metrics().Print(std::cout);
  }
  return 0;
}
