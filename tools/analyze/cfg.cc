// Function discovery and CFG construction over the opx_analyze token stream.
// See cfg.h for the contract and DESIGN.md §13 for the design notes.
#include <algorithm>
#include <set>

#include "tools/analyze/cfg.h"

namespace opx::analyze {

namespace {

size_t Match(const std::vector<Tok>& t, size_t open, const char* opener,
             const char* closer) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].Is(opener)) {
      ++depth;
    } else if (t[i].Is(closer)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return t.size();
}

// Statement keywords that look like `ident (`, plus declaration heads that
// can never start a function definition's name token.
bool IsNonFunctionKeyword(const std::string& id) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",   "switch",        "return",  "sizeof",
      "catch",  "new",      "delete",  "alignof",       "decltype", "throw",
      "assert", "constexpr", "static_assert", "alignas", "operator", "case",
      "do",     "else",     "goto",    "co_await",      "co_return"};
  return kKeywords.count(id) > 0;
}

bool IsQualifierTok(const Tok& t) {
  return t.IsIdent("const") || t.IsIdent("noexcept") || t.IsIdent("override") ||
         t.IsIdent("final") || t.IsIdent("mutable") || t.IsIdent("volatile");
}

// Parses the parameter list tokens [open+1, close) into (type, name) pairs.
// Heuristic: the last identifier of each comma-separated chunk that is not
// immediately followed by `::`/template arguments is the name; everything
// before it is the type. Defaulted params split at the top-level `=`.
std::vector<Param> ParseParams(const std::vector<Tok>& t, size_t open, size_t close) {
  std::vector<Param> params;
  size_t i = open + 1;
  while (i < close) {
    // One parameter: up to the next top-level ','.
    const size_t begin = i;
    int depth = 0;
    size_t end = i;
    while (end < close) {
      const Tok& tok = t[end];
      if (tok.Is("(") || tok.Is("{") || tok.Is("[")) {
        ++depth;
      } else if (tok.Is(")") || tok.Is("}") || tok.Is("]")) {
        --depth;
      } else if (tok.Is("<")) {
        const size_t gt = Match(t, end, "<", ">");
        if (gt < close) {
          end = gt;
        }
      } else if (tok.Is(",") && depth == 0) {
        break;
      }
      ++end;
    }
    if (end > begin) {
      size_t stop = end;  // exclude a default argument
      for (size_t j = begin; j < end; ++j) {
        if (t[j].Is("=")) {
          stop = j;
          break;
        }
      }
      size_t name_idx = 0;
      for (size_t j = stop; j > begin; --j) {
        if (t[j - 1].kind == TokKind::kIdent && !IsQualifierTok(t[j - 1]) &&
            (j == stop || !t[j].Is("::"))) {
          name_idx = j - 1;
          break;
        }
      }
      Param p;
      if (name_idx > begin) {
        for (size_t j = begin; j < name_idx; ++j) {
          if (!p.type.empty()) {
            p.type += ' ';
          }
          p.type += t[j].text;
        }
        p.name = t[name_idx].text;
      } else {
        // Single-token chunk: a type with no name (e.g. `int`, `void`).
        for (size_t j = begin; j < stop; ++j) {
          if (!p.type.empty()) {
            p.type += ' ';
          }
          p.type += t[j].text;
        }
      }
      if (!p.type.empty() || !p.name.empty()) {
        params.push_back(std::move(p));
      }
    }
    i = end + 1;
  }
  return params;
}

}  // namespace

std::vector<FunctionDef> ParseFunctions(const SourceFile& sf) {
  const std::vector<Tok>& t = sf.toks;
  std::vector<FunctionDef> fns;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !t[i + 1].Is("(")) {
      continue;
    }
    if (IsNonFunctionKeyword(t[i].text)) {
      continue;
    }
    // Member-access calls (`x.f(...)`, `p->f(...)`) are never definitions.
    if (i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
      continue;
    }
    const size_t close_paren = Match(t, i + 1, "(", ")");
    if (close_paren >= t.size()) {
      continue;
    }
    size_t j = close_paren + 1;
    while (j < t.size() && IsQualifierTok(t[j])) {
      ++j;
    }
    // `noexcept(...)` / trailing-return `-> T`.
    if (j < t.size() && t[j].Is("(")) {
      j = Match(t, j, "(", ")") + 1;
    }
    if (j < t.size() && t[j].Is("->")) {
      ++j;
      while (j < t.size() && !t[j].Is("{") && !t[j].Is(";") && !t[j].Is("=")) {
        if (t[j].Is("<")) {
          const size_t gt = Match(t, j, "<", ">");
          if (gt < t.size()) {
            j = gt;
          }
        }
        ++j;
      }
    }
    // Constructor member-init list: `: member_(...), other_{...} {`.
    if (j < t.size() && t[j].Is(":")) {
      ++j;
      while (j < t.size() && !t[j].Is("{") && !t[j].Is(";")) {
        if (t[j].Is("(")) {
          j = Match(t, j, "(", ")");
        } else if (t[j].Is("<")) {
          const size_t gt = Match(t, j, "<", ">");
          if (gt < t.size()) {
            j = gt;
          }
        }
        ++j;
        // After a closed initializer, a '{' only starts the body when it
        // directly follows ',' — no: `a_(x) {` IS the body. Distinguish: an
        // initializer '{' is always preceded by an identifier; the body '{'
        // follows ')' or '}'. Handled below: brace-init `m_{...}` is
        // consumed as one initializer.
        if (j < t.size() && t[j].Is("{") && j > 0 &&
            t[j - 1].kind == TokKind::kIdent) {
          j = Match(t, j, "{", "}") + 1;
        }
      }
    }
    if (j >= t.size() || !t[j].Is("{")) {
      continue;
    }
    const size_t body_close = Match(t, j, "{", "}");
    if (body_close >= t.size()) {
      continue;
    }
    FunctionDef fn;
    fn.name = t[i].text;
    fn.line = t[i].line;
    if (i >= 2 && t[i - 1].Is("::") && t[i - 2].kind == TokKind::kIdent) {
      fn.qualifier = t[i - 2].text;
    }
    fn.params = ParseParams(t, i + 1, close_paren);
    fn.body_open = j;
    fn.body_close = body_close;
    fns.push_back(std::move(fn));
    // Skip past the body: nested lambdas/classes inside it are deliberately
    // not modeled as separate functions (their statements stay part of the
    // enclosing plain statements).
    i = body_close;
  }
  return fns;
}

// --------------------------------------------------------------------------
// Statement tree.
// --------------------------------------------------------------------------

namespace {

enum class StmtKind { kPlain, kIf, kLoop, kDoLoop, kSwitch, kReturn, kBreak, kContinue, kBlock };

struct Stmt {
  StmtKind kind = StmtKind::kPlain;
  TokRange range;                // the full statement (diagnostic only)
  TokRange cond;                 // kIf / kLoop condition tokens
  std::vector<Stmt> children;    // kBlock / kSwitch body
  std::vector<Stmt> then_branch; // kIf / kLoop / kDoLoop body
  std::vector<Stmt> else_branch; // kIf only
};

class StmtParser {
 public:
  explicit StmtParser(const std::vector<Tok>& t) : t_(t) {}

  std::vector<Stmt> ParseList(size_t begin, size_t end) {
    std::vector<Stmt> out;
    size_t i = begin;
    while (i < end) {
      // Case labels inside switch bodies are control-flow glue, not
      // statements: skip `case <expr>:` / `default:`.
      if (t_[i].IsIdent("case")) {
        while (i < end && !t_[i].Is(":")) {
          ++i;
        }
        ++i;
        continue;
      }
      if (t_[i].IsIdent("default") && i + 1 < end && t_[i + 1].Is(":")) {
        i += 2;
        continue;
      }
      if (t_[i].Is(";")) {
        ++i;
        continue;
      }
      Stmt s = ParseOne(&i, end);
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  Stmt ParseOne(size_t* ip, size_t end) {
    size_t i = *ip;
    Stmt s;
    s.range.begin = i;
    if (t_[i].Is("{")) {
      const size_t close = Match(t_, i, "{", "}");
      s.kind = StmtKind::kBlock;
      s.children = ParseList(i + 1, std::min(close, end));
      s.range.end = std::min(close + 1, end);
      *ip = s.range.end;
      return s;
    }
    if (t_[i].IsIdent("if")) {
      size_t p = i + 1;
      if (p < end && t_[p].IsIdent("constexpr")) {
        ++p;
      }
      if (p < end && t_[p].Is("(")) {
        const size_t close = Match(t_, p, "(", ")");
        s.kind = StmtKind::kIf;
        s.cond = {p + 1, std::min(close, end)};
        size_t j = close + 1;
        if (j < end) {
          s.then_branch.push_back(ParseOne(&j, end));
        }
        if (j < end && t_[j].IsIdent("else")) {
          ++j;
          if (j < end) {
            s.else_branch.push_back(ParseOne(&j, end));
          }
        }
        s.range.end = j;
        *ip = j;
        return s;
      }
    }
    if (t_[i].IsIdent("while") && i + 1 < end && t_[i + 1].Is("(")) {
      const size_t close = Match(t_, i + 1, "(", ")");
      s.kind = StmtKind::kLoop;
      s.cond = {i + 2, std::min(close, end)};
      size_t j = close + 1;
      if (j < end) {
        s.then_branch.push_back(ParseOne(&j, end));
      }
      s.range.end = j;
      *ip = j;
      return s;
    }
    if (t_[i].IsIdent("for") && i + 1 < end && t_[i + 1].Is("(")) {
      const size_t close = Match(t_, i + 1, "(", ")");
      s.kind = StmtKind::kLoop;
      // The for-header is opaque (init/cond/step or a range-for); it yields
      // no guard facts but its tokens still belong to the header block.
      s.cond = {i + 2, std::min(close, end)};
      size_t j = close + 1;
      if (j < end) {
        s.then_branch.push_back(ParseOne(&j, end));
      }
      s.range.end = j;
      *ip = j;
      return s;
    }
    if (t_[i].IsIdent("do")) {
      size_t j = i + 1;
      s.kind = StmtKind::kDoLoop;
      if (j < end) {
        s.then_branch.push_back(ParseOne(&j, end));
      }
      // `while (...) ;` trailer.
      if (j < end && t_[j].IsIdent("while") && j + 1 < end && t_[j + 1].Is("(")) {
        const size_t close = Match(t_, j + 1, "(", ")");
        s.cond = {j + 2, std::min(close, end)};
        j = std::min(close + 1, end);
        if (j < end && t_[j].Is(";")) {
          ++j;
        }
      }
      s.range.end = j;
      *ip = j;
      return s;
    }
    if (t_[i].IsIdent("switch") && i + 1 < end && t_[i + 1].Is("(")) {
      const size_t close = Match(t_, i + 1, "(", ")");
      s.kind = StmtKind::kSwitch;
      s.cond = {i + 2, std::min(close, end)};
      size_t j = close + 1;
      if (j < end && t_[j].Is("{")) {
        const size_t body_close = Match(t_, j, "{", "}");
        s.children = ParseList(j + 1, std::min(body_close, end));
        j = std::min(body_close + 1, end);
      }
      s.range.end = j;
      *ip = j;
      return s;
    }
    if (t_[i].IsIdent("return")) {
      s.kind = StmtKind::kReturn;
      s.range.end = SkipToSemicolon(i, end);
      *ip = s.range.end;
      return s;
    }
    if (t_[i].IsIdent("break") || t_[i].IsIdent("continue")) {
      s.kind = t_[i].IsIdent("break") ? StmtKind::kBreak : StmtKind::kContinue;
      s.range.end = SkipToSemicolon(i, end);
      *ip = s.range.end;
      return s;
    }
    // Plain statement (declaration, expression, lambda, nested class, ...).
    s.kind = StmtKind::kPlain;
    s.range.end = SkipToSemicolon(i, end);
    *ip = s.range.end;
    return s;
  }

  // Index one past the terminating ';' (skipping over balanced parens,
  // braces, and brackets, so lambda bodies and initializer lists are part of
  // the statement). Statements that end with '}' and no ';' (local class
  // definitions used as expressions are rare; local structs have ';') fall
  // back to stopping at the brace.
  size_t SkipToSemicolon(size_t i, size_t end) {
    while (i < end) {
      const Tok& tok = t_[i];
      if (tok.Is(";")) {
        return i + 1;
      }
      if (tok.Is("(")) {
        i = Match(t_, i, "(", ")");
      } else if (tok.Is("{")) {
        i = Match(t_, i, "{", "}");
      } else if (tok.Is("[")) {
        i = Match(t_, i, "[", "]");
      } else if (tok.Is("}") || tok.Is(")")) {
        // Unbalanced closer: we ran off the enclosing scope; stop here.
        return i;
      }
      ++i;
    }
    return end;
  }

  const std::vector<Tok>& t_;
};

// --------------------------------------------------------------------------
// Lowering to basic blocks.
// --------------------------------------------------------------------------

class Lowerer {
 public:
  explicit Lowerer(std::vector<BasicBlock>* blocks) : blocks_(blocks) {}

  int NewBlock() {
    blocks_->push_back(BasicBlock{});
    return static_cast<int>(blocks_->size()) - 1;
  }

  void Edge(int from, int to) {
    (*blocks_)[from].succs.push_back(to);
    (*blocks_)[to].preds.push_back(from);
  }

  struct Ctx {
    int exit_block = -1;
    int break_target = -1;
    int continue_target = -1;
  };

  // Lowers `list` starting in `cur`; returns the block control falls out of
  // (-1 when every path diverted: returned / broke / continued).
  int LowerList(const std::vector<Stmt>& list, int cur, const Ctx& ctx) {
    for (const Stmt& s : list) {
      if (cur < 0) {
        // Dead code after return/break; give it its own unreachable block so
        // its tokens still map somewhere (it can never dominate anything).
        cur = NewBlock();
      }
      cur = LowerOne(s, cur, ctx);
    }
    return cur;
  }

 private:
  int LowerOne(const Stmt& s, int cur, const Ctx& ctx) {
    switch (s.kind) {
      case StmtKind::kPlain:
        (*blocks_)[cur].stmts.push_back(s.range);
        return cur;
      case StmtKind::kBlock:
        return LowerList(s.children, cur, ctx);
      case StmtKind::kReturn:
        (*blocks_)[cur].stmts.push_back(s.range);
        Edge(cur, ctx.exit_block);
        return -1;
      case StmtKind::kBreak:
        (*blocks_)[cur].stmts.push_back(s.range);
        if (ctx.break_target >= 0) {
          Edge(cur, ctx.break_target);
        } else {
          Edge(cur, ctx.exit_block);  // stray break: treat as function exit
        }
        return -1;
      case StmtKind::kContinue:
        (*blocks_)[cur].stmts.push_back(s.range);
        if (ctx.continue_target >= 0) {
          Edge(cur, ctx.continue_target);
        } else {
          Edge(cur, ctx.exit_block);
        }
        return -1;
      case StmtKind::kIf: {
        (*blocks_)[cur].cond = s.cond;
        // Dedicated edge blocks per branch side: guard facts come from their
        // dominance (cfg.h).
        const int then_edge = NewBlock();
        const int else_edge = NewBlock();
        (*blocks_)[cur].true_succ = then_edge;
        (*blocks_)[cur].false_succ = else_edge;
        Edge(cur, then_edge);
        Edge(cur, else_edge);
        const int then_out = LowerList(s.then_branch, then_edge, ctx);
        const int else_out = LowerList(s.else_branch, else_edge, ctx);
        if (then_out < 0 && else_out < 0) {
          return -1;
        }
        const int join = NewBlock();
        if (then_out >= 0) {
          Edge(then_out, join);
        }
        if (else_out >= 0) {
          Edge(else_out, join);
        }
        return join;
      }
      case StmtKind::kLoop: {
        const int header = NewBlock();
        Edge(cur, header);
        (*blocks_)[header].cond = s.cond;
        const int body_edge = NewBlock();
        const int exit_edge = NewBlock();
        const int after = NewBlock();
        (*blocks_)[header].true_succ = body_edge;
        (*blocks_)[header].false_succ = exit_edge;
        Edge(header, body_edge);
        Edge(header, exit_edge);
        Edge(exit_edge, after);
        Ctx inner = ctx;
        inner.break_target = after;   // break bypasses the exit edge block,
        inner.continue_target = header;  // so (cond,false) is not asserted
        const int body_out = LowerList(s.then_branch, body_edge, inner);
        if (body_out >= 0) {
          Edge(body_out, header);
        }
        return after;
      }
      case StmtKind::kDoLoop: {
        const int body_entry = NewBlock();
        Edge(cur, body_entry);
        const int after = NewBlock();
        Ctx inner = ctx;
        inner.break_target = after;
        inner.continue_target = body_entry;
        const int body_out = LowerList(s.then_branch, body_entry, inner);
        if (body_out >= 0) {
          (*blocks_)[body_out].cond = s.cond;
          Edge(body_out, body_entry);  // loop back when cond true
          Edge(body_out, after);
        }
        return after;
      }
      case StmtKind::kSwitch: {
        // Unconditioned multiway branch: the body may run wholly, partially
        // (fallthrough/breaks), or not at all — so it contributes no facts
        // and every statement is "maybe executed".
        (*blocks_)[cur].cond = s.cond;  // tokens map to the switch head
        const int body_edge = NewBlock();
        const int after = NewBlock();
        Edge(cur, body_edge);
        Edge(cur, after);
        Ctx inner = ctx;
        inner.break_target = after;
        const int body_out = LowerList(s.children, body_edge, inner);
        if (body_out >= 0) {
          Edge(body_out, after);
        }
        return after;
      }
    }
    return cur;
  }

  std::vector<BasicBlock>* blocks_;
};

}  // namespace

Cfg Cfg::Build(const SourceFile& sf, const FunctionDef& fn) {
  Cfg cfg;
  Lowerer lower(&cfg.blocks_);
  const int entry = lower.NewBlock();
  const int exit_block = lower.NewBlock();
  cfg.entry_ = entry;

  StmtParser parser(sf.toks);
  const std::vector<Stmt> body =
      parser.ParseList(fn.body_open + 1, fn.body_close);
  Lowerer::Ctx ctx;
  ctx.exit_block = exit_block;
  const int out = lower.LowerList(body, entry, ctx);
  if (out >= 0) {
    lower.Edge(out, exit_block);
  }
  return cfg;
}

int Cfg::BlockOfToken(size_t i) const {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    for (const TokRange& r : blocks_[b].stmts) {
      if (r.ContainsTok(i)) {
        return static_cast<int>(b);
      }
    }
    if (blocks_[b].cond.ContainsTok(i)) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

}  // namespace opx::analyze
