// Per-function control-flow graphs and the dominance/guard dataflow layer of
// opx_analyze (DESIGN.md §13). Everything here is built from the SourceFile
// token stream — a lexical parse, not a real C++ front end — which is exact
// enough for the statement/branch conventions this tree follows:
//
//   ParseFunctions  finds every function *definition* in a file (free
//                   functions, class-inline methods, out-of-line
//                   Class::Method, constructors with init lists, TEST(...)
//                   bodies) as [body_open, body_close] token ranges.
//   Cfg::Build      lowers one body to basic blocks: if/else, while, for,
//                   do, switch, return, break, continue. Each branch
//                   successor gets a dedicated edge block so that guard
//                   facts are derivable from dominance alone. Lambdas and
//                   other unmodeled constructs degrade to opaque
//                   straight-line statements (sound for the checks built on
//                   top: fewer facts, never wrong ones).
//   GuardIndex      iterative dominator sets over the blocks; a guard fact
//                   (condition C, polarity p) holds at token X iff the edge
//                   block of the corresponding branch side dominates X's
//                   block. Early returns therefore yield negated facts on
//                   the fall-through path with no special casing.
//   NormalizeFact   decomposes a fact into atomic conjuncts: `A && B` under
//                   true polarity and `A || B` under false polarity split;
//                   leading `!` flips polarity; outer parens strip.
//
// The four v2 checks (opx-ballot-guard, opx-quorum-arith,
// opx-blocking-in-loop, opx-span-escape) and their one-level call summaries
// live in checks.cc on top of this API.
#ifndef TOOLS_ANALYZE_CFG_H_
#define TOOLS_ANALYZE_CFG_H_

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

// Half-open token-index range [begin, end).
struct TokRange {
  size_t begin = 0;
  size_t end = 0;

  bool Empty() const { return begin >= end; }
  bool ContainsTok(size_t i) const { return i >= begin && i < end; }
};

struct Param {
  std::string type;  // joined type tokens, e.g. "const Promise &"
  std::string name;  // "" for unnamed parameters
};

struct FunctionDef {
  std::string name;       // unqualified name (or macro name for TEST(...) bodies)
  std::string qualifier;  // "Class" for out-of-line Class::Method, else ""
  std::vector<Param> params;
  size_t body_open = 0;   // token index of '{'
  size_t body_close = 0;  // token index of the matching '}'
  int line = 0;           // line of the name token

  std::string Display() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

// Every function definition in `sf`, in source order.
std::vector<FunctionDef> ParseFunctions(const SourceFile& sf);

// One basic block. Straight-line statements are stored as token ranges; a
// block that ends in a branch carries the condition range and the two
// branch successors (both also appear in `succs`).
struct BasicBlock {
  std::vector<TokRange> stmts;
  TokRange cond;        // empty when the block does not branch on a condition
  int true_succ = -1;   // successor when cond evaluates true
  int false_succ = -1;  // successor when cond evaluates false
  std::vector<int> succs;
  std::vector<int> preds;
};

class Cfg {
 public:
  // Never fails; unmodeled syntax becomes opaque plain statements.
  static Cfg Build(const SourceFile& sf, const FunctionDef& fn);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  int entry() const { return entry_; }

  // Block whose statement (or condition) ranges contain token `i`; -1 when
  // the token is not part of this function's lowered statements.
  int BlockOfToken(size_t i) const;

 private:
  friend class GuardIndex;
  std::vector<BasicBlock> blocks_;
  int entry_ = 0;
};

// A branch condition known to have evaluated with `polarity` on every path
// reaching some program point.
struct GuardFact {
  TokRange cond;
  bool polarity = true;
};

// Dominator-based reaching-guard analysis over one Cfg.
class GuardIndex {
 public:
  explicit GuardIndex(const Cfg& cfg);

  // True when block `a` dominates block `b`.
  bool Dominates(int a, int b) const;

  // The guard facts holding on entry to the statement containing token `i`.
  // Empty when the token is outside every block (conservative: no facts).
  std::vector<GuardFact> FactsAtToken(size_t i) const;

 private:
  const Cfg* cfg_;
  std::vector<std::vector<bool>> dom_;  // dom_[b][a]: a dominates b
};

// Decomposes `fact` into atomic facts: strips outer parentheses and leading
// `!`, splits top-level `&&` under true polarity and top-level `||` under
// false polarity (De Morgan: the negation of a disjunction establishes the
// negation of every disjunct).
std::vector<GuardFact> NormalizeFact(const std::vector<Tok>& toks, GuardFact fact);

}  // namespace opx::analyze

#endif  // TOOLS_ANALYZE_CFG_H_
