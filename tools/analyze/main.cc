// opx_analyze CLI.
//
//   opx_analyze [--root=DIR] [--baseline=FILE] [--write-baseline]
//               [--check=opx-...] [--no-summary] [--list-checks]
//
// Runs the six protocol-aware checks (see analyzer.h / DESIGN.md §11) over
// the tree at --root (default: the current directory). Exit status:
//   0  no non-baselined findings
//   1  findings (or stale baseline entries with --write-baseline unset? no —
//      stale entries only warn; they never fail the run)
//   2  configuration error (missing configured file, unreadable baseline)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "tools/analyze/analyzer.h"

namespace {

// --flag=value / --flag parsing without any dependency.
const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opx::analyze;

  if (FlagSet(argc, argv, "help")) {
    std::printf(
        "usage: opx_analyze [--root=DIR] [--baseline=FILE] [--write-baseline]\n"
        "                   [--check=ID] [--no-summary] [--list-checks]\n");
    return 0;
  }
  if (FlagSet(argc, argv, "list-checks")) {
    for (const char* id : kCheckIds) {
      std::printf("%s\n", id);
    }
    return 0;
  }

  const char* root_flag = FlagValue(argc, argv, "root");
  const std::string root = root_flag != nullptr ? root_flag : ".";
  const char* check_filter = FlagValue(argc, argv, "check");

  const AnalyzerConfig config = DefaultConfig(root);
  AnalysisResult result = RunAnalysis(config);

  for (const std::string& err : result.errors) {
    std::fprintf(stderr, "opx_analyze: error: %s\n", err.c_str());
  }
  if (!result.errors.empty()) {
    return 2;
  }

  if (check_filter != nullptr) {
    std::vector<Finding> kept;
    for (Finding& f : result.findings) {
      if (f.check == check_filter) {
        kept.push_back(std::move(f));
      }
    }
    result.findings = std::move(kept);
  }

  // Baseline: explicit flag, else the committed default (its absence is fine
  // — that simply means nothing is grandfathered).
  const char* baseline_flag = FlagValue(argc, argv, "baseline");
  const std::string baseline_path =
      baseline_flag != nullptr ? baseline_flag : root + "/tools/analyze/baseline.txt";

  if (FlagSet(argc, argv, "write-baseline")) {
    std::ofstream out(baseline_path);
    if (!out.good()) {
      std::fprintf(stderr, "opx_analyze: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    out << "# opx_analyze baseline — grandfathered findings (`check file key`).\n"
           "# Regenerate with: opx_analyze --write-baseline. Keep this empty;\n"
           "# every entry needs a justification in DESIGN.md §11.\n";
    for (const Finding& f : result.findings) {
      out << f.BaselineKey() << "\n";
    }
    std::printf("opx_analyze: wrote %zu baseline entr%s to %s\n", result.findings.size(),
                result.findings.size() == 1 ? "y" : "ies", baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (baseline_flag != nullptr && !LoadBaselineFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "opx_analyze: cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  if (baseline_flag == nullptr) {
    LoadBaselineFile(baseline_path, &baseline);  // optional default
  }

  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(result.findings, baseline, &baselined, &stale);

  for (const Finding& f : fresh) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
  }
  for (const std::string& entry : stale) {
    std::fprintf(stderr, "opx_analyze: stale baseline entry (fixed? remove it): %s\n",
                 entry.c_str());
  }

  if (!FlagSet(argc, argv, "no-summary")) {
    double total_ms = 0.0;
    std::printf("\nopx_analyze summary (%s):\n", root.c_str());
    for (const CheckStats& s : result.stats) {
      if (check_filter != nullptr && s.check != check_filter) {
        continue;
      }
      std::printf("  %-18s %3d finding%s  %3d file%s  %7.1f ms\n", s.check.c_str(),
                  s.findings, s.findings == 1 ? " " : "s", s.files,
                  s.files == 1 ? " " : "s", s.ms);
      total_ms += s.ms;
    }
    std::printf("  %zu new finding%s, %d baselined, %.1f ms total\n", fresh.size(),
                fresh.size() == 1 ? "" : "s", baselined, total_ms);
  }

  return fresh.empty() ? 0 : 1;
}
