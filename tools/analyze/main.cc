// opx_analyze CLI.
//
//   opx_analyze [--root=DIR] [--baseline=FILE] [--write-baseline]
//               [--check=opx-...] [--format=text|json] [--no-summary]
//               [--list-checks] [--jobs=N]
//
// Runs the thirteen protocol-aware checks (see analyzer.h / DESIGN.md §11,
// §13, §16) over the tree at --root (default: the current directory). Files
// are tokenized by N parallel workers (--jobs, default: one per core capped
// at 8); the checks themselves stay single-threaded, so output is
// byte-identical across -j values. Exit status:
//   0  no non-baselined findings and no stale baseline entries
//   1  findings, or stale baseline entries (a suppression whose finding is
//      gone must be deleted, or the baseline rots into a dead allowlist)
//   2  configuration error (missing configured file, unreadable baseline)
//
// --format=json emits a SARIF-lite document (version, tool, results with
// ruleId/message/location) for editor and CI ingestion; the human summary
// and finding lines are suppressed in that mode.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "tools/analyze/analyzer.h"

namespace {

// The directories a check is configured to scan, for --list-checks. File-
// scoped checks (dispatch, persist-order, ...) report their rule files'
// count instead of a dir list.
std::string CheckDirs(const opx::analyze::AnalyzerConfig& cfg, const std::string& id) {
  auto join = [](const std::vector<std::string>& dirs) {
    std::string out;
    for (const std::string& d : dirs) {
      out += out.empty() ? d : ", " + d;
    }
    return out.empty() ? std::string("(none)") : out;
  };
  auto files = [](size_t n) {
    return std::to_string(n) + " configured file" + (n == 1 ? "" : "s");
  };
  if (id == "opx-determinism") return join(cfg.determinism.dirs);
  if (id == "opx-persist-order") return files(cfg.handlers.size());
  if (id == "opx-dispatch") return files(cfg.variants.size());
  if (id == "opx-msg-init") return files(cfg.wire_headers.size());
  if (id == "opx-audit-hook") return files(cfg.audit.size());
  if (id == "opx-obs-hook") return files(cfg.obs.size());
  if (id == "opx-ballot-guard") return files(cfg.ballot_guards.size());
  if (id == "opx-quorum-arith") return join(cfg.quorum.dirs);
  if (id == "opx-blocking-in-loop") {
    std::vector<std::string> dirs = cfg.blocking.det_dirs;
    dirs.insert(dirs.end(), cfg.blocking.event_dirs.begin(), cfg.blocking.event_dirs.end());
    return join(dirs);
  }
  if (id == "opx-span-escape") return join(cfg.span_escape.dirs);
  if (id == "opx-wire-taint") return join(cfg.wire_taint.dirs);
  if (id == "opx-index-arith") return join(cfg.index_arith.dirs);
  if (id == "opx-ref-lifetime") return join(cfg.ref_lifetime.dirs);
  return "(unknown)";
}

// --flag=value / --flag parsing without any dependency.
const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// SARIF-lite: enough of SARIF 2.1.0 for editors and CI annotators — one run,
// one driver, one result per finding with ruleId, message, and location.
void PrintSarif(const std::vector<opx::analyze::Finding>& findings) {
  std::printf("{\n");
  std::printf("  \"version\": \"2.1.0\",\n");
  std::printf("  \"runs\": [{\n");
  std::printf("    \"tool\": {\"driver\": {\"name\": \"opx_analyze\", \"rules\": [");
  bool first_rule = true;
  for (const char* id : opx::analyze::kCheckIds) {
    std::printf("%s{\"id\": \"%s\"}", first_rule ? "" : ", ", id);
    first_rule = false;
  }
  std::printf("]}},\n");
  std::printf("    \"results\": [");
  for (size_t i = 0; i < findings.size(); ++i) {
    const opx::analyze::Finding& f = findings[i];
    std::printf("%s\n      {\"ruleId\": \"%s\", \"level\": \"error\", ",
                i == 0 ? "" : ",", f.check.c_str());
    std::printf("\"message\": {\"text\": \"%s\"}, ", JsonEscape(f.message).c_str());
    std::printf(
        "\"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}], ",
        JsonEscape(f.file).c_str(), f.line);
    std::printf("\"partialFingerprints\": {\"baselineKey\": \"%s\"}}",
                JsonEscape(f.BaselineKey()).c_str());
  }
  std::printf("%s]\n", findings.empty() ? "" : "\n    ");
  std::printf("  }]\n");
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opx::analyze;

  if (FlagSet(argc, argv, "help")) {
    std::printf(
        "usage: opx_analyze [--root=DIR] [--baseline=FILE] [--write-baseline]\n"
        "                   [--check=ID] [--format=text|json] [--no-summary]\n"
        "                   [--list-checks] [--jobs=N]\n");
    return 0;
  }

  const char* root_flag = FlagValue(argc, argv, "root");
  const std::string root = root_flag != nullptr ? root_flag : ".";

  if (FlagSet(argc, argv, "list-checks")) {
    const AnalyzerConfig config = DefaultConfig(root);
    const size_t n = sizeof(kCheckIds) / sizeof(kCheckIds[0]);
    for (size_t i = 0; i < n; ++i) {
      std::printf("%-22s %s\n", kCheckIds[i], kCheckDocs[i]);
      std::printf("%-22s   dirs: %s\n", "", CheckDirs(config, kCheckIds[i]).c_str());
    }
    return 0;
  }

  const char* check_filter = FlagValue(argc, argv, "check");
  if (check_filter != nullptr) {
    bool known = false;
    for (const char* id : kCheckIds) {
      known = known || std::strcmp(id, check_filter) == 0;
    }
    if (!known) {
      std::fprintf(stderr,
                   "opx_analyze: unknown --check=%s (see --list-checks for the "
                   "thirteen check ids)\n",
                   check_filter);
      return 2;
    }
  }
  const char* format_flag = FlagValue(argc, argv, "format");
  const bool json = format_flag != nullptr && std::strcmp(format_flag, "json") == 0;
  if (format_flag != nullptr && !json && std::strcmp(format_flag, "text") != 0) {
    std::fprintf(stderr, "opx_analyze: unknown --format=%s (text|json)\n", format_flag);
    return 2;
  }

  AnalyzerConfig config = DefaultConfig(root);
  const char* jobs_flag = FlagValue(argc, argv, "jobs");
  if (jobs_flag != nullptr) {
    char* end = nullptr;
    const long jobs = std::strtol(jobs_flag, &end, 10);
    if (end == jobs_flag || *end != '\0' || jobs < 1 || jobs > 256) {
      std::fprintf(stderr, "opx_analyze: bad --jobs=%s (1..256)\n", jobs_flag);
      return 2;
    }
    config.jobs = static_cast<int>(jobs);
  }
  AnalysisResult result = RunAnalysis(config);

  for (const std::string& err : result.errors) {
    std::fprintf(stderr, "opx_analyze: error: %s\n", err.c_str());
  }
  if (!result.errors.empty()) {
    return 2;
  }

  if (check_filter != nullptr) {
    std::vector<Finding> kept;
    for (Finding& f : result.findings) {
      if (f.check == check_filter) {
        kept.push_back(std::move(f));
      }
    }
    result.findings = std::move(kept);
  }

  // Baseline: explicit flag, else the committed default (its absence is fine
  // — that simply means nothing is grandfathered).
  const char* baseline_flag = FlagValue(argc, argv, "baseline");
  const std::string baseline_path =
      baseline_flag != nullptr ? baseline_flag : root + "/tools/analyze/baseline.txt";

  if (FlagSet(argc, argv, "write-baseline")) {
    std::ofstream out(baseline_path);
    if (!out.good()) {
      std::fprintf(stderr, "opx_analyze: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    out << "# opx_analyze baseline — grandfathered findings (`check file key`).\n"
           "# Regenerate with: opx_analyze --write-baseline. Keep this empty;\n"
           "# every entry needs a justification in DESIGN.md §11.\n";
    for (const Finding& f : result.findings) {
      out << f.BaselineKey() << "\n";
    }
    std::printf("opx_analyze: wrote %zu baseline entr%s to %s\n", result.findings.size(),
                result.findings.size() == 1 ? "y" : "ies", baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (baseline_flag != nullptr && !LoadBaselineFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "opx_analyze: cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  if (baseline_flag == nullptr) {
    LoadBaselineFile(baseline_path, &baseline);  // optional default
  }

  int baselined = 0;
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      FilterBaseline(result.findings, baseline, &baselined, &stale);

  if (json) {
    PrintSarif(fresh);
  } else {
    for (const Finding& f : fresh) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                  f.message.c_str());
    }
  }
  // Strict baseline: a suppression whose finding no longer fires is an error,
  // not a warning — otherwise fixed entries linger and mask regressions that
  // later reuse the same key.
  for (const std::string& entry : stale) {
    std::fprintf(stderr,
                 "opx_analyze: error: stale suppression (finding fixed? delete "
                 "the baseline line): %s\n",
                 entry.c_str());
  }

  if (!json && !FlagSet(argc, argv, "no-summary")) {
    double total_ms = 0.0;
    std::printf("\nopx_analyze summary (%s):\n", root.c_str());
    for (const CheckStats& s : result.stats) {
      if (check_filter != nullptr && s.check != check_filter) {
        continue;
      }
      std::printf("  %-18s %3d finding%s  %3d file%s  %7.1f ms\n", s.check.c_str(),
                  s.findings, s.findings == 1 ? " " : "s", s.files,
                  s.files == 1 ? " " : "s", s.ms);
      total_ms += s.ms;
    }
    std::printf("  %zu new finding%s, %d baselined, %d stale, %.1f ms total\n",
                fresh.size(), fresh.size() == 1 ? "" : "s", baselined,
                static_cast<int>(stale.size()), total_ms);
    std::printf("  wall %.1f ms (preload %d files in %.1f ms, %d job%s)\n",
                result.wall_ms, result.preloaded_files, result.preload_ms, result.jobs,
                result.jobs == 1 ? "" : "s");
  }

  return (fresh.empty() && stale.empty()) ? 0 : 1;
}
