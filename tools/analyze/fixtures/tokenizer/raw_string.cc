// Tokenizer golden fixture: raw string literals in every prefix form; the
// delimiter form protects embedded `)"` sequences.
const char* plain = R"(plain "quoted" text)";
const char* prefixed = u8R"x(keeps )" inside)x";
const wchar_t* wide = LR"(wide raw)";
int after_raw = 42;
