// Tokenizer golden fixture: backslash-newline splices lines; the physical
// line number still advances for tokens on the continuation line.
int spliced = 1 + \
  2;
int after_splice = 3;
