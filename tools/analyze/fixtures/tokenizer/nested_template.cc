// Tokenizer golden fixture: `>>` closing nested templates must stay two `>`
// tokens so angle matching works; comparison operators merge into one token.
std::map<int, std::vector<std::pair<int, int>>> nested;
bool cmp = 1 <= 2 && 3 >= 2 || 4 == 4;
int after_templates = 9;
