// Tokenizer golden fixture: C++14 digit separators stay one number token.
int big = 1'000'000;
int hexed = 0xFF'FF;
int after_digits = 7;
