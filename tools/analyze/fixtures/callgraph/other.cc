#include "ring.h"

int Weigh(int n) { return n * 2; }

int Drive(Ring* r, int n) { return r->Step(n) + Weigh(n); }
