#include "ring.h"

int Ring::Step(int n) {
  state_ += Ping(n);
  return Helper(n);
}

int Ping(int n) {
  if (n <= 0) {
    return 0;
  }
  return Pong(n - 1);
}

int Pong(int n) { return Ping(n) + 1; }
