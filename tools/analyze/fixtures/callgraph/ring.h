// Call-graph fixture: Ring's methods span this header and ring.cc, free
// functions live in other.cc, and Ping/Pong form a mutual-recursion SCC.
// Ring::Weigh deliberately shares its name with the free Weigh in other.cc
// to pin the shadowing rules.
#ifndef FIXTURE_CALLGRAPH_RING_H_
#define FIXTURE_CALLGRAPH_RING_H_

class Ring {
 public:
  int Step(int n);  // defined out-of-line in ring.cc
  int Weigh(int n) { return n + 1; }
  int Helper(int n) { return Weigh(n); }

 private:
  int state_ = 0;
};

int Ping(int n);
int Pong(int n);

#endif  // FIXTURE_CALLGRAPH_RING_H_
