// Quorum-arith fixture, clean tree: all majority math goes through the one
// sanctioned helper.
#include "src/proto/quorum_util.h"

namespace fix {

constexpr unsigned kServers = 5;

unsigned QuorumSize() { return MajorityOf(kServers); }

bool HasQuorum(unsigned acks) { return acks >= MajorityOf(kServers); }

}  // namespace fix
