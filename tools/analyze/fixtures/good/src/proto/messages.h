// Known-good wire header fixture: every scalar field carries a default
// initializer, and the variant below is fully dispatched by handler.cc.
#ifndef TOOLS_ANALYZE_FIXTURES_GOOD_SRC_PROTO_MESSAGES_H_
#define TOOLS_ANALYZE_FIXTURES_GOOD_SRC_PROTO_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

namespace fix {

using LogIndex = uint64_t;
using NodeId = uint32_t;

struct Ballot {
  uint64_t n = 0;
  NodeId pid = 0;
};

struct Prepare {
  Ballot n;
  LogIndex log_idx = 0;
};

struct Promise {
  Ballot n;
  std::vector<uint64_t> suffix;
  LogIndex log_idx = 0;

  friend bool operator==(const Promise& a, const Promise& b) {
    return a.log_idx == b.log_idx;
  }
};

struct Accepted {
  Ballot n;
  LogIndex log_idx{0};
};

struct Heartbeat {};

using FixMessage = std::variant<Prepare, Promise, Accepted, Heartbeat>;

}  // namespace fix

#endif  // TOOLS_ANALYZE_FIXTURES_GOOD_SRC_PROTO_MESSAGES_H_
