// Ballot-guard fixture, clean tree: every round-state mutation in a Handle*
// function is dominated by a good-direction comparison against the message's
// round, across the guard idioms the engine models (early-return negation,
// De Morgan on `||`, per-disjunct disjunctions, guarded unguarded-callee).
namespace fix {

struct Prepare {
  unsigned n = 0;
};

class Replica {
 public:
  void HandlePrepare(const Prepare& p) {
    if (p.n < promised_round_) {
      return;  // early return: fall-through knows p.n >= promised_round_
    }
    set_promised_round(p.n);
    if (p.n > leader_ballot_) {
      leader_ballot_ = p.n;
    }
  }

  void HandlePromise(const Prepare& p) {
    if (role_ != 1 || p.n != round_) {
      return;  // De Morgan: fall-through knows p.n == round_
    }
    Adopt(p);  // Adopt alone is unguarded; this call site pins the round
  }

  void HandleStartView(const Prepare& p) {
    // Disjunction: every disjunct independently pins the round.
    if (p.n > round_ || (p.n == round_ && role_ == 2)) {
      round_ = p.n;
    }
  }

 private:
  void Adopt(const Prepare& p) { round_ = p.n; }
  void set_promised_round(unsigned n) { promised_round_ = n; }

  unsigned promised_round_ = 0;
  unsigned round_ = 0;
  unsigned leader_ballot_ = 0;
  int role_ = 0;
};

}  // namespace fix
