// The fixture tree's sanctioned quorum helper (mirrors src/util/quorum.h);
// configured as quorum.helper_file, so the formula here is exempt.
#ifndef FIXTURE_QUORUM_UTIL_H_
#define FIXTURE_QUORUM_UTIL_H_

namespace fix {

constexpr unsigned MajorityOf(unsigned n) { return n / 2 + 1; }

}  // namespace fix

#endif  // FIXTURE_QUORUM_UTIL_H_
