// Span-escape fixture, clean tree: the view parameter is consumed during the
// call — elements are copied out, the view itself never escapes.
namespace fix {

class Buffer {
 public:
  void Store(std::span<const int> entries) {
    items_.assign(entries.begin(), entries.end());
  }

  unsigned Sum(std::string_view name) const { return name.size(); }

 private:
  std::vector<int> items_;
};

}  // namespace fix
