// Known-good handler fixture: every FixMessage alternative has a dispatch
// case, durable writes precede the replies that acknowledge them, only
// ordered containers appear, the auditor surface is present, and observable
// transitions flow through the ObsSink trace recorder.
#include <map>
#include <variant>

#include "src/proto/messages.h"

namespace fix {

struct AuditView {
  uint64_t promised = 0;
};

class Storage {
 public:
  void set_promised_round(const Ballot& b) { promised_ = b; }
  void set_accepted_round(const Ballot& b) { accepted_ = b; }
  void TruncateAndAppend(LogIndex, const std::vector<uint64_t>&) {}

 private:
  Ballot promised_;
  Ballot accepted_;
};

class Handler {
 public:
  void Handle(NodeId from, FixMessage msg) {
    std::visit(
        [&](auto&& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, Prepare>) {
            HandlePrepare(from, m);
          } else if constexpr (std::is_same_v<T, Promise>) {
            HandlePromise(from, m);
          } else if constexpr (std::is_same_v<T, Accepted>) {
            HandleAccepted(from, m);
          } else if constexpr (std::is_same_v<T, Heartbeat>) {
            // no-op
          }
        },
        msg);
  }

  // The persist-before-send shape the analyzer demands: the durable write
  // lands, then the reply that advertises it goes out.
  void HandlePrepare(NodeId from, const Prepare& p) {
    storage_.set_promised_round(p.n);
    OPX_TRACE(obs_, opx::obs::EventKind::kSpPromiseSent, from, from, p.n.key, 0, 0);
    Promise promise;
    promise.n = p.n;
    Emit(from, promise);
  }

  void HandleAcceptSync(NodeId from, const Prepare& p) {
    storage_.set_accepted_round(p.n);
    storage_.TruncateAndAppend(p.log_idx, {});
    Emit(from, Accepted{p.n, p.log_idx});
  }

  // Send-helper variant of the same shape: the adopted log is durable before
  // SendAcceptSyncTo (which builds and emits the message itself) runs.
  void CompletePrepare(NodeId from, const Prepare& p) {
    storage_.set_accepted_round(p.n);
    storage_.TruncateAndAppend(p.log_idx, {});
    SendAcceptSyncTo(from, p);
  }

  void HandlePromise(NodeId, const Promise&) {}
  void HandleAccepted(NodeId, const Accepted&) {}

  AuditView Audit() const { return AuditView{}; }

 private:
  void SendAcceptSyncTo(NodeId to, const Prepare& p) { Emit(to, Accepted{p.n, p.log_idx}); }

  void Emit(NodeId to, FixMessage msg) {
    OPX_CHECK(to != 0);
    (void)msg;
  }

  Storage storage_;
  std::map<uint64_t, uint64_t> outstanding_;
  opx::obs::ObsSink* obs_ = nullptr;
};

}  // namespace fix
