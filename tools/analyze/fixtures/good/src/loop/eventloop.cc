// Blocking-in-loop fixture, clean tree: everything reachable from the Run
// entry point stays non-blocking.
namespace fix {

class Loop {
 public:
  void Run() {
    for (int i = 0; i < 3; ++i) {
      Step();
    }
  }

 private:
  void Step() {
    ++steps_;
    Dispatch();
  }
  void Dispatch() { ++events_; }

  int steps_ = 0;
  int events_ = 0;
};

}  // namespace fix
