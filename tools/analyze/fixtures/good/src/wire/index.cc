// Log access phrased through the checked helpers: no raw +/- ever touches a
// compaction floor outside index_util.h. Increment/compound-assign forms are
// mutation, not offset arithmetic, and must stay unflagged.
#include <cstddef>
#include <vector>

#include "index_util.h"

class GoodLog {
 public:
  size_t PhysicalAt(LogIndex idx) const { return FloorOffset(idx, compacted_idx_); }
  LogIndex LogLen() const { return IndexEnd(compacted_idx_, log_.size()); }
  LogIndex Floor() const { return compacted_idx_; }
  void Bump() { ++compacted_idx_; }
  void Advance(LogIndex d) { compacted_idx_ += d; }

 private:
  std::vector<int> log_;
  LogIndex compacted_idx_ = 0;
};
