// Wire-decode paths with correct bounds discipline: every decoded value is
// guarded (bare value on one side of a dominating comparison), clamped, or
// asserted before it reaches an allocation, index, or loop bound — so
// opx-wire-taint must stay silent on this whole file.
#include <algorithm>
#include <cstdint>
#include <vector>

bool GetU32(uint32_t* out);

constexpr uint32_t kMaxLen = 1u << 20;

// Early-return guard with the bare value on one side.
bool GrowGuarded(std::vector<uint8_t>* buf) {
  uint32_t n = 0;
  if (!GetU32(&n)) {
    return false;
  }
  if (n > kMaxLen) {
    return false;
  }
  buf->resize(n);
  return true;
}

// std::min clamp kills the taint outright.
void GrowClamped(std::vector<uint8_t>* buf) {
  uint32_t n = 0;
  GetU32(&n);
  n = std::min(n, kMaxLen);
  buf->reserve(n);
}

// Guarded pointer-parameter subscript.
uint8_t ReadAtGuarded(const uint8_t* p) {
  uint32_t idx = 0;
  GetU32(&idx);
  if (idx >= 64) {
    return 0;
  }
  return p[idx];
}

// The codec shape: decode failure and bound violation rejected in one
// disjunction, then the decoded count drives the loop.
bool DecodeEntries(std::vector<uint32_t>* out) {
  uint32_t count = 0;
  if (!GetU32(&count) || count > 1024) {
    return false;
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    if (!GetU32(&v)) {
      return false;
    }
    out->push_back(v);
  }
  return true;
}

// Interprocedural: the callee guards its own parameter, so handing it a
// decoded length is fine — its summary must say "no sinked parameters".
void FillChecked(std::vector<uint8_t>* buf, uint32_t n) {
  if (n > kMaxLen) {
    return;
  }
  buf->resize(n);
}

bool DecodeBody(std::vector<uint8_t>* buf) {
  uint32_t n = 0;
  if (!GetU32(&n)) {
    return false;
  }
  FillChecked(buf, n);
  return true;
}
