// Checked log-index helpers — the fixture's sanctioned home of raw floor
// arithmetic. opx-index-arith exempts this file (helper_file) and demands
// everything else route through it.
#ifndef FIXTURE_SRC_WIRE_INDEX_UTIL_H_
#define FIXTURE_SRC_WIRE_INDEX_UTIL_H_

#include <cstddef>

using LogIndex = unsigned long long;

inline size_t FloorOffset(LogIndex idx, LogIndex compacted_idx_) {
  return static_cast<size_t>(idx - compacted_idx_);
}

inline LogIndex IndexEnd(LogIndex compacted_idx_, size_t count) {
  return compacted_idx_ + count;
}

#endif  // FIXTURE_SRC_WIRE_INDEX_UTIL_H_
