// Frame-derived pointers used correctly: scoped to the frame's lifetime and
// never touched after the pool takes the frame back. Members hold the
// FrameRef itself — the refcount, not a raw pointer, is the sanctioned way
// to extend a frame's life.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

struct WireFrame {
  std::vector<uint8_t> bytes;
};
using FrameRef = std::shared_ptr<WireFrame>;

class Pool {
 public:
  void Clear();
  void Release(FrameRef&& f);
};

class GoodConn {
 public:
  // Storing the FrameRef keeps the bytes alive; no raw pointer escapes.
  void Retain(FrameRef f) { held_ = std::move(f); }

  // The derived pointer dies before the frame is released.
  size_t Drain(FrameRef f) {
    const uint8_t* p = f->bytes.data();
    size_t sum = 0;
    for (size_t i = 0; i < f->bytes.size(); ++i) {
      sum += p[i];
    }
    pool_.Release(std::move(f));
    return sum;
  }

 private:
  Pool pool_;
  FrameRef held_;
};
