// Suppression fixture: four determinism hits, three silenced by the three
// NOLINT spellings, the fourth left visible and covered by the fixture
// baseline file (tools/analyze/fixtures/nolint/baseline.txt).
#include <unordered_map>

namespace fix {

struct Table {
  std::unordered_map<int, int> exact;     // NOLINT(opx-determinism)
  std::unordered_map<int, int> bare;      // NOLINT
  std::unordered_map<int, int> wildcard;  // NOLINT(opx-*)
  std::unordered_map<int, int> baselined;
};

}  // namespace fix
