// Blocking-in-loop fixture, bad tree: Run -> Step reaches a raw ::write and
// a this_thread::sleep_for. Idle() also blocks but is NOT reachable from the
// entry point, so it must not be flagged (reachability, not a grep).
namespace fix {

class Loop {
 public:
  void Run() { Step(); }

 private:
  void Step() {
    Flush();
    Wait();
  }
  void Flush() { ::write(1, "x", 1); }
  void Wait() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }
  void Idle() { ::read(0, nullptr, 0); }
};

}  // namespace fix
