// Frame-derived raw pointers escaping the frame's refcount: a member store,
// a member-container insert, a use after the pool recycled the frame, and
// the interprocedural escape through a pointer-storing callee.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

struct WireFrame {
  std::vector<uint8_t> bytes;
};
using FrameRef = std::shared_ptr<WireFrame>;

class Pool {
 public:
  void Clear();
};

class BadConn {
 public:
  // Raw pointer into the frame stored into a member that outlives it.
  void Stash(FrameRef f) { data_ = f->bytes.data(); }

  // Frame-derived pointer pushed into a member container.
  void Hold(FrameRef f) {
    const uint8_t* p = f->bytes.data();
    views_.push_back(p);
  }

  // Derived pointer used after the pool recycled the backing frames.
  size_t UseAfterClear(FrameRef f) {
    const uint8_t* p = f->bytes.data();
    pool_.Clear();
    return p[0];
  }

  // KeepPtr stores its pointer parameter into a member; passing it a
  // frame-derived pointer escapes the refcount one call deep.
  void KeepPtr(const uint8_t* p) { data_ = p; }
  void Escape(FrameRef f) { KeepPtr(f->bytes.data()); }

 private:
  Pool pool_;
  const uint8_t* data_ = nullptr;
  std::vector<const uint8_t*> views_;
};
