// Wire-decode paths with the bounds discipline violated once per sink
// class: allocation, copy length, pointer subscript, loop bound, an
// unguarded callee (the interprocedural shape), and the wrap-prone
// guard-on-the-arithmetic idiom.
#include <cstdint>
#include <cstring>
#include <vector>

bool GetU32(uint32_t* out);

// Decoded length straight into an allocation.
bool GrowDirect(std::vector<uint8_t>* buf) {
  uint32_t n = 0;
  if (!GetU32(&n)) {
    return false;
  }
  buf->resize(n);
  return true;
}

// Decoded length as a memcpy size.
void CopyLen(uint8_t* dst, const uint8_t* src) {
  uint32_t len = 0;
  GetU32(&len);
  memcpy(dst, src, len);
}

// Decoded index straight into a pointer-parameter subscript.
uint8_t ReadAt(const uint8_t* p) {
  uint32_t idx = 0;
  GetU32(&idx);
  return p[idx];
}

// Decoded count as the sole loop bound.
bool LoopBound(std::vector<uint32_t>* out) {
  uint32_t count = 0;
  if (!GetU32(&count)) {
    return false;
  }
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(i);
  }
  return true;
}

// The interprocedural shape: the callee sinks its parameter unguarded, so
// handing it a decoded length is the same bug split across two functions.
// The finding lands at the call site in CallsSink, not inside FillRaw.
void FillRaw(std::vector<uint8_t>* buf, uint32_t n) {
  buf->resize(n);
}

bool CallsSink(std::vector<uint8_t>* buf) {
  uint32_t n = 0;
  if (!GetU32(&n)) {
    return false;
  }
  FillRaw(buf, n);
  return true;
}

// `4 + len <= buf.size()` wraps in uint32 for len near 2^32 — guarding the
// arithmetic result sanitizes nothing (the omni_client seed-bug shape); only
// the bare value on one comparison side counts.
bool GuardedArith(std::vector<uint8_t>* frame, const std::vector<uint8_t>& buf) {
  uint32_t len = 0;
  if (!GetU32(&len)) {
    return false;
  }
  if (4 + len <= buf.size()) {
    frame->assign(buf.begin() + 4, buf.begin() + 4 + len);
    return true;
  }
  return false;
}
