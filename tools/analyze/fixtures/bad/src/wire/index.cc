// Raw log-index arithmetic against the compaction floors — each site is the
// seed-bug shape the checked helpers exist to replace.
#include <cstddef>
#include <vector>

using LogIndex = unsigned long long;

class BadLog {
 public:
  size_t PhysicalAt(LogIndex idx) const {
    return static_cast<size_t>(idx - compacted_idx_);
  }
  LogIndex LogLen() const { return compacted_idx_ + log_.size(); }
  LogIndex LastDecided() const { return decided_idx_ - 1; }

 private:
  std::vector<int> log_;
  LogIndex compacted_idx_ = 0;
  LogIndex decided_idx_ = 0;
};
