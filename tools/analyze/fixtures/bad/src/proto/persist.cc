// Acceptance-criterion fixture: HandleAcceptSync mirrors the shape of
// src/omnipaxos/sequence_paxos.cc, but with the Emit hoisted above the
// storage writes — the exact reordering the persistence-ordering check
// exists to catch. A crash between the ack and the write would leave the
// leader believing state this acceptor never made durable (Lemma A.1).
#include "src/proto/messages.h"

namespace fix {

class SyncStorage {
 public:
  void set_accepted_round(const Ballot& b) { accepted_ = b; }
  void TruncateAndAppend(LogIndex, const std::vector<uint64_t>&) {}
  LogIndex log_len() const { return 0; }

 private:
  Ballot accepted_;
};

class SequencePaxos {
 public:
  // BAD: the Accepted ack leaves before the log write lands.
  void HandleAcceptSync(NodeId from, const Prepare& as) {
    Emit(from, Accepted{as.n, storage_.log_len()});
    storage_.set_accepted_round(as.n);
    storage_.TruncateAndAppend(as.log_idx, {});
  }

  // BAD: the sync helper ships the adopted log before it is made durable.
  // The helper builds and emits the message itself, so the rule names it via
  // `sends` with empty ack_types.
  void CompletePrepare(NodeId from, const Prepare& p) {
    SendAcceptSyncTo(from);
    storage_.set_accepted_round(p.n);
    storage_.TruncateAndAppend(p.log_idx, {});
  }

 private:
  void SendAcceptSyncTo(NodeId to) { Emit(to, Accepted{Ballot{}, storage_.log_len()}); }

  void Emit(NodeId, FixMessage) {}

  SyncStorage storage_;
};

}  // namespace fix
