// Quorum-arith fixture, bad tree: the three hand-rolled shapes, in order —
// `(n + 1) / 2` (wrong for even n), `n / 2 + 1` (correct but unaudited),
// and a bare `n / 2` (minority/majority off-by-one hazard).
namespace fix {

constexpr unsigned kServers = 5;

unsigned WrongForEven() { return (kServers + 1) / 2; }

unsigned HandRolled(unsigned cluster_size) { return cluster_size / 2 + 1; }

unsigned BareHalf() { return kServers / 2; }

}  // namespace fix
