// Known-bad wire header fixture. Seeded defects (golden, asserted by
// tests/analyze_test.cc):
//   opx-msg-init:  Prepare::log_idx (no initializer), Promise::from (raw
//                  pointer, no initializer), Inner::flag (nested struct)
//   opx-dispatch:  FixMessage::Accepted is never dispatched in handler.cc
#ifndef TOOLS_ANALYZE_FIXTURES_BAD_SRC_PROTO_MESSAGES_H_
#define TOOLS_ANALYZE_FIXTURES_BAD_SRC_PROTO_MESSAGES_H_

#include <cstdint>
#include <variant>
#include <vector>

namespace fix {

using LogIndex = uint64_t;
using NodeId = uint32_t;

struct Ballot {
  uint64_t n = 0;
  NodeId pid = 0;
};

struct Prepare {
  Ballot n;
  LogIndex log_idx;  // BAD: uninitialized scalar on the wire
};

struct Promise {
  Ballot n;
  std::vector<uint64_t> suffix;  // fine: class type, self-initializing
  const char* from;              // BAD: uninitialized pointer

  struct Inner {
    bool flag;  // BAD: nested struct field, uninitialized
  };
};

struct Accepted {
  Ballot n;
  LogIndex log_idx = 0;
};

using FixMessage = std::variant<Prepare, Promise, Accepted>;

}  // namespace fix

#endif  // TOOLS_ANALYZE_FIXTURES_BAD_SRC_PROTO_MESSAGES_H_
