// Span-escape fixture, bad tree: a span parameter stored whole into a
// member, and a string_view pushed whole into a member container — both
// outlive the call while the caller may free or truncate the backing store.
namespace fix {

class Buffer {
 public:
  void Keep(std::span<const int> entries) { view_ = entries; }

  void Name(std::string_view name) { names_.push_back(name); }

 private:
  std::span<const int> view_;
  std::vector<std::string_view> names_;
};

}  // namespace fix
