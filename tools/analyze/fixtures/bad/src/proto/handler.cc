// Known-bad handler fixture. Seeded defects (golden, asserted by
// tests/analyze_test.cc):
//   opx-determinism:   unordered_map member, std::function member, rand()
//                      call, std::random_device use
//   opx-dispatch:      Accepted has no is_same_v/get_if case below
//   opx-persist-order: HandlePrepare replies <Promise> before the
//                      set_promised_round write it advertises
//   opx-audit-hook:    no Audit()/AuditView surface, no OPX_CHECK anywhere
//   opx-obs-hook:      no OPX_TRACE call and no ObsSink member — observable
//                      transitions are invisible to the trace oracles
//   opx-blocking-in-loop: usleep() in deterministic code (blanket ban)
#include <functional>
#include <random>
#include <unordered_map>
#include <variant>

#include "src/proto/messages.h"

namespace fix {

class Storage {
 public:
  void set_promised_round(const Ballot& b) { promised_ = b; }

 private:
  Ballot promised_;
};

class Handler {
 public:
  void Handle(NodeId from, FixMessage msg) {
    std::visit(
        [&](auto&& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, Prepare>) {
            HandlePrepare(from, m);
          } else if constexpr (std::is_same_v<T, Promise>) {
            // BAD: the Accepted alternative silently falls through.
          }
        },
        msg);
  }

  // BAD: the reply advertising the promise leaves before the durable write —
  // a crash in between breaks the invariant the reply claims.
  void HandlePrepare(NodeId from, const Prepare& p) {
    Promise promise;
    promise.n = p.n;
    Emit(from, promise);
    storage_.set_promised_round(p.n);
  }

 private:
  void Emit(NodeId, FixMessage) {}

  uint64_t Jitter() { return static_cast<uint64_t>(rand()); }  // BAD: ambient rng
  void Backoff() { usleep(250); }                              // BAD: blocks the sim
  std::random_device entropy_;                                 // BAD: ambient rng

  Storage storage_;
  std::unordered_map<uint64_t, uint64_t> outstanding_;  // BAD: hash order
  std::function<void(NodeId)> on_drop_;                 // BAD: PR 2 ban
};

}  // namespace fix
