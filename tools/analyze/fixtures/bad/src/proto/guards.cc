// Ballot-guard fixture, bad tree: a wrong-direction guard, a mutation with
// no round comparison at all, and an unguarded callee reached through a
// call site that checks nothing about the round.
namespace fix {

struct Prepare {
  unsigned n = 0;
};

class Replica {
 public:
  void HandlePrepare(const Prepare& p) {
    if (p.n < promised_round_) {
      set_promised_round(p.n);  // accepts only STALE rounds: inverted guard
    }
  }

  void HandleCommit(const Prepare& p) {
    round_ = p.n;  // no comparison against the message's round anywhere
  }

  void HandleSync(const Prepare& p) {
    if (p.n != 0) {
      Adopt(p);  // guard says nothing about round_ vs p.n
    }
  }

 private:
  void Adopt(const Prepare& p) { round_ = p.n; }
  void set_promised_round(unsigned n) { promised_round_ = n; }

  unsigned promised_round_ = 0;
  unsigned round_ = 0;
};

}  // namespace fix
