// The six protocol-aware checks of opx_analyze. All of them operate on the
// token stream of SourceFile — a deliberately lightweight parse (no libclang
// in this toolchain): declarations, call sites, and brace/angle matching are
// recognized lexically, which is exact enough for the conventions this tree
// follows and is what keeps the analyzer dependency-free and fast.
#include <chrono>
#include <algorithm>

#include "tools/analyze/analyzer.h"

namespace opx::analyze {

namespace {

bool UnderAnyDir(const std::string& path, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (path.size() > d.size() && path.compare(0, d.size(), d) == 0 &&
        path[d.size()] == '/') {
      return true;
    }
  }
  return false;
}

// Appends a finding unless the line carries a covering NOLINT.
void Add(const SourceFile& sf, int line, const char* check, std::string key,
         std::string message, std::vector<Finding>* out) {
  if (sf.Suppressed(line, check)) {
    return;
  }
  Finding f;
  f.check = check;
  f.file = sf.path;
  f.line = line;
  f.key = std::move(key);
  f.message = std::move(message);
  out->push_back(std::move(f));
}

// Ordinal-suffixed key: stable across line drift, distinguishes repeated
// occurrences of the same symbol within one file.
std::string OrdinalKey(const std::string& base, int ordinal) {
  return ordinal == 0 ? base : base + "#" + std::to_string(ordinal);
}

// Index of the matching closer for the opener at `open` ('(' / '{' / '<').
// Returns toks.size() when unbalanced.
size_t MatchForward(const std::vector<Tok>& toks, size_t open, const char* opener,
                    const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].Is(opener)) {
      ++depth;
    } else if (toks[i].Is(closer)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

// --------------------------------------------------------------------------
// opx-determinism
// --------------------------------------------------------------------------

void CheckDeterminism(const AnalyzerConfig& cfg, FileSet& files,
                      std::vector<Finding>* out, int* nfiles) {
  static const char* kCheck = "opx-determinism";
  // Banned outright in deterministic code: hash-ordered containers (their
  // iteration order is implementation-defined) and every ambient source of
  // nondeterminism. util::Rng (seeded, replayable) is the sanctioned one.
  static const std::vector<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  static const std::vector<std::string> kRandomClock = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::vector<std::string> kBannedCalls = {"rand", "srand", "time", "clock"};

  std::set<std::string> seen;  // de-duplicate dirs listed twice
  std::vector<std::string> paths;
  for (const std::string& d : cfg.determinism.dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  for (const std::string& d : cfg.determinism.function_dirs) {
    for (std::string& p : files.ListDir(d)) {
      if (seen.insert(p).second) {
        paths.push_back(std::move(p));
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      continue;
    }
    ++*nfiles;
    const bool det_dir = UnderAnyDir(path, cfg.determinism.dirs);
    const bool fn_dir = UnderAnyDir(path, cfg.determinism.function_dirs);
    std::map<std::string, int> ordinals;
    const std::vector<Tok>& t = sf->toks;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t[i].text;
      const bool qualified_std =
          i >= 2 && t[i - 1].Is("::") && t[i - 2].IsIdent("std");
      const bool member_access = i >= 1 && (t[i - 1].Is(".") || t[i - 1].Is("->"));

      if (det_dir && Contains(kUnordered, id)) {
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            "std::" + id + " in deterministic code: iteration order is "
            "implementation-defined; use std::map/std::set (or justify with NOLINT)",
            out);
      } else if (det_dir && Contains(kRandomClock, id) && !member_access) {
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            "std::" + id + " in deterministic code: replay requires virtual time "
            "and the seeded util::Rng",
            out);
      } else if (det_dir && Contains(kBannedCalls, id) && !member_access &&
                 i + 1 < t.size() && t[i + 1].Is("(") &&
                 (i == 0 || !t[i - 1].Is("::") || qualified_std)) {
        // `time(...)`/`rand(...)` as a free or std:: call; member calls like
        // `sim.time()` and foreign qualifications are fine.
        Add(*sf, t[i].line, kCheck, OrdinalKey(id, ordinals[id]++),
            id + "() call in deterministic code: ambient randomness/clocks break replay",
            out);
      } else if (fn_dir && id == "function" && qualified_std) {
        Add(*sf, t[i].line, kCheck, OrdinalKey("std-function", ordinals["std-function"]++),
            "std::function regression: PR 2 banned it from sim/protocol paths "
            "(copyable type-erasure forces allocations; use util::UniqueFunction)",
            out);
      }
    }
  }
}

// --------------------------------------------------------------------------
// opx-persist-order
// --------------------------------------------------------------------------

namespace {

// Locates the *definition* of `name` (skipping declarations, which end in
// ';' before any '{'). Returns the [body_open, body_close] token range, or
// false when no definition exists in this file.
bool FindFunctionBody(const std::vector<Tok>& toks, const std::string& name,
                      size_t* body_open, size_t* body_close) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent(name) || !toks[i + 1].Is("(")) {
      continue;
    }
    const size_t close_paren = MatchForward(toks, i + 1, "(", ")");
    if (close_paren >= toks.size()) {
      continue;
    }
    // Skip trailing `const` / `noexcept` / `override`; a `;` first means this
    // was only a declaration (or a call site used as a statement).
    size_t j = close_paren + 1;
    while (j < toks.size() &&
           (toks[j].IsIdent("const") || toks[j].IsIdent("noexcept") ||
            toks[j].IsIdent("override") || toks[j].IsIdent("final"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].Is("{")) {
      *body_open = j;
      *body_close = MatchForward(toks, j, "{", "}");
      return *body_close < toks.size();
    }
  }
  return false;
}

}  // namespace

void CheckPersistOrder(const AnalyzerConfig& cfg, FileSet& files,
                       std::vector<Finding>* out, int* nfiles,
                       std::vector<std::string>* errors) {
  static const char* kCheck = "opx-persist-order";
  std::set<std::string> counted;
  for (const HandlerRule& rule : cfg.handlers) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-persist-order: cannot read " + rule.file);
      continue;
    }
    if (counted.insert(rule.file).second) {
      ++*nfiles;
    }
    size_t open = 0;
    size_t close = 0;
    if (!FindFunctionBody(sf->toks, rule.function, &open, &close)) {
      errors->push_back("opx-persist-order: no definition of " + rule.function +
                        " in " + rule.file + " (stale rule?)");
      continue;
    }
    const std::vector<Tok>& t = sf->toks;

    // Walk the body once: track locals declared with an ack message type,
    // the first durable mutation, and the first send whose argument list
    // names an ack type (directly or through such a local).
    std::set<std::string> ack_locals;
    size_t first_mutation = 0;
    size_t first_ack_send = 0;
    int ack_send_line = 0;
    std::string ack_send_what;
    for (size_t i = open + 1; i < close; ++i) {
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      if (Contains(rule.ack_types, t[i].text) && i + 1 < close &&
          t[i + 1].kind == TokKind::kIdent) {
        ack_locals.insert(t[i + 1].text);  // `Promise promise;`-style local
        continue;
      }
      const bool is_call = i + 1 < close && t[i + 1].Is("(");
      if (is_call && Contains(rule.mutators, t[i].text)) {
        if (first_mutation == 0) {
          first_mutation = i;
        }
        continue;
      }
      if (is_call && Contains(rule.sends, t[i].text) && first_ack_send == 0) {
        const size_t args_end = MatchForward(t, i + 1, "(", ")");
        for (size_t a = i + 2; a < args_end; ++a) {
          if (t[a].kind == TokKind::kIdent &&
              (Contains(rule.ack_types, t[a].text) || ack_locals.count(t[a].text) > 0)) {
            first_ack_send = i;
            ack_send_line = t[i].line;
            ack_send_what = t[a].text;
            break;
          }
        }
      }
    }

    if (first_ack_send != 0 && (first_mutation == 0 || first_mutation > first_ack_send)) {
      std::string muts;
      for (const std::string& m : rule.mutators) {
        muts += (muts.empty() ? "" : "/") + m;
      }
      Add(*sf, ack_send_line, kCheck, rule.function,
          rule.function + " sends `" + ack_send_what + "` before the durable write (" +
              muts + ") it acknowledges — a crash between send and write breaks "
              "the promise the reply advertises (Appendix A, Lemma A.1)",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-dispatch
// --------------------------------------------------------------------------

namespace {

// Splits the top-level comma-separated alternatives of `std::variant<...>`
// starting at the '<' token; each alternative is the joined identifier chain
// (e.g. "omni::PaxosMessage").
std::vector<std::string> VariantAlternatives(const std::vector<Tok>& toks, size_t lt) {
  std::vector<std::string> alts;
  std::string cur;
  int depth = 0;
  for (size_t i = lt; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (tok.Is("<")) {
      ++depth;
      if (depth == 1) {
        continue;
      }
    } else if (tok.Is(">")) {
      --depth;
      if (depth == 0) {
        break;
      }
    } else if (tok.Is(",") && depth == 1) {
      if (!cur.empty()) {
        alts.push_back(cur);
      }
      cur.clear();
      continue;
    }
    cur += tok.text;
  }
  if (!cur.empty()) {
    alts.push_back(cur);
  }
  return alts;
}

std::string LastComponent(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

// Collects the type names this file dispatches on: the (unqualified) final
// template argument of is_same_v<T, X>, get_if<X>, holds_alternative<X>, and
// std::get<X>.
void CollectDispatchedTypes(const std::vector<Tok>& toks, std::set<std::string>* out) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !toks[i + 1].Is("<")) {
      continue;
    }
    const std::string& id = toks[i].text;
    const bool std_qualified = i >= 2 && toks[i - 1].Is("::") && toks[i - 2].IsIdent("std");
    const bool eligible = id == "is_same_v" || id == "get_if" ||
                          id == "holds_alternative" || (id == "get" && std_qualified);
    if (!eligible) {
      continue;
    }
    const size_t gt = MatchForward(toks, i + 1, "<", ">");
    if (gt >= toks.size()) {
      continue;
    }
    // Last identifier of the template-argument list, unqualified.
    for (size_t j = gt; j > i + 1; --j) {
      if (toks[j - 1].kind == TokKind::kIdent) {
        out->insert(toks[j - 1].text);
        break;
      }
    }
  }
}

}  // namespace

void CheckDispatch(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                   int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-dispatch";
  std::set<std::string> counted;
  for (const VariantRule& rule : cfg.variants) {
    const SourceFile* header = files.Get(rule.header);
    if (header == nullptr) {
      errors->push_back("opx-dispatch: cannot read " + rule.header);
      continue;
    }
    if (counted.insert(rule.header).second) {
      ++*nfiles;
    }
    // `using Name = std::variant<...>;`
    std::vector<std::string> alts;
    int using_line = 0;
    const std::vector<Tok>& t = header->toks;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].IsIdent("using") && t[i + 1].IsIdent(rule.name) && t[i + 2].Is("=")) {
        for (size_t j = i + 3; j < t.size() && !t[j].Is(";"); ++j) {
          if (t[j].IsIdent("variant") && j + 1 < t.size() && t[j + 1].Is("<")) {
            alts = VariantAlternatives(t, j + 1);
            using_line = t[i].line;
            break;
          }
        }
        break;
      }
    }
    if (alts.empty()) {
      errors->push_back("opx-dispatch: no `using " + rule.name +
                        " = std::variant<...>;` in " + rule.header);
      continue;
    }

    std::set<std::string> dispatched;
    bool ok = true;
    for (const std::string& df : rule.dispatch_files) {
      const SourceFile* dsf = files.Get(df);
      if (dsf == nullptr) {
        errors->push_back("opx-dispatch: cannot read " + df);
        ok = false;
        break;
      }
      if (counted.insert(df).second) {
        ++*nfiles;
      }
      CollectDispatchedTypes(dsf->toks, &dispatched);
    }
    if (!ok) {
      continue;
    }
    for (const std::string& alt : alts) {
      if (dispatched.count(LastComponent(alt)) > 0) {
        continue;
      }
      std::string where;
      for (const std::string& df : rule.dispatch_files) {
        where += (where.empty() ? "" : ", ") + df;
      }
      Add(*header, using_line, kCheck, rule.name + "::" + LastComponent(alt),
          rule.name + " alternative `" + alt + "` has no dispatch case in " + where +
              " — a get_if ladder silently drops unhandled wire messages",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-msg-init
// --------------------------------------------------------------------------

namespace {

// Scalar types whose uninitialized bytes would leak onto the wire.
bool IsScalarTypeName(const std::string& t) {
  static const std::set<std::string> kScalar = {
      "bool", "char", "short", "int", "long", "unsigned", "signed", "float",
      "double", "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t", "intptr_t",
      // Repo-local scalar aliases (src/util/types.h).
      "LogIndex", "NodeId", "ConfigId", "Time"};
  return kScalar.count(t) > 0;
}

// Scans one struct body [open+1, close) for scalar fields without a default
// initializer; recurses into nested structs.
void ScanStructBody(const SourceFile& sf, const std::vector<Tok>& t, size_t open,
                    size_t close, const std::string& struct_name,
                    std::vector<Finding>* out) {
  size_t i = open + 1;
  while (i < close) {
    // Nested struct/class definition.
    if ((t[i].IsIdent("struct") || t[i].IsIdent("class")) && i + 2 < close &&
        t[i + 1].kind == TokKind::kIdent) {
      size_t j = i + 2;
      while (j < close && !t[j].Is("{") && !t[j].Is(";")) {
        ++j;
      }
      if (j < close && t[j].Is("{")) {
        const size_t nested_close = MatchForward(t, j, "{", "}");
        ScanStructBody(sf, t, j, nested_close, struct_name + "::" + t[i + 1].text, out);
        i = std::min(close, nested_close + 1);
        continue;
      }
      i = j + 1;
      continue;
    }
    // One member statement: walk to its ';', classifying on the way.
    const size_t stmt_begin = i;
    bool saw_eq = false;
    bool saw_brace_init = false;
    bool is_function = false;
    bool skip = t[i].IsIdent("friend") || t[i].IsIdent("using") ||
                t[i].IsIdent("typedef") || t[i].IsIdent("template") ||
                t[i].IsIdent("public") || t[i].IsIdent("private") ||
                t[i].IsIdent("protected") || t[i].IsIdent("operator") ||
                t[i].IsIdent("static") || t[i].IsIdent("enum");
    size_t last_ident_before_mark = 0;  // field-name candidate
    while (i < close) {
      if (t[i].Is(";")) {
        ++i;
        break;
      }
      if (t[i].Is("=") && !saw_eq && !is_function) {
        saw_eq = true;
      } else if (t[i].Is("(") && !saw_eq) {
        // Parentheses before '=': a member function / constructor.
        is_function = true;
        i = MatchForward(t, i, "(", ")");
      } else if (t[i].Is("{")) {
        if (is_function || skip) {
          // Function body: consume it; the statement ends here (no ';').
          i = MatchForward(t, i, "{", "}") + 1;
          break;
        }
        if (!saw_eq) {
          saw_brace_init = true;  // brace initializer `T x{...};`
        }
        i = MatchForward(t, i, "{", "}");
      } else if (t[i].Is("<")) {
        // Template arguments of the member type (e.g. std::vector<NodeId>).
        const size_t gt = MatchForward(t, i, "<", ">");
        if (gt < close) {
          i = gt;
        }
      } else if (t[i].kind == TokKind::kIdent && !saw_eq && !is_function) {
        last_ident_before_mark = i;
      }
      ++i;
    }
    if (skip || is_function || saw_eq || saw_brace_init ||
        last_ident_before_mark == 0) {
      continue;
    }
    // Uninitialized member: field name is the last identifier; its type is
    // everything before it. Only scalar (or pointer) types are hazards —
    // class types run their own default constructors.
    const size_t name_idx = last_ident_before_mark;
    if (name_idx == stmt_begin) {
      continue;  // lone identifier (macro invocation etc.)
    }
    // Classify the type from its tokens outside any template-argument list:
    // scalar iff every non-qualifier identifier there is a scalar name (so
    // `std::vector<uint64_t>` is a class type, `const uint64_t` a scalar).
    bool scalar = false;
    bool nonscalar = false;
    bool pointer = false;
    for (size_t j = stmt_begin; j < name_idx; ++j) {
      if (t[j].Is("<")) {
        const size_t gt = MatchForward(t, j, "<", ">");
        if (gt < name_idx) {
          j = gt;
          continue;
        }
      }
      if (t[j].Is("*")) {
        pointer = true;
      }
      if (t[j].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t[j].text;
      if (id == "const" || id == "volatile" || id == "mutable" ||
          (j + 1 < name_idx && t[j + 1].Is("::"))) {
        continue;  // qualifier or namespace component
      }
      (IsScalarTypeName(id) ? scalar : nonscalar) = true;
    }
    scalar = scalar && !nonscalar;
    if (scalar || pointer) {
      Add(sf, t[name_idx].line, "opx-msg-init",
          struct_name + "::" + t[name_idx].text,
          "wire-message field `" + struct_name + "::" + t[name_idx].text +
              "` has no default initializer — uninitialized " +
              (pointer ? "pointer" : "POD") +
              " bytes on the wire are a determinism and MSan-class hazard",
          out);
    }
  }
}

}  // namespace

void CheckMsgInit(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                  int* nfiles, std::vector<std::string>* errors) {
  for (const std::string& path : cfg.wire_headers) {
    const SourceFile* sf = files.Get(path);
    if (sf == nullptr) {
      errors->push_back("opx-msg-init: cannot read " + path);
      continue;
    }
    ++*nfiles;
    const std::vector<Tok>& t = sf->toks;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (!t[i].IsIdent("struct") || t[i + 1].kind != TokKind::kIdent) {
        continue;
      }
      // Top-level definitions only (forward declarations have ';' first).
      size_t j = i + 2;
      while (j < t.size() && !t[j].Is("{") && !t[j].Is(";")) {
        ++j;
      }
      if (j >= t.size() || t[j].Is(";")) {
        continue;
      }
      const size_t close = MatchForward(t, j, "{", "}");
      if (close >= t.size()) {
        continue;
      }
      ScanStructBody(*sf, t, j, close, t[i + 1].text, out);
      i = close;
    }
  }
}

// --------------------------------------------------------------------------
// opx-audit-hook
// --------------------------------------------------------------------------

void CheckAuditHook(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                    int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-audit-hook";
  for (const AuditRule& rule : cfg.audit) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-audit-hook: cannot read " + rule.file);
      continue;
    }
    ++*nfiles;
    std::set<std::string> idents;
    bool has_check_macro = false;
    for (const Tok& tok : sf->toks) {
      if (tok.kind != TokKind::kIdent) {
        continue;
      }
      idents.insert(tok.text);
      if (tok.text.rfind("OPX_CHECK", 0) == 0 || tok.text.rfind("OPX_DCHECK", 0) == 0) {
        has_check_macro = true;
      }
    }
    for (const std::string& req : rule.required) {
      if (idents.count(req) == 0) {
        Add(*sf, 1, kCheck, req,
            rule.file + " does not reference `" + req +
                "` — protocol state must stay visible to the PR 1 cross-replica "
                "auditor (AuditView snapshot per event)",
            out);
      }
    }
    if (rule.require_check_macro && !has_check_macro) {
      Add(*sf, 1, kCheck, "OPX_CHECK",
          rule.file + " contains no OPX_CHECK/OPX_DCHECK assertion — protocol "
          "entry points must keep the invariant-assertion layer live",
          out);
    }
  }
}

// --------------------------------------------------------------------------
// opx-obs-hook
// --------------------------------------------------------------------------

void CheckObsHook(const AnalyzerConfig& cfg, FileSet& files, std::vector<Finding>* out,
                  int* nfiles, std::vector<std::string>* errors) {
  static const char* kCheck = "opx-obs-hook";
  for (const ObsRule& rule : cfg.obs) {
    const SourceFile* sf = files.Get(rule.file);
    if (sf == nullptr) {
      errors->push_back("opx-obs-hook: cannot read " + rule.file);
      continue;
    }
    ++*nfiles;
    std::set<std::string> idents;
    for (const Tok& tok : sf->toks) {
      if (tok.kind == TokKind::kIdent) {
        idents.insert(tok.text);
      }
    }
    for (const std::string& req : rule.required) {
      if (idents.count(req) == 0) {
        Add(*sf, 1, kCheck, req,
            rule.file + " does not reference `" + req +
                "` — observable protocol transitions must flow through the "
                "obs::ObsSink trace recorder so the trace-oracle tests stay "
                "non-vacuous (DESIGN.md §12)",
            out);
      }
    }
  }
}

// --------------------------------------------------------------------------
// Driver.
// --------------------------------------------------------------------------

AnalysisResult RunAnalysis(const AnalyzerConfig& config) {
  AnalysisResult result;
  FileSet files(config.root);

  struct Entry {
    const char* id;
    void (*run)(const AnalyzerConfig&, FileSet&, std::vector<Finding>*, int*,
                std::vector<std::string>*);
  };
  // CheckDeterminism has no error channel; adapt it.
  static const auto det = [](const AnalyzerConfig& c, FileSet& f, std::vector<Finding>* o,
                             int* n, std::vector<std::string>*) {
    CheckDeterminism(c, f, o, n);
  };
  const Entry entries[] = {
      {"opx-determinism", det},
      {"opx-persist-order", CheckPersistOrder},
      {"opx-dispatch", CheckDispatch},
      {"opx-msg-init", CheckMsgInit},
      {"opx-audit-hook", CheckAuditHook},
      {"opx-obs-hook", CheckObsHook},
  };

  for (const Entry& e : entries) {
    CheckStats stats;
    stats.check = e.id;
    std::vector<Finding> found;
    const auto t0 = std::chrono::steady_clock::now();
    e.run(config, files, &found, &stats.files, &result.errors);
    const auto t1 = std::chrono::steady_clock::now();
    stats.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.findings = static_cast<int>(found.size());
    result.stats.push_back(std::move(stats));
    result.findings.insert(result.findings.end(), std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.key) <
                     std::tie(b.file, b.line, b.check, b.key);
            });
  return result;
}

}  // namespace opx::analyze
